#pragma once

#include <cstdint>
#include <numeric>
#include <string>

#include "runtime/status.h"
#include "runtime/strcat.h"

/// \file window_definition.h
/// Window specifications ω(s, l) of §2.4: count-based (size/slide measured in
/// tuples) or time-based (measured in timestamp units). Windows are aligned
/// at the stream origin: window j covers the half-open axis interval
/// [j·l, j·l + s), where the *axis* is the tuple index for count-based
/// windows and the logical timestamp for time-based windows. Supports sliding
/// (l < s), tumbling (l = s) and unbounded windows (LRB1's `range unbounded`,
/// which makes stateless operators purely per-tuple).

namespace saber {

enum class WindowType : uint8_t { kCount, kTime };

struct WindowDefinition {
  WindowType type = WindowType::kCount;
  int64_t size = 1;   // s: tuples or time units
  int64_t slide = 1;  // l: tuples or time units
  bool unbounded = false;

  static WindowDefinition Count(int64_t size, int64_t slide) {
    SABER_CHECK(size >= 1 && slide >= 1);
    return WindowDefinition{WindowType::kCount, size, slide, false};
  }
  static WindowDefinition Time(int64_t size, int64_t slide) {
    SABER_CHECK(size >= 1 && slide >= 1);
    return WindowDefinition{WindowType::kTime, size, slide, false};
  }
  static WindowDefinition Unbounded() {
    return WindowDefinition{WindowType::kTime, 1, 1, true};
  }

  bool tumbling() const { return slide == size; }
  bool sliding() const { return slide < size; }
  bool time_based() const { return type == WindowType::kTime; }

  /// Pane length g = gcd(s, l): the largest axis unit such that every window
  /// is a concatenation of panes (§2.1 [41]).
  constexpr int64_t pane_size() const { return std::gcd(size, slide); }
  /// Panes per window.
  constexpr int64_t panes_per_window() const { return size / pane_size(); }
  /// Panes per slide step.
  constexpr int64_t panes_per_slide() const { return slide / pane_size(); }

  std::string ToString() const {
    if (unbounded) return "w(unbounded)";
    return StrCat("w(", time_based() ? "time," : "count,", size, ",", slide,
                  ")");
  }

  bool operator==(const WindowDefinition& o) const {
    return type == o.type && size == o.size && slide == o.slide &&
           unbounded == o.unbounded;
  }
};

}  // namespace saber
