#pragma once

#include <cstdint>
#include <numeric>
#include <string>

#include "runtime/status.h"
#include "runtime/strcat.h"

/// \file window_definition.h
/// Window specifications ω(s, l) of §2.4: count-based (size/slide measured in
/// tuples) or time-based (measured in timestamp units). Windows are aligned
/// at the stream origin: window j covers the half-open axis interval
/// [j·l, j·l + s), where the *axis* is the tuple index for count-based
/// windows and the logical timestamp for time-based windows. Supports sliding
/// (l < s), tumbling (l = s) and unbounded windows (LRB1's `range unbounded`,
/// which makes stateless operators purely per-tuple).
///
/// Session windows (kSession) are the data-driven exception to the aligned
/// grid: a session is a maximal run of tuples in which consecutive
/// timestamps are at most `gap` apart, and it closes once the event-time
/// watermark passes `last timestamp + gap` (equivalently: once a tuple
/// arrives more than `gap` after the session's last tuple). They are
/// aggregation-only (validated in QueryDef::ValidateLimits) and reuse the
/// size/slide storage: size = slide = gap, so pane arithmetic — meaningless
/// for sessions — degenerates harmlessly and `time_based()` is true (the
/// session axis is the timestamp).

namespace saber {

enum class WindowType : uint8_t { kCount, kTime, kSession };

struct WindowDefinition {
  WindowType type = WindowType::kCount;
  int64_t size = 1;   // s: tuples or time units
  int64_t slide = 1;  // l: tuples or time units
  bool unbounded = false;

  static WindowDefinition Count(int64_t size, int64_t slide) {
    SABER_CHECK(size >= 1 && slide >= 1);
    return WindowDefinition{WindowType::kCount, size, slide, false};
  }
  static WindowDefinition Time(int64_t size, int64_t slide) {
    SABER_CHECK(size >= 1 && slide >= 1);
    return WindowDefinition{WindowType::kTime, size, slide, false};
  }
  static WindowDefinition Unbounded() {
    return WindowDefinition{WindowType::kTime, 1, 1, true};
  }
  /// Gap-based session window: a session closes when event time advances
  /// more than `gap` past its last tuple. `gap` is in timestamp units.
  static WindowDefinition Session(int64_t gap) {
    SABER_CHECK(gap >= 1);
    return WindowDefinition{WindowType::kSession, gap, gap, false};
  }

  bool tumbling() const { return slide == size; }
  bool sliding() const { return slide < size; }
  /// True when the window axis is the timestamp (time and session windows):
  /// the dispatcher then validates non-decreasing timestamps on insert and
  /// batch spans are timestamp ranges.
  bool time_based() const {
    return type == WindowType::kTime || type == WindowType::kSession;
  }
  bool session() const { return type == WindowType::kSession; }
  /// Session inactivity gap (timestamp units). Meaningful only for kSession.
  int64_t gap() const { return size; }

  /// Pane length g = gcd(s, l): the largest axis unit such that every window
  /// is a concatenation of panes (§2.1 [41]).
  constexpr int64_t pane_size() const { return std::gcd(size, slide); }
  /// Panes per window.
  constexpr int64_t panes_per_window() const { return size / pane_size(); }
  /// Panes per slide step.
  constexpr int64_t panes_per_slide() const { return slide / pane_size(); }

  std::string ToString() const {
    if (unbounded) return "w(unbounded)";
    if (session()) return StrCat("w(session,", gap(), ")");
    return StrCat("w(", time_based() ? "time," : "count,", size, ",", slide,
                  ")");
  }

  bool operator==(const WindowDefinition& o) const {
    return type == o.type && size == o.size && slide == o.slide &&
           unbounded == o.unbounded;
  }
};

}  // namespace saber
