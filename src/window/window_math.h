#pragma once

#include <algorithm>

#include "window/window_definition.h"

/// \file window_math.h
/// Pure index arithmetic relating windows, panes and stream batches (Fig. 2).
/// All functions work on an abstract *axis*: tuple indices for count-based
/// windows, timestamps for time-based windows. A batch covers the axis range
/// [P, Q); for time-based windows the dispatcher sets P = (last timestamp of
/// the previous batch) + 1 and Q = (last timestamp of this batch) + 1, which
/// is the exact span of timestamps this batch is *responsible* for — a window
/// "closes" in the first batch whose span reaches its end (tuples are ordered
/// by timestamp, §2.4, so no later tuple can still fall into it).

namespace saber {

/// Inclusive range of window indices; empty when lo > hi.
struct WindowIndexRange {
  int64_t lo = 0;
  int64_t hi = -1;
  bool empty() const { return lo > hi; }
  int64_t count() const { return empty() ? 0 : hi - lo + 1; }
};

/// Half-open axis interval of one window fragment.
struct FragmentBounds {
  int64_t begin = 0;
  int64_t end = 0;
  bool empty() const { return begin >= end; }
};

/// Floor division for possibly negative numerators.
constexpr int64_t FloorDiv(int64_t a, int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}
constexpr int64_t CeilDiv(int64_t a, int64_t b) {
  return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

/// Start of window j on the axis.
constexpr int64_t WindowStart(const WindowDefinition& w, int64_t j) {
  return j * w.slide;
}
/// One past the end of window j on the axis.
constexpr int64_t WindowEnd(const WindowDefinition& w, int64_t j) {
  return j * w.slide + w.size;
}

/// All windows whose interval intersects the batch axis range [P, Q).
inline WindowIndexRange WindowsIntersecting(const WindowDefinition& w, int64_t P,
                                            int64_t Q) {
  if (P >= Q) return {};
  // j*l + s > P  =>  j > (P - s)/l  =>  j >= floor((P - s)/l) + 1.
  // j*l < Q      =>  j <= ceil(Q/l) - 1 = floor((Q - 1)/l).
  WindowIndexRange r;
  r.lo = std::max<int64_t>(0, FloorDiv(P - w.size, w.slide) + 1);
  r.hi = FloorDiv(Q - 1, w.slide);
  return r;
}

/// Windows that *close* in [P, Q): their end lies in (P, Q].
inline WindowIndexRange WindowsClosingIn(const WindowDefinition& w, int64_t P,
                                         int64_t Q) {
  if (P >= Q) return {};
  // end = j*l + s in (P, Q]  =>  j in ((P - s)/l, (Q - s)/l].
  WindowIndexRange r;
  r.lo = std::max<int64_t>(0, FloorDiv(P - w.size, w.slide) + 1);
  r.hi = FloorDiv(Q - w.size, w.slide);
  return r;
}

/// True if window j starts inside [P, Q) — "opens" in the batch (Fig. 2).
constexpr bool WindowOpensIn(const WindowDefinition& w, int64_t j, int64_t P,
                             int64_t Q) {
  const int64_t s = WindowStart(w, j);
  return s >= P && s < Q;
}

/// True if window j ends inside (P, Q] — "closes" in the batch.
constexpr bool WindowClosesIn(const WindowDefinition& w, int64_t j, int64_t P,
                              int64_t Q) {
  const int64_t e = WindowEnd(w, j);
  return e > P && e <= Q;
}

/// The fragment of window j inside the batch range [P, Q).
inline FragmentBounds FragmentOf(const WindowDefinition& w, int64_t j, int64_t P,
                                 int64_t Q) {
  return FragmentBounds{std::max(WindowStart(w, j), P), std::min(WindowEnd(w, j), Q)};
}

// --------------------------------------------------------------------------
// Pane arithmetic. Pane p covers axis interval [p·g, (p+1)·g) with
// g = pane_size(). Window j is the concatenation of panes
// [FirstPane(j), LastPane(j)].
// --------------------------------------------------------------------------

constexpr int64_t PaneOfAxis(const WindowDefinition& w, int64_t axis) {
  return axis / w.pane_size();
}
constexpr int64_t FirstPaneOf(const WindowDefinition& w, int64_t j) {
  return j * w.panes_per_slide();
}
constexpr int64_t LastPaneOf(const WindowDefinition& w, int64_t j) {
  return j * w.panes_per_slide() + w.panes_per_window() - 1;
}

/// Largest window index whose last pane is `pane`, or -1 if no window ends
/// there. Windows end at pane p iff p + 1 - panes_per_window == j *
/// panes_per_slide for integral j >= 0.
inline int64_t WindowEndingAtPane(const WindowDefinition& w, int64_t pane) {
  const int64_t num = pane + 1 - w.panes_per_window();
  if (num < 0) return -1;
  if (num % w.panes_per_slide() != 0) return -1;
  return num / w.panes_per_slide();
}

/// Panes intersecting the batch axis range [P, Q), inclusive pane indices.
inline WindowIndexRange PanesIntersecting(const WindowDefinition& w, int64_t P,
                                          int64_t Q) {
  if (P >= Q) return {};
  WindowIndexRange r;
  r.lo = P / w.pane_size();
  r.hi = (Q - 1) / w.pane_size();
  return r;
}

// --------------------------------------------------------------------------
// Session arithmetic. Sessions have no aligned grid: a session is a maximal
// run of tuples whose consecutive timestamps differ by at most gap. The two
// decisions every layer (operators, assembly, reference) must agree on:
// --------------------------------------------------------------------------

/// True if the tuple at `ts` belongs to the session whose last tuple so far
/// is `session_last_ts` — i.e. the inactivity gap has not elapsed. The
/// subtraction is on the right to avoid overflow near INT64_MAX.
constexpr bool SessionExtends(int64_t session_last_ts, int64_t ts,
                              int64_t gap) {
  return ts - session_last_ts <= gap;  // ts >= session_last_ts (ordered axis)
}

/// True if a session whose last tuple is at `session_last_ts` is closed by
/// an event-time watermark at `watermark` (the largest timestamp known to
/// have been reached, inclusive): closed iff watermark > last + gap, i.e.
/// a tuple at `watermark` could no longer extend the session.
constexpr bool SessionClosed(int64_t session_last_ts, int64_t watermark,
                             int64_t gap) {
  return watermark - session_last_ts > gap;
}

}  // namespace saber
