#pragma once

#include <memory>

#include "core/operator.h"

/// \file cpu_operators.h
/// CPU implementations of the batch operator functions (§5.3). One query
/// task is processed by one worker thread; parallelism comes from running
/// many tasks concurrently (the paper's data-parallel execution), so the
/// per-task code is single-threaded.
///
/// Two execution regimes exist, selected per query at plan time:
///  - *vectorized* (default): every expression the operator needs is
///    lowered once at construction into a CompiledExpr program and
///    evaluated batch-at-a-time over pane runs — predicates produce
///    selection vectors, projections/aggregate inputs/group keys produce
///    typed columns (see docs/architecture.md, "Vectorized CPU operator
///    path");
///  - *scalar* fallback: row-interpreted evaluation over the serialized
///    tuples (lazy deserialisation, §5.1), mirroring the generic operator
///    code of the original Java engine. Chosen when an expression cannot be
///    lowered (CompiledExpr::lowerable()) or when
///    EngineOptions::cpu_vectorized is off (A/B benchmarking).

/// Feature-test macro for out-of-tree harnesses (bench/operator_kernels.cc
/// builds against pre-vectorization checkouts for baseline interleaving).
#define SABER_CPU_VECTORIZED_AVAILABLE 1

namespace saber {

/// Creates the CPU operator for a query: stateless scan (σ/π), pane-partial
/// aggregation (α with GROUP-BY/HAVING) or streaming θ-join. With
/// `vectorized` (EngineOptions::cpu_vectorized) the batch-at-a-time path is
/// used when the query is lowerable; the scalar path otherwise.
std::unique_ptr<Operator> MakeCpuOperator(const QueryDef* query,
                                          bool vectorized = true);

/// True if every expression the CPU operator needs (where / projection /
/// aggregate inputs / group keys / join predicate+projection) lowers to a
/// batch-evaluable CompiledExpr program. UDF queries are never vectorized.
bool CpuQueryVectorizable(const QueryDef& query);

}  // namespace saber
