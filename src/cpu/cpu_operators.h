#pragma once

#include <memory>

#include "core/operator.h"

/// \file cpu_operators.h
/// CPU implementations of the batch operator functions (§5.3). One query
/// task is processed by one worker thread; parallelism comes from running
/// many tasks concurrently (the paper's data-parallel execution), so the
/// per-task code is single-threaded. Evaluation is row-interpreted over the
/// serialized tuples (lazy deserialisation, §5.1), mirroring the generic
/// operator code of the original Java engine.

namespace saber {

/// Creates the CPU operator for a query: stateless scan (σ/π), pane-partial
/// aggregation (α with GROUP-BY/HAVING) or streaming θ-join.
std::unique_ptr<Operator> MakeCpuOperator(const QueryDef* query);

}  // namespace saber
