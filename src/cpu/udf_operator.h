#pragma once

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "core/operator.h"

/// \file udf_operator.h
/// Execution of user-defined window operator functions (window_udf.h) under
/// the hybrid model. The batch operator function is *fragment collection*:
/// it slices the stream batch into panes and ships each pane's tuples as a
/// window-fragment result. The assembly operator function reassembles
/// complete windows from the collected panes — strictly in task order, like
/// every assembly function (§4.3) — and evaluates the UDF per window.
///
/// TaskResult layout for UDF tasks:
///   partials = [UdfAxisHeader][pane tuple bytes ...]
///   panes[k] = PaneEntry{EncodeUdfPane(input, pane), offset, length}
/// The header carries the per-input axis coverage; a join-style task covers
/// different axis spans on its two inputs, and a window closes only once
/// *every* input's watermark passed its end.

namespace saber {

/// Per-input axis coverage of one UDF task (TaskResult::axis_* only spans
/// input 0). Written at the start of TaskResult::partials.
struct UdfAxisHeader {
  int64_t axis_p[2] = {0, 0};
  int64_t axis_q[2] = {0, 0};
};

/// PaneEntry::pane_index encoding for UDF results: the input stream index
/// rides in the low bit (pane indices are non-negative).
constexpr int64_t EncodeUdfPane(int input, int64_t pane) {
  return pane * 2 + input;
}
constexpr int UdfPaneInput(int64_t encoded) {
  return static_cast<int>(encoded & 1);
}
constexpr int64_t UdfPaneIndex(int64_t encoded) { return encoded / 2; }

/// Assembly state for UDF queries: per-input pane stores, per-input
/// watermarks, and the next window index to evaluate. Shared by the CPU and
/// GPGPU back ends (§5.4: the result logic is the same for both).
class UdfAssembly : public AssemblyState {
 public:
  explicit UdfAssembly(const QueryDef& q);

  /// Ingests one task's collected panes (in task order) and appends the
  /// result rows of every window that became complete to `output`.
  void Ingest(const TaskResult& result, ByteBuffer* output);

  int64_t next_window() const { return next_window_; }

 private:
  void EmitReadyWindows(ByteBuffer* output);
  void EmitWindow(int64_t j, ByteBuffer* output);

  const QueryDef& q_;
  int n_;
  std::map<int64_t, std::vector<uint8_t>> store_[2];  // pane -> tuple bytes
  int64_t watermark_[2] = {0, 0};
  int64_t next_window_ = 0;
  ByteBuffer window_scratch_[2];
};

/// Slices one input's stream batch into panes, appending the tuples of each
/// pane to out->partials with a PaneEntry per pane. Shared by the CPU
/// operator (below) and the simulated-GPGPU collection kernel.
void CollectPanes(const QueryDef& q, const StreamBatch& in, int input,
                  TaskResult* out);

/// Creates the CPU operator for a UDF query.
std::unique_ptr<Operator> MakeCpuUdfOperator(const QueryDef* query);

}  // namespace saber
