#include "cpu/udf_operator.h"

#include <algorithm>
#include <limits>

#include "relational/tuple_ref.h"
#include "window/window_math.h"

namespace saber {

void CollectPanes(const QueryDef& q, const StreamBatch& in, int input,
                  TaskResult* out) {
  const WindowDefinition& w = q.window[input];
  const Schema& schema = q.input_schema[input];
  const size_t tsz = schema.tuple_size();
  const size_t n = in.num_tuples();
  const int64_t g = w.pane_size();

  int64_t cur_pane = -1;
  uint32_t pane_off = 0;
  auto flush = [&]() {
    if (cur_pane < 0) return;
    out->panes.push_back(
        PaneEntry{EncodeUdfPane(input, cur_pane), pane_off,
                  static_cast<uint32_t>(out->partials.size() - pane_off)});
  };
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* bytes = in.tuple(i);
    int64_t ts;
    std::memcpy(&ts, bytes, sizeof(ts));
    const int64_t pane = in.AxisOf(w, i, ts) / g;
    if (pane != cur_pane) {
      flush();
      cur_pane = pane;
      pane_off = static_cast<uint32_t>(out->partials.size());
    }
    out->partials.Append(bytes, tsz);
  }
  flush();
}

namespace {

/// CPU batch operator function for UDF queries: fragment collection (§3's
/// f_f). Runs single-threaded per task; parallelism comes from concurrent
/// tasks, exactly like the relational operators (§5.3).
class CpuUdfOperator final : public Operator {
 public:
  explicit CpuUdfOperator(const QueryDef* q) : Operator(q) {}

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    UdfAxisHeader h;
    for (int i = 0; i < ctx.num_inputs; ++i) {
      h.axis_p[i] = ctx.input[i].AxisP(query_->window[i]);
      h.axis_q[i] = ctx.input[i].AxisQ(query_->window[i]);
    }
    out->axis_p = h.axis_p[0];
    out->axis_q = h.axis_q[0];
    out->partials.Append(&h, sizeof(h));
    for (int i = 0; i < ctx.num_inputs; ++i) {
      CollectPanes(*query_, ctx.input[i], i, out);
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<UdfAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<UdfAssembly>(*query_);
  }
};

}  // namespace

// ===========================================================================
// UdfAssembly.
// ===========================================================================

UdfAssembly::UdfAssembly(const QueryDef& q) : q_(q), n_(q.num_inputs) {}

void UdfAssembly::Ingest(const TaskResult& result, ByteBuffer* output) {
  SABER_CHECK(result.partials.size() >= sizeof(UdfAxisHeader));
  UdfAxisHeader h;
  std::memcpy(&h, result.partials.data(), sizeof(h));
  for (const PaneEntry& e : result.panes) {
    const int input = UdfPaneInput(e.pane_index);
    const int64_t pane = UdfPaneIndex(e.pane_index);
    const uint8_t* data = result.partials.data() + e.offset;
    auto& bytes = store_[input][pane];
    bytes.insert(bytes.end(), data, data + e.length);
  }
  for (int i = 0; i < n_; ++i) {
    watermark_[i] = std::max(watermark_[i], h.axis_q[i]);
  }
  EmitReadyWindows(output);
}

void UdfAssembly::EmitReadyWindows(ByteBuffer* output) {
  for (;;) {
    // A window is ready when it closed on every input: end_i <= watermark_i.
    int64_t ready_hi = std::numeric_limits<int64_t>::max();
    for (int i = 0; i < n_; ++i) {
      const WindowDefinition& w = q_.window[i];
      ready_hi = std::min(ready_hi, FloorDiv(watermark_[i] - w.size, w.slide));
    }
    // Fast-forward over provably-empty windows: the earliest window holding
    // any stored pane on any input (time-based streams can jump hours).
    int64_t j_first = std::numeric_limits<int64_t>::max();
    for (int i = 0; i < n_; ++i) {
      if (store_[i].empty()) continue;
      const WindowDefinition& w = q_.window[i];
      const int64_t p0 = store_[i].begin()->first;
      j_first = std::min(
          j_first, CeilDiv(p0 + 1 - w.panes_per_window(), w.panes_per_slide()));
    }
    if (j_first == std::numeric_limits<int64_t>::max()) {
      // No panes anywhere: everything ready is empty.
      next_window_ = std::max(next_window_, ready_hi + 1);
      return;
    }
    next_window_ = std::max(next_window_, std::max<int64_t>(0, j_first));
    if (next_window_ > ready_hi) return;
    EmitWindow(next_window_, output);
    ++next_window_;
    for (int i = 0; i < n_; ++i) {
      auto& s = store_[i];
      s.erase(s.begin(), s.lower_bound(FirstPaneOf(q_.window[i], next_window_)));
    }
  }
}

void UdfAssembly::EmitWindow(int64_t j, ByteBuffer* output) {
  WindowView views[2];
  int64_t window_ts = 0;
  bool any = false;
  for (int i = 0; i < n_; ++i) {
    const WindowDefinition& w = q_.window[i];
    const Schema& schema = q_.input_schema[i];
    ByteBuffer& scratch = window_scratch_[i];
    scratch.Clear();
    const int64_t first = FirstPaneOf(w, j);
    const int64_t last = LastPaneOf(w, j);
    for (auto it = store_[i].lower_bound(first);
         it != store_[i].end() && it->first <= last; ++it) {
      scratch.Append(it->second.data(), it->second.size());
    }
    const size_t tsz = schema.tuple_size();
    views[i] = WindowView{&schema, scratch.data(), scratch.size() / tsz};
    if (views[i].num_tuples > 0) {
      any = true;
      // Tuples are ordered by timestamp: the window's max is its last tuple.
      int64_t ts;
      std::memcpy(&ts, views[i].tuple_bytes(views[i].num_tuples - 1),
                  sizeof(ts));
      window_ts = std::max(window_ts, ts);
    }
  }
  if (!any) return;
  q_.udf->OnWindow(views, n_, window_ts, output);
}

std::unique_ptr<Operator> MakeCpuUdfOperator(const QueryDef* query) {
  return std::make_unique<CpuUdfOperator>(query);
}

}  // namespace saber
