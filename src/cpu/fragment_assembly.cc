#include "cpu/fragment_assembly.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace saber {

namespace {

/// Inverse of AggMerge for invertible aggregates (sum/count/avg). min/max
/// fields become stale; the running path is only enabled when no min/max
/// aggregate is present.
void SubtractState(AggState* into, const AggState& from) {
  into->sum -= from.sum;
  into->count -= from.count;
}

}  // namespace

AggregationAssembly::AggregationAssembly(const QueryDef& q)
    : q_(q),
      w_(q.window[0]),
      fmt_(PaneFormat::For(q)),
      stacks_(fmt_.num_aggs),
      scratch_(fmt_.grouped() ? fmt_.key_size : 8, fmt_.num_aggs, 1024) {
  const bool incremental = q.assembly_mode == AssemblyMode::kAuto;
  use_running_ = !fmt_.grouped() && incremental;
  for (const auto& a : q.aggregates) {
    if (!Invertible(a.fn)) use_running_ = false;
  }
  use_stacks_ = !fmt_.grouped() && incremental && !use_running_;
  running_.resize(fmt_.num_aggs);
  for (auto& s : running_) AggInit(&s);
  stacks_query_.resize(fmt_.num_aggs);
}

void AggregationAssembly::Ingest(const TaskResult& result, ByteBuffer* output) {
  if (w_.session()) {
    // Segment partials arrive in stream order (tasks in task order, and in
    // axis order within a task); gaps between them close sessions inline.
    for (const PaneEntry& e : result.panes) {
      MergeSessionSegment(result.partials.data() + e.offset, e.length, output);
    }
    watermark_ = std::max(watermark_, result.axis_q);
    if (session_open_ &&
        SessionClosed(session_last_ts_, watermark_, w_.gap())) {
      EmitSession(output);
    }
    return;
  }
  for (const PaneEntry& e : result.panes) {
    MergeEntry(e.pane_index, result.partials.data() + e.offset, e.length);
  }
  watermark_ = std::max(watermark_, result.axis_q);
  EmitReadyWindows(output);
}

void AggregationAssembly::MergeSessionSegment(const uint8_t* data, size_t len,
                                              ByteBuffer* output) {
  int64_t first, last;
  std::memcpy(&first, data, sizeof(first));
  std::memcpy(&last, data + 8, sizeof(last));
  if (session_open_ && !SessionExtends(session_last_ts_, first, w_.gap())) {
    // A segment opening more than gap later proves the open session can
    // never grow again (all future tuples are >= first): close it now,
    // before the watermark would.
    EmitSession(output);
  }
  if (!session_open_) {
    session_open_ = true;
    session_first_ts_ = first;
    session_group_max_ts_ = std::numeric_limits<int64_t>::min();
    if (!fmt_.grouped()) {
      session_aggs_.resize(fmt_.num_aggs);
      for (auto& s : session_aggs_) AggInit(&s);
    }
  } else {
    SABER_DCHECK(SessionExtends(session_last_ts_, first, w_.gap()));
  }
  session_last_ts_ = std::max(session_last_ts_, last);
  if (!fmt_.grouped()) {
    SABER_DCHECK(len == fmt_.session_ungrouped_bytes());
    const auto* aggs =
        reinterpret_cast<const AggState*>(data + PaneFormat::kSessionHeaderBytes);
    for (size_t a = 0; a < fmt_.num_aggs; ++a) {
      AggMerge(&session_aggs_[a], aggs[a]);
    }
  } else {
    // Entries after the header (possibly none: a fully filtered segment
    // still extends the session's raw extent).
    const uint8_t* entries = data + PaneFormat::kSessionHeaderBytes;
    const size_t elen = len - PaneFormat::kSessionHeaderBytes;
    const size_t esz = fmt_.grouped_entry_bytes();
    SABER_DCHECK(elen % esz == 0);
    session_group_bytes_.insert(session_group_bytes_.end(), entries,
                                entries + elen);
    for (size_t off = 0; off < elen; off += esz) {
      int64_t ts;
      std::memcpy(&ts, entries + off, sizeof(ts));
      session_group_max_ts_ = std::max(session_group_max_ts_, ts);
    }
  }
}

void AggregationAssembly::EmitSession(ByteBuffer* output) {
  if (!fmt_.grouped()) {
    // Like ungrouped grid windows, a session emits even when every tuple
    // was filtered out (the aggregates are then their init states); the
    // row timestamp is the session's last *raw* tuple timestamp.
    EmitUngroupedRow(session_last_ts_, session_aggs_.data(), output);
  } else if (!session_group_bytes_.empty()) {
    scratch_.Clear();
    scratch_.MergeSerialized(session_group_bytes_.data(),
                             session_group_bytes_.size());
    EmitGroupedRows(session_group_max_ts_, output);
  }
  session_open_ = false;
  session_group_bytes_.clear();
}

void AggregationAssembly::MergeEntry(int64_t pane, const uint8_t* data,
                                     size_t len) {
  PaneData& pd = store_[pane];
  if (!fmt_.grouped()) {
    SABER_DCHECK(len == fmt_.ungrouped_bytes());
    int64_t ts;
    std::memcpy(&ts, data, sizeof(ts));
    const auto* aggs = reinterpret_cast<const AggState*>(data + 8);
    if (pd.aggs.empty()) {
      pd.aggs.assign(aggs, aggs + fmt_.num_aggs);
      pd.max_ts = ts;
    } else {
      for (size_t a = 0; a < fmt_.num_aggs; ++a) AggMerge(&pd.aggs[a], aggs[a]);
      pd.max_ts = std::max(pd.max_ts, ts);
    }
  } else {
    SABER_DCHECK(len % fmt_.grouped_entry_bytes() == 0);
    pd.group_bytes.insert(pd.group_bytes.end(), data, data + len);
    // Pane timestamp = max over all group entries (each entry carries its
    // group's max).
    const size_t esz = fmt_.grouped_entry_bytes();
    for (size_t off = 0; off < len; off += esz) {
      int64_t ts;
      std::memcpy(&ts, data + off, sizeof(ts));
      pd.max_ts = std::max(pd.max_ts, ts);
    }
  }
}

void AggregationAssembly::EmitReadyWindows(ByteBuffer* output) {
  for (;;) {
    if (store_.empty()) {
      // Every window closing before the watermark is empty; skip them all in
      // O(1) (time-based streams can jump hours between tuples).
      const int64_t first_open = FloorDiv(watermark_ - w_.size, w_.slide) + 1;
      if (first_open > next_window_) {
        next_window_ = std::max<int64_t>(0, first_open);
        running_valid_ = false;
      }
      return;
    }
    // Skip windows that end before the earliest stored pane: they are empty.
    const int64_t p0 = store_.begin()->first;
    const int64_t j0 = CeilDiv(p0 + 1 - w_.panes_per_window(), w_.panes_per_slide());
    if (j0 > next_window_) {
      next_window_ = std::max<int64_t>(0, j0);
      running_valid_ = false;
    }
    if (WindowEnd(w_, next_window_) > watermark_) return;
    EmitWindow(next_window_, output);
    ++next_window_;
    PruneBefore(FirstPaneOf(w_, next_window_));
  }
}

void AggregationAssembly::EmitWindow(int64_t j, ByteBuffer* output) {
  if (fmt_.grouped()) {
    EmitGroupedWindow(j, output);
    return;
  }
  const int64_t first = FirstPaneOf(w_, j);
  const int64_t last = LastPaneOf(w_, j);
  // Locate the last non-empty pane of the window; its max_ts is the window's
  // max tuple timestamp (timestamps are non-decreasing along panes).
  auto it = store_.upper_bound(last);
  if (it == store_.begin()) {
    running_valid_ = false;  // window is empty: emit nothing
    return;
  }
  --it;
  if (it->first < first) {
    running_valid_ = false;  // all stored panes precede this window
    return;
  }
  const int64_t ts = it->second.max_ts;

  if (use_running_) {
    AdvanceRunning(j);
    EmitUngroupedRow(ts, running_.data(), output);
    return;
  }
  if (use_stacks_) {
    AdvanceStacks(j);
    for (auto& s : stacks_query_) AggInit(&s);
    stacks_.Query(stacks_query_.data());
    EmitUngroupedRow(ts, stacks_query_.data(), output);
    return;
  }
  // Re-merge path: merge all of the window's panes per emission (grouped
  // queries, or AssemblyMode::kRemergeOnly for the ablation baseline).
  std::vector<AggState> acc(fmt_.num_aggs);
  for (auto& s : acc) AggInit(&s);
  for (auto pit = store_.lower_bound(first);
       pit != store_.end() && pit->first <= last; ++pit) {
    for (size_t a = 0; a < fmt_.num_aggs; ++a) AggMerge(&acc[a], pit->second.aggs[a]);
  }
  EmitUngroupedRow(ts, acc.data(), output);
}

void AggregationAssembly::AdvanceRunning(int64_t j) {
  const int64_t first = FirstPaneOf(w_, j);
  const int64_t last = LastPaneOf(w_, j);
  if (!running_valid_) {
    for (auto& s : running_) AggInit(&s);
    for (auto it = store_.lower_bound(first);
         it != store_.end() && it->first <= last; ++it) {
      for (size_t a = 0; a < fmt_.num_aggs; ++a) {
        AggMerge(&running_[a], it->second.aggs[a]);
      }
    }
    running_lo_pane_ = first;
    running_hi_pane_ = last;
    running_valid_ = true;
    return;
  }
  // Subtract panes that slid out of the window since the last emission (they
  // are still in the store: pruning lags running_lo_pane_).
  for (auto it = store_.lower_bound(running_lo_pane_);
       it != store_.end() && it->first < first; ++it) {
    for (size_t a = 0; a < fmt_.num_aggs; ++a) {
      SubtractState(&running_[a], it->second.aggs[a]);
    }
  }
  running_lo_pane_ = first;
  // Add panes that slid into the window.
  for (auto it = store_.upper_bound(running_hi_pane_);
       it != store_.end() && it->first <= last; ++it) {
    for (size_t a = 0; a < fmt_.num_aggs; ++a) {
      AggMerge(&running_[a], it->second.aggs[a]);
    }
  }
  running_hi_pane_ = std::max(running_hi_pane_, last);
}

void AggregationAssembly::AdvanceStacks(int64_t j) {
  const int64_t first = FirstPaneOf(w_, j);
  const int64_t last = LastPaneOf(w_, j);
  stacks_.EvictBefore(first);
  // Push panes that slid into the window. Panes <= last are final: their end
  // lies at or before the window's end, which the watermark has passed.
  const int64_t from = std::max(first, stacks_.last_pushed() + 1);
  for (auto it = store_.lower_bound(from);
       it != store_.end() && it->first <= last; ++it) {
    stacks_.Push(it->first, it->second.aggs.data());
  }
}

void AggregationAssembly::EmitUngroupedRow(int64_t ts, const AggState* aggs,
                                           ByteBuffer* output) {
  const Schema& out = q_.output_schema;
  uint8_t* row = output->AppendUninitialized(out.tuple_size());
  TupleWriter wr(row, &out);
  wr.SetInt64(0, ts);
  for (size_t a = 0; a < fmt_.num_aggs; ++a) {
    wr.SetDouble(1 + a, AggFinalize(q_.aggregates[a].fn, aggs[a]));
  }
  if (q_.having != nullptr) {
    TupleRef ref(row, &out);
    if (!q_.having->EvalBool(ref, nullptr)) {
      output->Resize(output->size() - out.tuple_size());
    }
  }
}

void AggregationAssembly::EmitGroupedWindow(int64_t j, ByteBuffer* output) {
  const int64_t first = FirstPaneOf(w_, j);
  const int64_t last = LastPaneOf(w_, j);
  scratch_.Clear();
  bool any = false;
  // All rows of a window carry the *window's* max timestamp: per-group
  // maxima are not monotone across windows, and the result stream must
  // respect timestamp order (§2.4) so that chained queries (SG3, LRB4) see
  // an ordered input.
  int64_t window_ts = 0;
  for (auto it = store_.lower_bound(first);
       it != store_.end() && it->first <= last; ++it) {
    if (it->second.group_bytes.empty()) continue;
    scratch_.MergeSerialized(it->second.group_bytes.data(),
                             it->second.group_bytes.size());
    window_ts = std::max(window_ts, it->second.max_ts);
    any = true;
  }
  if (!any) return;
  EmitGroupedRows(window_ts, output);
}

void AggregationAssembly::EmitGroupedRows(int64_t window_ts,
                                          ByteBuffer* output) {
  // Deterministic output: sort groups by key bytes. (Hash-table iteration
  // order would otherwise depend on which processor executed which task.)
  sort_scratch_.clear();
  scratch_.ForEachOccupied(
      [&](const uint8_t* key, int64_t /*group_ts*/, const AggState* aggs) {
        sort_scratch_.emplace_back(key, aggs);
      });
  std::vector<size_t> order(sort_scratch_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t ksz = fmt_.key_size;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::memcmp(sort_scratch_[a].first, sort_scratch_[b].first, ksz) < 0;
  });

  const Schema& out = q_.output_schema;
  const size_t num_keys = q_.group_by.size();
  for (size_t idx : order) {
    const uint8_t* key = sort_scratch_[idx].first;
    const AggState* aggs = sort_scratch_[idx].second;
    uint8_t* row = output->AppendUninitialized(out.tuple_size());
    TupleWriter wr(row, &out);
    wr.SetInt64(0, window_ts);
    for (size_t k = 0; k < num_keys; ++k) {
      int64_t kv;
      std::memcpy(&kv, key + k * 8, sizeof(kv));
      wr.SetInt64(1 + k, kv);
    }
    for (size_t a = 0; a < fmt_.num_aggs; ++a) {
      wr.SetDouble(1 + num_keys + a, AggFinalize(q_.aggregates[a].fn, aggs[a]));
    }
    if (q_.having != nullptr) {
      TupleRef ref(row, &out);
      if (!q_.having->EvalBool(ref, nullptr)) {
        output->Resize(output->size() - out.tuple_size());
      }
    }
  }
}

void AggregationAssembly::PruneBefore(int64_t pane) {
  // The running aggregate subtracts expiring panes lazily on the next
  // advance; keep them alive until then.
  if (use_running_ && running_valid_) pane = std::min(pane, running_lo_pane_);
  store_.erase(store_.begin(), store_.lower_bound(pane));
}

}  // namespace saber
