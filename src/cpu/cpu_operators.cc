#include "cpu/cpu_operators.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "cpu/fragment_assembly.h"
#include "cpu/udf_operator.h"
#include "relational/expression_compiler.h"
#include "relational/field_plan.h"
#include "relational/hash_table.h"
#include "runtime/object_pool.h"

namespace saber {

namespace {

inline int64_t LoadTs(const uint8_t* tuple) {
  int64_t ts;
  std::memcpy(&ts, tuple, sizeof(ts));
  return ts;
}

// ---------------------------------------------------------------------------
// Join window/partner arithmetic shared by the scalar and vectorized
// θ-join operators (both must agree exactly — the vectorized probe bounds
// are derived from these).
// ---------------------------------------------------------------------------

/// Window-index range containing axis coordinate `x` under definition `w`
/// (clamped to j >= 0).
inline WindowIndexRange WindowsOf(const WindowDefinition& w, int64_t x) {
  WindowIndexRange r;
  r.lo = std::max<int64_t>(0, FloorDiv(x - w.size, w.slide) + 1);
  r.hi = FloorDiv(x, w.slide);
  return r;
}

inline int64_t OppIndex(const StreamBatch& opp, size_t k, size_t opp_hist) {
  return k < opp_hist ? opp.history_first_index + static_cast<int64_t>(k)
                      : opp.first_index + static_cast<int64_t>(k - opp_hist);
}

inline const uint8_t* OppTuple(const StreamBatch& opp, size_t k,
                               size_t opp_hist) {
  return k < opp_hist ? opp.history_tuple(k) : opp.tuple(k - opp_hist);
}

/// Axis coordinate of the opposite side's k-th window element (timestamps
/// live at byte offset 0 of every stream tuple).
inline int64_t OppAxis(const StreamBatch& opp, const WindowDefinition& wo,
                       size_t k, size_t opp_hist) {
  if (!wo.time_based()) return OppIndex(opp, k, opp_hist);
  return LoadTs(OppTuple(opp, k, opp_hist));
}

// ===========================================================================
// Scalar (tree-walking) operators — the fallback path. One virtual
// Expression evaluation per tuple, like SABER's generic Java operators
// (§5.3). These stay byte-for-byte equivalent to the vectorized operators
// below; the differential fuzz suite (tests/cpu/vectorized_diff_fuzz_test)
// enforces it.
// ===========================================================================

// ---------------------------------------------------------------------------
// Stateless operators: projection and selection (§5.3 "a single scan over
// the stream batch"). With IStream semantics every input tuple contributes
// at most one output tuple, independent of the window definition — which is
// why Fig. 11a shows the slide having no effect on SELECT throughput.
// ---------------------------------------------------------------------------

bool DetectIdentity(const QueryDef& q) {
  if (q.select.size() != q.input_schema[0].num_fields()) return false;
  for (size_t i = 0; i < q.select.size(); ++i) {
    const auto* col = q.select[i]->kind() == Expression::Kind::kColumn
                          ? static_cast<const ColumnExpr*>(q.select[i].get())
                          : nullptr;
    if (col == nullptr || col->field() != i) return false;
  }
  return q.output_schema.tuple_size() == q.input_schema[0].tuple_size();
}

class CpuStatelessOperator final : public Operator {
 public:
  explicit CpuStatelessOperator(const QueryDef* q) : Operator(q) {
    identity_ = DetectIdentity(*q);
  }

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    const StreamBatch& in = ctx.input[0];
    const Schema& schema = query_->input_schema[0];
    const Schema& out_schema = query_->output_schema;
    const size_t n = in.num_tuples();
    const size_t in_size = schema.tuple_size();
    const size_t out_size = out_schema.tuple_size();
    const Expression* where = query_->where.get();

    out->axis_p = in.AxisP(query_->window[0]);
    out->axis_q = in.AxisQ(query_->window[0]);
    out->complete.Reserve(n * (identity_ ? in_size : out_size));

    for (size_t i = 0; i < n; ++i) {
      const uint8_t* bytes = in.tuple(i);
      TupleRef t(bytes, &schema);
      if (where != nullptr && !where->EvalBool(t, nullptr)) continue;
      if (identity_) {
        // Direct byte forwarding (§5.1).
        out->complete.Append(bytes, in_size);
        continue;
      }
      uint8_t* row = out->complete.AppendUninitialized(out_size);
      TupleWriter wr(row, &out_schema);
      for (size_t f = 0; f < query_->select.size(); ++f) {
        const Expression& e = *query_->select[f];
        switch (out_schema.field(f).type) {
          case DataType::kInt32:
            wr.SetInt32(f, static_cast<int32_t>(e.EvalInt64(t, nullptr)));
            break;
          case DataType::kInt64:
            wr.SetInt64(f, e.EvalInt64(t, nullptr));
            break;
          default:
            wr.SetNumeric(f, e.EvalDouble(t, nullptr));
            break;
        }
      }
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<ConcatAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<ConcatAssembly>();
  }

 private:
  bool identity_;
};

// ---------------------------------------------------------------------------
// Aggregation: the batch operator function partitions the stream batch into
// panes and computes one partial aggregate per pane (§5.3). Finalization of
// window results happens in the assembly operator function
// (AggregationAssembly), which merges pane partials incrementally.
// ---------------------------------------------------------------------------

class CpuAggregationOperator final : public Operator {
 public:
  explicit CpuAggregationOperator(const QueryDef* q)
      : Operator(q), fmt_(PaneFormat::For(*q)) {}

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    if (query_->window[0].session()) {
      if (fmt_.grouped()) {
        ProcessGroupedSession(ctx, out);
      } else {
        ProcessUngroupedSession(ctx, out);
      }
      return;
    }
    if (fmt_.grouped()) {
      ProcessGrouped(ctx, out);
    } else {
      ProcessUngrouped(ctx, out);
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<AggregationAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<AggregationAssembly>(*query_);
  }

 private:
  // Session windows: the batch is cut at inactivity gaps into *segments*
  // (maximal runs with consecutive timestamps at most gap apart) instead of
  // grid panes; each segment ships [first_ts][last_ts] plus its partial so
  // the assembly can merge adjacent segments whose boundary gap did not
  // elapse (fragment_assembly.h). PaneEntry::pane_index is a task-local
  // ordinal — segments have no grid to index into.

  void ProcessUngroupedSession(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const Schema& schema = query_->input_schema[0];
    const WindowDefinition& w = query_->window[0];
    const Expression* where = query_->where.get();
    const size_t n = in.num_tuples();
    const size_t na = fmt_.num_aggs;
    const int64_t gap = w.gap();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    AggState cur[kMaxAggregatesPerQuery];
    SABER_CHECK(na <= kMaxAggregatesPerQuery);
    bool open = false;
    int64_t first_ts = 0, last_ts = 0, seg = 0;

    auto flush = [&]() {
      if (!open) return;
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      out->partials.AppendValue<int64_t>(first_ts);
      out->partials.AppendValue<int64_t>(last_ts);
      out->partials.Append(cur, na * sizeof(AggState));
      out->panes.push_back(PaneEntry{
          seg++, off, static_cast<uint32_t>(fmt_.session_ungrouped_bytes())});
      open = false;
    };

    for (size_t i = 0; i < n; ++i) {
      TupleRef t(in.tuple(i), &schema);
      const int64_t ts = t.timestamp();
      if (open && !SessionExtends(last_ts, ts, gap)) flush();
      if (!open) {
        open = true;
        first_ts = ts;
        for (size_t a = 0; a < na; ++a) AggInit(&cur[a]);
      }
      last_ts = ts;  // raw extent: filtered tuples still hold the session open
      if (where != nullptr && !where->EvalBool(t, nullptr)) continue;
      for (size_t a = 0; a < na; ++a) {
        const auto& spec = query_->aggregates[a];
        const double v =
            spec.input != nullptr ? spec.input->EvalDouble(t, nullptr) : 0.0;
        AggAdd(&cur[a], v);
      }
    }
    flush();
  }

  void ProcessGroupedSession(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const Schema& schema = query_->input_schema[0];
    const WindowDefinition& w = query_->window[0];
    const Expression* where = query_->where.get();
    const size_t n = in.num_tuples();
    const size_t na = fmt_.num_aggs;
    const size_t nk = query_->group_by.size();
    const int64_t gap = w.gap();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    GroupHashTable table(fmt_.key_size, na, kGroupTableTaskCapacity);
    bool open = false;
    int64_t first_ts = 0, last_ts = 0, seg = 0;
    uint8_t key[kMaxGroupKeyBytes];
    SABER_CHECK(fmt_.key_size <= sizeof(key));

    auto flush = [&]() {
      if (!open) return;
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      // Header even when the table is empty: a fully filtered segment still
      // defines session extent (the assembly needs its first/last ts).
      out->partials.AppendValue<int64_t>(first_ts);
      out->partials.AppendValue<int64_t>(last_ts);
      if (table.size() > 0) table.SerializeTo(&out->partials);
      out->panes.push_back(PaneEntry{
          seg++, off, static_cast<uint32_t>(out->partials.size() - off)});
      table.Clear();
      open = false;
    };

    for (size_t i = 0; i < n; ++i) {
      TupleRef t(in.tuple(i), &schema);
      const int64_t ts = t.timestamp();
      if (open && !SessionExtends(last_ts, ts, gap)) flush();
      if (!open) {
        open = true;
        first_ts = ts;
      }
      last_ts = ts;
      if (where != nullptr && !where->EvalBool(t, nullptr)) continue;
      for (size_t k = 0; k < nk; ++k) {
        const int64_t kv = query_->group_by[k]->EvalInt64(t, nullptr);
        std::memcpy(key + k * 8, &kv, sizeof(kv));
      }
      if (table.NeedsGrow()) table.Grow();
      AggState* aggs = table.Upsert(key, static_cast<int32_t>(i), ts);
      if (aggs == nullptr) {
        table.Grow();
        aggs = table.Upsert(key, static_cast<int32_t>(i), ts);
        SABER_CHECK(aggs != nullptr);
      }
      for (size_t a = 0; a < na; ++a) {
        const auto& spec = query_->aggregates[a];
        const double v =
            spec.input != nullptr ? spec.input->EvalDouble(t, nullptr) : 0.0;
        AggAdd(&aggs[a], v);
      }
    }
    flush();
  }

  void ProcessUngrouped(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const Schema& schema = query_->input_schema[0];
    const WindowDefinition& w = query_->window[0];
    const Expression* where = query_->where.get();
    const size_t n = in.num_tuples();
    const size_t na = fmt_.num_aggs;
    const int64_t g = w.pane_size();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    AggState cur[kMaxAggregatesPerQuery];
    SABER_CHECK(na <= kMaxAggregatesPerQuery);
    int64_t cur_pane = -1;
    int64_t cur_ts = 0;

    auto flush = [&]() {
      if (cur_pane < 0) return;
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      out->partials.AppendValue<int64_t>(cur_ts);
      out->partials.Append(cur, na * sizeof(AggState));
      out->panes.push_back(
          PaneEntry{cur_pane, off, static_cast<uint32_t>(fmt_.ungrouped_bytes())});
    };

    for (size_t i = 0; i < n; ++i) {
      TupleRef t(in.tuple(i), &schema);
      const int64_t ts = t.timestamp();
      const int64_t pane = in.AxisOf(w, i, ts) / g;
      if (pane != cur_pane) {
        flush();
        cur_pane = pane;
        cur_ts = ts;
        for (size_t a = 0; a < na; ++a) AggInit(&cur[a]);
      }
      cur_ts = ts;
      if (where != nullptr && !where->EvalBool(t, nullptr)) continue;
      for (size_t a = 0; a < na; ++a) {
        const auto& spec = query_->aggregates[a];
        const double v =
            spec.input != nullptr ? spec.input->EvalDouble(t, nullptr) : 0.0;
        AggAdd(&cur[a], v);
      }
    }
    flush();
  }

  void ProcessGrouped(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const Schema& schema = query_->input_schema[0];
    const WindowDefinition& w = query_->window[0];
    const Expression* where = query_->where.get();
    const size_t n = in.num_tuples();
    const size_t na = fmt_.num_aggs;
    const size_t nk = query_->group_by.size();
    const int64_t g = w.pane_size();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    GroupHashTable table(fmt_.key_size, na, kGroupTableTaskCapacity);
    int64_t cur_pane = -1;
    uint8_t key[kMaxGroupKeyBytes];
    SABER_CHECK(fmt_.key_size <= sizeof(key));

    auto flush = [&]() {
      if (cur_pane < 0 || table.size() == 0) {
        if (cur_pane >= 0) table.Clear();
        return;
      }
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      table.SerializeTo(&out->partials);
      out->panes.push_back(PaneEntry{
          cur_pane, off, static_cast<uint32_t>(out->partials.size() - off)});
      table.Clear();
    };

    for (size_t i = 0; i < n; ++i) {
      TupleRef t(in.tuple(i), &schema);
      const int64_t ts = t.timestamp();
      const int64_t pane = in.AxisOf(w, i, ts) / g;
      if (pane != cur_pane) {
        flush();
        cur_pane = pane;
      }
      if (where != nullptr && !where->EvalBool(t, nullptr)) continue;
      for (size_t k = 0; k < nk; ++k) {
        const int64_t kv = query_->group_by[k]->EvalInt64(t, nullptr);
        std::memcpy(key + k * 8, &kv, sizeof(kv));
      }
      if (table.NeedsGrow()) table.Grow();
      AggState* aggs = table.Upsert(key, static_cast<int32_t>(i), ts);
      if (aggs == nullptr) {
        table.Grow();
        aggs = table.Upsert(key, static_cast<int32_t>(i), ts);
        SABER_CHECK(aggs != nullptr);
      }
      for (size_t a = 0; a < na; ++a) {
        const auto& spec = query_->aggregates[a];
        const double v =
            spec.input != nullptr ? spec.input->EvalDouble(t, nullptr) : 0.0;
        AggAdd(&aggs[a], v);
      }
    }
    flush();
  }

  PaneFormat fmt_;
};

// ---------------------------------------------------------------------------
// Streaming θ-join (§5.3, Kang et al. [35]). The dispatcher aligns the two
// stream batches on a common timestamp cut, so a symmetric merge over the
// two batches — joining each arriving tuple against the opposite stream's
// current window contents (history + already-processed batch prefix) —
// produces every result pair exactly once, in arrival order. Task execution
// is sequential within the task; parallelism comes from concurrent tasks.
// ---------------------------------------------------------------------------

class CpuJoinOperator final : public Operator {
 public:
  explicit CpuJoinOperator(const QueryDef* q) : Operator(q) {}

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    const StreamBatch& L = ctx.input[0];
    const StreamBatch& R = ctx.input[1];
    const Schema& ls = query_->input_schema[0];
    const Schema& rs = query_->input_schema[1];
    const WindowDefinition& wl = query_->window[0];
    out->axis_p = L.AxisP(wl);
    out->axis_q = L.AxisQ(wl);

    const size_t nl = L.num_tuples();
    const size_t nr = R.num_tuples();
    const size_t hl = L.history_tuples();
    const size_t hr = R.history_tuples();

    // Partner scan lower bounds (amortized O(1) advancement).
    size_t r_scan_lo = 0;  // index into [histR..batchR-prefix] sequence
    size_t l_scan_lo = 0;

    size_t il = 0, ir = 0;
    while (il < nl || ir < nr) {
      bool take_left;
      if (il >= nl) {
        take_left = false;
      } else if (ir >= nr) {
        take_left = true;
      } else {
        TupleRef a(L.tuple(il), &ls);
        TupleRef b(R.tuple(ir), &rs);
        take_left = a.timestamp() <= b.timestamp();  // left wins ties
      }
      if (take_left) {
        JoinNewElement</*kNewIsLeft=*/true>(L, R, il, ir, hr, &r_scan_lo, out);
        ++il;
      } else {
        JoinNewElement</*kNewIsLeft=*/false>(R, L, ir, il, hl, &l_scan_lo, out);
        ++ir;
      }
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<ConcatAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<ConcatAssembly>();
  }

 private:
  /// Joins the `new_idx`-th tuple of `nw` (the newly arriving side) against
  /// the opposite side's window contents: its history plus the batch prefix
  /// [0, opp_prefix). `opp_hist` is the history tuple count of the opposite
  /// side; `scan_lo` persists the advancing lower bound across calls.
  template <bool kNewIsLeft>
  void JoinNewElement(const StreamBatch& nw, const StreamBatch& opp,
                      size_t new_idx, size_t opp_prefix, size_t opp_hist,
                      size_t* scan_lo, TaskResult* out) const {
    const Schema& ns = query_->input_schema[kNewIsLeft ? 0 : 1];
    const Schema& os = query_->input_schema[kNewIsLeft ? 1 : 0];
    const WindowDefinition& wn = query_->window[kNewIsLeft ? 0 : 1];
    const WindowDefinition& wo = query_->window[kNewIsLeft ? 1 : 0];

    TupleRef t(nw.tuple(new_idx), &ns);
    const int64_t ts = t.timestamp();
    const int64_t axis_n =
        wn.time_based() ? ts
                        : nw.first_index + static_cast<int64_t>(new_idx);
    const WindowIndexRange jn = WindowsOf(wn, axis_n);
    if (jn.empty()) return;

    // Opposite tuples with window index-range ending before jn.lo can never
    // match this or any later new element: skip them permanently.
    const size_t total = opp_hist + opp_prefix;
    while (*scan_lo < total) {
      const int64_t axis_o = OppAxis(opp, wo, *scan_lo, opp_hist);
      if (FloorDiv(axis_o, wo.slide) >= jn.lo) break;
      ++(*scan_lo);
    }

    for (size_t k = *scan_lo; k < total; ++k) {
      const uint8_t* obytes = k < opp_hist
                                  ? opp.history_tuple(k)
                                  : opp.tuple(k - opp_hist);
      TupleRef o(obytes, &os);
      const int64_t axis_o = wo.time_based()
                                 ? o.timestamp()
                                 : OppIndex(opp, k, opp_hist);
      const WindowIndexRange jo = WindowsOf(wo, axis_o);
      if (jo.lo > jn.hi) break;  // partners are axis-ordered: no more matches
      if (jo.hi < jn.lo) continue;
      const TupleRef& l = kNewIsLeft ? t : o;
      const TupleRef& r = kNewIsLeft ? o : t;
      if (!query_->join_predicate->EvalBool(l, &r)) continue;
      EmitPair(l, r, std::max(ts, o.timestamp()), out);
    }
  }

  void EmitPair(const TupleRef& l, const TupleRef& r, int64_t ts,
                TaskResult* out) const {
    const Schema& os = query_->output_schema;
    uint8_t* row = out->complete.AppendUninitialized(os.tuple_size());
    TupleWriter wr(row, &os);
    wr.SetInt64(0, ts);  // field 0: max(ts_l, ts_r), stamped by the operator
    for (size_t f = 1; f < query_->join_select.size(); ++f) {
      const Expression& e = *query_->join_select[f];
      if (IsIntegral(os.field(f).type)) {
        const int64_t v = e.EvalInt64(l, &r);
        if (os.field(f).type == DataType::kInt32) {
          wr.SetInt32(f, static_cast<int32_t>(v));
        } else {
          wr.SetInt64(f, v);
        }
      } else {
        wr.SetNumeric(f, e.EvalDouble(l, &r));
      }
    }
  }
};

// ===========================================================================
// Vectorized (batch-at-a-time) operators — the default path. Expressions
// are lowered once at operator construction; ProcessBatch evaluates them
// over pane runs with CompiledExpr's batch interpreter: predicates produce
// selection vectors (ascending uint32 tuple indices), projections /
// aggregate inputs / group keys produce typed columns that are fused into a
// single surviving-tuple pass. Value semantics are bit-identical to the
// scalar operators above by construction (the compiler mirrors the
// Expression tree's typed lanes).
// ===========================================================================

/// Per-worker scratch for batch evaluation: selection vectors, typed value
/// columns, packed group keys, join candidate pointers. Sized to the
/// largest run seen by this thread; reused across tasks (no allocation on
/// the steady-state hot path, §5.1 object-pooling discipline).
struct VecScratch {
  std::vector<uint32_t> sel;
  std::vector<int64_t> i64;
  std::vector<double> f64;        // na columns, column-major (a * n + j)
  std::vector<int64_t> ts;
  std::vector<uint8_t> keys;      // packed group keys, key_size per row
  std::vector<uint32_t> hashes;
  std::vector<const uint8_t*> ptrs;
  std::vector<const uint8_t*> sel_ptrs;
};

VecScratch& Tls() {
  thread_local VecScratch s;
  return s;
}

/// Invokes fn(base, tuple_count, first_tuple_index_in_batch) for each
/// contiguous segment of the (possibly wrapped) stream batch.
template <typename Fn>
void ForEachSegment(const SpanPair& data, size_t tuple_size, Fn&& fn) {
  const size_t n1 = data.len1 / tuple_size;
  if (n1 > 0) fn(data.seg1, n1, size_t{0});
  const size_t n2 = data.len2 / tuple_size;
  if (n2 > 0) fn(data.seg2, n2, n1);
}

// Output-row plans come from relational/field_plan.h (shared with the
// GPGPU back end); here each plan's program is evaluated as a column and
// scattered into the appended rows.

/// Scatters an int64 column into output rows, truncating to the field type
/// (like TupleWriter::SetInt32 after Expression::EvalInt64).
inline void ScatterInt(uint8_t* rows, size_t row_size, const FieldPlan& p,
                       const int64_t* vals, size_t n) {
  uint8_t* dst = rows + p.dst_offset;
  if (p.dst_type == DataType::kInt32) {
    for (size_t j = 0; j < n; ++j, dst += row_size) {
      const int32_t v = static_cast<int32_t>(vals[j]);
      std::memcpy(dst, &v, sizeof(v));
    }
  } else {
    for (size_t j = 0; j < n; ++j, dst += row_size) {
      std::memcpy(dst, &vals[j], sizeof(int64_t));
    }
  }
}

/// Scatters a double column (like TupleWriter::SetNumeric).
inline void ScatterDouble(uint8_t* rows, size_t row_size, const FieldPlan& p,
                          const double* vals, size_t n) {
  uint8_t* dst = rows + p.dst_offset;
  if (p.dst_type == DataType::kFloat) {
    for (size_t j = 0; j < n; ++j, dst += row_size) {
      const float v = static_cast<float>(vals[j]);
      std::memcpy(dst, &v, sizeof(v));
    }
  } else {
    for (size_t j = 0; j < n; ++j, dst += row_size) {
      std::memcpy(dst, &vals[j], sizeof(double));
    }
  }
}

// ---------------------------------------------------------------------------
// Vectorized stateless operator: predicate -> selection vector, then either
// coalesced row forwarding (identity projection) or a fused projection pass
// that gathers surviving tuples per output field.
// ---------------------------------------------------------------------------

class CpuVectorStatelessOperator final : public Operator {
 public:
  explicit CpuVectorStatelessOperator(const QueryDef* q) : Operator(q) {
    identity_ = DetectIdentity(*q);
    if (q->where != nullptr) {
      where_ = CompiledExpr::Compile(*q->where, q->input_schema[0]);
    }
    if (!identity_) {
      plans_ = BuildFieldPlans(q->select, q->output_schema, q->input_schema[0],
                               nullptr, /*field0_is_max_ts=*/false);
    }
    vectorizable_ = (q->where == nullptr || where_.lowerable()) &&
                    (identity_ || PlansLowerable(plans_));
  }

  bool vectorizable() const { return vectorizable_; }

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    const StreamBatch& in = ctx.input[0];
    const size_t in_size = query_->input_schema[0].tuple_size();
    const size_t out_size = query_->output_schema.tuple_size();
    const size_t n = in.num_tuples();
    const bool has_where = !where_.empty();
    VecScratch& tls = Tls();

    out->axis_p = in.AxisP(query_->window[0]);
    out->axis_q = in.AxisQ(query_->window[0]);
    out->complete.Reserve(n * (identity_ ? in_size : out_size));

    ForEachSegment(in.data, in_size, [&](const uint8_t* base, size_t m, size_t) {
      const uint32_t* sel = nullptr;
      size_t cnt = m;
      if (has_where) {
        if (tls.sel.size() < m) tls.sel.resize(m);
        cnt = where_.EvalBatchBool(base, in_size, m, tls.sel.data());
        sel = tls.sel.data();
      }
      if (cnt == 0) return;

      if (identity_) {
        if (sel == nullptr) {
          out->complete.Append(base, m * in_size);
          return;
        }
        // Coalesce consecutive survivors into single memcpy spans.
        size_t j = 0;
        while (j < cnt) {
          size_t k = j + 1;
          while (k < cnt && sel[k] == sel[k - 1] + 1) ++k;
          out->complete.Append(base + size_t{sel[j]} * in_size,
                               (k - j) * in_size);
          j = k;
        }
        return;
      }

      uint8_t* rows = out->complete.AppendUninitialized(cnt * out_size);
      std::memset(rows, 0, cnt * out_size);  // padding, like TupleWriter
      for (const FieldPlan& p : plans_) {
        switch (p.kind) {
          case FieldPlan::Kind::kCopy: {
            uint8_t* dst = rows + p.dst_offset;
            for (size_t j = 0; j < cnt; ++j, dst += out_size) {
              const size_t src_row = sel != nullptr ? sel[j] : j;
              std::memcpy(dst, base + src_row * in_size + p.src_offset,
                          p.width);
            }
            break;
          }
          case FieldPlan::Kind::kInt:
            if (tls.i64.size() < cnt) tls.i64.resize(cnt);
            p.prog.EvalBatchInt64(base, in_size, sel, cnt, tls.i64.data());
            ScatterInt(rows, out_size, p, tls.i64.data(), cnt);
            break;
          case FieldPlan::Kind::kDouble:
            if (tls.f64.size() < cnt) tls.f64.resize(cnt);
            p.prog.EvalBatchDouble(base, in_size, sel, cnt, tls.f64.data());
            ScatterDouble(rows, out_size, p, tls.f64.data(), cnt);
            break;
          case FieldPlan::Kind::kMaxTs:
            break;  // single-input plans never use kMaxTs
        }
      }
    });
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<ConcatAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<ConcatAssembly>();
  }

 private:
  bool identity_;
  bool vectorizable_;
  CompiledExpr where_;
  std::vector<FieldPlan> plans_;
};

// ---------------------------------------------------------------------------
// Vectorized aggregation. The batch is cut into pane runs (for count-based
// windows the boundaries are pure arithmetic; for time-based windows a
// timestamp-column scan); each run evaluates the predicate into a selection
// vector, the aggregate inputs / group keys into typed columns, and fuses
// the accumulate pass over the survivors. Grouped tasks draw their hash
// table from a per-operator pool instead of allocating per task.
// ---------------------------------------------------------------------------

class CpuVectorAggregationOperator final : public Operator {
 public:
  explicit CpuVectorAggregationOperator(const QueryDef* q)
      : Operator(q),
        fmt_(PaneFormat::For(*q)),
        table_pool_(
            [key = fmt_.key_size, na = fmt_.num_aggs] {
              return std::make_unique<GroupHashTable>(key, na,
                                                      kGroupTableTaskCapacity);
            },
            /*preallocate=*/fmt_.grouped() ? 1 : 0) {
    SABER_CHECK(fmt_.num_aggs <= kMaxAggregatesPerQuery);
    SABER_CHECK(fmt_.key_size <= kMaxGroupKeyBytes);
    if (q->where != nullptr) {
      where_ = CompiledExpr::Compile(*q->where, q->input_schema[0]);
    }
    for (const auto& a : q->aggregates) {
      inputs_.push_back(a.input != nullptr
                            ? CompiledExpr::Compile(*a.input, q->input_schema[0])
                            : CompiledExpr());
    }
    for (const auto& k : q->group_by) {
      keys_.push_back(CompiledExpr::Compile(*k, q->input_schema[0]));
    }
    vectorizable_ = q->where == nullptr || where_.lowerable();
    for (const auto& c : inputs_) {
      if (!c.empty() && !c.lowerable()) vectorizable_ = false;
    }
    for (const auto& c : keys_) {
      if (!c.lowerable()) vectorizable_ = false;
    }
  }

  bool vectorizable() const { return vectorizable_; }

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    if (query_->window[0].session()) {
      if (fmt_.grouped()) {
        ProcessGroupedSession(ctx, out);
      } else {
        ProcessUngroupedSession(ctx, out);
      }
      return;
    }
    if (fmt_.grouped()) {
      ProcessGrouped(ctx, out);
    } else {
      ProcessUngrouped(ctx, out);
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<AggregationAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<AggregationAssembly>(*query_);
  }

 private:
  /// Invokes run_fn(run_base, run_count, run_ts, batch_index) for each
  /// maximal gap-free run within one contiguous segment of the batch. The
  /// callers' merge-or-flush accumulator rejoins runs split by the ring
  /// wrap, so segment boundaries match the scalar operator's exactly (the
  /// differential fuzz suite compares TaskResults byte-for-byte).
  template <typename Fn>
  void ForEachSessionRun(const StreamBatch& in, int64_t gap, size_t tuple_size,
                         Fn&& run_fn) const {
    VecScratch& tls = Tls();
    ForEachSegment(in.data, tuple_size,
                   [&](const uint8_t* base, size_t m, size_t seg_off) {
      if (tls.ts.size() < m) tls.ts.resize(m);
      for (size_t i = 0; i < m; ++i) tls.ts[i] = LoadTs(base + i * tuple_size);
      size_t i = 0;
      while (i < m) {
        size_t j = i + 1;
        while (j < m && SessionExtends(tls.ts[j - 1], tls.ts[j], gap)) ++j;
        run_fn(base + i * tuple_size, j - i, tls.ts.data() + i, seg_off + i);
        i = j;
      }
    });
  }

  void ProcessUngroupedSession(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const WindowDefinition& w = query_->window[0];
    const size_t tsz = query_->input_schema[0].tuple_size();
    const size_t na = fmt_.num_aggs;
    const int64_t gap = w.gap();
    const bool has_where = !where_.empty();
    VecScratch& tls = Tls();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    AggState cur[kMaxAggregatesPerQuery];
    bool open = false;
    int64_t first_ts = 0, last_ts = 0, seg = 0;

    auto flush = [&]() {
      if (!open) return;
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      out->partials.AppendValue<int64_t>(first_ts);
      out->partials.AppendValue<int64_t>(last_ts);
      out->partials.Append(cur, na * sizeof(AggState));
      out->panes.push_back(PaneEntry{
          seg++, off, static_cast<uint32_t>(fmt_.session_ungrouped_bytes())});
      open = false;
    };

    ForEachSessionRun(in, gap, tsz,
                      [&](const uint8_t* base, size_t m, const int64_t* ts,
                          size_t) {
      if (open && !SessionExtends(last_ts, ts[0], gap)) flush();
      if (!open) {
        open = true;
        first_ts = ts[0];
        for (size_t a = 0; a < na; ++a) AggInit(&cur[a]);
      }
      last_ts = ts[m - 1];
      const uint32_t* sel = nullptr;
      size_t cnt = m;
      if (has_where) {
        if (tls.sel.size() < m) tls.sel.resize(m);
        cnt = where_.EvalBatchBool(base, tsz, m, tls.sel.data());
        sel = tls.sel.data();
      }
      if (cnt == 0) return;
      if (tls.f64.size() < cnt) tls.f64.resize(cnt);
      for (size_t a = 0; a < na; ++a) {
        if (inputs_[a].empty()) {  // count(*): every survivor contributes 0.0
          for (size_t j = 0; j < cnt; ++j) AggAdd(&cur[a], 0.0);
          continue;
        }
        inputs_[a].EvalBatchDouble(base, tsz, sel, cnt, tls.f64.data());
        for (size_t j = 0; j < cnt; ++j) AggAdd(&cur[a], tls.f64[j]);
      }
    });
    flush();
  }

  void ProcessGroupedSession(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const WindowDefinition& w = query_->window[0];
    const size_t tsz = query_->input_schema[0].tuple_size();
    const size_t na = fmt_.num_aggs;
    const size_t nk = keys_.size();
    const size_t key_size = fmt_.key_size;
    const int64_t gap = w.gap();
    VecScratch& tls = Tls();
    const bool has_where = !where_.empty();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    std::unique_ptr<GroupHashTable> table = table_pool_.Acquire();
    bool open = false;
    int64_t first_ts = 0, last_ts = 0, seg = 0;

    auto flush = [&]() {
      if (!open) return;
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      // Header even when the table is empty (see the scalar operator).
      out->partials.AppendValue<int64_t>(first_ts);
      out->partials.AppendValue<int64_t>(last_ts);
      if (table->size() > 0) table->SerializeTo(&out->partials);
      out->panes.push_back(PaneEntry{
          seg++, off, static_cast<uint32_t>(out->partials.size() - off)});
      table->Clear();
      open = false;
    };

    ForEachSessionRun(in, gap, tsz,
                      [&](const uint8_t* base, size_t m, const int64_t* ts,
                          size_t batch_index) {
      if (open && !SessionExtends(last_ts, ts[0], gap)) flush();
      if (!open) {
        open = true;
        first_ts = ts[0];
      }
      last_ts = ts[m - 1];
      const uint32_t* sel = nullptr;
      size_t cnt = m;
      if (has_where) {
        if (tls.sel.size() < m) tls.sel.resize(m);
        cnt = where_.EvalBatchBool(base, tsz, m, tls.sel.data());
        sel = tls.sel.data();
      }
      if (cnt == 0) return;

      if (tls.keys.size() < cnt * key_size) tls.keys.resize(cnt * key_size);
      if (tls.i64.size() < cnt) tls.i64.resize(cnt);
      for (size_t k = 0; k < nk; ++k) {
        keys_[k].EvalBatchInt64(base, tsz, sel, cnt, tls.i64.data());
        uint8_t* dst = tls.keys.data() + k * 8;
        for (size_t j = 0; j < cnt; ++j, dst += key_size) {
          std::memcpy(dst, &tls.i64[j], sizeof(int64_t));
        }
      }
      if (tls.hashes.size() < cnt) tls.hashes.resize(cnt);
      for (size_t j = 0; j < cnt; ++j) {
        tls.hashes[j] = table->Hash(tls.keys.data() + j * key_size);
      }
      if (tls.f64.size() < na * cnt) tls.f64.resize(na * cnt);
      for (size_t a = 0; a < na; ++a) {
        double* col = tls.f64.data() + a * cnt;
        if (inputs_[a].empty()) {
          std::fill(col, col + cnt, 0.0);
        } else {
          inputs_[a].EvalBatchDouble(base, tsz, sel, cnt, col);
        }
      }
      for (size_t j = 0; j < cnt; ++j) {
        const uint8_t* key = tls.keys.data() + j * key_size;
        const size_t row = sel != nullptr ? sel[j] : j;
        const int32_t idx = static_cast<int32_t>(batch_index + row);
        const int64_t row_ts = ts[row];
        if (table->NeedsGrow()) table->Grow();
        AggState* aggs = table->UpsertHashed(tls.hashes[j], key, idx, row_ts);
        if (aggs == nullptr) {
          table->Grow();
          aggs = table->UpsertHashed(tls.hashes[j], key, idx, row_ts);
          SABER_CHECK(aggs != nullptr);
        }
        for (size_t a = 0; a < na; ++a) {
          AggAdd(&aggs[a], tls.f64[a * cnt + j]);
        }
      }
    });
    flush();

    // Pool only never-grown tables (see ProcessGrouped).
    if (table->capacity() == kGroupTableTaskCapacity) {
      table->Clear();
      table_pool_.Release(std::move(table));
    }
  }

  /// Invokes run_fn(run_base, run_count, run_ts, pane, batch_index) for each
  /// maximal same-pane run within the batch, in order. `run_ts` points at
  /// the run's decoded timestamp column.
  template <typename Fn>
  void ForEachPaneRun(const StreamBatch& in, const WindowDefinition& w,
                      size_t tuple_size, Fn&& run_fn) const {
    const int64_t g = w.pane_size();
    VecScratch& tls = Tls();
    ForEachSegment(in.data, tuple_size,
                   [&](const uint8_t* base, size_t m, size_t seg_off) {
      if (tls.ts.size() < m) tls.ts.resize(m);
      for (size_t i = 0; i < m; ++i) tls.ts[i] = LoadTs(base + i * tuple_size);
      size_t i = 0;
      while (i < m) {
        const int64_t axis = in.AxisOf(w, seg_off + i, tls.ts[i]);
        const int64_t pane = axis / g;
        size_t j;
        if (w.time_based()) {
          j = i + 1;
          while (j < m && tls.ts[j] / g == pane) ++j;
        } else {
          // Count axis advances by one per tuple: the run ends at the next
          // pane boundary (or the segment end).
          const int64_t remain = (pane + 1) * g - axis;
          j = std::min(m, i + static_cast<size_t>(remain));
        }
        run_fn(base + i * tuple_size, j - i, tls.ts.data() + i, pane,
               seg_off + i);
        i = j;
      }
    });
  }

  void ProcessUngrouped(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const WindowDefinition& w = query_->window[0];
    const size_t tsz = query_->input_schema[0].tuple_size();
    const size_t na = fmt_.num_aggs;
    const bool has_where = !where_.empty();
    VecScratch& tls = Tls();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    AggState cur[kMaxAggregatesPerQuery];
    int64_t cur_pane = -1;
    int64_t cur_ts = 0;

    auto flush = [&]() {
      if (cur_pane < 0) return;
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      out->partials.AppendValue<int64_t>(cur_ts);
      out->partials.Append(cur, na * sizeof(AggState));
      out->panes.push_back(PaneEntry{
          cur_pane, off, static_cast<uint32_t>(fmt_.ungrouped_bytes())});
    };

    ForEachPaneRun(in, w, tsz,
                   [&](const uint8_t* base, size_t m, const int64_t* ts,
                       int64_t pane, size_t) {
      if (pane != cur_pane) {
        flush();
        cur_pane = pane;
        for (size_t a = 0; a < na; ++a) AggInit(&cur[a]);
      }
      cur_ts = ts[m - 1];  // last tuple of the pane so far, filtered or not
      const uint32_t* sel = nullptr;
      size_t cnt = m;
      if (has_where) {
        if (tls.sel.size() < m) tls.sel.resize(m);
        cnt = where_.EvalBatchBool(base, tsz, m, tls.sel.data());
        sel = tls.sel.data();
      }
      if (cnt == 0) return;
      if (tls.f64.size() < cnt) tls.f64.resize(cnt);
      for (size_t a = 0; a < na; ++a) {
        if (inputs_[a].empty()) {  // count(*): every survivor contributes 0.0
          for (size_t j = 0; j < cnt; ++j) AggAdd(&cur[a], 0.0);
          continue;
        }
        inputs_[a].EvalBatchDouble(base, tsz, sel, cnt, tls.f64.data());
        for (size_t j = 0; j < cnt; ++j) AggAdd(&cur[a], tls.f64[j]);
      }
    });
    flush();
  }

  void ProcessGrouped(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const WindowDefinition& w = query_->window[0];
    const size_t tsz = query_->input_schema[0].tuple_size();
    const size_t na = fmt_.num_aggs;
    const size_t nk = keys_.size();
    const size_t key_size = fmt_.key_size;
    VecScratch& tls = Tls();
    const bool has_where = !where_.empty();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    std::unique_ptr<GroupHashTable> table = table_pool_.Acquire();
    int64_t cur_pane = -1;

    auto flush = [&]() {
      if (cur_pane < 0 || table->size() == 0) {
        if (cur_pane >= 0) table->Clear();
        return;
      }
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      table->SerializeTo(&out->partials);
      out->panes.push_back(PaneEntry{
          cur_pane, off, static_cast<uint32_t>(out->partials.size() - off)});
      table->Clear();
    };

    ForEachPaneRun(in, w, tsz,
                   [&](const uint8_t* base, size_t m, const int64_t* ts,
                       int64_t pane, size_t batch_index) {
      if (pane != cur_pane) {
        flush();
        cur_pane = pane;
      }
      const uint32_t* sel = nullptr;
      size_t cnt = m;
      if (has_where) {
        if (tls.sel.size() < m) tls.sel.resize(m);
        cnt = where_.EvalBatchBool(base, tsz, m, tls.sel.data());
        sel = tls.sel.data();
      }
      if (cnt == 0) return;

      // Pack keys with the precomputed offset plan (key k at byte k*8) and
      // hash the whole run before probing.
      if (tls.keys.size() < cnt * key_size) tls.keys.resize(cnt * key_size);
      if (tls.i64.size() < cnt) tls.i64.resize(cnt);
      for (size_t k = 0; k < nk; ++k) {
        keys_[k].EvalBatchInt64(base, tsz, sel, cnt, tls.i64.data());
        uint8_t* dst = tls.keys.data() + k * 8;
        for (size_t j = 0; j < cnt; ++j, dst += key_size) {
          std::memcpy(dst, &tls.i64[j], sizeof(int64_t));
        }
      }
      if (tls.hashes.size() < cnt) tls.hashes.resize(cnt);
      for (size_t j = 0; j < cnt; ++j) {
        tls.hashes[j] = table->Hash(tls.keys.data() + j * key_size);
      }
      if (tls.f64.size() < na * cnt) tls.f64.resize(na * cnt);
      for (size_t a = 0; a < na; ++a) {
        double* col = tls.f64.data() + a * cnt;
        if (inputs_[a].empty()) {
          std::fill(col, col + cnt, 0.0);
        } else {
          inputs_[a].EvalBatchDouble(base, tsz, sel, cnt, col);
        }
      }

      for (size_t j = 0; j < cnt; ++j) {
        const uint8_t* key = tls.keys.data() + j * key_size;
        const size_t row = sel != nullptr ? sel[j] : j;
        const int32_t idx = static_cast<int32_t>(batch_index + row);
        const int64_t row_ts = ts[row];
        if (table->NeedsGrow()) table->Grow();
        AggState* aggs = table->UpsertHashed(tls.hashes[j], key, idx, row_ts);
        if (aggs == nullptr) {
          table->Grow();
          aggs = table->UpsertHashed(tls.hashes[j], key, idx, row_ts);
          SABER_CHECK(aggs != nullptr);
        }
        for (size_t a = 0; a < na; ++a) {
          AggAdd(&aggs[a], tls.f64[a * cnt + j]);
        }
      }
    });
    flush();

    // Pool only never-grown tables: SerializeTo order depends on capacity,
    // and a pooled larger-capacity table would serialize the same groups in
    // a different order than the freshly-built table another run would use
    // (see kGroupTableTaskCapacity).
    if (table->capacity() == kGroupTableTaskCapacity) {
      table->Clear();
      table_pool_.Release(std::move(table));
    }
  }

  PaneFormat fmt_;
  bool vectorizable_;
  CompiledExpr where_;
  std::vector<CompiledExpr> inputs_;  // empty program = count(*)
  std::vector<CompiledExpr> keys_;
  mutable ObjectPool<GroupHashTable> table_pool_;
};

// ---------------------------------------------------------------------------
// Vectorized θ-join. The timestamp-merge outer loop is unchanged (it is
// cheap bookkeeping); the probe inner loop is batched: the partner range
// [scan_lo, k_end) is delimited with pure axis arithmetic (no per-candidate
// FloorDiv — the window-overlap checks reduce to axis bounds because
// partners are axis-ordered), the predicate runs batch-at-a-time over the
// candidate pointers with the new element broadcast, and survivors are
// emitted through the same field plans as the stateless operator.
// ---------------------------------------------------------------------------

class CpuVectorJoinOperator final : public Operator {
 public:
  explicit CpuVectorJoinOperator(const QueryDef* q) : Operator(q) {
    pred_ = CompiledExpr::Compile(*q->join_predicate, q->input_schema[0],
                                  &q->input_schema[1]);
    plans_ = BuildFieldPlans(q->join_select, q->output_schema,
                             q->input_schema[0], &q->input_schema[1],
                             /*field0_is_max_ts=*/true);
    vectorizable_ = pred_.lowerable() && PlansLowerable(plans_);
  }

  bool vectorizable() const { return vectorizable_; }

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    const StreamBatch& L = ctx.input[0];
    const StreamBatch& R = ctx.input[1];
    const WindowDefinition& wl = query_->window[0];
    out->axis_p = L.AxisP(wl);
    out->axis_q = L.AxisQ(wl);

    const size_t nl = L.num_tuples();
    const size_t nr = R.num_tuples();
    const size_t hl = L.history_tuples();
    const size_t hr = R.history_tuples();
    size_t r_scan_lo = 0;
    size_t l_scan_lo = 0;

    size_t il = 0, ir = 0;
    while (il < nl || ir < nr) {
      bool take_left;
      if (il >= nl) {
        take_left = false;
      } else if (ir >= nr) {
        take_left = true;
      } else {
        take_left = LoadTs(L.tuple(il)) <= LoadTs(R.tuple(ir));  // left wins ties
      }
      if (take_left) {
        JoinNewElement</*kNewIsLeft=*/true>(L, R, il, ir, hr, &r_scan_lo, out);
        ++il;
      } else {
        JoinNewElement</*kNewIsLeft=*/false>(R, L, ir, il, hl, &l_scan_lo, out);
        ++ir;
      }
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<ConcatAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<ConcatAssembly>();
  }

 private:
  template <bool kNewIsLeft>
  void JoinNewElement(const StreamBatch& nw, const StreamBatch& opp,
                      size_t new_idx, size_t opp_prefix, size_t opp_hist,
                      size_t* scan_lo, TaskResult* out) const {
    const WindowDefinition& wn = query_->window[kNewIsLeft ? 0 : 1];
    const WindowDefinition& wo = query_->window[kNewIsLeft ? 1 : 0];

    const uint8_t* tptr = nw.tuple(new_idx);
    const int64_t ts = LoadTs(tptr);
    const int64_t axis_n =
        wn.time_based() ? ts : nw.first_index + static_cast<int64_t>(new_idx);
    const WindowIndexRange jn = WindowsOf(wn, axis_n);
    if (jn.empty()) return;

    // Scalar-path equivalences (FloorDiv(x, s) >= t <=> x >= t*s for s > 0):
    // - permanent skip:  FloorDiv(axis_o, slide) <  jn.lo  <=>  axis_o < lo_bound
    // - probe stop:      jo.lo > jn.hi                     <=>  axis_o >= hi_bound
    const size_t total = opp_hist + opp_prefix;
    const int64_t lo_bound = jn.lo * wo.slide;
    const int64_t hi_bound = jn.hi * wo.slide + wo.size;
    while (*scan_lo < total &&
           OppAxis(opp, wo, *scan_lo, opp_hist) < lo_bound) {
      ++(*scan_lo);
    }
    size_t k_end = *scan_lo;
    while (k_end < total && OppAxis(opp, wo, k_end, opp_hist) < hi_bound) {
      ++k_end;
    }
    const size_t cand = k_end - *scan_lo;
    if (cand == 0) return;

    VecScratch& tls = Tls();
    if (tls.ptrs.size() < cand) tls.ptrs.resize(cand);
    for (size_t k = *scan_lo; k < k_end; ++k) {
      tls.ptrs[k - *scan_lo] = OppTuple(opp, k, opp_hist);
    }
    if (tls.sel.size() < cand) tls.sel.resize(cand);
    size_t m;
    if (kNewIsLeft) {
      m = pred_.EvalBatchBoolPairs(nullptr, tptr, tls.ptrs.data(), nullptr,
                                   cand, tls.sel.data());
    } else {
      m = pred_.EvalBatchBoolPairs(tls.ptrs.data(), nullptr, nullptr, tptr,
                                   cand, tls.sel.data());
    }
    if (m == 0) return;
    if (tls.sel_ptrs.size() < m) tls.sel_ptrs.resize(m);
    for (size_t j = 0; j < m; ++j) tls.sel_ptrs[j] = tls.ptrs[tls.sel[j]];
    EmitPairs<kNewIsLeft>(tptr, ts, tls.sel_ptrs.data(), m, out);
  }

  template <bool kNewIsLeft>
  void EmitPairs(const uint8_t* tptr, int64_t ts,
                 const uint8_t* const* opp_ptrs, size_t m,
                 TaskResult* out) const {
    const size_t out_size = query_->output_schema.tuple_size();
    VecScratch& tls = Tls();
    uint8_t* rows = out->complete.AppendUninitialized(m * out_size);
    std::memset(rows, 0, m * out_size);  // padding, like TupleWriter

    const uint8_t* const* larr = kNewIsLeft ? nullptr : opp_ptrs;
    const uint8_t* lfix = kNewIsLeft ? tptr : nullptr;
    const uint8_t* const* rarr = kNewIsLeft ? opp_ptrs : nullptr;
    const uint8_t* rfix = kNewIsLeft ? nullptr : tptr;

    for (const FieldPlan& p : plans_) {
      switch (p.kind) {
        case FieldPlan::Kind::kMaxTs: {
          uint8_t* dst = rows + p.dst_offset;
          for (size_t j = 0; j < m; ++j, dst += out_size) {
            const int64_t v = std::max(ts, LoadTs(opp_ptrs[j]));
            std::memcpy(dst, &v, sizeof(v));
          }
          break;
        }
        case FieldPlan::Kind::kCopy: {
          const bool src_is_new = (p.side == 0) == kNewIsLeft;
          uint8_t* dst = rows + p.dst_offset;
          for (size_t j = 0; j < m; ++j, dst += out_size) {
            const uint8_t* src = src_is_new ? tptr : opp_ptrs[j];
            std::memcpy(dst, src + p.src_offset, p.width);
          }
          break;
        }
        case FieldPlan::Kind::kInt:
          if (tls.i64.size() < m) tls.i64.resize(m);
          p.prog.EvalBatchInt64Pairs(larr, lfix, rarr, rfix, m,
                                     tls.i64.data());
          ScatterInt(rows, out_size, p, tls.i64.data(), m);
          break;
        case FieldPlan::Kind::kDouble:
          if (tls.f64.size() < m) tls.f64.resize(m);
          p.prog.EvalBatchDoublePairs(larr, lfix, rarr, rfix, m,
                                      tls.f64.data());
          ScatterDouble(rows, out_size, p, tls.f64.data(), m);
          break;
      }
    }
  }

  bool vectorizable_;
  CompiledExpr pred_;
  std::vector<FieldPlan> plans_;
};

}  // namespace

// Plan-time path selection compiles each expression exactly once: the
// vectorized operator's constructor lowers everything it needs and reports
// vectorizable(); MakeCpuOperator falls back to the scalar operator when
// any program is not batch-evaluable.

bool CpuQueryVectorizable(const QueryDef& q) {
  if (q.is_udf()) return false;
  if (q.is_join()) return CpuVectorJoinOperator(&q).vectorizable();
  if (q.is_aggregation()) return CpuVectorAggregationOperator(&q).vectorizable();
  return CpuVectorStatelessOperator(&q).vectorizable();
}

std::unique_ptr<Operator> MakeCpuOperator(const QueryDef* query,
                                          bool vectorized) {
  if (query->is_udf()) return MakeCpuUdfOperator(query);
  if (query->is_join()) {
    if (vectorized) {
      auto op = std::make_unique<CpuVectorJoinOperator>(query);
      if (op->vectorizable()) return op;
    }
    return std::make_unique<CpuJoinOperator>(query);
  }
  if (query->is_aggregation()) {
    if (vectorized) {
      auto op = std::make_unique<CpuVectorAggregationOperator>(query);
      if (op->vectorizable()) return op;
    }
    return std::make_unique<CpuAggregationOperator>(query);
  }
  if (vectorized) {
    auto op = std::make_unique<CpuVectorStatelessOperator>(query);
    if (op->vectorizable()) return op;
  }
  return std::make_unique<CpuStatelessOperator>(query);
}

}  // namespace saber
