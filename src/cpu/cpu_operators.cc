#include "cpu/cpu_operators.h"

#include <algorithm>
#include <cstring>

#include "cpu/fragment_assembly.h"
#include "cpu/udf_operator.h"
#include "relational/hash_table.h"

namespace saber {

namespace {

// ---------------------------------------------------------------------------
// Stateless operators: projection and selection (§5.3 "a single scan over
// the stream batch"). With IStream semantics every input tuple contributes
// at most one output tuple, independent of the window definition — which is
// why Fig. 11a shows the slide having no effect on SELECT throughput.
// ---------------------------------------------------------------------------

class CpuStatelessOperator final : public Operator {
 public:
  explicit CpuStatelessOperator(const QueryDef* q) : Operator(q) {
    identity_ = DetectIdentity(*q);
  }

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    const StreamBatch& in = ctx.input[0];
    const Schema& schema = query_->input_schema[0];
    const Schema& out_schema = query_->output_schema;
    const size_t n = in.num_tuples();
    const size_t in_size = schema.tuple_size();
    const size_t out_size = out_schema.tuple_size();
    const Expression* where = query_->where.get();

    out->axis_p = in.AxisP(query_->window[0]);
    out->axis_q = in.AxisQ(query_->window[0]);
    out->complete.Reserve(n * (identity_ ? in_size : out_size));

    for (size_t i = 0; i < n; ++i) {
      const uint8_t* bytes = in.tuple(i);
      TupleRef t(bytes, &schema);
      if (where != nullptr && !where->EvalBool(t, nullptr)) continue;
      if (identity_) {
        // Direct byte forwarding (§5.1).
        out->complete.Append(bytes, in_size);
        continue;
      }
      uint8_t* row = out->complete.AppendUninitialized(out_size);
      TupleWriter wr(row, &out_schema);
      for (size_t f = 0; f < query_->select.size(); ++f) {
        const Expression& e = *query_->select[f];
        switch (out_schema.field(f).type) {
          case DataType::kInt32:
            wr.SetInt32(f, static_cast<int32_t>(e.EvalInt64(t, nullptr)));
            break;
          case DataType::kInt64:
            wr.SetInt64(f, e.EvalInt64(t, nullptr));
            break;
          default:
            wr.SetNumeric(f, e.EvalDouble(t, nullptr));
            break;
        }
      }
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<ConcatAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<ConcatAssembly>();
  }

 private:
  static bool DetectIdentity(const QueryDef& q) {
    if (q.select.size() != q.input_schema[0].num_fields()) return false;
    for (size_t i = 0; i < q.select.size(); ++i) {
      const auto* col = q.select[i]->kind() == Expression::Kind::kColumn
                            ? static_cast<const ColumnExpr*>(q.select[i].get())
                            : nullptr;
      if (col == nullptr || col->field() != i) return false;
    }
    return q.output_schema.tuple_size() == q.input_schema[0].tuple_size();
  }

  bool identity_;
};

// ---------------------------------------------------------------------------
// Aggregation: the batch operator function partitions the stream batch into
// panes and computes one partial aggregate per pane (§5.3). Finalization of
// window results happens in the assembly operator function
// (AggregationAssembly), which merges pane partials incrementally.
// ---------------------------------------------------------------------------

class CpuAggregationOperator final : public Operator {
 public:
  explicit CpuAggregationOperator(const QueryDef* q)
      : Operator(q), fmt_(PaneFormat::For(*q)) {}

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    if (fmt_.grouped()) {
      ProcessGrouped(ctx, out);
    } else {
      ProcessUngrouped(ctx, out);
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<AggregationAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<AggregationAssembly>(*query_);
  }

 private:
  void ProcessUngrouped(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const Schema& schema = query_->input_schema[0];
    const WindowDefinition& w = query_->window[0];
    const Expression* where = query_->where.get();
    const size_t n = in.num_tuples();
    const size_t na = fmt_.num_aggs;
    const int64_t g = w.pane_size();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    AggState cur[16];
    SABER_CHECK(na <= 16);
    int64_t cur_pane = -1;
    int64_t cur_ts = 0;

    auto flush = [&]() {
      if (cur_pane < 0) return;
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      out->partials.AppendValue<int64_t>(cur_ts);
      out->partials.Append(cur, na * sizeof(AggState));
      out->panes.push_back(
          PaneEntry{cur_pane, off, static_cast<uint32_t>(fmt_.ungrouped_bytes())});
    };

    for (size_t i = 0; i < n; ++i) {
      TupleRef t(in.tuple(i), &schema);
      const int64_t ts = t.timestamp();
      const int64_t pane = in.AxisOf(w, i, ts) / g;
      if (pane != cur_pane) {
        flush();
        cur_pane = pane;
        cur_ts = ts;
        for (size_t a = 0; a < na; ++a) AggInit(&cur[a]);
      }
      cur_ts = ts;
      if (where != nullptr && !where->EvalBool(t, nullptr)) continue;
      for (size_t a = 0; a < na; ++a) {
        const auto& spec = query_->aggregates[a];
        const double v =
            spec.input != nullptr ? spec.input->EvalDouble(t, nullptr) : 0.0;
        AggAdd(&cur[a], v);
      }
    }
    flush();
  }

  void ProcessGrouped(const TaskContext& ctx, TaskResult* out) const {
    const StreamBatch& in = ctx.input[0];
    const Schema& schema = query_->input_schema[0];
    const WindowDefinition& w = query_->window[0];
    const Expression* where = query_->where.get();
    const size_t n = in.num_tuples();
    const size_t na = fmt_.num_aggs;
    const size_t nk = query_->group_by.size();
    const int64_t g = w.pane_size();

    out->axis_p = in.AxisP(w);
    out->axis_q = in.AxisQ(w);

    GroupHashTable table(fmt_.key_size, na, 256);
    int64_t cur_pane = -1;
    uint8_t key[64];
    SABER_CHECK(fmt_.key_size <= sizeof(key));

    auto flush = [&]() {
      if (cur_pane < 0 || table.size() == 0) {
        if (cur_pane >= 0) table.Clear();
        return;
      }
      const uint32_t off = static_cast<uint32_t>(out->partials.size());
      table.SerializeTo(&out->partials);
      out->panes.push_back(PaneEntry{
          cur_pane, off, static_cast<uint32_t>(out->partials.size() - off)});
      table.Clear();
    };

    for (size_t i = 0; i < n; ++i) {
      TupleRef t(in.tuple(i), &schema);
      const int64_t ts = t.timestamp();
      const int64_t pane = in.AxisOf(w, i, ts) / g;
      if (pane != cur_pane) {
        flush();
        cur_pane = pane;
      }
      if (where != nullptr && !where->EvalBool(t, nullptr)) continue;
      for (size_t k = 0; k < nk; ++k) {
        const int64_t kv = query_->group_by[k]->EvalInt64(t, nullptr);
        std::memcpy(key + k * 8, &kv, sizeof(kv));
      }
      if (table.NeedsGrow()) table.Grow();
      AggState* aggs = table.Upsert(key, static_cast<int32_t>(i), ts);
      if (aggs == nullptr) {
        table.Grow();
        aggs = table.Upsert(key, static_cast<int32_t>(i), ts);
        SABER_CHECK(aggs != nullptr);
      }
      for (size_t a = 0; a < na; ++a) {
        const auto& spec = query_->aggregates[a];
        const double v =
            spec.input != nullptr ? spec.input->EvalDouble(t, nullptr) : 0.0;
        AggAdd(&aggs[a], v);
      }
    }
    flush();
  }

  PaneFormat fmt_;
};

// ---------------------------------------------------------------------------
// Streaming θ-join (§5.3, Kang et al. [35]). The dispatcher aligns the two
// stream batches on a common timestamp cut, so a symmetric merge over the
// two batches — joining each arriving tuple against the opposite stream's
// current window contents (history + already-processed batch prefix) —
// produces every result pair exactly once, in arrival order. Task execution
// is sequential within the task; parallelism comes from concurrent tasks.
// ---------------------------------------------------------------------------

class CpuJoinOperator final : public Operator {
 public:
  explicit CpuJoinOperator(const QueryDef* q) : Operator(q) {}

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override {
    const StreamBatch& L = ctx.input[0];
    const StreamBatch& R = ctx.input[1];
    const Schema& ls = query_->input_schema[0];
    const Schema& rs = query_->input_schema[1];
    const WindowDefinition& wl = query_->window[0];
    out->axis_p = L.AxisP(wl);
    out->axis_q = L.AxisQ(wl);

    const size_t nl = L.num_tuples();
    const size_t nr = R.num_tuples();
    const size_t hl = L.history_tuples();
    const size_t hr = R.history_tuples();

    // Partner scan lower bounds (amortized O(1) advancement).
    size_t r_scan_lo = 0;  // index into [histR..batchR-prefix] sequence
    size_t l_scan_lo = 0;

    size_t il = 0, ir = 0;
    while (il < nl || ir < nr) {
      bool take_left;
      if (il >= nl) {
        take_left = false;
      } else if (ir >= nr) {
        take_left = true;
      } else {
        TupleRef a(L.tuple(il), &ls);
        TupleRef b(R.tuple(ir), &rs);
        take_left = a.timestamp() <= b.timestamp();  // left wins ties
      }
      if (take_left) {
        JoinNewElement</*kNewIsLeft=*/true>(L, R, il, ir, hr, &r_scan_lo, out);
        ++il;
      } else {
        JoinNewElement</*kNewIsLeft=*/false>(R, L, ir, il, hl, &l_scan_lo, out);
        ++ir;
      }
    }
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<ConcatAssembly*>(state)->Ingest(result, output);
  }

  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<ConcatAssembly>();
  }

 private:
  /// Window-index range containing axis coordinate `x` under definition `w`
  /// (clamped to j >= 0).
  static WindowIndexRange WindowsOf(const WindowDefinition& w, int64_t x) {
    WindowIndexRange r;
    r.lo = std::max<int64_t>(0, FloorDiv(x - w.size, w.slide) + 1);
    r.hi = FloorDiv(x, w.slide);
    return r;
  }

  /// Joins the `new_idx`-th tuple of `nw` (the newly arriving side) against
  /// the opposite side's window contents: its history plus the batch prefix
  /// [0, opp_prefix). `opp_hist` is the history tuple count of the opposite
  /// side; `scan_lo` persists the advancing lower bound across calls.
  template <bool kNewIsLeft>
  void JoinNewElement(const StreamBatch& nw, const StreamBatch& opp,
                      size_t new_idx, size_t opp_prefix, size_t opp_hist,
                      size_t* scan_lo, TaskResult* out) const {
    const Schema& ns = query_->input_schema[kNewIsLeft ? 0 : 1];
    const Schema& os = query_->input_schema[kNewIsLeft ? 1 : 0];
    const WindowDefinition& wn = query_->window[kNewIsLeft ? 0 : 1];
    const WindowDefinition& wo = query_->window[kNewIsLeft ? 1 : 0];

    TupleRef t(nw.tuple(new_idx), &ns);
    const int64_t ts = t.timestamp();
    const int64_t axis_n =
        wn.time_based() ? ts
                        : nw.first_index + static_cast<int64_t>(new_idx);
    const WindowIndexRange jn = WindowsOf(wn, axis_n);
    if (jn.empty()) return;

    // Opposite tuples with window index-range ending before jn.lo can never
    // match this or any later new element: skip them permanently.
    const size_t total = opp_hist + opp_prefix;
    while (*scan_lo < total) {
      const int64_t axis_o = OppAxis(opp, wo, *scan_lo, opp_hist, os);
      if (FloorDiv(axis_o, wo.slide) >= jn.lo) break;
      ++(*scan_lo);
    }

    for (size_t k = *scan_lo; k < total; ++k) {
      const uint8_t* obytes = k < opp_hist
                                  ? opp.history_tuple(k)
                                  : opp.tuple(k - opp_hist);
      TupleRef o(obytes, &os);
      const int64_t axis_o = wo.time_based()
                                 ? o.timestamp()
                                 : OppIndex(opp, k, opp_hist);
      const WindowIndexRange jo = WindowsOf(wo, axis_o);
      if (jo.lo > jn.hi) break;  // partners are axis-ordered: no more matches
      if (jo.hi < jn.lo) continue;
      const TupleRef& l = kNewIsLeft ? t : o;
      const TupleRef& r = kNewIsLeft ? o : t;
      if (!query_->join_predicate->EvalBool(l, &r)) continue;
      EmitPair(l, r, std::max(ts, o.timestamp()), out);
    }
  }

  static int64_t OppIndex(const StreamBatch& opp, size_t k, size_t opp_hist) {
    return k < opp_hist ? opp.history_first_index + static_cast<int64_t>(k)
                        : opp.first_index + static_cast<int64_t>(k - opp_hist);
  }

  int64_t OppAxis(const StreamBatch& opp, const WindowDefinition& wo, size_t k,
                  size_t opp_hist, const Schema& os) const {
    if (!wo.time_based()) return OppIndex(opp, k, opp_hist);
    const uint8_t* b =
        k < opp_hist ? opp.history_tuple(k) : opp.tuple(k - opp_hist);
    return TupleRef(b, &os).timestamp();
  }

  void EmitPair(const TupleRef& l, const TupleRef& r, int64_t ts,
                TaskResult* out) const {
    const Schema& os = query_->output_schema;
    uint8_t* row = out->complete.AppendUninitialized(os.tuple_size());
    TupleWriter wr(row, &os);
    wr.SetInt64(0, ts);  // field 0: max(ts_l, ts_r), stamped by the operator
    for (size_t f = 1; f < query_->join_select.size(); ++f) {
      const Expression& e = *query_->join_select[f];
      if (IsIntegral(os.field(f).type)) {
        const int64_t v = e.EvalInt64(l, &r);
        if (os.field(f).type == DataType::kInt32) {
          wr.SetInt32(f, static_cast<int32_t>(v));
        } else {
          wr.SetInt64(f, v);
        }
      } else {
        wr.SetNumeric(f, e.EvalDouble(l, &r));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Operator> MakeCpuOperator(const QueryDef* query) {
  if (query->is_udf()) return MakeCpuUdfOperator(query);
  if (query->is_join()) return std::make_unique<CpuJoinOperator>(query);
  if (query->is_aggregation()) {
    return std::make_unique<CpuAggregationOperator>(query);
  }
  return std::make_unique<CpuStatelessOperator>(query);
}

}  // namespace saber
