#pragma once

#include <map>
#include <vector>

#include "core/operator.h"
#include "relational/hash_table.h"
#include "relational/two_stacks.h"

/// \file fragment_assembly.h
/// Assembly of window results from window-fragment results (§4.3, §5.3).
/// Aggregation fragments are *pane partials*: for every pane (window_math.h)
/// intersecting a batch, the batch operator emits the pane's partial
/// aggregate (plain AggStates, or a serialized group hash table). The
/// assembly state ingests pane partials strictly in task order, tracks the
/// axis watermark, and emits each window result exactly once — when the
/// watermark passes the window's end. Incremental computation (§5.3) is used
/// when every aggregate is invertible: a running aggregate slides over the
/// pane sequence instead of re-merging panes_per_window panes per emission.
///
/// The same logic serves the CPU and GPGPU back ends ("the result
/// aggregation logic is the same for both", §5.4); only the production of
/// pane partials differs.

namespace saber {

/// Serialized layouts inside TaskResult::partials:
///  - ungrouped pane partial: [int64 max_ts][AggState x num_aggs]
///  - grouped pane partial:   repeated GroupHashTable entries
///    [int64 ts][key bytes][AggState x num_aggs]
struct PaneFormat {
  size_t num_aggs;
  size_t key_size;  // 0 if ungrouped (8 * num group keys otherwise)

  static PaneFormat For(const QueryDef& q) {
    return PaneFormat{q.aggregates.size(),
                      q.grouped() ? AlignUp(q.group_key_size(), 8) : 0};
  }
  bool grouped() const { return key_size > 0; }
  size_t ungrouped_bytes() const { return 8 + num_aggs * sizeof(AggState); }
  size_t grouped_entry_bytes() const {
    return 8 + key_size + num_aggs * sizeof(AggState);
  }
};

/// Assembly state for aggregation queries.
class AggregationAssembly : public AssemblyState {
 public:
  explicit AggregationAssembly(const QueryDef& q);

  /// Ingests one task's pane partials (in task order) and appends every
  /// window result that became final to `output`.
  void Ingest(const TaskResult& result, ByteBuffer* output);

  int64_t next_window() const { return next_window_; }
  int64_t watermark() const { return watermark_; }

 private:
  struct PaneData {
    int64_t max_ts = 0;
    std::vector<AggState> aggs;        // ungrouped
    std::vector<uint8_t> group_bytes;  // grouped: serialized entries
    bool empty_of_groups() const { return group_bytes.empty(); }
  };

  void MergeEntry(int64_t pane, const uint8_t* data, size_t len);
  void EmitReadyWindows(ByteBuffer* output);
  void EmitWindow(int64_t j, ByteBuffer* output);
  void EmitUngroupedRow(int64_t ts, const AggState* aggs, ByteBuffer* output);
  void EmitGroupedWindow(int64_t j, ByteBuffer* output);
  void AdvanceRunning(int64_t j);
  void AdvanceStacks(int64_t j);
  void PruneBefore(int64_t pane);

  const QueryDef& q_;
  const WindowDefinition& w_;
  PaneFormat fmt_;

  std::map<int64_t, PaneData> store_;  // live panes, keyed by pane index
  int64_t next_window_ = 0;            // next window index to consider
  int64_t watermark_ = 0;              // axis position covered so far

  // Incremental (invertible) path: running aggregate over the panes
  // [running_lo_pane_, running_hi_pane_] present in the store. Pruning lags
  // behind running_lo_pane_ so the next advance can still subtract expiring
  // panes.
  bool use_running_;
  bool running_valid_ = false;
  int64_t running_lo_pane_ = 0;
  int64_t running_hi_pane_ = -1;
  std::vector<AggState> running_;

  // Two-stacks path ([50], two_stacks.h) for non-invertible ungrouped
  // aggregates: amortized O(1) merges per pane instead of re-merging
  // panes_per_window panes per emitted window. Final panes are pushed lazily
  // at emission time (a pane may still receive contributions from the next
  // task while its end lies beyond the watermark).
  bool use_stacks_;
  TwoStacksAggregator stacks_;
  std::vector<AggState> stacks_query_;

  // Scratch for grouped emission.
  GroupHashTable scratch_;
  std::vector<std::pair<const uint8_t*, const AggState*>> sort_scratch_;
};

/// Assembly for stateless and join queries: window results are the
/// concatenation of fragment results, so assembly forwards bytes.
class ConcatAssembly : public AssemblyState {
 public:
  void Ingest(const TaskResult& result, ByteBuffer* output) {
    output->Append(result.complete.data(), result.complete.size());
  }
};

}  // namespace saber
