#pragma once

#include <map>
#include <vector>

#include "core/operator.h"
#include "relational/hash_table.h"
#include "relational/two_stacks.h"

/// \file fragment_assembly.h
/// Assembly of window results from window-fragment results (§4.3, §5.3).
/// Aggregation fragments are *pane partials*: for every pane (window_math.h)
/// intersecting a batch, the batch operator emits the pane's partial
/// aggregate (plain AggStates, or a serialized group hash table). The
/// assembly state ingests pane partials strictly in task order, tracks the
/// axis watermark, and emits each window result exactly once — when the
/// watermark passes the window's end. Incremental computation (§5.3) is used
/// when every aggregate is invertible: a running aggregate slides over the
/// pane sequence instead of re-merging panes_per_window panes per emission.
///
/// The same logic serves the CPU and GPGPU back ends ("the result
/// aggregation logic is the same for both", §5.4); only the production of
/// pane partials differs.

namespace saber {

/// Serialized layouts inside TaskResult::partials:
///  - ungrouped pane partial: [int64 max_ts][AggState x num_aggs]
///  - grouped pane partial:   repeated GroupHashTable entries
///    [int64 ts][key bytes][AggState x num_aggs]
///  - session segment (kSession windows; PaneEntry::pane_index is a
///    task-local ordinal, not a grid index):
///      ungrouped: [int64 first_ts][int64 last_ts][AggState x num_aggs]
///      grouped:   [int64 first_ts][int64 last_ts] + repeated entries as
///                 above. The header is present even when every tuple of
///                 the segment was filtered out — the session's extent is
///                 defined by *raw* tuples, so an entry-less segment still
///                 extends (or separates) sessions.
struct PaneFormat {
  size_t num_aggs;
  size_t key_size;  // 0 if ungrouped (8 * num group keys otherwise)

  static PaneFormat For(const QueryDef& q) {
    return PaneFormat{q.aggregates.size(),
                      q.grouped() ? AlignUp(q.group_key_size(), 8) : 0};
  }
  bool grouped() const { return key_size > 0; }
  size_t ungrouped_bytes() const { return 8 + num_aggs * sizeof(AggState); }
  size_t grouped_entry_bytes() const {
    return 8 + key_size + num_aggs * sizeof(AggState);
  }
  /// Session-segment header: [first_ts][last_ts].
  static constexpr size_t kSessionHeaderBytes = 16;
  size_t session_ungrouped_bytes() const {
    return kSessionHeaderBytes + num_aggs * sizeof(AggState);
  }
};

/// Assembly state for aggregation queries.
class AggregationAssembly : public AssemblyState {
 public:
  explicit AggregationAssembly(const QueryDef& q);

  /// Ingests one task's pane partials (in task order) and appends every
  /// window result that became final to `output`.
  void Ingest(const TaskResult& result, ByteBuffer* output);

  int64_t next_window() const { return next_window_; }
  int64_t watermark() const { return watermark_; }

 private:
  struct PaneData {
    int64_t max_ts = 0;
    std::vector<AggState> aggs;        // ungrouped
    std::vector<uint8_t> group_bytes;  // grouped: serialized entries
    bool empty_of_groups() const { return group_bytes.empty(); }
  };

  void MergeEntry(int64_t pane, const uint8_t* data, size_t len);
  void EmitReadyWindows(ByteBuffer* output);
  void EmitWindow(int64_t j, ByteBuffer* output);
  void EmitUngroupedRow(int64_t ts, const AggState* aggs, ByteBuffer* output);
  void EmitGroupedWindow(int64_t j, ByteBuffer* output);
  /// Sorts and writes the groups currently in scratch_ (shared tail of the
  /// grouped pane and session emission paths). All rows carry `window_ts`.
  void EmitGroupedRows(int64_t window_ts, ByteBuffer* output);
  /// Session path: folds one segment partial into the open session,
  /// emitting the previous session first when the segment opens a new one
  /// (its first_ts is more than gap past the open session's last_ts).
  void MergeSessionSegment(const uint8_t* data, size_t len,
                           ByteBuffer* output);
  void EmitSession(ByteBuffer* output);
  void AdvanceRunning(int64_t j);
  void AdvanceStacks(int64_t j);
  void PruneBefore(int64_t pane);

  const QueryDef& q_;
  const WindowDefinition& w_;
  PaneFormat fmt_;

  std::map<int64_t, PaneData> store_;  // live panes, keyed by pane index
  int64_t next_window_ = 0;            // next window index to consider
  int64_t watermark_ = 0;              // axis position covered so far

  // Incremental (invertible) path: running aggregate over the panes
  // [running_lo_pane_, running_hi_pane_] present in the store. Pruning lags
  // behind running_lo_pane_ so the next advance can still subtract expiring
  // panes.
  bool use_running_;
  bool running_valid_ = false;
  int64_t running_lo_pane_ = 0;
  int64_t running_hi_pane_ = -1;
  std::vector<AggState> running_;

  // Two-stacks path ([50], two_stacks.h) for non-invertible ungrouped
  // aggregates: amortized O(1) merges per pane instead of re-merging
  // panes_per_window panes per emitted window. Final panes are pushed lazily
  // at emission time (a pane may still receive contributions from the next
  // task while its end lies beyond the watermark).
  bool use_stacks_;
  TwoStacksAggregator stacks_;
  std::vector<AggState> stacks_query_;

  // Session path (w_.session()): there is no pane grid — segment partials
  // arrive in stream order and fold into a single open-session accumulator.
  // A session closes when a later segment opens more than gap past it, or
  // when the watermark passes last_ts + gap (window_math.h SessionClosed).
  // The final session of a stream never emits: no watermark can ever pass
  // it (mirrors reference.cc).
  bool session_open_ = false;
  int64_t session_first_ts_ = 0;
  int64_t session_last_ts_ = 0;
  int64_t session_group_max_ts_ = 0;   // max entry ts (grouped rows' stamp)
  std::vector<AggState> session_aggs_;        // ungrouped accumulator
  std::vector<uint8_t> session_group_bytes_;  // grouped: serialized entries

  // Scratch for grouped emission.
  GroupHashTable scratch_;
  std::vector<std::pair<const uint8_t*, const AggState*>> sort_scratch_;
};

/// Assembly for stateless and join queries: window results are the
/// concatenation of fragment results, so assembly forwards bytes.
class ConcatAssembly : public AssemblyState {
 public:
  void Ingest(const TaskResult& result, ByteBuffer* output) {
    output->Append(result.complete.data(), result.complete.size());
  }
};

}  // namespace saber
