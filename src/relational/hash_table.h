#pragma once

#include <atomic>
#include <cstring>
#include <memory>

#include "relational/aggregate.h"
#include "runtime/align.h"
#include "runtime/byte_buffer.h"

/// \file hash_table.h
/// Open-addressing, linear-probing GROUP-BY hash table backed by a byte
/// array (§5.3 "statically allocated pool of hash table objects, which are
/// backed by byte arrays"; §5.4 GPGPU variant). The CPU and the simulated
/// GPGPU use the same layout and hash function, which the paper requires so
/// that a tuple inserted on one processor can be located on the other.
///
/// Slot layout (stride bytes, 8-aligned):
///   int32  marker    — -1 if empty, else the index of the first input tuple
///                      that occupied the slot (§5.4); doubles as the claim
///                      word for the GPGPU CAS protocol.
///   int32  pad
///   int64  timestamp — representative (max) timestamp of the group
///   uint8  key[key_size]
///   AggState aggs[num_aggs]
///
/// The single-threaded Upsert is used by CPU operators (one task = one
/// thread); UpsertAtomic is used by simulated GPGPU work items that share a
/// fragment's table.

namespace saber {

/// Initial capacity of the per-task GROUP-BY tables. The vectorized CPU
/// operator pools tables of exactly this capacity (cpu_operators.cc):
/// SerializeTo emits entries in slot order, which depends on the capacity
/// history, so a pooled table must start every task at the same capacity a
/// freshly constructed one would — otherwise two runs over identical input
/// could produce permuted (though semantically equal) pane partials.
inline constexpr size_t kGroupTableTaskCapacity = 256;

class GroupHashTable {
 public:
  GroupHashTable(size_t key_size, size_t num_aggs, size_t min_capacity)
      : key_size_(AlignUp(key_size == 0 ? 1 : key_size, 8)),
        num_aggs_(num_aggs == 0 ? 1 : num_aggs),
        stride_(16 + key_size_ + num_aggs_ * sizeof(AggState)),
        capacity_(NextPowerOfTwo(min_capacity < 8 ? 8 : min_capacity)),
        mask_(capacity_ - 1) {
    data_.Resize(stride_ * capacity_);
    Clear();
  }

  size_t capacity() const { return capacity_; }
  size_t key_size() const { return key_size_; }
  size_t num_aggs() const { return num_aggs_; }
  size_t size() const { return occupied_; }

  void Clear() {
    uint8_t* p = data_.data();
    for (size_t i = 0; i < capacity_; ++i) {
      int32_t minus_one = -1;
      std::memcpy(p + i * stride_, &minus_one, sizeof(minus_one));
    }
    occupied_ = 0;
  }

  /// MurmurHash3 finalizer over the key bytes (identical on CPU and GPGPU).
  uint32_t Hash(const uint8_t* key) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (size_t off = 0; off < key_size_; off += 8) {
      uint64_t chunk = 0;
      std::memcpy(&chunk, key + off, std::min<size_t>(8, key_size_ - off));
      h ^= chunk;
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDULL;
      h ^= h >> 33;
      h *= 0xC4CEB9FE1A85EC53ULL;
      h ^= h >> 33;
    }
    return static_cast<uint32_t>(h);
  }

  /// Finds or creates the group for `key`, single-threaded. Returns the
  /// slot's aggregate array, or nullptr if the table is full (caller grows).
  AggState* Upsert(const uint8_t* key, int32_t tuple_index, int64_t ts) {
    return UpsertHashed(Hash(key), key, tuple_index, ts);
  }

  /// Upsert with a caller-precomputed hash: the vectorized operator hashes
  /// a whole run of packed keys in one pass before probing.
  AggState* UpsertHashed(uint32_t h, const uint8_t* key, int32_t tuple_index,
                         int64_t ts) {
    for (size_t probe = 0; probe < capacity_; ++probe) {
      uint8_t* slot = SlotAt((h + probe) & mask_);
      int32_t marker;
      std::memcpy(&marker, slot, sizeof(marker));
      if (marker == -1) {
        std::memcpy(slot, &tuple_index, sizeof(tuple_index));
        std::memcpy(slot + 8, &ts, sizeof(ts));
        std::memcpy(slot + 16, key, key_size_);
        AggState* aggs = SlotAggs(slot);
        for (size_t a = 0; a < num_aggs_; ++a) AggInit(&aggs[a]);
        ++occupied_;
        return aggs;
      }
      if (std::memcmp(slot + 16, key, key_size_) == 0) {
        int64_t old_ts;
        std::memcpy(&old_ts, slot + 8, sizeof(old_ts));
        if (ts > old_ts) std::memcpy(slot + 8, &ts, sizeof(ts));
        return SlotAggs(slot);
      }
    }
    return nullptr;
  }

  /// Thread-safe variant for simulated GPGPU work items (§5.4): claim the
  /// marker with compare-and-set, then update aggregates atomically. The
  /// caller uses AggAddAtomic on the returned state. Timestamp updates take
  /// the max via CAS.
  AggState* UpsertAtomic(const uint8_t* key, int32_t tuple_index, int64_t ts) {
    const uint32_t h = Hash(key);
    for (size_t probe = 0; probe < capacity_; ++probe) {
      uint8_t* slot = SlotAt((h + probe) & mask_);
      std::atomic_ref<int32_t> marker(*reinterpret_cast<int32_t*>(slot));
      int32_t cur = marker.load(std::memory_order_acquire);
      if (cur == -1) {
        int32_t expected = -1;
        if (marker.compare_exchange_strong(expected, -2,
                                           std::memory_order_acq_rel)) {
          // We own initialization of this slot.
          std::memcpy(slot + 8, &ts, sizeof(ts));
          std::memcpy(slot + 16, key, key_size_);
          AggState* aggs = SlotAggs(slot);
          for (size_t a = 0; a < num_aggs_; ++a) AggInit(&aggs[a]);
          marker.store(tuple_index, std::memory_order_release);
          std::atomic_ref<size_t>(occupied_).fetch_add(1, std::memory_order_relaxed);
          return aggs;
        }
        cur = marker.load(std::memory_order_acquire);
      }
      while (cur == -2) cur = marker.load(std::memory_order_acquire);  // init in flight
      if (std::memcmp(slot + 16, key, key_size_) == 0) {
        std::atomic_ref<int64_t> slot_ts(*reinterpret_cast<int64_t*>(slot + 8));
        int64_t prev = slot_ts.load(std::memory_order_relaxed);
        while (ts > prev && !slot_ts.compare_exchange_weak(
                                prev, ts, std::memory_order_relaxed)) {
        }
        return SlotAggs(slot);
      }
    }
    return nullptr;
  }

  /// Grows the table 2x and rehashes (single-threaded CPU path only).
  void Grow() {
    GroupHashTable bigger(key_size_, num_aggs_, capacity_ * 2);
    bigger.key_size_ = key_size_;  // keep exact (already aligned)
    ForEachOccupied([&](const uint8_t* key, int64_t ts, const AggState* aggs) {
      AggState* dst = bigger.Upsert(key, 0, ts);
      SABER_CHECK(dst != nullptr);
      for (size_t a = 0; a < num_aggs_; ++a) AggMerge(&dst[a], aggs[a]);
    });
    data_ = std::move(bigger.data_);
    capacity_ = bigger.capacity_;
    mask_ = bigger.mask_;
    occupied_ = bigger.occupied_;
  }

  bool NeedsGrow() const { return occupied_ * 10 >= capacity_ * 7; }

  /// Invokes fn(key, timestamp, aggs) for every occupied slot.
  template <typename Fn>
  void ForEachOccupied(Fn&& fn) const {
    const uint8_t* p = data_.data();
    for (size_t i = 0; i < capacity_; ++i) {
      const uint8_t* slot = p + i * stride_;
      int32_t marker;
      std::memcpy(&marker, slot, sizeof(marker));
      if (marker == -1) continue;
      int64_t ts;
      std::memcpy(&ts, slot + 8, sizeof(ts));
      fn(slot + 16, ts, reinterpret_cast<const AggState*>(slot + 16 + key_size_));
    }
  }

  /// Serializes occupied slots as compact entries
  /// [int64 ts][key bytes][AggState x num_aggs] — the window-fragment result
  /// representation that crosses the (simulated) PCIe bus and feeds assembly.
  void SerializeTo(ByteBuffer* out) const {
    ForEachOccupied([&](const uint8_t* key, int64_t ts, const AggState* aggs) {
      out->AppendValue<int64_t>(ts);
      out->Append(key, key_size_);
      out->Append(aggs, num_aggs_ * sizeof(AggState));
    });
  }

  /// Size of one serialized entry.
  size_t entry_size() const {
    return 8 + key_size_ + num_aggs_ * sizeof(AggState);
  }

  /// Merges serialized entries (produced by SerializeTo with identical
  /// key_size/num_aggs) into this table, growing as needed.
  void MergeSerialized(const uint8_t* entries, size_t bytes) {
    const size_t esz = entry_size();
    SABER_CHECK(bytes % esz == 0);
    for (size_t off = 0; off < bytes; off += esz) {
      const uint8_t* e = entries + off;
      int64_t ts;
      std::memcpy(&ts, e, sizeof(ts));
      const uint8_t* key = e + 8;
      const auto* aggs = reinterpret_cast<const AggState*>(e + 8 + key_size_);
      if (NeedsGrow()) Grow();
      AggState* dst = Upsert(key, 0, ts);
      if (dst == nullptr) {
        Grow();
        dst = Upsert(key, 0, ts);
        SABER_CHECK(dst != nullptr);
      }
      for (size_t a = 0; a < num_aggs_; ++a) AggMerge(&dst[a], aggs[a]);
    }
  }

 private:
  uint8_t* SlotAt(size_t i) { return data_.data() + i * stride_; }
  const uint8_t* SlotAt(size_t i) const { return data_.data() + i * stride_; }
  AggState* SlotAggs(uint8_t* slot) {
    return reinterpret_cast<AggState*>(slot + 16 + key_size_);
  }

  size_t key_size_;
  size_t num_aggs_;
  size_t stride_;
  size_t capacity_;
  size_t mask_;
  size_t occupied_ = 0;
  ByteBuffer data_;
};

}  // namespace saber
