#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <string>
#include <vector>

#include "relational/expression.h"

#if !defined(__cpp_lib_atomic_ref)
#error \
    "saber requires C++20: aggregate.h uses std::atomic_ref for lock-free " \
    "partial-aggregate merging. Build with -std=c++20 or newer (a C++17 " \
    "toolchain otherwise fails here with an opaque template error)."
#endif

/// \file aggregate.h
/// Aggregate functions (§2.4, §5.3). The engine computes partial aggregates
/// per *window fragment* and later merges them in the assembly operator
/// function, so every function is expressed over a mergeable POD state.
/// sum/count/avg are additionally *invertible*, enabling the incremental
/// pane-based computation of §5.3 (subtract an expiring pane instead of
/// recomputing the window).

namespace saber {

enum class AggregateFunction : uint8_t { kCount, kSum, kAvg, kMin, kMax };

inline const char* AggregateName(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kCount: return "cnt";
    case AggregateFunction::kSum: return "sum";
    case AggregateFunction::kAvg: return "avg";
    case AggregateFunction::kMin: return "min";
    case AggregateFunction::kMax: return "max";
  }
  return "?";
}

/// True if the function supports removal of values (sum/count/avg).
inline bool Invertible(AggregateFunction f) {
  return f != AggregateFunction::kMin && f != AggregateFunction::kMax;
}

/// One aggregate column in a query: `fn(input) AS name`. For kCount the
/// input expression may be null.
struct AggregateSpec {
  AggregateFunction fn;
  ExprPtr input;  // null for count(*)
  std::string name;
};

/// Mergeable partial-aggregate state. A single POD layout serves all five
/// functions so fragment results can be memcpy'd between buffers and across
/// the simulated PCIe bus.
struct AggState {
  double sum;
  int64_t count;
  double min_v;
  double max_v;
};
static_assert(sizeof(AggState) == 32);

inline void AggInit(AggState* s) {
  s->sum = 0.0;
  s->count = 0;
  s->min_v = std::numeric_limits<double>::infinity();
  s->max_v = -std::numeric_limits<double>::infinity();
}

inline void AggAdd(AggState* s, double v) {
  s->sum += v;
  s->count += 1;
  s->min_v = std::min(s->min_v, v);
  s->max_v = std::max(s->max_v, v);
}

/// Removes a value previously added. Only meaningful for invertible
/// functions; min/max fields become stale and must not be read.
inline void AggRemove(AggState* s, double v) {
  s->sum -= v;
  s->count -= 1;
}

inline void AggMerge(AggState* into, const AggState& from) {
  into->sum += from.sum;
  into->count += from.count;
  into->min_v = std::min(into->min_v, from.min_v);
  into->max_v = std::max(into->max_v, from.max_v);
}

inline double AggFinalize(AggregateFunction f, const AggState& s) {
  switch (f) {
    case AggregateFunction::kCount: return static_cast<double>(s.count);
    case AggregateFunction::kSum: return s.sum;
    case AggregateFunction::kAvg:
      return s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
    case AggregateFunction::kMin: return s.count == 0 ? 0.0 : s.min_v;
    case AggregateFunction::kMax: return s.count == 0 ? 0.0 : s.max_v;
  }
  return 0.0;
}

/// Lock-free double accumulation via CAS on the bit pattern. Used by the
/// simulated GPGPU GROUP-BY kernel where threads of a work group update a
/// shared hash-table slot (§5.4: "atomically increments the aggregate
/// value").
inline void AtomicAddDouble(double* target, double v) {
  auto* bits = reinterpret_cast<uint64_t*>(target);
  std::atomic_ref<uint64_t> ref(*bits);
  uint64_t expected = ref.load(std::memory_order_relaxed);
  for (;;) {
    const double cur = std::bit_cast<double>(expected);
    const uint64_t desired = std::bit_cast<uint64_t>(cur + v);
    if (ref.compare_exchange_weak(expected, desired, std::memory_order_relaxed)) {
      return;
    }
  }
}

inline void AtomicMinDouble(double* target, double v) {
  auto* bits = reinterpret_cast<uint64_t*>(target);
  std::atomic_ref<uint64_t> ref(*bits);
  uint64_t expected = ref.load(std::memory_order_relaxed);
  for (;;) {
    const double cur = std::bit_cast<double>(expected);
    if (v >= cur) return;
    const uint64_t desired = std::bit_cast<uint64_t>(v);
    if (ref.compare_exchange_weak(expected, desired, std::memory_order_relaxed)) {
      return;
    }
  }
}

inline void AtomicMaxDouble(double* target, double v) {
  auto* bits = reinterpret_cast<uint64_t*>(target);
  std::atomic_ref<uint64_t> ref(*bits);
  uint64_t expected = ref.load(std::memory_order_relaxed);
  for (;;) {
    const double cur = std::bit_cast<double>(expected);
    if (v <= cur) return;
    const uint64_t desired = std::bit_cast<uint64_t>(v);
    if (ref.compare_exchange_weak(expected, desired, std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Atomic variant of AggAdd for shared slots.
inline void AggAddAtomic(AggState* s, double v) {
  AtomicAddDouble(&s->sum, v);
  std::atomic_ref<int64_t> cnt(s->count);
  cnt.fetch_add(1, std::memory_order_relaxed);
  AtomicMinDouble(&s->min_v, v);
  AtomicMaxDouble(&s->max_v, v);
}

}  // namespace saber
