#pragma once

#include <string>
#include <vector>

#include "relational/types.h"
#include "runtime/align.h"
#include "runtime/status.h"
#include "runtime/strcat.h"

/// \file schema.h
/// Fixed-width row schemas. Stream tuples stay in serialized byte form end to
/// end (§5.1, lazy deserialisation); a Schema describes how to interpret
/// those bytes. Field 0 of every stream schema is the 64-bit logical
/// application timestamp (§2.4). Schemas may carry trailing padding so tuple
/// sizes match the paper's workloads (e.g. 32-byte synthetic tuples).

namespace saber {

struct Field {
  std::string name;
  DataType type;
  size_t offset;  // byte offset within the tuple
};

class Schema {
 public:
  Schema() = default;

  /// Builds a stream schema. The first field must be an int64 timestamp; this
  /// factory prepends it automatically.
  static Schema MakeStream(std::vector<std::pair<std::string, DataType>> fields,
                           size_t pad_to_bytes = 0) {
    Schema s;
    s.AddField("timestamp", DataType::kInt64);
    for (auto& [name, type] : fields) s.AddField(name, type);
    if (pad_to_bytes > s.tuple_size_) s.tuple_size_ = pad_to_bytes;
    return s;
  }

  /// Builds a schema with explicit fields and no implicit timestamp (used for
  /// intermediate results that already carry one).
  static Schema Make(std::vector<std::pair<std::string, DataType>> fields,
                     size_t pad_to_bytes = 0) {
    Schema s;
    for (auto& [name, type] : fields) s.AddField(name, type);
    if (pad_to_bytes > s.tuple_size_) s.tuple_size_ = pad_to_bytes;
    return s;
  }

  void AddField(const std::string& name, DataType type) {
    const size_t sz = TypeSize(type);
    const size_t offset = AlignUp(tuple_size_, sz);
    fields_.push_back(Field{name, type, offset});
    tuple_size_ = offset + sz;
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Total serialized tuple size in bytes (including padding).
  size_t tuple_size() const { return tuple_size_; }

  /// Pads the tuple to `bytes` (must be >= current size).
  void PadTo(size_t bytes) {
    SABER_CHECK(bytes >= tuple_size_);
    tuple_size_ = bytes;
  }

  /// Index of the field called `name`, or -1.
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  bool has_timestamp() const {
    return !fields_.empty() && fields_[0].type == DataType::kInt64 &&
           fields_[0].name == "timestamp";
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += TypeName(fields_[i].type);
      out += ' ';
      out += fields_[i].name;
    }
    StrAppend(out, "} [");
    StrAppend(out, tuple_size_);
    StrAppend(out, "B]");
    return out;
  }

 private:
  std::vector<Field> fields_;
  size_t tuple_size_ = 0;
};

}  // namespace saber
