#pragma once

#include <cstdint>
#include <vector>

#include "relational/aggregate.h"
#include "runtime/status.h"

/// \file two_stacks.h
/// Two-stacks sliding-window aggregation in the style of general incremental
/// sliding-window aggregation [50] (Tangwongsan et al., PVLDB 2015). SABER's
/// assembly stage slides windows over *pane partials*; for invertible
/// functions (sum/count/avg) it subtracts expiring panes
/// (fragment_assembly.cc), but min/max admit no subtraction. This structure
/// restores amortized O(1) merges per pane for any associative aggregate:
///
///   - new pane partials are pushed onto a *back* stack that maintains a
///     running prefix aggregate;
///   - expiring panes are popped from a *front* stack whose entries carry
///     precomputed suffix aggregates;
///   - when the front stack runs dry, the back stack is flipped onto it,
///     computing the suffix aggregates during the flip (each pane is flipped
///     exactly once, hence amortized O(1));
///   - the window aggregate is front-suffix ⊕ back-prefix.
///
/// Entries are keyed by pane index so the sparse pane sequences produced by
/// time-based windows (absent panes are aggregation identities) cost nothing.

namespace saber {

class TwoStacksAggregator {
 public:
  /// `num_aggs` parallel aggregate columns per pane (matches PaneFormat).
  explicit TwoStacksAggregator(size_t num_aggs) : num_aggs_(num_aggs) {
    Clear();
  }

  void Clear() {
    front_panes_.clear();
    front_suffix_.clear();
    back_panes_.clear();
    back_raw_.clear();
    back_agg_.assign(num_aggs_, AggState{});
    for (auto& s : back_agg_) AggInit(&s);
    last_pushed_ = -1;
  }

  bool empty() const { return front_panes_.empty() && back_panes_.empty(); }

  /// Index of the most recently pushed pane, -1 if none since Clear().
  int64_t last_pushed() const { return last_pushed_; }

  /// Appends the final partial aggregates of pane `pane_index`. Pane indices
  /// must be strictly increasing between Clear() calls.
  void Push(int64_t pane_index, const AggState* states) {
    SABER_DCHECK(pane_index > last_pushed_);
    if (back_panes_.empty()) {
      for (size_t a = 0; a < num_aggs_; ++a) back_agg_[a] = states[a];
    } else {
      for (size_t a = 0; a < num_aggs_; ++a) AggMerge(&back_agg_[a], states[a]);
    }
    back_panes_.push_back(pane_index);
    back_raw_.insert(back_raw_.end(), states, states + num_aggs_);
    last_pushed_ = pane_index;
  }

  /// Removes every pane with index < min_pane (amortized O(1) per pane).
  void EvictBefore(int64_t min_pane) {
    for (;;) {
      if (front_panes_.empty()) {
        if (back_panes_.empty() || back_panes_.front() >= min_pane) return;
        Flip();
      }
      // Front top (oldest pane) sits at the back of the vectors.
      while (!front_panes_.empty() && front_panes_.back() < min_pane) {
        front_panes_.pop_back();
        front_suffix_.resize(front_suffix_.size() - num_aggs_);
      }
      if (!front_panes_.empty()) return;
      if (back_panes_.empty() || back_panes_.front() >= min_pane) return;
    }
  }

  /// Merges the aggregate over all live panes into out[0..num_aggs). `out`
  /// must be AggInit'd by the caller (the result is the identity when empty).
  void Query(AggState* out) const {
    if (!front_panes_.empty()) {
      const AggState* suffix = front_suffix_.data() +
                               (front_panes_.size() - 1) * num_aggs_;
      for (size_t a = 0; a < num_aggs_; ++a) AggMerge(&out[a], suffix[a]);
    }
    if (!back_panes_.empty()) {
      for (size_t a = 0; a < num_aggs_; ++a) AggMerge(&out[a], back_agg_[a]);
    }
  }

  size_t live_panes() const { return front_panes_.size() + back_panes_.size(); }

 private:
  /// Moves the back stack onto the front stack, oldest pane ending on top
  /// (= back of the vector), computing suffix aggregates during the flip:
  /// entry i (arrival order) stores x_i ⊕ x_{i+1} ⊕ … ⊕ x_k, so the front
  /// top always carries the aggregate of every flipped pane at or after it.
  void Flip() {
    const size_t k = back_panes_.size();
    if (k == 0) return;
    SABER_DCHECK(front_panes_.empty());
    front_panes_.reserve(k);
    front_suffix_.reserve(k * num_aggs_);
    std::vector<AggState> suffix(num_aggs_);
    for (size_t a = 0; a < num_aggs_; ++a) AggInit(&suffix[a]);
    for (size_t i = k; i-- > 0;) {  // youngest first → oldest lands on top
      const AggState* raw = back_raw_.data() + i * num_aggs_;
      for (size_t a = 0; a < num_aggs_; ++a) {
        // suffix = x_i ⊕ old_suffix keeps left-to-right arrival order for
        // associative but non-commutative merges.
        AggState next = raw[a];
        AggMerge(&next, suffix[a]);
        suffix[a] = next;
      }
      front_panes_.push_back(back_panes_[i]);
      front_suffix_.insert(front_suffix_.end(), suffix.begin(), suffix.end());
    }
    back_panes_.clear();
    back_raw_.clear();
    for (auto& s : back_agg_) AggInit(&s);
  }

  size_t num_aggs_;
  // Front stack: top at the back of the vectors; entry i stores the suffix
  // aggregate over itself and every entry flipped before it.
  std::vector<int64_t> front_panes_;
  std::vector<AggState> front_suffix_;  // stride num_aggs_
  // Back stack in arrival order plus its running prefix aggregate.
  std::vector<int64_t> back_panes_;
  std::vector<AggState> back_raw_;  // stride num_aggs_
  std::vector<AggState> back_agg_;
  int64_t last_pushed_ = -1;
};

}  // namespace saber
