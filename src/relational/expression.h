#pragma once

#include <memory>
#include <string>
#include <vector>

#include "relational/tuple_ref.h"

/// \file expression.h
/// Scalar expressions over stream tuples: column references, literals,
/// arithmetic, comparisons and boolean connectives. Queries build immutable
/// expression trees that are shared by all query tasks (evaluation is const
/// and thread-safe).
///
/// Two evaluation regimes exist, mirroring the paper's two back ends:
///  - the CPU operator path *interprets* the tree per tuple (virtual
///    dispatch), like SABER's generic Java operators (§5.3);
///  - the GPGPU path lowers the tree once per query into a flat postfix
///    program (expression_compiler.h) executed by a tight loop, like SABER's
///    populated OpenCL code templates (§5.4).

namespace saber {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

enum class CompareOp { kLt, kLe, kEq, kNe, kGe, kGt };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
enum class LogicalOp { kAnd, kOr, kNot };

/// Which input tuple a column reference addresses; joins evaluate predicates
/// over a (left, right) pair.
enum class Side : uint8_t { kLeft = 0, kRight = 1 };

class Expression {
 public:
  enum class Kind { kColumn, kLiteral, kArith, kCompare, kLogical };

  virtual ~Expression() = default;

  Kind kind() const { return kind_; }

  /// Numeric result widened to double. `right` may be null for single-input
  /// expressions.
  virtual double EvalDouble(const TupleRef& left, const TupleRef* right) const = 0;

  /// Integral result (used for group keys and integer comparisons).
  virtual int64_t EvalInt64(const TupleRef& left, const TupleRef* right) const = 0;

  /// Boolean result (predicates).
  virtual bool EvalBool(const TupleRef& left, const TupleRef* right) const {
    return EvalDouble(left, right) != 0.0;
  }

  /// Static type of the expression result.
  virtual DataType output_type() const = 0;

  /// True if the result is integral (no float involved), in which case
  /// comparisons use the exact int64 path.
  bool integral() const { return IsIntegral(output_type()); }

  virtual std::string ToString() const = 0;

 protected:
  explicit Expression(Kind kind) : kind_(kind) {}

 private:
  const Kind kind_;
};

class ColumnExpr final : public Expression {
 public:
  ColumnExpr(size_t field, DataType type, Side side = Side::kLeft)
      : Expression(Kind::kColumn), field_(field), type_(type), side_(side) {}

  size_t field() const { return field_; }
  Side side() const { return side_; }

  double EvalDouble(const TupleRef& l, const TupleRef* r) const override {
    return Pick(l, r).GetAsDouble(field_);
  }
  int64_t EvalInt64(const TupleRef& l, const TupleRef* r) const override {
    return Pick(l, r).GetAsInt64(field_);
  }
  DataType output_type() const override { return type_; }
  std::string ToString() const override {
    return (side_ == Side::kRight ? "R.$" : "$") + std::to_string(field_);
  }

 private:
  const TupleRef& Pick(const TupleRef& l, const TupleRef* r) const {
    return side_ == Side::kLeft ? l : *r;
  }

  size_t field_;
  DataType type_;
  Side side_;
};

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(double v)
      : Expression(Kind::kLiteral), dval_(v), ival_(static_cast<int64_t>(v)),
        type_(DataType::kDouble) {}
  explicit LiteralExpr(int64_t v)
      : Expression(Kind::kLiteral), dval_(static_cast<double>(v)), ival_(v),
        type_(DataType::kInt64) {}

  double EvalDouble(const TupleRef&, const TupleRef*) const override { return dval_; }
  int64_t EvalInt64(const TupleRef&, const TupleRef*) const override { return ival_; }
  DataType output_type() const override { return type_; }
  std::string ToString() const override {
    return type_ == DataType::kInt64 ? std::to_string(ival_) : std::to_string(dval_);
  }

  double dval() const { return dval_; }
  int64_t ival() const { return ival_; }

 private:
  double dval_;
  int64_t ival_;
  DataType type_;
};

class ArithExpr final : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : Expression(Kind::kArith), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
    integral_result_ = lhs_->integral() && rhs_->integral() && op_ != ArithOp::kDiv;
  }

  ArithOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  double EvalDouble(const TupleRef& l, const TupleRef* r) const override {
    if (integral_result_) return static_cast<double>(EvalInt64(l, r));
    const double a = lhs_->EvalDouble(l, r);
    const double b = rhs_->EvalDouble(l, r);
    switch (op_) {
      case ArithOp::kAdd: return a + b;
      case ArithOp::kSub: return a - b;
      case ArithOp::kMul: return a * b;
      case ArithOp::kDiv: return b == 0.0 ? 0.0 : a / b;
      case ArithOp::kMod: {
        const int64_t bi = static_cast<int64_t>(b);
        return bi == 0 ? 0.0
                       : static_cast<double>(static_cast<int64_t>(a) % bi);
      }
    }
    return 0.0;
  }

  int64_t EvalInt64(const TupleRef& l, const TupleRef* r) const override {
    if (!integral_result_) return static_cast<int64_t>(EvalDouble(l, r));
    const int64_t a = lhs_->EvalInt64(l, r);
    const int64_t b = rhs_->EvalInt64(l, r);
    switch (op_) {
      case ArithOp::kAdd: return a + b;
      case ArithOp::kSub: return a - b;
      case ArithOp::kMul: return a * b;
      case ArithOp::kDiv: return b == 0 ? 0 : a / b;
      case ArithOp::kMod: return b == 0 ? 0 : a % b;
    }
    return 0;
  }

  DataType output_type() const override {
    return integral_result_ ? DataType::kInt64 : DataType::kDouble;
  }

  std::string ToString() const override {
    // Built up with += (not `"(" + ...`) to dodge a spurious -Wrestrict in
    // GCC 12's inlined operator+(const char*, string&&) (GCC PR 105651).
    static const char* kOps[] = {"+", "-", "*", "/", "%"};
    std::string out = "(";
    out += lhs_->ToString();
    out += ' ';
    out += kOps[static_cast<int>(op_)];
    out += ' ';
    out += rhs_->ToString();
    out += ')';
    return out;
  }

 private:
  ArithOp op_;
  ExprPtr lhs_, rhs_;
  bool integral_result_;
};

class CompareExpr final : public Expression {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expression(Kind::kCompare), op_(op), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        integral_(lhs_->integral() && rhs_->integral()) {}

  CompareOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  bool EvalBool(const TupleRef& l, const TupleRef* r) const override {
    if (integral_) {
      const int64_t a = lhs_->EvalInt64(l, r);
      const int64_t b = rhs_->EvalInt64(l, r);
      return Apply(a, b);
    }
    const double a = lhs_->EvalDouble(l, r);
    const double b = rhs_->EvalDouble(l, r);
    return Apply(a, b);
  }

  double EvalDouble(const TupleRef& l, const TupleRef* r) const override {
    return EvalBool(l, r) ? 1.0 : 0.0;
  }
  int64_t EvalInt64(const TupleRef& l, const TupleRef* r) const override {
    return EvalBool(l, r) ? 1 : 0;
  }
  DataType output_type() const override { return DataType::kInt32; }

  std::string ToString() const override {
    // += instead of `"(" + ...`: see ArithmeticExpr::ToString (GCC PR 105651).
    static const char* kOps[] = {"<", "<=", "==", "!=", ">=", ">"};
    std::string out = "(";
    out += lhs_->ToString();
    out += ' ';
    out += kOps[static_cast<int>(op_)];
    out += ' ';
    out += rhs_->ToString();
    out += ')';
    return out;
  }

 private:
  template <typename T>
  bool Apply(T a, T b) const {
    switch (op_) {
      case CompareOp::kLt: return a < b;
      case CompareOp::kLe: return a <= b;
      case CompareOp::kEq: return a == b;
      case CompareOp::kNe: return a != b;
      case CompareOp::kGe: return a >= b;
      case CompareOp::kGt: return a > b;
    }
    return false;
  }

  CompareOp op_;
  ExprPtr lhs_, rhs_;
  bool integral_;
};

class LogicalExpr final : public Expression {
 public:
  LogicalExpr(LogicalOp op, std::vector<ExprPtr> operands)
      : Expression(Kind::kLogical), op_(op), operands_(std::move(operands)) {
    SABER_CHECK(!operands_.empty());
    SABER_CHECK(op_ != LogicalOp::kNot || operands_.size() == 1);
  }

  LogicalOp op() const { return op_; }
  const std::vector<ExprPtr>& operands() const { return operands_; }

  bool EvalBool(const TupleRef& l, const TupleRef* r) const override {
    switch (op_) {
      case LogicalOp::kAnd:
        for (const auto& e : operands_) {
          if (!e->EvalBool(l, r)) return false;
        }
        return true;
      case LogicalOp::kOr:
        for (const auto& e : operands_) {
          if (e->EvalBool(l, r)) return true;
        }
        return false;
      case LogicalOp::kNot:
        return !operands_[0]->EvalBool(l, r);
    }
    return false;
  }

  double EvalDouble(const TupleRef& l, const TupleRef* r) const override {
    return EvalBool(l, r) ? 1.0 : 0.0;
  }
  int64_t EvalInt64(const TupleRef& l, const TupleRef* r) const override {
    return EvalBool(l, r) ? 1 : 0;
  }
  DataType output_type() const override { return DataType::kInt32; }

  std::string ToString() const override {
    // += instead of `"!" + ...`: see ArithmeticExpr::ToString (GCC PR 105651).
    if (op_ == LogicalOp::kNot) {
      std::string out = "!";
      out += operands_[0]->ToString();
      return out;
    }
    std::string sep = op_ == LogicalOp::kAnd ? " && " : " || ";
    std::string out = "(";
    for (size_t i = 0; i < operands_.size(); ++i) {
      if (i > 0) out += sep;
      out += operands_[i]->ToString();
    }
    return out + ")";
  }

 private:
  LogicalOp op_;
  std::vector<ExprPtr> operands_;
};

// ---------------------------------------------------------------------------
// Builder helpers. Example:
//   auto pred = And({Gt(Col(s, "speed"), Lit(40.0)), Eq(Col(s, "lane"), Lit(2))});
// ---------------------------------------------------------------------------

inline ExprPtr Col(const Schema& schema, const std::string& name,
                   Side side = Side::kLeft) {
  const int idx = schema.FieldIndex(name);
  SABER_CHECK(idx >= 0);
  return std::make_shared<ColumnExpr>(static_cast<size_t>(idx),
                                      schema.field(idx).type, side);
}
inline ExprPtr ColAt(const Schema& schema, size_t idx, Side side = Side::kLeft) {
  return std::make_shared<ColumnExpr>(idx, schema.field(idx).type, side);
}
inline ExprPtr Lit(double v) { return std::make_shared<LiteralExpr>(v); }
inline ExprPtr Lit(int64_t v) { return std::make_shared<LiteralExpr>(v); }
inline ExprPtr Lit(int v) { return std::make_shared<LiteralExpr>(static_cast<int64_t>(v)); }

inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kDiv, std::move(a), std::move(b));
}
inline ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithExpr>(ArithOp::kMod, std::move(a), std::move(b));
}

inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(CompareOp::kGt, std::move(a), std::move(b));
}

inline ExprPtr And(std::vector<ExprPtr> es) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(es));
}
inline ExprPtr Or(std::vector<ExprPtr> es) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(es));
}
inline ExprPtr Not(ExprPtr e) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::vector<ExprPtr>{std::move(e)});
}

}  // namespace saber
