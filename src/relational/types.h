#pragma once

#include <cstddef>
#include <cstdint>

/// \file types.h
/// Primitive column types of the streaming relational model (§2.4). Tuples
/// are sequences of primitive values; SABER's evaluation uses 64-bit
/// timestamps plus 32-bit int/float attributes (§6.1), so these four types
/// cover every benchmark schema.

namespace saber {

enum class DataType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat = 2,
  kDouble = 3,
};

constexpr size_t TypeSize(DataType t) {
  switch (t) {
    case DataType::kInt32: return 4;
    case DataType::kInt64: return 8;
    case DataType::kFloat: return 4;
    case DataType::kDouble: return 8;
  }
  return 0;
}

constexpr const char* TypeName(DataType t) {
  switch (t) {
    case DataType::kInt32: return "int";
    case DataType::kInt64: return "long";
    case DataType::kFloat: return "float";
    case DataType::kDouble: return "double";
  }
  return "?";
}

constexpr bool IsIntegral(DataType t) {
  return t == DataType::kInt32 || t == DataType::kInt64;
}

}  // namespace saber
