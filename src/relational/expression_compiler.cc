#include "relational/expression_compiler.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace saber {

namespace {

using Op = CompiledExpr::Op;
using Instr = CompiledExpr::Instr;

uint16_t ColumnOffset(const ColumnExpr& col, const Schema& ls, const Schema* rs) {
  const Schema& s = col.side() == Side::kLeft ? ls : *rs;
  return static_cast<uint16_t>(s.field(col.field()).offset);
}

Op ColumnOp(DataType t) {
  switch (t) {
    case DataType::kInt32: return Op::kPushColInt32;
    case DataType::kInt64: return Op::kPushColInt64;
    case DataType::kFloat: return Op::kPushColFloat;
    case DataType::kDouble: return Op::kPushColDouble;
  }
  return Op::kPushColInt32;
}

Op ArithCode(ArithOp op, bool int_lane) {
  switch (op) {
    case ArithOp::kAdd: return int_lane ? Op::kAddI64 : Op::kAddF64;
    case ArithOp::kSub: return int_lane ? Op::kSubI64 : Op::kSubF64;
    case ArithOp::kMul: return int_lane ? Op::kMulI64 : Op::kMulF64;
    case ArithOp::kDiv: return Op::kDivF64;  // never integral (ArithExpr)
    case ArithOp::kMod: return int_lane ? Op::kModI64 : Op::kModF64;
  }
  return Op::kAddF64;
}

Op CompareCode(CompareOp op, bool int_lane) {
  switch (op) {
    case CompareOp::kLt: return int_lane ? Op::kLtI64 : Op::kLtF64;
    case CompareOp::kLe: return int_lane ? Op::kLeI64 : Op::kLeF64;
    case CompareOp::kEq: return int_lane ? Op::kEqI64 : Op::kEqF64;
    case CompareOp::kNe: return int_lane ? Op::kNeI64 : Op::kNeF64;
    case CompareOp::kGe: return int_lane ? Op::kGeI64 : Op::kGeF64;
    case CompareOp::kGt: return int_lane ? Op::kGtI64 : Op::kGtF64;
  }
  return Op::kEqF64;
}

/// One stack value; the live member is decided statically per slot and
/// instruction by the compiler (union-based type punning, fine on GCC/Clang).
union LaneVal {
  double d;
  int64_t i;
};

/// kModF64 mirrors ArithExpr::EvalDouble's non-integral modulo: truncate
/// both operands to int64, modulo, widen back.
inline double DoubleMod(double a, double b) {
  const int64_t bi = static_cast<int64_t>(b);
  return bi == 0 ? 0.0
                 : static_cast<double>(static_cast<int64_t>(a) % bi);
}

// ---------------------------------------------------------------------------
// Batch interpreter. One pass over the program; every instruction loops over
// the whole run, so virtual-dispatch/decode cost is paid once per ~1024
// tuples instead of once per tuple. `At` maps (side, row) -> tuple pointer
// and is inlined per instantiation (dense / gather / pair addressing).
// ---------------------------------------------------------------------------

template <typename At>
inline void RunBatch(const std::vector<Instr>& program, const At& at, size_t n,
                     LaneVal* lanes) {
  constexpr size_t kB = CompiledExpr::kBatchSize;
  int sp = -1;
  for (const Instr& ins : program) {
    switch (ins.op) {
      case Op::kPushColInt32: {
        LaneVal* dst = lanes + ++sp * kB;
        for (size_t i = 0; i < n; ++i) {
          int32_t v;
          std::memcpy(&v, at(ins.side, i) + ins.offset, sizeof(v));
          dst[i].i = v;
        }
        break;
      }
      case Op::kPushColInt64: {
        LaneVal* dst = lanes + ++sp * kB;
        for (size_t i = 0; i < n; ++i) {
          int64_t v;
          std::memcpy(&v, at(ins.side, i) + ins.offset, sizeof(v));
          dst[i].i = v;
        }
        break;
      }
      case Op::kPushColFloat: {
        LaneVal* dst = lanes + ++sp * kB;
        for (size_t i = 0; i < n; ++i) {
          float v;
          std::memcpy(&v, at(ins.side, i) + ins.offset, sizeof(v));
          dst[i].d = static_cast<double>(v);
        }
        break;
      }
      case Op::kPushColDouble: {
        LaneVal* dst = lanes + ++sp * kB;
        for (size_t i = 0; i < n; ++i) {
          double v;
          std::memcpy(&v, at(ins.side, i) + ins.offset, sizeof(v));
          dst[i].d = v;
        }
        break;
      }
      case Op::kPushConstF64: {
        LaneVal* dst = lanes + ++sp * kB;
        for (size_t i = 0; i < n; ++i) dst[i].d = ins.constant;
        break;
      }
      case Op::kPushConstI64: {
        LaneVal* dst = lanes + ++sp * kB;
        for (size_t i = 0; i < n; ++i) dst[i].i = ins.iconst;
        break;
      }
      case Op::kCastF64: {
        LaneVal* t = lanes + sp * kB;
        for (size_t i = 0; i < n; ++i) t[i].d = static_cast<double>(t[i].i);
        break;
      }
      case Op::kTestF64: {
        LaneVal* t = lanes + sp * kB;
        for (size_t i = 0; i < n; ++i) t[i].i = t[i].d != 0.0 ? 1 : 0;
        break;
      }
#define SABER_BATCH_BINOP(OPCODE, EXPR_D, EXPR_I)                      \
  case OPCODE: {                                                       \
    LaneVal* a = lanes + (sp - 1) * kB;                                \
    LaneVal* b = lanes + sp * kB;                                      \
    (void)b;                                                           \
    for (size_t i = 0; i < n; ++i) {                                   \
      EXPR_D;                                                          \
      EXPR_I;                                                          \
    }                                                                  \
    --sp;                                                              \
    break;                                                             \
  }
      SABER_BATCH_BINOP(Op::kAddF64, a[i].d += b[i].d, (void)0)
      SABER_BATCH_BINOP(Op::kSubF64, a[i].d -= b[i].d, (void)0)
      SABER_BATCH_BINOP(Op::kMulF64, a[i].d *= b[i].d, (void)0)
      SABER_BATCH_BINOP(Op::kDivF64,
                        a[i].d = b[i].d == 0.0 ? 0.0 : a[i].d / b[i].d,
                        (void)0)
      SABER_BATCH_BINOP(Op::kModF64, a[i].d = DoubleMod(a[i].d, b[i].d),
                        (void)0)
      SABER_BATCH_BINOP(Op::kAddI64, (void)0, a[i].i += b[i].i)
      SABER_BATCH_BINOP(Op::kSubI64, (void)0, a[i].i -= b[i].i)
      SABER_BATCH_BINOP(Op::kMulI64, (void)0, a[i].i *= b[i].i)
      SABER_BATCH_BINOP(Op::kModI64, (void)0,
                        a[i].i = b[i].i == 0 ? 0 : a[i].i % b[i].i)
      SABER_BATCH_BINOP(Op::kLtF64, (void)0,
                        a[i].i = a[i].d < b[i].d ? 1 : 0)
      SABER_BATCH_BINOP(Op::kLeF64, (void)0,
                        a[i].i = a[i].d <= b[i].d ? 1 : 0)
      SABER_BATCH_BINOP(Op::kEqF64, (void)0,
                        a[i].i = a[i].d == b[i].d ? 1 : 0)
      SABER_BATCH_BINOP(Op::kNeF64, (void)0,
                        a[i].i = a[i].d != b[i].d ? 1 : 0)
      SABER_BATCH_BINOP(Op::kGeF64, (void)0,
                        a[i].i = a[i].d >= b[i].d ? 1 : 0)
      SABER_BATCH_BINOP(Op::kGtF64, (void)0,
                        a[i].i = a[i].d > b[i].d ? 1 : 0)
      SABER_BATCH_BINOP(Op::kLtI64, (void)0,
                        a[i].i = a[i].i < b[i].i ? 1 : 0)
      SABER_BATCH_BINOP(Op::kLeI64, (void)0,
                        a[i].i = a[i].i <= b[i].i ? 1 : 0)
      SABER_BATCH_BINOP(Op::kEqI64, (void)0,
                        a[i].i = a[i].i == b[i].i ? 1 : 0)
      SABER_BATCH_BINOP(Op::kNeI64, (void)0,
                        a[i].i = a[i].i != b[i].i ? 1 : 0)
      SABER_BATCH_BINOP(Op::kGeI64, (void)0,
                        a[i].i = a[i].i >= b[i].i ? 1 : 0)
      SABER_BATCH_BINOP(Op::kGtI64, (void)0,
                        a[i].i = a[i].i > b[i].i ? 1 : 0)
      SABER_BATCH_BINOP(Op::kAnd, (void)0,
                        a[i].i = (a[i].i != 0) & (b[i].i != 0) ? 1 : 0)
      SABER_BATCH_BINOP(Op::kOr, (void)0,
                        a[i].i = (a[i].i != 0) | (b[i].i != 0) ? 1 : 0)
#undef SABER_BATCH_BINOP
      case Op::kNot: {
        LaneVal* t = lanes + sp * kB;
        for (size_t i = 0; i < n; ++i) t[i].i = t[i].i == 0 ? 1 : 0;
        break;
      }
    }
  }
}

// Tuple addressing strategies for RunBatch.
struct DenseAccess {
  const uint8_t* base;
  size_t stride;
  const uint8_t* operator()(uint8_t, size_t i) const {
    return base + i * stride;
  }
};
struct GatherAccess {
  const uint8_t* base;
  size_t stride;
  const uint32_t* sel;
  const uint8_t* operator()(uint8_t, size_t i) const {
    return base + static_cast<size_t>(sel[i]) * stride;
  }
};
struct PairAccess {
  const uint8_t* const* left;
  const uint8_t* fixed_left;
  const uint8_t* const* right;
  const uint8_t* fixed_right;
  const uint8_t* operator()(uint8_t side, size_t i) const {
    if (side) return right != nullptr ? right[i] : fixed_right;
    return left != nullptr ? left[i] : fixed_left;
  }
};

/// Per-thread lane scratch: max_stack slanes of kBatchSize values. Bounded
/// by kMaxBatchStack (lowerable programs only), i.e. <= 128 KiB per thread.
LaneVal* BatchScratch(size_t slots) {
  thread_local std::vector<LaneVal> buf;
  const size_t need = slots * CompiledExpr::kBatchSize;
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

}  // namespace

CompiledExpr CompiledExpr::Compile(const Expression& expr, const Schema& ls,
                                   const Schema* rs) {
  CompiledExpr out;
  out.Emit(expr, ls, rs);
  out.result_integral_ = expr.integral();
  // Compute the stack high-water mark for the interpreter's fixed buffer.
  size_t depth = 0, max_depth = 0;
  for (const Instr& i : out.program_) {
    switch (i.op) {
      case Op::kPushColInt32:
      case Op::kPushColInt64:
      case Op::kPushColFloat:
      case Op::kPushColDouble:
      case Op::kPushConstF64:
      case Op::kPushConstI64:
        ++depth;
        break;
      case Op::kCastF64:
      case Op::kTestF64:
      case Op::kNot:
        break;  // 1 in, 1 out
      default:
        --depth;  // 2 in, 1 out
        break;
    }
    max_depth = std::max(max_depth, depth);
  }
  out.max_stack_ = max_depth;
  SABER_CHECK(max_depth <= kMaxStack);
  out.lowerable_ = !out.program_.empty() && max_depth <= kMaxBatchStack;
  return out;
}

void CompiledExpr::EmitAsF64(const Expression& e, const Schema& ls,
                             const Schema* rs) {
  if (e.kind() == Expression::Kind::kLiteral && e.integral()) {
    // Constant-fold the widening: an integer literal in a double context
    // would otherwise cost a full kCastF64 batch loop per evaluation.
    const auto& lit = static_cast<const LiteralExpr&>(e);
    program_.push_back(Instr{Op::kPushConstF64, 0, 0, lit.dval(), 0});
    return;
  }
  Emit(e, ls, rs);
  if (e.integral()) program_.push_back(Instr{Op::kCastF64, 0, 0, 0.0, 0});
}

void CompiledExpr::EmitAsBool(const Expression& e, const Schema& ls,
                              const Schema* rs) {
  Emit(e, ls, rs);
  // Integral operands feed kAnd/kOr/kNot raw (truthiness is != 0); double
  // operands hop lanes through an explicit test, like Expression::EvalBool.
  if (!e.integral()) program_.push_back(Instr{Op::kTestF64, 0, 0, 0.0, 0});
}

void CompiledExpr::Emit(const Expression& e, const Schema& ls, const Schema* rs) {
  switch (e.kind()) {
    case Expression::Kind::kColumn: {
      const auto& col = static_cast<const ColumnExpr&>(e);
      program_.push_back(Instr{ColumnOp(col.output_type()),
                               static_cast<uint8_t>(col.side()),
                               ColumnOffset(col, ls, rs), 0.0, 0});
      break;
    }
    case Expression::Kind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(e);
      if (lit.integral()) {
        program_.push_back(Instr{Op::kPushConstI64, 0, 0, 0.0, lit.ival()});
      } else {
        program_.push_back(Instr{Op::kPushConstF64, 0, 0, lit.dval(), 0});
      }
      break;
    }
    case Expression::Kind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      const bool int_lane = e.integral();  // lhs && rhs integral, op != kDiv
      if (int_lane) {
        Emit(*a.lhs(), ls, rs);
        Emit(*a.rhs(), ls, rs);
      } else {
        EmitAsF64(*a.lhs(), ls, rs);
        EmitAsF64(*a.rhs(), ls, rs);
      }
      program_.push_back(Instr{ArithCode(a.op(), int_lane), 0, 0, 0.0, 0});
      break;
    }
    case Expression::Kind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(e);
      const bool int_lane = c.lhs()->integral() && c.rhs()->integral();
      if (int_lane) {
        Emit(*c.lhs(), ls, rs);
        Emit(*c.rhs(), ls, rs);
      } else {
        EmitAsF64(*c.lhs(), ls, rs);
        EmitAsF64(*c.rhs(), ls, rs);
      }
      program_.push_back(Instr{CompareCode(c.op(), int_lane), 0, 0, 0.0, 0});
      break;
    }
    case Expression::Kind::kLogical: {
      const auto& lg = static_cast<const LogicalExpr&>(e);
      if (lg.op() == LogicalOp::kNot) {
        EmitAsBool(*lg.operands()[0], ls, rs);
        program_.push_back(Instr{Op::kNot, 0, 0, 0.0, 0});
        break;
      }
      const Op op = lg.op() == LogicalOp::kAnd ? Op::kAnd : Op::kOr;
      EmitAsBool(*lg.operands()[0], ls, rs);
      for (size_t i = 1; i < lg.operands().size(); ++i) {
        EmitAsBool(*lg.operands()[i], ls, rs);
        program_.push_back(Instr{op, 0, 0, 0.0, 0});
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Scalar evaluation (per-tuple): same typed semantics, one value per slot.
// Used by the simulated GPGPU work items and as the batch paths' oracle.
// ---------------------------------------------------------------------------

namespace {

inline LaneVal EvalScalar(const std::vector<Instr>& program,
                          const uint8_t* left, const uint8_t* right) {
  LaneVal stack[CompiledExpr::kMaxStack];
  int sp = -1;
  for (const Instr& i : program) {
    switch (i.op) {
      case Op::kPushColInt32: {
        int32_t v;
        std::memcpy(&v, (i.side ? right : left) + i.offset, sizeof(v));
        stack[++sp].i = v;
        break;
      }
      case Op::kPushColInt64: {
        int64_t v;
        std::memcpy(&v, (i.side ? right : left) + i.offset, sizeof(v));
        stack[++sp].i = v;
        break;
      }
      case Op::kPushColFloat: {
        float v;
        std::memcpy(&v, (i.side ? right : left) + i.offset, sizeof(v));
        stack[++sp].d = static_cast<double>(v);
        break;
      }
      case Op::kPushColDouble: {
        double v;
        std::memcpy(&v, (i.side ? right : left) + i.offset, sizeof(v));
        stack[++sp].d = v;
        break;
      }
      case Op::kPushConstF64:
        stack[++sp].d = i.constant;
        break;
      case Op::kPushConstI64:
        stack[++sp].i = i.iconst;
        break;
      case Op::kCastF64:
        stack[sp].d = static_cast<double>(stack[sp].i);
        break;
      case Op::kTestF64:
        stack[sp].i = stack[sp].d != 0.0 ? 1 : 0;
        break;
      case Op::kAddF64:
        stack[sp - 1].d += stack[sp].d;
        --sp;
        break;
      case Op::kSubF64:
        stack[sp - 1].d -= stack[sp].d;
        --sp;
        break;
      case Op::kMulF64:
        stack[sp - 1].d *= stack[sp].d;
        --sp;
        break;
      case Op::kDivF64:
        stack[sp - 1].d =
            stack[sp].d == 0.0 ? 0.0 : stack[sp - 1].d / stack[sp].d;
        --sp;
        break;
      case Op::kModF64:
        stack[sp - 1].d = DoubleMod(stack[sp - 1].d, stack[sp].d);
        --sp;
        break;
      case Op::kAddI64:
        stack[sp - 1].i += stack[sp].i;
        --sp;
        break;
      case Op::kSubI64:
        stack[sp - 1].i -= stack[sp].i;
        --sp;
        break;
      case Op::kMulI64:
        stack[sp - 1].i *= stack[sp].i;
        --sp;
        break;
      case Op::kModI64:
        stack[sp - 1].i =
            stack[sp].i == 0 ? 0 : stack[sp - 1].i % stack[sp].i;
        --sp;
        break;
      case Op::kLtF64:
        stack[sp - 1].i = stack[sp - 1].d < stack[sp].d ? 1 : 0;
        --sp;
        break;
      case Op::kLeF64:
        stack[sp - 1].i = stack[sp - 1].d <= stack[sp].d ? 1 : 0;
        --sp;
        break;
      case Op::kEqF64:
        stack[sp - 1].i = stack[sp - 1].d == stack[sp].d ? 1 : 0;
        --sp;
        break;
      case Op::kNeF64:
        stack[sp - 1].i = stack[sp - 1].d != stack[sp].d ? 1 : 0;
        --sp;
        break;
      case Op::kGeF64:
        stack[sp - 1].i = stack[sp - 1].d >= stack[sp].d ? 1 : 0;
        --sp;
        break;
      case Op::kGtF64:
        stack[sp - 1].i = stack[sp - 1].d > stack[sp].d ? 1 : 0;
        --sp;
        break;
      case Op::kLtI64:
        stack[sp - 1].i = stack[sp - 1].i < stack[sp].i ? 1 : 0;
        --sp;
        break;
      case Op::kLeI64:
        stack[sp - 1].i = stack[sp - 1].i <= stack[sp].i ? 1 : 0;
        --sp;
        break;
      case Op::kEqI64:
        stack[sp - 1].i = stack[sp - 1].i == stack[sp].i ? 1 : 0;
        --sp;
        break;
      case Op::kNeI64:
        stack[sp - 1].i = stack[sp - 1].i != stack[sp].i ? 1 : 0;
        --sp;
        break;
      case Op::kGeI64:
        stack[sp - 1].i = stack[sp - 1].i >= stack[sp].i ? 1 : 0;
        --sp;
        break;
      case Op::kGtI64:
        stack[sp - 1].i = stack[sp - 1].i > stack[sp].i ? 1 : 0;
        --sp;
        break;
      case Op::kAnd:
        stack[sp - 1].i =
            (stack[sp - 1].i != 0 && stack[sp].i != 0) ? 1 : 0;
        --sp;
        break;
      case Op::kOr:
        stack[sp - 1].i =
            (stack[sp - 1].i != 0 || stack[sp].i != 0) ? 1 : 0;
        --sp;
        break;
      case Op::kNot:
        stack[sp].i = stack[sp].i == 0 ? 1 : 0;
        break;
    }
  }
  if (sp < 0) return LaneVal{0.0};
  return stack[sp];
}

}  // namespace

double CompiledExpr::EvalDouble(const uint8_t* left, const uint8_t* right) const {
  if (program_.empty()) return 0.0;
  const LaneVal v = EvalScalar(program_, left, right);
  return result_integral_ ? static_cast<double>(v.i) : v.d;
}

int64_t CompiledExpr::EvalInt64(const uint8_t* left, const uint8_t* right) const {
  if (program_.empty()) return 0;
  const LaneVal v = EvalScalar(program_, left, right);
  return result_integral_ ? v.i : static_cast<int64_t>(v.d);
}

bool CompiledExpr::EvalBool(const uint8_t* left, const uint8_t* right) const {
  if (program_.empty()) return false;
  const LaneVal v = EvalScalar(program_, left, right);
  return result_integral_ ? v.i != 0 : v.d != 0.0;
}

// ---------------------------------------------------------------------------
// Batch entry points.
// ---------------------------------------------------------------------------

size_t CompiledExpr::EvalBatchBool(const uint8_t* base, size_t stride, size_t n,
                                   uint32_t* sel_out) const {
  SABER_CHECK(lowerable_);
  LaneVal* lanes = BatchScratch(max_stack_);
  size_t cnt = 0;
  for (size_t pos = 0; pos < n; pos += kBatchSize) {
    const size_t m = std::min(kBatchSize, n - pos);
    RunBatch(program_, DenseAccess{base + pos * stride, stride}, m, lanes);
    if (result_integral_) {
      for (size_t i = 0; i < m; ++i) {
        if (lanes[i].i != 0) sel_out[cnt++] = static_cast<uint32_t>(pos + i);
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        if (lanes[i].d != 0.0) sel_out[cnt++] = static_cast<uint32_t>(pos + i);
      }
    }
  }
  return cnt;
}

void CompiledExpr::EvalBatchDouble(const uint8_t* base, size_t stride,
                                   const uint32_t* sel, size_t n,
                                   double* out) const {
  SABER_CHECK(lowerable_);
  LaneVal* lanes = BatchScratch(max_stack_);
  for (size_t pos = 0; pos < n; pos += kBatchSize) {
    const size_t m = std::min(kBatchSize, n - pos);
    if (sel != nullptr) {
      RunBatch(program_, GatherAccess{base, stride, sel + pos}, m, lanes);
    } else {
      RunBatch(program_, DenseAccess{base + pos * stride, stride}, m, lanes);
    }
    if (result_integral_) {
      for (size_t i = 0; i < m; ++i) {
        out[pos + i] = static_cast<double>(lanes[i].i);
      }
    } else {
      for (size_t i = 0; i < m; ++i) out[pos + i] = lanes[i].d;
    }
  }
}

void CompiledExpr::EvalBatchInt64(const uint8_t* base, size_t stride,
                                  const uint32_t* sel, size_t n,
                                  int64_t* out) const {
  SABER_CHECK(lowerable_);
  LaneVal* lanes = BatchScratch(max_stack_);
  for (size_t pos = 0; pos < n; pos += kBatchSize) {
    const size_t m = std::min(kBatchSize, n - pos);
    if (sel != nullptr) {
      RunBatch(program_, GatherAccess{base, stride, sel + pos}, m, lanes);
    } else {
      RunBatch(program_, DenseAccess{base + pos * stride, stride}, m, lanes);
    }
    if (result_integral_) {
      for (size_t i = 0; i < m; ++i) out[pos + i] = lanes[i].i;
    } else {
      for (size_t i = 0; i < m; ++i) {
        out[pos + i] = static_cast<int64_t>(lanes[i].d);
      }
    }
  }
}

size_t CompiledExpr::EvalBatchBoolPairs(const uint8_t* const* left,
                                        const uint8_t* fixed_left,
                                        const uint8_t* const* right,
                                        const uint8_t* fixed_right, size_t n,
                                        uint32_t* sel_out) const {
  SABER_CHECK(lowerable_);
  LaneVal* lanes = BatchScratch(max_stack_);
  size_t cnt = 0;
  for (size_t pos = 0; pos < n; pos += kBatchSize) {
    const size_t m = std::min(kBatchSize, n - pos);
    RunBatch(program_,
             PairAccess{left != nullptr ? left + pos : nullptr, fixed_left,
                        right != nullptr ? right + pos : nullptr, fixed_right},
             m, lanes);
    if (result_integral_) {
      for (size_t i = 0; i < m; ++i) {
        if (lanes[i].i != 0) sel_out[cnt++] = static_cast<uint32_t>(pos + i);
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        if (lanes[i].d != 0.0) sel_out[cnt++] = static_cast<uint32_t>(pos + i);
      }
    }
  }
  return cnt;
}

void CompiledExpr::EvalBatchDoublePairs(const uint8_t* const* left,
                                        const uint8_t* fixed_left,
                                        const uint8_t* const* right,
                                        const uint8_t* fixed_right, size_t n,
                                        double* out) const {
  SABER_CHECK(lowerable_);
  LaneVal* lanes = BatchScratch(max_stack_);
  for (size_t pos = 0; pos < n; pos += kBatchSize) {
    const size_t m = std::min(kBatchSize, n - pos);
    RunBatch(program_,
             PairAccess{left != nullptr ? left + pos : nullptr, fixed_left,
                        right != nullptr ? right + pos : nullptr, fixed_right},
             m, lanes);
    if (result_integral_) {
      for (size_t i = 0; i < m; ++i) {
        out[pos + i] = static_cast<double>(lanes[i].i);
      }
    } else {
      for (size_t i = 0; i < m; ++i) out[pos + i] = lanes[i].d;
    }
  }
}

void CompiledExpr::EvalBatchInt64Pairs(const uint8_t* const* left,
                                       const uint8_t* fixed_left,
                                       const uint8_t* const* right,
                                       const uint8_t* fixed_right, size_t n,
                                       int64_t* out) const {
  SABER_CHECK(lowerable_);
  LaneVal* lanes = BatchScratch(max_stack_);
  for (size_t pos = 0; pos < n; pos += kBatchSize) {
    const size_t m = std::min(kBatchSize, n - pos);
    RunBatch(program_,
             PairAccess{left != nullptr ? left + pos : nullptr, fixed_left,
                        right != nullptr ? right + pos : nullptr, fixed_right},
             m, lanes);
    if (result_integral_) {
      for (size_t i = 0; i < m; ++i) out[pos + i] = lanes[i].i;
    } else {
      for (size_t i = 0; i < m; ++i) {
        out[pos + i] = static_cast<int64_t>(lanes[i].d);
      }
    }
  }
}

}  // namespace saber
