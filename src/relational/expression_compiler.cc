#include "relational/expression_compiler.h"

#include <cmath>
#include <cstring>

namespace saber {

namespace {

uint16_t ColumnOffset(const ColumnExpr& col, const Schema& ls, const Schema* rs) {
  const Schema& s = col.side() == Side::kLeft ? ls : *rs;
  return static_cast<uint16_t>(s.field(col.field()).offset);
}

CompiledExpr::Op ColumnOp(DataType t) {
  switch (t) {
    case DataType::kInt32: return CompiledExpr::Op::kPushColInt32;
    case DataType::kInt64: return CompiledExpr::Op::kPushColInt64;
    case DataType::kFloat: return CompiledExpr::Op::kPushColFloat;
    case DataType::kDouble: return CompiledExpr::Op::kPushColDouble;
  }
  return CompiledExpr::Op::kPushColInt32;
}

CompiledExpr::Op ArithCode(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return CompiledExpr::Op::kAdd;
    case ArithOp::kSub: return CompiledExpr::Op::kSub;
    case ArithOp::kMul: return CompiledExpr::Op::kMul;
    case ArithOp::kDiv: return CompiledExpr::Op::kDiv;
    case ArithOp::kMod: return CompiledExpr::Op::kMod;
  }
  return CompiledExpr::Op::kAdd;
}

CompiledExpr::Op CompareCode(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompiledExpr::Op::kLt;
    case CompareOp::kLe: return CompiledExpr::Op::kLe;
    case CompareOp::kEq: return CompiledExpr::Op::kEq;
    case CompareOp::kNe: return CompiledExpr::Op::kNe;
    case CompareOp::kGe: return CompiledExpr::Op::kGe;
    case CompareOp::kGt: return CompiledExpr::Op::kGt;
  }
  return CompiledExpr::Op::kEq;
}

}  // namespace

CompiledExpr CompiledExpr::Compile(const Expression& expr, const Schema& ls,
                                   const Schema* rs) {
  CompiledExpr out;
  out.Emit(expr, ls, rs);
  // Compute the stack high-water mark for the interpreter's fixed buffer.
  size_t depth = 0, max_depth = 0;
  for (const Instr& i : out.program_) {
    switch (i.op) {
      case Op::kPushColInt32:
      case Op::kPushColInt64:
      case Op::kPushColFloat:
      case Op::kPushColDouble:
      case Op::kPushConst:
        ++depth;
        break;
      case Op::kNot:
        break;  // 1 in, 1 out
      default:
        --depth;  // 2 in, 1 out
        break;
    }
    max_depth = std::max(max_depth, depth);
  }
  out.max_stack_ = max_depth;
  SABER_CHECK(max_depth <= 64);
  return out;
}

void CompiledExpr::Emit(const Expression& e, const Schema& ls, const Schema* rs) {
  switch (e.kind()) {
    case Expression::Kind::kColumn: {
      const auto& col = static_cast<const ColumnExpr&>(e);
      program_.push_back(Instr{ColumnOp(col.output_type()),
                               static_cast<uint8_t>(col.side()),
                               ColumnOffset(col, ls, rs), 0.0});
      break;
    }
    case Expression::Kind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(e);
      program_.push_back(Instr{Op::kPushConst, 0, 0, lit.dval()});
      break;
    }
    case Expression::Kind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      Emit(*a.lhs(), ls, rs);
      Emit(*a.rhs(), ls, rs);
      program_.push_back(Instr{ArithCode(a.op()), 0, 0, 0.0});
      break;
    }
    case Expression::Kind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(e);
      Emit(*c.lhs(), ls, rs);
      Emit(*c.rhs(), ls, rs);
      program_.push_back(Instr{CompareCode(c.op()), 0, 0, 0.0});
      break;
    }
    case Expression::Kind::kLogical: {
      const auto& lg = static_cast<const LogicalExpr&>(e);
      if (lg.op() == LogicalOp::kNot) {
        Emit(*lg.operands()[0], ls, rs);
        program_.push_back(Instr{Op::kNot, 0, 0, 0.0});
        break;
      }
      const Op op = lg.op() == LogicalOp::kAnd ? Op::kAnd : Op::kOr;
      Emit(*lg.operands()[0], ls, rs);
      for (size_t i = 1; i < lg.operands().size(); ++i) {
        Emit(*lg.operands()[i], ls, rs);
        program_.push_back(Instr{op, 0, 0, 0.0});
      }
      break;
    }
  }
}

double CompiledExpr::EvalDouble(const uint8_t* left, const uint8_t* right) const {
  double stack[64];
  int sp = -1;
  for (const Instr& i : program_) {
    switch (i.op) {
      case Op::kPushColInt32: {
        int32_t v;
        std::memcpy(&v, (i.side ? right : left) + i.offset, sizeof(v));
        stack[++sp] = static_cast<double>(v);
        break;
      }
      case Op::kPushColInt64: {
        int64_t v;
        std::memcpy(&v, (i.side ? right : left) + i.offset, sizeof(v));
        stack[++sp] = static_cast<double>(v);
        break;
      }
      case Op::kPushColFloat: {
        float v;
        std::memcpy(&v, (i.side ? right : left) + i.offset, sizeof(v));
        stack[++sp] = static_cast<double>(v);
        break;
      }
      case Op::kPushColDouble: {
        double v;
        std::memcpy(&v, (i.side ? right : left) + i.offset, sizeof(v));
        stack[++sp] = v;
        break;
      }
      case Op::kPushConst:
        stack[++sp] = i.constant;
        break;
      case Op::kAdd:
        stack[sp - 1] += stack[sp];
        --sp;
        break;
      case Op::kSub:
        stack[sp - 1] -= stack[sp];
        --sp;
        break;
      case Op::kMul:
        stack[sp - 1] *= stack[sp];
        --sp;
        break;
      case Op::kDiv:
        stack[sp - 1] = stack[sp] == 0.0 ? 0.0 : stack[sp - 1] / stack[sp];
        --sp;
        break;
      case Op::kMod: {
        const int64_t b = static_cast<int64_t>(stack[sp]);
        stack[sp - 1] =
            b == 0 ? 0.0
                   : static_cast<double>(static_cast<int64_t>(stack[sp - 1]) % b);
        --sp;
        break;
      }
      case Op::kLt:
        stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kLe:
        stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kEq:
        stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kNe:
        stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kGe:
        stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kGt:
        stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kAnd:
        stack[sp - 1] =
            (stack[sp - 1] != 0.0 && stack[sp] != 0.0) ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kOr:
        stack[sp - 1] =
            (stack[sp - 1] != 0.0 || stack[sp] != 0.0) ? 1.0 : 0.0;
        --sp;
        break;
      case Op::kNot:
        stack[sp] = stack[sp] == 0.0 ? 1.0 : 0.0;
        break;
    }
  }
  return sp >= 0 ? stack[sp] : 0.0;
}

}  // namespace saber
