#pragma once

#include <cstring>
#include <vector>

#include "relational/expression_compiler.h"

/// \file field_plan.h
/// Output-row construction plans shared by the CPU and GPGPU operator back
/// ends (§5.4's populated code-template pieces). Per output field the plan
/// is either a raw column copy (source and destination types match — exact
/// bytes, covers the timestamp passthrough), the join's max-timestamp stamp,
/// or a compiled program routed through the int64 lane (integral
/// destinations, exact beyond 2^53) or the double lane (floating
/// destinations). Both back ends build plans with BuildFieldPlans, so the
/// copy-vs-compile decision and the typed conversion rules cannot drift
/// between processors — which §5.4's cross-processor bit-compatibility
/// requires. The GPGPU kernels consume plans row-wise (WriteRowFromPlans);
/// the vectorized CPU operators evaluate each plan's program as a column
/// and scatter (cpu_operators.cc).

namespace saber {

struct FieldPlan {
  enum class Kind : uint8_t { kCopy, kMaxTs, kInt, kDouble } kind;
  uint8_t side = 0;         // source tuple for kCopy
  uint16_t src_offset = 0;  // byte offset in the source tuple
  uint16_t dst_offset = 0;  // byte offset in the output row
  uint8_t width = 0;        // bytes to copy for kCopy
  DataType dst_type = DataType::kInt64;
  CompiledExpr prog;        // set for kInt / kDouble
};

inline std::vector<FieldPlan> BuildFieldPlans(const std::vector<ExprPtr>& exprs,
                                              const Schema& out,
                                              const Schema& left,
                                              const Schema* right,
                                              bool field0_is_max_ts) {
  std::vector<FieldPlan> plans;
  for (size_t f = 0; f < exprs.size(); ++f) {
    FieldPlan p;
    p.dst_offset = static_cast<uint16_t>(out.field(f).offset);
    p.dst_type = out.field(f).type;
    if (f == 0 && field0_is_max_ts) {
      p.kind = FieldPlan::Kind::kMaxTs;
      plans.push_back(std::move(p));
      continue;
    }
    const Expression& e = *exprs[f];
    if (e.kind() == Expression::Kind::kColumn) {
      const auto& col = static_cast<const ColumnExpr&>(e);
      const Schema& src = col.side() == Side::kLeft ? left : *right;
      if (src.field(col.field()).type == p.dst_type) {
        p.kind = FieldPlan::Kind::kCopy;
        p.side = static_cast<uint8_t>(col.side());
        p.src_offset = static_cast<uint16_t>(src.field(col.field()).offset);
        p.width = static_cast<uint8_t>(TypeSize(p.dst_type));
        plans.push_back(std::move(p));
        continue;
      }
    }
    p.kind = IsIntegral(p.dst_type) ? FieldPlan::Kind::kInt
                                    : FieldPlan::Kind::kDouble;
    p.prog = CompiledExpr::Compile(e, left, right);
    plans.push_back(std::move(p));
  }
  return plans;
}

/// True if every compiled program in the plan set supports batch
/// evaluation (the vectorized CPU path's plan-time gate).
inline bool PlansLowerable(const std::vector<FieldPlan>& plans) {
  for (const FieldPlan& p : plans) {
    if ((p.kind == FieldPlan::Kind::kInt ||
         p.kind == FieldPlan::Kind::kDouble) &&
        !p.prog.lowerable()) {
      return false;
    }
  }
  return true;
}

/// Row-wise plan application (the GPGPU work-item form). Conversions match
/// TupleWriter: integral destinations evaluate through EvalInt64 (exact for
/// the full int64 range), floating ones through EvalDouble.
inline void WriteRowFromPlans(const std::vector<FieldPlan>& plans,
                              const uint8_t* l, const uint8_t* r, uint8_t* row,
                              size_t row_size) {
  std::memset(row, 0, row_size);  // deterministic padding, like TupleWriter
  for (const FieldPlan& p : plans) {
    switch (p.kind) {
      case FieldPlan::Kind::kCopy:
        std::memcpy(row + p.dst_offset, (p.side ? r : l) + p.src_offset,
                    p.width);
        break;
      case FieldPlan::Kind::kMaxTs: {
        int64_t tl, tr;
        std::memcpy(&tl, l, sizeof(tl));
        std::memcpy(&tr, r, sizeof(tr));
        const int64_t ts = tl > tr ? tl : tr;
        std::memcpy(row + p.dst_offset, &ts, sizeof(ts));
        break;
      }
      case FieldPlan::Kind::kInt: {
        const int64_t v = p.prog.EvalInt64(l, r);
        if (p.dst_type == DataType::kInt32) {
          const int32_t x = static_cast<int32_t>(v);
          std::memcpy(row + p.dst_offset, &x, sizeof(x));
        } else {
          std::memcpy(row + p.dst_offset, &v, sizeof(v));
        }
        break;
      }
      case FieldPlan::Kind::kDouble: {
        const double v = p.prog.EvalDouble(l, r);
        if (p.dst_type == DataType::kFloat) {
          const float x = static_cast<float>(v);
          std::memcpy(row + p.dst_offset, &x, sizeof(x));
        } else {
          std::memcpy(row + p.dst_offset, &v, sizeof(v));
        }
        break;
      }
    }
  }
}

}  // namespace saber
