#pragma once

#include <vector>

#include "relational/expression.h"

/// \file expression_compiler.h
/// Lowers an Expression tree into a flat postfix program executed by a small
/// stack machine. This models SABER's GPGPU code generation (§5.4: operators
/// are OpenCL templates populated with query-specific functions): the
/// simulated device executes these programs in tight loops with no virtual
/// dispatch. Boolean connectives are evaluated arithmetically without
/// short-circuiting, which matches SIMD predication on real GPGPUs (all
/// lanes evaluate every predicate).

namespace saber {

class CompiledExpr {
 public:
  enum class Op : uint8_t {
    kPushColInt32,
    kPushColInt64,
    kPushColFloat,
    kPushColDouble,
    kPushConst,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kLt,
    kLe,
    kEq,
    kNe,
    kGe,
    kGt,
    kAnd,
    kOr,
    kNot,
  };

  struct Instr {
    Op op;
    uint8_t side;      // 0 = left tuple, 1 = right tuple (join predicates)
    uint16_t offset;   // byte offset of the column within the tuple
    double constant;   // for kPushConst
  };

  /// Compiles `expr`; offsets are resolved against the expression's schemas
  /// (already baked into ColumnExpr instances at build time).
  static CompiledExpr Compile(const Expression& expr, const Schema& left_schema,
                              const Schema* right_schema = nullptr);

  /// Evaluates the program over a serialized tuple (pair).
  double EvalDouble(const uint8_t* left, const uint8_t* right = nullptr) const;
  bool EvalBool(const uint8_t* left, const uint8_t* right = nullptr) const {
    return EvalDouble(left, right) != 0.0;
  }

  const std::vector<Instr>& program() const { return program_; }
  size_t max_stack() const { return max_stack_; }
  bool empty() const { return program_.empty(); }

 private:
  void Emit(const Expression& e, const Schema& ls, const Schema* rs);

  std::vector<Instr> program_;
  size_t max_stack_ = 0;
};

}  // namespace saber
