#pragma once

#include <vector>

#include "relational/expression.h"

/// \file expression_compiler.h
/// Lowers an Expression tree into a flat postfix program executed by a small
/// stack machine. This models SABER's GPGPU code generation (§5.4: operators
/// are OpenCL templates populated with query-specific functions): the
/// simulated device executes these programs in tight loops with no virtual
/// dispatch, and the vectorized CPU operator path executes them
/// batch-at-a-time with per-instruction loops (cpu_operators.cc). Boolean
/// connectives are evaluated arithmetically without short-circuiting, which
/// matches SIMD predication on real GPGPUs (all lanes evaluate every
/// predicate).
///
/// The stack machine is *typed*: every program value lives in either the
/// int64 lane or the double lane, decided statically at compile time by
/// mirroring Expression::integral(). Integer arithmetic, modulo and
/// comparisons therefore stay exact for the full int64 range — evaluating
/// them through double (as a single-lane design would) silently loses
/// precision beyond 2^53, which corrupts e.g. GROUP-BY keys derived from
/// wide identifiers. Conversions between lanes are explicit instructions
/// (kCastF64 / kTestF64) emitted exactly where the Expression tree itself
/// widens or tests a value, so compiled results are bit-identical to the
/// interpreted tree.

namespace saber {

class CompiledExpr {
 public:
  enum class Op : uint8_t {
    // Column loads. Integer columns land in the int64 lane, floating-point
    // columns in the double lane (mirroring Expression::integral()).
    kPushColInt32,
    kPushColInt64,
    kPushColFloat,
    kPushColDouble,
    kPushConstF64,
    kPushConstI64,
    // Lane conversions on the stack top.
    kCastF64,  // int64 -> double (Expression widening at mixed-type sites)
    kTestF64,  // double -> int64 truthiness (v != 0.0), for boolean operands
    // Double-lane arithmetic. kDivF64 yields 0 for a zero divisor; kModF64
    // truncates both operands to int64 first — both mirror ArithExpr.
    kAddF64,
    kSubF64,
    kMulF64,
    kDivF64,
    kModF64,
    // Int64-lane arithmetic (exact; division always lowers to the double
    // lane because ArithExpr never treats kDiv as integral).
    kAddI64,
    kSubI64,
    kMulI64,
    kModI64,
    // Comparisons; results are 0/1 in the int64 lane.
    kLtF64,
    kLeF64,
    kEqF64,
    kNeF64,
    kGeF64,
    kGtF64,
    kLtI64,
    kLeI64,
    kEqI64,
    kNeI64,
    kGeI64,
    kGtI64,
    // Boolean connectives on the int64 lane. Operands need not be
    // normalized to 0/1: truthiness is value != 0. No short-circuiting.
    kAnd,
    kOr,
    kNot,
  };

  struct Instr {
    Op op;
    uint8_t side;      // 0 = left tuple, 1 = right tuple (join predicates)
    uint16_t offset;   // byte offset of the column within the tuple
    double constant;   // for kPushConstF64
    int64_t iconst;    // for kPushConstI64
  };

  /// Tuples evaluated per batch-interpreter inner loop. Large enough to
  /// amortize instruction dispatch to noise, small enough that one stack
  /// slot's lane (8 KiB) stays L1-resident.
  static constexpr size_t kBatchSize = 1024;
  /// Scalar-interpreter stack bound (Compile aborts beyond this).
  static constexpr size_t kMaxStack = 64;
  /// Batch-evaluation stack bound: deeper programs are valid but not
  /// *lowerable* — the CPU operator path falls back to the scalar
  /// tree-walking interpreter for them (cpu_operators.cc).
  static constexpr size_t kMaxBatchStack = 16;

  /// Compiles `expr`; offsets are resolved against the expression's schemas
  /// (already baked into ColumnExpr instances at build time).
  static CompiledExpr Compile(const Expression& expr, const Schema& left_schema,
                              const Schema* right_schema = nullptr);

  // -------------------------------------------------------------------------
  // Scalar evaluation over one serialized tuple (pair). Values match the
  // Expression tree's EvalDouble / EvalInt64 / EvalBool bit for bit.
  // -------------------------------------------------------------------------
  double EvalDouble(const uint8_t* left, const uint8_t* right = nullptr) const;
  int64_t EvalInt64(const uint8_t* left, const uint8_t* right = nullptr) const;
  bool EvalBool(const uint8_t* left, const uint8_t* right = nullptr) const;

  // -------------------------------------------------------------------------
  // Batch evaluation (the vectorized CPU operator path). All entry points
  // require lowerable() and a non-empty program; they chunk internally into
  // kBatchSize runs, so `n` is unbounded. Thread-safe (scratch is
  // thread-local); indices written to / read from `sel` are relative to
  // `base`.
  // -------------------------------------------------------------------------

  /// Evaluates the predicate over `n` contiguous tuples `stride` bytes
  /// apart, writing the indices of passing tuples to `sel_out` (capacity
  /// >= n) in ascending order. Returns the number of survivors.
  size_t EvalBatchBool(const uint8_t* base, size_t stride, size_t n,
                       uint32_t* sel_out) const;

  /// Evaluates the program as a double column: out[i] = eval(tuple sel[i])
  /// for i in [0, n), or tuple i when `sel` is null (dense).
  void EvalBatchDouble(const uint8_t* base, size_t stride, const uint32_t* sel,
                       size_t n, double* out) const;

  /// Same, widened/truncated to int64 exactly like Expression::EvalInt64.
  void EvalBatchInt64(const uint8_t* base, size_t stride, const uint32_t* sel,
                      size_t n, int64_t* out) const;

  // Pair variants for join predicates/projections: each side is either a
  // per-row pointer array (`left`/`right`, non-null) or a single broadcast
  // tuple (`fixed_left`/`fixed_right`) — exactly one of each pair non-null.
  size_t EvalBatchBoolPairs(const uint8_t* const* left,
                            const uint8_t* fixed_left,
                            const uint8_t* const* right,
                            const uint8_t* fixed_right, size_t n,
                            uint32_t* sel_out) const;
  void EvalBatchDoublePairs(const uint8_t* const* left,
                            const uint8_t* fixed_left,
                            const uint8_t* const* right,
                            const uint8_t* fixed_right, size_t n,
                            double* out) const;
  void EvalBatchInt64Pairs(const uint8_t* const* left,
                           const uint8_t* fixed_left,
                           const uint8_t* const* right,
                           const uint8_t* fixed_right, size_t n,
                           int64_t* out) const;

  /// True if the program supports batch evaluation (false for
  /// default-constructed/empty programs and stacks beyond kMaxBatchStack).
  bool lowerable() const { return lowerable_; }
  /// True if the program's result lives in the int64 lane (the compiled
  /// mirror of Expression::integral()).
  bool integral_result() const { return result_integral_; }

  const std::vector<Instr>& program() const { return program_; }
  size_t max_stack() const { return max_stack_; }
  bool empty() const { return program_.empty(); }

 private:
  void Emit(const Expression& e, const Schema& ls, const Schema* rs);
  void EmitAsF64(const Expression& e, const Schema& ls, const Schema* rs);
  void EmitAsBool(const Expression& e, const Schema& ls, const Schema* rs);

  std::vector<Instr> program_;
  size_t max_stack_ = 0;
  bool result_integral_ = false;
  bool lowerable_ = false;
};

}  // namespace saber
