#pragma once

#include <cstring>

#include "relational/schema.h"

/// \file tuple_ref.h
/// Zero-copy view of one serialized tuple (§5.1 lazy deserialisation: values
/// are decoded per attribute, if and when an operator touches them). Getters
/// memcpy single primitives out of the byte row, which compiles to plain
/// loads; nothing is materialized up front.

namespace saber {

class TupleRef {
 public:
  TupleRef() : data_(nullptr), schema_(nullptr) {}
  TupleRef(const uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  bool valid() const { return data_ != nullptr; }
  const uint8_t* data() const { return data_; }
  const Schema& schema() const { return *schema_; }

  int64_t timestamp() const { return GetInt64(0); }

  int32_t GetInt32(size_t field) const {
    int32_t v;
    std::memcpy(&v, data_ + schema_->field(field).offset, sizeof(v));
    return v;
  }
  int64_t GetInt64(size_t field) const {
    int64_t v;
    std::memcpy(&v, data_ + schema_->field(field).offset, sizeof(v));
    return v;
  }
  float GetFloat(size_t field) const {
    float v;
    std::memcpy(&v, data_ + schema_->field(field).offset, sizeof(v));
    return v;
  }
  double GetDouble(size_t field) const {
    double v;
    std::memcpy(&v, data_ + schema_->field(field).offset, sizeof(v));
    return v;
  }

  /// Numeric value of any field widened to double.
  double GetAsDouble(size_t field) const {
    switch (schema_->field(field).type) {
      case DataType::kInt32: return static_cast<double>(GetInt32(field));
      case DataType::kInt64: return static_cast<double>(GetInt64(field));
      case DataType::kFloat: return static_cast<double>(GetFloat(field));
      case DataType::kDouble: return GetDouble(field);
    }
    return 0.0;
  }

  /// Integral value of any field widened to int64 (floats truncate).
  int64_t GetAsInt64(size_t field) const {
    switch (schema_->field(field).type) {
      case DataType::kInt32: return GetInt32(field);
      case DataType::kInt64: return GetInt64(field);
      case DataType::kFloat: return static_cast<int64_t>(GetFloat(field));
      case DataType::kDouble: return static_cast<int64_t>(GetDouble(field));
    }
    return 0;
  }

 private:
  const uint8_t* data_;
  const Schema* schema_;
};

/// Serializes field values into a fixed-width row. Used by generators, tests
/// and operators that materialize result tuples.
class TupleWriter {
 public:
  TupleWriter(uint8_t* data, const Schema* schema) : data_(data), schema_(schema) {
    std::memset(data_, 0, schema_->tuple_size());
  }

  TupleWriter& SetInt32(size_t field, int32_t v) { return Put(field, &v, sizeof(v)); }
  TupleWriter& SetInt64(size_t field, int64_t v) { return Put(field, &v, sizeof(v)); }
  TupleWriter& SetFloat(size_t field, float v) { return Put(field, &v, sizeof(v)); }
  TupleWriter& SetDouble(size_t field, double v) { return Put(field, &v, sizeof(v)); }

  /// Stores `v` converted to the field's declared type.
  TupleWriter& SetNumeric(size_t field, double v) {
    switch (schema_->field(field).type) {
      case DataType::kInt32: return SetInt32(field, static_cast<int32_t>(v));
      case DataType::kInt64: return SetInt64(field, static_cast<int64_t>(v));
      case DataType::kFloat: return SetFloat(field, static_cast<float>(v));
      case DataType::kDouble: return SetDouble(field, v);
    }
    return *this;
  }

 private:
  TupleWriter& Put(size_t field, const void* v, size_t n) {
    SABER_DCHECK(n == TypeSize(schema_->field(field).type));
    std::memcpy(data_ + schema_->field(field).offset, v, n);
    return *this;
  }

  uint8_t* data_;
  const Schema* schema_;
};

/// Scans a block of serialized tuples (field 0 = int64 timestamp) for a
/// timestamp regression, starting against `*prev`. Returns the index of
/// the first violating tuple, or -1 and updates `*prev` to the block's
/// last timestamp. Shared by the stream-order validation at the
/// Engine::InsertInto boundary and in ingest::ProducerHandle::Append, so
/// the ordering contract lives in exactly one scan.
inline int64_t FirstTimestampRegression(const void* tuples, size_t bytes,
                                        size_t tuple_size, int64_t* prev) {
  const uint8_t* src = static_cast<const uint8_t*>(tuples);
  int64_t p = *prev;
  for (size_t off = 0; off < bytes; off += tuple_size) {
    int64_t ts;
    std::memcpy(&ts, src + off, sizeof(ts));
    if (ts < p) return static_cast<int64_t>(off / tuple_size);
    p = ts;
  }
  *prev = p;
  return -1;
}

}  // namespace saber
