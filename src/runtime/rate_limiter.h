#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "runtime/clock.h"

/// \file rate_limiter.h
/// Token-bucket byte rate limiter. The evaluation streams data to SABER over
/// a 10 Gbps NIC (§6.1); since our generators are in-process, experiments
/// that report "saturates the network link" (Figs. 7, 9) reproduce the
/// plateau by limiting the ingest rate to the equivalent 1.25 GB/s.
///
/// Per-tenant metering (the sharded ingestion stage attaches one limiter per
/// producer) needs *live* re-metering: an operator turns a tenant's rate up
/// or down while its producer thread is mid-Acquire. SetRate() is therefore
/// thread-safe with respect to a concurrent Acquire(): the bucket state is
/// guarded by a mutex, waits happen outside the lock in bounded slices, and
/// every slice re-reads the current rate, so a re-rate takes effect within
/// one slice (<= 1 ms) instead of after the old wait completes.

namespace saber {

class RateLimiter {
 public:
  /// `bytes_per_second` <= 0 disables limiting.
  explicit RateLimiter(double bytes_per_second, double burst_seconds = 0.005)
      : burst_seconds_(burst_seconds) {
    SetRate(bytes_per_second);
    tokens_ = burst_bytes_;  // start with a full bucket (no ctor concurrency)
  }

  bool enabled() const { return rate_.load(std::memory_order_relaxed) > 0; }
  double rate_bytes_per_sec() const {
    return rate_.load(std::memory_order_relaxed);
  }

  /// Number of times Acquire had to sleep (throttle pressure indicator,
  /// surfaced in ingest stats).
  int64_t throttle_waits() const {
    return throttle_waits_.load(std::memory_order_relaxed);
  }

  /// Re-meters the limiter. Thread-safe against a concurrent Acquire (which
  /// runs on the producer thread). <= 0 disables limiting and releases any
  /// waiter within one wait slice. The burst window (seconds) is kept from
  /// construction; tokens are clamped to the new burst so lowering the rate
  /// does not leave a stale oversized burst behind.
  void SetRate(double bytes_per_second) {
    std::lock_guard<std::mutex> lock(mu_);
    RefillLocked();
    rate_.store(bytes_per_second, std::memory_order_relaxed);
    burst_bytes_ = std::max(1.0, bytes_per_second * burst_seconds_);
    tokens_ = std::min(tokens_, burst_bytes_);
    if (tokens_ < 0 && bytes_per_second <= 0) tokens_ = 0;  // forgive debt
  }

  /// Blocks until `n` bytes of budget are available, then consumes them.
  /// One producer thread per limiter; SetRate may race from any thread.
  /// Requests larger than the burst are served by letting the bucket go into
  /// debt and waiting it out, so any `n` terminates while the long-run rate
  /// stays enforced.
  void Acquire(int64_t n) {
    if (!enabled()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      RefillLocked();
      tokens_ -= static_cast<double>(n);
      if (tokens_ >= 0) return;
    }
    throttle_waits_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      int64_t wait;
      {
        std::lock_guard<std::mutex> lock(mu_);
        RefillLocked();
        const double rate = rate_.load(std::memory_order_relaxed);
        if (rate <= 0) {  // re-metered to "unlimited" mid-wait
          tokens_ = std::max(tokens_, 0.0);
          return;
        }
        if (tokens_ >= 0) return;
        wait = static_cast<int64_t>(-tokens_ / rate * 1e9);
      }
      // Sleep outside the lock, in bounded slices, so SetRate never blocks
      // behind a long debt wait and takes effect promptly.
      wait = std::clamp<int64_t>(wait, 200, kMaxWaitSliceNanos);
      WaitUntilNanos(NowNanos() + wait);
    }
  }

 private:
  static constexpr int64_t kMaxWaitSliceNanos = 1 * 1000 * 1000;  // 1 ms

  void RefillLocked() {
    const int64_t now = NowNanos();
    const double rate = rate_.load(std::memory_order_relaxed);
    if (rate > 0) {
      tokens_ = std::min(burst_bytes_,
                         tokens_ + rate * (now - last_refill_nanos_) * 1e-9);
    }
    last_refill_nanos_ = now;
  }

  const double burst_seconds_;
  std::mutex mu_;
  std::atomic<double> rate_{0};  // readable without mu_ (enabled()/rate())
  double burst_bytes_ = 1.0;    // guarded by mu_
  double tokens_ = 0;           // guarded by mu_
  int64_t last_refill_nanos_ = 0;  // guarded by mu_
  std::atomic<int64_t> throttle_waits_{0};
};

}  // namespace saber
