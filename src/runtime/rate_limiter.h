#pragma once

#include <algorithm>
#include <cstdint>

#include "runtime/clock.h"

/// \file rate_limiter.h
/// Token-bucket byte rate limiter. The evaluation streams data to SABER over
/// a 10 Gbps NIC (§6.1); since our generators are in-process, experiments
/// that report "saturates the network link" (Figs. 7, 9) reproduce the
/// plateau by limiting the ingest rate to the equivalent 1.25 GB/s.

namespace saber {

class RateLimiter {
 public:
  /// `bytes_per_second` <= 0 disables limiting.
  explicit RateLimiter(double bytes_per_second,
                       double burst_seconds = 0.005)
      : rate_(bytes_per_second),
        burst_bytes_(std::max(1.0, bytes_per_second * burst_seconds)),
        tokens_(burst_bytes_),
        last_refill_nanos_(NowNanos()) {}

  bool enabled() const { return rate_ > 0; }

  /// Blocks until `n` bytes of budget are available, then consumes them.
  /// Single-threaded use (one producer per stream). Requests larger than the
  /// burst are served by letting the bucket go into debt and waiting it out,
  /// so any `n` terminates while the long-run rate stays enforced.
  void Acquire(int64_t n) {
    if (!enabled()) return;
    Refill();
    tokens_ -= static_cast<double>(n);
    while (tokens_ < 0) {
      const int64_t wait = static_cast<int64_t>(-tokens_ / rate_ * 1e9);
      WaitUntilNanos(NowNanos() + std::max<int64_t>(wait, 200));
      Refill();
    }
  }

 private:
  void Refill() {
    const int64_t now = NowNanos();
    tokens_ = std::min(burst_bytes_,
                       tokens_ + rate_ * (now - last_refill_nanos_) * 1e-9);
    last_refill_nanos_ = now;
  }

  const double rate_;
  const double burst_bytes_;
  double tokens_;
  int64_t last_refill_nanos_;
};

}  // namespace saber
