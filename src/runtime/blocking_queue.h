#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

/// \file blocking_queue.h
/// A small mutex+cv bounded queue used between the stages of the GPGPU
/// data-movement pipeline (§5.2). Stage hand-offs happen at query-task
/// granularity (hundreds of KB of payload per item), so lock overhead is
/// irrelevant; what matters is correct blocking/backpressure semantics.

namespace saber {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t max_size = 0) : max_size_(max_size) {}

  /// Blocks while the queue is full (when bounded). Returns false if the
  /// queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || max_size_ == 0 || items_.size() < max_size_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Drains everything currently queued in one lock acquisition (the GPGPU
  /// worker uses it to absorb a burst of completions before rescheduling).
  std::deque<T> PopAll() {
    std::deque<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.swap(items_);
    }
    if (!out.empty()) not_full_.notify_all();
    return out;
  }

  /// Pop with a deadline: blocks up to `timeout` for an item; nullopt on
  /// timeout (or close-and-drained). The GPGPU worker uses it to wake at a
  /// quarantine expiry while still absorbing completions promptly.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; Push fails and Pop drains then returns nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t max_size_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace saber
