#pragma once

#include <cstddef>
#include <cstdint>

namespace saber {

/// Size of a destructive-interference-free region; used to pad hot atomics.
inline constexpr size_t kCacheLineSize = 64;

/// Round `v` up to the next multiple of `alignment` (a power of two).
constexpr uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

/// Round `v` up to the next multiple of `m` (any m >= 1, not just powers of
/// two — use this for tuple sizes, which are frequently e.g. 20 bytes).
constexpr uint64_t RoundUpToMultiple(uint64_t v, uint64_t m) {
  return (v + m - 1) / m * m;
}

/// Round `v` up to the next power of two (v >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  v -= 1;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace saber
