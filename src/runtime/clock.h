#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

/// \file clock.h
/// Time sources and pacing primitives. The simulated GPGPU device (see
/// src/gpu/) models PCIe transfers and DMA latency by *pacing*: an operation
/// that would take `d` nanoseconds on the modeled hardware is not allowed to
/// complete earlier than `start + d` in wall-clock time. Pacing uses a hybrid
/// sleep/spin strategy so that microsecond-scale delays remain accurate.

namespace saber {

/// Monotonic wall-clock time in nanoseconds.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t NowMicros() { return NowNanos() / 1000; }

/// Block until wall-clock time reaches `deadline_nanos`. Sleeps for the bulk
/// of long waits and spins for the final stretch (std::this_thread::sleep_for
/// has ~50us granularity on Linux, too coarse for modeling 10us DMA hops).
inline void WaitUntilNanos(int64_t deadline_nanos) {
  constexpr int64_t kSpinThresholdNanos = 120 * 1000;  // 120us
  int64_t now = NowNanos();
  while (now + kSpinThresholdNanos < deadline_nanos) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(deadline_nanos - now - kSpinThresholdNanos));
    now = NowNanos();
  }
  while (NowNanos() < deadline_nanos) {
    // Busy-wait for sub-granularity accuracy.
  }
}

/// Pace an operation: ensure at least `duration_nanos` elapse after
/// `start_nanos` before returning.
inline void PaceNanos(int64_t start_nanos, int64_t duration_nanos) {
  WaitUntilNanos(start_nanos + duration_nanos);
}

/// A stopwatch for measuring elapsed time in benchmarks and the throughput
/// matrix (§4.2: observed query-task throughput).
class Stopwatch {
 public:
  Stopwatch() : start_nanos_(NowNanos()) {}

  void Restart() { start_nanos_ = NowNanos(); }
  int64_t ElapsedNanos() const { return NowNanos() - start_nanos_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  int64_t start_nanos_;
};

}  // namespace saber
