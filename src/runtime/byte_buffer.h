#pragma once

#include <cstdint>
#include <cstring>
#include <memory>

#include "runtime/status.h"

/// \file byte_buffer.h
/// A growable byte array used for intermediate window-fragment results
/// (§5.1 "object pooling ... byte arrays for storing intermediate window
/// fragment results"). Instances are pooled per worker thread, so Clear()
/// keeps the allocation and only resets the length.

namespace saber {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t initial_capacity) { Reserve(initial_capacity); }

  ByteBuffer(const ByteBuffer&) = delete;
  ByteBuffer& operator=(const ByteBuffer&) = delete;
  ByteBuffer(ByteBuffer&&) = default;
  ByteBuffer& operator=(ByteBuffer&&) = default;

  const uint8_t* data() const { return data_.get(); }
  uint8_t* data() { return data_.get(); }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  void Clear() { size_ = 0; }

  void Reserve(size_t n) {
    if (n <= capacity_) return;
    size_t cap = capacity_ == 0 ? 256 : capacity_;
    while (cap < n) cap *= 2;
    std::unique_ptr<uint8_t[]> grown(new uint8_t[cap]);
    if (size_ > 0) std::memcpy(grown.get(), data_.get(), size_);
    data_ = std::move(grown);
    capacity_ = cap;
  }

  void Resize(size_t n) {
    Reserve(n);
    size_ = n;
  }

  /// Appends `n` bytes, growing if needed. The n == 0 guard matters: callers
  /// routinely append empty results, and memcpy(null, null, 0) is UB.
  void Append(const void* bytes, size_t n) {
    if (n == 0) return;
    Reserve(size_ + n);
    std::memcpy(data_.get() + size_, bytes, n);
    size_ += n;
  }

  /// Appends `n` zero-initialized bytes and returns a pointer to them.
  uint8_t* AppendZeros(size_t n) {
    Reserve(size_ + n);
    uint8_t* out = data_.get() + size_;
    if (n > 0) std::memset(out, 0, n);
    size_ += n;
    return out;
  }

  /// Appends `n` uninitialized bytes and returns a pointer for the caller to
  /// fill (used by operators writing fixed-size result tuples).
  uint8_t* AppendUninitialized(size_t n) {
    Reserve(size_ + n);
    uint8_t* out = data_.get() + size_;
    size_ += n;
    return out;
  }

  template <typename T>
  void AppendValue(const T& v) {
    Append(&v, sizeof(T));
  }

  template <typename T>
  const T* ValueAt(size_t offset) const {
    SABER_DCHECK(offset + sizeof(T) <= size_);
    return reinterpret_cast<const T*>(data_.get() + offset);
  }

 private:
  std::unique_ptr<uint8_t[]> data_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace saber
