#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

/// \file object_pool.h
/// Statically provisioned object pools (§5.1). SABER avoids dynamic memory
/// allocation on the critical processing path by recycling query-task objects
/// and intermediate byte arrays. To avoid contention, each worker thread owns
/// a separate pool (PerThreadPool); a shared fallback pool exists for objects
/// that migrate between threads (a task may be created by the dispatcher
/// thread and released by a worker).

namespace saber {

/// A mutex-protected free list. Acquire pops a recycled object or constructs
/// a new one; Release pushes it back. The mutex is uncontended in the
/// per-thread configuration and cheap in the shared one (critical section is
/// two pointer moves).
template <typename T>
class ObjectPool {
 public:
  using Factory = std::function<std::unique_ptr<T>()>;

  explicit ObjectPool(Factory factory, size_t preallocate = 0)
      : factory_(std::move(factory)) {
    for (size_t i = 0; i < preallocate; ++i) free_.push_back(factory_());
  }

  std::unique_ptr<T> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<T> obj = std::move(free_.back());
        free_.pop_back();
        return obj;
      }
    }
    return factory_();
  }

  void Release(std::unique_ptr<T> obj) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(obj));
  }

  size_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  Factory factory_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> free_;
};

/// One ObjectPool per thread slot, indexed by worker id. Matches §5.1: "each
/// thread maintains a separate pool" of byte arrays for fragment results.
template <typename T>
class PerThreadPool {
 public:
  PerThreadPool(size_t num_threads, typename ObjectPool<T>::Factory factory,
                size_t preallocate_per_thread = 0) {
    pools_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      pools_.push_back(std::make_unique<ObjectPool<T>>(factory,
                                                       preallocate_per_thread));
    }
  }

  ObjectPool<T>& ForThread(size_t thread_id) {
    return *pools_[thread_id % pools_.size()];
  }

  size_t num_threads() const { return pools_.size(); }

 private:
  std::vector<std::unique_ptr<ObjectPool<T>>> pools_;
};

}  // namespace saber
