#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "runtime/align.h"
#include "runtime/status.h"

/// \file spsc_queue.h
/// Bounded lock-free single-producer/single-consumer ring. Used to hand
/// query tasks between the stages of the GPGPU data-movement pipeline (§5.2):
/// each stage is a dedicated thread, and stage i feeds stage i+1 through one
/// of these rings, which preserves the paper's per-stage FIFO ("the execution
/// of each data movement operation by a thread results in the sequential
/// execution of the same operation of different tasks").

namespace saber {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t min_capacity)
      : capacity_(NextPowerOfTwo(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(new T[capacity_]) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return capacity_; }

  bool TryPush(T value) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == capacity_) return false;
    slots_[t & mask_] = std::move(value);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }

 private:
  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<T[]> slots_;

  alignas(kCacheLineSize) std::atomic<uint64_t> head_{0};
  alignas(kCacheLineSize) std::atomic<uint64_t> tail_{0};
};

}  // namespace saber
