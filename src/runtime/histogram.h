#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

/// \file histogram.h
/// A log-linear latency histogram (HdrHistogram-style, coarse). Worker
/// threads record per-task latencies concurrently; the evaluation harness
/// reads percentiles for the latency curves of Figs. 11 and 12.

namespace saber {

class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 16;           // linear buckets per octave
  static constexpr int kOctaves = 44;              // covers ~1ns .. ~4.8h

  LatencyHistogram() : buckets_(kOctaves * kSubBuckets) {}

  void RecordNanos(int64_t nanos) {
    if (nanos < 0) nanos = 0;
    buckets_[BucketIndex(static_cast<uint64_t>(nanos))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(nanos, std::memory_order_relaxed);
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (nanos > prev &&
           !max_.compare_exchange_weak(prev, nanos, std::memory_order_relaxed)) {
    }
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t max_nanos() const { return max_.load(std::memory_order_relaxed); }
  double mean_nanos() const {
    const int64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum_.load(std::memory_order_relaxed)) / c;
  }

  /// Approximate value at percentile `p` in [0, 100]. Clamped to the
  /// observed maximum: a bucket's upper bound can exceed every recorded
  /// value in it, which would otherwise report p100 > max.
  int64_t PercentileNanos(double p) const {
    const int64_t total = count();
    if (total == 0) return 0;
    int64_t rank = static_cast<int64_t>(std::ceil(p / 100.0 * total));
    if (rank < 1) rank = 1;
    int64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen >= rank) return std::min(BucketUpperBound(i), max_nanos());
    }
    return max_nanos();
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  std::string Summary() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "count=%lld mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                  static_cast<long long>(count()), mean_nanos() / 1e3,
                  PercentileNanos(50) / 1e3, PercentileNanos(99) / 1e3,
                  max_nanos() / 1e3);
    return buf;
  }

 private:
  static size_t BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int octave = msb - 3;  // values < 16 handled above
    const uint64_t sub = (v >> (msb - 4)) & (kSubBuckets - 1);
    size_t idx = static_cast<size_t>(octave) * kSubBuckets + sub;
    const size_t last = static_cast<size_t>(kOctaves) * kSubBuckets - 1;
    return idx > last ? last : idx;
  }

  static int64_t BucketUpperBound(size_t idx) {
    if (idx < kSubBuckets) return static_cast<int64_t>(idx);
    const size_t octave = idx / kSubBuckets;
    const size_t sub = idx % kSubBuckets;
    // Inverse of BucketIndex: the bucket holds values in
    // [(16+sub) << (octave-1), (16+sub+1) << (octave-1)), so its largest
    // representable value is one below the next bucket's base. (Returning
    // the *base* here would under-report: a single sample's p100 would come
    // out below the observed maximum.)
    return static_cast<int64_t>(((16 + sub + 1) << (octave - 1)) - 1);
  }

  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

}  // namespace saber
