#pragma once

#include <string>
#include <type_traits>

/// \file strcat.h
/// Small string concatenation helper. Builds the result with += rather than
/// chained operator+: GCC 12 spuriously diagnoses the libstdc++
/// operator+(const char*, std::string&&) overload under -Wrestrict when it
/// inlines aggressively (GCC PR 105651), which breaks -Werror builds.
/// StrCat sidesteps the buggy overload entirely and avoids the intermediate
/// temporaries of a + chain.

namespace saber {

inline void StrAppend(std::string& out, const std::string& s) { out += s; }
inline void StrAppend(std::string& out, const char* s) { out += s; }
inline void StrAppend(std::string& out, char c) { out += c; }

template <typename T,
          typename = std::enable_if_t<std::is_arithmetic_v<T> &&
                                      !std::is_same_v<T, char>>>
inline void StrAppend(std::string& out, T v) {
  out += std::to_string(v);
}

/// StrCat("line ", 42, ": bad field") -> "line 42: bad field"
template <typename... Parts>
std::string StrCat(const Parts&... parts) {
  std::string out;
  (StrAppend(out, parts), ...);
  return out;
}

}  // namespace saber
