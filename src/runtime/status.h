#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

/// \file status.h
/// RocksDB-style error handling: a lightweight Status value that is returned
/// from fallible operations, plus a Result<T> that carries either a value or
/// an error. SABER's hot paths (dispatch, task execution, result collection)
/// never throw; exceptional conditions surface as Status codes.

namespace saber {

/// Error categories used across the engine.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kResourceExhausted = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kUnavailable = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kIOError = 9,
};

/// A cheap, copyable success/error value. The OK status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kIOError: return "IOError";
    }
    return "Unknown";
  }

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts; callers must check ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)), value_() {}       // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    Check();
    return value_;
  }
  T& value() & {
    Check();
    return value_;
  }
  T&& value() && {
    Check();
    return std::move(value_);
  }

 private:
  void Check() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n", status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  T value_;
};

}  // namespace saber

/// Propagate a non-OK Status from the enclosing function.
#define SABER_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::saber::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Abort with a message if `cond` is false. Used for programmer errors that
/// must never occur in a correct build (enabled in all build types).
#define SABER_CHECK(cond)                                                       \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "SABER_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                            \
      std::abort();                                                             \
    }                                                                           \
  } while (0)

#ifndef NDEBUG
#define SABER_DCHECK(cond) SABER_CHECK(cond)
#else
#define SABER_DCHECK(cond) \
  do {                     \
  } while (0)
#endif
