#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "runtime/align.h"
#include "runtime/status.h"

/// \file circular_buffer.h
/// The lock-free circular input buffer of §4.1. SABER keeps one buffer per
/// input stream and per query; tuples are inserted in serialized (byte) form
/// by exactly one producer (the thread that also creates query tasks), and
/// worker threads only ever *read* from it. Two monotonically increasing
/// 64-bit byte positions describe the buffer state:
///
///   start — oldest byte still retained (advanced by the result stage when a
///           task's *free pointer* is released, §4.1),
///   end   — next byte to be written by the producer.
///
/// Positions never wrap (2^63 bytes is unreachable); the physical index is
/// `pos % capacity`. The capacity is rounded up to a multiple of `unit` (the
/// stream's tuple size) so that serialized tuples never straddle the
/// physical wrap point. Lock-freedom follows the paper's recipe: a single
/// producer advances `end`, consumers advance `start`, and both use
/// release/acquire ordering so bytes published before an `end` update are
/// visible to readers that observe the update.

namespace saber {

class CircularBuffer {
 public:
  /// Creates a buffer of at least `min_capacity` bytes, rounded up to a
  /// multiple of `unit` (the tuple size; tuples then never wrap).
  explicit CircularBuffer(size_t min_capacity, size_t unit = 1)
      : unit_(unit == 0 ? 1 : unit),
        // RoundUpToMultiple, not AlignUp: tuple sizes are usually not powers
        // of two, and AlignUp's bit mask would yield a capacity that is NOT
        // a multiple of the unit — letting tuples straddle the physical wrap
        // point and read past the allocation.
        capacity_(RoundUpToMultiple(std::max<size_t>(min_capacity, unit_),
                                    unit_)),
        data_(new uint8_t[capacity_]) {}

  CircularBuffer(const CircularBuffer&) = delete;
  CircularBuffer& operator=(const CircularBuffer&) = delete;

  size_t capacity() const { return capacity_; }
  size_t unit() const { return unit_; }

  /// Oldest retained byte position.
  int64_t start() const { return start_.load(std::memory_order_acquire); }
  /// Next byte position to be written.
  int64_t end() const { return end_.load(std::memory_order_acquire); }
  /// Bytes currently held.
  size_t size() const { return static_cast<size_t>(end() - start()); }
  /// Bytes available for insertion without overwriting retained data.
  size_t remaining() const { return capacity_ - size(); }

  /// Inserts `n` bytes. Returns false (and writes nothing) if the buffer does
  /// not currently have room; the producer retries after the result stage
  /// frees data. Only one thread may insert.
  bool TryInsert(const void* bytes, size_t n) {
    const int64_t e = end_.load(std::memory_order_relaxed);
    const int64_t s = start_.load(std::memory_order_acquire);
    if (static_cast<size_t>(e - s) + n > capacity_) return false;
    WriteBytes(e, bytes, n);
    end_.store(e + n, std::memory_order_release);
    return true;
  }

  /// Releases all bytes before `pos` (the task's free pointer, §4.1). May be
  /// called by any worker thread; lagging positions are ignored. Advancing
  /// `start` signals the free channel, waking a producer blocked on
  /// back-pressure (see WaitFreeEpoch).
  void FreeUpTo(int64_t pos) {
    int64_t cur = start_.load(std::memory_order_relaxed);
    while (cur < pos &&
           !start_.compare_exchange_weak(cur, pos, std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
    // cur still < pos iff our CAS advanced start (a racing FreeUpTo that
    // overtook us exits the loop with cur >= pos and signals on our behalf).
    if (cur < pos) {
      free_epoch_.fetch_add(1, std::memory_order_release);
      free_epoch_.notify_all();
    }
  }

  /// The producer's back-pressure wakeup channel (the per-stream "free
  /// condition"): the epoch advances whenever FreeUpTo releases bytes or
  /// WakeProducer is called. A producer that failed TryInsert re-reads the
  /// epoch *before* the attempt and sleeps on WaitFreeEpoch, so a free
  /// landing between the attempt and the wait is never lost.
  uint32_t free_epoch() const {
    return free_epoch_.load(std::memory_order_acquire);
  }

  /// Blocks (futex wait) until the free epoch differs from `seen`.
  void WaitFreeEpoch(uint32_t seen) const {
    free_epoch_.wait(seen, std::memory_order_acquire);
  }

  /// Unconditional producer wakeup (shutdown/cancellation): bumps the epoch
  /// without freeing anything so the waiter re-checks its exit condition.
  void WakeProducer() {
    free_epoch_.fetch_add(1, std::memory_order_release);
    free_epoch_.notify_all();
  }

  /// Pointer to the byte at `pos`; valid for ContiguousBytes(pos) bytes.
  const uint8_t* DataAt(int64_t pos) const {
    return &data_[static_cast<size_t>(pos % static_cast<int64_t>(capacity_))];
  }

  /// Number of bytes readable from `pos` before the physical wrap point.
  size_t ContiguousBytes(int64_t pos) const {
    return capacity_ - static_cast<size_t>(pos % static_cast<int64_t>(capacity_));
  }

  /// Wrap-aware copy of [pos, pos+n) into `dst`.
  void CopyOut(int64_t pos, size_t n, void* dst) const {
    const size_t first = std::min(n, ContiguousBytes(pos));
    std::memcpy(dst, DataAt(pos), first);
    if (first < n) {
      std::memcpy(static_cast<uint8_t*>(dst) + first, data_.get(), n - first);
    }
  }

  /// Wrap-aware write of `n` bytes at absolute position `pos` (producer only).
  void WriteBytes(int64_t pos, const void* bytes, size_t n) {
    const size_t first = std::min(n, ContiguousBytes(pos));
    std::memcpy(&data_[static_cast<size_t>(pos % static_cast<int64_t>(capacity_))],
                bytes, first);
    if (first < n) {
      std::memcpy(data_.get(), static_cast<const uint8_t*>(bytes) + first,
                  n - first);
    }
  }

 private:
  const size_t unit_;
  const size_t capacity_;
  std::unique_ptr<uint8_t[]> data_;

  alignas(kCacheLineSize) std::atomic<int64_t> start_{0};
  alignas(kCacheLineSize) std::atomic<int64_t> end_{0};
  /// 32-bit so atomic wait/notify maps onto a raw futex (no proxy pool);
  /// wrap-around is harmless, the waiter only compares for inequality.
  alignas(kCacheLineSize) std::atomic<uint32_t> free_epoch_{0};
};

}  // namespace saber
