#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "runtime/byte_buffer.h"
#include "runtime/status.h"

/// \file csv.h
/// CSV import/export for serialized tuple streams. Lets users feed external
/// data through the engine and inspect ordered output streams without
/// writing byte-level code: the CLI's --input/--output flags and the
/// examples use these. Parsing is strict — row arity and numeric syntax
/// errors surface as Status with line numbers, never as silently-corrupt
/// tuples.

namespace saber::io {

struct CsvOptions {
  char delimiter = ',';
  /// Input: skip the first line; output: emit a header line of field names.
  bool header = true;
  /// Input: allowed timestamp disorder. 0 (default) keeps the strict
  /// non-decreasing-timestamp invariant. With L > 0, rows may arrive up to
  /// L timestamp units behind the maximum seen so far; parsers reorder them
  /// (FromCsv sorts the materialized stream, CsvChunkReader holds rows in a
  /// cross-chunk reorder buffer until the horizon passes), and a row older
  /// than the horizon is still a parse error. Reordering is stable: rows
  /// sharing a timestamp keep file order, so a chunked read equals a
  /// one-shot stable sort of the file byte for byte.
  int64_t allowed_lateness = 0;
};

/// Serializes `rows_bytes` (whole tuples of `schema`) as CSV text.
std::string ToCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
                  const CsvOptions& opts = {});

/// Appends one CSV-formatted row per tuple to `out` (streaming writer).
void AppendCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
               std::string* out, const CsvOptions& opts = {});

/// Parses CSV text into serialized tuples of `schema`. Columns are matched
/// positionally; every row must have exactly one value per schema field.
/// Timestamps (field 0) must be non-decreasing integers.
Result<std::vector<uint8_t>> FromCsv(const Schema& schema,
                                     const std::string& text,
                                     const CsvOptions& opts = {});

/// File variants.
Status WriteCsvFile(const std::string& path, const Schema& schema,
                    const uint8_t* rows, size_t bytes,
                    const CsvOptions& opts = {});
/// Materializes the whole file. For large files prefer CsvChunkReader,
/// which this is implemented on top of.
Result<std::vector<uint8_t>> ReadCsvFile(const std::string& path,
                                         const Schema& schema,
                                         const CsvOptions& opts = {});

/// Streaming chunked CSV reader: parses a file into serialized tuples a
/// bounded chunk at a time, so arbitrarily large inputs can feed a producer
/// (saber_cli --input, ingestion shards) with bounded memory instead of
/// materializing the whole file. Parsing is as strict as FromCsv — row
/// arity, numeric syntax and the non-decreasing-timestamp invariant are
/// enforced with line numbers, across chunk boundaries too.
///
/// Usage:
///   CsvChunkReader reader(path, schema);
///   while (!reader.done()) {
///     auto chunk = reader.Next();           // at most chunk_tuples tuples
///     if (!chunk.ok()) return chunk.status();
///     q->Insert(chunk.value().data(), chunk.value().size());
///   }
class CsvChunkReader {
 public:
  CsvChunkReader(const std::string& path, Schema schema, CsvOptions opts = {},
                 size_t chunk_tuples = 8192);
  ~CsvChunkReader();

  CsvChunkReader(const CsvChunkReader&) = delete;
  CsvChunkReader& operator=(const CsvChunkReader&) = delete;

  /// Parses and returns the next chunk (an empty vector once the file is
  /// exhausted). A failed open or a parse error is returned as a Status;
  /// the reader is then done().
  Result<std::vector<uint8_t>> Next();

  /// True once the file is exhausted or an error was returned.
  bool done() const { return done_; }
  /// Lines consumed so far (header included).
  size_t line_number() const { return line_no_; }

 private:
  Schema schema_;
  CsvOptions opts_;
  size_t chunk_tuples_;
  std::unique_ptr<std::ifstream> in_;  // null after open failure
  std::string path_;
  size_t line_no_ = 0;
  int64_t prev_ts_;  // maximum timestamp seen (== previous row's when
                     // allowed_lateness is 0, hence the name)
  bool skip_header_;
  bool done_ = false;

  // Reorder buffer for opts_.allowed_lateness > 0: rows within the horizon
  // of the maximum seen timestamp, held across Next() calls and released
  // (stable-sorted by (timestamp, arrival)) once the horizon passes them.
  struct PendingRow {
    int64_t ts;
    uint64_t seq;
    std::vector<uint8_t> bytes;
  };
  std::vector<PendingRow> pending_;
  uint64_t pending_seq_ = 0;
};

}  // namespace saber::io
