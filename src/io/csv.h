#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "runtime/byte_buffer.h"
#include "runtime/status.h"

/// \file csv.h
/// CSV import/export for serialized tuple streams. Lets users feed external
/// data through the engine and inspect ordered output streams without
/// writing byte-level code: the CLI's --input/--output flags and the
/// examples use these. Parsing is strict — row arity and numeric syntax
/// errors surface as Status with line numbers, never as silently-corrupt
/// tuples.

namespace saber::io {

struct CsvOptions {
  char delimiter = ',';
  /// Input: skip the first line; output: emit a header line of field names.
  bool header = true;
};

/// Serializes `rows_bytes` (whole tuples of `schema`) as CSV text.
std::string ToCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
                  const CsvOptions& opts = {});

/// Appends one CSV-formatted row per tuple to `out` (streaming writer).
void AppendCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
               std::string* out, const CsvOptions& opts = {});

/// Parses CSV text into serialized tuples of `schema`. Columns are matched
/// positionally; every row must have exactly one value per schema field.
/// Timestamps (field 0) must be non-decreasing integers.
Result<std::vector<uint8_t>> FromCsv(const Schema& schema,
                                     const std::string& text,
                                     const CsvOptions& opts = {});

/// File variants.
Status WriteCsvFile(const std::string& path, const Schema& schema,
                    const uint8_t* rows, size_t bytes,
                    const CsvOptions& opts = {});
Result<std::vector<uint8_t>> ReadCsvFile(const std::string& path,
                                         const Schema& schema,
                                         const CsvOptions& opts = {});

}  // namespace saber::io
