#include "io/csv.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "relational/tuple_ref.h"
#include "runtime/strcat.h"

namespace saber::io {

namespace {

void FormatField(const Schema& s, const TupleRef& t, size_t f,
                 std::string* out) {
  char buf[64];
  switch (s.field(f).type) {
    case DataType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", t.GetInt32(f));
      break;
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(t.GetInt64(f)));
      break;
    case DataType::kFloat:
      std::snprintf(buf, sizeof(buf), "%.9g",
                    static_cast<double>(t.GetFloat(f)));
      break;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.17g", t.GetDouble(f));
      break;
  }
  out->append(buf);
}

Status ParseField(const Schema& s, size_t f, const std::string& cell,
                  size_t line, TupleWriter* w) {
  const char* b = cell.data();
  const char* e = b + cell.size();
  auto err = [&](const char* what) {
    return Status::InvalidArgument(StrCat("line ", line, ", field '",
                                          s.field(f).name, "': ", what, " ('",
                                          cell, "')"));
  };
  switch (s.field(f).type) {
    case DataType::kInt32: {
      int32_t v;
      auto [p, ec] = std::from_chars(b, e, v);
      if (ec != std::errc() || p != e) return err("bad int32");
      w->SetInt32(f, v);
      return Status::OK();
    }
    case DataType::kInt64: {
      int64_t v;
      auto [p, ec] = std::from_chars(b, e, v);
      if (ec != std::errc() || p != e) return err("bad int64");
      w->SetInt64(f, v);
      return Status::OK();
    }
    case DataType::kFloat:
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(b, &end);
      if (errno != 0 || end != e || cell.empty()) return err("bad number");
      if (s.field(f).type == DataType::kFloat) {
        w->SetFloat(f, static_cast<float>(v));
      } else {
        w->SetDouble(f, v);
      }
      return Status::OK();
    }
  }
  return err("unknown type");
}

}  // namespace

void AppendCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
               std::string* out, const CsvOptions& opts) {
  const size_t tsz = schema.tuple_size();
  for (size_t off = 0; off + tsz <= bytes; off += tsz) {
    TupleRef t(rows + off, &schema);
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      if (f > 0) out->push_back(opts.delimiter);
      FormatField(schema, t, f, out);
    }
    out->push_back('\n');
  }
}

std::string ToCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
                  const CsvOptions& opts) {
  std::string out;
  if (opts.header) {
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      if (f > 0) out.push_back(opts.delimiter);
      out.append(schema.field(f).name);
    }
    out.push_back('\n');
  }
  AppendCsv(schema, rows, bytes, &out, opts);
  return out;
}

Result<std::vector<uint8_t>> FromCsv(const Schema& schema,
                                     const std::string& text,
                                     const CsvOptions& opts) {
  std::vector<uint8_t> out;
  const size_t tsz = schema.tuple_size();
  const size_t nf = schema.num_fields();
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  int64_t prev_ts = INT64_MIN;
  bool first = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first && opts.header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;

    // Split on the delimiter (no quoting: stream schemas are numeric-only).
    std::vector<std::string> cells;
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == opts.delimiter) {
        cells.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
    if (cells.size() != nf) {
      return Status::InvalidArgument(StrCat("line ", line_no, ": expected ",
                                            nf, " fields, got ", cells.size()));
    }
    const size_t off = out.size();
    out.resize(off + tsz, 0);
    TupleWriter w(out.data() + off, &schema);
    for (size_t f = 0; f < nf; ++f) {
      SABER_RETURN_NOT_OK(ParseField(schema, f, cells[f], line_no, &w));
    }
    int64_t ts;
    std::memcpy(&ts, out.data() + off, sizeof(ts));
    if (ts < prev_ts) {
      return Status::InvalidArgument(
          StrCat("line ", line_no, ": timestamps must be non-decreasing (", ts,
                 " after ", prev_ts, ")"));
    }
    prev_ts = ts;
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const Schema& schema,
                    const uint8_t* rows, size_t bytes,
                    const CsvOptions& opts) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  f << ToCsv(schema, rows, bytes, opts);
  f.close();
  if (!f) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadCsvFile(const std::string& path,
                                         const Schema& schema,
                                         const CsvOptions& opts) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return FromCsv(schema, buf.str(), opts);
}

}  // namespace saber::io
