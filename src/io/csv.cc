#include "io/csv.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "relational/tuple_ref.h"
#include "runtime/strcat.h"

namespace saber::io {

namespace {

void FormatField(const Schema& s, const TupleRef& t, size_t f,
                 std::string* out) {
  char buf[64];
  switch (s.field(f).type) {
    case DataType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", t.GetInt32(f));
      break;
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(t.GetInt64(f)));
      break;
    case DataType::kFloat:
      std::snprintf(buf, sizeof(buf), "%.9g",
                    static_cast<double>(t.GetFloat(f)));
      break;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.17g", t.GetDouble(f));
      break;
  }
  out->append(buf);
}

Status ParseField(const Schema& s, size_t f, const std::string& cell,
                  size_t line, TupleWriter* w) {
  const char* b = cell.data();
  const char* e = b + cell.size();
  auto err = [&](const char* what) {
    return Status::InvalidArgument(StrCat("line ", line, ", field '",
                                          s.field(f).name, "': ", what, " ('",
                                          cell, "')"));
  };
  switch (s.field(f).type) {
    case DataType::kInt32: {
      int32_t v;
      auto [p, ec] = std::from_chars(b, e, v);
      if (ec != std::errc() || p != e) return err("bad int32");
      w->SetInt32(f, v);
      return Status::OK();
    }
    case DataType::kInt64: {
      int64_t v;
      auto [p, ec] = std::from_chars(b, e, v);
      if (ec != std::errc() || p != e) return err("bad int64");
      w->SetInt64(f, v);
      return Status::OK();
    }
    case DataType::kFloat:
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(b, &end);
      if (errno != 0 || end != e || cell.empty()) return err("bad number");
      if (s.field(f).type == DataType::kFloat) {
        w->SetFloat(f, static_cast<float>(v));
      } else {
        w->SetDouble(f, v);
      }
      return Status::OK();
    }
  }
  return err("unknown type");
}

/// Shared row-parsing core of FromCsv / CsvChunkReader: consumes lines from
/// `in` until `max_rows` tuples have been appended to `out` or the stream
/// ends. `line_no`, `prev_ts` and `skip_header` persist across calls so
/// chunked reads validate exactly like a one-shot parse (timestamp order is
/// enforced across chunk boundaries).
Status ParseRows(std::istream& in, const Schema& schema,
                 const CsvOptions& opts, size_t max_rows, size_t* line_no,
                 int64_t* prev_ts, bool* skip_header,
                 std::vector<uint8_t>* out) {
  const size_t tsz = schema.tuple_size();
  const size_t nf = schema.num_fields();
  std::string line;
  std::vector<std::string> cells;
  size_t rows = 0;
  while (rows < max_rows && std::getline(in, line)) {
    ++*line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (*skip_header) {
      *skip_header = false;
      continue;
    }
    if (line.empty()) continue;

    // Split on the delimiter (no quoting: stream schemas are numeric-only).
    cells.clear();
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == opts.delimiter) {
        cells.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
    if (cells.size() != nf) {
      return Status::InvalidArgument(StrCat("line ", *line_no, ": expected ",
                                            nf, " fields, got ",
                                            cells.size()));
    }
    const size_t off = out->size();
    out->resize(off + tsz, 0);
    TupleWriter w(out->data() + off, &schema);
    for (size_t f = 0; f < nf; ++f) {
      SABER_RETURN_NOT_OK(ParseField(schema, f, cells[f], *line_no, &w));
    }
    int64_t ts;
    std::memcpy(&ts, out->data() + off, sizeof(ts));
    if (ts < *prev_ts) {
      return Status::InvalidArgument(
          StrCat("line ", *line_no, ": timestamps must be non-decreasing (",
                 ts, " after ", *prev_ts, ")"));
    }
    *prev_ts = ts;
    ++rows;
  }
  return Status::OK();
}

}  // namespace

void AppendCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
               std::string* out, const CsvOptions& opts) {
  const size_t tsz = schema.tuple_size();
  for (size_t off = 0; off + tsz <= bytes; off += tsz) {
    TupleRef t(rows + off, &schema);
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      if (f > 0) out->push_back(opts.delimiter);
      FormatField(schema, t, f, out);
    }
    out->push_back('\n');
  }
}

std::string ToCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
                  const CsvOptions& opts) {
  std::string out;
  if (opts.header) {
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      if (f > 0) out.push_back(opts.delimiter);
      out.append(schema.field(f).name);
    }
    out.push_back('\n');
  }
  AppendCsv(schema, rows, bytes, &out, opts);
  return out;
}

Result<std::vector<uint8_t>> FromCsv(const Schema& schema,
                                     const std::string& text,
                                     const CsvOptions& opts) {
  std::vector<uint8_t> out;
  std::istringstream in(text);
  size_t line_no = 0;
  int64_t prev_ts = INT64_MIN;
  bool skip_header = opts.header;
  SABER_RETURN_NOT_OK(ParseRows(in, schema, opts,
                                std::numeric_limits<size_t>::max(), &line_no,
                                &prev_ts, &skip_header, &out));
  return out;
}

Status WriteCsvFile(const std::string& path, const Schema& schema,
                    const uint8_t* rows, size_t bytes,
                    const CsvOptions& opts) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  f << ToCsv(schema, rows, bytes, opts);
  f.close();
  if (!f) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadCsvFile(const std::string& path,
                                         const Schema& schema,
                                         const CsvOptions& opts) {
  CsvChunkReader reader(path, schema, opts);
  std::vector<uint8_t> out;
  while (!reader.done()) {
    Result<std::vector<uint8_t>> chunk = reader.Next();
    if (!chunk.ok()) return chunk.status();
    const std::vector<uint8_t>& c = chunk.value();
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

CsvChunkReader::CsvChunkReader(const std::string& path, Schema schema,
                               CsvOptions opts, size_t chunk_tuples)
    : schema_(std::move(schema)),
      opts_(opts),
      chunk_tuples_(std::max<size_t>(1, chunk_tuples)),
      path_(path),
      prev_ts_(INT64_MIN),
      skip_header_(opts.header) {
  auto in = std::make_unique<std::ifstream>(path);
  if (*in) {
    in_ = std::move(in);
  }  // else: the open failure surfaces as IOError on the first Next()
}

CsvChunkReader::~CsvChunkReader() = default;

Result<std::vector<uint8_t>> CsvChunkReader::Next() {
  if (in_ == nullptr) {
    done_ = true;
    return Status::IOError("cannot open '" + path_ + "'");
  }
  if (done_) return std::vector<uint8_t>();
  std::vector<uint8_t> out;
  out.reserve(chunk_tuples_ * schema_.tuple_size());
  const Status st = ParseRows(*in_, schema_, opts_, chunk_tuples_, &line_no_,
                              &prev_ts_, &skip_header_, &out);
  if (!st.ok()) {
    done_ = true;
    return st;
  }
  if (out.size() < chunk_tuples_ * schema_.tuple_size()) done_ = true;
  return out;
}

}  // namespace saber::io
