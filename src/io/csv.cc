#include "io/csv.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "relational/tuple_ref.h"
#include "runtime/strcat.h"

namespace saber::io {

namespace {

void FormatField(const Schema& s, const TupleRef& t, size_t f,
                 std::string* out) {
  char buf[64];
  switch (s.field(f).type) {
    case DataType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", t.GetInt32(f));
      break;
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(t.GetInt64(f)));
      break;
    case DataType::kFloat:
      std::snprintf(buf, sizeof(buf), "%.9g",
                    static_cast<double>(t.GetFloat(f)));
      break;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.17g", t.GetDouble(f));
      break;
  }
  out->append(buf);
}

Status ParseField(const Schema& s, size_t f, const std::string& cell,
                  size_t line, TupleWriter* w) {
  const char* b = cell.data();
  const char* e = b + cell.size();
  auto err = [&](const char* what) {
    return Status::InvalidArgument(StrCat("line ", line, ", field '",
                                          s.field(f).name, "': ", what, " ('",
                                          cell, "')"));
  };
  switch (s.field(f).type) {
    case DataType::kInt32: {
      int32_t v;
      auto [p, ec] = std::from_chars(b, e, v);
      if (ec != std::errc() || p != e) return err("bad int32");
      w->SetInt32(f, v);
      return Status::OK();
    }
    case DataType::kInt64: {
      int64_t v;
      auto [p, ec] = std::from_chars(b, e, v);
      if (ec != std::errc() || p != e) return err("bad int64");
      w->SetInt64(f, v);
      return Status::OK();
    }
    case DataType::kFloat:
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(b, &end);
      if (errno != 0 || end != e || cell.empty()) return err("bad number");
      if (s.field(f).type == DataType::kFloat) {
        w->SetFloat(f, static_cast<float>(v));
      } else {
        w->SetDouble(f, v);
      }
      return Status::OK();
    }
  }
  return err("unknown type");
}

/// Shared row-parsing core of FromCsv / CsvChunkReader: consumes lines from
/// `in` until `max_rows` tuples have been appended to `out` or the stream
/// ends. `line_no`, `prev_ts` and `skip_header` persist across calls so
/// chunked reads validate exactly like a one-shot parse (timestamp order is
/// enforced across chunk boundaries).
Status ParseRows(std::istream& in, const Schema& schema,
                 const CsvOptions& opts, size_t max_rows, size_t* line_no,
                 int64_t* prev_ts, bool* skip_header,
                 std::vector<uint8_t>* out) {
  const size_t tsz = schema.tuple_size();
  const size_t nf = schema.num_fields();
  std::string line;
  std::vector<std::string> cells;
  size_t rows = 0;
  while (rows < max_rows && std::getline(in, line)) {
    ++*line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (*skip_header) {
      *skip_header = false;
      continue;
    }
    if (line.empty()) continue;

    // Split on the delimiter (no quoting: stream schemas are numeric-only).
    cells.clear();
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == opts.delimiter) {
        cells.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
    if (cells.size() != nf) {
      return Status::InvalidArgument(StrCat("line ", *line_no, ": expected ",
                                            nf, " fields, got ",
                                            cells.size()));
    }
    const size_t off = out->size();
    out->resize(off + tsz, 0);
    TupleWriter w(out->data() + off, &schema);
    for (size_t f = 0; f < nf; ++f) {
      SABER_RETURN_NOT_OK(ParseField(schema, f, cells[f], *line_no, &w));
    }
    int64_t ts;
    std::memcpy(&ts, out->data() + off, sizeof(ts));
    if (ts < *prev_ts) {
      // `prev_ts` tracks the maximum timestamp seen. With no allowed
      // lateness that equals the previous row's timestamp, and the strict
      // invariant (and its exact message) is preserved.
      if (opts.allowed_lateness == 0) {
        return Status::InvalidArgument(
            StrCat("line ", *line_no, ": timestamps must be non-decreasing (",
                   ts, " after ", *prev_ts, ")"));
      }
      if (ts < *prev_ts - opts.allowed_lateness) {
        return Status::InvalidArgument(StrCat(
            "line ", *line_no, ": timestamp ", ts,
            " is below the lateness horizon (max seen ", *prev_ts,
            ", allowed lateness ", opts.allowed_lateness, ")"));
      }
    } else {
      *prev_ts = ts;
    }
    ++rows;
  }
  return Status::OK();
}

/// Stable-sorts serialized tuples by timestamp (rows sharing a timestamp
/// keep their order). Identity on already-sorted input.
void StableSortByTimestamp(std::vector<uint8_t>* data, size_t tuple_size) {
  const size_t n = data->size() / tuple_size;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  auto ts_at = [&](size_t i) {
    int64_t ts;
    std::memcpy(&ts, data->data() + i * tuple_size, sizeof(ts));
    return ts;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return ts_at(a) < ts_at(b); });
  std::vector<uint8_t> sorted;
  sorted.reserve(data->size());
  for (size_t i : order) {
    sorted.insert(sorted.end(),
                  data->begin() + static_cast<ptrdiff_t>(i * tuple_size),
                  data->begin() + static_cast<ptrdiff_t>((i + 1) * tuple_size));
  }
  *data = std::move(sorted);
}

}  // namespace

void AppendCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
               std::string* out, const CsvOptions& opts) {
  const size_t tsz = schema.tuple_size();
  for (size_t off = 0; off + tsz <= bytes; off += tsz) {
    TupleRef t(rows + off, &schema);
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      if (f > 0) out->push_back(opts.delimiter);
      FormatField(schema, t, f, out);
    }
    out->push_back('\n');
  }
}

std::string ToCsv(const Schema& schema, const uint8_t* rows, size_t bytes,
                  const CsvOptions& opts) {
  std::string out;
  if (opts.header) {
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      if (f > 0) out.push_back(opts.delimiter);
      out.append(schema.field(f).name);
    }
    out.push_back('\n');
  }
  AppendCsv(schema, rows, bytes, &out, opts);
  return out;
}

Result<std::vector<uint8_t>> FromCsv(const Schema& schema,
                                     const std::string& text,
                                     const CsvOptions& opts) {
  std::vector<uint8_t> out;
  std::istringstream in(text);
  size_t line_no = 0;
  int64_t prev_ts = INT64_MIN;
  bool skip_header = opts.header;
  SABER_RETURN_NOT_OK(ParseRows(in, schema, opts,
                                std::numeric_limits<size_t>::max(), &line_no,
                                &prev_ts, &skip_header, &out));
  if (opts.allowed_lateness > 0) {
    StableSortByTimestamp(&out, schema.tuple_size());
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const Schema& schema,
                    const uint8_t* rows, size_t bytes,
                    const CsvOptions& opts) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open '" + path + "' for writing");
  f << ToCsv(schema, rows, bytes, opts);
  f.close();
  if (!f) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadCsvFile(const std::string& path,
                                         const Schema& schema,
                                         const CsvOptions& opts) {
  CsvChunkReader reader(path, schema, opts);
  std::vector<uint8_t> out;
  while (!reader.done()) {
    Result<std::vector<uint8_t>> chunk = reader.Next();
    if (!chunk.ok()) return chunk.status();
    const std::vector<uint8_t>& c = chunk.value();
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

CsvChunkReader::CsvChunkReader(const std::string& path, Schema schema,
                               CsvOptions opts, size_t chunk_tuples)
    : schema_(std::move(schema)),
      opts_(opts),
      chunk_tuples_(std::max<size_t>(1, chunk_tuples)),
      path_(path),
      prev_ts_(INT64_MIN),
      skip_header_(opts.header) {
  auto in = std::make_unique<std::ifstream>(path);
  if (*in) {
    in_ = std::move(in);
  }  // else: the open failure surfaces as IOError on the first Next()
}

CsvChunkReader::~CsvChunkReader() = default;

Result<std::vector<uint8_t>> CsvChunkReader::Next() {
  if (in_ == nullptr) {
    done_ = true;
    return Status::IOError("cannot open '" + path_ + "'");
  }
  if (done_) return std::vector<uint8_t>();
  const size_t tsz = schema_.tuple_size();
  std::vector<uint8_t> out;
  out.reserve(chunk_tuples_ * tsz);
  const Status st = ParseRows(*in_, schema_, opts_, chunk_tuples_, &line_no_,
                              &prev_ts_, &skip_header_, &out);
  if (!st.ok()) {
    done_ = true;
    return st;
  }
  const bool exhausted = out.size() < chunk_tuples_ * tsz;
  if (exhausted) done_ = true;
  if (opts_.allowed_lateness == 0) return out;

  // Reorder path: move the parsed rows into the cross-chunk buffer, then
  // release everything at or below the horizon (max seen - lateness; the
  // whole buffer once the file is exhausted) in stable (ts, arrival) order.
  // Thresholds only grow and accepted rows are never below the current
  // horizon, so the concatenation of all chunks equals one stable sort of
  // the full file.
  for (size_t off = 0; off < out.size(); off += tsz) {
    int64_t ts;
    std::memcpy(&ts, out.data() + off, sizeof(ts));
    pending_.push_back(PendingRow{
        ts, pending_seq_++,
        std::vector<uint8_t>(out.begin() + static_cast<ptrdiff_t>(off),
                             out.begin() + static_cast<ptrdiff_t>(off + tsz))});
  }
  // prev_ts_ starts at INT64_MIN (no row yet): clamp the subtraction so the
  // horizon stays at INT64_MIN instead of wrapping.
  const int64_t floor = std::numeric_limits<int64_t>::min();
  const int64_t horizon =
      exhausted ? std::numeric_limits<int64_t>::max()
                : (prev_ts_ < floor + opts_.allowed_lateness
                       ? floor
                       : prev_ts_ - opts_.allowed_lateness);
  std::vector<PendingRow> release;
  std::vector<PendingRow> keep;
  for (auto& p : pending_) {
    (p.ts <= horizon ? release : keep).push_back(std::move(p));
  }
  pending_ = std::move(keep);
  std::sort(release.begin(), release.end(),
            [](const PendingRow& a, const PendingRow& b) {
              return a.ts != b.ts ? a.ts < b.ts : a.seq < b.seq;
            });
  std::vector<uint8_t> sorted;
  sorted.reserve(release.size() * tsz);
  for (const auto& p : release) {
    sorted.insert(sorted.end(), p.bytes.begin(), p.bytes.end());
  }
  return sorted;
}

}  // namespace saber::io
