#include "net/client.h"

#include <algorithm>
#include <cstring>

#include "runtime/strcat.h"

namespace saber::net {

namespace {

/// Awaits one frame and maps kError payloads back into their Status.
Result<FrameHeader> RecvOrError(int fd, std::vector<uint8_t>* payload) {
  auto h = RecvFrame(fd, kMaxFramePayload, payload);
  if (!h.ok()) return h.status();
  if (h.value().type == FrameType::kError) {
    return DecodeError(payload->data(), payload->size());
  }
  return h;
}

Status ExpectFrame(int fd, FrameType want, std::vector<uint8_t>* payload) {
  auto h = RecvOrError(fd, payload);
  if (!h.ok()) return h.status();
  if (h.value().type != want) {
    return Status::Internal(StrCat("expected ", FrameTypeName(want), ", got ",
                                   FrameTypeName(h.value().type)));
  }
  return Status::OK();
}

}  // namespace

Result<ControlClient> ControlClient::Connect(const std::string& host,
                                             int port) {
  auto sock = Dial(host, port);
  if (!sock.ok()) return sock.status();
  ControlClient c;
  c.sock_ = std::move(sock).value();
  (void)SetNoDelay(c.sock_.fd());
  WireWriter w;
  w.U32(kProtocolVersion);
  SABER_RETURN_NOT_OK(SendFrame(c.sock_.fd(), FrameType::kHelloControl,
                                w.buf().data(), w.buf().size()));
  std::vector<uint8_t> payload;
  SABER_RETURN_NOT_OK(ExpectFrame(c.sock_.fd(), FrameType::kHelloOk, &payload));
  return c;
}

Result<QueryInfo> ControlClient::Submit(const std::string& sql) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  SABER_RETURN_NOT_OK(
      SendFrame(sock_.fd(), FrameType::kSubmit, sql.data(), sql.size()));
  std::vector<uint8_t> payload;
  SABER_RETURN_NOT_OK(
      ExpectFrame(sock_.fd(), FrameType::kQueryInfo, &payload));
  return DecodeQueryInfo(payload.data(), payload.size());
}

Status ControlClient::SimpleCommand(FrameType type, uint32_t query_id) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  WireWriter w;
  w.U32(query_id);
  SABER_RETURN_NOT_OK(
      SendFrame(sock_.fd(), type, w.buf().data(), w.buf().size()));
  std::vector<uint8_t> payload;
  return ExpectFrame(sock_.fd(), FrameType::kOk, &payload);
}

Status ControlClient::Remove(uint32_t query_id) {
  // A subscribed connection receives its own kSubscribeEnd (and possibly
  // final result batches) before the kOk; skip past them.
  if (!sock_.valid()) return Status::Unavailable("not connected");
  WireWriter w;
  w.U32(query_id);
  SABER_RETURN_NOT_OK(SendFrame(sock_.fd(), FrameType::kRemove, w.buf().data(),
                                w.buf().size()));
  std::vector<uint8_t> payload;
  for (;;) {
    auto h = RecvOrError(sock_.fd(), &payload);
    if (!h.ok()) return h.status();
    if (h.value().type == FrameType::kOk) return Status::OK();
    if (h.value().type == FrameType::kResultBatch ||
        h.value().type == FrameType::kSubscribeEnd) {
      continue;
    }
    return Status::Internal(StrCat("expected kOk, got ",
                                   FrameTypeName(h.value().type)));
  }
}

Status ControlClient::Drain(uint32_t query_id) {
  return SimpleCommand(FrameType::kDrain, query_id);
}

Status ControlClient::Subscribe(uint32_t query_id) {
  return SimpleCommand(FrameType::kSubscribe, query_id);
}

Result<bool> ControlClient::NextBatch(std::vector<uint8_t>* batch) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  auto h = RecvOrError(sock_.fd(), batch);
  if (!h.ok()) return h.status();
  if (h.value().type == FrameType::kSubscribeEnd) {
    batch->clear();
    return false;
  }
  if (h.value().type != FrameType::kResultBatch) {
    return Status::Internal(StrCat("expected kResultBatch, got ",
                                   FrameTypeName(h.value().type)));
  }
  return true;
}

Result<ProducerClient> ProducerClient::Connect(const std::string& host,
                                               int port, DataHello hello) {
  if (hello.tuple_size == 0) {
    return Status::InvalidArgument("hello.tuple_size must be set");
  }
  auto sock = Dial(host, port);
  if (!sock.ok()) return sock.status();
  ProducerClient p;
  p.sock_ = std::move(sock).value();
  p.tuple_size_ = hello.tuple_size;
  // Largest whole-tuple payload within the frame bound.
  p.max_chunk_ = kMaxFramePayload / hello.tuple_size * hello.tuple_size;
  hello.version = kProtocolVersion;
  const std::vector<uint8_t> payload = EncodeDataHello(hello);
  SABER_RETURN_NOT_OK(SendFrame(p.sock_.fd(), FrameType::kHelloData,
                                payload.data(), payload.size()));
  std::vector<uint8_t> reply;
  SABER_RETURN_NOT_OK(ExpectFrame(p.sock_.fd(), FrameType::kHelloOk, &reply));
  return p;
}

Status ProducerClient::Send(const void* tuples, size_t bytes) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  if (bytes % tuple_size_ != 0) {
    return Status::InvalidArgument(
        StrCat("Send of ", bytes, " bytes is not a multiple of the ",
               tuple_size_, "-byte tuple size"));
  }
  const uint8_t* p = static_cast<const uint8_t*>(tuples);
  for (size_t off = 0; off < bytes; off += max_chunk_) {
    const size_t n = std::min<size_t>(max_chunk_, bytes - off);
    SABER_RETURN_NOT_OK(SendFrame(sock_.fd(), FrameType::kTuples, p + off, n));
  }
  return Status::OK();
}

Status ProducerClient::End() {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  SABER_RETURN_NOT_OK(SendFrame(sock_.fd(), FrameType::kDataEnd, nullptr, 0));
  std::vector<uint8_t> payload;
  const Status s = ExpectFrame(sock_.fd(), FrameType::kDataEndOk, &payload);
  sock_.Close();
  return s;
}

Status ProducerClient::LastServerError() {
  if (!sock_.valid()) return Status::Internal("not connected");
  (void)SetRecvTimeout(sock_.fd(), 100);
  std::vector<uint8_t> payload;
  auto h = RecvFrame(sock_.fd(), kMaxFramePayload, &payload);
  if (!h.ok()) {
    return Status::Internal(
        StrCat("no server error available: ", h.status().message()));
  }
  if (h.value().type != FrameType::kError) {
    return Status::Internal(StrCat("expected kError, got ",
                                   FrameTypeName(h.value().type)));
  }
  return DecodeError(payload.data(), payload.size());
}

}  // namespace saber::net
