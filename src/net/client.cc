#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "runtime/strcat.h"

namespace saber::net {

namespace {

/// Awaits one frame and maps kError payloads back into their Status.
Result<FrameHeader> RecvOrError(int fd, std::vector<uint8_t>* payload) {
  auto h = RecvFrame(fd, kMaxFramePayload, payload);
  if (!h.ok()) return h.status();
  if (h.value().type == FrameType::kError) {
    return DecodeError(payload->data(), payload->size());
  }
  return h;
}

Status ExpectFrame(int fd, FrameType want, std::vector<uint8_t>* payload) {
  auto h = RecvOrError(fd, payload);
  if (!h.ok()) return h.status();
  if (h.value().type != want) {
    return Status::Internal(StrCat("expected ", FrameTypeName(want), ", got ",
                                   FrameTypeName(h.value().type)));
  }
  return Status::OK();
}

}  // namespace

Result<ControlClient> ControlClient::Connect(const std::string& host, int port,
                                             int connect_timeout_ms,
                                             int connect_attempts) {
  Result<Socket> sock = Status::Unavailable("no connect attempt made");
  int backoff_ms = 50;
  for (int attempt = 0; attempt < std::max(1, connect_attempts); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 2'000);
    }
    sock = Dial(host, port, connect_timeout_ms);
    if (sock.ok()) break;
  }
  if (!sock.ok()) return sock.status();
  ControlClient c;
  c.sock_ = std::move(sock).value();
  (void)SetNoDelay(c.sock_.fd());
  WireWriter w;
  w.U32(kProtocolVersion);
  SABER_RETURN_NOT_OK(SendFrame(c.sock_.fd(), FrameType::kHelloControl,
                                w.buf().data(), w.buf().size()));
  std::vector<uint8_t> payload;
  SABER_RETURN_NOT_OK(ExpectFrame(c.sock_.fd(), FrameType::kHelloOk, &payload));
  return c;
}

Result<QueryInfo> ControlClient::Submit(const std::string& sql) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  SABER_RETURN_NOT_OK(
      SendFrame(sock_.fd(), FrameType::kSubmit, sql.data(), sql.size()));
  std::vector<uint8_t> payload;
  SABER_RETURN_NOT_OK(
      ExpectFrame(sock_.fd(), FrameType::kQueryInfo, &payload));
  return DecodeQueryInfo(payload.data(), payload.size());
}

Status ControlClient::SimpleCommand(FrameType type, uint32_t query_id) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  WireWriter w;
  w.U32(query_id);
  SABER_RETURN_NOT_OK(
      SendFrame(sock_.fd(), type, w.buf().data(), w.buf().size()));
  std::vector<uint8_t> payload;
  return ExpectFrame(sock_.fd(), FrameType::kOk, &payload);
}

Status ControlClient::Remove(uint32_t query_id) {
  // A subscribed connection receives its own kSubscribeEnd (and possibly
  // final result batches) before the kOk; skip past them.
  if (!sock_.valid()) return Status::Unavailable("not connected");
  WireWriter w;
  w.U32(query_id);
  SABER_RETURN_NOT_OK(SendFrame(sock_.fd(), FrameType::kRemove, w.buf().data(),
                                w.buf().size()));
  std::vector<uint8_t> payload;
  for (;;) {
    auto h = RecvOrError(sock_.fd(), &payload);
    if (!h.ok()) return h.status();
    if (h.value().type == FrameType::kOk) return Status::OK();
    if (h.value().type == FrameType::kResultBatch ||
        h.value().type == FrameType::kSubscribeEnd) {
      continue;
    }
    return Status::Internal(StrCat("expected kOk, got ",
                                   FrameTypeName(h.value().type)));
  }
}

Status ControlClient::Drain(uint32_t query_id) {
  return SimpleCommand(FrameType::kDrain, query_id);
}

Status ControlClient::Subscribe(uint32_t query_id) {
  return SimpleCommand(FrameType::kSubscribe, query_id);
}

Result<bool> ControlClient::NextBatch(std::vector<uint8_t>* batch) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  auto h = RecvOrError(sock_.fd(), batch);
  if (!h.ok()) return h.status();
  if (h.value().type == FrameType::kSubscribeEnd) {
    batch->clear();
    return false;
  }
  if (h.value().type != FrameType::kResultBatch) {
    return Status::Internal(StrCat("expected kResultBatch, got ",
                                   FrameTypeName(h.value().type)));
  }
  return true;
}

Result<ProducerClient> ProducerClient::Connect(const std::string& host,
                                               int port, DataHello hello,
                                               ReconnectPolicy policy) {
  if (hello.tuple_size == 0) {
    return Status::InvalidArgument("hello.tuple_size must be set");
  }
  auto sock = Dial(host, port, policy.connect_timeout_ms);
  if (!sock.ok()) return sock.status();
  ProducerClient p;
  p.sock_ = std::move(sock).value();
  p.tuple_size_ = hello.tuple_size;
  // Largest whole-tuple payload within the frame bound.
  p.max_chunk_ = kMaxFramePayload / hello.tuple_size * hello.tuple_size;
  hello.version = kProtocolVersion;
  p.host_ = host;
  p.port_ = port;
  p.policy_ = policy;
  const std::vector<uint8_t> payload = EncodeDataHello(hello);
  SABER_RETURN_NOT_OK(SendFrame(p.sock_.fd(), FrameType::kHelloData,
                                payload.data(), payload.size()));
  std::vector<uint8_t> reply;
  SABER_RETURN_NOT_OK(ExpectFrame(p.sock_.fd(), FrameType::kHelloOk, &reply));
  // Data-plane kHelloOk: {u32 version, u64 token, i64 acked}. A version-1
  // server that predates resume sends the bare version; the token then
  // stays 0 and reconnection is effectively off.
  WireReader r(reply.data(), reply.size());
  uint32_t version = 0;
  (void)r.ReadU32(&version);
  if (r.remaining() >= 16) {
    (void)r.ReadU64(&p.resume_token_);
    int64_t acked = 0;
    (void)r.ReadI64(&acked);
  }
  p.hello_ = hello;
  return p;
}

void ProducerClient::RecordSent(const uint8_t* p, size_t n) {
  if (policy_.max_attempts > 0 && policy_.replay_buffer_bytes > 0) {
    replay_.insert(replay_.end(), p, p + n);
    if (replay_.size() > policy_.replay_buffer_bytes) {
      replay_.erase(replay_.begin(),
                    replay_.begin() +
                        static_cast<ptrdiff_t>(replay_.size() -
                                               policy_.replay_buffer_bytes));
    }
  }
  sent_bytes_ += static_cast<int64_t>(n);
}

Status ProducerClient::Reconnect(Status cause) {
  if (policy_.max_attempts <= 0 || resume_token_ == 0) return cause;
  Status last = std::move(cause);
  int backoff_ms = policy_.initial_backoff_ms;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    sock_.Close();
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, policy_.max_backoff_ms);
    auto dial = Dial(host_, port_, policy_.connect_timeout_ms);
    if (!dial.ok()) {
      last = dial.status();
      continue;
    }
    Socket s = std::move(dial).value();
    DataHello hello = hello_;
    hello.resume_token = resume_token_;
    const std::vector<uint8_t> payload = EncodeDataHello(hello);
    if (Status ss = SendFrame(s.fd(), FrameType::kHelloData, payload.data(),
                              payload.size());
        !ss.ok()) {
      last = std::move(ss);
      continue;
    }
    std::vector<uint8_t> reply;
    auto h = RecvFrame(s.fd(), kMaxFramePayload, &reply);
    if (!h.ok()) {
      last = h.status();
      continue;
    }
    if (h.value().type == FrameType::kError) {
      Status err = DecodeError(reply.data(), reply.size());
      // "Already bound" during a resume is the previous epoch's reader
      // still draining: the client can observe the severed connection
      // before the server's reader thread parks the shard. Back off and
      // retry; every other rejection (grace expired, stale token, shard
      // finished) is terminal — the same token cannot succeed later.
      if (err.code() == StatusCode::kAlreadyExists) {
        last = std::move(err);
        continue;
      }
      return err;
    }
    if (h.value().type != FrameType::kHelloOk) {
      last = Status::Internal(StrCat("expected kHelloOk, got ",
                                     FrameTypeName(h.value().type)));
      continue;
    }
    WireReader r(reply.data(), reply.size());
    uint32_t version = 0;
    uint64_t token = 0;
    int64_t acked = 0;
    if (!r.ReadU32(&version) || !r.ReadU64(&token) || !r.ReadI64(&acked)) {
      return Status::Internal("resume kHelloOk without token/acked payload");
    }
    const int64_t base = sent_bytes_ - static_cast<int64_t>(replay_.size());
    if (acked < base) {
      return Status::ResourceExhausted(
          StrCat("cannot resume: server acked ", acked,
                 " bytes but the replay buffer starts at ", base,
                 " (grow ReconnectPolicy::replay_buffer_bytes)"));
    }
    if (acked > sent_bytes_) {
      return Status::Internal(StrCat("server acked ", acked,
                                     " bytes of a ", sent_bytes_,
                                     "-byte stream"));
    }
    // Replay the unacked tail, chunked like Send.
    const uint8_t* tail = replay_.data() + (acked - base);
    const size_t tail_bytes = static_cast<size_t>(sent_bytes_ - acked);
    bool replay_ok = true;
    for (size_t off = 0; off < tail_bytes; off += max_chunk_) {
      const size_t n = std::min<size_t>(max_chunk_, tail_bytes - off);
      if (Status ss = SendFrame(s.fd(), FrameType::kTuples, tail + off, n);
          !ss.ok()) {
        last = std::move(ss);
        replay_ok = false;
        break;
      }
    }
    if (!replay_ok) continue;  // connection died again mid-replay
    sock_ = std::move(s);
    resume_token_ = token;
    ++reconnects_;
    return Status::OK();
  }
  return last;
}

Status ProducerClient::Send(const void* tuples, size_t bytes) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  if (bytes % tuple_size_ != 0) {
    return Status::InvalidArgument(
        StrCat("Send of ", bytes, " bytes is not a multiple of the ",
               tuple_size_, "-byte tuple size"));
  }
  const uint8_t* p = static_cast<const uint8_t*>(tuples);
  for (size_t off = 0; off < bytes; off += max_chunk_) {
    const size_t n = std::min<size_t>(max_chunk_, bytes - off);
    // Recorded before the write: a chunk that dies on the wire is already
    // in the replay ring, so the resume resends it from the acked boundary.
    RecordSent(p + off, n);
    Status s = SendFrame(sock_.fd(), FrameType::kTuples, p + off, n);
    if (!s.ok()) {
      SABER_RETURN_NOT_OK(Reconnect(std::move(s)));
    }
  }
  return Status::OK();
}

Status ProducerClient::End() {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  std::vector<uint8_t> payload;
  Status s = SendFrame(sock_.fd(), FrameType::kDataEnd, nullptr, 0);
  if (s.ok()) s = ExpectFrame(sock_.fd(), FrameType::kDataEndOk, &payload);
  // The connection may have been severed before the server ever read the
  // kDataEnd — on a loopback-fast path the client learns of a mid-stream
  // drop only here (the kernel keeps accepting writes after the peer's
  // shutdown). Resume and retry: the replay re-delivers anything the
  // server never acked, then the kDataEnd goes out again. Bounded by the
  // policy's attempts, since under a sustained drop storm the replayed
  // tail itself can be severed. A server that already processed the
  // kDataEnd has closed the shard; its rejection of the resume is
  // terminal and comes back as the error.
  for (int round = 0; !s.ok() && round < policy_.max_attempts; ++round) {
    Status r = Reconnect(std::move(s));
    if (!r.ok()) {
      sock_.Close();
      return r;
    }
    s = SendFrame(sock_.fd(), FrameType::kDataEnd, nullptr, 0);
    if (s.ok()) s = ExpectFrame(sock_.fd(), FrameType::kDataEndOk, &payload);
  }
  sock_.Close();
  return s;
}

Status ProducerClient::LastServerError() {
  if (!sock_.valid()) return Status::Internal("not connected");
  (void)SetRecvTimeout(sock_.fd(), 100);
  std::vector<uint8_t> payload;
  auto h = RecvFrame(sock_.fd(), kMaxFramePayload, &payload);
  if (!h.ok()) {
    return Status::Internal(
        StrCat("no server error available: ", h.status().message()));
  }
  if (h.value().type != FrameType::kError) {
    return Status::Internal(StrCat("expected kError, got ",
                                   FrameTypeName(h.value().type)));
  }
  return DecodeError(payload.data(), payload.size());
}

}  // namespace saber::net
