#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ingest/ingress_options.h"
#include "runtime/status.h"

/// \file protocol.h
/// Wire protocol of the SABER network front end (src/net/). Both planes —
/// the SQL control plane and the binary tuple data plane — speak
/// length-prefixed frames over TCP:
///
///   ┌────────────────────┬──────────────┬───────────────────────┐
///   │ u32 payload length │ u8 frame type│ payload bytes ...     │
///   └────────────────────┴──────────────┴───────────────────────┘
///
/// All integers are little-endian (the engine's native tuple byte order —
/// tuple payloads are the engine's serialized rows verbatim, so the data
/// plane is zero-transcode). The payload length counts payload bytes only,
/// not the 5-byte header, and is bounded by `kMaxFramePayload` (a server may
/// configure a smaller bound); an oversized length is a protocol violation
/// and tears the connection down before any allocation of that size.
///
/// A connection chooses its plane with its first frame:
///  - kHelloControl → SQL control session (Submit/Remove/Drain/Subscribe);
///  - kHelloData    → tuple producer session bound 1:1 to one
///    `ingest::ProducerHandle` shard of one query input (see server.h for
///    the connection ↔ producer lifecycle).
/// Anything else as a first frame is answered with kError and a close.
///
/// See docs/architecture.md §13 ("Network front end") for the full frame
/// table and the control-plane state machine.

namespace saber::net {

/// Protocol version spoken by this tree. Hellos carry the client's version;
/// the server rejects mismatches with kError/InvalidArgument.
inline constexpr uint32_t kProtocolVersion = 1;

/// Frame header size on the wire: u32 length + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Hard upper bound for a frame payload. Chosen to comfortably hold one
/// merge-batch of tuples while keeping a hostile `length = 0xffffffff`
/// header from provoking a giant allocation.
inline constexpr uint32_t kMaxFramePayload = 4u << 20;

enum class FrameType : uint8_t {
  kHelloControl = 1,  ///< c→s: open a control session  {u32 version}
  kHelloData = 2,     ///< c→s: open a data session     {DataHello}
  kHelloOk = 3,       ///< s→c: hello accepted          {u32 version} —
                      ///< data plane appends {u64 token, i64 acked_bytes}
  kSubmit = 4,        ///< c→s: SQL statement           {bytes sql}
  kQueryInfo = 5,     ///< s→c: submit result           {QueryInfo}
  kRemove = 6,        ///< c→s: remove query            {u32 query_id}
  kDrain = 7,         ///< c→s: drain query's ingress   {u32 query_id}
  kOk = 8,            ///< s→c: command succeeded       {}
  kSubscribe = 9,     ///< c→s: stream results          {u32 query_id}
  kResultBatch = 10,  ///< s→c: output rows             {bytes rows}
  kSubscribeEnd = 11, ///< s→c: subscription over       {}
  kTuples = 12,       ///< c→s: serialized input tuples {bytes tuples}
  kDataEnd = 13,      ///< c→s: shard complete          {}
  kDataEndOk = 14,    ///< s→c: shard closed            {}
  kError = 15,        ///< s→c: failure                 {u8 code, str msg}
};

/// Human-readable frame-type name ("kTuples"-style, for logs and errors).
const char* FrameTypeName(FrameType t);

/// True for the type values a well-formed peer may put on the wire.
bool IsKnownFrameType(uint8_t t);

struct FrameHeader {
  uint32_t payload_len = 0;
  FrameType type = FrameType::kError;
};

/// Serializes `h` into `out[0..kFrameHeaderBytes)`.
void EncodeFrameHeader(const FrameHeader& h, uint8_t* out);

/// Parses a header from `in[0..kFrameHeaderBytes)`. Rejects unknown types
/// and payloads beyond `max_payload` (protocol violation — the caller must
/// tear the connection down, it cannot resynchronize a framing stream).
Result<FrameHeader> DecodeFrameHeader(const uint8_t* in, uint32_t max_payload);

/// Data-plane handshake payload: binds this connection to producer shard
/// `producer` of input `input` of query `query_id`.
struct DataHello {
  uint32_t version = kProtocolVersion;
  uint32_t query_id = 0;
  uint16_t input = 0;
  uint16_t producer = 0;
  /// Producers the ingress is sharded over. Every hello for the same
  /// (query, input) must agree — the first one creates the ingress.
  uint16_t num_producers = 1;
  /// Client's idea of the serialized tuple size; must equal the input
  /// schema's tuple_size() (cheap schema-drift detection).
  uint32_t tuple_size = 0;
  /// Bounded-disorder contract for this ingress; −1 inherits the lateness
  /// the query's SQL statement declared (`with lateness N`).
  int64_t allowed_lateness = -1;
  /// ingest::LatePolicy for late tuples. kAbort keeps abort *semantics*
  /// (the server answers kError and drops the connection — it never brings
  /// the process down for a remote peer's data).
  uint8_t late_policy = 0;
  /// Token-bucket rate for this producer (bytes/s; <= 0 unmetered).
  double rate_bytes_per_sec = 0.0;
  /// Reconnect/resume token. 0 on a fresh bind; the server issues a token in
  /// the data-plane kHelloOk ({u32 version, u64 token, i64 acked_bytes}) and
  /// a client that lost its connection presents it to reclaim a *parked*
  /// shard (see ServerOptions::reconnect_grace_ms). A stale or unknown token
  /// is rejected with kError. Encoded last so version-1 peers that omit it
  /// stay wire-compatible (the decoder treats a hello without the trailing
  /// 8 bytes as token 0).
  uint64_t resume_token = 0;
};

std::vector<uint8_t> EncodeDataHello(const DataHello& h);
Result<DataHello> DecodeDataHello(const uint8_t* payload, size_t len);

/// Control-plane answer to kSubmit: everything a client needs to feed and
/// read the admitted query.
struct QueryInfo {
  uint32_t query_id = 0;
  uint16_t num_inputs = 1;
  uint32_t input_tuple_size[2] = {0, 0};
  uint32_t output_tuple_size = 0;
  std::string name;
  std::string output_schema;  ///< Schema::ToString of the output rows
};

std::vector<uint8_t> EncodeQueryInfo(const QueryInfo& info);
Result<QueryInfo> DecodeQueryInfo(const uint8_t* payload, size_t len);

/// kError payload: the Status that failed the command.
std::vector<uint8_t> EncodeError(const Status& status);
Status DecodeError(const uint8_t* payload, size_t len);

/// Bounds-checked little-endian payload reader. Every accessor returns
/// false once the payload is exhausted; decoders turn that into
/// InvalidArgument instead of reading past the frame.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadU16(uint16_t* v) { return ReadRaw(v, 2); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, 8); }
  bool ReadI64(int64_t* v) { return ReadRaw(v, 8); }
  bool ReadF64(double* v) { return ReadRaw(v, 8); }
  /// u32 length + bytes.
  bool ReadString(std::string* v);

  size_t remaining() const { return len_ - pos_; }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (len_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Little-endian payload writer (appends to a byte vector).
class WireWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  std::vector<uint8_t> Take() { return std::move(buf_); }
  const std::vector<uint8_t>& buf() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

}  // namespace saber::net
