#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "runtime/status.h"

/// \file socket.h
/// Thin RAII + Status wrappers over POSIX TCP sockets, shared by the server
/// (src/net/server.cc), the client library (src/net/client.cc) and the
/// protocol test battery. Nothing here knows about frames beyond
/// SendFrame/RecvFrame, which layer the 5-byte header of protocol.h over
/// ReadFull/WriteFull.

namespace saber::net {

/// Owning file-descriptor wrapper. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership (caller closes).
  int Release();
  void Close();
  /// shutdown(SHUT_RDWR): wakes a thread blocked in recv on this socket
  /// without racing the fd close (the blocked reader owns the close).
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Connects to host:port (numeric IPv4 or a resolvable name).
/// `connect_timeout_ms > 0` bounds the TCP connect itself (non-blocking
/// connect + poll): a peer that is unreachable or not accepting fails with
/// Unavailable after the timeout instead of hanging for the OS default
/// (minutes). 0 keeps the historical blocking connect.
Result<Socket> Dial(const std::string& host, int port,
                    int connect_timeout_ms = 0);

/// Binds + listens on `bind_addr:port` (port 0 picks an ephemeral port;
/// read it back with LocalPort). SO_REUSEADDR is set.
Result<Socket> ListenOn(const std::string& bind_addr, int port, int backlog);

/// The locally bound port of a listening or connected socket.
Result<int> LocalPort(int fd);

/// Sets SO_RCVTIMEO. A blocked ReadFull then fails with Unavailable instead
/// of hanging forever — the slow-loris guard of the data plane.
Status SetRecvTimeout(int fd, int millis);

/// Disables Nagle (small control frames should not wait for ACKs).
Status SetNoDelay(int fd);

/// Reads exactly `len` bytes. Distinguishes the clean close (EOF before the
/// first byte → NotFound "connection closed") from a mid-message close
/// (IOError) and a receive timeout (Unavailable), so callers can tell an
/// orderly disconnect from a protocol violation.
Status ReadFull(int fd, void* buf, size_t len);

/// Writes exactly `len` bytes (MSG_NOSIGNAL — a dead peer surfaces as
/// IOError, never SIGPIPE).
Status WriteFull(int fd, const void* buf, size_t len);

/// One frame: header + payload in a single buffered write.
Status SendFrame(int fd, FrameType type, const void* payload, size_t len);
inline Status SendFrame(int fd, FrameType type,
                        const std::vector<uint8_t>& payload) {
  return SendFrame(fd, type, payload.data(), payload.size());
}

/// Reads one frame (header, validation against `max_payload`, payload).
/// On a framing violation the stream cannot be resynchronized; the caller
/// must close the connection.
Result<FrameHeader> RecvFrame(int fd, uint32_t max_payload,
                              std::vector<uint8_t>* payload);

}  // namespace saber::net
