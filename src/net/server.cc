#include "net/server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "fault/fault_registry.h"
#include "obs/metrics.h"
#include "runtime/clock.h"
#include "runtime/strcat.h"

namespace saber::net {

namespace {

/// Read-side scratch granularity for control connections.
constexpr size_t kReadChunk = 64 << 10;

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::IOError("fcntl(F_GETFL) failed");
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) {
    return Status::IOError("fcntl(F_SETFL) failed");
  }
  return Status::OK();
}

/// Index of the first tuple whose timestamp falls below the shard's
/// disorder horizon `max_seen − lateness`, or −1. Advances *max_seen.
/// This is the server-side stand-in for the ingress's kAbort policy: same
/// contract, but the verdict is a kError frame + connection teardown
/// instead of a process abort a remote peer could trigger at will.
int64_t FirstLateViolation(const uint8_t* tuples, size_t bytes, size_t tsz,
                           int64_t lateness, int64_t* max_seen) {
  const size_t n = bytes / tsz;
  for (size_t i = 0; i < n; ++i) {
    int64_t ts;
    std::memcpy(&ts, tuples + i * tsz, sizeof(ts));
    if (*max_seen != INT64_MIN && ts < *max_seen - lateness) {
      return static_cast<int64_t>(i);
    }
    if (ts > *max_seen || *max_seen == INT64_MIN) *max_seen = ts;
  }
  return -1;
}

/// SplitMix64 finalizer over the token counter: resume tokens are
/// distinctive in logs and across server restarts within a test, without a
/// dependency on a randomness source. Never returns 0 (0 marks a fresh
/// hello on the wire).
uint64_t MixToken(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x != 0 ? x : 1;
}

}  // namespace

/// Monotone server counters. Registered as saber_net_* on the engine's
/// metrics registry by the constructor (stats() and a /metrics scrape read
/// the same storage); the destructor unregisters before this struct dies.
struct SaberServer::Counters {
  obs::Counter connections_accepted;
  obs::Counter control_connections;
  obs::Counter data_connections;
  obs::Counter protocol_errors;
  obs::Counter queries_submitted;
  obs::Counter queries_removed;
  obs::Counter tuple_frames;
  obs::Counter tuple_bytes;
  obs::Counter result_batches;
  obs::Counter subscriber_overflows;
  obs::Counter timeouts;
  obs::Counter shards_parked;
  obs::Counter producer_reconnects;
  obs::Counter grace_expiries;
  /// Watchdog trips of ingresses already torn down (live ones are summed
  /// from their ShardedIngress at stats() time; on the /metrics side each
  /// live ingress exposes its own saber_watchdog_trips_total series).
  obs::Counter watchdog_trips_retired;
};

/// One control-plane (or not-yet-classified) connection. The epoll thread
/// owns everything except the write side (wmu/outbox/outbox_bytes/dead),
/// which engine workers reach through the result-stage fan-out.
struct SaberServer::Conn {
  Socket sock;
  std::vector<uint8_t> rbuf;
  bool hello_done = false;
  int64_t last_activity_nanos = 0;
  uint32_t subscribed_query = 0;  ///< 0 = not subscribed
  bool epollout_armed = false;

  std::mutex wmu;
  std::deque<std::vector<uint8_t>> outbox;  ///< encoded frames
  size_t outbox_bytes = 0;
  size_t front_off = 0;  ///< bytes of outbox.front() already written
  std::atomic<bool> dead{false};
};

/// The sharded ingress in front of one input of one query. Created by the
/// first data hello for that input; later hellos must match its shape.
struct SaberServer::InputFront {
  std::unique_ptr<ingest::ShardedIngress> ingress;
  uint16_t num_producers = 0;
  int64_t allowed_lateness = 0;
  uint8_t wire_policy = 0;  ///< LatePolicy as negotiated on the wire

  /// Bind/park/resume state of one producer shard. Guarded by `mu` except
  /// acked_bytes, which the reader thread bumps once per appended frame and
  /// the handshake reads to tell a resuming client where to replay from.
  struct ShardSlot {
    uint64_t token = 0;        ///< resume token, issued at the first bind
    bool bound = false;        ///< a live DataConn owns the shard
    bool parked = false;       ///< disconnected; awaiting a resume
    bool closed = false;       ///< terminal (kDataEnd, violation, expiry)
    int64_t park_deadline_nanos = 0;
    /// Strict-policy (kAbort semantics) lateness horizon; persisted across
    /// parks so a resumed stream is validated as one contiguous stream.
    int64_t max_seen = INT64_MIN;
    std::atomic<int64_t> acked_bytes{0};
  };
  std::mutex mu;
  std::vector<std::unique_ptr<ShardSlot>> slots;
};

/// One data-plane connection: a socket bound 1:1 to a ProducerHandle shard,
/// drained by its own blocking reader thread. Grace-expiry reapers reuse
/// the struct with no socket: just a thread running the blocking Close.
struct SaberServer::DataConn {
  Socket sock;
  std::thread thread;
  ingest::ProducerHandle* producer = nullptr;
  SaberServer::InputFront* front = nullptr;
  SaberServer::InputFront::ShardSlot* slot = nullptr;
  uint16_t input = 0;
  uint16_t producer_index = 0;
  size_t tuple_size = 0;
  /// kAbort wire policy: the reader enforces the lateness horizon itself.
  bool strict = false;
  int64_t allowed_lateness = 0;
  int64_t max_seen = INT64_MIN;
  std::vector<uint8_t> carry;  ///< bytes pipelined behind the hello frame
  /// Set by the thread on exit; lets StartDataConn opportunistically join
  /// retired readers so a reconnect-heavy stream does not accumulate them.
  std::atomic<bool> done{false};
};

struct SaberServer::QueryEntry {
  uint32_t id = 0;
  QueryHandle* handle = nullptr;
  sql::IngressSpec spec;  ///< lateness defaults from the SQL statement
  size_t output_tuple_size = 0;

  std::unique_ptr<InputFront> fronts[2];

  std::mutex conns_mu;  ///< guards data_conns (spawn vs reap)
  std::vector<std::unique_ptr<DataConn>> data_conns;

  std::mutex subs_mu;  ///< guards subscribers (sink fan-out vs subscribe)
  std::vector<std::weak_ptr<Conn>> subscribers;
};

SaberServer::SaberServer(Engine* engine, sql::Catalog catalog,
                         ServerOptions options)
    : engine_(engine),
      catalog_(std::move(catalog)),
      options_(std::move(options)),
      counters_(new Counters) {
  SABER_CHECK(engine_ != nullptr);
  SABER_CHECK(options_.max_frame_bytes <= kMaxFramePayload);
  obs::MetricsRegistry* reg = engine_->metrics();
  const auto c = [&](std::string_view name, const obs::Counter* ptr,
                     std::string_view help) {
    reg->RegisterCounter(name, {}, ptr, this, help);
  };
  c("saber_net_connections_accepted_total", &counters_->connections_accepted,
    "TCP connections accepted by the front end");
  c("saber_net_control_connections_total", &counters_->control_connections,
    "Connections that completed the control-plane hello");
  c("saber_net_data_connections_total", &counters_->data_connections,
    "Connections bound to a producer shard (data-plane hellos)");
  c("saber_net_protocol_errors_total", &counters_->protocol_errors,
    "Malformed frames / handshake violations (connection dropped)");
  c("saber_net_queries_submitted_total", &counters_->queries_submitted,
    "Queries accepted over the wire (SQL or spec submissions)");
  c("saber_net_queries_removed_total", &counters_->queries_removed,
    "Queries removed over the wire or at shutdown");
  c("saber_net_tuple_frames_total", &counters_->tuple_frames,
    "Data-plane tuple frames appended to an ingress shard");
  c("saber_net_tuple_bytes_total", &counters_->tuple_bytes,
    "Payload bytes carried by those tuple frames");
  c("saber_net_result_batches_total", &counters_->result_batches,
    "Sink batches fanned out toward subscribers");
  c("saber_net_subscriber_overflows_total", &counters_->subscriber_overflows,
    "Subscribers dropped for exceeding the outbox cap");
  c("saber_net_timeouts_total", &counters_->timeouts,
    "Idle control connections and data reads timed out");
  c("saber_net_shards_parked_total", &counters_->shards_parked,
    "Producer shards parked on disconnect (reconnect grace)");
  c("saber_net_producer_reconnects_total", &counters_->producer_reconnects,
    "Parked shards reclaimed by a resume-token reconnect");
  c("saber_net_grace_expiries_total", &counters_->grace_expiries,
    "Parked shards whose grace window expired (clean close)");
  c("saber_net_watchdog_trips_retired_total",
    &counters_->watchdog_trips_retired,
    "Watchdog trips of ingresses already torn down");
}

SaberServer::~SaberServer() {
  Stop();
  engine_->metrics()->Unregister(this);
}

Status SaberServer::Start() {
  SABER_CHECK(!started_.exchange(true));
  auto listener =
      ListenOn(options_.bind_addr, options_.port, options_.listen_backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  auto port = LocalPort(listener_.fd());
  if (!port.ok()) return port.status();
  port_ = port.value();
  SABER_RETURN_NOT_OK(SetNonBlocking(listener_.fd(), true));

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IOError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Status::IOError("eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  loop_ = std::thread([this] { EventLoop(); });
  if (options_.reconnect_grace_ms > 0) {
    park_sweeper_ = std::thread([this] { ParkSweeperLoop(); });
  }
  return Status::OK();
}

void SaberServer::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  stop_.store(true);
  // Wake the data plane first: the event loop may be blocked inside a
  // Remove/Drain command waiting on reader threads or staged delivery.
  // Revoke makes every parked Append return false; shutdown wakes every
  // recv. Both are idempotent and safe against a concurrent removal.
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    for (auto& [id, e] : queries_) {
      for (auto& f : e->fronts) {
        if (f && f->ingress) f->ingress->Revoke();
      }
      std::lock_guard<std::mutex> cl(e->conns_mu);
      for (auto& dc : e->data_conns) dc->sock.ShutdownBoth();
    }
  }
  WakeLoop();
  sweep_cv_.notify_all();
  if (loop_.joinable()) loop_.join();
  // Join the sweeper before reaping: no new grace-expiry reapers may be
  // spawned once the data connections below are joined.
  if (park_sweeper_.joinable()) park_sweeper_.join();
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    for (auto& [id, e] : queries_) {
      ReapDataConns(*e);
      // The merger may still be blocked in a downstream InsertInto; the
      // engine is alive (or stopping, which also unblocks inserts) per the
      // stop-order contract in the file comment, so Stop returns.
      for (auto& f : e->fronts) {
        if (f && f->ingress) {
          f->ingress->Stop();
          counters_->watchdog_trips_retired.Increment(
              f->ingress->watchdog_trips());
        }
      }
    }
    queries_.clear();
  }
  conns_.clear();
  listener_.Close();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
}

ServerStats SaberServer::stats() const {
  ServerStats s;
  s.connections_accepted = counters_->connections_accepted.value();
  s.control_connections = counters_->control_connections.value();
  s.data_connections = counters_->data_connections.value();
  s.protocol_errors = counters_->protocol_errors.value();
  s.queries_submitted = counters_->queries_submitted.value();
  s.queries_removed = counters_->queries_removed.value();
  s.tuple_frames = counters_->tuple_frames.value();
  s.tuple_bytes = counters_->tuple_bytes.value();
  s.result_batches = counters_->result_batches.value();
  s.subscriber_overflows = counters_->subscriber_overflows.value();
  s.timeouts = counters_->timeouts.value();
  s.shards_parked = counters_->shards_parked.value();
  s.producer_reconnects = counters_->producer_reconnects.value();
  s.grace_expiries = counters_->grace_expiries.value();
  s.watermark_watchdog_trips = counters_->watchdog_trips_retired.value();
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    for (const auto& [id, e] : queries_) {
      for (const auto& f : e->fronts) {
        if (f && f->ingress) {
          s.watermark_watchdog_trips += f->ingress->watchdog_trips();
        }
      }
    }
  }
  return s;
}

size_t SaberServer::num_queries() const {
  std::lock_guard<std::mutex> lock(queries_mu_);
  return queries_.size();
}

void SaberServer::WakeLoop() {
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void SaberServer::EventLoop() {
  std::vector<epoll_event> events(64);
  while (!stop_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 250);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n && !stop_.load(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == listener_.fd()) {
        AcceptNew();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        // Sink threads filled subscriber outboxes: flush everything with
        // pending bytes, and close anything they marked dead (overflow).
        std::vector<int> to_close;
        for (auto& [cfd, c] : conns_) {
          bool pending;
          {
            std::lock_guard<std::mutex> wl(c->wmu);
            pending = !c->outbox.empty();
          }
          if (c->dead.load() || (pending && !FlushConn(*c))) {
            to_close.push_back(cfd);
          }
        }
        for (int cfd : to_close) CloseConn(cfd);
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> c = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !FlushConn(*c)) {
        CloseConn(fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(c);
    }
    if (!stop_.load()) SweepIdle(NowNanos());
  }
}

void SaberServer::ParkSweeperLoop() {
  // Own thread, own cadence: a Drain/Remove command blocking the event
  // loop may itself be waiting for a grace window to expire, so expiry
  // must never depend on the loop making progress.
  std::unique_lock<std::mutex> lock(sweep_mu_);
  while (!stop_.load()) {
    sweep_cv_.wait_for(lock, std::chrono::milliseconds(50));
    if (stop_.load()) break;
    SweepParkedShards(NowNanos());
  }
}

void SaberServer::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error: try again on epoll
    counters_->connections_accepted.Increment();
    if (!SetNonBlocking(fd, true).ok()) {
      ::close(fd);
      continue;
    }
    (void)SetNoDelay(fd);
    auto c = std::make_shared<Conn>();
    c->sock = Socket(fd);
    c->last_activity_nanos = NowNanos();
    conns_[fd] = std::move(c);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void SaberServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  it->second->dead.store(true);  // sinks stop enqueueing
  conns_.erase(it);              // Socket destructor closes the fd
}

void SaberServer::SweepIdle(int64_t now_nanos) {
  if (options_.idle_timeout_ms <= 0) return;
  const int64_t budget =
      static_cast<int64_t>(options_.idle_timeout_ms) * 1'000'000;
  std::vector<int> expired;
  for (auto& [fd, c] : conns_) {
    if (c->dead.load()) {
      expired.push_back(fd);
      continue;
    }
    // The guard applies while a connection owes us bytes: an unfinished
    // handshake or a partially received frame (the slow-loris shapes). An
    // idle-but-quiescent control connection may live indefinitely.
    const bool owes = !c->hello_done || !c->rbuf.empty();
    if (owes && now_nanos - c->last_activity_nanos > budget) {
      counters_->timeouts.Increment();
      expired.push_back(fd);
    }
  }
  for (int fd : expired) CloseConn(fd);
}

void SaberServer::SweepParkedShards(int64_t now_nanos) {
  if (options_.reconnect_grace_ms <= 0) return;
  // Phase 1 under the locks: flip expired slots to closed (a racing resume
  // hello now gets a clean kError instead of a vanished shard).
  std::vector<std::pair<std::shared_ptr<QueryEntry>, ingest::ProducerHandle*>>
      expired;
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    for (auto& [id, e] : queries_) {
      for (auto& f : e->fronts) {
        if (!f || !f->ingress) continue;
        std::lock_guard<std::mutex> sl(f->mu);
        for (size_t i = 0; i < f->slots.size(); ++i) {
          InputFront::ShardSlot* slot = f->slots[i].get();
          if (!slot->parked || now_nanos < slot->park_deadline_nanos) {
            continue;
          }
          slot->parked = false;
          slot->closed = true;
          counters_->grace_expiries.Increment();
          expired.emplace_back(e, f->ingress->producer(static_cast<int>(i)));
        }
      }
    }
  }
  // Phase 2 off the event loop: Close flushes the shard's reorder tail and
  // can block on staging back-pressure, so it runs on a reaper thread
  // joined with the data-plane readers (ReapDataConns / the opportunistic
  // join in StartDataConn).
  for (auto& [e, p] : expired) {
    auto dc = std::make_unique<DataConn>();
    dc->producer = p;
    DataConn* raw = dc.get();
    {
      std::lock_guard<std::mutex> cl(e->conns_mu);
      e->data_conns.push_back(std::move(dc));
    }
    raw->thread = std::thread([raw] {
      raw->producer->Close();
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void SaberServer::HandleReadable(const std::shared_ptr<Conn>& c) {
  uint8_t buf[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(c->sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      c->rbuf.insert(c->rbuf.end(), buf, buf + n);
      c->last_activity_nanos = NowNanos();
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // orderly EOF
      CloseConn(c->sock.fd());
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(c->sock.fd());
    return;
  }
  if (!DrainReadBuffer(c)) CloseConn(c->sock.fd());
}

bool SaberServer::DrainReadBuffer(const std::shared_ptr<Conn>& c) {
  size_t off = 0;
  bool keep = true;
  while (keep && c->rbuf.size() - off >= kFrameHeaderBytes) {
    auto header =
        DecodeFrameHeader(c->rbuf.data() + off, options_.max_frame_bytes);
    if (!header.ok()) {
      // Framing is unrecoverable: report and tear down.
      counters_->protocol_errors.Increment();
      EnqueueError(*c, header.status());
      (void)FlushConn(*c);
      return false;
    }
    const size_t frame = kFrameHeaderBytes + header.value().payload_len;
    if (c->rbuf.size() - off < frame) break;  // partial frame: wait for more
    const FrameType type = header.value().type;
    const uint8_t* payload = c->rbuf.data() + off + kFrameHeaderBytes;
    const size_t len = header.value().payload_len;
    off += frame;
    if (type == FrameType::kHelloData) {
      // Validate and hand the socket (plus any pipelined bytes) to a
      // dedicated reader thread; this Conn object retires either way.
      auto hello = DecodeDataHello(payload, len);
      if (!hello.ok()) {
        counters_->protocol_errors.Increment();
        EnqueueError(*c, hello.status());
        (void)FlushConn(*c);
        return false;
      }
      std::vector<uint8_t> carry(c->rbuf.begin() + static_cast<ptrdiff_t>(off),
                                 c->rbuf.end());
      c->rbuf.clear();
      const Status s = StartDataConn(c, hello.value(), std::move(carry));
      if (!s.ok()) {
        counters_->protocol_errors.Increment();
        EnqueueError(*c, s);
        (void)FlushConn(*c);
      }
      return false;  // either way the epoll loop no longer owns this conn
    }
    keep = ProcessFrame(c, type, payload, len);
  }
  if (off > 0) {
    c->rbuf.erase(c->rbuf.begin(), c->rbuf.begin() + static_cast<ptrdiff_t>(off));
  }
  return keep;
}

bool SaberServer::ProcessFrame(const std::shared_ptr<Conn>& c, FrameType type,
                               const uint8_t* payload, size_t len) {
  if (!c->hello_done) {
    if (type != FrameType::kHelloControl) {
      counters_->protocol_errors.Increment();
      EnqueueError(*c, Status::InvalidArgument(
                           StrCat("expected a hello frame, got ",
                                  FrameTypeName(type))));
      (void)FlushConn(*c);
      return false;
    }
    WireReader r(payload, len);
    uint32_t version = 0;
    if (!r.ReadU32(&version) || version != kProtocolVersion) {
      counters_->protocol_errors.Increment();
      EnqueueError(*c, Status::InvalidArgument(
                           StrCat("unsupported protocol version ", version)));
      (void)FlushConn(*c);
      return false;
    }
    c->hello_done = true;
    counters_->control_connections.Increment();
    WireWriter w;
    w.U32(kProtocolVersion);
    EnqueueFrame(*c, FrameType::kHelloOk, w.buf().data(), w.buf().size());
    return FlushConn(*c);
  }

  switch (type) {
    case FrameType::kSubmit:
      HandleSubmit(c, payload, len);
      return FlushConn(*c);
    case FrameType::kRemove:
    case FrameType::kDrain:
    case FrameType::kSubscribe: {
      WireReader r(payload, len);
      uint32_t id = 0;
      if (!r.ReadU32(&id)) {
        counters_->protocol_errors.Increment();
        EnqueueError(*c, Status::InvalidArgument(
                             StrCat("truncated ", FrameTypeName(type),
                                    " payload")));
        (void)FlushConn(*c);
        return false;
      }
      if (type == FrameType::kRemove) HandleRemove(c, id);
      if (type == FrameType::kDrain) HandleDrain(c, id);
      if (type == FrameType::kSubscribe) HandleSubscribe(c, id);
      return FlushConn(*c);
    }
    default:
      counters_->protocol_errors.Increment();
      EnqueueError(*c, Status::InvalidArgument(
                           StrCat(FrameTypeName(type),
                                  " is not a control-plane request")));
      (void)FlushConn(*c);
      return false;
  }
}

void SaberServer::HandleSubmit(const std::shared_ptr<Conn>& c,
                               const uint8_t* payload, size_t len) {
  const std::string sql_text(reinterpret_cast<const char*>(payload), len);
  uint32_t id;
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    id = next_query_id_++;
  }
  auto parsed =
      sql::ParseStatement(sql_text, catalog_, StrCat("net-q", id));
  if (!parsed.ok()) {
    EnqueueError(*c, parsed.status());
    return;
  }
  auto added = engine_->TryAddQuery(parsed.value().def);
  if (!added.ok()) {
    EnqueueError(*c, added.status());
    return;
  }
  QueryHandle* handle = added.value();

  auto entry = std::make_shared<QueryEntry>();
  entry->id = id;
  entry->handle = handle;
  entry->spec = parsed.value().ingress;
  entry->output_tuple_size = handle->output_schema().tuple_size();

  // Install the fan-out sink now, before any data plane for this query can
  // exist (legal: the query has dispatched nothing yet). Batches are copied
  // into subscriber outboxes — the result stage must never block on a slow
  // peer — and a subscriber past its buffer bound is disconnected.
  const size_t out_tsz = entry->output_tuple_size;
  const size_t cap = options_.subscriber_buffer_bytes;
  const uint32_t max_frame = options_.max_frame_bytes;
  std::weak_ptr<QueryEntry> weak = entry;
  const Status sink_status = handle->SetSink(
      [this, weak, out_tsz, cap, max_frame](const uint8_t* data, size_t bytes) {
        auto e = weak.lock();
        if (!e) return;
        counters_->result_batches.Increment();
        std::lock_guard<std::mutex> sl(e->subs_mu);
        bool any = false;
        for (auto& ws : e->subscribers) {
          auto sub = ws.lock();
          if (!sub || sub->dead.load()) continue;
          // Chunk to the frame bound on row boundaries.
          const size_t max_rows_bytes = max_frame / out_tsz * out_tsz;
          std::lock_guard<std::mutex> wl(sub->wmu);
          for (size_t o = 0; o < bytes; o += max_rows_bytes) {
            const size_t n = std::min(max_rows_bytes, bytes - o);
            if (sub->outbox_bytes + n > cap) {
              counters_->subscriber_overflows.Increment();
              sub->dead.store(true);
              break;
            }
            std::vector<uint8_t> frame(kFrameHeaderBytes + n);
            FrameHeader h;
            h.payload_len = static_cast<uint32_t>(n);
            h.type = FrameType::kResultBatch;
            EncodeFrameHeader(h, frame.data());
            std::memcpy(frame.data() + kFrameHeaderBytes, data + o, n);
            sub->outbox_bytes += frame.size();
            sub->outbox.push_back(std::move(frame));
          }
          any = true;
        }
        if (any) WakeLoop();
      });
  if (!sink_status.ok()) {
    // Cannot happen for a freshly admitted query; fail closed if it does.
    (void)engine_->RemoveQuery(handle);
    EnqueueError(*c, sink_status);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    queries_[id] = entry;
  }
  counters_->queries_submitted.Increment();

  QueryInfo info;
  info.query_id = id;
  info.num_inputs = static_cast<uint16_t>(handle->def().num_inputs);
  for (int i = 0; i < handle->def().num_inputs; ++i) {
    info.input_tuple_size[i] =
        static_cast<uint32_t>(handle->def().input_schema[i].tuple_size());
  }
  info.output_tuple_size = static_cast<uint32_t>(entry->output_tuple_size);
  info.name = handle->def().name;
  info.output_schema = handle->output_schema().ToString();
  const std::vector<uint8_t> reply = EncodeQueryInfo(info);
  EnqueueFrame(*c, FrameType::kQueryInfo, reply.data(), reply.size());
}

Status SaberServer::RemoveEntry(const std::shared_ptr<QueryEntry>& e) {
  // Quiesce the data plane first, while the query still accepts inserts:
  // revoked shards stop appending, readers wake (revoke + socket shutdown),
  // and everything already staged merges into the live query before the
  // merger stops. Mirrors Engine::RemoveQuery's phase 1 for engine-managed
  // ingresses — these are server-owned, so the server runs the phases.
  for (auto& f : e->fronts) {
    if (f && f->ingress) f->ingress->Revoke();
  }
  {
    std::lock_guard<std::mutex> cl(e->conns_mu);
    for (auto& dc : e->data_conns) dc->sock.ShutdownBoth();
  }
  ReapDataConns(*e);
  for (auto& f : e->fronts) {
    if (f && f->ingress) {
      f->ingress->Drain();
      f->ingress->Stop();
      counters_->watchdog_trips_retired.Increment(
          f->ingress->watchdog_trips());
    }
  }
  // Flush the sub-φ remainder through the sink (subscribers see the final
  // batches), then retire the slot.
  const Status s = engine_->RemoveQuery(e->handle);
  EndSubscriptions(*e);
  return s;
}

void SaberServer::HandleRemove(const std::shared_ptr<Conn>& c,
                               uint32_t query_id) {
  std::shared_ptr<QueryEntry> e;
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    auto it = queries_.find(query_id);
    if (it != queries_.end()) {
      e = it->second;
      queries_.erase(it);
    }
  }
  if (!e) {
    EnqueueError(*c, Status::NotFound(StrCat("no query ", query_id)));
    return;
  }
  const Status s = RemoveEntry(e);
  if (!s.ok()) {
    EnqueueError(*c, s);
    return;
  }
  counters_->queries_removed.Increment();
  EnqueueFrame(*c, FrameType::kOk, nullptr, 0);
}

void SaberServer::HandleDrain(const std::shared_ptr<Conn>& c,
                              uint32_t query_id) {
  std::shared_ptr<QueryEntry> e;
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    auto it = queries_.find(query_id);
    if (it != queries_.end()) e = it->second;
  }
  if (!e) {
    EnqueueError(*c, Status::NotFound(StrCat("no query ", query_id)));
    return;
  }
  // Blocks until every shard is closed (clients sent kDataEnd or
  // disconnected) and every staged tuple has been merged into the engine.
  for (auto& f : e->fronts) {
    if (f && f->ingress) f->ingress->Drain();
  }
  EnqueueFrame(*c, FrameType::kOk, nullptr, 0);
}

void SaberServer::HandleSubscribe(const std::shared_ptr<Conn>& c,
                                  uint32_t query_id) {
  std::shared_ptr<QueryEntry> e;
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    auto it = queries_.find(query_id);
    if (it != queries_.end()) e = it->second;
  }
  if (!e) {
    EnqueueError(*c, Status::NotFound(StrCat("no query ", query_id)));
    return;
  }
  if (c->subscribed_query != 0) {
    EnqueueError(*c, Status::AlreadyExists(
                         StrCat("connection already subscribed to query ",
                                c->subscribed_query)));
    return;
  }
  {
    std::lock_guard<std::mutex> sl(e->subs_mu);
    e->subscribers.push_back(c);
  }
  c->subscribed_query = query_id;
  EnqueueFrame(*c, FrameType::kOk, nullptr, 0);
}

void SaberServer::EndSubscriptions(QueryEntry& e) {
  std::lock_guard<std::mutex> sl(e.subs_mu);
  for (auto& ws : e.subscribers) {
    auto sub = ws.lock();
    if (!sub || sub->dead.load()) continue;
    {
      std::lock_guard<std::mutex> wl(sub->wmu);
      std::vector<uint8_t> frame(kFrameHeaderBytes);
      FrameHeader h;
      h.payload_len = 0;
      h.type = FrameType::kSubscribeEnd;
      EncodeFrameHeader(h, frame.data());
      sub->outbox_bytes += frame.size();
      sub->outbox.push_back(std::move(frame));
    }
    sub->subscribed_query = 0;  // runs on the epoll thread (kRemove)
  }
  e.subscribers.clear();
  WakeLoop();
}

Status SaberServer::StartDataConn(const std::shared_ptr<Conn>& c,
                                  const DataHello& hello,
                                  std::vector<uint8_t> carry) {
  if (hello.version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported protocol version ", hello.version));
  }
  std::shared_ptr<QueryEntry> e;
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    auto it = queries_.find(hello.query_id);
    if (it != queries_.end()) e = it->second;
  }
  if (!e) return Status::NotFound(StrCat("no query ", hello.query_id));
  const QueryDef& def = e->handle->def();
  if (hello.input >= def.num_inputs) {
    return Status::InvalidArgument(StrCat("query ", hello.query_id, " has ",
                                          def.num_inputs, " input(s); no input ",
                                          hello.input));
  }
  const size_t tsz = def.input_schema[hello.input].tuple_size();
  if (hello.tuple_size != tsz) {
    return Status::InvalidArgument(
        StrCat("tuple size mismatch: input ", hello.input, " of query ",
               hello.query_id, " has ", tsz, "-byte tuples, hello claims ",
               hello.tuple_size));
  }
  if (hello.num_producers < 1 || hello.num_producers > 1024) {
    return Status::InvalidArgument(
        StrCat("num_producers must be in [1, 1024], got ",
               hello.num_producers));
  }
  if (hello.producer >= hello.num_producers) {
    return Status::InvalidArgument(
        StrCat("producer index ", hello.producer, " out of range for ",
               hello.num_producers, " producers"));
  }
  const int64_t lateness = hello.allowed_lateness >= 0
                               ? hello.allowed_lateness
                               : e->spec.allowed_lateness;

  // fronts[] is written here (epoll thread) and read by the grace sweeper
  // on its own thread, so creation publishes under queries_mu_ — taken
  // before front->mu, the same order the sweep uses.
  InputFront* front;
  std::unique_lock<std::mutex> fronts_lock(queries_mu_);
  front = e->fronts[hello.input].get();
  if (front == nullptr) {
    auto nf = std::make_unique<InputFront>();
    nf->num_producers = hello.num_producers;
    nf->allowed_lateness = lateness;
    nf->wire_policy = hello.late_policy;
    nf->slots.reserve(hello.num_producers);
    for (uint16_t i = 0; i < hello.num_producers; ++i) {
      nf->slots.push_back(std::make_unique<InputFront::ShardSlot>());
    }
    ingest::IngressOptions iopts = options_.ingress;
    iopts.num_producers = hello.num_producers;
    iopts.allowed_lateness = lateness;
    iopts.watchdog_label = StrCat("query ", hello.query_id, " input ",
                                  hello.input);
    // Never kAbort inside the server: a remote peer must not be able to
    // bring the process down (late tuples under kAbort semantics are
    // rejected by the reader thread with kError instead — see DataLoop).
    const auto wire = static_cast<ingest::LatePolicy>(hello.late_policy);
    iopts.late_policy = wire == ingest::LatePolicy::kAbort
                            ? ingest::LatePolicy::kDropAndCount
                            : wire;
    iopts.producer_rate_bytes_per_sec = 0.0;  // per-shard rate set below
    iopts.metrics = engine_->metrics();
    iopts.metrics_label = StrCat("q", hello.query_id, "/in", hello.input);
    nf->ingress =
        ingest::ShardedIngress::ForQuery(e->handle, hello.input, iopts);
    front = nf.get();
    e->fronts[hello.input] = std::move(nf);
  } else {
    if (hello.num_producers != front->num_producers) {
      return Status::InvalidArgument(
          StrCat("input ", hello.input, " is sharded over ",
                 front->num_producers, " producers; hello claims ",
                 hello.num_producers));
    }
    if (lateness != front->allowed_lateness ||
        hello.late_policy != front->wire_policy) {
      return Status::InvalidArgument(
          StrCat("lateness/policy mismatch with the established ingress of "
                 "input ",
                 hello.input));
    }
  }
  fronts_lock.unlock();
  InputFront::ShardSlot* slot = front->slots[hello.producer].get();
  bool resumed = false;
  {
    std::lock_guard<std::mutex> sl(front->mu);
    if (slot->closed) {
      return Status::InvalidArgument(
          StrCat("producer ", hello.producer, " of input ", hello.input,
                 " has already finished; the shard cannot be rebound"));
    }
    if (slot->bound) {
      return Status::AlreadyExists(StrCat("producer ", hello.producer,
                                          " of input ", hello.input,
                                          " is already bound"));
    }
    if (slot->parked) {
      // Resume: only the token issued to the disconnected epoch reclaims
      // the shard (a stale or replayed token must not splice a stranger
      // into the byte sequence).
      if (hello.resume_token != slot->token) {
        return Status::InvalidArgument(
            StrCat("stale or unknown resume token for producer ",
                   hello.producer, " of input ", hello.input));
      }
      slot->parked = false;
      resumed = true;
    } else {
      if (hello.resume_token != 0) {
        return Status::InvalidArgument(
            StrCat("resume token presented for producer ", hello.producer,
                   " of input ", hello.input, ", which is not parked"));
      }
      slot->token = MixToken(next_token_.fetch_add(1));
    }
    slot->bound = true;
  }
  if (hello.rate_bytes_per_sec > 0) {
    front->ingress->SetProducerRate(hello.producer, hello.rate_bytes_per_sec);
  }

  auto dc = std::make_unique<DataConn>();
  DataConn* dcp = dc.get();
  dc->producer = front->ingress->producer(hello.producer);
  dc->front = front;
  dc->slot = slot;
  dc->input = hello.input;
  dc->producer_index = hello.producer;
  dc->tuple_size = tsz;
  dc->strict =
      static_cast<ingest::LatePolicy>(hello.late_policy) ==
      ingest::LatePolicy::kAbort;
  dc->allowed_lateness = lateness;
  dc->max_seen = slot->max_seen;
  dc->carry = std::move(carry);

  // Transfer the socket out of the event loop: blocking mode, receive
  // timeout as the slow-loris guard, hello acknowledged before the reader
  // starts (so the client may not observe kTuples back-pressure before
  // kHelloOk).
  const int fd = c->sock.fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(fd);     // drops the Conn's ownership via shared_ptr release
  dc->sock = std::move(c->sock);  // c still holds the last shared_ptr ref
  (void)SetNonBlocking(fd, false);
  if (options_.idle_timeout_ms > 0) {
    (void)SetRecvTimeout(fd, options_.idle_timeout_ms);
  }
  WireWriter w;
  w.U32(kProtocolVersion);
  w.U64(slot->token);
  w.I64(slot->acked_bytes.load(std::memory_order_relaxed));
  const Status hello_ok =
      SendFrame(fd, FrameType::kHelloOk, w.buf().data(), w.buf().size());
  if (!hello_ok.ok()) {
    // Peer vanished between connect and hello-ok: release the shard so a
    // (re)connect can claim it, nothing new was appended. A failed resume
    // re-parks with a fresh grace window rather than silently closing.
    std::lock_guard<std::mutex> sl(front->mu);
    slot->bound = false;
    if (resumed) {
      slot->parked = true;
      slot->park_deadline_nanos =
          NowNanos() +
          static_cast<int64_t>(options_.reconnect_grace_ms) * 1'000'000;
    }
    return hello_ok;
  }
  if (resumed) counters_->producer_reconnects.Increment();
  counters_->data_connections.Increment();
  {
    std::lock_guard<std::mutex> cl(e->conns_mu);
    // Opportunistically join readers that already exited (parked shards,
    // earlier epochs of this one) so reconnect-heavy streams do not
    // accumulate retired threads until query teardown.
    auto& v = e->data_conns;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [](const std::unique_ptr<DataConn>& d) {
                             if (!d->done.load(std::memory_order_acquire)) {
                               return false;
                             }
                             if (d->thread.joinable()) d->thread.join();
                             return true;
                           }),
            v.end());
    v.push_back(std::move(dc));
  }
  dcp->thread = std::thread([this, e, dcp] {
    DataLoop(e, dcp);
    dcp->done.store(true, std::memory_order_release);
  });
  return Status::OK();
}

void SaberServer::DataLoop(std::shared_ptr<QueryEntry> keepalive,
                           DataConn* dc) {
  (void)keepalive;  // holds the QueryEntry (and thus *dc) for the thread
  const int fd = dc->sock.fd();
  const size_t tsz = dc->tuple_size;
  std::vector<uint8_t> payload;

  // Frame source that consumes the handshake carry-over before the socket.
  size_t carry_off = 0;
  auto read_exact = [&](void* dst, size_t n) -> Status {
    uint8_t* out = static_cast<uint8_t*>(dst);
    const size_t from_carry = std::min(n, dc->carry.size() - carry_off);
    if (from_carry > 0) {
      std::memcpy(out, dc->carry.data() + carry_off, from_carry);
      carry_off += from_carry;
    }
    if (from_carry == n) return Status::OK();
    return ReadFull(fd, out + from_carry, n - from_carry);
  };

  // Marks the shard terminal so no resume token can rebind it.
  auto seal_slot = [&] {
    std::lock_guard<std::mutex> sl(dc->front->mu);
    dc->slot->bound = false;
    dc->slot->closed = true;
  };

  auto fail = [&](const Status& s) {
    counters_->protocol_errors.Increment();
    (void)SendFrame(fd, FrameType::kError, EncodeError(s));
    // The stream is untrustworthy past the violation: revoke rather than
    // close, so the reorder buffer's tail is abandoned with it. Either way
    // the shard counts as finished and the watermark releases.
    seal_slot();
    dc->producer->Revoke();
    dc->sock.ShutdownBoth();
  };

  // Disconnect with a grace window: *park* the shard instead of closing it.
  // The producer stays open — the watermark holds, nothing seals past the
  // gap — until a resume-token reconnect rebinds it or the grace sweep
  // expires it. Returns false when parking is off or the shard is already
  // finished (then the caller falls back to the historical clean close).
  auto park = [&]() -> bool {
    if (options_.reconnect_grace_ms <= 0 || stop_.load()) return false;
    if (dc->producer->closed() || dc->producer->revoked()) return false;
    std::lock_guard<std::mutex> sl(dc->front->mu);
    if (dc->slot->closed) return false;
    dc->slot->bound = false;
    dc->slot->parked = true;
    dc->slot->park_deadline_nanos =
        NowNanos() +
        static_cast<int64_t>(options_.reconnect_grace_ms) * 1'000'000;
    dc->slot->max_seen = dc->max_seen;
    counters_->shards_parked.Increment();
    return true;
  };

  for (;;) {
    // Fault injection: sever this data connection as if the network (or a
    // proxy, or the peer's NIC) dropped it. The client sees a reset; the
    // shard parks (grace window) or closes (historical contract) exactly as
    // it would on a real loss.
    if (SABER_FAULT_POINT("net.server.drop_data_conn")) {
      // Park before severing: the client observes the FIN within
      // microseconds on loopback and redials, and its resume must find the
      // shard already parked.
      if (!park()) {
        seal_slot();
        dc->producer->Close();
      }
      dc->sock.ShutdownBoth();
      return;
    }
    uint8_t header[kFrameHeaderBytes];
    const Status hs = read_exact(header, sizeof(header));
    if (!hs.ok()) {
      // EOF, timeout, reset, or server shutdown: park when a grace window
      // is configured; otherwise the disconnect contract — the shard
      // closes and the watermark releases without it.
      if (hs.code() == StatusCode::kUnavailable) {
        counters_->timeouts.Increment();
      }
      if (!park()) {
        seal_slot();
        dc->producer->Close();
      }
      return;
    }
    auto h = DecodeFrameHeader(header, options_.max_frame_bytes);
    if (!h.ok()) {
      fail(h.status());
      return;
    }
    const FrameType type = h.value().type;
    payload.resize(h.value().payload_len);
    if (!payload.empty()) {
      const Status ps = read_exact(payload.data(), payload.size());
      if (!ps.ok()) {
        // Mid-frame disconnect: the partial frame was never appended, so a
        // resume replays it from the acked boundary.
        if (!park()) {
          seal_slot();
          dc->producer->Close();
        }
        return;
      }
    }
    switch (type) {
      case FrameType::kTuples: {
        if (payload.size() % tsz != 0) {
          fail(Status::InvalidArgument(
              StrCat("kTuples payload of ", payload.size(),
                     " bytes is not a multiple of the ", tsz,
                     "-byte tuple size")));
          return;
        }
        if (dc->strict) {
          const int64_t bad =
              FirstLateViolation(payload.data(), payload.size(), tsz,
                                 dc->allowed_lateness, &dc->max_seen);
          if (bad >= 0) {
            fail(Status::InvalidArgument(StrCat(
                "late tuple beyond the allowed lateness of ",
                dc->allowed_lateness, " at tuple ", bad,
                " of this frame (late policy abort)")));
            return;
          }
        }
        counters_->tuple_frames.Increment();
        counters_->tuple_bytes.Increment(
            static_cast<int64_t>(payload.size()));
        if (!payload.empty() &&
            !dc->producer->Append(payload.data(), payload.size())) {
          // Revoked (query removal / server stop): drop the connection.
          seal_slot();
          dc->sock.ShutdownBoth();
          return;
        }
        // Acked: fully appended, so a resumed client replays nothing of it.
        dc->slot->acked_bytes.fetch_add(
            static_cast<int64_t>(payload.size()), std::memory_order_relaxed);
        break;
      }
      case FrameType::kDataEnd: {
        seal_slot();
        dc->producer->Close();
        (void)SendFrame(fd, FrameType::kDataEndOk, nullptr, 0);
        return;
      }
      default:
        fail(Status::InvalidArgument(
            StrCat(FrameTypeName(type), " is not a data-plane frame")));
        return;
    }
  }
}

void SaberServer::ReapDataConns(QueryEntry& e) {
  std::lock_guard<std::mutex> cl(e.conns_mu);
  for (auto& dc : e.data_conns) {
    if (dc->thread.joinable()) dc->thread.join();
  }
}

void SaberServer::EnqueueFrame(Conn& c, FrameType type, const void* payload,
                               size_t len) {
  std::vector<uint8_t> frame(kFrameHeaderBytes + len);
  FrameHeader h;
  h.payload_len = static_cast<uint32_t>(len);
  h.type = type;
  EncodeFrameHeader(h, frame.data());
  if (len > 0) std::memcpy(frame.data() + kFrameHeaderBytes, payload, len);
  std::lock_guard<std::mutex> wl(c.wmu);
  c.outbox_bytes += frame.size();
  c.outbox.push_back(std::move(frame));
}

void SaberServer::EnqueueError(Conn& c, const Status& status) {
  const std::vector<uint8_t> payload = EncodeError(status);
  EnqueueFrame(c, FrameType::kError, payload.data(), payload.size());
}

bool SaberServer::FlushConn(Conn& c) {
  std::lock_guard<std::mutex> wl(c.wmu);
  while (!c.outbox.empty()) {
    const std::vector<uint8_t>& front = c.outbox.front();
    const ssize_t n = ::send(c.sock.fd(), front.data() + c.front_off,
                             front.size() - c.front_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c.epollout_armed) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = c.sock.fd();
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.sock.fd(), &ev);
          c.epollout_armed = true;
        }
        return true;
      }
      return false;
    }
    c.front_off += static_cast<size_t>(n);
    if (c.front_off == front.size()) {
      c.outbox_bytes -= front.size();
      c.outbox.pop_front();
      c.front_off = 0;
    }
  }
  if (c.epollout_armed) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = c.sock.fd();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.sock.fd(), &ev);
    c.epollout_armed = false;
  }
  return true;
}

}  // namespace saber::net
