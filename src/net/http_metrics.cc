#include "net/http_metrics.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "runtime/strcat.h"

namespace saber::net {

namespace {

constexpr size_t kMaxRequestBytes = 8 * 1024;
constexpr int kRequestTimeoutMs = 5'000;

void SendResponse(int fd, const char* status_line, const char* content_type,
                  const std::string& body) {
  std::string resp = StrCat("HTTP/1.1 ", status_line,
                            "\r\nContent-Type: ", content_type,
                            "\r\nContent-Length: ", body.size(),
                            "\r\nConnection: close\r\n\r\n");
  resp += body;
  (void)WriteFull(fd, resp.data(), resp.size());
}

}  // namespace

HttpMetricsServer::HttpMetricsServer(const obs::MetricsRegistry* registry,
                                     std::string bind_addr)
    : registry_(registry), bind_addr_(std::move(bind_addr)) {
  SABER_CHECK(registry_ != nullptr);
}

HttpMetricsServer::~HttpMetricsServer() { Stop(); }

Status HttpMetricsServer::Start(int port) {
  SABER_CHECK(!started_.exchange(true));
  auto listener = ListenOn(bind_addr_, port, /*backlog=*/16);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  auto bound = LocalPort(listener_.fd());
  if (!bound.ok()) return bound.status();
  port_ = bound.value();
  loop_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpMetricsServer::Stop() {
  if (!started_.load() || stop_.exchange(true)) return;
  if (loop_.joinable()) loop_.join();
  listener_.Close();
}

void HttpMetricsServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) continue;
    ServeOne(Socket(fd));
  }
}

void HttpMetricsServer::ServeOne(Socket conn) {
  (void)SetRecvTimeout(conn.fd(), kRequestTimeoutMs);
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(conn.fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // no complete request line
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendResponse(conn.fd(), "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    SendResponse(conn.fd(), "405 Method Not Allowed", "text/plain",
                 "only GET is supported\n");
    return;
  }
  if (path == "/metrics") {
    SendResponse(conn.fd(), "200 OK", "text/plain; version=0.0.4",
                 obs::RenderPrometheusText(registry_->Snapshot()));
  } else if (path == "/healthz") {
    SendResponse(conn.fd(), "200 OK", "text/plain", "ok\n");
  } else {
    SendResponse(conn.fd(), "404 Not Found", "text/plain", "not found\n");
  }
}

}  // namespace saber::net
