#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "runtime/status.h"

/// \file client.h
/// Client library for the SABER network front end (src/net/server.h), used
/// by `saber_cli --connect`, the examples and the net benchmark. One class
/// per plane:
///
///  - ControlClient: SQL submit / remove / drain, and result subscription.
///    Strictly request → response; not thread-safe.
///  - ProducerClient: one producer shard of one query input. Send() chunks
///    arbitrarily large tuple runs into kTuples frames; a full server-side
///    staging ring surfaces as Send() blocking (TCP back-pressure), exactly
///    like an in-process ProducerHandle::Append.

namespace saber::net {

class ControlClient {
 public:
  /// Dials and runs the control handshake.
  static Result<ControlClient> Connect(const std::string& host, int port);

  ControlClient() = default;
  ControlClient(ControlClient&&) = default;
  ControlClient& operator=(ControlClient&&) = default;

  /// Submits one SQL statement; on success returns the admitted query's
  /// wire id, schemas and tuple sizes. A server-side parse/admission error
  /// comes back as the server's own Status.
  Result<QueryInfo> Submit(const std::string& sql);

  /// Removes a query: quiesces its data plane, flushes the window remainder
  /// through its sink, retires it. Subscribed connections (including this
  /// one) receive kSubscribeEnd.
  Status Remove(uint32_t query_id);

  /// Blocks until every currently bound producer shard of the query has
  /// ended and all staged tuples are merged into the engine.
  Status Drain(uint32_t query_id);

  /// Subscribes this connection to the query's result batches. After this,
  /// interleave NextBatch with other commands at your own peril: batches
  /// arrive asynchronously, so NextBatch is the only safe read.
  Status Subscribe(uint32_t query_id);

  /// Reads the next result batch into *batch. Returns false when the
  /// subscription ended (query removed), true with tuple bytes otherwise.
  Result<bool> NextBatch(std::vector<uint8_t>* batch);

  bool valid() const { return sock_.valid(); }
  void Close() { sock_.Close(); }
  /// Wakes a NextBatch blocked in recv from another thread.
  void Shutdown() { sock_.ShutdownBoth(); }

 private:
  /// Sends a u32-payload command and awaits kOk (or decodes kError).
  Status SimpleCommand(FrameType type, uint32_t query_id);

  Socket sock_;
};

class ProducerClient {
 public:
  /// Dials and binds to producer shard `hello.producer` of input
  /// `hello.input` of query `hello.query_id`. `hello.version` is filled in;
  /// everything else (num_producers, tuple_size, lateness, policy, rate) is
  /// the caller's negotiation. Fails if the shard is already bound or the
  /// hello does not match the query (the server's error comes back as-is).
  static Result<ProducerClient> Connect(const std::string& host, int port,
                                        DataHello hello);

  ProducerClient() = default;
  ProducerClient(ProducerClient&&) = default;
  ProducerClient& operator=(ProducerClient&&) = default;

  /// Appends whole tuples (bytes must be a multiple of the hello's
  /// tuple_size). Chunks to the frame bound on tuple boundaries; blocks on
  /// server back-pressure. The data plane is one-way until End(), so a
  /// server-side rejection (late tuple under abort semantics, framing
  /// violation) typically surfaces as an IOError on a later Send — call
  /// LastServerError() for the kError the server left behind.
  Status Send(const void* tuples, size_t bytes);

  /// Ends the stream: kDataEnd, awaits kDataEndOk. The shard closes and the
  /// watermark releases. The connection is unusable afterwards.
  Status End();

  /// Abandons the stream (no kDataEnd). The server treats the disconnect
  /// like an orderly Close: the shard finishes and the watermark releases.
  void Close() { sock_.Close(); }

  /// After a failed Send/End: tries to read the server's parting kError off
  /// the socket (best-effort, 100 ms budget). Internal if there is none.
  Status LastServerError();

  bool valid() const { return sock_.valid(); }
  size_t tuple_size() const { return tuple_size_; }

 private:
  Socket sock_;
  size_t tuple_size_ = 0;
  uint32_t max_chunk_ = kMaxFramePayload;
};

}  // namespace saber::net
