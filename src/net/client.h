#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "runtime/status.h"

/// \file client.h
/// Client library for the SABER network front end (src/net/server.h), used
/// by `saber_cli --connect`, the examples and the net benchmark. One class
/// per plane:
///
///  - ControlClient: SQL submit / remove / drain, and result subscription.
///    Strictly request → response; not thread-safe.
///  - ProducerClient: one producer shard of one query input. Send() chunks
///    arbitrarily large tuple runs into kTuples frames; a full server-side
///    staging ring surfaces as Send() blocking (TCP back-pressure), exactly
///    like an in-process ProducerHandle::Append.

namespace saber::net {

class ControlClient {
 public:
  /// Dials and runs the control handshake. `connect_timeout_ms > 0` bounds
  /// each TCP connect (see Dial); `connect_attempts > 1` retries a failed
  /// dial with bounded exponential backoff (50 ms doubling to 2 s) — for
  /// racing a server that is still binding its port.
  static Result<ControlClient> Connect(const std::string& host, int port,
                                       int connect_timeout_ms = 0,
                                       int connect_attempts = 1);

  ControlClient() = default;
  ControlClient(ControlClient&&) = default;
  ControlClient& operator=(ControlClient&&) = default;

  /// Submits one SQL statement; on success returns the admitted query's
  /// wire id, schemas and tuple sizes. A server-side parse/admission error
  /// comes back as the server's own Status.
  Result<QueryInfo> Submit(const std::string& sql);

  /// Removes a query: quiesces its data plane, flushes the window remainder
  /// through its sink, retires it. Subscribed connections (including this
  /// one) receive kSubscribeEnd.
  Status Remove(uint32_t query_id);

  /// Blocks until every currently bound producer shard of the query has
  /// ended and all staged tuples are merged into the engine.
  Status Drain(uint32_t query_id);

  /// Subscribes this connection to the query's result batches. After this,
  /// interleave NextBatch with other commands at your own peril: batches
  /// arrive asynchronously, so NextBatch is the only safe read.
  Status Subscribe(uint32_t query_id);

  /// Reads the next result batch into *batch. Returns false when the
  /// subscription ended (query removed), true with tuple bytes otherwise.
  Result<bool> NextBatch(std::vector<uint8_t>* batch);

  bool valid() const { return sock_.valid(); }
  void Close() { sock_.Close(); }
  /// Wakes a NextBatch blocked in recv from another thread.
  void Shutdown() { sock_.ShutdownBoth(); }

 private:
  /// Sends a u32-payload command and awaits kOk (or decodes kError).
  Status SimpleCommand(FrameType type, uint32_t query_id);

  Socket sock_;
};

/// Reconnect/resume behavior of a ProducerClient. Off by default (a lost
/// connection fails the Send, the historical contract). With
/// `max_attempts > 0` — and a server running a reconnect grace window
/// (ServerOptions::reconnect_grace_ms) — a mid-stream connection loss is
/// repaired transparently: the client redials with bounded exponential
/// backoff, presents its resume token, and replays every byte past the
/// acked sequence the server reports, so the appended stream is
/// byte-identical to the uninterrupted run.
struct ReconnectPolicy {
  /// Bound on each TCP connect, initial dial included (see Dial). 0 keeps
  /// the OS-default blocking connect.
  int connect_timeout_ms = 0;
  /// Reconnect attempts after a mid-stream loss; 0 disables reconnection.
  int max_attempts = 0;
  /// Backoff before the first / between attempts, doubling per attempt.
  int initial_backoff_ms = 50;
  int max_backoff_ms = 2'000;
  /// Replay ring capacity: the newest sent-but-possibly-unacked bytes kept
  /// for resume. Must exceed the server's in-flight window (TCP buffers +
  /// one frame); a resume whose gap outgrew the ring fails with
  /// ResourceExhausted rather than splicing a hole into the stream.
  size_t replay_buffer_bytes = size_t{8} << 20;
};

class ProducerClient {
 public:
  /// Dials and binds to producer shard `hello.producer` of input
  /// `hello.input` of query `hello.query_id`. `hello.version` is filled in;
  /// everything else (num_producers, tuple_size, lateness, policy, rate) is
  /// the caller's negotiation. Fails if the shard is already bound or the
  /// hello does not match the query (the server's error comes back as-is).
  /// The server's resume token is captured from the kHelloOk; `policy`
  /// governs reconnection (see ReconnectPolicy).
  static Result<ProducerClient> Connect(const std::string& host, int port,
                                        DataHello hello,
                                        ReconnectPolicy policy = {});

  ProducerClient() = default;
  ProducerClient(ProducerClient&&) = default;
  ProducerClient& operator=(ProducerClient&&) = default;

  /// Appends whole tuples (bytes must be a multiple of the hello's
  /// tuple_size). Chunks to the frame bound on tuple boundaries; blocks on
  /// server back-pressure. The data plane is one-way until End(), so a
  /// server-side rejection (late tuple under abort semantics, framing
  /// violation) typically surfaces as an IOError on a later Send — call
  /// LastServerError() for the kError the server left behind. With a
  /// ReconnectPolicy armed, a connection loss is repaired in place (see
  /// ReconnectPolicy); Send fails only once the attempts are exhausted or
  /// the server rejects the resume.
  Status Send(const void* tuples, size_t bytes);

  /// Ends the stream: kDataEnd, awaits kDataEndOk. The shard closes and the
  /// watermark releases. The connection is unusable afterwards. Both a send
  /// failure and a failed kDataEndOk read are repaired via the
  /// ReconnectPolicy, up to max_attempts resume rounds (a drop the kernel
  /// absorbed silently often surfaces only here, and under a sustained
  /// storm the replayed tail itself can be severed again); a server that
  /// already closed the shard rejects the resume and that rejection is
  /// returned.
  Status End();

  /// Abandons the stream (no kDataEnd). The server treats the disconnect
  /// like an orderly Close: the shard finishes and the watermark releases.
  void Close() { sock_.Close(); }

  /// After a failed Send/End: tries to read the server's parting kError off
  /// the socket (best-effort, 100 ms budget). Internal if there is none.
  Status LastServerError();

  bool valid() const { return sock_.valid(); }
  size_t tuple_size() const { return tuple_size_; }
  /// Successful mid-stream reconnects (resume handshakes that replayed).
  int64_t reconnects() const { return reconnects_; }
  /// The server-issued resume token (0 before Connect / from old servers).
  uint64_t resume_token() const { return resume_token_; }

 private:
  /// Appends `n` bytes to the replay ring (evicting the oldest beyond
  /// capacity) and advances the sent sequence.
  void RecordSent(const uint8_t* p, size_t n);
  /// Bounded-backoff redial + resume handshake + tail replay. `cause` is
  /// returned when reconnection is disabled or exhausted; a server-side
  /// rejection of the resume is returned immediately (retrying a rejected
  /// token cannot succeed).
  Status Reconnect(Status cause);

  Socket sock_;
  size_t tuple_size_ = 0;
  uint32_t max_chunk_ = kMaxFramePayload;

  /// Resume state (see ReconnectPolicy).
  std::string host_;
  int port_ = 0;
  DataHello hello_;
  ReconnectPolicy policy_;
  uint64_t resume_token_ = 0;
  int64_t reconnects_ = 0;
  /// Replay ring: the last `replay_.size()` bytes of the sent sequence;
  /// `sent_bytes_ - replay_.size()` is the stream offset of replay_[0].
  std::vector<uint8_t> replay_;
  int64_t sent_bytes_ = 0;
};

}  // namespace saber::net
