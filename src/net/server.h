#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "ingest/sharded_ingress.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "sql/parser.h"

/// \file server.h
/// The SABER network front end: one TCP listener, two planes.
///
///   clients                    saber server                  engine
///   ───────────────  ─────────────────────────────────  ───────────────
///   control conns ──► epoll event loop ── Submit ─────► TryAddQuery
///     (SQL text)        │    │            Remove ─────► RemoveQuery
///                       │    └─ Subscribe: per-conn     (sink fans out
///                       │       outbox ◄────────────────  result batches)
///   data conns ────► handshake, then one blocking
///     (kTuples)      reader thread per connection ──► ProducerHandle
///                                                      (staging ring)
///
/// **Data plane.** Each data connection binds 1:1 to one
/// `ingest::ProducerHandle` shard of one query input; the first hello for a
/// (query, input) pair creates the `ShardedIngress` sized to the hello's
/// `num_producers` (later hellos must agree). Tuple frames land in the
/// staging ring with one copy (socket → frame buffer → ring); back-pressure
/// propagates naturally — a full staging ring blocks `Append`, which blocks
/// the reader thread, which stops draining the socket, which closes the
/// client's TCP window. Disconnect (orderly end, EOF, or idle timeout) maps
/// to `Close()`, so the shard's watermark releases and the merge proceeds
/// without it. `IngressOptions` — allowed lateness, late policy, per-shard
/// rate — are negotiated in the handshake (lateness −1 inherits the query's
/// SQL `with lateness` clause).
///
/// A remote peer must never be able to bring the process down: the
/// wire-level kAbort policy keeps *abort semantics* — the reader validates
/// frame sizes and the lateness horizon itself and answers kError + close —
/// while the ingress underneath always runs a non-aborting policy.
///
/// **Control plane.** Control connections stay on the epoll loop
/// (non-blocking frame reassembly). kSubmit parses SQL through
/// `sql::ParseStatement` (window clauses incl. `[session gap N]`, `with
/// lateness` options) and admits via `Engine::TryAddQuery`; the query's sink
/// is installed immediately — before any data plane exists — and fans result
/// batches out to subscriber outboxes (bounded; a slow subscriber is
/// disconnected rather than allowed to stall an engine worker). kRemove
/// quiesces the data plane first (revoke shards, wake readers, join, drain
/// staged tuples into the still-live query, stop the ingress), then
/// `Engine::RemoveQuery` flushes the sub-φ remainder through the sink, then
/// subscribers get kSubscribeEnd. Commands execute synchronously on the
/// event loop — the control plane is low-rate by design, and a blocking
/// Remove/Drain cannot deadlock it (the data plane runs on its own threads
/// and the engine's workers drain independently).
///
/// **Teardown.** Stop the server before the engine: Stop() revokes every
/// shard and shuts every data socket down (waking reads blocked in recv and
/// appends parked on staging back-pressure), joins the reader threads and
/// the event loop, and stops the ingresses — the engine must still be alive
/// (or at least already stopping) so a merger blocked downstream can wake.
/// Queries admitted through the server stay admitted; the embedding owns
/// the engine's lifecycle.

namespace saber::net {

struct ServerOptions {
  std::string bind_addr = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start.
  int port = 0;
  int listen_backlog = 64;
  /// Frame payload bound for this server (≤ kMaxFramePayload).
  uint32_t max_frame_bytes = kMaxFramePayload;
  /// Slow-loris guard: a connection that is mid-handshake or mid-frame and
  /// makes no progress for this long is torn down; a data connection whose
  /// socket is silent this long is closed (shard → Close, watermark
  /// releases). Unit: ms. <= 0 disables the guard.
  int idle_timeout_ms = 30'000;
  /// Per-subscriber outbox bound; a subscriber that falls further behind
  /// than this is disconnected (results are fan-out copies — back-pressure
  /// must never reach the engine's result stage). Unit: bytes.
  size_t subscriber_buffer_bytes = size_t{64} << 20;
  /// Template for the per-(query, input) ShardedIngress: staging ring,
  /// merge batch and reorder-buffer sizes, watermark-watchdog knobs
  /// (watchdog_nanos / watchdog_force_close — the server labels each
  /// ingress "query N input M" for the watchdog's diagnostics).
  /// num_producers / lateness / late policy / rate come from the data-plane
  /// handshake.
  ingest::IngressOptions ingress;
  /// Producer reconnect grace window. 0 (the default) keeps the historical
  /// contract: a data-plane disconnect closes the shard and the watermark
  /// releases without it. > 0 *parks* the shard instead — the producer stays
  /// open (holding the watermark, so no data is sealed past the gap) for up
  /// to this long, and a client reconnecting with the shard's resume token
  /// rebinds and resumes from the acked byte sequence the kHelloOk reports.
  /// A park that outlives the grace window degrades to the clean close.
  /// Unit: ms.
  int reconnect_grace_ms = 0;
};

/// Monotone counters (racy snapshot; see stats()).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t control_connections = 0;
  int64_t data_connections = 0;
  int64_t protocol_errors = 0;
  int64_t queries_submitted = 0;
  int64_t queries_removed = 0;
  int64_t tuple_frames = 0;
  int64_t tuple_bytes = 0;
  int64_t result_batches = 0;
  int64_t subscriber_overflows = 0;
  int64_t timeouts = 0;
  /// Data-plane shards parked on disconnect (reconnect_grace_ms > 0).
  int64_t shards_parked = 0;
  /// Parked shards reclaimed by a resume-token reconnect.
  int64_t producer_reconnects = 0;
  /// Parked shards whose grace window expired (degraded to a clean close).
  int64_t grace_expiries = 0;
  /// Watermark-watchdog detections across every ingress this server owns
  /// (live queries plus already-removed ones).
  int64_t watermark_watchdog_trips = 0;
};

class SaberServer {
 public:
  /// `engine` must outlive the server and should already be Started (a
  /// pre-Start engine admits queries but queues their data). The catalog
  /// maps stream names usable in SQL to their schemas.
  SaberServer(Engine* engine, sql::Catalog catalog, ServerOptions options = {});
  ~SaberServer();

  SaberServer(const SaberServer&) = delete;
  SaberServer& operator=(const SaberServer&) = delete;

  /// Binds, listens and starts the event loop. IOError if the bind fails.
  Status Start();

  /// Idempotent. Wakes and joins every connection thread and the event
  /// loop; abandons staged-but-unmerged tuples (like ShardedIngress::Stop).
  /// Call before Engine::Stop (see file comment).
  void Stop();

  /// The bound port (valid after Start; useful with port 0).
  int port() const { return port_; }

  ServerStats stats() const;
  /// Queries currently registered with this server.
  size_t num_queries() const;

 private:
  struct Conn;
  struct DataConn;
  struct InputFront;
  struct QueryEntry;

  void EventLoop();
  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Conn>& c);
  /// Parses and dispatches every complete frame in c->rbuf. Returns false
  /// when the connection must close (protocol violation or handoff).
  bool DrainReadBuffer(const std::shared_ptr<Conn>& c);
  /// One control/handshake frame. Returns false to close the connection.
  bool ProcessFrame(const std::shared_ptr<Conn>& c, FrameType type,
                    const uint8_t* payload, size_t len);
  void HandleSubmit(const std::shared_ptr<Conn>& c, const uint8_t* payload,
                    size_t len);
  void HandleRemove(const std::shared_ptr<Conn>& c, uint32_t query_id);
  void HandleDrain(const std::shared_ptr<Conn>& c, uint32_t query_id);
  void HandleSubscribe(const std::shared_ptr<Conn>& c, uint32_t query_id);
  /// kHelloData: validate, bind the producer shard, hand the socket to a
  /// dedicated reader thread (with any pipelined bytes in `carry`).
  Status StartDataConn(const std::shared_ptr<Conn>& c, const DataHello& hello,
                       std::vector<uint8_t> carry);
  void DataLoop(std::shared_ptr<QueryEntry> entry, DataConn* dc);

  void EnqueueFrame(Conn& c, FrameType type, const void* payload, size_t len);
  void EnqueueError(Conn& c, const Status& status);
  /// Non-blocking write of c's outbox; arms EPOLLOUT on a partial write.
  /// Returns false when the connection errored and must close.
  bool FlushConn(Conn& c);
  void CloseConn(int fd);
  void SweepIdle(int64_t now_nanos);
  /// Closes parked shards whose reconnect grace window expired. Runs on the
  /// dedicated sweeper thread, NOT the event loop — a blocking Drain/Remove
  /// command on the loop must not stall grace expiry (the Drain itself may
  /// be waiting on the expiry). The close runs on a reaper thread (it can
  /// block on staging back-pressure) joined with the data-plane readers.
  void SweepParkedShards(int64_t now_nanos);
  /// The sweeper thread body: ticks SweepParkedShards until Stop.
  void ParkSweeperLoop();
  void WakeLoop();
  /// Joins every data-connection thread of `e` exactly once (guarded).
  void ReapDataConns(QueryEntry& e);
  void EndSubscriptions(QueryEntry& e);
  /// Tears down e's data plane and removes the query from the engine.
  Status RemoveEntry(const std::shared_ptr<QueryEntry>& e);

  Engine* const engine_;
  const sql::Catalog catalog_;
  const ServerOptions options_;

  Socket listener_;
  int port_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_;
  /// Grace-window sweeper (started only when reconnect_grace_ms > 0).
  std::thread park_sweeper_;
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  /// Control-plane connections; epoll-thread-owned (sink threads reach
  /// individual Conns through QueryEntry::subscribers weak_ptrs and touch
  /// only the mutex-guarded write side).
  std::map<int, std::shared_ptr<Conn>> conns_;

  mutable std::mutex queries_mu_;
  std::map<uint32_t, std::shared_ptr<QueryEntry>> queries_;
  uint32_t next_query_id_ = 1;
  /// Resume-token source (mixed so tokens are distinctive; never 0).
  std::atomic<uint64_t> next_token_{1};

  struct Counters;
  std::unique_ptr<Counters> counters_;
};

}  // namespace saber::net
