#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "net/socket.h"
#include "obs/metrics.h"

/// \file http_metrics.h
/// A deliberately minimal HTTP/1.x responder that serves the Prometheus
/// text exposition of one `obs::MetricsRegistry` — the `saber_server
/// --metrics-port` endpoint. It reuses the src/net/socket wrappers and
/// nothing else: one accept thread, connections served sequentially (a
/// scrape is tiny and low-rate by design), every response
/// `Connection: close`.
///
///   GET /metrics  → 200, Content-Type text/plain; version=0.0.4
///   GET /healthz  → 200 "ok"
///   anything else → 404 (or 405 for non-GET methods)
///
/// Robustness over features: the request read is bounded (8 KiB) and
/// deadlined (SO_RCVTIMEO), so a slow or hostile client stalls one scrape,
/// never the process; request bodies, keep-alive, and chunked encoding are
/// intentionally unsupported.

namespace saber::net {

class HttpMetricsServer {
 public:
  /// `registry` must outlive the server.
  HttpMetricsServer(const obs::MetricsRegistry* registry,
                    std::string bind_addr = "127.0.0.1");
  ~HttpMetricsServer();

  HttpMetricsServer(const HttpMetricsServer&) = delete;
  HttpMetricsServer& operator=(const HttpMetricsServer&) = delete;

  /// Binds `port` (0 picks an ephemeral port; read it back with port())
  /// and starts the accept loop. IOError if the bind fails.
  Status Start(int port);
  /// Idempotent; joins the accept loop.
  void Stop();

  int port() const { return port_; }
  /// Scrapes served (any path, any status); for tests and the summary.
  int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeOne(Socket conn);

  const obs::MetricsRegistry* const registry_;
  const std::string bind_addr_;
  Socket listener_;
  int port_ = -1;
  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_{0};
};

}  // namespace saber::net
