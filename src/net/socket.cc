#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "runtime/strcat.h"

namespace saber::net {

namespace {

std::string Errno(const char* what) {
  return StrCat(what, ": ", std::strerror(errno), " (errno ", errno, ")");
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Socket::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

namespace {

/// Bounded connect: non-blocking connect + poll(POLLOUT), then SO_ERROR to
/// recover the real connect(2) verdict. Restores blocking mode on success.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addrlen,
                          int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(Errno("fcntl(O_NONBLOCK)"));
  }
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS) return Status::Unavailable(Errno("connect"));
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0) {
      return Status::Unavailable(
          StrCat("connect timed out after ", timeout_ms, " ms"));
    }
    if (pr < 0) return Status::IOError(Errno("poll"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Status::IOError(Errno("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      errno = err;
      return Status::Unavailable(Errno("connect"));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::IOError(Errno("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

}  // namespace

Result<Socket> Dial(const std::string& host, int port,
                    int connect_timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = StrCat(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable(
        StrCat("resolve '", host, "': ", gai_strerror(rc)));
  }
  Status last = Status::Unavailable(StrCat("no address for '", host, "'"));
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Socket s(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!s.valid()) {
      last = Status::IOError(Errno("socket"));
      continue;
    }
    if (connect_timeout_ms > 0) {
      const Status ts = ConnectWithTimeout(s.fd(), ai->ai_addr, ai->ai_addrlen,
                                           connect_timeout_ms);
      if (ts.ok()) {
        ::freeaddrinfo(res);
        return s;
      }
      last = ts;
      continue;
    }
    if (::connect(s.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return s;
    }
    last = Status::Unavailable(Errno("connect"));
  }
  ::freeaddrinfo(res);
  return last;
}

Result<Socket> ListenOn(const std::string& bind_addr, int port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Status::IOError(Errno("socket"));
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("bind address '", bind_addr, "' is not a numeric IPv4 address"));
  }
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(Errno("bind"));
  }
  if (::listen(s.fd(), backlog) != 0) {
    return Status::IOError(Errno("listen"));
  }
  return s;
}

Result<int> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IOError(Errno("getsockname"));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Status SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::IOError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return Status::OK();
}

Status ReadFull(int fd, void* buf, size_t len) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::IOError(
          StrCat("connection closed mid-message (", got, " of ", len,
                 " bytes)"));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable(
          StrCat("receive timed out (", got, " of ", len, " bytes)"));
    }
    return Status::IOError(Errno("recv"));
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(Errno("send"));
  }
  return Status::OK();
}

Status SendFrame(int fd, FrameType type, const void* payload, size_t len) {
  SABER_CHECK(len <= kMaxFramePayload);
  // One write per frame: header + payload in a single buffer so a short
  // scheduling window never interleaves two threads' frames... the server
  // serializes writers per connection anyway, but the client library is
  // allowed to send from its caller's thread.
  std::vector<uint8_t> buf(kFrameHeaderBytes + len);
  FrameHeader h;
  h.payload_len = static_cast<uint32_t>(len);
  h.type = type;
  EncodeFrameHeader(h, buf.data());
  if (len > 0) std::memcpy(buf.data() + kFrameHeaderBytes, payload, len);
  return WriteFull(fd, buf.data(), buf.size());
}

Result<FrameHeader> RecvFrame(int fd, uint32_t max_payload,
                              std::vector<uint8_t>* payload) {
  uint8_t header[kFrameHeaderBytes];
  SABER_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header)));
  auto h = DecodeFrameHeader(header, max_payload);
  if (!h.ok()) return h.status();
  payload->resize(h.value().payload_len);
  if (h.value().payload_len > 0) {
    SABER_RETURN_NOT_OK(ReadFull(fd, payload->data(), payload->size()));
  }
  return h;
}

}  // namespace saber::net
