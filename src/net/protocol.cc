#include "net/protocol.h"

#include "runtime/strcat.h"

namespace saber::net {

const char* FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kHelloControl: return "kHelloControl";
    case FrameType::kHelloData: return "kHelloData";
    case FrameType::kHelloOk: return "kHelloOk";
    case FrameType::kSubmit: return "kSubmit";
    case FrameType::kQueryInfo: return "kQueryInfo";
    case FrameType::kRemove: return "kRemove";
    case FrameType::kDrain: return "kDrain";
    case FrameType::kOk: return "kOk";
    case FrameType::kSubscribe: return "kSubscribe";
    case FrameType::kResultBatch: return "kResultBatch";
    case FrameType::kSubscribeEnd: return "kSubscribeEnd";
    case FrameType::kTuples: return "kTuples";
    case FrameType::kDataEnd: return "kDataEnd";
    case FrameType::kDataEndOk: return "kDataEndOk";
    case FrameType::kError: return "kError";
  }
  return "kUnknown";
}

bool IsKnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHelloControl) &&
         t <= static_cast<uint8_t>(FrameType::kError);
}

void EncodeFrameHeader(const FrameHeader& h, uint8_t* out) {
  std::memcpy(out, &h.payload_len, 4);
  out[4] = static_cast<uint8_t>(h.type);
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* in, uint32_t max_payload) {
  FrameHeader h;
  std::memcpy(&h.payload_len, in, 4);
  const uint8_t type = in[4];
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument(
        StrCat("unknown frame type ", static_cast<int>(type)));
  }
  h.type = static_cast<FrameType>(type);
  if (h.payload_len > max_payload) {
    return Status::InvalidArgument(StrCat("frame payload of ", h.payload_len,
                                          " bytes exceeds the ", max_payload,
                                          "-byte limit"));
  }
  return h;
}

bool WireReader::ReadString(std::string* v) {
  uint32_t n = 0;
  if (!ReadU32(&n)) return false;
  if (remaining() < n) return false;
  v->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

std::vector<uint8_t> EncodeDataHello(const DataHello& h) {
  WireWriter w;
  w.U32(h.version);
  w.U32(h.query_id);
  w.U16(h.input);
  w.U16(h.producer);
  w.U16(h.num_producers);
  w.U32(h.tuple_size);
  w.I64(h.allowed_lateness);
  w.U8(h.late_policy);
  w.F64(h.rate_bytes_per_sec);
  w.U64(h.resume_token);
  return w.Take();
}

Result<DataHello> DecodeDataHello(const uint8_t* payload, size_t len) {
  WireReader r(payload, len);
  DataHello h;
  if (!r.ReadU32(&h.version) || !r.ReadU32(&h.query_id) ||
      !r.ReadU16(&h.input) || !r.ReadU16(&h.producer) ||
      !r.ReadU16(&h.num_producers) || !r.ReadU32(&h.tuple_size) ||
      !r.ReadI64(&h.allowed_lateness) || !r.ReadU8(&h.late_policy) ||
      !r.ReadF64(&h.rate_bytes_per_sec)) {
    return Status::InvalidArgument("truncated kHelloData payload");
  }
  // Optional trailing resume token (absent from version-1 hellos that
  // predate reconnect/resume; absence means a fresh bind).
  if (r.remaining() >= 8) (void)r.ReadU64(&h.resume_token);
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after kHelloData payload");
  }
  if (h.late_policy > static_cast<uint8_t>(ingest::LatePolicy::kDeadLetter)) {
    return Status::InvalidArgument(
        StrCat("unknown late policy ", static_cast<int>(h.late_policy)));
  }
  return h;
}

std::vector<uint8_t> EncodeQueryInfo(const QueryInfo& info) {
  WireWriter w;
  w.U32(info.query_id);
  w.U16(info.num_inputs);
  w.U32(info.input_tuple_size[0]);
  w.U32(info.input_tuple_size[1]);
  w.U32(info.output_tuple_size);
  w.String(info.name);
  w.String(info.output_schema);
  return w.Take();
}

Result<QueryInfo> DecodeQueryInfo(const uint8_t* payload, size_t len) {
  WireReader r(payload, len);
  QueryInfo info;
  if (!r.ReadU32(&info.query_id) || !r.ReadU16(&info.num_inputs) ||
      !r.ReadU32(&info.input_tuple_size[0]) ||
      !r.ReadU32(&info.input_tuple_size[1]) ||
      !r.ReadU32(&info.output_tuple_size) || !r.ReadString(&info.name) ||
      !r.ReadString(&info.output_schema)) {
    return Status::InvalidArgument("truncated kQueryInfo payload");
  }
  return info;
}

std::vector<uint8_t> EncodeError(const Status& status) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.String(status.message());
  return w.Take();
}

Status DecodeError(const uint8_t* payload, size_t len) {
  WireReader r(payload, len);
  uint8_t code = 0;
  std::string msg;
  if (!r.ReadU8(&code) || !r.ReadString(&msg)) {
    return Status::Internal("malformed kError payload");
  }
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kIOError)) {
    return Status::Internal(StrCat("kError with unknown code ",
                                   static_cast<int>(code), ": ", msg));
  }
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kInvalidArgument: return Status::InvalidArgument(msg);
    case StatusCode::kOutOfRange: return Status::OutOfRange(msg);
    case StatusCode::kResourceExhausted: return Status::ResourceExhausted(msg);
    case StatusCode::kNotFound: return Status::NotFound(msg);
    case StatusCode::kAlreadyExists: return Status::AlreadyExists(msg);
    case StatusCode::kUnavailable: return Status::Unavailable(msg);
    case StatusCode::kInternal: return Status::Internal(msg);
    case StatusCode::kNotImplemented: return Status::NotImplemented(msg);
    case StatusCode::kIOError: return Status::IOError(msg);
    default: return Status::Internal(msg);
  }
}

}  // namespace saber::net
