#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/operator.h"
#include "runtime/blocking_queue.h"
#include "runtime/byte_buffer.h"
#include "runtime/clock.h"

/// \file sim_device.h
/// The simulated GPGPU device — our substitute for the paper's NVIDIA Quadro
/// K5200 + OpenCL stack (see DESIGN.md, "Hardware substitution"). It
/// reproduces the three properties SABER's design depends on:
///
///  1. *Throughput-oriented execution*: kernels are compiled, type-
///     specialized tight loops (expression_compiler.h) dispatched over
///     work-groups onto a pool of executor threads (the "SMs"), in contrast
///     to the interpreted row-at-a-time CPU operator path.
///  2. *PCIe-bounded data movement*: every movein/moveout transfer is paced
///     to `dma_latency + bytes / pcie_bandwidth` of wall-clock time
///     (defaults: 10 us latency [43], 8 GB/s effective bandwidth, §2.2).
///  3. *Five-stage pipelining* (§5.2, Fig. 6): dedicated threads run
///     copyin → movein → execute → moveout → copyout with per-stage FIFOs
///     and a fixed set of in-flight job slots, so DMA transfers of task i±1
///     overlap the kernel execution of task i.
///
/// Determinism note: work-groups may be executed by any executor thread, but
/// every kernel writes to per-group output slots that are concatenated in
/// group order, and per-fragment aggregation is sequential within the
/// fragment — so device output is bit-identical to the CPU operators, which
/// the property tests rely on. The paper's intra-fragment reduction tree is
/// represented by the cost model rather than by reordered floating-point
/// arithmetic.

namespace saber {

struct SimDeviceOptions {
  /// Number of executor threads standing in for streaming multiprocessors.
  int num_executors = 4;
  /// Effective PCIe bandwidth per direction, bytes/second (§2.2: PCIe 3.0
  /// x16 ~ 8 GB/s).
  double pcie_bandwidth = 8.0 * 1024 * 1024 * 1024;
  /// DMA initiation latency per transfer ([43]: ~10 us).
  int64_t dma_latency_nanos = 10 * 1000;
  /// Fixed kernel launch overhead.
  int64_t launch_overhead_nanos = 5 * 1000;
  /// In-flight job slots (Fig. 6 shows 4 rotating buffers).
  size_t pipeline_depth = 4;
  /// Disable wall-clock pacing (unit tests).
  bool pace_transfers = true;
};

/// One query task travelling through the pipeline. Slots are pooled and
/// recycled (§5.1 object pooling); buffers keep their capacity across uses.
struct GpuJob {
  int64_t task_id = 0;

  // Filled at submit time. Joins ship four spans: both batches plus both
  // window histories (§4.1: the free pointer keeps them alive on the host).
  SpanPair host_input[4];
  size_t input_bytes[4] = {0, 0, 0, 0};
  int num_spans = 1;
  /// Device-side computation: reads device_in, writes device_out and
  /// metadata. Runs on the execute stage; may use SimDevice::ParallelFor.
  std::function<void(class SimDevice&, GpuJob&)> kernel;
  /// Where to deliver results (host heap).
  TaskResult* result = nullptr;
  std::function<void(GpuJob*)> on_complete;

  // Pipeline buffers (capacities persist across reuse).
  ByteBuffer pinned_in;    // host pinned memory (copyin target)
  ByteBuffer device_in;    // device global memory (movein target)
  ByteBuffer device_out;   // kernel output payload: [complete][partials]
  ByteBuffer device_scratch;  // per-group staging
  ByteBuffer pinned_out;   // moveout target

  // Kernel-produced metadata describing device_out.
  size_t complete_bytes = 0;
  size_t partials_bytes = 0;
  std::vector<PaneEntry> panes;
  int64_t axis_p = 0, axis_q = 0;

  /// Set by an injected failure mode (submit rejection, kernel fault,
  /// completion timeout): the job skips the remaining pipeline work and
  /// reaches copyout with no valid payload; copyout marks the TaskResult
  /// device_failed instead of populating it.
  bool failed = false;

  void ResetForSubmit() {
    failed = false;
    pinned_in.Clear();
    device_in.Clear();
    device_out.Clear();
    device_scratch.Clear();
    pinned_out.Clear();
    panes.clear();
    complete_bytes = partials_bytes = 0;
    axis_p = axis_q = 0;
    for (size_t& b : input_bytes) b = 0;
    num_spans = 1;
    kernel = nullptr;
    result = nullptr;
    on_complete = nullptr;
  }
};

class SimDevice {
 public:
  explicit SimDevice(SimDeviceOptions options = {});
  ~SimDevice();

  SimDevice(const SimDevice&) = delete;
  SimDevice& operator=(const SimDevice&) = delete;

  const SimDeviceOptions& options() const { return options_; }

  /// Acquires a free job slot, blocking while all pipeline_depth slots are
  /// in flight (this is the pipeline's backpressure).
  GpuJob* AcquireJob();

  /// Enqueues a prepared job into the copyin stage. Under an armed
  /// gpu.submit_reject fault point the job bypasses the pipeline and is
  /// delivered straight to copyout as failed (on_complete still runs, with
  /// the TaskResult marked device_failed).
  void Submit(GpuJob* job);

  /// Returns a slot to the pool after on_complete has consumed the result.
  void ReleaseJob(GpuJob* job);

  /// Work-group dispatch for kernels: invokes fn(group, executor_thread) for
  /// group in [0, n), spread across the executor pool. Called from the
  /// execute stage only. Deterministic outputs require per-group slots.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  struct Stats {
    std::atomic<int64_t> jobs{0};
    /// Jobs that reached copyout in the failed state (injected faults).
    std::atomic<int64_t> jobs_failed{0};
    /// Failed jobs that never entered the pipeline (gpu.submit_reject).
    std::atomic<int64_t> submit_rejects{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> bytes_out{0};
    std::atomic<int64_t> copyin_nanos{0};
    std::atomic<int64_t> movein_nanos{0};
    std::atomic<int64_t> execute_nanos{0};
    std::atomic<int64_t> moveout_nanos{0};
    std::atomic<int64_t> copyout_nanos{0};
  };
  const Stats& stats() const { return stats_; }

  /// Modeled transfer duration for `bytes` over the PCIe bus.
  int64_t TransferNanos(size_t bytes) const {
    return options_.dma_latency_nanos +
           static_cast<int64_t>(static_cast<double>(bytes) /
                                options_.pcie_bandwidth * 1e9);
  }

 private:
  void CopyinLoop();
  void MoveinLoop();
  void ExecuteLoop();
  void MoveoutLoop();
  void CopyoutLoop();
  void ExecutorLoop(size_t thread_index);

  SimDeviceOptions options_;
  Stats stats_;

  // Job slot pool.
  std::vector<std::unique_ptr<GpuJob>> slots_;
  BlockingQueue<GpuJob*> free_slots_;

  // Stage FIFOs (§5.2: per-stage sequential execution across tasks).
  BlockingQueue<GpuJob*> to_copyin_;
  BlockingQueue<GpuJob*> to_movein_;
  BlockingQueue<GpuJob*> to_execute_;
  BlockingQueue<GpuJob*> to_moveout_;
  BlockingQueue<GpuJob*> to_copyout_;

  // Work-group dispatch state. The Launch object is shared-ptr owned so a
  // straggling executor that observed the launch late can still safely read
  // the (exhausted) index counter after the dispatch thread has moved on.
  struct Launch {
    const std::function<void(size_t, size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    size_t n = 0;
    std::atomic<size_t> done{0};
  };
  std::mutex launch_mu_;
  std::condition_variable launch_cv_;
  std::shared_ptr<Launch> launch_;  // guarded by launch_mu_ for handoff
  std::atomic<bool> stopping_{false};

  std::vector<std::thread> stage_threads_;
  std::vector<std::thread> executors_;
};

}  // namespace saber
