#include "gpu/sim_device.h"

#include <cstring>

#include "fault/fault_registry.h"

namespace saber {

SimDevice::SimDevice(SimDeviceOptions options)
    : options_(options),
      free_slots_(0),
      to_copyin_(0),
      to_movein_(0),
      to_execute_(0),
      to_moveout_(0),
      to_copyout_(0) {
  SABER_CHECK(options_.pipeline_depth >= 1);
  SABER_CHECK(options_.num_executors >= 1);
  for (size_t i = 0; i < options_.pipeline_depth; ++i) {
    slots_.push_back(std::make_unique<GpuJob>());
    free_slots_.Push(slots_.back().get());
  }
  // Five dedicated stage threads (§5.2): two CPU-side copy threads, two DMA
  // threads, one kernel-dispatch thread.
  stage_threads_.emplace_back([this] { CopyinLoop(); });
  stage_threads_.emplace_back([this] { MoveinLoop(); });
  stage_threads_.emplace_back([this] { ExecuteLoop(); });
  stage_threads_.emplace_back([this] { MoveoutLoop(); });
  stage_threads_.emplace_back([this] { CopyoutLoop(); });
  // Executor pool ("SMs") serving ParallelFor work groups.
  for (int i = 0; i < options_.num_executors; ++i) {
    executors_.emplace_back([this, i] { ExecutorLoop(static_cast<size_t>(i)); });
  }
}

SimDevice::~SimDevice() {
  stopping_.store(true);
  to_copyin_.Close();
  to_movein_.Close();
  to_execute_.Close();
  to_moveout_.Close();
  to_copyout_.Close();
  free_slots_.Close();
  {
    std::lock_guard<std::mutex> lock(launch_mu_);
    launch_cv_.notify_all();
  }
  for (auto& t : stage_threads_) t.join();
  for (auto& t : executors_) t.join();
}

GpuJob* SimDevice::AcquireJob() {
  auto slot = free_slots_.Pop();
  SABER_CHECK(slot.has_value());
  (*slot)->ResetForSubmit();
  return *slot;
}

void SimDevice::Submit(GpuJob* job) {
  if (SABER_FAULT_POINT("gpu.submit_reject")) {
    // The device refuses the job at the submission boundary: skip the
    // pipeline entirely and deliver the failure through the normal copyout
    // completion path, so callers need no second error channel.
    job->failed = true;
    stats_.submit_rejects.fetch_add(1, std::memory_order_relaxed);
    to_copyout_.Push(job);
    return;
  }
  to_copyin_.Push(job);
}

void SimDevice::ReleaseJob(GpuJob* job) { free_slots_.Push(job); }

// --------------------------------------------------------------------------
// Stage 1 — copyin: host heap (circular input buffers) -> pinned memory.
// Linearizes possibly-wrapped spans; runs on a CPU-side thread.
// --------------------------------------------------------------------------
void SimDevice::CopyinLoop() {
  for (;;) {
    auto job = to_copyin_.Pop();
    if (!job.has_value()) return;
    GpuJob& j = **job;
    const int64_t t0 = NowNanos();
    size_t total = 0;
    for (int i = 0; i < j.num_spans; ++i) total += j.host_input[i].total();
    j.pinned_in.Resize(total);
    size_t off = 0;
    for (int i = 0; i < j.num_spans; ++i) {
      const SpanPair& sp = j.host_input[i];
      if (sp.len1 > 0) std::memcpy(j.pinned_in.data() + off, sp.seg1, sp.len1);
      off += sp.len1;
      if (sp.len2 > 0) {
        std::memcpy(j.pinned_in.data() + off, sp.seg2, sp.len2);
        off += sp.len2;
      }
    }
    stats_.copyin_nanos.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
    to_movein_.Push(*job);
  }
}

// --------------------------------------------------------------------------
// Stage 2 — movein: pinned memory -> device global memory over the modeled
// PCIe bus. The DMA thread paces each transfer to its modeled duration, so
// sustained throughput is capped at pcie_bandwidth per direction.
// --------------------------------------------------------------------------
void SimDevice::MoveinLoop() {
  for (;;) {
    auto job = to_movein_.Pop();
    if (!job.has_value()) return;
    GpuJob& j = **job;
    const int64_t t0 = NowNanos();
    j.device_in.Resize(j.pinned_in.size());
    if (j.pinned_in.size() > 0) {
      std::memcpy(j.device_in.data(), j.pinned_in.data(), j.pinned_in.size());
    }
    if (options_.pace_transfers) {
      PaceNanos(t0, TransferNanos(j.pinned_in.size()));
    }
    stats_.bytes_in.fetch_add(static_cast<int64_t>(j.pinned_in.size()),
                              std::memory_order_relaxed);
    stats_.movein_nanos.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
    to_execute_.Push(*job);
  }
}

// --------------------------------------------------------------------------
// Stage 3 — execute: launch the kernel over device memory. The dispatch
// thread models launch overhead and coordinates work groups on the executor
// pool via ParallelFor.
// --------------------------------------------------------------------------
void SimDevice::ExecuteLoop() {
  for (;;) {
    auto job = to_execute_.Pop();
    if (!job.has_value()) return;
    GpuJob& j = **job;
    const int64_t t0 = NowNanos();
    if (SABER_FAULT_POINT("gpu.kernel_fault")) {
      // Kernel dies mid-execution: no output metadata is produced; the job
      // rides the remaining stages in the failed state.
      j.failed = true;
    } else {
      j.kernel(*this, j);
    }
    if (options_.pace_transfers) {
      PaceNanos(t0, options_.launch_overhead_nanos);
    }
    stats_.execute_nanos.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
    to_moveout_.Push(*job);
  }
}

// --------------------------------------------------------------------------
// Stage 4 — moveout: device global memory -> pinned memory (paced DMA).
// --------------------------------------------------------------------------
void SimDevice::MoveoutLoop() {
  for (;;) {
    auto job = to_moveout_.Pop();
    if (!job.has_value()) return;
    GpuJob& j = **job;
    if (SABER_FAULT_POINT("gpu.completion_timeout")) {
      // The result transfer times out: the device gives up on moving the
      // payload back and surfaces the job as failed.
      j.failed = true;
    }
    if (j.failed) {
      to_copyout_.Push(*job);
      continue;
    }
    const int64_t t0 = NowNanos();
    const size_t payload = j.complete_bytes + j.partials_bytes;
    j.pinned_out.Resize(payload);
    if (payload > 0) {
      std::memcpy(j.pinned_out.data(), j.device_out.data(), payload);
    }
    if (options_.pace_transfers) {
      PaceNanos(t0, TransferNanos(payload + j.panes.size() * sizeof(PaneEntry)));
    }
    stats_.bytes_out.fetch_add(static_cast<int64_t>(payload),
                               std::memory_order_relaxed);
    stats_.moveout_nanos.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
    to_copyout_.Push(*job);
  }
}

// --------------------------------------------------------------------------
// Stage 5 — copyout: pinned memory -> host heap TaskResult, then completion.
// --------------------------------------------------------------------------
void SimDevice::CopyoutLoop() {
  for (;;) {
    auto job = to_copyout_.Pop();
    if (!job.has_value()) return;
    GpuJob& j = **job;
    const int64_t t0 = NowNanos();
    TaskResult* r = j.result;
    if (j.failed) {
      // No payload to copy out; tell the submitter the device failed the
      // task so it can retry elsewhere.
      if (r != nullptr) r->device_failed = true;
      stats_.jobs_failed.fetch_add(1, std::memory_order_relaxed);
    } else {
      r->complete.Clear();
      r->partials.Clear();
      r->complete.Append(j.pinned_out.data(), j.complete_bytes);
      r->partials.Append(j.pinned_out.data() + j.complete_bytes,
                         j.partials_bytes);
      r->panes = j.panes;
      r->axis_p = j.axis_p;
      r->axis_q = j.axis_q;
      stats_.jobs.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.copyout_nanos.fetch_add(NowNanos() - t0, std::memory_order_relaxed);
    // Move the callback out before invoking it: on_complete conventionally
    // calls ReleaseJob, after which the slot can be re-acquired and its
    // members (including on_complete itself) overwritten by another thread
    // while this invocation is still unwinding through the member
    // std::function — a use-after-recycle race.
    std::function<void(GpuJob*)> complete = std::move(j.on_complete);
    j.on_complete = nullptr;
    if (complete) complete(*job);
  }
}

// --------------------------------------------------------------------------
// Work-group dispatch.
// --------------------------------------------------------------------------
void SimDevice::ParallelFor(size_t n,
                            const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0, 0);
    return;
  }
  auto launch = std::make_shared<Launch>();
  launch->fn = &fn;
  launch->n = n;
  {
    std::lock_guard<std::mutex> lock(launch_mu_);
    launch_ = launch;
    launch_cv_.notify_all();
  }
  // The dispatch thread participates as executor index options_.num_executors.
  const size_t self = static_cast<size_t>(options_.num_executors);
  for (;;) {
    const size_t i = launch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i, self);
    launch->done.fetch_add(1, std::memory_order_acq_rel);
  }
  while (launch->done.load(std::memory_order_acquire) < n) {
    // Groups are coarse (thousands of tuples); a brief spin is fine.
  }
  {
    std::lock_guard<std::mutex> lock(launch_mu_);
    launch_.reset();
  }
}

void SimDevice::ExecutorLoop(size_t thread_index) {
  for (;;) {
    std::shared_ptr<Launch> launch;
    {
      std::unique_lock<std::mutex> lock(launch_mu_);
      launch_cv_.wait(lock, [&] {
        return stopping_.load() ||
               (launch_ != nullptr &&
                launch_->next.load(std::memory_order_relaxed) < launch_->n);
      });
      if (stopping_.load()) return;
      launch = launch_;
    }
    if (launch == nullptr) continue;
    for (;;) {
      const size_t i = launch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= launch->n) break;
      (*launch->fn)(i, thread_index);
      launch->done.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

}  // namespace saber
