#include "gpu/gpu_operators.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <latch>

#include "cpu/fragment_assembly.h"
#include "cpu/udf_operator.h"
#include "relational/expression_compiler.h"
#include "relational/field_plan.h"
#include "relational/hash_table.h"
#include "window/window_math.h"

namespace saber {

void GpuOperatorBase::ProcessBatch(const TaskContext& ctx, TaskResult* out) const {
  std::latch done(1);
  SubmitAsync(ctx, out, [&done] { done.count_down(); });
  done.wait();
}

namespace {

// Output-row plans are shared with the CPU back end
// (relational/field_plan.h) so the populated "code template" pieces (§5.4)
// cannot drift between processors: raw column copies, the join max-ts
// stamp, and typed compiled programs (int64 lane for integral fields).

inline int64_t RawTs(const uint8_t* tuple) {
  int64_t ts;
  std::memcpy(&ts, tuple, sizeof(ts));
  return ts;
}

// ---------------------------------------------------------------------------
// Selection / projection kernel: work groups over tuple chunks, per-group
// local compaction, then a prefix-sum write into contiguous device memory
// (§5.4's scan step). Output is byte-identical to the CPU operator because
// groups are concatenated in order.
// ---------------------------------------------------------------------------

class GpuStatelessOperator final : public GpuOperatorBase {
 public:
  GpuStatelessOperator(const QueryDef* q, SimDevice* device)
      : GpuOperatorBase(q, device) {
    if (q->where != nullptr) {
      where_ = CompiledExpr::Compile(*q->where, q->input_schema[0]);
    }
    identity_ = DetectIdentity(*q);
    if (!identity_) {
      writers_ = BuildFieldPlans(q->select, q->output_schema,
                                 q->input_schema[0], nullptr, false);
    }
  }

  void SubmitAsync(const TaskContext& ctx, TaskResult* out,
                   std::function<void()> done) const override {
    GpuJob* job = device_->AcquireJob();
    job->task_id = ctx.task_id;
    job->num_spans = 1;
    job->host_input[0] = ctx.input[0].data;
    job->input_bytes[0] = ctx.input[0].data.total();
    job->axis_p = ctx.input[0].AxisP(query_->window[0]);
    job->axis_q = ctx.input[0].AxisQ(query_->window[0]);
    job->result = out;
    SimDevice* dev = device_;
    job->on_complete = [dev, done = std::move(done)](GpuJob* j) {
      dev->ReleaseJob(j);
      done();
    };
    job->kernel = [this](SimDevice& d, GpuJob& j) { Kernel(d, j); };
    device_->Submit(job);
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<ConcatAssembly*>(state)->Ingest(result, output);
  }
  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<ConcatAssembly>();
  }

 private:
  static bool DetectIdentity(const QueryDef& q) {
    if (q.select.size() != q.input_schema[0].num_fields()) return false;
    for (size_t i = 0; i < q.select.size(); ++i) {
      const auto* col = q.select[i]->kind() == Expression::Kind::kColumn
                            ? static_cast<const ColumnExpr*>(q.select[i].get())
                            : nullptr;
      if (col == nullptr || col->field() != i) return false;
    }
    return q.output_schema.tuple_size() == q.input_schema[0].tuple_size();
  }

  void Kernel(SimDevice& dev, GpuJob& j) const {
    constexpr size_t kGroupTuples = 1024;
    const size_t tsz = query_->input_schema[0].tuple_size();
    const size_t osz = identity_ ? tsz : query_->output_schema.tuple_size();
    const size_t n = j.input_bytes[0] / tsz;
    const size_t ng = (n + kGroupTuples - 1) / kGroupTuples;
    const size_t group_cap = kGroupTuples * osz;
    j.device_scratch.Resize(ng * group_cap);
    std::vector<size_t> group_bytes(ng, 0);
    const uint8_t* in = j.device_in.data();
    const bool has_where = query_->where != nullptr;

    dev.ParallelFor(ng, [&](size_t g, size_t) {
      const size_t lo = g * kGroupTuples;
      const size_t hi = std::min(n, lo + kGroupTuples);
      uint8_t* dst = j.device_scratch.data() + g * group_cap;
      size_t off = 0;
      for (size_t i = lo; i < hi; ++i) {
        const uint8_t* t = in + i * tsz;
        if (has_where && !where_.EvalBool(t)) continue;
        if (identity_) {
          std::memcpy(dst + off, t, tsz);
        } else {
          WriteRowFromPlans(writers_, t, nullptr, dst + off, osz);
        }
        off += osz;
      }
      group_bytes[g] = off;
    });

    size_t total = 0;
    for (size_t g = 0; g < ng; ++g) total += group_bytes[g];
    j.device_out.Resize(total);
    size_t off = 0;
    for (size_t g = 0; g < ng; ++g) {
      if (group_bytes[g] == 0) continue;  // memcpy(_, null, 0) is still UB
      std::memcpy(j.device_out.data() + off, j.device_scratch.data() + g * group_cap,
                  group_bytes[g]);
      off += group_bytes[g];
    }
    j.complete_bytes = total;
  }

  CompiledExpr where_;
  bool identity_;
  std::vector<FieldPlan> writers_;
};

// ---------------------------------------------------------------------------
// Aggregation kernel: one work group per pane (the window fragments of §5.4:
// "tuples that are part of the same window are assigned to the same work
// group"). Pane boundaries are computed on the CPU at submit time — the
// paper is explicit that window-boundary computation always runs on the CPU.
// Within a pane, accumulation is sequential to stay bit-identical with the
// CPU back end (DESIGN.md); across panes, groups run on all executors.
// ---------------------------------------------------------------------------

struct PaneRange {
  int64_t pane;
  uint32_t lo, hi;  // tuple index range within the batch
};

/// CPU-side window-boundary computation (§6.4: "the computation of the
/// window boundaries is always executed on the CPU"): pane ranges of one
/// stream batch. Shared by the aggregation and UDF collection kernels.
std::vector<PaneRange> ComputePaneRanges(const StreamBatch& in,
                                         const WindowDefinition& w) {
  std::vector<PaneRange> out;
  const size_t n = in.num_tuples();
  if (n == 0) return out;
  const int64_t g = w.pane_size();
  if (!w.time_based()) {
    // Pure arithmetic: pane of tuple i is (first_index + i) / g.
    int64_t pane = in.first_index / g;
    for (;;) {
      const int64_t lo_axis = std::max(pane * g, in.first_index);
      const int64_t hi_axis =
          std::min((pane + 1) * g, in.first_index + static_cast<int64_t>(n));
      if (lo_axis >= hi_axis) break;
      out.push_back(PaneRange{pane,
                              static_cast<uint32_t>(lo_axis - in.first_index),
                              static_cast<uint32_t>(hi_axis - in.first_index)});
      ++pane;
    }
    return out;
  }
  // Time axis: linear boundary scan over the serialized timestamps.
  int64_t cur_pane = -1;
  uint32_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t pane = RawTs(in.tuple(i)) / g;
    if (pane != cur_pane) {
      if (cur_pane >= 0) {
        out.push_back(PaneRange{cur_pane, start, static_cast<uint32_t>(i)});
      }
      cur_pane = pane;
      start = static_cast<uint32_t>(i);
    }
  }
  out.push_back(PaneRange{cur_pane, start, static_cast<uint32_t>(n)});
  return out;
}

/// Session-window variant of the CPU-side boundary pre-pass: maximal
/// gap-free runs of the batch, in order. `pane` carries the task-local
/// segment ordinal (there is no pane grid for data-driven windows); the
/// assembly ignores it and folds segments in emission order.
std::vector<PaneRange> ComputeSessionRanges(const StreamBatch& in,
                                            int64_t gap) {
  std::vector<PaneRange> out;
  const size_t n = in.num_tuples();
  if (n == 0) return out;
  int64_t seg = 0;
  uint32_t start = 0;
  int64_t last_ts = RawTs(in.tuple(0));
  for (size_t i = 1; i < n; ++i) {
    const int64_t ts = RawTs(in.tuple(i));
    if (!SessionExtends(last_ts, ts, gap)) {
      out.push_back(PaneRange{seg++, start, static_cast<uint32_t>(i)});
      start = static_cast<uint32_t>(i);
    }
    last_ts = ts;
  }
  out.push_back(PaneRange{seg, start, static_cast<uint32_t>(n)});
  return out;
}

class GpuAggregationOperator final : public GpuOperatorBase {
 public:
  GpuAggregationOperator(const QueryDef* q, SimDevice* device)
      : GpuOperatorBase(q, device), fmt_(PaneFormat::For(*q)) {
    if (q->where != nullptr) {
      where_ = CompiledExpr::Compile(*q->where, q->input_schema[0]);
    }
    for (const auto& a : q->aggregates) {
      agg_inputs_.push_back(
          a.input != nullptr
              ? CompiledExpr::Compile(*a.input, q->input_schema[0])
              : CompiledExpr());
    }
    for (const auto& k : q->group_by) {
      key_progs_.push_back(CompiledExpr::Compile(*k, q->input_schema[0]));
    }
    // Per-executor hash tables (pooled, §5.3).
    const size_t pool = static_cast<size_t>(device->options().num_executors) + 2;
    for (size_t i = 0; i < pool; ++i) {
      tables_.push_back(fmt_.grouped()
                            ? std::make_unique<GroupHashTable>(fmt_.key_size,
                                                               fmt_.num_aggs, 1024)
                            : nullptr);
    }
  }

  void SubmitAsync(const TaskContext& ctx, TaskResult* out,
                   std::function<void()> done) const override {
    const StreamBatch& in = ctx.input[0];
    const WindowDefinition& w = query_->window[0];
    GpuJob* job = device_->AcquireJob();
    job->task_id = ctx.task_id;
    job->num_spans = 1;
    job->host_input[0] = in.data;
    job->input_bytes[0] = in.data.total();
    job->axis_p = in.AxisP(w);
    job->axis_q = in.AxisQ(w);
    job->result = out;
    SimDevice* dev = device_;
    job->on_complete = [dev, done = std::move(done)](GpuJob* j) {
      dev->ReleaseJob(j);
      done();
    };
    // CPU-side window-boundary computation (§6.4). Session windows have no
    // pane grid: the pre-pass instead splits the batch into maximal
    // gap-free segments.
    std::vector<PaneRange> ranges = w.session()
                                        ? ComputeSessionRanges(in, w.gap())
                                        : ComputePaneRanges(in, w);
    job->kernel = [this, ranges = std::move(ranges)](SimDevice& d, GpuJob& j) {
      Kernel(d, j, ranges);
    };
    device_->Submit(job);
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<AggregationAssembly*>(state)->Ingest(result, output);
  }
  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<AggregationAssembly>(*query_);
  }

 private:
  void Kernel(SimDevice& dev, GpuJob& j,
              const std::vector<PaneRange>& ranges) const {
    const size_t tsz = query_->input_schema[0].tuple_size();
    const size_t na = fmt_.num_aggs;
    const size_t np = ranges.size();
    const uint8_t* in = j.device_in.data();
    const bool has_where = query_->where != nullptr;
    const bool session = query_->window[0].session();

    if (!fmt_.grouped()) {
      // Session segments carry a [first_ts][last_ts] header instead of the
      // pane partial's single max_ts; the accumulation body is identical.
      const size_t slot =
          session ? fmt_.session_ungrouped_bytes() : fmt_.ungrouped_bytes();
      j.device_scratch.Resize(np * slot);
      dev.ParallelFor(np, [&](size_t p, size_t) {
        const PaneRange& r = ranges[p];
        uint8_t* dst = j.device_scratch.data() + p * slot;
        AggState acc[kMaxAggregatesPerQuery];
        SABER_CHECK(na <= kMaxAggregatesPerQuery);
        for (size_t a = 0; a < na; ++a) AggInit(&acc[a]);
        int64_t max_ts = 0;
        for (uint32_t i = r.lo; i < r.hi; ++i) {
          const uint8_t* t = in + i * tsz;
          max_ts = RawTs(t);
          if (has_where && !where_.EvalBool(t)) continue;
          for (size_t a = 0; a < na; ++a) {
            const double v =
                agg_inputs_[a].empty() ? 0.0 : agg_inputs_[a].EvalDouble(t);
            AggAdd(&acc[a], v);
          }
        }
        if (session) {
          const int64_t first_ts = RawTs(in + r.lo * tsz);
          std::memcpy(dst, &first_ts, sizeof(first_ts));
          std::memcpy(dst + 8, &max_ts, sizeof(max_ts));
          std::memcpy(dst + 16, acc, na * sizeof(AggState));
        } else {
          std::memcpy(dst, &max_ts, sizeof(max_ts));
          std::memcpy(dst + 8, acc, na * sizeof(AggState));
        }
      });
      // Every pane has raw tuples by construction: ship them all, in order.
      j.device_out.Resize(np * slot);
      std::memcpy(j.device_out.data(), j.device_scratch.data(), np * slot);
      j.partials_bytes = np * slot;
      for (size_t p = 0; p < np; ++p) {
        j.panes.push_back(PaneEntry{ranges[p].pane,
                                    static_cast<uint32_t>(p * slot),
                                    static_cast<uint32_t>(slot)});
      }
      return;
    }

    // Grouped: per-pane hash table (same layout and hash as the CPU, §5.4),
    // serialized per pane and concatenated in pane order. Session segments
    // prepend a [first_ts][last_ts] header — present even when every tuple
    // was filtered out, because the session's extent is defined by raw
    // tuples (cpu/fragment_assembly.h).
    std::vector<ByteBuffer> pane_out(np);
    const size_t nk = key_progs_.size();
    dev.ParallelFor(np, [&](size_t p, size_t thread) {
      const PaneRange& r = ranges[p];
      GroupHashTable* table = tables_[thread % tables_.size()].get();
      table->Clear();
      if (session) {
        const int64_t first_ts = RawTs(in + r.lo * tsz);
        const int64_t last_ts = RawTs(in + (r.hi - 1) * tsz);
        pane_out[p].AppendValue<int64_t>(first_ts);
        pane_out[p].AppendValue<int64_t>(last_ts);
      }
      uint8_t key[kMaxGroupKeyBytes];
      for (uint32_t i = r.lo; i < r.hi; ++i) {
        const uint8_t* t = in + i * tsz;
        if (has_where && !where_.EvalBool(t)) continue;
        for (size_t k = 0; k < nk; ++k) {
          // EvalInt64 keeps 64-bit keys exact (the typed int64 lane); the
          // CPU operator computes the same key bytes, which §5.4 requires
          // for cross-processor hash-table compatibility.
          const int64_t kv = key_progs_[k].EvalInt64(t);
          std::memcpy(key + k * 8, &kv, sizeof(kv));
        }
        if (table->NeedsGrow()) table->Grow();
        AggState* aggs = table->Upsert(key, static_cast<int32_t>(i), RawTs(t));
        if (aggs == nullptr) {
          table->Grow();
          aggs = table->Upsert(key, static_cast<int32_t>(i), RawTs(t));
          SABER_CHECK(aggs != nullptr);
        }
        for (size_t a = 0; a < na; ++a) {
          const double v =
              agg_inputs_[a].empty() ? 0.0 : agg_inputs_[a].EvalDouble(t);
          AggAdd(&aggs[a], v);
        }
      }
      if (table->size() > 0) table->SerializeTo(&pane_out[p]);
    });
    size_t total = 0;
    for (const auto& b : pane_out) total += b.size();
    j.device_out.Resize(total);
    size_t off = 0;
    for (size_t p = 0; p < np; ++p) {
      if (pane_out[p].empty()) continue;
      std::memcpy(j.device_out.data() + off, pane_out[p].data(), pane_out[p].size());
      j.panes.push_back(PaneEntry{ranges[p].pane, static_cast<uint32_t>(off),
                                  static_cast<uint32_t>(pane_out[p].size())});
      off += pane_out[p].size();
    }
    j.partials_bytes = total;
  }

  PaneFormat fmt_;
  CompiledExpr where_;
  std::vector<CompiledExpr> agg_inputs_;
  std::vector<CompiledExpr> key_progs_;
  mutable std::vector<std::unique_ptr<GroupHashTable>> tables_;
};

// ---------------------------------------------------------------------------
// θ-join kernel: two-pass count + compact (§5.4 "the number of tuples that
// match the join predicate is counted and the results are compressed in the
// global GPGPU memory"). The merged element order and per-element partner
// scan ranges — the window-boundary work — are computed on the CPU at submit
// time; this CPU-side pre-pass is what caps GPGPU join throughput at large
// task sizes (§6.4, Fig. 12c).
// ---------------------------------------------------------------------------

struct JoinElem {
  uint8_t side;       // 0 = element from the left batch
  uint32_t idx;       // index within its batch
  uint32_t scan_lo;   // partner scan range within [opp_hist ++ opp_batch]
  uint32_t scan_hi;
};

class GpuJoinOperator final : public GpuOperatorBase {
 public:
  GpuJoinOperator(const QueryDef* q, SimDevice* device)
      : GpuOperatorBase(q, device) {
    pred_ = CompiledExpr::Compile(*q->join_predicate, q->input_schema[0],
                                  &q->input_schema[1]);
    writers_ = BuildFieldPlans(q->join_select, q->output_schema,
                               q->input_schema[0], &q->input_schema[1],
                               /*field0_is_max_ts=*/true);
  }

  void SubmitAsync(const TaskContext& ctx, TaskResult* out,
                   std::function<void()> done) const override {
    const StreamBatch& L = ctx.input[0];
    const StreamBatch& R = ctx.input[1];
    GpuJob* job = device_->AcquireJob();
    job->task_id = ctx.task_id;
    job->num_spans = 4;
    job->host_input[0] = L.data;
    job->host_input[1] = R.data;
    job->host_input[2] = L.history;
    job->host_input[3] = R.history;
    for (int i = 0; i < 4; ++i) job->input_bytes[i] = job->host_input[i].total();
    job->axis_p = L.AxisP(query_->window[0]);
    job->axis_q = L.AxisQ(query_->window[0]);
    job->result = out;
    SimDevice* dev = device_;
    job->on_complete = [dev, done = std::move(done)](GpuJob* j) {
      dev->ReleaseJob(j);
      done();
    };
    // CPU pre-pass: merged arrival order + partner scan ranges.
    Layout lay = MakeLayout(L, R);
    std::vector<JoinElem> elems = BuildElements(L, R, lay);
    job->kernel = [this, lay, elems = std::move(elems)](SimDevice& d, GpuJob& j) {
      Kernel(d, j, lay, elems);
    };
    device_->Submit(job);
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<ConcatAssembly*>(state)->Ingest(result, output);
  }
  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<ConcatAssembly>();
  }

 private:
  struct Layout {
    size_t lsz, rsz;            // tuple sizes
    size_t nl, nr, hl, hr;      // batch / history tuple counts
    size_t off_lb, off_rb, off_lh, off_rh;  // byte offsets in device_in
    int64_t l_first, r_first, lh_first, rh_first;  // global indices
  };

  static WindowIndexRange WindowsOf(const WindowDefinition& w, int64_t x) {
    WindowIndexRange r;
    r.lo = std::max<int64_t>(0, FloorDiv(x - w.size, w.slide) + 1);
    r.hi = FloorDiv(x, w.slide);
    return r;
  }

  Layout MakeLayout(const StreamBatch& L, const StreamBatch& R) const {
    Layout lay;
    lay.lsz = query_->input_schema[0].tuple_size();
    lay.rsz = query_->input_schema[1].tuple_size();
    lay.nl = L.num_tuples();
    lay.nr = R.num_tuples();
    lay.hl = L.history_tuples();
    lay.hr = R.history_tuples();
    lay.off_lb = 0;
    lay.off_rb = lay.off_lb + lay.nl * lay.lsz;
    lay.off_lh = lay.off_rb + lay.nr * lay.rsz;
    lay.off_rh = lay.off_lh + lay.hl * lay.lsz;
    lay.l_first = L.first_index;
    lay.r_first = R.first_index;
    lay.lh_first = L.history_first_index;
    lay.rh_first = R.history_first_index;
    return lay;
  }

  /// Replays the CPU join's merge iteration to fix the element order and the
  /// advancing partner lower bounds (all window-boundary logic lives here,
  /// on the CPU).
  std::vector<JoinElem> BuildElements(const StreamBatch& L, const StreamBatch& R,
                                      const Layout& lay) const {
    const Schema& ls = query_->input_schema[0];
    const Schema& rs = query_->input_schema[1];
    const WindowDefinition& wl = query_->window[0];
    const WindowDefinition& wr = query_->window[1];
    std::vector<JoinElem> elems;
    elems.reserve(lay.nl + lay.nr);
    size_t il = 0, ir = 0;
    size_t r_scan_lo = 0, l_scan_lo = 0;

    auto opp_axis = [&](const StreamBatch& opp, const WindowDefinition& wo,
                        const Schema& /*os*/, size_t k, size_t hist) -> int64_t {
      if (!wo.time_based()) {
        return k < hist ? opp.history_first_index + static_cast<int64_t>(k)
                        : opp.first_index + static_cast<int64_t>(k - hist);
      }
      const uint8_t* b = k < hist ? opp.history_tuple(k) : opp.tuple(k - hist);
      return RawTs(b);
    };

    while (il < lay.nl || ir < lay.nr) {
      bool take_left;
      if (il >= lay.nl) {
        take_left = false;
      } else if (ir >= lay.nr) {
        take_left = true;
      } else {
        take_left = RawTs(L.tuple(il)) <= RawTs(R.tuple(ir));
      }
      if (take_left) {
        const int64_t axis =
            wl.time_based() ? RawTs(L.tuple(il))
                            : L.first_index + static_cast<int64_t>(il);
        const WindowIndexRange jn = WindowsOf(wl, axis);
        const size_t total = lay.hr + ir;
        while (r_scan_lo < total &&
               FloorDiv(opp_axis(R, wr, rs, r_scan_lo, lay.hr), wr.slide) < jn.lo) {
          ++r_scan_lo;
        }
        elems.push_back(JoinElem{0, static_cast<uint32_t>(il),
                                 static_cast<uint32_t>(r_scan_lo),
                                 static_cast<uint32_t>(total)});
        ++il;
      } else {
        const int64_t axis =
            wr.time_based() ? RawTs(R.tuple(ir))
                            : R.first_index + static_cast<int64_t>(ir);
        const WindowIndexRange jn = WindowsOf(wr, axis);
        const size_t total = lay.hl + il;
        while (l_scan_lo < total &&
               FloorDiv(opp_axis(L, wl, ls, l_scan_lo, lay.hl), wl.slide) < jn.lo) {
          ++l_scan_lo;
        }
        elems.push_back(JoinElem{1, static_cast<uint32_t>(ir),
                                 static_cast<uint32_t>(l_scan_lo),
                                 static_cast<uint32_t>(total)});
        ++ir;
      }
    }
    return elems;
  }

  /// Device-side partner lookup: partner k of an element addresses the
  /// opposite history for k < hist, else the opposite batch.
  struct PartnerView {
    const uint8_t* bytes;
    int64_t axis;
  };

  void Kernel(SimDevice& dev, GpuJob& j, const Layout& lay,
              const std::vector<JoinElem>& elems) const {
    const WindowDefinition& wl = query_->window[0];
    const WindowDefinition& wr = query_->window[1];
    const uint8_t* base = j.device_in.data();
    const size_t osz = query_->output_schema.tuple_size();
    const size_t n = elems.size();
    constexpr size_t kGroupElems = 256;
    const size_t ng = (n + kGroupElems - 1) / kGroupElems;

    auto partner = [&](bool new_is_left, size_t k) -> PartnerView {
      PartnerView v;
      if (new_is_left) {  // partner from R
        if (k < lay.hr) {
          v.bytes = base + lay.off_rh + k * lay.rsz;
          v.axis = wr.time_based() ? RawTs(v.bytes)
                                   : lay.rh_first + static_cast<int64_t>(k);
        } else {
          v.bytes = base + lay.off_rb + (k - lay.hr) * lay.rsz;
          v.axis = wr.time_based()
                       ? RawTs(v.bytes)
                       : lay.r_first + static_cast<int64_t>(k - lay.hr);
        }
      } else {  // partner from L
        if (k < lay.hl) {
          v.bytes = base + lay.off_lh + k * lay.lsz;
          v.axis = wl.time_based() ? RawTs(v.bytes)
                                   : lay.lh_first + static_cast<int64_t>(k);
        } else {
          v.bytes = base + lay.off_lb + (k - lay.hl) * lay.lsz;
          v.axis = wl.time_based()
                       ? RawTs(v.bytes)
                       : lay.l_first + static_cast<int64_t>(k - lay.hl);
        }
      }
      return v;
    };

    auto for_matches = [&](size_t e, auto&& fn) {
      const JoinElem& el = elems[e];
      const bool new_is_left = el.side == 0;
      const WindowDefinition& wn = new_is_left ? wl : wr;
      const WindowDefinition& wo = new_is_left ? wr : wl;
      const uint8_t* nbytes =
          new_is_left ? base + lay.off_lb + el.idx * lay.lsz
                      : base + lay.off_rb + el.idx * lay.rsz;
      const int64_t axis_n =
          wn.time_based()
              ? RawTs(nbytes)
              : (new_is_left ? lay.l_first : lay.r_first) +
                    static_cast<int64_t>(el.idx);
      const WindowIndexRange jn = WindowsOf(wn, axis_n);
      if (jn.empty()) return;
      for (size_t k = el.scan_lo; k < el.scan_hi; ++k) {
        const PartnerView pv = partner(new_is_left, k);
        const WindowIndexRange jo = WindowsOf(wo, pv.axis);
        if (jo.lo > jn.hi) break;  // partners are axis-ordered
        if (jo.hi < jn.lo) continue;
        const uint8_t* l = new_is_left ? nbytes : pv.bytes;
        const uint8_t* r = new_is_left ? pv.bytes : nbytes;
        if (!pred_.EvalBool(l, r)) continue;
        fn(l, r);
      }
    };

    // Pass 1: count matches per element.
    std::vector<uint32_t> counts(n, 0);
    dev.ParallelFor(ng, [&](size_t g, size_t) {
      const size_t lo = g * kGroupElems, hi = std::min(n, lo + kGroupElems);
      for (size_t e = lo; e < hi; ++e) {
        uint32_t c = 0;
        for_matches(e, [&](const uint8_t*, const uint8_t*) { ++c; });
        counts[e] = c;
      }
    });

    // Prefix sum -> write offsets; compact into contiguous device memory.
    std::vector<size_t> offsets(n + 1, 0);
    for (size_t e = 0; e < n; ++e) offsets[e + 1] = offsets[e] + counts[e];
    const size_t total_rows = offsets[n];
    j.device_out.Resize(total_rows * osz);

    // Pass 2: materialize result rows.
    dev.ParallelFor(ng, [&](size_t g, size_t) {
      const size_t lo = g * kGroupElems, hi = std::min(n, lo + kGroupElems);
      for (size_t e = lo; e < hi; ++e) {
        uint8_t* dst = j.device_out.data() + offsets[e] * osz;
        for_matches(e, [&](const uint8_t* l, const uint8_t* r) {
          WriteRowFromPlans(writers_, l, r, dst, osz);
          dst += osz;
        });
      }
    });
    j.complete_bytes = total_rows * osz;
  }

  CompiledExpr pred_;
  std::vector<FieldPlan> writers_;
};

// ---------------------------------------------------------------------------
// UDF collection kernel: fragment collection for user-defined window
// operator functions (udf_operator.h). One work group per pane ("tuples that
// are part of the same window are assigned to the same work group", §5.4)
// copies the pane's tuples into contiguous device memory; the UDF itself
// runs in the assembly stage on a CPU worker. Pane boundaries come from the
// CPU pre-pass, like every window-boundary computation.
// ---------------------------------------------------------------------------

class GpuUdfOperator final : public GpuOperatorBase {
 public:
  GpuUdfOperator(const QueryDef* q, SimDevice* device)
      : GpuOperatorBase(q, device) {}

  void SubmitAsync(const TaskContext& ctx, TaskResult* out,
                   std::function<void()> done) const override {
    GpuJob* job = device_->AcquireJob();
    job->task_id = ctx.task_id;
    job->num_spans = ctx.num_inputs;
    UdfAxisHeader h;
    for (int i = 0; i < ctx.num_inputs; ++i) {
      job->host_input[i] = ctx.input[i].data;
      job->input_bytes[i] = ctx.input[i].data.total();
      h.axis_p[i] = ctx.input[i].AxisP(query_->window[i]);
      h.axis_q[i] = ctx.input[i].AxisQ(query_->window[i]);
    }
    job->axis_p = h.axis_p[0];
    job->axis_q = h.axis_q[0];
    job->result = out;
    SimDevice* dev = device_;
    job->on_complete = [dev, done = std::move(done)](GpuJob* j) {
      dev->ReleaseJob(j);
      done();
    };
    // CPU-side window-boundary computation, per input.
    std::array<std::vector<PaneRange>, 2> ranges;
    for (int i = 0; i < ctx.num_inputs; ++i) {
      ranges[i] = ComputePaneRanges(ctx.input[i], query_->window[i]);
    }
    const int num_inputs = ctx.num_inputs;
    job->kernel = [this, h, ranges = std::move(ranges),
                   num_inputs](SimDevice& d, GpuJob& j) {
      Kernel(d, j, h, ranges, num_inputs);
    };
    device_->Submit(job);
  }

  void Assemble(const TaskResult& result, AssemblyState* state,
                ByteBuffer* output) const override {
    static_cast<UdfAssembly*>(state)->Ingest(result, output);
  }
  std::unique_ptr<AssemblyState> MakeAssemblyState() const override {
    return std::make_unique<UdfAssembly>(*query_);
  }

 private:
  void Kernel(SimDevice& dev, GpuJob& j, const UdfAxisHeader& h,
              const std::array<std::vector<PaneRange>, 2>& ranges,
              int num_inputs) const {
    // Flatten (input, pane) pairs and lay out the output: header first, then
    // pane payloads in input-major, pane-index order (the CPU layout).
    struct Slot {
      int input;
      const PaneRange* range;
      size_t dst_off;
      size_t src_off;
      size_t bytes;
    };
    std::vector<Slot> slots;
    size_t total = sizeof(UdfAxisHeader);
    size_t src_base = 0;
    for (int i = 0; i < num_inputs; ++i) {
      const size_t tsz = query_->input_schema[i].tuple_size();
      for (const PaneRange& r : ranges[i]) {
        const size_t bytes = static_cast<size_t>(r.hi - r.lo) * tsz;
        slots.push_back(Slot{i, &r, total, src_base + r.lo * tsz, bytes});
        total += bytes;
      }
      src_base += j.input_bytes[i];
    }
    j.device_out.Resize(total);
    std::memcpy(j.device_out.data(), &h, sizeof(h));
    const uint8_t* in = j.device_in.data();
    dev.ParallelFor(slots.size(), [&](size_t s, size_t) {
      const Slot& sl = slots[s];
      std::memcpy(j.device_out.data() + sl.dst_off, in + sl.src_off, sl.bytes);
    });
    for (const Slot& sl : slots) {
      j.panes.push_back(PaneEntry{EncodeUdfPane(sl.input, sl.range->pane),
                                  static_cast<uint32_t>(sl.dst_off),
                                  static_cast<uint32_t>(sl.bytes)});
    }
    j.partials_bytes = total;
  }
};

}  // namespace

std::unique_ptr<GpuOperatorBase> MakeGpuOperator(const QueryDef* query,
                                                 SimDevice* device) {
  if (query->is_udf()) {
    return std::make_unique<GpuUdfOperator>(query, device);
  }
  if (query->is_join()) {
    return std::make_unique<GpuJoinOperator>(query, device);
  }
  if (query->is_aggregation()) {
    return std::make_unique<GpuAggregationOperator>(query, device);
  }
  return std::make_unique<GpuStatelessOperator>(query, device);
}

}  // namespace saber
