#pragma once

#include <memory>

#include "core/operator.h"
#include "gpu/sim_device.h"

/// \file gpu_operators.h
/// GPGPU implementations of the batch operator functions (§5.4). Operators
/// are "code templates populated with query-specific functions": at operator
/// construction the query's expressions are lowered to flat postfix programs
/// (expression_compiler.h), and the kernels execute them in tight loops over
/// device memory, dispatched as work groups across the simulated device's
/// executor pool.
///
/// The assembly operator functions are shared with the CPU back end
/// (fragment_assembly.h) — §5.4: "the result aggregation logic is the same
/// for both CPU and GPGPU".

namespace saber {

/// An Operator whose batch function runs on the simulated device. Besides
/// the synchronous Operator::ProcessBatch (submit + wait), it exposes the
/// asynchronous path the engine's GPGPU worker uses to keep several tasks in
/// flight through the five-stage pipeline.
class GpuOperatorBase : public Operator {
 public:
  /// Submits the task into the device pipeline; `done` fires on the copyout
  /// thread after `out` has been populated. The caller must keep ctx's
  /// buffers alive until then (the engine's free-pointer protocol does).
  virtual void SubmitAsync(const TaskContext& ctx, TaskResult* out,
                           std::function<void()> done) const = 0;

  void ProcessBatch(const TaskContext& ctx, TaskResult* out) const override;

  SimDevice* device() const { return device_; }

 protected:
  GpuOperatorBase(const QueryDef* q, SimDevice* device)
      : Operator(q), device_(device) {}

  SimDevice* device_;
};

/// Creates the GPGPU operator for a query (selection/projection, aggregation
/// with GROUP-BY/HAVING, or θ-join).
std::unique_ptr<GpuOperatorBase> MakeGpuOperator(const QueryDef* query,
                                                 SimDevice* device);

}  // namespace saber
