#pragma once

#include <memory>
#include <vector>

#include "core/query.h"
#include "relational/tuple_ref.h"
#include "runtime/byte_buffer.h"
#include "window/window_math.h"

/// \file operator.h
/// The hybrid processing model of §3, expressed as code:
///
///  - A *query task* v = (f, B) bundles the query's operator function with a
///    fixed-size stream batch (TaskContext below carries B plus the window
///    bookkeeping the task needs).
///  - The *batch operator function* f_b runs in the parallel execution stage
///    (Operator::ProcessBatch) on either a CPU core or the simulated GPGPU;
///    it produces *window fragment results* (TaskResult): finalized rows for
///    work that is complete within the batch, plus partial per-pane
///    aggregates for windows that span batches.
///  - The *assembly operator function* f_a runs in the result stage
///    (Operator::Assemble), strictly in query-task order, merging fragment
///    results into window results and appending them to the output stream.

namespace saber {

/// A possibly two-segment view of contiguous ring-buffer bytes (segment 2 is
/// used when the underlying circular buffer wraps).
struct SpanPair {
  const uint8_t* seg1 = nullptr;
  size_t len1 = 0;
  const uint8_t* seg2 = nullptr;
  size_t len2 = 0;

  size_t total() const { return len1 + len2; }
  bool contiguous() const { return len2 == 0; }

  /// Pointer to the tuple at byte offset `off` (must not straddle segments —
  /// guaranteed when offsets are multiples of the tuple size and segment
  /// lengths are too).
  const uint8_t* at(size_t off) const {
    return off < len1 ? seg1 + off : seg2 + (off - len1);
  }
};

/// One input stream's slice of a query task.
struct StreamBatch {
  SpanPair data;            // the stream batch itself
  int64_t first_index = 0;  // global tuple index of the first tuple
  int64_t first_ts = 0;     // timestamp of the first tuple
  int64_t last_ts = 0;      // timestamp of the last tuple
  int64_t prev_last_ts = -1;  // last timestamp of the previous batch (-1: none)

  /// For joins: tuples preceding the batch that are still inside some window
  /// of the opposite stream (§4.1 free pointer keeps them alive).
  SpanPair history;
  int64_t history_first_index = 0;

  size_t tuple_size = 0;
  size_t num_tuples() const { return data.total() / tuple_size; }
  const uint8_t* tuple(size_t i) const { return data.at(i * tuple_size); }

  size_t history_tuples() const { return history.total() / tuple_size; }
  const uint8_t* history_tuple(size_t i) const {
    return history.at(i * tuple_size);
  }

  /// Axis range [P, Q) this batch is responsible for (window_math.h). For
  /// time-based windows Q is the batch's *last* timestamp, exclusive: tuples
  /// are ordered by timestamp (§2.4), so observing ts = T only proves that no
  /// future tuple has ts < T — equal timestamps may still cross the batch
  /// boundary. Windows therefore close only once the watermark (max Q seen)
  /// passes their end.
  int64_t AxisP(const WindowDefinition& w) const {
    return w.time_based() ? std::max<int64_t>(prev_last_ts, 0) : first_index;
  }
  int64_t AxisQ(const WindowDefinition& w) const {
    return w.time_based() ? last_ts
                          : first_index + static_cast<int64_t>(num_tuples());
  }
  /// Axis coordinate of tuple i.
  int64_t AxisOf(const WindowDefinition& w, size_t i, int64_t ts) const {
    return w.time_based() ? ts : first_index + static_cast<int64_t>(i);
  }
};

/// A window-fragment partial: serialized pane data located inside
/// TaskResult::partials.
struct PaneEntry {
  int64_t pane_index;
  uint32_t offset;
  uint32_t length;
};

/// Output of the batch operator function for one query task.
struct TaskResult {
  int64_t task_id = 0;

  /// Finalized output rows (selection/projection/join results) in arrival
  /// order; the assembly stage forwards them unchanged (§4.3 "for many
  /// operators assembly is concatenation").
  ByteBuffer complete;

  /// Serialized pane partials for aggregations, ordered by pane index.
  ByteBuffer partials;
  std::vector<PaneEntry> panes;

  /// Axis range the batch covered (input 0), for window-close tracking.
  int64_t axis_p = 0;
  int64_t axis_q = 0;

  /// Per-input byte positions that may be released after this task's results
  /// are collected (the *free pointer* of §4.1).
  int64_t free_pos[2] = {0, 0};

  int64_t input_bytes = 0;
  int64_t dispatched_nanos = 0;  // for end-to-end latency accounting

  /// The device failed the task (injected or real): no payload fields are
  /// valid, and the GPGPU worker requeues the task instead of assembling.
  bool device_failed = false;

  void Reset() {
    complete.Clear();
    partials.Clear();
    panes.clear();
    axis_p = axis_q = 0;
    free_pos[0] = free_pos[1] = 0;
    input_bytes = 0;
    dispatched_nanos = 0;
    device_failed = false;
  }
};

/// The stream batch bundle B of a query task.
struct TaskContext {
  int64_t task_id = 0;
  const QueryDef* query = nullptr;
  StreamBatch input[2];
  int num_inputs = 1;
};

/// Mutable per-query state owned by the result stage and threaded through
/// Assemble calls in task order (pane store, running aggregates, next window
/// to emit). Implementations are operator-specific.
class AssemblyState {
 public:
  virtual ~AssemblyState() = default;
};

/// A batch operator function plus its assembly counterpart. Implementations:
/// cpu/cpu_operators.h (interpreted, one task per CPU core) and
/// gpu/gpu_operators.h (compiled kernels on the simulated device).
class Operator {
 public:
  virtual ~Operator() = default;

  /// Executes the batch operator function f_b for one query task. Must be
  /// thread-safe (const); all mutable state lives in `out`.
  virtual void ProcessBatch(const TaskContext& ctx, TaskResult* out) const = 0;

  /// Executes the assembly operator function f_a. Called exactly once per
  /// task, in strictly increasing task-id order per query (the result stage
  /// guarantees this, §4.3). Appends finalized output rows to `output`.
  virtual void Assemble(const TaskResult& result, AssemblyState* state,
                        ByteBuffer* output) const = 0;

  /// Creates the per-query assembly state consumed by Assemble.
  virtual std::unique_ptr<AssemblyState> MakeAssemblyState() const = 0;

  const QueryDef& query() const { return *query_; }

 protected:
  explicit Operator(const QueryDef* query) : query_(query) {}
  const QueryDef* query_;
};

}  // namespace saber
