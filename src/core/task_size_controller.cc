#include "core/task_size_controller.h"

#include <algorithm>
#include <cstring>

#include "runtime/clock.h"

namespace saber {

namespace {

/// Largest multiple of `tuple_size` that is <= bytes, floored at one tuple.
size_t RoundDownToTuple(size_t bytes, size_t tuple_size) {
  return std::max(tuple_size, bytes / tuple_size * tuple_size);
}

}  // namespace

TaskSizeController::TaskSizeController(const TaskSizeControllerOptions& options,
                                       size_t max_task_size, size_t tuple_size,
                                       RateFn rate, ClockFn clock)
    : options_(options),
      max_task_size_(RoundDownToTuple(max_task_size, tuple_size)),
      // A floor above the ceiling (e.g. --min-task-size past --task-size)
      // would hand std::clamp an inverted range (UB); the ceiling wins.
      min_task_size_(std::min(
          RoundDownToTuple(std::max(options.min_task_size, tuple_size),
                           tuple_size),
          RoundDownToTuple(max_task_size, tuple_size))),
      tuple_size_(tuple_size),
      rate_(std::move(rate)),
      clock_(clock ? std::move(clock) : ClockFn(&NowNanos)),
      phi_(RoundDownToTuple(max_task_size, tuple_size)) {
  if (options_.initial_task_size != 0 &&
      options_.policy != TaskSizePolicy::kFixedPhi) {
    phi_.store(RoundDownToTuple(std::clamp(options_.initial_task_size,
                                           min_task_size_, max_task_size_),
                                tuple_size_),
               std::memory_order_relaxed);
  }
  last_adjust_nanos_.store(clock_(), std::memory_order_relaxed);
}

size_t TaskSizeController::RoundToTuple(size_t bytes) const {
  return RoundDownToTuple(bytes, tuple_size_);
}

void TaskSizeController::Observe(int64_t latency_nanos) {
  observations_.Increment();
  if (options_.policy == TaskSizePolicy::kFixedPhi) return;

  interval_latency_.RecordNanos(latency_nanos);
  // Fold this observation into the interval maximum.
  int64_t seen = window_max_.load(std::memory_order_relaxed);
  while (latency_nanos > seen &&
         !window_max_.compare_exchange_weak(seen, latency_nanos,
                                            std::memory_order_relaxed)) {
  }

  const int64_t now = clock_();
  const int64_t last = last_adjust_nanos_.load(std::memory_order_relaxed);
  if (now - last < options_.adjust_interval_nanos) return;
  int64_t expected = last;
  if (!last_adjust_nanos_.compare_exchange_strong(expected, now,
                                                  std::memory_order_relaxed)) {
    return;  // another worker claimed this interval
  }
  const int64_t window_max = window_max_.exchange(0);
  if (window_max == 0) return;  // no completions this interval
  last_window_max_nanos_.store(window_max, std::memory_order_relaxed);
  last_p99_nanos_.store(interval_latency_.PercentileNanos(99),
                        std::memory_order_relaxed);
  interval_latency_.Reset();
  Adjust(window_max);
}

void TaskSizeController::Adjust(int64_t window_max) {
  const int64_t target = options_.latency_target_nanos;
  const size_t cur = phi_.load(std::memory_order_relaxed);
  size_t proposal = cur;
  bool clamped = false;
  if (window_max > target) {
    // Multiplicative decrease: larger overshoots shrink phi harder, like the
    // fixed-point batch-size iteration of [25].
    proposal = window_max > 2 * target ? cur / 4 : cur / 2;
    if (options_.policy == TaskSizePolicy::kThroughputGuard && rate_) {
      // Refuse to shrink past the dispatch-overhead wall: task cost is at
      // most linear in phi, so halving phi at least doubles the task rate —
      // the projected rate after the shrink is bounded below by
      // rate * cur / proposal. Clamp the shrink so that projection stays
      // under guard_max_task_rate (the smallest admissible phi is
      // cur * rate / guard_max_task_rate).
      const double task_rate = rate_();
      if (task_rate > 0) {
        const double guard_floor =
            static_cast<double>(cur) * task_rate / options_.guard_max_task_rate;
        if (static_cast<double>(proposal) < guard_floor) {
          proposal = static_cast<size_t>(
              std::min(static_cast<double>(cur), guard_floor));
          clamped = true;
        }
      }
    }
  } else if (window_max < target / 2) {
    // Gentle additive increase while comfortably below target (throughput
    // recovery).
    proposal = cur + cur / 4;
  }
  size_t next = std::clamp(proposal, min_task_size_, max_task_size_);
  next = RoundToTuple(next);
  clamped = clamped || next != RoundToTuple(std::max(proposal, tuple_size_));
  if (clamped) clamp_events_.Increment();
  if (next == cur) return;
  (next < cur ? shrink_count_ : grow_count_).Increment();
  adjust_count_.Increment();
  phi_.store(next, std::memory_order_relaxed);
}

void TaskSizeController::RegisterMetrics(obs::MetricsRegistry* registry,
                                         const obs::Labels& labels,
                                         const void* owner) const {
  registry->RegisterCounter(
      "saber_controller_observations_total", labels, &observations_, owner,
      "Task latency observations fed to the task-size controller");
  registry->RegisterCounter("saber_controller_adjusts_total", labels,
                            &adjust_count_, owner,
                            "Applied task-size (phi) changes");
  registry->RegisterCounter("saber_controller_shrinks_total", labels,
                            &shrink_count_, owner,
                            "Multiplicative-decrease phi changes");
  registry->RegisterCounter("saber_controller_grows_total", labels,
                            &grow_count_, owner,
                            "Additive-increase phi changes");
  registry->RegisterCounter(
      "saber_controller_clamps_total", labels, &clamp_events_, owner,
      "Phi proposals limited by bounds or the throughput guard");
}

ControllerStats TaskSizeController::Stats() const {
  ControllerStats s;
  s.policy = options_.policy;
  s.current_phi = phi_.load(std::memory_order_relaxed);
  s.observations = observations_.value();
  s.adjust_count = adjust_count_.value();
  s.shrink_count = shrink_count_.value();
  s.grow_count = grow_count_.value();
  s.clamp_events = clamp_events_.value();
  s.last_p99_nanos = last_p99_nanos_.load(std::memory_order_relaxed);
  s.last_window_max_nanos =
      last_window_max_nanos_.load(std::memory_order_relaxed);
  return s;
}

const char* TaskSizeController::PolicyName(TaskSizePolicy policy) {
  switch (policy) {
    case TaskSizePolicy::kFixedPhi:
      return "fixed";
    case TaskSizePolicy::kLatencyTargetAimd:
      return "aimd";
    case TaskSizePolicy::kThroughputGuard:
      return "guard";
  }
  return "unknown";
}

bool TaskSizeController::ParsePolicy(const char* name, TaskSizePolicy* out) {
  if (std::strcmp(name, "fixed") == 0) {
    *out = TaskSizePolicy::kFixedPhi;
  } else if (std::strcmp(name, "aimd") == 0) {
    *out = TaskSizePolicy::kLatencyTargetAimd;
  } else if (std::strcmp(name, "guard") == 0) {
    *out = TaskSizePolicy::kThroughputGuard;
  } else {
    return false;
  }
  return true;
}

}  // namespace saber
