#pragma once

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/operator.h"
#include "core/schedulers.h"
#include "core/task.h"
#include "core/task_size_controller.h"
#include "core/throughput_matrix.h"
#include "gpu/gpu_operators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/circular_buffer.h"
#include "runtime/histogram.h"
#include "runtime/object_pool.h"

/// \file engine.h
/// The SABER engine (§4, Fig. 4): dispatching stage → system-wide task queue
/// → scheduling stage (HLS) → execution on CPU cores and the simulated GPGPU
/// → result stage with ordered assembly and output-stream construction.
///
/// Threading model (§4 "worker thread model"): each CPU worker handles the
/// complete task lifecycle — it asks the scheduler for a task, executes the
/// batch operator function, stores the fragment results, performs in-order
/// assembly when it holds the per-query assembly token, appends to the
/// output stream and releases input-buffer free pointers. One dedicated
/// worker drives the GPGPU, keeping up to pipeline_depth tasks in flight
/// through the five-stage pipeline (§5.2).
///
/// Queries are chained by connecting one query's (ordered) output stream to
/// another's input (used by SG3, LRB2 and LRB4).
///
/// Dynamic query lifecycle: unlike the paper's fixed query set, queries may
/// be admitted (TryAddQuery) and removed (RemoveQuery) while the engine is
/// running. The registry is a fixed array of slots; the dispatch, execution
/// and result stages read a lock-free per-slot pointer, and removal quiesces
/// in phases (see docs/architecture.md, "Query lifecycle & admission")
/// before the slot is retired and recycled.

namespace saber {

namespace ingest {
class ShardedIngress;
struct IngressOptions;
}  // namespace ingest

enum class SchedulerKind { kHls, kFcfs, kStatic };

/// Engine configuration. Every field below lists its unit, default, and the
/// options it interacts with; docs/architecture.md walks through where each
/// one acts in the data path, and the README carries the same table.
struct EngineOptions {
  /// CPU worker threads (each one models a bound physical core, §4).
  /// Unit: threads. Default: 4. At least one of num_cpu_workers > 0 /
  /// use_gpu must hold or Start() aborts (a worker-less engine would accept
  /// inserts and hang in Drain).
  int num_cpu_workers = 4;
  /// Attach the simulated GPGPU (adds one GPGPU worker thread plus the
  /// device's five stage threads and executor pool). Default: true.
  /// Interacts with `device` (ignored when false) and `static_assignment`
  /// (assigning a query to Processor::kGpu without a GPGPU wedges it).
  bool use_gpu = true;
  /// Simulated device shape: executor pool size, PCIe pacing, pipeline
  /// depth (§5.2). Only read when use_gpu is true; see gpu/sim_device.h.
  SimDeviceOptions device;

  /// Use the vectorized (batch-at-a-time) CPU operator path: expressions
  /// are compiled once per query and evaluated over ~1024-tuple runs with
  /// selection vectors instead of interpreting the Expression tree per
  /// tuple. Default: true. Queries whose expressions cannot be lowered
  /// (CompiledExpr::lowerable()) fall back to the scalar path per query
  /// automatically; setting this false forces the scalar path everywhere
  /// (the A/B knob behind bench/operator_kernels). Both paths produce
  /// bit-identical results (tests/cpu/vectorized_diff_fuzz_test).
  bool cpu_vectorized = true;

  /// Query task size φ. Unit: bytes; rounded down per query to a non-zero
  /// multiple of the input tuple size. Default: 1 MiB. This is the central
  /// throughput/latency knob of §6.4 (Fig. 12). With an adaptive
  /// `task_sizing` policy this is the *maximum* φ — the controller moves
  /// the live φ within [task_sizing.min_task_size, task_size].
  size_t task_size = 1 << 20;

  /// Adaptive task sizing (extension; cf. Das et al. [25], contrasted in
  /// §7): policy selection plus per-policy knobs. The default policy
  /// (kFixedPhi) keeps φ pinned at `task_size`; the AIMD/guard policies
  /// re-tune each query's φ from observed task latencies. See
  /// core/task_size_controller.h for the per-field docs.
  TaskSizeControllerOptions task_sizing;

  /// Circular input buffer capacity per stream (§4.1). Unit: bytes.
  /// Default: 64 MiB. Bounds producer back-pressure: inserts block once
  /// unconsumed + window-history bytes reach this. Must comfortably exceed
  /// φ (`task_size`) plus the largest window extent, or dispatch starves.
  size_t input_buffer_size = size_t{64} << 20;
  /// System-wide task queue bound (dispatch back-pressure). Unit: tasks.
  /// Default: 256. Producer-thread pushes block when full; worker-context
  /// pushes (connected queries) force past it — see TaskQueue::Push.
  size_t task_queue_capacity = 256;

  /// Registered-query capacity: the fixed number of query *slots* the
  /// engine, throughput matrix and schedulers size their per-query state
  /// for. Unit: queries. Default: 64 (must be <= kMaxQuerySlots).
  /// TryAddQuery fails with ResourceExhausted when every slot holds a
  /// non-retired query; RemoveQuery recycles slots.
  size_t max_queries = 64;

  /// Scheduling-stage policy: kHls (Alg. 1 + weighted-fair tenant
  /// selection), kFcfs, or kStatic. Default: kHls. kStatic additionally
  /// requires `static_assignment`.
  SchedulerKind scheduler = SchedulerKind::kHls;
  /// HLS switch threshold n (Alg. 1): consecutive same-processor executions
  /// of a query before the other processor may "explore" it. Unit: tasks.
  /// Default: 20. Only read under kHls.
  int switch_threshold = 20;
  /// HLS queue-scan bound — how many queued tasks the lookahead walks
  /// before giving up; 1 disables lookahead (head-only). Unit: tasks.
  /// Default: 64. Only read under kHls.
  size_t hls_lookahead = 64;
  /// Static assignment (query index -> processor) for SchedulerKind::kStatic;
  /// unassigned queries run anywhere. Ignored by the other schedulers.
  std::map<int, Processor> static_assignment;
  /// Throughput matrix refresh interval (100 ms in §6.6). Unit: nanoseconds.
  /// Default: 100 ms. Shorter reacts faster but publishes noisier rates to
  /// HLS and (under kThroughputGuard) to the task-size controller.
  int64_t matrix_update_nanos = 100'000'000;
  /// Initial uniform rate for the throughput matrix. Unit: tasks/s.
  /// Default: 100. Until real completions refresh a cell, HLS plans with
  /// this value (the paper's "uniform assumption").
  double matrix_initial_rate = 100.0;

  /// GPGPU failover (docs/architecture.md §14). A task the device fails is
  /// requeued at the queue front narrowed to the CPU (when CPU workers
  /// exist) and the device's published rate is multiplied by
  /// `gpu_failure_decay` so HLS steers away. After
  /// `gpu_quarantine_threshold` *consecutive* failures the GPGPU worker
  /// stops submitting for `gpu_quarantine_nanos`, then lets a single probe
  /// task through; a successful probe lifts the quarantine, a failed one
  /// re-arms the window. Unit: tasks / nanoseconds / factor.
  int gpu_quarantine_threshold = 3;
  int64_t gpu_quarantine_nanos = 50'000'000;
  double gpu_failure_decay = 0.5;

  /// Metrics registry every engine counter registers on (obs/metrics.h).
  /// Null (the default) makes the engine own a private registry, readable
  /// via Engine::metrics(); pass one to aggregate several engines — or an
  /// engine plus its network front end — into a single /metrics exposition.
  /// A borrowed registry must outlive the engine.
  obs::MetricsRegistry* metrics = nullptr;

  /// Task-path tracing sample rate in [0, 1] (obs/trace.h). 0 (default)
  /// disables tracing entirely — the trace ring is not even constructed and
  /// the per-task cost is one pointer test. At rate r each dispatched task
  /// is sampled independently; sampled tasks stamp six stage timestamps and
  /// publish a span on completion.
  double trace_sample_rate = 0.0;
  /// Completed spans retained by the bounded trace ring (oldest overwritten
  /// past this). Unit: spans. Default: 8192 (~1 MiB).
  size_t trace_ring_spans = 8192;
};

class Engine;

/// Engine-internal per-query state (defined in engine.cc). Forward-declared
/// here so a QueryHandle can share ownership: the handle keeps the struct —
/// and with it every statistics counter — alive after the query retires,
/// while the retire path frees the expensive pieces (input buffers, ingress).
struct QueryState;

/// Per-query facade: input ingestion, output sink, statistics. Handles stay
/// valid for the engine's lifetime, across RemoveQuery: inserting into a
/// Draining/Retired query drops the tuples (counted in tuples_dropped())
/// instead of corrupting the pipeline.
class QueryHandle {
 public:
  /// Appends serialized tuples to input stream 0. Blocks on back-pressure.
  /// One logical producer per input stream (§4.1); many client threads can
  /// share one stream through the sharded ingestion stage
  /// (ingest::ShardedIngress, src/ingest/), whose watermark merger is then
  /// the single logical producer. The boundary validates that `bytes` is a
  /// multiple of the input tuple size, and — for time-based windows and
  /// two-input queries, where dispatch consumes timestamps — that
  /// timestamps never decrease within or across inserts (violations abort
  /// with a clear message instead of silently corrupting dispatch; count
  /// windows keep the repeated-feed idiom with restarting timestamps).
  void Insert(const void* tuples, size_t bytes) { InsertInto(0, tuples, bytes); }
  void InsertInto(int input, const void* tuples, size_t bytes);

  /// Ordered output callback: invoked with batches of serialized output rows
  /// in stream order, from worker threads. Legal before Engine::Start, or on
  /// a live-admitted query before its first task is dispatched; afterwards a
  /// swap would race the result stage's unsynchronized sink calls, so the
  /// call fails with InvalidArgument instead (lifecycle misuse is a Status,
  /// not an abort). The returned Status may be ignored by pre-Start callers.
  Status SetSink(std::function<void(const uint8_t*, size_t)> sink);

  /// Creates a sharded multi-producer ingress front (src/ingest/) for input
  /// `input`, owned by the engine: RemoveQuery and engine shutdown tear it
  /// down (revoke producers → drain the watermark merger → stop). At most
  /// one engine-managed ingress per input. Forwards to
  /// Engine::AttachIngress.
  Result<ingest::ShardedIngress*> AttachIngress(
      const ingest::IngressOptions& options, int input = 0);

  const QueryDef& def() const;
  const Schema& output_schema() const;

  /// Registry slot of this query (stable until retirement; slots are
  /// recycled by later admissions).
  int index() const { return index_; }
  /// Current lifecycle state (racy snapshot).
  QueryLifecycle lifecycle() const;
  /// Weighted-fair scheduling share (QueryDef::weight).
  double weight() const;

  int64_t bytes_in() const;
  int64_t tuples_in() const;
  int64_t rows_out() const;
  /// Tuples rejected because they arrived while the query was Draining or
  /// Retired (survivor-correctness metric for the churn bench).
  int64_t tuples_dropped() const;
  /// Current query task size φ (differs from EngineOptions::task_size only
  /// under an adaptive task_sizing policy).
  size_t current_task_size() const;
  /// Snapshot of this query's task-size controller (live φ, adjust/clamp
  /// counts, last observed interval p99). Callable from any thread.
  ControllerStats controller_stats() const;
  /// Tasks / bytes executed per processor (the Fig. 7 CPU/GPGPU split).
  int64_t tasks_on(Processor p) const;
  int64_t bytes_on(Processor p) const;
  /// End-to-end task latency: dispatch -> output emission.
  const LatencyHistogram& latency() const;
  /// Labels identifying this query's registry series: {query=<name or
  /// q<index>>, slot=<index>}. The slot disambiguates same-named live
  /// queries; a recycled slot restarts its series (a counter reset on the
  /// wire).
  obs::Labels metric_labels() const;

 private:
  friend class Engine;
  QueryHandle(Engine* engine, int index, std::shared_ptr<QueryState> qs)
      : engine_(engine), index_(index), qs_(std::move(qs)) {}
  Engine* engine_;
  int index_;
  std::shared_ptr<QueryState> qs_;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a query; callable before Start *and* on a live engine (the
  /// new query starts Running immediately). The handle remains owned by the
  /// engine. Aborts on an invalid definition or exhausted capacity — the
  /// fluent-call tail for trusted definitions; services validating user
  /// input use TryAddQuery.
  QueryHandle* AddQuery(QueryDef def);

  /// Status-returning admission: validates the definition (ValidateLimits,
  /// weight > 0) and capacity (max_queries slots), allocates the query's
  /// buffers and operators, and splices it into the dispatcher — on a
  /// running engine the query is schedulable when this returns.
  /// InvalidArgument on a bad definition, ResourceExhausted when every slot
  /// is occupied.
  Result<QueryHandle*> TryAddQuery(QueryDef def);

  /// Removes a query from a (possibly running) engine. Quiesces in phases:
  /// tear down the engine-managed ingress (revoke producers, drain staged
  /// tuples through the watermark merger into the still-running query),
  /// stop accepting inserts (lifecycle → Draining; later inserts drop and
  /// count), flush the sub-φ remainder, wait for in-flight tasks and the
  /// assembly line to complete, then retire: sweep the task queue, free the
  /// input buffers, reset the matrix/scheduler slot and recycle it. The
  /// handle stays valid for statistics. Errors: NotFound (handle unknown to
  /// this engine), InvalidArgument (already Draining/Retired, one half of a
  /// Connect pair, or called from an engine worker thread — a worker
  /// waiting on its own pipeline would deadlock).
  Status RemoveQuery(QueryHandle* query);

  /// Routes `from`'s output stream into input `input` of `to` (operator
  /// graphs spanning multiple queries: SG3, LRB4). Connected queries form
  /// one pipeline and cannot be individually removed.
  void Connect(QueryHandle* from, QueryHandle* to, int input = 0);

  /// Engine-managed sharded ingress for `q`'s input `input` (see
  /// QueryHandle::AttachIngress).
  Result<ingest::ShardedIngress*> AttachIngress(
      QueryHandle* q, int input, const ingest::IngressOptions& options);

  void Start();

  /// Flushes sub-batch remainders and blocks until every dispatched task has
  /// been executed and assembled (including tasks spawned through query
  /// connections), then stops the workers. Event-driven: sleeps on the
  /// assembly-completion channel instead of polling.
  void Drain();

  /// Immediate stop (pending tasks are abandoned).
  void Stop();

  /// Queries currently occupying a slot (Admitted/Running/Draining).
  size_t num_live_queries() const;

  const ThroughputMatrix& matrix() const { return *matrix_; }
  ThroughputMatrix& matrix() { return *matrix_; }
  SimDevice* device() { return device_.get(); }
  size_t queue_depth() const { return task_queue_->size(); }
  const EngineOptions& options() const { return options_; }

  /// Device-failed tasks retried (requeued CPU-narrowed) by the failover
  /// path, and quarantine episodes entered (gpu_quarantine_threshold
  /// consecutive failures). Both zero in fault-free runs.
  int64_t gpu_task_retries() const { return gpu_task_retries_.value(); }
  int64_t device_quarantines() const { return device_quarantines_.value(); }

  /// The metrics registry this engine's counters live on — owned unless
  /// EngineOptions::metrics supplied one. `metrics()->Snapshot()` is the
  /// DumpMetrics API; net::HttpMetricsServer serves the same registry.
  obs::MetricsRegistry* metrics() const { return metrics_; }
  /// The task-path trace ring, or nullptr when trace_sample_rate == 0.
  obs::TraceRing* trace() const { return trace_.get(); }

 private:
  friend class QueryHandle;

  void InsertInto(QueryState& qs, int input, const void* tuples, size_t bytes);
  Status SetSinkFor(QueryState& qs,
                    std::function<void(const uint8_t*, size_t)> sink);
  void TryCreateTasks(QueryState& qs);
  bool FlushRemainder(QueryState& qs);
  void CreateSingleInputTask(QueryState& qs, int64_t end_pos);
  bool TryCreateJoinTask(QueryState& qs, bool flush);
  /// Trace-sampling decision for a freshly cut task (resets the pooled
  /// task's span fields). One pointer test when tracing is off.
  void SampleForTrace(QueryState& qs, QueryTask* t);
  void PushTask(QueryState& qs, QueryTask* task);

  TaskContext BuildContext(QueryState& qs, const QueryTask& t) const;
  SpanPair SpanFor(const CircularBuffer& buf, int64_t from, int64_t to) const;

  void CpuWorkerLoop(int worker_id);
  void GpuWorkerLoop();
  void StoreAndAssemble(QueryState& qs, QueryTask* task, TaskResult* result,
                        Processor p);
  void TryAssemble(QueryState& qs);

  int64_t TsAt(const CircularBuffer& buf, const Schema& schema,
               int64_t pos) const;

  /// Live QueryState for a slot, or nullptr. Lock-free: the pointer is
  /// guaranteed non-null while any task of the slot's query is dispatched
  /// and not yet assembled (retire waits for the counters to converge).
  QueryState* LiveSlot(int index) const {
    return live_[static_cast<size_t>(index)].load(std::memory_order_acquire);
  }
  /// Registry snapshot (shared ownership) for control-plane iteration.
  std::vector<std::shared_ptr<QueryState>> SnapshotQueries() const;
  /// Final teardown of a quiesced query. Caller holds registry_mu_.
  void RetireLocked(const std::shared_ptr<QueryState>& qs);

  /// Registers a freshly admitted query's counters on metrics_. Caller
  /// holds registry_mu_.
  void RegisterQueryMetricsLocked(QueryState& qs);

  EngineOptions options_;
  /// Declared first so it is destroyed last: external series registered by
  /// engine-owned components stay valid for any Snapshot taken while the
  /// engine is alive. (With a borrowed registry, ~Engine unregisters.)
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::TraceRing> trace_;
  // Destruction order: queries (operators) must die before the device, so
  // every QueryState owner (registry_, handles_) is declared after device_.
  std::unique_ptr<SimDevice> device_;
  std::unique_ptr<ThroughputMatrix> matrix_;
  std::unique_ptr<TaskQueue> task_queue_;
  std::unique_ptr<Scheduler> policy_;
  std::unique_ptr<ObjectPool<QueryTask>> task_pool_;
  std::unique_ptr<ObjectPool<TaskResult>> result_pool_;

  /// Query registry. Writers (admission, retirement, Connect bookkeeping)
  /// serialize on registry_mu_; the data path never takes it — workers and
  /// the dispatcher go through live_, a fixed array of per-slot atomic
  /// pointers (RCU-flavored: writers publish/retract, readers are
  /// lock-free, and retirement is deferred until no reader can hold the
  /// pointer — the quiesce phases play the role of the grace period).
  /// registry_ holds the owning references; handles_ co-own so statistics
  /// outlive retirement; slot i is free iff registry_[i] == nullptr.
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<QueryState>> registry_;
  std::unique_ptr<std::atomic<QueryState*>[]> live_;
  /// Connect edges (from-slot, to-slot): members of a connected pair are
  /// not individually removable.
  std::vector<std::pair<int, int>> connections_;
  std::vector<std::unique_ptr<QueryHandle>> handles_;

  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// GPGPU failover counters (see the public accessors); registered on
  /// metrics_ as saber_gpu_task_retries_total / saber_gpu_quarantines_total.
  obs::Counter gpu_task_retries_;
  obs::Counter device_quarantines_;

  /// True on engine worker threads (CPU workers and the GPGPU worker).
  /// Worker-context task dispatch — a connected query's sink running inside
  /// the result stage — must bypass the task queue's capacity bound, or a
  /// worker holding an assembly token can deadlock against its own queue
  /// (see TaskQueue::Push).
  static thread_local bool in_worker_thread_;

  /// Drain's and RemoveQuery's wakeup channel (the "drained condition"):
  /// bumped (futex notify) by TryAssemble after every assembly batch and by
  /// Stop after the workers join; waiters read it before their idleness
  /// check and sleep until it changes, so a completion landing mid-check is
  /// never lost. 32-bit for the raw-futex fast path; wrap-around is
  /// harmless (inequality compare only).
  std::atomic<uint32_t> assembly_gen_{0};
};

}  // namespace saber
