#pragma once

#include <string>

#include "relational/schema.h"
#include "relational/tuple_ref.h"
#include "runtime/byte_buffer.h"

/// \file window_udf.h
/// User-defined operator functions (§2.4): "Operator functions may also be
/// specified as user-defined functions (UDFs), which implement bespoke
/// computation per window." The hybrid model decomposes every operator into
/// a fragment function f_f and an assembly function f_a (§3); for a generic
/// UDF the engine uses the universal decomposition
///
///   f_f = collect the window-fragment tuples (per pane, lazily serialized),
///   f_a = evaluate the UDF over the assembled window(s),
///
/// which is sound for any operator function because the concatenation of the
/// window fragments *is* the window. Fragment collection runs data-parallel
/// on either processor (work group per pane on the simulated GPGPU, §5.4);
/// the UDF itself runs in the strictly-ordered assembly stage on a CPU
/// worker, like every assembly operator function (§5.4: "the assembly
/// operator function ... is evaluated by one of the CPU worker threads").

namespace saber {

/// A read-only view over one assembled window of one input stream: the
/// window's tuples, serialized back to back in arrival order.
struct WindowView {
  const Schema* schema = nullptr;
  const uint8_t* data = nullptr;
  size_t num_tuples = 0;

  const uint8_t* tuple_bytes(size_t i) const {
    return data + i * schema->tuple_size();
  }
  TupleRef tuple(size_t i) const { return TupleRef(tuple_bytes(i), schema); }
  bool empty() const { return num_tuples == 0; }
};

/// An n-ary window operator function (§2.4): maps one window per input
/// stream to a window result. Implementations must be stateless across
/// windows and thread-compatible (const methods may run on any worker).
class WindowUdf {
 public:
  virtual ~WindowUdf() = default;

  /// Human-readable operator name (used in logs and ToString).
  virtual std::string name() const = 0;

  /// Output schema for the given input schemas. Field 0 must be an int64
  /// timestamp; to keep the result stream ordered (§2.4), implementations
  /// should stamp every emitted row with `window_ts` (the maximum tuple
  /// timestamp across the input windows), which is monotone across windows.
  virtual Schema DeriveOutputSchema(const Schema* inputs, int n) const = 0;

  /// Evaluates the operator function over one n-tuple of windows, appending
  /// serialized output rows to `out`. Called once per window, in window
  /// order, only for windows with at least one tuple in at least one input.
  virtual void OnWindow(const WindowView* views, int n, int64_t window_ts,
                        ByteBuffer* out) const = 0;
};

}  // namespace saber
