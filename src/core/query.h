#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/window_udf.h"
#include "relational/aggregate.h"
#include "relational/expression.h"
#include "relational/schema.h"
#include "runtime/status.h"
#include "runtime/strcat.h"
#include "window/window_definition.h"

/// \file query.h
/// The logical definition of a window-based streaming query (§2.4): per-input
/// window functions ω, a (possibly compound) operator function f, and the
/// relation-to-stream function φ. SABER compiles a streaming SQL query into
/// an operator graph; here the graph of relational operators that share a
/// pass (σ, π, α with GROUP-BY/HAVING, or ⋈) is fused into one QueryDef, and
/// larger graphs (e.g. SG3 = join over the outputs of SG1/SG2) are built by
/// chaining queries through streams (Engine::Connect).
///
/// Each input stream expects ONE logical producer with non-decreasing
/// timestamps (validated at the Engine::InsertInto boundary). Workloads
/// with many client threads per stream front the query with the sharded
/// ingestion stage (ingest::ShardedIngress, src/ingest/), whose watermark
/// merger re-establishes that contract from N independent shards.

namespace saber {

/// Engine-wide operator limits. The CPU and GPGPU batch operator functions
/// keep per-pane aggregate state and packed group keys in fixed-size stack
/// buffers sized by these constants, so the limits are validated once at
/// query-build time (QueryBuilder::TryBuild / Engine::AddQuery) and misuse
/// fails there with a clear Status instead of aborting mid-task on a worker
/// thread.
inline constexpr size_t kMaxAggregatesPerQuery = 16;
/// Packed group-key width bound: keys serialize as 8 bytes per GROUP-BY
/// expression, 8-aligned (PaneFormat), so this allows up to 8 key columns.
inline constexpr size_t kMaxGroupKeyBytes = 64;

enum class StreamFunction : uint8_t {
  kRStream,  // concatenate window results (default for α and ⋈, §2.4)
  kIStream,  // only newly arrived tuples (default for π and σ, §2.4)
};

/// Lifecycle of a registered query inside a (possibly running) engine.
/// Transitions are strictly forward:
///
///   kAdmitted ──Start()──► kRunning ──RemoveQuery()──► kDraining ─► kRetired
///        └──────────(AddQuery on a running engine admits straight to Running)
///
/// kAdmitted: registered before Engine::Start(); inserts are staged.
/// kRunning:  inserts accepted, tasks dispatched and scheduled.
/// kDraining: inserts rejected (counted in tuples_dropped); staged ingest,
///            in-flight tasks and the result-stage assembly line drain.
/// kRetired:  buffers freed, slot recycled; the handle stays valid for stats.
enum class QueryLifecycle : uint8_t { kAdmitted, kRunning, kDraining, kRetired };

inline const char* QueryLifecycleName(QueryLifecycle s) {
  switch (s) {
    case QueryLifecycle::kAdmitted: return "Admitted";
    case QueryLifecycle::kRunning: return "Running";
    case QueryLifecycle::kDraining: return "Draining";
    case QueryLifecycle::kRetired: return "Retired";
  }
  return "?";
}

/// How the assembly stage computes sliding-window aggregates from pane
/// partials (§5.3). kAuto picks the cheapest sound strategy: subtract-based
/// incremental for invertible functions, two-stacks (two_stacks.h, [50]) for
/// non-invertible ungrouped ones, re-merge otherwise. kRemergeOnly forces the
/// naive merge-all-panes-per-window path (ablation baseline).
enum class AssemblyMode : uint8_t { kAuto, kRemergeOnly };

/// Fully-resolved query definition. Instances are immutable once built and
/// shared by all query tasks; construction goes through QueryBuilder.
struct QueryDef {
  std::string name;
  int num_inputs = 1;
  Schema input_schema[2];
  WindowDefinition window[2];
  StreamFunction stream_fn = StreamFunction::kIStream;

  /// Optional selection predicate, applied per input tuple (single-input
  /// queries only; join filters go into join_predicate).
  ExprPtr where;

  /// Projection list (empty if the query aggregates). Expression i produces
  /// output field i. Field 0 must be the timestamp passthrough.
  std::vector<ExprPtr> select;

  /// Aggregation (empty if the query projects).
  std::vector<AggregateSpec> aggregates;
  std::vector<ExprPtr> group_by;  // integral key expressions
  ExprPtr having;                 // evaluated over the *output* row

  AssemblyMode assembly_mode = AssemblyMode::kAuto;

  /// Weighted-fair scheduling share. The HLS scheduler charges each query's
  /// virtual service as bytes/weight, so a weight-8 query receives ~8x the
  /// execution bytes of a weight-1 query under contention. Must be > 0.
  double weight = 1.0;

  /// θ-join predicate over a (left, right) tuple pair; set iff num_inputs==2.
  ExprPtr join_predicate;
  /// Join projection: expressions over (left, right); field 0 = timestamp.
  std::vector<ExprPtr> join_select;

  /// User-defined window operator function (§2.4); mutually exclusive with
  /// select/aggregates/join_predicate. Shared because QueryDef is copyable.
  std::shared_ptr<const WindowUdf> udf;

  Schema output_schema;

  bool is_aggregation() const { return !aggregates.empty(); }
  bool is_udf() const { return udf != nullptr; }
  bool is_join() const { return num_inputs == 2 && !is_udf(); }
  bool is_stateless() const {
    return !is_aggregation() && !is_join() && !is_udf();
  }
  bool grouped() const { return !group_by.empty(); }

  /// Serialized width of one group key (8 bytes per key expression).
  size_t group_key_size() const { return group_by.size() * 8; }

  /// Checks the fixed operator limits (kMaxAggregatesPerQuery,
  /// kMaxGroupKeyBytes). QueryBuilder::TryBuild surfaces the Status;
  /// Engine::AddQuery re-checks for hand-built QueryDefs.
  Status ValidateLimits() const {
    if (aggregates.size() > kMaxAggregatesPerQuery) {
      return Status::InvalidArgument(StrCat(
          "query '", name, "' has ", aggregates.size(),
          " aggregate columns; the operator limit is kMaxAggregatesPerQuery=",
          kMaxAggregatesPerQuery));
    }
    if (group_key_size() > kMaxGroupKeyBytes) {  // always 8 bytes per key
      return Status::InvalidArgument(StrCat(
          "query '", name, "' has ", group_by.size(),
          " GROUP-BY keys (packed key ", group_key_size(),
          " bytes); the operator limit is kMaxGroupKeyBytes=",
          kMaxGroupKeyBytes, " (8 bytes per key)"));
    }
    if (!(weight > 0.0)) {  // also rejects NaN
      return Status::InvalidArgument(StrCat(
          "query '", name, "' has scheduling weight ", weight,
          "; weights must be > 0"));
    }
    for (int i = 0; i < num_inputs; ++i) {
      if (!window[i].session()) continue;
      // Sessions are data-driven (no aligned pane grid), so only the
      // aggregation path — whose assembly merges adjacent segment partials
      // by gap — implements them. Projection/UDF/join would need per-path
      // session state that does not exist.
      if (!is_aggregation()) {
        return Status::InvalidArgument(StrCat(
            "query '", name, "' uses a session window on input ", i,
            "; session windows are supported for aggregation queries only"));
      }
      if (window[i].unbounded) {
        return Status::InvalidArgument(StrCat(
            "query '", name, "' combines session and unbounded on input ", i));
      }
    }
    return Status::OK();
  }
};

/// Fluent builder for QueryDef. Example (CM1, Appendix A.1):
///
///   QueryDef q = QueryBuilder("CM1", schema)
///       .Window(WindowDefinition::Time(60, 1))
///       .GroupBy({Col(schema, "category")})
///       .Aggregate(AggregateFunction::kSum, Col(schema, "cpu"), "totalCpu")
///       .Build();
class QueryBuilder {
 public:
  QueryBuilder(std::string name, Schema input) : def_() {
    def_.name = std::move(name);
    def_.num_inputs = 1;
    def_.input_schema[0] = std::move(input);
    def_.window[0] = WindowDefinition::Count(1, 1);
  }

  /// Two-input (join) query.
  QueryBuilder(std::string name, Schema left, Schema right) : def_() {
    def_.name = std::move(name);
    def_.num_inputs = 2;
    def_.input_schema[0] = std::move(left);
    def_.input_schema[1] = std::move(right);
    def_.window[0] = WindowDefinition::Count(1, 1);
    def_.window[1] = WindowDefinition::Count(1, 1);
  }

  QueryBuilder& Window(WindowDefinition w) {
    def_.window[0] = w;
    if (def_.num_inputs == 2) def_.window[1] = w;
    return *this;
  }
  QueryBuilder& WindowRight(WindowDefinition w) {
    def_.window[1] = w;
    return *this;
  }

  QueryBuilder& Where(ExprPtr predicate) {
    def_.where = std::move(predicate);
    return *this;
  }

  /// Adds a projected output column. Name defaults to the expression text.
  QueryBuilder& Select(ExprPtr expr, std::string name = "") {
    if (name.empty()) name = StrCat("col", def_.select.size());
    def_.select.push_back(std::move(expr));
    select_names_.push_back(std::move(name));
    return *this;
  }

  QueryBuilder& GroupBy(std::vector<ExprPtr> keys,
                        std::vector<std::string> names = {}) {
    def_.group_by = std::move(keys);
    group_names_ = std::move(names);
    return *this;
  }

  QueryBuilder& Aggregate(AggregateFunction fn, ExprPtr input,
                          std::string name = "") {
    if (name.empty()) {
      name = std::string(AggregateName(fn)) + std::to_string(def_.aggregates.size());
    }
    def_.aggregates.push_back(AggregateSpec{fn, std::move(input), std::move(name)});
    return *this;
  }

  QueryBuilder& Having(ExprPtr predicate) {
    def_.having = std::move(predicate);
    return *this;
  }

  QueryBuilder& Assembly(AssemblyMode mode) {
    def_.assembly_mode = mode;
    return *this;
  }

  /// Sets the weighted-fair scheduling share (default 1.0, must be > 0).
  QueryBuilder& Weight(double weight) {
    def_.weight = weight;
    return *this;
  }

  /// Installs a user-defined window operator function (§2.4). Mutually
  /// exclusive with Select/Aggregate/JoinOn; WHERE is not applied (filter
  /// inside the UDF instead).
  QueryBuilder& Udf(std::shared_ptr<const WindowUdf> udf) {
    def_.udf = std::move(udf);
    return *this;
  }

  QueryBuilder& JoinOn(ExprPtr predicate) {
    def_.join_predicate = std::move(predicate);
    return *this;
  }

  /// Adds a join output column (expressions may reference both sides).
  QueryBuilder& JoinSelect(ExprPtr expr, std::string name = "") {
    if (name.empty()) name = StrCat("col", def_.join_select.size());
    def_.join_select.push_back(std::move(expr));
    join_names_.push_back(std::move(name));
    return *this;
  }

  /// Builds the QueryDef, returning a Status instead of aborting when a
  /// fixed operator limit (kMaxAggregatesPerQuery, kMaxGroupKeyBytes) is
  /// exceeded. Structural invariants (missing timestamp, join without a
  /// predicate, ...) remain programmer errors and still SABER_CHECK.
  Result<QueryDef> TryBuild() {
    FinalizeOutputSchema();
    Validate();
    Status limits = def_.ValidateLimits();
    if (!limits.ok()) return limits;
    return std::move(def_);
  }

  /// Abort-on-error variant of TryBuild (the common fluent-call tail).
  QueryDef Build() { return std::move(TryBuild()).value(); }

 private:
  void FinalizeOutputSchema() {
    Schema out;
    if (def_.is_udf()) {
      def_.output_schema =
          def_.udf->DeriveOutputSchema(def_.input_schema, def_.num_inputs);
      def_.stream_fn = StreamFunction::kRStream;
      return;
    }
    if (def_.is_join()) {
      if (def_.join_select.empty()) {
        // Default: timestamp + all left fields + all right non-ts fields.
        def_.join_select.push_back(MaxTsExpr());
        join_names_.insert(join_names_.begin(), "timestamp");
        AppendAllColumns(def_.input_schema[0], Side::kLeft, "l_");
        AppendAllColumns(def_.input_schema[1], Side::kRight, "r_");
      }
      for (size_t i = 0; i < def_.join_select.size(); ++i) {
        out.AddField(join_names_[i], def_.join_select[i]->output_type());
      }
    } else if (def_.is_aggregation()) {
      out.AddField("timestamp", DataType::kInt64);
      for (size_t i = 0; i < def_.group_by.size(); ++i) {
        const std::string n =
            i < group_names_.size() ? group_names_[i] : StrCat("key", i);
        out.AddField(n, DataType::kInt64);
      }
      for (const auto& a : def_.aggregates) out.AddField(a.name, DataType::kDouble);
    } else {
      if (def_.select.empty()) {
        // Identity projection.
        for (size_t i = 0; i < def_.input_schema[0].num_fields(); ++i) {
          def_.select.push_back(ColAt(def_.input_schema[0], i));
          select_names_.push_back(def_.input_schema[0].field(i).name);
        }
      }
      for (size_t i = 0; i < def_.select.size(); ++i) {
        out.AddField(select_names_[i], def_.select[i]->output_type());
      }
    }
    def_.output_schema = std::move(out);
    def_.stream_fn = (def_.is_aggregation() || def_.is_join())
                         ? StreamFunction::kRStream
                         : StreamFunction::kIStream;
  }

  void Validate() {
    SABER_CHECK(!(def_.is_aggregation() && !def_.select.empty()));
    SABER_CHECK(def_.input_schema[0].has_timestamp());
    if (def_.is_udf()) {
      SABER_CHECK(def_.select.empty() && def_.aggregates.empty() &&
                  def_.join_predicate == nullptr && def_.where == nullptr);
      SABER_CHECK(def_.output_schema.has_timestamp());
      if (def_.num_inputs == 2) SABER_CHECK(def_.input_schema[1].has_timestamp());
      SABER_CHECK(!def_.window[0].unbounded);
      return;
    }
    if (def_.is_join()) {
      SABER_CHECK(def_.join_predicate != nullptr);
      SABER_CHECK(def_.input_schema[1].has_timestamp());
    }
    if (def_.is_stateless()) {
      // Field 0 of the output must be the timestamp for downstream chaining.
      SABER_CHECK(def_.output_schema.num_fields() > 0);
    }
  }

  ExprPtr MaxTsExpr() {
    // max(L.ts, R.ts) is not directly expressible; the join operator treats
    // output field 0 specially and stamps max(ts_l, ts_r). A left-ts column
    // expression is kept as a placeholder for the schema type.
    return ColAt(def_.input_schema[0], 0, Side::kLeft);
  }

  void AppendAllColumns(const Schema& s, Side side, const std::string& prefix) {
    for (size_t i = 1; i < s.num_fields(); ++i) {
      def_.join_select.push_back(ColAt(s, i, side));
      join_names_.push_back(prefix + s.field(i).name);
    }
  }

  QueryDef def_;
  std::vector<std::string> select_names_;
  std::vector<std::string> group_names_;
  std::vector<std::string> join_names_;
};

}  // namespace saber
