#pragma once

#include <cstdint>

/// \file task.h
/// The query task of §3: "the operator graph is bundled with a batch of
/// stream data to form a query task that can be scheduled on a heterogeneous
/// processor". A QueryTask holds only positions into the query's circular
/// input buffers (§4.1: start pointer, end pointer, free pointer); the
/// worker materializes spans from them at execution time.

namespace saber {

/// A heterogeneous processor (§1: "by processor we refer to either an
/// individual CPU core or an entire GPGPU").
enum class Processor : uint8_t { kCpu = 0, kGpu = 1 };
inline constexpr int kNumProcessors = 2;

inline const char* ProcessorName(Processor p) {
  return p == Processor::kCpu ? "CPU" : "GPGPU";
}

/// Bit set over processors. The scheduling stage uses it for targeted
/// wakeups: when a task enters the queue, only workers whose processor could
/// plausibly select it are notified (see Scheduler::EligibleProcessors).
using ProcessorMask = uint8_t;

inline constexpr ProcessorMask ProcessorBit(Processor p) {
  return static_cast<ProcessorMask>(1u << static_cast<int>(p));
}
inline constexpr ProcessorMask kAllProcessors =
    static_cast<ProcessorMask>((1u << kNumProcessors) - 1);
inline constexpr bool MaskHas(ProcessorMask m, Processor p) {
  return (m & ProcessorBit(p)) != 0;
}

struct QueryTask {
  /// Dense per-query identifier assigned at dispatch; the result stage uses
  /// it to reorder out-of-order completions (§4.1 "query task identifier").
  int64_t id = 0;
  /// Engine-wide query index (row of the throughput matrix).
  int query_index = 0;
  int num_inputs = 1;

  struct Input {
    int64_t start_pos = 0;  // batch start byte position in the circular buffer
    int64_t end_pos = 0;    // batch end (exclusive)
    int64_t first_index = 0;   // global tuple index of the first batch tuple
    int64_t first_ts = 0;      // timestamp of the first batch tuple
    int64_t last_ts = 0;       // timestamp of the last batch tuple
    int64_t prev_last_ts = -1; // last timestamp of the previous batch
    /// Join window extent preceding the batch (equals start_pos for
    /// single-input queries).
    int64_t hist_start_pos = 0;
    int64_t hist_first_index = 0;
    /// Free pointer (§4.1): bytes before this position may be released once
    /// the task's results have been collected.
    int64_t free_pos = 0;
  } in[2];

  int64_t dispatched_nanos = 0;  // for end-to-end latency accounting
  int64_t total_bytes = 0;       // query task size contribution (Σ|b_i|)

  /// Processors allowed to execute this task. Dispatch creates every task
  /// with kAllProcessors; the GPGPU failover path narrows a failed task to
  /// the CPU before requeueing it, so the schedulers route the retry away
  /// from the failing device.
  ProcessorMask allowed = kAllProcessors;

  /// Sampled task-path tracing (obs/trace.h). Tasks are pooled, so dispatch
  /// must reset `traced` on every (re)initialization; the remaining stamps
  /// are only read when `traced` is set. Keeping the span inline bounds
  /// trace memory by the number of in-flight tasks — no per-span allocation.
  bool traced = false;
  /// Executing backend for the span: 0 = CPU worker, 1 = GPGPU.
  int32_t trace_backend = 0;
  int64_t trace_insert_nanos = 0;    // newest insert feeding the batch
  int64_t trace_queued_nanos = 0;    // pushed to the system-wide queue
  int64_t trace_select_nanos = 0;    // scheduler handed it to a worker
  int64_t trace_exec_end_nanos = 0;  // operator / device pipeline finished
};

}  // namespace saber
