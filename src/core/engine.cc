#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "cpu/cpu_operators.h"
#include "fault/fault_registry.h"
#include "ingest/ingress_options.h"
#include "ingest/sharded_ingress.h"
#include "relational/tuple_ref.h"
#include "runtime/clock.h"
#include "runtime/strcat.h"

namespace saber {

namespace {
constexpr int kEmpty = 0;
constexpr int kStored = 1;

/// Bucket bounds for saber_task_latency_nanos: 100 µs .. 5 s, roughly
/// 1-2.5-5 per decade. The precise per-query percentiles stay with the
/// log-linear LatencyHistogram (QueryHandle::latency()); this fixed-bucket
/// copy is the exposition surface a scraper can aggregate across queries.
std::vector<int64_t> TaskLatencyBounds() {
  return {100'000,     250'000,     500'000,       1'000'000,
          2'500'000,   5'000'000,   10'000'000,    25'000'000,
          50'000'000,  100'000'000, 250'000'000,   500'000'000,
          1'000'000'000, 2'500'000'000, 5'000'000'000};
}
}  // namespace

thread_local bool Engine::in_worker_thread_ = false;

/// Per-query engine state. Owned jointly by the registry slot and the
/// query's handle (shared_ptr): retirement frees the heavyweight pieces
/// (input buffers, ingress) and detaches the slot, while the statistics,
/// controller and definition stay readable through the handle forever.
struct QueryState {
  struct Slot {
    std::atomic<int> status{0};  // 0 = empty, 1 = stored
    QueryTask* task = nullptr;
    TaskResult* result = nullptr;
  };

  QueryDef def;
  int index = 0;
  size_t task_size = 0;  // configured (maximum) φ rounded to the tuple size

  // Dynamic lifecycle (docs/architecture.md, "Query lifecycle & admission").
  // Admitted -> Running -> Draining -> Retired, monotone. The store to
  // kDraining and the insert-pin fetch_add below are both seq_cst: either
  // the producer observes Draining (and drops), or RemoveQuery observes the
  // pin (and waits) — never neither.
  std::atomic<QueryLifecycle> lifecycle{QueryLifecycle::kAdmitted};
  /// Producers inside InsertInto hold a pin; RemoveQuery flips the
  /// lifecycle, wakes the free channels and waits for pins to reach zero
  /// before it may touch the buffers. notify on the 1 -> 0 edge.
  std::atomic<int> insert_refs{0};
  /// Tuples rejected because they arrived at a Draining/Retired query.
  obs::Counter tuples_dropped;
  /// Claimed by the (single) RemoveQuery call that will retire this query.
  std::atomic<bool> removal_started{false};

  // Owns the live φ (task_size_controller.h): the dispatcher reads
  // controller->phi() on every cut decision, the result stage feeds it
  // latencies under the assembly token.
  std::unique_ptr<TaskSizeController> controller;
  std::unique_ptr<Operator> cpu_op;
  std::unique_ptr<GpuOperatorBase> gpu_op;

  // Dispatching stage (§4.1). buffer[i] is non-null from admission until
  // retirement; every dereference outside a pinned InsertInto happens under
  // dispatch_mu, which is also where retirement resets it.
  std::unique_ptr<CircularBuffer> buffer[2];
  std::mutex dispatch_mu;
  /// Last inserted timestamp per input, for the InsertInto boundary
  /// validation. Producer-thread-private (one logical producer per input
  /// stream), so unlocked: for connected queries successive writers are
  /// serialized by the assembly token's release/acquire pair.
  int64_t insert_prev_ts[2] = {std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::min()};
  int64_t next_task_start[2] = {0, 0};
  int64_t tuples_dispatched[2] = {0, 0};
  int64_t prev_last_ts[2] = {-1, -1};
  int64_t last_ingest_ts[2] = {-1, -1};
  int64_t window_start_pos[2] = {0, 0};
  int64_t window_start_index[2] = {0, 0};
  int64_t next_task_id = 0;
  std::atomic<int64_t> tasks_dispatched{0};

  // Engine-managed sharded ingress fronts (AttachIngress), revoked and
  // drained as the first phase of RemoveQuery, stopped by Engine::Stop.
  std::unique_ptr<ingest::ShardedIngress> ingress[2];

  // Result stage (§4.3).
  static constexpr size_t kSlots = 128;
  /// Stateless and join queries assemble by concatenation (§4.3); their
  /// fragment results are forwarded zero-copy instead of re-buffered.
  bool concat_assembly = false;
  std::vector<std::unique_ptr<Slot>> slots;
  std::atomic<int64_t> next_assemble{0};
  std::atomic<bool> assembling{false};
  std::atomic<int64_t> tasks_assembled{0};
  std::unique_ptr<AssemblyState> assembly_state;
  ByteBuffer assembly_scratch;
  std::function<void(const uint8_t*, size_t)> sink;

  // Statistics. The obs::Counter members *are* the metrics-registry series
  // for this query (registered externally by the engine at admission with
  // labels {query, slot}); the handle accessors read the same storage, so a
  // /metrics scrape and QueryHandle::bytes_in() can never diverge. A handle
  // keeps the state — and with it the series storage — alive past
  // retirement; the engine repoints the series when the slot is recycled.
  obs::Counter bytes_in;
  obs::Counter tuples_in;
  obs::Counter rows_out;
  obs::Counter tasks_on[kNumProcessors];
  obs::Counter bytes_on[kNumProcessors];
  LatencyHistogram latency;
  /// Fixed-bucket exposition twin of `latency` (see TaskLatencyBounds).
  obs::Histogram latency_hist{TaskLatencyBounds()};
  /// Wall clock of the newest insert (any input); the trace span's insert
  /// stage start. Only stamped while tracing is armed.
  std::atomic<int64_t> last_insert_nanos{0};
};

namespace {
/// Registry labels for one query's series: the slot uniquely identifies a
/// live query even when names collide or are empty.
obs::Labels QueryMetricLabels(const QueryState& qs) {
  return {{"query", qs.def.name.empty() ? StrCat("q", qs.index) : qs.def.name},
          {"slot", StrCat(qs.index)}};
}
}  // namespace

namespace {
using Slot = QueryState::Slot;

/// RAII insert pin: taken before the lifecycle check in InsertInto, released
/// on every exit path. The release notifies RemoveQuery's wait on the
/// 1 -> 0 edge.
struct InsertPin {
  explicit InsertPin(QueryState& qs) : qs(qs) {
    qs.insert_refs.fetch_add(1);  // seq_cst: pairs with the kDraining store
  }
  ~InsertPin() {
    if (qs.insert_refs.fetch_sub(1) == 1) qs.insert_refs.notify_all();
  }
  QueryState& qs;
};

bool AcceptingInserts(const QueryState& qs) {
  const QueryLifecycle lc = qs.lifecycle.load();  // seq_cst, see InsertPin
  return lc == QueryLifecycle::kAdmitted || lc == QueryLifecycle::kRunning;
}
}  // namespace

// ===========================================================================
// QueryHandle forwarding.
// ===========================================================================

void QueryHandle::InsertInto(int input, const void* tuples, size_t bytes) {
  engine_->InsertInto(*qs_, input, tuples, bytes);
}
Status QueryHandle::SetSink(std::function<void(const uint8_t*, size_t)> sink) {
  return engine_->SetSinkFor(*qs_, std::move(sink));
}
Result<ingest::ShardedIngress*> QueryHandle::AttachIngress(
    const ingest::IngressOptions& options, int input) {
  return engine_->AttachIngress(this, input, options);
}
const QueryDef& QueryHandle::def() const { return qs_->def; }
const Schema& QueryHandle::output_schema() const {
  return qs_->def.output_schema;
}
QueryLifecycle QueryHandle::lifecycle() const { return qs_->lifecycle.load(); }
double QueryHandle::weight() const { return qs_->def.weight; }
int64_t QueryHandle::bytes_in() const { return qs_->bytes_in.value(); }
int64_t QueryHandle::tuples_in() const { return qs_->tuples_in.value(); }
int64_t QueryHandle::rows_out() const { return qs_->rows_out.value(); }
int64_t QueryHandle::tuples_dropped() const {
  return qs_->tuples_dropped.value();
}
int64_t QueryHandle::tasks_on(Processor p) const {
  return qs_->tasks_on[static_cast<int>(p)].value();
}
int64_t QueryHandle::bytes_on(Processor p) const {
  return qs_->bytes_on[static_cast<int>(p)].value();
}
obs::Labels QueryHandle::metric_labels() const {
  return QueryMetricLabels(*qs_);
}
const LatencyHistogram& QueryHandle::latency() const { return qs_->latency; }
size_t QueryHandle::current_task_size() const {
  return qs_->controller->phi();
}
ControllerStats QueryHandle::controller_stats() const {
  return qs_->controller->Stats();
}

// ===========================================================================
// Engine lifecycle.
// ===========================================================================

Engine::Engine(EngineOptions options) : options_(options) {
  SABER_CHECK(options_.max_queries > 0 &&
              options_.max_queries <= kMaxQuerySlots);
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.trace_sample_rate > 0.0) {
    trace_ = std::make_unique<obs::TraceRing>(options_.trace_sample_rate,
                                              options_.trace_ring_spans);
  }
  if (options_.use_gpu) {
    device_ = std::make_unique<SimDevice>(options_.device);
  }
  // Sized for the slot capacity up front (queries appear and vanish at
  // runtime; the matrix and scheduler never resize).
  matrix_ = std::make_unique<ThroughputMatrix>(options_.max_queries,
                                               options_.matrix_initial_rate,
                                               options_.matrix_update_nanos);
  task_queue_ = std::make_unique<TaskQueue>(options_.task_queue_capacity);
  // Rate drift can flip task preferences: instead of re-polling the queue on
  // a timer, blocked workers are woken whenever the matrix publishes.
  matrix_->SetRefreshListener([this] { task_queue_->OnEligibilityChanged(); });
  task_pool_ = std::make_unique<ObjectPool<QueryTask>>(
      [] { return std::make_unique<QueryTask>(); }, 64);
  result_pool_ = std::make_unique<ObjectPool<TaskResult>>(
      [] { return std::make_unique<TaskResult>(); }, 64);
  switch (options_.scheduler) {
    case SchedulerKind::kHls:
      policy_ = std::make_unique<HlsScheduler>(
          options_.switch_threshold, options_.hls_lookahead,
          /*cpu_enabled=*/options_.num_cpu_workers > 0,
          /*gpu_enabled=*/options_.use_gpu);
      break;
    case SchedulerKind::kFcfs:
      policy_ = std::make_unique<FcfsScheduler>();
      break;
    case SchedulerKind::kStatic:
      policy_ = std::make_unique<StaticScheduler>(options_.static_assignment);
      break;
  }
  registry_.resize(options_.max_queries);
  live_.reset(new std::atomic<QueryState*>[options_.max_queries]);
  for (size_t i = 0; i < options_.max_queries; ++i) live_[i].store(nullptr);

  metrics_->RegisterCounter(
      "saber_gpu_task_retries_total", {}, &gpu_task_retries_, this,
      "Device-failed tasks requeued (CPU-narrowed) by GPGPU failover");
  metrics_->RegisterCounter("saber_gpu_quarantines_total", {},
                            &device_quarantines_, this,
                            "GPGPU quarantine episodes entered");
  // Point-in-time values and lazily-owned counters fold in at snapshot time
  // (the collector contract in obs/metrics.h).
  obs::Gauge* queue_depth_gauge = metrics_->GetGauge(
      "saber_engine_queue_depth", {}, "Tasks in the system-wide task queue");
  obs::Gauge* live_queries_gauge = metrics_->GetGauge(
      "saber_engine_live_queries", {},
      "Queries occupying a slot (Admitted/Running/Draining)");
  // Collectors run while the registry holds its collector lock, and query
  // admission/retirement register and unregister series while holding
  // registry_mu_ — so a collector that took registry_mu_ (SnapshotQueries,
  // num_live_queries) would form an ABBA cycle with a concurrent
  // TryAddQuery/RemoveQuery scrape. The collector therefore reads the
  // lock-free live_ view instead: QueryState pointers published there stay
  // valid for the engine's lifetime (each handle co-owns its state), and a
  // query that retires mid-scrape simply keeps its last published gauges.
  metrics_->AddCollector(
      [this, queue_depth_gauge, live_queries_gauge] {
        queue_depth_gauge->Set(static_cast<double>(task_queue_->size()));
        size_t live = 0;
        for (size_t i = 0; i < options_.max_queries; ++i) {
          QueryState* qs = live_[i].load(std::memory_order_acquire);
          if (qs == nullptr) continue;
          ++live;
          const ControllerStats cs = qs->controller->Stats();
          const obs::Labels labels = QueryMetricLabels(*qs);
          metrics_
              ->GetGauge("saber_controller_phi_bytes", labels,
                         "Live query task size (phi)")
              ->Set(static_cast<double>(cs.current_phi));
          metrics_
              ->GetGauge("saber_controller_last_p99_nanos", labels,
                         "p99 task latency of the last closed controller "
                         "interval")
              ->Set(static_cast<double>(cs.last_p99_nanos));
        }
        live_queries_gauge->Set(static_cast<double>(live));
      },
      this);
  // Fault-point counters live in the process-global FaultRegistry (which
  // stays obs-free); a collector mirrors them into registry series. Points
  // are remembered across Disarm so their final counts keep exposing.
  metrics_->AddCollector(
      [this, seen = std::vector<std::string>()]() mutable {
        auto& faults = fault::FaultRegistry::Global();
        for (std::string& p : faults.ArmedPoints()) {
          if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
            seen.push_back(std::move(p));
          }
        }
        for (const std::string& p : seen) {
          const obs::Labels labels = {{"point", p}};
          metrics_
              ->GetCounter("saber_fault_hits_total", labels,
                           "Fault-point evaluations")
              ->StoreForCollector(faults.hits(p));
          metrics_
              ->GetCounter("saber_fault_fires_total", labels,
                           "Fault-point fires (injected failures)")
              ->StoreForCollector(faults.fires(p));
        }
      },
      this);
}

Engine::~Engine() {
  Stop();
  // With a borrowed registry the external series (query stats, controller
  // and failover counters) and the collectors reference engine-owned
  // storage; detach them so the registry remains scrapable after this
  // engine is gone. No-op side effects for an owned registry.
  metrics_->Unregister(this);
}

QueryHandle* Engine::AddQuery(QueryDef def) {
  Result<QueryHandle*> added = TryAddQuery(std::move(def));
  if (!added.ok()) {
    std::fprintf(stderr, "Engine::AddQuery: %s\n",
                 added.status().ToString().c_str());
    std::abort();
  }
  return added.value();
}

Result<QueryHandle*> Engine::TryAddQuery(QueryDef def) {
  // QueryBuilder::TryBuild already surfaces limit violations as a Status;
  // re-check here so hand-assembled QueryDefs fail at admission with a
  // clear message instead of aborting mid-task on a worker thread.
  SABER_RETURN_NOT_OK(def.ValidateLimits());
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t slot = registry_.size();
  for (size_t i = 0; i < registry_.size(); ++i) {
    if (registry_[i] == nullptr) {
      slot = i;
      break;
    }
  }
  if (slot == registry_.size()) {
    return Status::ResourceExhausted(
        StrCat("cannot admit query '", def.name, "': all ",
               options_.max_queries,
               " query slots are occupied (EngineOptions::max_queries)"));
  }
  auto qs = std::make_shared<QueryState>();
  qs->def = std::move(def);
  qs->index = static_cast<int>(slot);
  const size_t tsz0 = qs->def.input_schema[0].tuple_size();
  qs->task_size = std::max(tsz0, options_.task_size / tsz0 * tsz0);
  // The throughput-guard policy consults the matrix; until a cell has
  // published a *measured* rate rather than the uniform prior, the rate
  // reads as "unknown" and the guard stays open (it must not clamp on
  // fictional data). The controller outlives the matrix-reading threads
  // (workers join in Stop).
  const int index = qs->index;
  qs->controller = std::make_unique<TaskSizeController>(
      options_.task_sizing, qs->task_size, tsz0,
      /*rate=*/[this, index]() -> double {
        if (matrix_ == nullptr) return 0.0;
        return std::max(matrix_->RateIfPublished(index, Processor::kCpu),
                        matrix_->RateIfPublished(index, Processor::kGpu));
      });
  qs->cpu_op = MakeCpuOperator(&qs->def, options_.cpu_vectorized);
  if (device_ != nullptr) {
    qs->gpu_op = MakeGpuOperator(&qs->def, device_.get());
  }
  for (int i = 0; i < qs->def.num_inputs; ++i) {
    qs->buffer[i] = std::make_unique<CircularBuffer>(
        options_.input_buffer_size, qs->def.input_schema[i].tuple_size());
  }
  for (size_t i = 0; i < QueryState::kSlots; ++i) {
    qs->slots.push_back(std::make_unique<Slot>());
  }
  qs->assembly_state = qs->cpu_op->MakeAssemblyState();
  qs->concat_assembly = !qs->def.is_aggregation() && !qs->def.is_udf();
  // The slot may be recycled: scrub the tenant-local scheduler/matrix state
  // before the dispatcher can see the new query.
  policy_->SetQueryWeight(qs->index, qs->def.weight);
  const bool live_engine = running_.load();
  qs->lifecycle.store(live_engine ? QueryLifecycle::kRunning
                                  : QueryLifecycle::kAdmitted);
  registry_[slot] = qs;
  live_[slot].store(qs.get(), std::memory_order_release);
  handles_.emplace_back(new QueryHandle(this, qs->index, qs));
  RegisterQueryMetricsLocked(*qs);
  if (live_engine) {
    // Blocked workers re-derive eligibility now that the topology changed.
    task_queue_->OnEligibilityChanged();
  }
  return handles_.back().get();
}

void Engine::RegisterQueryMetricsLocked(QueryState& qs) {
  const obs::Labels labels = QueryMetricLabels(qs);
  metrics_->RegisterCounter("saber_engine_bytes_in_total", labels, &qs.bytes_in,
                            this,
                            "Bytes accepted into the query's input buffers");
  metrics_->RegisterCounter("saber_engine_tuples_in_total", labels,
                            &qs.tuples_in, this, "Tuples accepted");
  metrics_->RegisterCounter("saber_engine_rows_out_total", labels,
                            &qs.rows_out, this, "Output rows emitted in order");
  metrics_->RegisterCounter(
      "saber_engine_tuples_dropped_total", labels, &qs.tuples_dropped, this,
      "Tuples rejected because the query was Draining or Retired");
  for (int p = 0; p < kNumProcessors; ++p) {
    obs::Labels pl = labels;
    pl.emplace_back("processor", p == static_cast<int>(Processor::kCpu)
                                     ? "cpu"
                                     : "gpu");
    metrics_->RegisterCounter("saber_engine_tasks_total", pl, &qs.tasks_on[p],
                              this, "Query tasks executed per processor");
    metrics_->RegisterCounter("saber_engine_task_bytes_total", pl,
                              &qs.bytes_on[p], this,
                              "Task input bytes executed per processor");
  }
  metrics_->RegisterHistogram(
      "saber_task_latency_nanos", labels, &qs.latency_hist, this,
      "End-to-end task latency (dispatch to output emission)");
  qs.controller->RegisterMetrics(metrics_, labels, this);
}

Status Engine::RemoveQuery(QueryHandle* query) {
  if (query == nullptr || query->engine_ != this) {
    return Status::NotFound("RemoveQuery: handle does not belong to this engine");
  }
  if (in_worker_thread_) {
    // A worker waiting for its own query's in-flight tasks to assemble would
    // deadlock (same reasoning as TaskQueue::Push's force flag).
    return Status::InvalidArgument(
        StrCat("RemoveQuery('", query->def().name,
               "'): must not be called from an engine worker thread"));
  }
  std::shared_ptr<QueryState> qs = query->qs_;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    const size_t slot = static_cast<size_t>(qs->index);
    if (qs->lifecycle.load() == QueryLifecycle::kRetired) {
      return Status::InvalidArgument(
          StrCat("RemoveQuery('", qs->def.name, "'): query already retired"));
    }
    if (slot >= registry_.size() || registry_[slot] != qs) {
      return Status::NotFound(
          StrCat("RemoveQuery('", qs->def.name, "'): query is not registered"));
    }
    for (const auto& edge : connections_) {
      if (edge.first == qs->index || edge.second == qs->index) {
        return Status::InvalidArgument(StrCat(
            "RemoveQuery('", qs->def.name,
            "'): query is one half of a connected pair; connected pipelines "
            "are removed only by engine shutdown"));
      }
    }
    if (qs->removal_started.exchange(true)) {
      return Status::InvalidArgument(StrCat("RemoveQuery('", qs->def.name,
                                            "'): removal already in progress"));
    }
  }

  const bool live_engine = running_.load();

  // Phase 1 — tear down the engine-managed ingress while the query is still
  // Running: revoked producers stop appending, but everything already staged
  // is merged and delivered downstream (into a query that still accepts it)
  // before the merger is joined. Skipped without workers (pre-Start): the
  // merger could block forever on a full input buffer nobody drains.
  for (auto& ing : qs->ingress) {
    if (ing == nullptr) continue;
    ing->Revoke();
    if (live_engine) ing->Drain();
    ing->Stop();
  }

  // Phase 2 — stop accepting inserts. seq_cst store pairs with the insert
  // pin (see QueryState::lifecycle); then wake any producer parked on a full
  // buffer so it can observe Draining, and wait for the pins to drain.
  qs->lifecycle.store(QueryLifecycle::kDraining);
  {
    std::lock_guard<std::mutex> lock(qs->dispatch_mu);
    for (int i = 0; i < qs->def.num_inputs; ++i) {
      if (qs->buffer[i]) qs->buffer[i]->WakeProducer();
    }
  }
  for (;;) {
    const int refs = qs->insert_refs.load();
    if (refs == 0) break;
    qs->insert_refs.wait(refs);
  }

  // Phase 3 — drain the pipeline: cut the sub-φ remainder into a final task,
  // then sleep on the assembly channel until every dispatched task has been
  // executed and assembled. Without workers there is nothing in flight —
  // whatever sits in the task queue is swept below.
  if (live_engine) {
    FlushRemainder(*qs);
    for (;;) {
      if (stopping_.load()) {
        // Engine shutdown interrupts the quiesce; tasks may have been
        // abandoned. Leave the teardown to Stop()/~Engine — the handle keeps
        // its statistics and reads lifecycle Draining.
        return Status::OK();
      }
      const uint32_t gen = assembly_gen_.load(std::memory_order_acquire);
      if (!qs->assembling.load(std::memory_order_acquire) &&
          qs->tasks_assembled.load() == qs->tasks_dispatched.load()) {
        break;
      }
      assembly_gen_.wait(gen, std::memory_order_acquire);
    }
  }

  // Phase 4 — retire: no producer is pinned, no task of this query is queued
  // (running case: all assembled; stopped case: swept here), so the slot can
  // be scrubbed and recycled.
  std::lock_guard<std::mutex> lock(registry_mu_);
  RetireLocked(qs);
  return Status::OK();
}

void Engine::RetireLocked(const std::shared_ptr<QueryState>& qs) {
  const int index = qs->index;
  std::vector<QueryTask*> swept = task_queue_->SweepQuery(index);
  if (!swept.empty()) {
    // Exact capacity accounting: the swept tasks were dispatched but will
    // never assemble; the release below re-opens queue capacity and the
    // counter adjustment keeps dispatched == assembled for Drain.
    qs->tasks_dispatched.fetch_sub(static_cast<int64_t>(swept.size()));
    for (QueryTask* t : swept) {
      task_pool_->Release(std::unique_ptr<QueryTask>(t));
    }
  }
  qs->lifecycle.store(QueryLifecycle::kRetired);
  live_[static_cast<size_t>(index)].store(nullptr, std::memory_order_release);
  {
    // dispatch_mu orders the buffer teardown against any straggling
    // dispatcher-side reader (Drain's FlushRemainder snapshot).
    std::lock_guard<std::mutex> dl(qs->dispatch_mu);
    for (auto& buf : qs->buffer) buf.reset();
  }
  for (auto& ing : qs->ingress) ing.reset();
  matrix_->ResetQuery(index);
  policy_->OnQueryRetired(index);
  registry_[static_cast<size_t>(index)].reset();
  // The queue topology changed (a tenant vanished): blocked workers
  // re-derive eligibility.
  task_queue_->OnEligibilityChanged();
}

void Engine::Connect(QueryHandle* from, QueryHandle* to, int input) {
  SABER_CHECK(!running_.load());
  Engine* self = this;
  // The sink shares ownership of the downstream state: connected queries
  // are only torn down together (RemoveQuery refuses either half), so the
  // captured pointer can never dangle.
  std::shared_ptr<QueryState> to_qs = to->qs_;
  // The upstream query's assembly (ordered, single-threaded via the assembly
  // token) acts as the single logical producer for the downstream stream.
  const Status set = from->SetSink(
      [self, to_qs, input](const uint8_t* data, size_t bytes) {
        self->InsertInto(*to_qs, input, data, bytes);
      });
  SABER_CHECK(set.ok());
  std::lock_guard<std::mutex> lock(registry_mu_);
  connections_.emplace_back(from->index_, to->index_);
}

Result<ingest::ShardedIngress*> Engine::AttachIngress(
    QueryHandle* q, int input, const ingest::IngressOptions& options) {
  if (q == nullptr || q->engine_ != this) {
    return Status::NotFound(
        "AttachIngress: handle does not belong to this engine");
  }
  std::shared_ptr<QueryState> qs = q->qs_;
  if (input < 0 || input >= qs->def.num_inputs) {
    return Status::InvalidArgument(
        StrCat("AttachIngress('", qs->def.name, "'): input ", input,
               " out of range (query has ", qs->def.num_inputs, " inputs)"));
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (!AcceptingInserts(*qs) ||
      registry_[static_cast<size_t>(qs->index)] != qs) {
    return Status::InvalidArgument(
        StrCat("AttachIngress('", qs->def.name, "'): query is ",
               QueryLifecycleName(qs->lifecycle.load()),
               "; ingress can only feed an Admitted or Running query"));
  }
  if (qs->ingress[input] != nullptr) {
    return Status::AlreadyExists(
        StrCat("AttachIngress('", qs->def.name, "'): input ", input,
               " already has an engine-managed ingress"));
  }
  ingest::IngressOptions opts = options;
  if (opts.metrics == nullptr) opts.metrics = metrics_;
  if (opts.metrics_label.empty()) {
    opts.metrics_label = StrCat(
        qs->def.name.empty() ? StrCat("q", qs->index) : qs->def.name, "/in",
        input);
  }
  qs->ingress[input] = ingest::ShardedIngress::ForQuery(q, input, opts);
  return qs->ingress[input].get();
}

void Engine::Start() {
  // A worker-less engine would accept inserts and then hang in Drain.
  SABER_CHECK(options_.num_cpu_workers > 0 || options_.use_gpu);
  SABER_CHECK(!running_.exchange(true));
  stopping_.store(false);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (auto& qs : registry_) {
      if (qs != nullptr &&
          qs->lifecycle.load() == QueryLifecycle::kAdmitted) {
        qs->lifecycle.store(QueryLifecycle::kRunning);
      }
    }
  }
  for (int i = 0; i < options_.num_cpu_workers; ++i) {
    workers_.emplace_back([this, i] { CpuWorkerLoop(i); });
  }
  if (device_ != nullptr) {
    workers_.emplace_back([this] { GpuWorkerLoop(); });
  }
}

std::vector<std::shared_ptr<QueryState>> Engine::SnapshotQueries() const {
  std::vector<std::shared_ptr<QueryState>> out;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& qs : registry_) {
    if (qs != nullptr) out.push_back(qs);
  }
  return out;
}

size_t Engine::num_live_queries() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t n = 0;
  for (const auto& qs : registry_) {
    if (qs != nullptr) ++n;
  }
  return n;
}

void Engine::Drain() {
  if (!running_.load()) return;
  for (;;) {
    // The generation is read before the idleness check: an assembly that
    // completes between the check and the wait bumps it, so the wait
    // returns immediately instead of losing the wakeup.
    const uint32_t gen = assembly_gen_.load(std::memory_order_acquire);
    // Re-snapshotted every round: queries admitted mid-drain are picked up,
    // queries retired mid-drain already satisfied the idle condition
    // (retirement waits for assembled == dispatched).
    const auto queries = SnapshotQueries();
    // A single snapshot reads the queries in a fixed order, so a connected
    // query's sink dispatch can slip between the downstream-counter read and
    // the upstream-counter read: Drain would see both "idle" while a freshly
    // pushed downstream task sits in the queue, and Stop() would abandon it.
    // Each full re-read is ordered after the previous one and therefore
    // observes any dispatch that preceded a counter value the previous pass
    // already saw — a chain of connected queries can fool at most one pass
    // per hop, so size() + 1 consecutive idle passes are conclusive.
    auto idle_snapshot = [&] {
      bool idle = task_queue_->empty();
      for (const auto& qs : queries) {
        idle = idle && !qs->assembling.load(std::memory_order_acquire) &&
               qs->tasks_assembled.load() == qs->tasks_dispatched.load();
      }
      return idle;
    };
    bool idle = true;
    for (size_t pass = 0; pass <= queries.size() && idle; ++pass) {
      idle = idle_snapshot();
    }
    if (idle) {
      bool flushed = false;
      for (const auto& qs : queries) flushed = FlushRemainder(*qs) || flushed;
      if (!flushed) break;
      continue;  // remainder tasks dispatched: wait for their assemblies
    }
    assembly_gen_.wait(gen, std::memory_order_acquire);
  }
  Stop();
}

void Engine::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  task_queue_->Close();
  const auto queries = SnapshotQueries();
  // Producers may be blocked on input-buffer back-pressure; they re-check
  // stopping_ once the free channel is signalled. dispatch_mu guards against
  // a concurrent RemoveQuery retiring the buffers.
  for (const auto& qs : queries) {
    std::lock_guard<std::mutex> lock(qs->dispatch_mu);
    for (int i = 0; i < qs->def.num_inputs; ++i) {
      if (qs->buffer[i]) qs->buffer[i]->WakeProducer();
    }
  }
  // Engine-managed ingress: the wake above unblocks a merger stuck inside
  // InsertInto, so the join inside Stop terminates.
  for (const auto& qs : queries) {
    for (auto& ing : qs->ingress) {
      if (ing != nullptr) ing->Stop();
    }
  }
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Release a RemoveQuery waiter parked on the assembly channel: with the
  // workers gone its counters will never converge, and it re-checks
  // stopping_ on wake.
  assembly_gen_.fetch_add(1, std::memory_order_release);
  assembly_gen_.notify_all();
  for (QueryTask* t : task_queue_->DrainRemaining()) {
    task_pool_->Release(std::unique_ptr<QueryTask>(t));
  }
  running_.store(false);
}

// ===========================================================================
// Dispatching stage (§4.1).
// ===========================================================================

int64_t Engine::TsAt(const CircularBuffer& buf, const Schema& /*schema*/,
                     int64_t pos) const {
  int64_t ts;
  buf.CopyOut(pos, sizeof(ts), &ts);  // timestamp is field 0
  return ts;
}

Status Engine::SetSinkFor(QueryState& qs,
                          std::function<void(const uint8_t*, size_t)> sink) {
  // Workers invoke the sink from TryAssemble without synchronization, so
  // swapping it while results can be in flight is a data race on the
  // std::function (and UB if a call is in progress). Holding dispatch_mu
  // with zero dispatched tasks is sufficient: every dispatch happens under
  // dispatch_mu, so no task exists and none can be created while we swap.
  std::lock_guard<std::mutex> lock(qs.dispatch_mu);
  if (running_.load() && qs.tasks_dispatched.load() > 0) {
    return Status::InvalidArgument(
        StrCat("SetSink('", qs.def.name,
               "'): the engine is running and the query has dispatched "
               "tasks; set the sink before Start() or directly after "
               "admission"));
  }
  qs.sink = std::move(sink);
  return Status::OK();
}

void Engine::InsertInto(QueryState& qs, int input, const void* tuples,
                        size_t bytes) {
  const Schema& schema = qs.def.input_schema[input];
  const size_t tsz = schema.tuple_size();
  // Boundary validation: everything past this point — the φ cut arithmetic,
  // pane math, the join watermark — assumes whole tuples and non-decreasing
  // timestamps. A partial tuple would shift every later field read; a
  // timestamp regression silently corrupts window contents. Fail loudly
  // here instead.
  if (bytes % tsz != 0) {
    std::fprintf(stderr,
                 "Engine::InsertInto(query '%s', input %d): %zu bytes is not "
                 "a multiple of the %zu-byte input tuple size\n",
                 qs.def.name.c_str(), input, bytes, tsz);
    std::abort();
  }
  if (bytes == 0) return;
  // Pin before the lifecycle gate: RemoveQuery waits for pins to reach zero
  // before it may retire the buffers, so a producer that saw
  // Admitted/Running here can safely dereference them for the whole insert.
  InsertPin pin(qs);
  if (!AcceptingInserts(qs)) {
    qs.tuples_dropped.Increment(static_cast<int64_t>(bytes / tsz));
    return;
  }
  // Timestamp order is validated only where the engine consumes time:
  // time-based windows (pane cutting scans the timestamp column) and
  // two-input queries (the dispatch cut T = min(last ingested ts) − 1 and
  // window-extent retention). Count-based and unbounded windows never read
  // timestamps for dispatch decisions, and re-feeding the same block with
  // restarting timestamps is their long-standing benchmark idiom
  // (bench_util.h StreamFeeder `shift_timestamps=false`), so they stay
  // exempt. The sharded ingestion stage (src/ingest/) is stricter — its
  // watermark merge is timestamp-driven regardless of window type.
  if (qs.def.num_inputs == 2 ||
      (qs.def.window[input].time_based() && !qs.def.window[input].unbounded)) {
    // insert_prev_ts is producer-thread-private state: one logical producer
    // per input stream (a connected query's producer is the upstream
    // assembly, serialized by the assembly token; a ShardedIngress's is its
    // merger thread), so no lock is needed.
    const int64_t bad =
        FirstTimestampRegression(tuples, bytes, tsz, &qs.insert_prev_ts[input]);
    if (bad >= 0) {
      std::fprintf(stderr,
                   "Engine::InsertInto(query '%s', input %d): timestamps "
                   "must be non-decreasing (violated at tuple %lld of this "
                   "insert)\n",
                   qs.def.name.c_str(), input, static_cast<long long>(bad));
      std::abort();
    }
  }
  CircularBuffer& buf = *qs.buffer[input];
  // A block larger than the circular buffer can never fit in one piece:
  // split it so arbitrarily large inserts simply block on back-pressure.
  const size_t max_chunk =
      std::max(tsz, options_.input_buffer_size / 2 / tsz * tsz);
  const uint8_t* src = static_cast<const uint8_t*>(tuples);
  for (size_t off = 0; off < bytes;) {
    const size_t chunk = std::min(max_chunk, bytes - off);
    for (;;) {
      // Epoch before the attempt: a free landing after this read makes the
      // wait below return immediately (no lost wakeup).
      const uint32_t epoch = buf.free_epoch();
      if (buf.TryInsert(src + off, chunk)) break;
      // Back-pressure: the result stage frees space as assemblies complete.
      // Make sure pending data has been turned into tasks workers can run,
      // then sleep until FreeUpTo (or shutdown) signals the free channel.
      TryCreateTasks(qs);
      if (stopping_.load()) return;
      if (!AcceptingInserts(qs)) {
        // The query went Draining while we were parked: drop the rest of
        // the block (RemoveQuery's WakeProducer bumped the free epoch, so
        // this re-check is reached promptly).
        qs.tuples_dropped.Increment(
            static_cast<int64_t>((bytes - off) / tsz));
        return;
      }
      buf.WaitFreeEpoch(epoch);
    }
    off += chunk;
    const uint8_t* last = src + off - tsz;
    int64_t last_ts;
    std::memcpy(&last_ts, last, sizeof(last_ts));
    {
      std::lock_guard<std::mutex> lock(qs.dispatch_mu);
      qs.last_ingest_ts[input] = last_ts;
    }
    qs.bytes_in.Increment(static_cast<int64_t>(chunk));
    qs.tuples_in.Increment(static_cast<int64_t>(chunk / tsz));
    if (trace_ != nullptr) {
      qs.last_insert_nanos.store(NowNanos(), std::memory_order_relaxed);
    }
    TryCreateTasks(qs);
  }
}

void Engine::TryCreateTasks(QueryState& qs) {
  std::lock_guard<std::mutex> lock(qs.dispatch_mu);
  if (qs.buffer[0] == nullptr) return;  // retired
  if (qs.def.num_inputs == 2) {  // θ-join or two-input UDF
    while (TryCreateJoinTask(qs, /*flush=*/false)) {
    }
    return;
  }
  const size_t phi = qs.controller->phi();  // a multiple of the tuple size
  CircularBuffer& buf = *qs.buffer[0];
  while (static_cast<size_t>(buf.end() - qs.next_task_start[0]) >= phi) {
    CreateSingleInputTask(qs,
                          qs.next_task_start[0] + static_cast<int64_t>(phi));
  }
}

bool Engine::FlushRemainder(QueryState& qs) {
  std::lock_guard<std::mutex> lock(qs.dispatch_mu);
  if (qs.buffer[0] == nullptr) return false;  // retired
  if (qs.def.num_inputs == 2) {
    return TryCreateJoinTask(qs, /*flush=*/true);
  }
  CircularBuffer& buf = *qs.buffer[0];
  if (buf.end() == qs.next_task_start[0]) return false;
  CreateSingleInputTask(qs, buf.end());
  return true;
}

/// Creates a single-input task for buffer bytes [next_task_start, end_pos).
/// Caller holds dispatch_mu.
void Engine::CreateSingleInputTask(QueryState& qs, int64_t end_pos) {
  const Schema& schema = qs.def.input_schema[0];
  const size_t tsz = schema.tuple_size();
  CircularBuffer& buf = *qs.buffer[0];
  const int64_t start_pos = qs.next_task_start[0];
  const int64_t n = (end_pos - start_pos) / static_cast<int64_t>(tsz);
  SABER_CHECK(n > 0);

  std::unique_ptr<QueryTask> holder = task_pool_->Acquire();
  QueryTask* t = holder.release();
  t->id = qs.next_task_id++;
  t->query_index = qs.index;
  t->num_inputs = 1;
  t->allowed = kAllProcessors;  // pooled: clear any failover narrowing
  auto& in = t->in[0];
  in.start_pos = start_pos;
  in.end_pos = end_pos;
  in.first_index = qs.tuples_dispatched[0];
  in.first_ts = TsAt(buf, schema, start_pos);
  in.last_ts = TsAt(buf, schema, end_pos - static_cast<int64_t>(tsz));
  in.prev_last_ts = qs.prev_last_ts[0];
  in.hist_start_pos = start_pos;
  in.hist_first_index = in.first_index;
  in.free_pos = end_pos;  // single-input operators never look back
  t->dispatched_nanos = NowNanos();
  t->total_bytes = end_pos - start_pos;
  SampleForTrace(qs, t);

  qs.tuples_dispatched[0] += n;
  qs.prev_last_ts[0] = in.last_ts;
  qs.next_task_start[0] = end_pos;
  PushTask(qs, t);
}

/// Join dispatch (§5.3 + DESIGN.md): both streams are cut at a common
/// timestamp T so that each task sees both inputs complete through T. The
/// window extent (history) of each stream stays alive via the free pointer.
/// Caller holds dispatch_mu.
bool Engine::TryCreateJoinTask(QueryState& qs, bool flush) {
  CircularBuffer& b0 = *qs.buffer[0];
  CircularBuffer& b1 = *qs.buffer[1];
  const Schema& s0 = qs.def.input_schema[0];
  const Schema& s1 = qs.def.input_schema[1];
  const size_t tsz0 = s0.tuple_size();
  const size_t tsz1 = s1.tuple_size();

  const int64_t pend0 = b0.end() - qs.next_task_start[0];
  const int64_t pend1 = b1.end() - qs.next_task_start[1];
  if (pend0 + pend1 == 0) return false;
  const int64_t phi = static_cast<int64_t>(qs.controller->phi());
  if (!flush && pend0 + pend1 < phi) {
    return false;
  }

  // Common timestamp cut: both streams are complete for ts <= T.
  int64_t T;
  if (flush) {
    T = std::numeric_limits<int64_t>::max();
  } else {
    if (qs.last_ingest_ts[0] < 0 || qs.last_ingest_ts[1] < 0) return false;
    T = std::min(qs.last_ingest_ts[0], qs.last_ingest_ts[1]) - 1;
  }

  // Scan forward to the cut on both streams.
  int64_t end_pos[2], first_ts[2] = {0, 0}, last_ts[2] = {0, 0};
  int64_t ntup[2];
  const Schema* schemas[2] = {&s0, &s1};
  CircularBuffer* bufs[2] = {&b0, &b1};
  const size_t tszs[2] = {tsz0, tsz1};
  for (int i = 0; i < 2; ++i) {
    int64_t pos = qs.next_task_start[i];
    const int64_t end = bufs[i]->end();
    int64_t count = 0;
    int64_t lts = qs.prev_last_ts[i];
    int64_t fts = 0;
    while (pos < end) {
      const int64_t ts = TsAt(*bufs[i], *schemas[i], pos);
      if (ts > T) break;
      if (count == 0) fts = ts;
      lts = ts;
      pos += static_cast<int64_t>(tszs[i]);
      ++count;
    }
    end_pos[i] = pos;
    ntup[i] = count;
    first_ts[i] = fts;
    last_ts[i] = lts;
  }
  if (ntup[0] + ntup[1] == 0) return false;

  std::unique_ptr<QueryTask> holder = task_pool_->Acquire();
  QueryTask* t = holder.release();
  t->id = qs.next_task_id++;
  t->query_index = qs.index;
  t->num_inputs = 2;
  t->allowed = kAllProcessors;  // pooled: clear any failover narrowing
  for (int i = 0; i < 2; ++i) {
    auto& in = t->in[i];
    in.start_pos = qs.next_task_start[i];
    in.end_pos = end_pos[i];
    in.first_index = qs.tuples_dispatched[i];
    in.first_ts = first_ts[i];
    in.last_ts = last_ts[i];
    in.prev_last_ts = qs.prev_last_ts[i];
    in.hist_start_pos = qs.window_start_pos[i];
    in.hist_first_index = qs.window_start_index[i];
    qs.tuples_dispatched[i] += ntup[i];
    qs.prev_last_ts[i] = last_ts[i];
    qs.next_task_start[i] = end_pos[i];
  }
  t->dispatched_nanos = NowNanos();
  t->total_bytes = (end_pos[0] - t->in[0].start_pos) +
                   (end_pos[1] - t->in[1].start_pos);
  SampleForTrace(qs, t);

  // UDF tasks copy their panes into the task result, so no history has to
  // stay alive in the input buffers (unlike the θ-join partner windows).
  if (qs.def.is_udf()) {
    for (int i = 0; i < 2; ++i) {
      qs.window_start_pos[i] = end_pos[i];
      qs.window_start_index[i] = qs.tuples_dispatched[i];
      t->in[i].hist_start_pos = t->in[i].start_pos;
      t->in[i].hist_first_index = t->in[i].first_index;
      t->in[i].free_pos = end_pos[i];
    }
    PushTask(qs, t);
    return true;
  }

  // Advance the window extents. Stream i's history serves as *partners* for
  // future tuples of the other stream (§2.4: windows are paired by index j).
  // The earliest window index any future other-stream tuple can open is
  //   j_min = floor((next_other_axis - size_other) / slide_other) + 1,
  // and stream i's partners for window j_min start at axis j_min * slide_i —
  // so retention is governed by the *other* stream's window definition
  // (asymmetric windows, e.g. LRB2, depend on this).
  for (int i = 0; i < 2; ++i) {
    const WindowDefinition& w_self = qs.def.window[i];
    const WindowDefinition& w_other = qs.def.window[1 - i];
    CircularBuffer& buf = *bufs[i];
    int64_t pos = qs.window_start_pos[i];
    int64_t idx = qs.window_start_index[i];
    if (!flush && T != std::numeric_limits<int64_t>::max()) {
      const int64_t next_other_axis =
          w_other.time_based() ? T + 1 : qs.tuples_dispatched[1 - i];
      const int64_t j_min = std::max<int64_t>(
          0, FloorDiv(next_other_axis - w_other.size, w_other.slide) + 1);
      if (w_self.time_based()) {
        const int64_t keep_ts = j_min * w_self.slide;
        while (pos < end_pos[i] && TsAt(buf, *schemas[i], pos) < keep_ts) {
          pos += static_cast<int64_t>(tszs[i]);
          ++idx;
        }
      } else {
        const int64_t keep_idx = j_min * w_self.slide;
        while (idx < keep_idx && pos < end_pos[i]) {
          pos += static_cast<int64_t>(tszs[i]);
          ++idx;
        }
      }
    }
    qs.window_start_pos[i] = pos;
    qs.window_start_index[i] = idx;
    t->in[i].free_pos = pos;
  }
  PushTask(qs, t);
  return true;
}

void Engine::SampleForTrace(QueryState& qs, QueryTask* t) {
  // Tasks are pooled: `traced` must be (re)written on every dispatch. With
  // tracing off this is the whole per-task cost — one pointer test.
  t->traced = trace_ != nullptr && trace_->Sample();
  if (t->traced) {
    t->trace_insert_nanos =
        qs.last_insert_nanos.load(std::memory_order_relaxed);
    t->trace_backend = 0;
    t->trace_queued_nanos = 0;
    t->trace_select_nanos = 0;
    t->trace_exec_end_nanos = 0;
  }
}

void Engine::PushTask(QueryState& qs, QueryTask* task) {
  // Stamped before Push: once queued the task may execute (and its span
  // fields be written) on another thread immediately.
  if (task->traced) task->trace_queued_nanos = NowNanos();
  qs.tasks_dispatched.fetch_add(1);
  // policy/matrix let Push wake only the processors that could select this
  // task. Worker threads dispatch connected-query tasks from inside the
  // result stage and must never block on queue capacity (see
  // TaskQueue::Push): the queue only drains through them.
  if (!task_queue_->Push(task, policy_.get(), matrix_.get(),
                         /*force=*/in_worker_thread_)) {
    // Engine stopping: recycle the task.
    qs.tasks_dispatched.fetch_sub(1);
    task_pool_->Release(std::unique_ptr<QueryTask>(task));
  }
}

// ===========================================================================
// Execution stage.
// ===========================================================================

SpanPair Engine::SpanFor(const CircularBuffer& buf, int64_t from,
                         int64_t to) const {
  SpanPair sp;
  const size_t total = static_cast<size_t>(to - from);
  if (total == 0) return sp;
  sp.seg1 = buf.DataAt(from);
  sp.len1 = std::min(total, buf.ContiguousBytes(from));
  if (sp.len1 < total) {
    sp.seg2 = buf.DataAt(from + static_cast<int64_t>(sp.len1));
    sp.len2 = total - sp.len1;
  }
  return sp;
}

TaskContext Engine::BuildContext(QueryState& qs, const QueryTask& t) const {
  TaskContext ctx;
  ctx.task_id = t.id;
  ctx.query = &qs.def;
  ctx.num_inputs = t.num_inputs;
  for (int i = 0; i < t.num_inputs; ++i) {
    const auto& in = t.in[i];
    StreamBatch& b = ctx.input[i];
    b.data = SpanFor(*qs.buffer[i], in.start_pos, in.end_pos);
    b.first_index = in.first_index;
    b.first_ts = in.first_ts;
    b.last_ts = in.last_ts;
    b.prev_last_ts = in.prev_last_ts;
    b.history = SpanFor(*qs.buffer[i], in.hist_start_pos, in.start_pos);
    b.history_first_index = in.hist_first_index;
    b.tuple_size = qs.def.input_schema[i].tuple_size();
  }
  return ctx;
}

void Engine::CpuWorkerLoop(int /*worker_id*/) {
  in_worker_thread_ = true;
  for (;;) {
    QueryTask* t = task_queue_->Select(*policy_, Processor::kCpu, *matrix_);
    if (t == nullptr) {
      if (stopping_.load()) return;
      continue;
    }
    // Retirement sweeps the queue and waits for in-flight tasks before the
    // slot pointer is retracted, so a selected task's state is always live.
    QueryState* qsp = LiveSlot(t->query_index);
    SABER_CHECK(qsp != nullptr);
    QueryState& qs = *qsp;
    if (t->traced) t->trace_select_nanos = NowNanos();
    TaskContext ctx = BuildContext(qs, *t);
    std::unique_ptr<TaskResult> holder = result_pool_->Acquire();
    TaskResult* r = holder.release();
    r->Reset();
    r->task_id = t->id;
    r->dispatched_nanos = t->dispatched_nanos;
    r->input_bytes = t->total_bytes;
    qs.cpu_op->ProcessBatch(ctx, r);
    if (t->traced) {
      t->trace_exec_end_nanos = NowNanos();
      t->trace_backend = static_cast<int32_t>(Processor::kCpu);
    }
    matrix_->RecordCompletion(t->query_index, Processor::kCpu);
    StoreAndAssemble(qs, t, r, Processor::kCpu);
  }
}

void Engine::GpuWorkerLoop() {
  in_worker_thread_ = true;
  struct Event {
    QueryTask* task = nullptr;  // nullptr: task-availability ping
    TaskResult* result = nullptr;
  };
  // The worker's single select point: device completions and task-queue
  // availability pings both land here, so the loop blocks on exactly one
  // queue — no polling sleep, and completions cannot stall behind a blocked
  // scheduler wait (which would deadlock the free-pointer chain under
  // back-pressure).
  BlockingQueue<Event> events(0);
  // Collapses bursts of availability notifications into one queued ping;
  // cleared before the next queue scan so nothing is lost.
  std::atomic<bool> ping_pending{false};
  task_queue_->SetAvailabilityListener(
      Processor::kGpu, [&events, &ping_pending] {
        if (!ping_pending.exchange(true, std::memory_order_acq_rel)) {
          events.Push(Event{});
        }
      });

  size_t inflight = 0;
  const size_t depth = options_.device.pipeline_depth;

  // GPGPU failover state (docs/architecture.md §14). consecutive_failures
  // counts device-failed completions since the last success; once it
  // reaches the threshold the worker quarantines the device: no submissions
  // until `quarantined_until`, then exactly one probe task at a time (the
  // inflight <= 0 gate below) until a success clears the episode.
  int consecutive_failures = 0;
  int64_t quarantined_until = 0;

  auto handle = [&](Event& e) {
    if (e.task == nullptr) {
      ping_pending.store(false, std::memory_order_release);
      return;
    }
    --inflight;
    // In-flight tasks pin their query (retirement waits for assembly), so
    // the slot lookup cannot fail even though the submit happened earlier.
    QueryState* qsp = LiveSlot(e.task->query_index);
    SABER_CHECK(qsp != nullptr);
    if (e.result->device_failed) {
      // The device failed the task: recycle the result, decay the device's
      // published rate so HLS steers away, narrow the task to the CPU (when
      // CPU workers exist — a GPGPU-only engine retries in place) and put
      // it back at the queue *front* to preserve per-query id order. No
      // RecordCompletion: a failure is not a throughput sample.
      gpu_task_retries_.Increment();
      matrix_->DecayRate(e.task->query_index, Processor::kGpu,
                         options_.gpu_failure_decay);
      if (options_.num_cpu_workers > 0) {
        e.task->allowed = ProcessorBit(Processor::kCpu);
      }
      if (++consecutive_failures >= options_.gpu_quarantine_threshold) {
        if (quarantined_until == 0) device_quarantines_.Increment();
        quarantined_until = NowNanos() + options_.gpu_quarantine_nanos;
      }
      result_pool_->Release(std::unique_ptr<TaskResult>(e.result));
      if (!task_queue_->Requeue(e.task)) {
        // Queue closed (engine stopping): recycle like PushTask does.
        qsp->tasks_dispatched.fetch_sub(1);
        task_pool_->Release(std::unique_ptr<QueryTask>(e.task));
      }
      return;
    }
    if (quarantined_until != 0 || consecutive_failures != 0) {
      // A healthy completion (steady state or probe) ends the episode; the
      // matrix re-publishes measured rates as completions accumulate.
      consecutive_failures = 0;
      quarantined_until = 0;
    }
    if (e.task->traced) {
      e.task->trace_exec_end_nanos = NowNanos();
      e.task->trace_backend = static_cast<int32_t>(Processor::kGpu);
    }
    matrix_->RecordCompletion(e.task->query_index, Processor::kGpu);
    StoreAndAssemble(*qsp, e.task, e.result, Processor::kGpu);
  };

  for (;;) {
    for (Event& e : events.PopAll()) handle(e);
    bool may_submit = inflight < depth && !stopping_.load();
    if (may_submit && quarantined_until != 0) {
      // Quarantined: hold all submissions inside the window; after it
      // elapses admit one probe task at a time.
      may_submit = NowNanos() >= quarantined_until && inflight == 0;
    }
    if (may_submit) {
      QueryTask* t = task_queue_->Select(*policy_, Processor::kGpu, *matrix_,
                                         /*wait=*/false);
      if (t != nullptr) {
        QueryState* qsp = LiveSlot(t->query_index);
        SABER_CHECK(qsp != nullptr);
        QueryState& qs = *qsp;
        if (t->traced) t->trace_select_nanos = NowNanos();
        TaskContext ctx = BuildContext(qs, *t);
        std::unique_ptr<TaskResult> holder = result_pool_->Acquire();
        TaskResult* r = holder.release();
        r->Reset();
        r->task_id = t->id;
        r->dispatched_nanos = t->dispatched_nanos;
        r->input_bytes = t->total_bytes;
        qs.gpu_op->SubmitAsync(ctx, r, [&events, t, r] {
          events.Push(Event{t, r});
        });
        ++inflight;
        continue;  // keep filling the pipeline while tasks are eligible
      }
    }
    if (stopping_.load() && inflight == 0) break;
    // Nothing to submit: block until a completion or an availability ping
    // arrives. Close() fires the availability listener, so shutdown wakes
    // this wait too; in-flight completions keep arriving from the device
    // stage threads, which outlive the worker. A quarantined worker with
    // nothing in flight additionally wakes at the window's expiry — no
    // event is coming to announce that the probe may go out.
    if (quarantined_until != 0 && inflight == 0 && !stopping_.load()) {
      const int64_t wait = quarantined_until - NowNanos();
      if (wait > 0) {
        if (auto e = events.PopFor(std::chrono::nanoseconds(wait))) handle(*e);
        continue;
      }
      // Window elapsed but Select found nothing: wait for work as usual.
    }
    if (auto e = events.Pop()) handle(*e);
  }
  // Detach under the queue lock before `events`/`ping_pending` go out of
  // scope: a CPU worker inside a notify could otherwise invoke the listener
  // after the captured locals are destroyed.
  task_queue_->SetAvailabilityListener(Processor::kGpu, nullptr);
}

// ===========================================================================
// Result stage (§4.3): slot storage -> in-order assembly -> output stream.
// ===========================================================================

void Engine::StoreAndAssemble(QueryState& qs, QueryTask* task,
                              TaskResult* result, Processor p) {
  qs.tasks_on[static_cast<int>(p)].Increment();
  qs.bytes_on[static_cast<int>(p)].Increment(task->total_bytes);

  Slot& slot = *qs.slots[static_cast<size_t>(task->id) % QueryState::kSlots];
  // The slot ring advances strictly in task-id order: this task may store
  // only once every task kSlots older has been assembled. Checking the slot
  // status alone is not enough — §4.3's "more slots than worker threads"
  // argument bounds completed-but-unassembled results, but an OS-preempted
  // worker can leave an *older* task unstored (its slot empty) while the
  // other workers lap the ring; a newer task would then land in the empty
  // slot and be assembled under the older task's position. Helping with
  // assembly while waiting guarantees progress: within a query, tasks are
  // selected in id order, so the gating task is always either executing on
  // some worker or already stored.
  while (slot.status.load(std::memory_order_acquire) != kEmpty ||
         task->id - qs.next_assemble.load(std::memory_order_acquire) >=
             static_cast<int64_t>(QueryState::kSlots)) {
    TryAssemble(qs);
    std::this_thread::yield();
  }
  slot.task = task;
  slot.result = result;
  slot.status.store(kStored, std::memory_order_release);
  TryAssemble(qs);
}

void Engine::TryAssemble(QueryState& qs) {
  bool assembled_any = false;
  for (;;) {
    bool expected = false;
    if (!qs.assembling.compare_exchange_strong(expected, true,
                                               std::memory_order_acquire)) {
      break;  // another worker holds the assembly token
    }
    bool did_work = false;
    for (;;) {
      const int64_t id = qs.next_assemble.load(std::memory_order_relaxed);
      Slot& slot = *qs.slots[static_cast<size_t>(id) % QueryState::kSlots];
      if (slot.status.load(std::memory_order_acquire) != kStored) break;
      QueryTask* task = slot.task;
      TaskResult* result = slot.result;
      SABER_CHECK(task->id == id);
      SABER_CHECK(result->task_id == id);

      // The span's sink stage starts when the ordered output is ready to
      // emit — after the Assemble call for re-buffered assembly, immediately
      // for concatenation.
      int64_t sink_begin_nanos = 0;
      if (qs.concat_assembly) {
        // Window results are the concatenation of fragment results (§4.3):
        // forward the task's output bytes without re-buffering.
        if (task->traced) sink_begin_nanos = NowNanos();
        if (result->complete.size() > 0) {
          qs.rows_out.Increment(static_cast<int64_t>(
              result->complete.size() / qs.def.output_schema.tuple_size()));
          if (qs.sink) qs.sink(result->complete.data(), result->complete.size());
        }
      } else {
        qs.assembly_scratch.Clear();
        qs.cpu_op->Assemble(*result, qs.assembly_state.get(),
                            &qs.assembly_scratch);
        if (task->traced) sink_begin_nanos = NowNanos();
        if (qs.assembly_scratch.size() > 0) {
          qs.rows_out.Increment(static_cast<int64_t>(
              qs.assembly_scratch.size() / qs.def.output_schema.tuple_size()));
          if (qs.sink) {
            qs.sink(qs.assembly_scratch.data(), qs.assembly_scratch.size());
          }
        }
      }
      const int64_t task_latency = NowNanos() - result->dispatched_nanos;
      qs.latency.RecordNanos(task_latency);
      qs.latency_hist.Record(task_latency);
      qs.controller->Observe(task_latency);
      if (task->traced && trace_ != nullptr) {
        obs::TaskSpan span;
        span.task_id = task->id;
        span.query_index = task->query_index;
        span.backend = task->trace_backend;
        span.bytes = task->total_bytes;
        span.insert_nanos = task->trace_insert_nanos;
        span.create_nanos = task->dispatched_nanos;
        span.queued_nanos = task->trace_queued_nanos;
        span.select_nanos = task->trace_select_nanos;
        span.exec_end_nanos = task->trace_exec_end_nanos;
        span.sink_begin_nanos = sink_begin_nanos;
        span.done_nanos = NowNanos();
        trace_->Push(span);
      }

      for (int i = 0; i < task->num_inputs; ++i) {
        qs.buffer[i]->FreeUpTo(task->in[i].free_pos);
      }
      result_pool_->Release(std::unique_ptr<TaskResult>(result));
      task_pool_->Release(std::unique_ptr<QueryTask>(task));

      slot.task = nullptr;
      slot.result = nullptr;
      slot.status.store(kEmpty, std::memory_order_release);
      qs.next_assemble.fetch_add(1, std::memory_order_release);
      qs.tasks_assembled.fetch_add(1);
      did_work = true;
    }
    qs.assembling.store(false, std::memory_order_release);
    assembled_any = assembled_any || did_work;
    // Re-check: a result may have been stored between the loop exit and the
    // token release; without this re-acquisition it could wait forever.
    const int64_t id = qs.next_assemble.load(std::memory_order_acquire);
    Slot& slot = *qs.slots[static_cast<size_t>(id) % QueryState::kSlots];
    if (slot.status.load(std::memory_order_acquire) != kStored) break;
  }
  if (assembled_any) {
    // Signal the drained channel once per assembly batch (outside the
    // token, so a blocked Drain never waits on a worker holding it).
    assembly_gen_.fetch_add(1, std::memory_order_release);
    assembly_gen_.notify_all();
  }
}

}  // namespace saber
