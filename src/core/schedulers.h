#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "core/task.h"
#include "core/throughput_matrix.h"

/// \file schedulers.h
/// The system-wide query-task queue (§4, Fig. 4) and the scheduling policies
/// evaluated in §6.6:
///
///  - HlsScheduler — heterogeneous lookahead scheduling, Algorithm 1. Walks
///    the queue accumulating the preferred processor's outstanding work
///    (`delay`); selects a task for a non-preferred processor only when
///    running it there finishes earlier than waiting, or when the switch
///    threshold forces exploration.
///  - FcfsScheduler — "first-come, first-served": head of queue regardless
///    of processor.
///  - StaticScheduler — fixed query→processor assignment (the infeasible-
///    in-practice baseline of Fig. 15).
///
/// Policies run under the queue lock; the scan is bounded by a lookahead cap
/// to keep the critical section short on deep queues.

namespace saber {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Selects and removes the task this worker should run, or nullptr if no
  /// eligible task exists. Called with the queue contents under lock.
  virtual QueryTask* Select(std::deque<QueryTask*>& queue, Processor p,
                            ThroughputMatrix& matrix) = 0;
};

class FcfsScheduler final : public Scheduler {
 public:
  QueryTask* Select(std::deque<QueryTask*>& queue, Processor p,
                    ThroughputMatrix& matrix) override {
    if (queue.empty()) return nullptr;
    QueryTask* t = queue.front();
    queue.pop_front();
    matrix.IncrementCount(t->query_index, p);
    return t;
  }
};

class StaticScheduler final : public Scheduler {
 public:
  explicit StaticScheduler(std::map<int, Processor> assignment)
      : assignment_(std::move(assignment)) {}

  QueryTask* Select(std::deque<QueryTask*>& queue, Processor p,
                    ThroughputMatrix& matrix) override {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      auto a = assignment_.find((*it)->query_index);
      const Processor want = a == assignment_.end() ? Processor::kCpu : a->second;
      if (want == p) {
        QueryTask* t = *it;
        queue.erase(it);
        matrix.IncrementCount(t->query_index, p);
        return t;
      }
    }
    return nullptr;
  }

 private:
  std::map<int, Processor> assignment_;
};

/// Algorithm 1 (§4.2).
class HlsScheduler final : public Scheduler {
 public:
  /// `cpu_enabled`/`gpu_enabled` declare which processor types have workers:
  /// a task whose preferred processor has no workers is treated as
  /// preferring the asking processor, and the switch threshold (which exists
  /// to *observe the other processor*) is bypassed when there is no other
  /// processor — otherwise the head task starves in single-processor
  /// configurations.
  explicit HlsScheduler(int switch_threshold = 20, size_t lookahead_cap = 64,
                        bool cpu_enabled = true, bool gpu_enabled = true)
      : st_(switch_threshold), lookahead_cap_(lookahead_cap) {
    enabled_[static_cast<int>(Processor::kCpu)] = cpu_enabled;
    enabled_[static_cast<int>(Processor::kGpu)] = gpu_enabled;
  }

  QueryTask* Select(std::deque<QueryTask*>& queue, Processor p,
                    ThroughputMatrix& matrix) override {
    const Processor other =
        p == Processor::kCpu ? Processor::kGpu : Processor::kCpu;
    const bool have_other = enabled_[static_cast<int>(other)];
    double delay = 0.0;                                     // line 2
    const size_t limit = std::min(queue.size(), lookahead_cap_);
    for (size_t pos = 0; pos < limit; ++pos) {              // line 3
      QueryTask* v = queue[pos];
      const int q = v->query_index;                         // line 4
      Processor ppref = matrix.Preferred(q);                // line 5
      if (!enabled_[static_cast<int>(ppref)]) ppref = p;
      const double rate_p = matrix.Rate(q, p);
      // Line 6: take the task if (i) this is the preferred processor and the
      // switch threshold has not been exceeded, or (ii) this is not the
      // preferred processor but either the threshold forces a switch or the
      // accumulated delay on the preferred processor exceeds this
      // processor's execution time for the task.
      const bool preferred_ok =
          p == ppref && (!have_other || matrix.Count(q, p) < st_);
      const bool steal_ok =
          p != ppref &&
          (matrix.Count(q, ppref) >= st_ || delay >= 1.0 / rate_p);
      if (preferred_ok || steal_ok) {
        if (matrix.Count(q, ppref) >= st_) matrix.ResetCount(q, ppref);  // l.7
        matrix.IncrementCount(q, p);                        // line 8
        queue.erase(queue.begin() + static_cast<long>(pos));
        return v;                                           // line 9
      }
      delay += 1.0 / matrix.Rate(q, ppref);                 // line 10
    }
    return nullptr;                                         // nothing eligible
  }

 private:
  const int st_;
  const size_t lookahead_cap_;
  bool enabled_[kNumProcessors];
};

/// The single system-wide queue of query tasks (Fig. 4). Bounded: Push
/// blocks when full, providing dispatch back-pressure.
class TaskQueue {
 public:
  explicit TaskQueue(size_t capacity) : capacity_(capacity) {}

  /// Returns false if the queue has been closed.
  bool Push(QueryTask* task) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || tasks_.size() < capacity_; });
    if (closed_) return false;
    tasks_.push_back(task);
    not_empty_.notify_all();
    return true;
  }

  /// Runs the scheduling policy; blocks until a task is selected or the
  /// queue is closed. `wait` = false polls once.
  QueryTask* Select(Scheduler& policy, Processor p, ThroughputMatrix& matrix,
                    bool wait = true) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      QueryTask* t = policy.Select(tasks_, p, matrix);
      if (t != nullptr) {
        not_full_.notify_one();
        return t;
      }
      if (closed_ || !wait) return nullptr;
      // A policy may refuse the current queue contents for this processor
      // (lookahead); re-evaluate when the queue changes or periodically as
      // the matrix drifts.
      not_empty_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }
  bool empty() const { return size() == 0; }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Removes and returns all remaining tasks (engine shutdown).
  std::deque<QueryTask*> DrainRemaining() {
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<QueryTask*> out;
    out.swap(tasks_);
    return out;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<QueryTask*> tasks_;
  bool closed_ = false;
};

}  // namespace saber
