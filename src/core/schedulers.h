#pragma once

#include <algorithm>
#include <atomic>
#include <bitset>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/task.h"
#include "core/throughput_matrix.h"

/// \file schedulers.h
/// The system-wide query-task queue (§4, Fig. 4) and the scheduling policies
/// evaluated in §6.6:
///
///  - HlsScheduler — heterogeneous lookahead scheduling, Algorithm 1. Walks
///    the queue accumulating the preferred processor's outstanding work
///    (`delay`); selects a task for a non-preferred processor only when
///    running it there finishes earlier than waiting, or when the switch
///    threshold forces exploration.
///  - FcfsScheduler — "first-come, first-served": head of queue regardless
///    of processor.
///  - StaticScheduler — fixed query→processor assignment (the infeasible-
///    in-practice baseline of Fig. 15).
///
/// Policies run under the queue lock; the scan is bounded by a lookahead cap
/// to keep the critical section short on deep queues.
///
/// Wakeup protocol (event-driven, no timed re-polls): a policy may refuse
/// the current queue contents for a processor (HLS lookahead), so a worker
/// that found nothing blocks on its processor's condition variable and is
/// woken only when eligibility could have changed —
///
///   - Push notifies the processors in the policy's EligibleProcessors mask
///     for the new task (the queue prefix is untouched by an append, so no
///     other eligibility changes);
///   - a successful Select notifies everyone: it shifted the lookahead
///     window and mutated the switch counts (Alg. 1 lines 7-8), either of
///     which can make previously refused tasks eligible;
///   - the throughput matrix calls OnEligibilityChanged when it publishes
///     new rates (preferences may flip);
///   - Close wakes everybody for shutdown.
///
/// Failed scans additionally persist a per-processor ScanState — the "first
/// plausible position" hint — so that after an append the re-scan resumes at
/// the queue tail with the prefix's accumulated delay instead of walking the
/// whole queue again under the lock. Every event other than Push invalidates
/// the hints.

namespace saber {

/// Upper bound on concurrently registered query slots across the engine and
/// the schedulers (EngineOptions::max_queries must not exceed it). Sized so
/// per-slot scheduler state (weights, virtual service) stays a small fixed
/// array that Select can read lock-free.
inline constexpr size_t kMaxQuerySlots = 256;

/// Resumable scan state: positions [0, resume_pos) of the queue have been
/// proven ineligible for one processor under the current rates and switch
/// counts, with `resume_delay` the preferred-processor delay accumulated
/// over that prefix (Alg. 1 line 10) and `seen_queries` the queries with a
/// task in that prefix — a resumed scan may not select an appended task of
/// a query whose (refused) earlier task it skipped, or it would run the
/// query out of id order. Valid only between a failed scan and the next
/// eligibility mutation; appends are the only queue change that preserves
/// it.
struct ScanState {
  size_t resume_pos = 0;
  double resume_delay = 0.0;
  std::bitset<kMaxQuerySlots> seen_queries;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Selects and removes the task this worker should run, or nullptr if no
  /// eligible task exists. Called with the queue contents under lock. `scan`
  /// (optional) resumes a previously failed scan and is updated in place on
  /// failure.
  virtual QueryTask* Select(std::deque<QueryTask*>& queue, Processor p,
                            ThroughputMatrix& matrix,
                            ScanState* scan = nullptr) = 0;

  /// Which processors could plausibly select `task`, just appended to the
  /// queue tail. Used for targeted wakeups; over-approximation is safe
  /// (woken workers re-run Select), missing a processor is not. The default
  /// wakes everyone.
  virtual ProcessorMask EligibleProcessors(const QueryTask& task,
                                           bool queue_was_empty,
                                           const ThroughputMatrix& matrix) const {
    (void)task;
    (void)queue_was_empty;
    (void)matrix;
    return kAllProcessors;
  }

  /// Whether removing a task can make a previously refused task eligible
  /// for some processor. True for HLS (the selection mutates switch counts
  /// and shifts the lookahead window); FCFS and Static eligibility is
  /// per-task and fixed, so their removals need no broadcast. Defaults to
  /// true — the safe answer for policies that don't know.
  virtual bool RemovalChangesEligibility() const { return true; }

  /// Dynamic-topology hooks: the engine admits/retires queries while workers
  /// are inside Select, so implementations must tolerate a slot's weight
  /// changing between (never during) scans. Default: policy has no per-query
  /// state.
  virtual void SetQueryWeight(int query, double weight) {
    (void)query;
    (void)weight;
  }
  virtual void OnQueryRetired(int query) { (void)query; }
};

class FcfsScheduler final : public Scheduler {
 public:
  QueryTask* Select(std::deque<QueryTask*>& queue, Processor p,
                    ThroughputMatrix& matrix,
                    ScanState* scan = nullptr) override {
    // FCFS takes the first task this processor is *allowed* to run — the
    // head in the common case; failover-narrowed retries make the mask
    // meaningful. Per-task eligibility is fixed, so a refused prefix stays
    // refused and the scan resumes where it last stopped.
    size_t pos = scan == nullptr ? 0 : std::min(scan->resume_pos, queue.size());
    for (; pos < queue.size(); ++pos) {
      QueryTask* t = queue[pos];
      if (MaskHas(t->allowed, p)) {
        queue.erase(queue.begin() + static_cast<long>(pos));
        matrix.IncrementCount(t->query_index, p);
        return t;
      }
    }
    if (scan != nullptr) scan->resume_pos = pos;
    return nullptr;
  }

  ProcessorMask EligibleProcessors(const QueryTask& task, bool /*was_empty*/,
                                   const ThroughputMatrix& /*matrix*/)
      const override {
    return task.allowed;
  }

  bool RemovalChangesEligibility() const override { return false; }
};

class StaticScheduler final : public Scheduler {
 public:
  explicit StaticScheduler(std::map<int, Processor> assignment)
      : assignment_(std::move(assignment)) {}

  QueryTask* Select(std::deque<QueryTask*>& queue, Processor p,
                    ThroughputMatrix& matrix,
                    ScanState* scan = nullptr) override {
    // Assignment is fixed per query and the allowed mask per task, so a
    // previously refused prefix stays refused: resume where the last failed
    // scan stopped.
    size_t pos = scan == nullptr ? 0 : std::min(scan->resume_pos, queue.size());
    for (; pos < queue.size(); ++pos) {
      QueryTask* t = queue[pos];
      if (Eligible(*t, p)) {
        queue.erase(queue.begin() + static_cast<long>(pos));
        matrix.IncrementCount(t->query_index, p);
        return t;
      }
    }
    if (scan != nullptr) scan->resume_pos = pos;
    return nullptr;
  }

  ProcessorMask EligibleProcessors(const QueryTask& task, bool /*was_empty*/,
                                   const ThroughputMatrix& /*matrix*/)
      const override {
    const Processor a = Assigned(task.query_index);
    return MaskHas(task.allowed, a) ? ProcessorBit(a) : task.allowed;
  }

  bool RemovalChangesEligibility() const override { return false; }

 private:
  /// The assigned processor runs the task if the mask allows it; a task
  /// whose mask *excludes* its assignment (GPGPU failover retry under a
  /// GPGPU-assigned query) may run on any allowed processor — the
  /// alternative is a permanently stuck task.
  bool Eligible(const QueryTask& t, Processor p) const {
    if (!MaskHas(t.allowed, p)) return false;
    const Processor a = Assigned(t.query_index);
    return a == p || !MaskHas(t.allowed, a);
  }

  Processor Assigned(int query) const {
    auto a = assignment_.find(query);
    return a == assignment_.end() ? Processor::kCpu : a->second;
  }

  std::map<int, Processor> assignment_;
};

/// Algorithm 1 (§4.2), extended with weighted-fair tenant selection.
///
/// The original algorithm removes the *first* HLS-eligible task in scan
/// order, which lets one hot tenant that keeps the queue prefix full starve
/// the rest. This variant keeps Alg. 1's per-task eligibility test (lines
/// 4-6, delay accounting, switch threshold) unchanged but collects one
/// candidate per query — the query's earliest queued task, preserving the
/// per-query task-id order the result stage's slot ring depends on — and
/// then picks the candidate whose tenant has the least normalized virtual
/// service (served bytes / weight), a deficit-style discipline: a weight-8
/// query accrues service 8x more slowly than a weight-1 query per byte, so
/// it wins ~8x the selections under contention. Ties (including the common
/// all-zero startup state and byte-less synthetic tasks) break toward the
/// earliest queue position, which makes the variant selection-identical to
/// Alg. 1 whenever service is balanced.
///
/// Queries may be admitted or retired between Select calls: per-slot weight
/// and service live in a fixed kMaxQuerySlots array, and a newly admitted
/// slot starts at the current service baseline (the least service observed
/// among recently queued tenants) so it neither monopolizes the queue to
/// "catch up" from zero nor starts in debt.
class HlsScheduler final : public Scheduler {
 public:
  /// `cpu_enabled`/`gpu_enabled` declare which processor types have workers:
  /// a task whose preferred processor has no workers is treated as
  /// preferring the asking processor, and the switch threshold (which exists
  /// to *observe the other processor*) is bypassed when there is no other
  /// processor — otherwise the head task starves in single-processor
  /// configurations.
  explicit HlsScheduler(int switch_threshold = 20, size_t lookahead_cap = 64,
                        bool cpu_enabled = true, bool gpu_enabled = true)
      : st_(switch_threshold),
        lookahead_cap_(lookahead_cap),
        shares_(new Share[kMaxQuerySlots]) {
    enabled_[static_cast<int>(Processor::kCpu)] = cpu_enabled;
    enabled_[static_cast<int>(Processor::kGpu)] = gpu_enabled;
  }

  QueryTask* Select(std::deque<QueryTask*>& queue, Processor p,
                    ThroughputMatrix& matrix,
                    ScanState* scan = nullptr) override {
    const Processor other =
        p == Processor::kCpu ? Processor::kGpu : Processor::kCpu;
    const bool have_other = enabled_[static_cast<int>(other)];
    double delay = scan == nullptr ? 0.0 : scan->resume_delay;  // line 2
    size_t pos = scan == nullptr ? 0 : std::min(scan->resume_pos, queue.size());
    const size_t limit = std::min(queue.size(), lookahead_cap_);
    QueryTask* best = nullptr;  // least-served candidate so far
    size_t best_pos = 0;
    Processor best_ppref = p;
    double best_norm = 0.0;
    double min_norm = 0.0;  // least service among candidate tenants
    // Queries with a task at an earlier position (including a resumed scan's
    // skipped prefix). Only a query's *earliest* queued task may be selected:
    // the result stage's slot ring admits a task only within kSlots of the
    // assembly cursor, so per-query id order bounds the
    // completed-but-unassembled gap by the tasks concurrently held by
    // workers. A later task selected past a refused earlier one (delay
    // accrues between positions, so the delay steal can qualify a position
    // the head failed; a resumed scan starts past the head entirely) breaks
    // that bound: a pipelined device worker laps the ring, wedges spinning in
    // the store, and — no longer scheduling — can never satisfy the switch
    // threshold that made the head ineligible for everyone else.
    std::bitset<kMaxQuerySlots> seen_query =
        scan == nullptr ? std::bitset<kMaxQuerySlots>{} : scan->seen_queries;
    for (; pos < limit; ++pos) {                            // line 3
      QueryTask* v = queue[pos];
      const int q = v->query_index;                         // line 4
      Processor ppref = matrix.Preferred(q);                // line 5
      if (!enabled_[static_cast<int>(ppref)]) ppref = p;
      // A failover-narrowed task prefers whatever its mask still allows
      // (two processors, so "not ppref" is the other one).
      if (!MaskHas(v->allowed, ppref)) {
        ppref = ppref == Processor::kCpu ? Processor::kGpu : Processor::kCpu;
      }
      const size_t qbit = static_cast<size_t>(q) % kMaxQuerySlots;
      const bool earliest_of_query = !seen_query.test(qbit);
      seen_query.set(qbit);
      if (MaskHas(v->allowed, p) && earliest_of_query) {
        const double rate_p = matrix.Rate(q, p);
        // Line 6: take the task if (i) this is the preferred processor and
        // the switch threshold has not been exceeded, or (ii) this is not
        // the preferred processor but either the threshold forces a switch
        // or the accumulated delay on the preferred processor exceeds this
        // processor's execution time for the task.
        //
        // The threshold exists to force observation of the *other*
        // processor, so it is bypassed when the task's mask excludes that
        // processor (a failover-narrowed retry): the only worker type that
        // could reset the count is the one the mask forbids, so honoring
        // the threshold would refuse the task forever — the requeued task
        // gates its query's assembly ring and the refusal wedges the whole
        // engine (observed as a GPGPU worker spinning in StoreAndAssemble
        // while every CPU worker sleeps on a full queue).
        const bool task_has_other = MaskHas(v->allowed, other);
        const bool preferred_ok =
            p == ppref &&
            (!have_other || !task_has_other || matrix.Count(q, p) < st_);
        const bool steal_ok =
            p != ppref &&
            (matrix.Count(q, ppref) >= st_ || delay >= 1.0 / rate_p);
        if (preferred_ok || steal_ok) {
          const double norm = NormServiceOf(q);
          if (best == nullptr) {
            min_norm = norm;
          } else {
            min_norm = std::min(min_norm, norm);
          }
          // Strict < keeps ties on the earliest position (Alg. 1 order).
          if (best == nullptr || norm < best_norm) {
            best = v;
            best_pos = pos;
            best_ppref = ppref;
            best_norm = norm;
          }
          continue;  // candidates do not contribute to the delay estimate
        }
      }
      delay += 1.0 / matrix.Rate(q, ppref);                 // line 10
    }
    if (best != nullptr) {
      const int q = best->query_index;
      if (matrix.Count(q, best_ppref) >= st_) {
        matrix.ResetCount(q, best_ppref);                   // line 7
      }
      matrix.IncrementCount(q, p);                          // line 8
      ChargeService(q, best->total_bytes);
      // Advance the admission baseline to the least-served tenant seen this
      // scan: a slot admitted later starts here, not at zero.
      double base = base_vserv_.load(std::memory_order_relaxed);
      if (min_norm > base) {
        base_vserv_.store(min_norm, std::memory_order_relaxed);
      }
      queue.erase(queue.begin() + static_cast<long>(best_pos));
      return best;                                          // line 9
    }
    if (scan != nullptr) {
      scan->resume_pos = pos;
      scan->resume_delay = delay;
      scan->seen_queries = seen_query;
    }
    return nullptr;                                         // nothing eligible
  }

  /// Admission (or re-weighting) of a query slot. Resets the slot's virtual
  /// service to the current baseline, so a readmitted slot does not inherit
  /// the service history of the retired tenant that used it before.
  void SetQueryWeight(int query, double weight) override {
    if (query < 0 || static_cast<size_t>(query) >= kMaxQuerySlots) return;
    Share& s = shares_[static_cast<size_t>(query)];
    s.weight.store(std::max(weight, 1e-9), std::memory_order_relaxed);
    s.vserv.store(base_vserv_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }

  void OnQueryRetired(int query) override {
    if (query < 0 || static_cast<size_t>(query) >= kMaxQuerySlots) return;
    Share& s = shares_[static_cast<size_t>(query)];
    s.weight.store(1.0, std::memory_order_relaxed);
    s.vserv.store(0.0, std::memory_order_relaxed);
  }

  ProcessorMask EligibleProcessors(const QueryTask& task, bool queue_was_empty,
                                   const ThroughputMatrix& matrix)
      const override {
    const ProcessorMask m = EligibleUnmasked(task, queue_was_empty, matrix);
    // A failover-narrowed task can only wake allowed processors. The
    // intersection cannot be empty in practice (the engine narrows only
    // toward processors that have workers), but fall back to the mask
    // itself rather than waking nobody.
    const ProcessorMask allowed = static_cast<ProcessorMask>(m & task.allowed);
    return allowed != 0 ? allowed : task.allowed;
  }

 private:
  ProcessorMask EligibleUnmasked(const QueryTask& task, bool queue_was_empty,
                                 const ThroughputMatrix& matrix) const {
    const int q = task.query_index;
    const Processor ppref = matrix.Preferred(q);
    if (!enabled_[static_cast<int>(ppref)]) {
      // No workers on the preferred processor: the task prefers whoever
      // asks, so any enabled processor can take it.
      ProcessorMask m = 0;
      for (int pi = 0; pi < kNumProcessors; ++pi) {
        if (enabled_[pi]) m |= ProcessorBit(static_cast<Processor>(pi));
      }
      return m;
    }
    const Processor other =
        ppref == Processor::kCpu ? Processor::kGpu : Processor::kCpu;
    const bool have_other = enabled_[static_cast<int>(other)];
    ProcessorMask m = 0;
    // Line 6 case (i): the preferred processor can take the new task unless
    // the switch threshold forces exploration on the other one.
    if (!have_other || matrix.Count(q, ppref) < st_) m |= ProcessorBit(ppref);
    // Line 6 case (ii): the other processor can steal when the threshold is
    // exceeded, or — only if tasks sit ahead of this one — when accumulated
    // delay might justify it. An empty queue means zero delay, and with
    // finite rates (kMinRate floor) zero delay never justifies a steal.
    if (have_other &&
        (matrix.Count(q, ppref) >= st_ || !queue_was_empty)) {
      m |= ProcessorBit(other);
    }
    return m;
  }

 private:
  /// Per-slot weighted-fair state. Atomics because the engine re-weights /
  /// retires slots from control threads while workers run Select under the
  /// queue lock; Select itself is serialized by that lock.
  struct Share {
    std::atomic<double> weight{1.0};
    std::atomic<double> vserv{0.0};  // served bytes / weight
  };

  double NormServiceOf(int q) const {
    return shares_[static_cast<size_t>(q) % kMaxQuerySlots].vserv.load(
        std::memory_order_relaxed);
  }

  void ChargeService(int q, size_t bytes) {
    Share& s = shares_[static_cast<size_t>(q) % kMaxQuerySlots];
    const double w = s.weight.load(std::memory_order_relaxed);
    // Select runs under the queue lock, so load+store does not race another
    // charge; a concurrent SetQueryWeight reset may win, which is fine.
    s.vserv.store(s.vserv.load(std::memory_order_relaxed) +
                      static_cast<double>(bytes) / w,
                  std::memory_order_relaxed);
  }

  const int st_;
  const size_t lookahead_cap_;
  std::unique_ptr<Share[]> shares_;
  std::atomic<double> base_vserv_{0.0};
  bool enabled_[kNumProcessors];
};

/// The single system-wide queue of query tasks (Fig. 4). Bounded: Push
/// blocks when full, providing dispatch back-pressure. Worker wakeups are
/// event-driven (see the file comment for the protocol); there is no timed
/// re-poll anywhere in the steady state.
class TaskQueue {
 public:
  explicit TaskQueue(size_t capacity) : capacity_(capacity) {}

  /// Returns false if the queue has been closed. When `policy` and `matrix`
  /// are supplied, only workers whose processor could plausibly select the
  /// new task are woken; otherwise all waiters are.
  ///
  /// `force` bypasses the capacity bound (never the closed check). Worker
  /// threads MUST pass force=true when they dispatch tasks from the result
  /// stage (a connected query's sink): the queue drains *through* the
  /// workers, so a worker blocking here while it holds an assembly token
  /// deadlocks the engine — every other worker may be refusing the queued
  /// (e.g. all GPGPU-preferred) tasks, and the one processor that would
  /// take them is the one stuck in Push. Memory stays bounded anyway: live
  /// tasks are capped by input-buffer capacity / φ per query.
  bool Push(QueryTask* task, Scheduler* policy = nullptr,
            const ThroughputMatrix* matrix = nullptr, bool force = false) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(
        lock, [&] { return closed_ || force || tasks_.size() < capacity_; });
    if (closed_) return false;
    const bool was_empty = tasks_.empty();
    tasks_.push_back(task);
    ProcessorMask mask = kAllProcessors;
    if (policy != nullptr && matrix != nullptr) {
      mask = policy->EligibleProcessors(*task, was_empty, *matrix);
    }
    // One appended task enables at most one selection per processor, and
    // workers of the same processor are interchangeable: notify_one.
    NotifyLocked(mask, /*everyone=*/false);
    return true;
  }

  /// Returns a failed task to the queue *front*, bypassing the capacity
  /// bound (the task was already admitted once; blocking here would wedge
  /// the requeueing worker). Front placement is load-bearing: policies
  /// select a query's tasks in id order and the result stage's slot ring
  /// admits a task only within kSlots of the assembly cursor, so a retried
  /// task parked behind its query's younger tasks could spin every worker.
  /// Returns false when the queue is closed (caller recycles the task).
  bool Requeue(QueryTask* task) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    tasks_.push_front(task);
    // Unlike an append, a front insert changes the prefix ahead of every
    // queued task (HLS delay accounting), so all scans are stale and any
    // processor's eligibility may have changed: wake everyone.
    InvalidateScansLocked();
    NotifyLocked(kAllProcessors, /*everyone=*/true);
    return true;
  }

  /// Runs the scheduling policy; blocks until a task is selected or the
  /// queue is closed. `wait` = false polls once. With wait = true, nullptr
  /// means the queue was closed.
  QueryTask* Select(Scheduler& policy, Processor p, ThroughputMatrix& matrix,
                    bool wait = true) {
    const int pi = static_cast<int>(p);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      QueryTask* t = policy.Select(tasks_, p, matrix, &scan_[pi]);
      if (t != nullptr) {
        // The removal shifted queue positions, so cached scan hints are
        // stale for every policy. Only policies whose selection mutates
        // shared eligibility state (HLS: switch counts, lookahead window)
        // also need the broadcast — for FCFS/Static a removal can never
        // make a refused task eligible, and waking everyone per selected
        // task would put a thundering herd on the hot path.
        InvalidateScansLocked();
        not_full_.notify_one();
        if (policy.RemovalChangesEligibility()) {
          NotifyLocked(kAllProcessors, /*everyone=*/true);
        }
        return t;
      }
      if (closed_ || !wait) return nullptr;
      // All notifications happen under mu_, so nothing can slip between
      // this failed scan and the wait.
      cv_[pi].wait(lock);
    }
  }

  /// External eligibility change — the throughput matrix published new
  /// rates: preferences may have flipped, so cached scans are stale and any
  /// waiter may now have work.
  void OnEligibilityChanged() {
    std::lock_guard<std::mutex> lock(mu_);
    InvalidateScansLocked();
    NotifyLocked(kAllProcessors, /*everyone=*/true);
  }

  /// Registers a callback fired (under the queue lock) whenever processor
  /// `p` is notified; the GPGPU worker uses it to fold task availability
  /// into its single completion-queue select. Passing nullptr detaches the
  /// listener and, because detachment takes the queue lock, acts as a
  /// barrier: after it returns no further invocations are possible.
  void SetAvailabilityListener(Processor p, std::function<void()> listener) {
    std::lock_guard<std::mutex> lock(mu_);
    listeners_[static_cast<int>(p)] = std::move(listener);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }
  bool empty() const { return size() == 0; }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    NotifyLocked(kAllProcessors, /*everyone=*/true);
  }

  /// Removes and returns every queued task of one query (query retirement:
  /// the engine sweeps a retired slot so no worker ever dequeues a task
  /// whose QueryState is gone). The caller releases the tasks to the pool
  /// and fixes its dispatch accounting, keeping capacity accounting exact —
  /// freed capacity wakes blocked pushers, and since queue positions
  /// shifted, scan hints are invalidated and all workers are re-woken.
  std::vector<QueryTask*> SweepQuery(int query_index) {
    std::vector<QueryTask*> out;
    std::lock_guard<std::mutex> lock(mu_);
    auto keep = tasks_.begin();
    for (QueryTask* t : tasks_) {
      if (t->query_index == query_index) {
        out.push_back(t);
      } else {
        *keep++ = t;
      }
    }
    if (!out.empty()) {
      tasks_.erase(keep, tasks_.end());
      InvalidateScansLocked();
      not_full_.notify_all();
      NotifyLocked(kAllProcessors, /*everyone=*/true);
    }
    return out;
  }

  /// Removes and returns all remaining tasks (engine shutdown).
  std::deque<QueryTask*> DrainRemaining() {
    std::lock_guard<std::mutex> lock(mu_);
    InvalidateScansLocked();
    std::deque<QueryTask*> out;
    out.swap(tasks_);
    return out;
  }

 private:
  void InvalidateScansLocked() {
    for (ScanState& s : scan_) s = ScanState{};
  }

  void NotifyLocked(ProcessorMask mask, bool everyone) {
    for (int pi = 0; pi < kNumProcessors; ++pi) {
      if (!MaskHas(mask, static_cast<Processor>(pi))) continue;
      if (everyone) {
        cv_[pi].notify_all();
      } else {
        cv_[pi].notify_one();
      }
      if (listeners_[pi]) listeners_[pi]();
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  /// Per-processor eligibility wakeup channels plus the persisted scan
  /// hints; all guarded by mu_.
  std::condition_variable cv_[kNumProcessors];
  ScanState scan_[kNumProcessors];
  std::function<void()> listeners_[kNumProcessors];
  std::condition_variable not_full_;
  std::deque<QueryTask*> tasks_;
  bool closed_ = false;
};

}  // namespace saber
