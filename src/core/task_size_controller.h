#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "obs/metrics.h"
#include "runtime/histogram.h"

/// \file task_size_controller.h
/// Adaptive task sizing as a first-class, per-query controller (extension;
/// cf. Das et al. [25], contrasted in §7 of the paper). SABER's query task
/// size φ sets the central trade-off of §6.4 (Fig. 12): large tasks amortize
/// per-task dispatch/scheduling cost (throughput), small tasks shorten the
/// accumulate-execute-assemble path (latency). The controller owns the live
/// per-query φ and re-tunes it from the observed end-to-end task latencies,
/// under one of three policies:
///
///  - kFixedPhi           φ never changes (the paper's configuration).
///  - kLatencyTargetAimd  AIMD against a latency target: multiplicative
///                        decrease on overshoot (÷2, or ÷4 for > 2× target,
///                        like the fixed-point batch-size iteration of [25]),
///                        additive increase (+25%) while the interval stays
///                        below half the target.
///  - kThroughputGuard    AIMD plus a throughput floor: a shrink is clamped
///                        so the projected per-processor task rate stays
///                        below `guard_max_task_rate`. Past that rate the
///                        per-task dispatch overhead dominates the latency,
///                        so shrinking φ further burns throughput without
///                        buying latency (the steep left edge of Fig. 12a).
///
/// Threading: `Observe` is invoked from the result stage while the caller
/// holds the per-query assembly token, so observations are serialized (but
/// arrive from different worker threads — all mutable state is atomic or
/// inside the atomic-bucket interval histogram). `phi()` and `Stats()` are
/// safe to call from any thread at any time.
///
/// The clock is injected so convergence is unit-testable without wall-time
/// sleeps (see tests/core/task_size_controller_test.cc); the engine passes
/// the default monotonic clock.

namespace saber {

enum class TaskSizePolicy {
  kFixedPhi,
  kLatencyTargetAimd,
  kThroughputGuard,
};

/// Knobs for the controller, embedded in EngineOptions as `task_sizing`.
struct TaskSizeControllerOptions {
  /// Which policy owns φ. kFixedPhi disables adjustment entirely.
  TaskSizePolicy policy = TaskSizePolicy::kFixedPhi;

  /// [aimd, guard] End-to-end task latency target in nanoseconds
  /// (dispatch → output emission). The interval *maximum* is compared
  /// against it: > target shrinks φ, < target/2 grows φ. Default 10 ms.
  int64_t latency_target_nanos = 10'000'000;

  /// [aimd, guard] Floor for the adaptive φ in bytes (rounded down to a
  /// multiple of the query's input tuple size, min one tuple). Default 4 KiB.
  size_t min_task_size = 4096;

  /// [aimd, guard] Starting φ in bytes; 0 starts at the ceiling
  /// (EngineOptions::task_size). A conservative start makes the controller
  /// probe *upward* — additive growth until the target binds — instead of
  /// paying the large-φ latency transient while it shrinks into place.
  /// Clamped into [min_task_size, task_size]. Default 0.
  size_t initial_task_size = 0;

  /// [aimd, guard] Minimum time between φ adjustments in nanoseconds; all
  /// latencies observed within one interval feed a single decision.
  /// Default 50 ms.
  int64_t adjust_interval_nanos = 50'000'000;

  /// [guard] Per-processor task rate (tasks/second) past which dispatch
  /// overhead is taken to dominate: shrinks are clamped so the projected
  /// rate `current_rate * phi_old / phi_new` stays below this. The default
  /// models ~50 µs of dispatch/scheduling cost per task. Ignored when the
  /// throughput matrix has published no rate yet.
  double guard_max_task_rate = 20'000.0;
};

/// Point-in-time snapshot of one query's controller, surfaced through
/// `QueryHandle::controller_stats()` and printed by saber_cli.
struct ControllerStats {
  TaskSizePolicy policy = TaskSizePolicy::kFixedPhi;
  /// Live φ in bytes (a multiple of the input tuple size).
  size_t current_phi = 0;
  /// Total latency observations fed to the controller.
  int64_t observations = 0;
  /// φ changes applied (shrinks + grows).
  int64_t adjust_count = 0;
  int64_t shrink_count = 0;
  int64_t grow_count = 0;
  /// Times a proposed φ was limited by min/max bounds or the throughput
  /// guard (the proposal may still have moved φ part of the way).
  int64_t clamp_events = 0;
  /// p99 of the task latencies in the last *closed* observation interval,
  /// in nanoseconds (0 until the first interval closes).
  int64_t last_p99_nanos = 0;
  /// Maximum latency in the last closed interval — the value the AIMD
  /// decision actually compared against the target.
  int64_t last_window_max_nanos = 0;
};

class TaskSizeController {
 public:
  /// Monotonic nanosecond clock; injectable for deterministic tests.
  using ClockFn = std::function<int64_t()>;
  /// Best currently-published task rate (tasks/s) for this query across
  /// processors, or 0 when unknown. Only consulted by kThroughputGuard.
  using RateFn = std::function<double()>;

  /// `max_task_size` is the configured φ ceiling (EngineOptions::task_size);
  /// `tuple_size` is the query's input-stream tuple size — every φ the
  /// controller publishes is a non-zero multiple of it. A null `clock`
  /// falls back to the monotonic wall clock; a null `rate` pins the
  /// throughput guard open (no rate data, no clamping).
  TaskSizeController(const TaskSizeControllerOptions& options,
                     size_t max_task_size, size_t tuple_size,
                     RateFn rate = nullptr, ClockFn clock = nullptr);

  TaskSizeController(const TaskSizeController&) = delete;
  TaskSizeController& operator=(const TaskSizeController&) = delete;

  /// The live φ in bytes. Read by the dispatching stage on every task-cut
  /// decision; a single relaxed atomic load.
  size_t phi() const { return phi_.load(std::memory_order_relaxed); }

  /// Feeds one end-to-end task latency (dispatch → output emission). Folds
  /// it into the current observation interval and, once
  /// `adjust_interval_nanos` has elapsed, closes the interval and lets the
  /// policy re-decide φ. Caller holds the per-query assembly token.
  void Observe(int64_t latency_nanos);

  ControllerStats Stats() const;

  /// Publishes this controller's monotone counters as external series on
  /// `registry` under `labels` (saber_controller_*_total). Gauges derived
  /// from Stats() — φ, last-interval p99 — are the engine collector's job.
  /// The caller owns the unregistration contract tied to `owner`.
  void RegisterMetrics(obs::MetricsRegistry* registry, const obs::Labels& labels,
                       const void* owner) const;

  const TaskSizeControllerOptions& options() const { return options_; }

  /// "fixed" / "aimd" / "guard" (stable names, used by saber_cli and the
  /// adaptive bench's JSON records).
  static const char* PolicyName(TaskSizePolicy policy);
  /// Inverse of PolicyName; returns false on an unknown name.
  static bool ParsePolicy(const char* name, TaskSizePolicy* out);

 private:
  /// Closes the interval [last adjust, now): applies the AIMD decision to
  /// `window_max` and publishes a new φ. Single claimant per interval.
  void Adjust(int64_t window_max);
  size_t RoundToTuple(size_t bytes) const;

  const TaskSizeControllerOptions options_;
  const size_t max_task_size_;  // tuple-rounded ceiling
  const size_t min_task_size_;  // tuple-rounded floor
  const size_t tuple_size_;
  const RateFn rate_;
  const ClockFn clock_;

  std::atomic<size_t> phi_;
  std::atomic<int64_t> window_max_{0};
  std::atomic<int64_t> last_adjust_nanos_{0};
  /// Latencies of the open interval; reset when the interval closes. Only
  /// used to report `last_p99_nanos` — decisions use the interval maximum,
  /// preserving the original engine behavior.
  LatencyHistogram interval_latency_;

  /// Monotone counters double as the metrics-registry series for this
  /// controller (registered by RegisterMetrics); Stats() reads the same
  /// storage, so the CLI summary and a /metrics scrape can never diverge.
  obs::Counter observations_;
  obs::Counter adjust_count_;
  obs::Counter shrink_count_;
  obs::Counter grow_count_;
  obs::Counter clamp_events_;
  std::atomic<int64_t> last_p99_nanos_{0};
  std::atomic<int64_t> last_window_max_nanos_{0};
};

}  // namespace saber
