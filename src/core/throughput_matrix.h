#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/task.h"
#include "runtime/align.h"
#include "runtime/clock.h"

/// \file throughput_matrix.h
/// The query task throughput matrix C of §4.2: C(q, p) is the observed number
/// of query tasks of query q executed per second on processor p. SABER makes
/// no use of offline performance models — the matrix is "initialised under a
/// uniform assumption" and "continuously updated by measuring the number of
/// tasks of a query that are executed in a certain time span on a particular
/// processor".
///
/// Implementation: per (q, p) cell, a ring of the last K completion
/// timestamps; the rate is (K-1) / (t_newest - t_oldest). The published rate
/// is refreshed at most once per update_interval (100 ms in the Fig. 16
/// adaptation experiment) so scheduling reads are a single atomic load.

namespace saber {

class ThroughputMatrix {
 public:
  static constexpr size_t kWindow = 8;

  /// Floor applied to every published rate. HLS (Algorithm 1) divides by
  /// C(q, p) when accumulating delay; a zero rate — reachable through the
  /// public SetRate — would otherwise produce an infinite/NaN delay that
  /// permanently wedges the lookahead. 1e-6 tasks/s models "effectively
  /// never" while keeping the arithmetic finite.
  static constexpr double kMinRate = 1e-6;

  explicit ThroughputMatrix(size_t num_queries,
                            double initial_rate = 100.0,
                            int64_t update_interval_nanos = 100'000'000)
      : update_interval_nanos_(update_interval_nanos),
        initial_rate_(initial_rate) {
    cells_.reserve(num_queries * kNumProcessors);
    for (size_t i = 0; i < num_queries * kNumProcessors; ++i) {
      cells_.push_back(std::make_unique<Cell>(initial_rate));
    }
  }

  /// Returns a query's cells to the uniform-assumption prior (query slot
  /// retirement: a readmitted slot must not inherit the retired tenant's
  /// measured rates or switch counts). Safe to call concurrently with
  /// readers; they observe either the old rates or the prior.
  void ResetQuery(int query) {
    for (int pi = 0; pi < kNumProcessors; ++pi) {
      Cell& c = cell(query, static_cast<Processor>(pi));
      std::lock_guard<std::mutex> lock(c.mu);
      c.head = 0;
      for (size_t i = 0; i < kWindow; ++i) c.completions[i] = 0;
      c.published.store(false, std::memory_order_relaxed);
      c.rate.store(initial_rate_, std::memory_order_relaxed);
      c.last_refresh.store(0, std::memory_order_relaxed);
      c.exec_count.store(0, std::memory_order_relaxed);
    }
  }

  /// Records a completed task of query q on processor p.
  void RecordCompletion(int query, Processor p) {
    Cell& c = cell(query, p);
    const int64_t now = NowNanos();
    {
      std::lock_guard<std::mutex> lock(c.mu);
      c.completions[c.head % kWindow] = now;
      ++c.head;
    }
    MaybeRefresh(c, now);
  }

  /// Published rate C(q, p) in tasks/second, floored to kMinRate so the
  /// scheduler's 1/rate delay arithmetic stays finite.
  double Rate(int query, Processor p) const {
    return std::max(cell(query, p).rate.load(std::memory_order_relaxed),
                    kMinRate);
  }

  /// Like Rate, but 0 while the cell still holds the uniform-assumption
  /// prior (no measured refresh or SetRate yet). HLS always needs a finite
  /// rate and uses Rate; consumers that must not act on fictional data —
  /// the task-size controller's throughput guard — use this.
  double RateIfPublished(int query, Processor p) const {
    const Cell& c = cell(query, p);
    // Acquire pairs with the release store in SetRate/MaybeRefresh: seeing
    // published == true must imply seeing the measured rate, not the prior.
    if (!c.published.load(std::memory_order_acquire)) return 0.0;
    return std::max(c.rate.load(std::memory_order_relaxed), kMinRate);
  }

  /// The processor with the highest observed rate for q (ties favor CPU,
  /// matching argmax order over {CPU, GPGPU}).
  Processor Preferred(int query) const {
    return Rate(query, Processor::kCpu) >= Rate(query, Processor::kGpu)
               ? Processor::kCpu
               : Processor::kGpu;
  }

  /// Execution-count bookkeeping for the HLS switch threshold (Alg. 1's
  /// `count` function).
  int64_t Count(int query, Processor p) const {
    return cell(query, p).exec_count.load(std::memory_order_relaxed);
  }
  void IncrementCount(int query, Processor p) {
    cell(query, p).exec_count.fetch_add(1, std::memory_order_relaxed);
  }
  void ResetCount(int query, Processor p) {
    cell(query, p).exec_count.store(0, std::memory_order_relaxed);
  }

  /// Multiplies the published rate for (q, p) by `factor` (in (0, 1]),
  /// floored at kMinRate. The GPGPU failover path decays a failing device's
  /// rate so HLS steers new tasks away immediately, without waiting out the
  /// refresh interval; the next MaybeRefresh that publishes a *measured*
  /// rate (e.g. after successful probe tasks) overwrites the decayed value,
  /// which is the natural re-admission path.
  void DecayRate(int query, Processor p, double factor) {
    Cell& c = cell(query, p);
    const double cur =
        std::max(c.rate.load(std::memory_order_relaxed), kMinRate);
    c.rate.store(std::max(cur * factor, kMinRate), std::memory_order_relaxed);
    c.published.store(true, std::memory_order_release);
    if (refresh_listener_) refresh_listener_();
  }

  /// Forces a rate (tests and the Fig. 5 worked example).
  void SetRate(int query, Processor p, double rate) {
    Cell& c = cell(query, p);
    c.rate.store(rate, std::memory_order_relaxed);
    c.published.store(true, std::memory_order_release);
    if (refresh_listener_) refresh_listener_();
  }

  /// Invoked after a new rate is published (the scheduling stage re-checks
  /// task eligibility when the matrix drifts, instead of polling on a
  /// timer). Must be set before worker threads start; may be invoked
  /// concurrently from any thread that records completions.
  void SetRefreshListener(std::function<void()> listener) {
    refresh_listener_ = std::move(listener);
  }

 private:
  struct Cell {
    explicit Cell(double initial) : rate(initial) {}
    std::mutex mu;
    int64_t completions[kWindow] = {0};
    size_t head = 0;
    std::atomic<double> rate;
    /// False while `rate` is still the constructor's uniform prior.
    std::atomic<bool> published{false};
    std::atomic<int64_t> last_refresh{0};
    std::atomic<int64_t> exec_count{0};
  };

  void MaybeRefresh(Cell& c, int64_t now) {
    int64_t last = c.last_refresh.load(std::memory_order_relaxed);
    if (now - last < update_interval_nanos_) return;
    if (!c.last_refresh.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed)) {
      return;
    }
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(c.mu);
      if (c.head < kWindow) return;  // not enough samples yet
      const int64_t newest = c.completions[(c.head - 1) % kWindow];
      const int64_t oldest = c.completions[c.head % kWindow];
      if (newest <= oldest) return;
      const double rate =
          static_cast<double>(kWindow - 1) / ((newest - oldest) * 1e-9);
      c.rate.store(rate, std::memory_order_relaxed);
      c.published.store(true, std::memory_order_release);
      published = true;
    }
    // Outside the cell lock: the listener takes the task-queue lock.
    if (published && refresh_listener_) refresh_listener_();
  }

  Cell& cell(int query, Processor p) {
    return *cells_[query * kNumProcessors + static_cast<int>(p)];
  }
  const Cell& cell(int query, Processor p) const {
    return *cells_[query * kNumProcessors + static_cast<int>(p)];
  }

  const int64_t update_interval_nanos_;
  const double initial_rate_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::function<void()> refresh_listener_;
};

}  // namespace saber
