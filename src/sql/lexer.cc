#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include "runtime/strcat.h"

namespace saber::sql {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  // Newlines are only ever consumed by the whitespace skip below (comments
  // stop *before* their '\n'), so one counter there keeps line/column exact.
  int line = 1;
  size_t line_start = 0;
  auto mark = [&](Token& t, size_t pos) {
    t.position = pos;
    t.line = line;
    t.column = static_cast<int>(pos - line_start) + 1;
  };
  auto push = [&](TokenKind k, size_t pos, std::string raw = "") {
    Token t;
    t.kind = k;
    t.raw = std::move(raw);
    mark(t, pos);
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') {
        ++line;
        line_start = i + 1;
      }
      ++i;
      continue;
    }
    // -- comments to end of line (Appendix A uses them liberally).
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      Token t;
      t.kind = TokenKind::kIdent;
      t.raw = input.substr(start, i - start);
      t.text = Lower(t.raw);
      mark(t, start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      const size_t start = i;
      bool is_int = true;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_int = false;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.raw = input.substr(start, i - start);
      t.number = std::strtod(t.raw.c_str(), nullptr);
      t.number_is_int = is_int;
      t.int_value = is_int ? std::strtoll(t.raw.c_str(), nullptr, 10) : 0;
      mark(t, start);
      tokens.push_back(std::move(t));
      continue;
    }
    const size_t pos = i;
    switch (c) {
      case ',': push(TokenKind::kComma, pos, ","); ++i; break;
      case '(': push(TokenKind::kLParen, pos, "("); ++i; break;
      case ')': push(TokenKind::kRParen, pos, ")"); ++i; break;
      case '[': push(TokenKind::kLBracket, pos, "["); ++i; break;
      case ']': push(TokenKind::kRBracket, pos, "]"); ++i; break;
      case '*': push(TokenKind::kStar, pos, "*"); ++i; break;
      case '+': push(TokenKind::kPlus, pos, "+"); ++i; break;
      case '-': push(TokenKind::kMinus, pos, "-"); ++i; break;
      case '/': push(TokenKind::kSlash, pos, "/"); ++i; break;
      case '%': push(TokenKind::kPercent, pos, "%"); ++i; break;
      case '.': push(TokenKind::kDot, pos, "."); ++i; break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLe, pos, "<=");
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenKind::kNe, pos, "<>");
          i += 2;
        } else {
          push(TokenKind::kLt, pos, "<");
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGe, pos, ">=");
          i += 2;
        } else {
          push(TokenKind::kGt, pos, ">");
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kEq, pos, "==");
          i += 2;
        } else {
          push(TokenKind::kEq, pos, "=");
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kNe, pos, "!=");
          i += 2;
          break;
        }
        return Status::InvalidArgument(
            StrCat("unexpected '!' at line ", line, ", column ",
                   pos - line_start + 1));
      default:
        return Status::InvalidArgument(
            StrCat("unexpected character '", c, "' at line ", line,
                   ", column ", pos - line_start + 1));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  mark(end, n);
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace saber::sql
