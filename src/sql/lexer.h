#pragma once

#include <string>
#include <vector>

#include "runtime/status.h"

/// \file lexer.h
/// Tokenizer for the CQL-style streaming SQL subset (§2.4, Appendix A):
/// SELECT ... FROM stream [range N slide M] WHERE ... GROUP BY ... HAVING.
/// Keywords are case-insensitive; identifiers keep their case.

namespace saber::sql {

enum class TokenKind : uint8_t {
  kIdent,
  kNumber,    // integer or decimal literal
  kComma,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kDot,
  kLt,
  kLe,
  kEq,   // == or =
  kNe,   // != or <>
  kGe,
  kGt,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier text (lower-cased for keyword checks)
  std::string raw;    // original spelling
  double number = 0;
  bool number_is_int = false;
  int64_t int_value = 0;
  size_t position = 0;  // byte offset
  int line = 1;         // 1-based, for error messages
  int column = 1;       // 1-based byte column within the line

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kIdent && text == kw;
  }
};

/// Tokenizes `input`. On error returns InvalidArgument with line/column.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace saber::sql
