#pragma once

#include <map>
#include <string>

#include "core/query.h"
#include "ingest/ingress_options.h"
#include "sql/lexer.h"

/// \file parser.h
/// Parser for the CQL-style streaming SQL subset of §2.4 / Appendix A,
/// producing the same QueryDef the fluent QueryBuilder produces. Supported
/// grammar (keywords case-insensitive):
///
///   query      := SELECT select_list
///                 FROM source (',' source)?
///                 (WHERE expr)? (GROUP BY expr_list)? (HAVING expr)?
///                 (WITH with_opt (',' with_opt)*)?
///   source     := stream_name window (AS? alias)?
///   window     := '[' RANGE (UNBOUNDED | n (SLIDE m)?) ']'        -- time
///               | '[' ROWS n (SLIDE m)? ']'                       -- count
///               | '[' SESSION GAP n ']'                           -- session
///   with_opt   := LATENESS n                 -- event-time disorder bound
///               | LATE (ABORT | DROP | DEADLETTER)   -- late-tuple policy
///   select_list:= sel (',' sel)* ; sel := expr (AS ident)?
///   expr       := disjunctions/conjunctions of comparisons over
///                 +,-,*,/,% arithmetic; aggregates SUM/AVG/COUNT/MIN/MAX;
///                 columns `name` or `alias.name`; NOT; parentheses.
///
/// Mapping rules (mirroring the engine's execution model):
///  - single-source queries with aggregates become aggregation queries
///    (non-aggregate select items must be GROUP BY keys or `timestamp`);
///  - two-source queries are θ-joins: the WHERE clause becomes the join
///    predicate; GROUP BY/HAVING on joins must be expressed as a chained
///    query (Engine::Connect), as SG3/LRB4 do;
///  - `select *` is the identity projection.

namespace saber::sql {

/// Stream catalog: name -> schema (field 0 must be the timestamp).
using Catalog = std::map<std::string, Schema>;

/// Ingestion directives from the statement's WITH clause. The parser only
/// records them — whoever admits the query (the network front end, a CLI)
/// applies them to the ingress it builds.
struct IngressSpec {
  int64_t allowed_lateness = 0;
  ingest::LatePolicy late_policy = ingest::LatePolicy::kAbort;
};

struct ParsedStatement {
  QueryDef def;
  IngressSpec ingress;
};

/// Parses one streaming SQL statement against the catalog.
Result<QueryDef> Parse(const std::string& statement, const Catalog& catalog,
                       const std::string& query_name = "sql");

/// Like Parse, but also returns the WITH-clause ingestion directives.
Result<ParsedStatement> ParseStatement(const std::string& statement,
                                       const Catalog& catalog,
                                       const std::string& query_name = "sql");

}  // namespace saber::sql
