#include "sql/parser.h"

#include <algorithm>

namespace saber::sql {

namespace {

struct Source {
  std::string stream;
  std::string alias;
  Schema schema;
  WindowDefinition window;
};

struct SelectItem {
  ExprPtr expr;
  std::string name;
  bool is_star = false;
  // Aggregate call, if the item is one.
  bool is_aggregate = false;
  AggregateFunction fn = AggregateFunction::kCount;
  ExprPtr agg_input;  // null for count(*)
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Catalog& catalog, std::string name)
      : tokens_(std::move(tokens)), catalog_(catalog), name_(std::move(name)) {}

  Result<ParsedStatement> Run() {
    SABER_RETURN_NOT_OK(Expect("select"));
    // Columns in the select list resolve against the FROM sources, which
    // appear later in the statement: capture the select-list tokens and
    // parse them once the sources are known. FROM cannot occur inside an
    // expression in this grammar, so the scan is unambiguous.
    std::vector<Token> select_tokens;
    while (!Peek().IsKeyword("from") && Peek().kind != TokenKind::kEnd) {
      select_tokens.push_back(Next());
    }
    {
      Token end;
      end.kind = TokenKind::kEnd;
      end.position = Peek().position;
      end.line = Peek().line;
      end.column = Peek().column;
      select_tokens.push_back(end);
    }
    SABER_RETURN_NOT_OK(Expect("from"));
    SABER_RETURN_NOT_OK(ParseSource());
    if (Accept(TokenKind::kComma)) SABER_RETURN_NOT_OK(ParseSource());

    std::vector<SelectItem> items;
    {
      Parser sel(std::move(select_tokens), catalog_, name_);
      sel.sources_ = sources_;
      SABER_RETURN_NOT_OK(sel.ParseSelectList(&items));
      if (sel.Peek().kind != TokenKind::kEnd) {
        return sel.Err("unexpected token in select list");
      }
    }

    ExprPtr where;
    if (AcceptKeyword("where")) {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      where = std::move(e).value();
    }
    std::vector<ExprPtr> group_by;
    std::vector<std::string> group_names;
    if (AcceptKeyword("group")) {
      SABER_RETURN_NOT_OK(Expect("by"));
      for (;;) {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        group_names.push_back(DescribeLast());
        group_by.push_back(std::move(e).value());
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    // HAVING references *output* columns (aggregate aliases, group keys), so
    // its tokens are captured now and parsed after the output schema exists.
    // The capture stops at WITH, the only clause allowed after HAVING.
    std::vector<Token> having_tokens;
    if (AcceptKeyword("having")) {
      while (Peek().kind != TokenKind::kEnd && !Peek().IsKeyword("with")) {
        having_tokens.push_back(Next());
      }
      Token end;
      end.kind = TokenKind::kEnd;
      end.position = Peek().position;
      end.line = Peek().line;
      end.column = Peek().column;
      having_tokens.push_back(end);
    }
    IngressSpec ingress;
    if (AcceptKeyword("with")) {
      SABER_RETURN_NOT_OK(ParseWithClause(&ingress));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input");
    }
    auto def = Build(std::move(items), std::move(where), std::move(group_by),
                     std::move(group_names));
    if (!def.ok()) return def.status();
    QueryDef q = std::move(def).value();
    if (!having_tokens.empty()) {
      if (!q.is_aggregation()) {
        return Err("HAVING requires aggregation (use WHERE to filter tuples)");
      }
      Parser sub(std::move(having_tokens), catalog_, name_ + "-having");
      Source pseudo;
      pseudo.alias = "";
      pseudo.schema = q.output_schema;
      sub.sources_.push_back(std::move(pseudo));
      auto h = sub.ParseExpr();
      if (!h.ok()) return h.status();
      if (sub.Peek().kind != TokenKind::kEnd) {
        return sub.Err("unexpected trailing input in HAVING");
      }
      q.having = std::move(h).value();
    }
    ParsedStatement stmt;
    stmt.def = std::move(q);
    stmt.ingress = ingress;
    return stmt;
  }

 private:
  // --- token helpers -------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Accept(TokenKind k) {
    if (Peek().kind != k) return false;
    ++pos_;
    return true;
  }
  bool AcceptKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  std::string Where() const {
    return " at line " + std::to_string(Peek().line) + ", column " +
           std::to_string(Peek().column);
  }
  Status Expect(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected '" + std::string(kw) + "'" +
                                     Where());
    }
    return Status::OK();
  }
  Status ExpectKind(TokenKind k, const char* what) {
    if (!Accept(k)) {
      return Status::InvalidArgument("expected " + std::string(what) +
                                     Where());
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + Where());
  }
  std::string DescribeLast() const {
    return pos_ > 0 ? tokens_[pos_ - 1].raw : "expr";
  }

  // --- grammar -------------------------------------------------------------
  Status ParseSource() {
    if (Peek().kind != TokenKind::kIdent) return Err("expected stream name");
    Source src;
    src.stream = Next().raw;
    auto it = catalog_.find(src.stream);
    if (it == catalog_.end()) {
      return Status::NotFound("unknown stream '" + src.stream + "'");
    }
    src.schema = it->second;
    SABER_RETURN_NOT_OK(ParseWindow(&src.window));
    if (AcceptKeyword("as")) {
      if (Peek().kind != TokenKind::kIdent) return Err("expected alias");
      src.alias = Next().raw;
    } else if (Peek().kind == TokenKind::kIdent &&
               !Peek().IsKeyword("where") && !Peek().IsKeyword("group") &&
               !Peek().IsKeyword("having") && !Peek().IsKeyword("with")) {
      src.alias = Next().raw;
    } else {
      src.alias = src.stream;
    }
    for (const Source& prev : sources_) {
      if (prev.alias == src.alias) {
        return Status::InvalidArgument("duplicate source alias '" + src.alias +
                                       "'");
      }
    }
    sources_.push_back(std::move(src));
    return Status::OK();
  }

  Status ParseWindow(WindowDefinition* out) {
    SABER_RETURN_NOT_OK(ExpectKind(TokenKind::kLBracket, "'['"));
    bool time_based;
    if (AcceptKeyword("session")) {
      SABER_RETURN_NOT_OK(Expect("gap"));
      if (Peek().kind != TokenKind::kNumber || !Peek().number_is_int) {
        return Err("expected integer session gap");
      }
      const int64_t gap = Next().int_value;
      SABER_RETURN_NOT_OK(ExpectKind(TokenKind::kRBracket, "']'"));
      if (gap < 1) return Err("invalid session window: need gap >= 1");
      *out = WindowDefinition::Session(gap);
      return Status::OK();
    }
    if (AcceptKeyword("range")) {
      time_based = true;
    } else if (AcceptKeyword("rows")) {
      time_based = false;
    } else {
      return Err("expected RANGE, ROWS or SESSION");
    }
    if (time_based && AcceptKeyword("unbounded")) {
      SABER_RETURN_NOT_OK(ExpectKind(TokenKind::kRBracket, "']'"));
      *out = WindowDefinition::Unbounded();
      return Status::OK();
    }
    if (Peek().kind != TokenKind::kNumber || !Peek().number_is_int) {
      return Err("expected integer window size");
    }
    const int64_t size = Next().int_value;
    int64_t slide = size;  // tumbling by default
    if (AcceptKeyword("slide")) {
      if (Peek().kind != TokenKind::kNumber || !Peek().number_is_int) {
        return Err("expected integer slide");
      }
      slide = Next().int_value;
    }
    SABER_RETURN_NOT_OK(ExpectKind(TokenKind::kRBracket, "']'"));
    if (size < 1 || slide < 1 || slide > size) {
      return Err("invalid window: need 1 <= slide <= size");
    }
    *out = time_based ? WindowDefinition::Time(size, slide)
                      : WindowDefinition::Count(size, slide);
    return Status::OK();
  }

  Status ParseWithClause(IngressSpec* out) {
    for (;;) {
      if (AcceptKeyword("lateness")) {
        if (Peek().kind != TokenKind::kNumber || !Peek().number_is_int ||
            Peek().int_value < 0) {
          return Err("expected non-negative integer lateness");
        }
        out->allowed_lateness = Next().int_value;
      } else if (AcceptKeyword("late")) {
        if (AcceptKeyword("abort")) {
          out->late_policy = ingest::LatePolicy::kAbort;
        } else if (AcceptKeyword("drop")) {
          out->late_policy = ingest::LatePolicy::kDropAndCount;
        } else if (AcceptKeyword("deadletter")) {
          out->late_policy = ingest::LatePolicy::kDeadLetter;
        } else {
          return Err("expected ABORT, DROP or DEADLETTER");
        }
      } else {
        return Err("expected LATENESS or LATE");
      }
      if (!Accept(TokenKind::kComma)) break;
    }
    return Status::OK();
  }

  Status ParseSelectList(std::vector<SelectItem>* items) {
    for (;;) {
      SelectItem item;
      if (Accept(TokenKind::kStar)) {
        item.is_star = true;
        items->push_back(std::move(item));
      } else {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(e).value();
        item.is_aggregate = last_was_aggregate_;
        item.fn = last_fn_;
        item.agg_input = last_agg_input_;
        item.name = last_item_name_.empty() ? DescribeLast() : last_item_name_;
        if (AcceptKeyword("as")) {
          if (Peek().kind != TokenKind::kIdent) return Err("expected alias");
          item.name = Next().raw;
        }
        items->push_back(std::move(item));
      }
      if (!Accept(TokenKind::kComma)) break;
    }
    return Status::OK();
  }

  // Expression grammar: or_expr > and_expr > not > comparison > additive >
  // multiplicative > primary.
  Result<ExprPtr> ParseExpr() {
    last_was_aggregate_ = false;
    last_item_name_.clear();
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    std::vector<ExprPtr> terms;
    terms.push_back(std::move(lhs).value());
    while (AcceptKeyword("or")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      terms.push_back(std::move(rhs).value());
    }
    if (terms.size() == 1) return terms[0];
    return Or(std::move(terms));
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    std::vector<ExprPtr> terms;
    terms.push_back(std::move(lhs).value());
    while (AcceptKeyword("and")) {
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      terms.push_back(std::move(rhs).value());
    }
    if (terms.size() == 1) return terms[0];
    return And(std::move(terms));
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      auto e = ParseNot();
      if (!e.ok()) return e;
      return Not(std::move(e).value());
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    const TokenKind k = Peek().kind;
    CompareOp op;
    switch (k) {
      case TokenKind::kLt: op = CompareOp::kLt; break;
      case TokenKind::kLe: op = CompareOp::kLe; break;
      case TokenKind::kEq: op = CompareOp::kEq; break;
      case TokenKind::kNe: op = CompareOp::kNe; break;
      case TokenKind::kGe: op = CompareOp::kGe; break;
      case TokenKind::kGt: op = CompareOp::kGt; break;
      default: return lhs;
    }
    Next();
    auto rhs = ParseAdditive();
    if (!rhs.ok()) return rhs;
    return ExprPtr(std::make_shared<CompareExpr>(op, std::move(lhs).value(),
                                                 std::move(rhs).value()));
  }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    for (;;) {
      if (Accept(TokenKind::kPlus)) {
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        e = Add(std::move(e), std::move(rhs).value());
      } else if (Accept(TokenKind::kMinus)) {
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        e = Sub(std::move(e), std::move(rhs).value());
      } else {
        return e;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    for (;;) {
      if (Accept(TokenKind::kStar)) {
        auto rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        e = Mul(std::move(e), std::move(rhs).value());
      } else if (Accept(TokenKind::kSlash)) {
        auto rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        e = Div(std::move(e), std::move(rhs).value());
      } else if (Accept(TokenKind::kPercent)) {
        auto rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        e = Mod(std::move(e), std::move(rhs).value());
      } else {
        return e;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      Next();
      if (t.number_is_int) return Lit(t.int_value);
      return Lit(t.number);
    }
    if (Accept(TokenKind::kMinus)) {
      auto e = ParsePrimary();
      if (!e.ok()) return e;
      return Sub(Lit(static_cast<int64_t>(0)), std::move(e).value());
    }
    if (Accept(TokenKind::kLParen)) {
      auto e = ParseOr();
      if (!e.ok()) return e;
      SABER_RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
      return e;
    }
    if (t.kind != TokenKind::kIdent) return Err("expected expression");

    // Aggregate call?
    static const std::map<std::string, AggregateFunction> kAggs = {
        {"sum", AggregateFunction::kSum},   {"avg", AggregateFunction::kAvg},
        {"count", AggregateFunction::kCount}, {"min", AggregateFunction::kMin},
        {"max", AggregateFunction::kMax}};
    auto agg_it = kAggs.find(t.text);
    if (agg_it != kAggs.end() && Peek(1).kind == TokenKind::kLParen) {
      Next();  // fn name
      Next();  // (
      ExprPtr input;
      if (Accept(TokenKind::kStar)) {
        if (agg_it->second != AggregateFunction::kCount) {
          return Err("'*' argument only valid for count");
        }
      } else {
        auto e = ParseOr();
        if (!e.ok()) return e;
        input = std::move(e).value();
      }
      SABER_RETURN_NOT_OK(ExpectKind(TokenKind::kRParen, "')'"));
      last_was_aggregate_ = true;
      last_fn_ = agg_it->second;
      last_agg_input_ = input;
      last_item_name_ = t.text;
      // Placeholder expression; aggregates are routed via AggregateSpec.
      return input != nullptr ? input : Lit(static_cast<int64_t>(0));
    }

    // Column reference: ident or alias.ident.
    Next();
    std::string alias, column = t.raw;
    if (Accept(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdent) return Err("expected column name");
      alias = t.raw;
      column = Next().raw;
    }
    return ResolveColumn(alias, column);
  }

  Result<ExprPtr> ResolveColumn(const std::string& alias,
                                const std::string& column) {
    for (size_t s = 0; s < sources_.size(); ++s) {
      if (!alias.empty() && sources_[s].alias != alias) continue;
      const int idx = sources_[s].schema.FieldIndex(column);
      if (idx < 0) {
        if (!alias.empty()) {
          return Status::NotFound("no column '" + column + "' in '" + alias +
                                  "'");
        }
        continue;
      }
      last_item_name_ = column;
      return ColAt(sources_[s].schema, static_cast<size_t>(idx),
                   s == 0 ? Side::kLeft : Side::kRight);
    }
    return Status::NotFound("unknown column '" + column + "'");
  }

  // --- QueryDef construction -----------------------------------------------
  Result<QueryDef> Build(std::vector<SelectItem> items, ExprPtr where,
                         std::vector<ExprPtr> group_by,
                         std::vector<std::string> group_names) {
    const bool is_join = sources_.size() == 2;
    const bool has_agg =
        std::any_of(items.begin(), items.end(),
                    [](const SelectItem& i) { return i.is_aggregate; });

    if (is_join) {
      if (has_agg || !group_by.empty()) {
        return Status::NotImplemented(
            "aggregation over a join must be expressed as a chained query "
            "(see SG3/LRB4)");
      }
      QueryBuilder b(name_, sources_[0].schema, sources_[1].schema);
      b.Window(sources_[0].window);
      b.WindowRight(sources_[1].window);
      if (where == nullptr) {
        return Status::InvalidArgument("joins require a WHERE predicate");
      }
      b.JoinOn(std::move(where));
      bool star = items.size() == 1 && items[0].is_star;
      if (!star) {
        for (auto& item : items) {
          if (item.is_star) return Err("mixed '*' and columns unsupported");
          b.JoinSelect(item.expr, item.name);
        }
      }
      return b.TryBuild();
    }

    QueryBuilder b(name_, sources_[0].schema);
    b.Window(sources_[0].window);
    if (where != nullptr) b.Where(std::move(where));

    if (has_agg || !group_by.empty()) {
      if (sources_[0].window.unbounded) {
        return Status::InvalidArgument("aggregation needs a bounded window");
      }
      // Non-aggregate select items must be the timestamp or a GROUP BY key;
      // both are emitted automatically by the aggregation output schema.
      // A select alias on a key expression names the output key column
      // (`position / 5280 as segment`).
      group_names.resize(group_by.size());
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (group_names[i].empty()) group_names[i] = group_by[i]->ToString();
      }
      for (auto& item : items) {
        if (item.is_star) return Err("'*' not valid with aggregation");
        if (item.is_aggregate) continue;
        const std::string repr = item.expr->ToString();
        bool is_key = repr == "$0";  // timestamp passthrough
        for (size_t i = 0; i < group_by.size(); ++i) {
          if (repr == group_by[i]->ToString()) {
            group_names[i] = item.name;
            is_key = true;
            break;
          }
        }
        if (!is_key) {
          return Status::InvalidArgument(
              "select item '" + item.name +
              "' is neither an aggregate nor a GROUP BY key");
        }
      }
      b.GroupBy(group_by, group_names);
      for (auto& item : items) {
        if (item.is_aggregate) b.Aggregate(item.fn, item.agg_input, item.name);
      }
      return b.TryBuild();
    }

    if (items.size() == 1 && items[0].is_star) {
      return b.TryBuild();  // identity projection
    }
    for (auto& item : items) {
      if (item.is_star) return Err("mixed '*' and columns unsupported");
      b.Select(item.expr, item.name);
    }
    return b.TryBuild();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Catalog& catalog_;
  std::string name_;
  std::vector<Source> sources_;

  bool last_was_aggregate_ = false;
  AggregateFunction last_fn_ = AggregateFunction::kCount;
  ExprPtr last_agg_input_;
  std::string last_item_name_;
};

}  // namespace

Result<ParsedStatement> ParseStatement(const std::string& statement,
                                       const Catalog& catalog,
                                       const std::string& query_name) {
  auto tokens = Tokenize(statement);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), catalog, query_name);
  return parser.Run();
}

Result<QueryDef> Parse(const std::string& statement, const Catalog& catalog,
                       const std::string& query_name) {
  auto stmt = ParseStatement(statement, catalog, query_name);
  if (!stmt.ok()) return stmt.status();
  return std::move(stmt).value().def;
}

}  // namespace saber::sql
