#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

/// \file trace.h
/// Sampled task-path tracing: a per-task span records the six stages a query
/// task travels — insert → dispatch → queue-wait → execute (CPU worker or
/// GPGPU pipeline) → assembly → sink — as wall-clock timestamps stamped in
/// the engine's own hot path, then published to a bounded lock-free ring on
/// completion. `EngineOptions::trace_sample_rate` arms it; at the default 0
/// the engine does not even construct the ring, so the per-task cost is one
/// pointer test (the "one relaxed load" contract — see engine.cc).
///
/// Memory is bounded by construction: sampled spans live *inside* the pooled
/// QueryTask until completion (no allocation per span), and the ring holds a
/// fixed number of completed spans — an overrun overwrites the oldest, it
/// never grows. Slots are seqlock-versioned: a writer bumps the version to
/// odd, copies the span, bumps to even; Drain() rereads until it observes a
/// stable even version and discards slots caught mid-write, so a dump is
/// race-free without ever blocking a worker.
///
/// Dumps render as Chrome `trace_event` JSON (load via chrome://tracing or
/// https://ui.perfetto.dev): one "X" (complete) event per stage, rows keyed
/// by query slot, with task id / backend / bytes in args.

namespace saber::obs {

/// One completed task journey. Timestamps are NowNanos() readings; a stage's
/// duration is the delta to the previous timestamp. `select_nanos` may be
/// re-stamped by a GPGPU-failover requeue, in which case queue-wait covers
/// the final queueing and execute the final (successful) execution.
struct TaskSpan {
  int64_t task_id = 0;
  int32_t query_index = 0;
  /// Executing backend: 0 = CPU worker, 1 = GPGPU.
  int32_t backend = 0;
  int64_t bytes = 0;
  int64_t insert_nanos = 0;    ///< newest insert feeding the task's batch
  int64_t create_nanos = 0;    ///< dispatcher cut the task
  int64_t queued_nanos = 0;    ///< pushed to the system-wide task queue
  int64_t select_nanos = 0;    ///< scheduler handed it to a worker
  int64_t exec_end_nanos = 0;  ///< operator (or device pipeline) finished
  int64_t sink_begin_nanos = 0;  ///< in-order turn reached, output ready
  int64_t done_nanos = 0;        ///< sink returned
};

class TraceRing {
 public:
  /// `sample_rate` in [0, 1]; `capacity` completed spans are retained.
  TraceRing(double sample_rate, size_t capacity);

  /// Sampling decision for one task (dispatcher threads). Thread-safe; a
  /// per-thread xorshift stream keeps it to a few ALU ops, no atomics.
  bool Sample() {
    if (threshold_ == 0) return false;
    thread_local uint64_t state = 0;
    if (state == 0) {
      state = 0x9e3779b97f4a7c15ULL ^
              reinterpret_cast<uint64_t>(static_cast<void*>(&state));
    }
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<uint32_t>(state >> 32) < threshold_;
  }

  /// Publishes a completed span (engine workers; lock-free).
  void Push(const TaskSpan& span);

  /// Copies the retained spans, oldest first. Safe concurrent with Push;
  /// spans mid-overwrite are skipped (see the file comment).
  std::vector<TaskSpan> Drain() const;

  size_t capacity() const { return slots_.size(); }
  /// Spans pushed over the ring's lifetime (>= capacity ⇒ the oldest were
  /// overwritten; surfaced so a dump never silently reads as complete).
  int64_t total_pushed() const {
    return static_cast<int64_t>(next_.load(std::memory_order_relaxed));
  }
  double sample_rate() const { return rate_; }

 private:
  struct Slot {
    static constexpr size_t kWords = (sizeof(TaskSpan) + 7) / 8;
    std::atomic<uint64_t> version{0};
    /// Span payload as relaxed-atomic words: a reader racing a writer (or
    /// two writers lapping onto the same slot) then performs defined,
    /// untorn word accesses — no C++ data race — while the seqlock version
    /// validates whole-record consistency. The word copies stay plain
    /// MOV instructions; only the version carries ordering.
    std::atomic<uint64_t> words[kWords] = {};
  };

  const double rate_;
  const uint32_t threshold_;  // sample iff rng32 < threshold_
  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
};

/// Renders spans as a Chrome trace_event JSON document (object form with a
/// "traceEvents" array; `meta` key/values land in the top-level object as
/// string fields).
std::string RenderChromeTrace(
    const std::vector<TaskSpan>& spans,
    const std::vector<std::pair<std::string, std::string>>& meta = {});

/// Drains `ring` and writes the Chrome trace JSON to `path`. Returns false
/// when the file could not be written. A null ring writes an empty trace.
bool WriteChromeTraceFile(const TraceRing* ring, const std::string& path);

}  // namespace saber::obs
