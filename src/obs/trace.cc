#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <type_traits>

#include "runtime/status.h"
#include "runtime/strcat.h"

// ThreadSanitizer does not model fences (and rejects them outright under
// -Werror=tsan), so the seqlock's read-side fence compiles away there: the
// payload words are atomics, which TSan reasons about directly, and the
// strict read ordering the fence provides in production builds is not what
// a race-detection build is exercising.
#if defined(__SANITIZE_THREAD__)
#define SABER_NO_FENCES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SABER_NO_FENCES 1
#endif
#endif

namespace saber::obs {

static_assert(std::is_trivially_copyable_v<TaskSpan>,
              "TaskSpan is copied through the slot ring word-by-word");

namespace {
inline void SeqlockAcquireFence() {
#if !defined(SABER_NO_FENCES)
  std::atomic_thread_fence(std::memory_order_acquire);
#endif
}
}  // namespace

TraceRing::TraceRing(double sample_rate, size_t capacity)
    : rate_(std::clamp(sample_rate, 0.0, 1.0)),
      threshold_(rate_ >= 1.0
                     ? 0xffffffffu
                     : static_cast<uint32_t>(rate_ * 4294967296.0)),
      slots_(std::max<size_t>(1, capacity)) {}

void TraceRing::Push(const TaskSpan& span) {
  uint64_t buf[Slot::kWords] = {};
  std::memcpy(buf, &span, sizeof(TaskSpan));
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx % slots_.size()];
  // Seqlock write: odd while the payload is torn. The acq_rel first bump
  // keeps the word stores from hoisting above it; the release second bump
  // keeps them from sinking below. Two writers lapping onto the same slot
  // (a full ring overrun within one store window) leave the version moving,
  // which the reader treats as torn and skips.
  slot.version.fetch_add(1, std::memory_order_acq_rel);
  for (size_t w = 0; w < Slot::kWords; ++w) {
    slot.words[w].store(buf[w], std::memory_order_relaxed);
  }
  slot.version.fetch_add(1, std::memory_order_release);
}

std::vector<TaskSpan> TraceRing::Drain() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t count = std::min<uint64_t>(end, slots_.size());
  std::vector<TaskSpan> out;
  out.reserve(count);
  for (uint64_t i = end - count; i < end; ++i) {
    const Slot& slot = slots_[i % slots_.size()];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // mid-write
      uint64_t buf[Slot::kWords];
      for (size_t w = 0; w < Slot::kWords; ++w) {
        buf[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      // The fence keeps the word loads from sinking below the validation
      // read; the acquire there alone would only stop it hoisting above.
      SeqlockAcquireFence();
      const uint64_t v2 = slot.version.load(std::memory_order_acquire);
      if (v1 == v2) {
        TaskSpan copy;
        std::memcpy(&copy, buf, sizeof(TaskSpan));
        out.push_back(copy);
        break;
      }
    }
  }
  return out;
}

namespace {

void AppendEvent(std::string* out, bool* first, const TaskSpan& s,
                 const char* name, int64_t begin_nanos, int64_t end_nanos) {
  if (end_nanos < begin_nanos || begin_nanos == 0) return;
  if (!*first) *out += ",\n";
  *first = false;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.3f", begin_nanos / 1000.0);
  *out += "{\"name\":\"";
  *out += name;
  *out += "\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":1,\"tid\":";
  *out += StrCat(s.query_index);
  *out += ",\"ts\":";
  *out += buf;
  std::snprintf(buf, sizeof(buf), "%.3f", (end_nanos - begin_nanos) / 1000.0);
  *out += ",\"dur\":";
  *out += buf;
  *out += ",\"args\":{\"task\":";
  *out += StrCat(s.task_id);
  *out += ",\"backend\":\"";
  *out += s.backend == 0 ? "cpu" : "gpu";
  *out += "\",\"bytes\":";
  *out += StrCat(s.bytes);
  *out += "}}";
}

void AppendJsonString(std::string* out, const std::string& v) {
  *out += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
  *out += '"';
}

}  // namespace

std::string RenderChromeTrace(
    const std::vector<TaskSpan>& spans,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TaskSpan& s : spans) {
    AppendEvent(&out, &first, s, "insert", s.insert_nanos, s.create_nanos);
    AppendEvent(&out, &first, s, "dispatch", s.create_nanos, s.queued_nanos);
    AppendEvent(&out, &first, s, "queue-wait", s.queued_nanos, s.select_nanos);
    AppendEvent(&out, &first, s, "execute", s.select_nanos, s.exec_end_nanos);
    AppendEvent(&out, &first, s, "assembly", s.exec_end_nanos,
                s.sink_begin_nanos);
    AppendEvent(&out, &first, s, "sink", s.sink_begin_nanos, s.done_nanos);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"";
  for (const auto& [key, value] : meta) {
    out += ',';
    AppendJsonString(&out, key);
    out += ':';
    AppendJsonString(&out, value);
  }
  out += "}\n";
  return out;
}

bool WriteChromeTraceFile(const TraceRing* ring, const std::string& path) {
  std::vector<TaskSpan> spans;
  std::vector<std::pair<std::string, std::string>> meta;
  if (ring != nullptr) {
    spans = ring->Drain();
    meta.emplace_back("sampleRate", StrCat(ring->sample_rate()));
    meta.emplace_back("spansRetained", StrCat(spans.size()));
    meta.emplace_back("spansTotal", StrCat(ring->total_pushed()));
  }
  const std::string json = RenderChromeTrace(spans, meta);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace saber::obs
