#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "runtime/status.h"
#include "runtime/strcat.h"

namespace saber::obs {

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  SABER_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry::Family* MetricsRegistry::GetFamilyLocked(
    std::string_view name, MetricType type, std::string_view help,
    const std::vector<int64_t>* bounds) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family f;
    f.type = type;
    f.help = std::string(help);
    if (bounds != nullptr) f.bounds = *bounds;
    it = families_.emplace(std::string(name), std::move(f)).first;
  } else {
    SABER_CHECK(it->second.type == type);  // name ↔ type is a global contract
    if (bounds != nullptr) SABER_CHECK(it->second.bounds == *bounds);
    if (it->second.help.empty() && !help.empty()) {
      it->second.help = std::string(help);
    }
  }
  return &it->second;
}

MetricsRegistry::Series* MetricsRegistry::GetSeriesLocked(Family* family,
                                                          Labels&& labels) {
  for (Series& s : family->series) {
    if (s.labels == labels) return &s;
  }
  Series s;
  s.labels = std::move(labels);
  family->series.push_back(std::move(s));
  return &family->series.back();
}

Counter* MetricsRegistry::GetCounter(std::string_view name, Labels labels,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* f = GetFamilyLocked(name, MetricType::kCounter, help, nullptr);
  Series* s = GetSeriesLocked(f, std::move(labels));
  SABER_CHECK(s->ext_counter == nullptr);  // already an external view
  if (!s->counter) s->counter = std::make_unique<Counter>();
  return s->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, Labels labels,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* f = GetFamilyLocked(name, MetricType::kGauge, help, nullptr);
  Series* s = GetSeriesLocked(f, std::move(labels));
  SABER_CHECK(s->ext_gauge == nullptr);
  if (!s->gauge) s->gauge = std::make_unique<Gauge>();
  return s->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<int64_t> bounds,
                                         Labels labels, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* f = GetFamilyLocked(name, MetricType::kHistogram, help, &bounds);
  Series* s = GetSeriesLocked(f, std::move(labels));
  SABER_CHECK(s->ext_histogram == nullptr);
  if (!s->histogram) s->histogram = std::make_unique<Histogram>(bounds);
  return s->histogram.get();
}

void MetricsRegistry::RegisterCounter(std::string_view name, Labels labels,
                                      const Counter* c, const void* owner,
                                      std::string_view help) {
  SABER_CHECK(c != nullptr && owner != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Family* f = GetFamilyLocked(name, MetricType::kCounter, help, nullptr);
  Series* s = GetSeriesLocked(f, std::move(labels));
  SABER_CHECK(!s->counter);  // owned and external views must not collide
  s->ext_counter = c;
  s->owner = owner;
}

void MetricsRegistry::RegisterGauge(std::string_view name, Labels labels,
                                    const Gauge* g, const void* owner,
                                    std::string_view help) {
  SABER_CHECK(g != nullptr && owner != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Family* f = GetFamilyLocked(name, MetricType::kGauge, help, nullptr);
  Series* s = GetSeriesLocked(f, std::move(labels));
  SABER_CHECK(!s->gauge);
  s->ext_gauge = g;
  s->owner = owner;
}

void MetricsRegistry::RegisterHistogram(std::string_view name, Labels labels,
                                        const Histogram* h, const void* owner,
                                        std::string_view help) {
  SABER_CHECK(h != nullptr && owner != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Family* f =
      GetFamilyLocked(name, MetricType::kHistogram, help, &h->bounds());
  Series* s = GetSeriesLocked(f, std::move(labels));
  SABER_CHECK(!s->histogram);
  s->ext_histogram = h;
  s->owner = owner;
}

void MetricsRegistry::Unregister(const void* owner) {
  if (owner == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, family] : families_) {
      auto& v = family.series;
      v.erase(std::remove_if(v.begin(), v.end(),
                             [owner](const Series& s) {
                               return s.owner == owner;
                             }),
              v.end());
    }
  }
  std::lock_guard<std::mutex> lock(collectors_mu_);
  collectors_.erase(std::remove_if(collectors_.begin(), collectors_.end(),
                                   [owner](const CollectorEntry& e) {
                                     return e.owner == owner;
                                   }),
                    collectors_.end());
}

void MetricsRegistry::AddCollector(std::function<void()> fn,
                                   const void* owner) {
  std::lock_guard<std::mutex> lock(collectors_mu_);
  collectors_.push_back(CollectorEntry{std::move(fn), owner});
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  {
    // Collectors may register instruments, so they run outside mu_.
    std::lock_guard<std::mutex> lock(collectors_mu_);
    for (const auto& entry : collectors_) entry.fn();
  }
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family.help;
    fs.type = family.type;
    fs.bounds = family.bounds;
    fs.series.resize(family.series.size());
    // The single pass of the consistency contract: every atomic of this
    // family is loaded exactly once, back to back, with the labels copied
    // only after the values are read.
    for (size_t i = 0; i < family.series.size(); ++i) {
      const Series& s = family.series[i];
      SeriesSnapshot& out = fs.series[i];
      switch (family.type) {
        case MetricType::kCounter:
          out.counter_value =
              s.counter ? s.counter->value() : s.ext_counter->value();
          break;
        case MetricType::kGauge:
          out.gauge_value = s.gauge ? s.gauge->value() : s.ext_gauge->value();
          break;
        case MetricType::kHistogram: {
          const Histogram* h =
              s.histogram ? s.histogram.get() : s.ext_histogram;
          const size_t n = family.bounds.size() + 1;
          out.bucket_counts.resize(n);
          for (size_t b = 0; b < n; ++b) {
            out.bucket_counts[b] = h->bucket_count(b);
          }
          out.sum = h->sum();
          for (int64_t c : out.bucket_counts) out.count += c;
          break;
        }
      }
    }
    for (size_t i = 0; i < family.series.size(); ++i) {
      fs.series[i].labels = family.series[i].labels;
    }
    snap.families.push_back(std::move(fs));
  }
  return snap;
}

namespace {

/// Label-value escaping per the text format: backslash, double quote, LF.
void AppendEscaped(std::string* out, const std::string& v) {
  for (char c : v) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '"') {
      *out += "\\\"";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

void AppendLabels(std::string* out, const Labels& labels,
                  const std::string* extra_key = nullptr,
                  const std::string* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += k;
    *out += "=\"";
    AppendEscaped(out, v);
    *out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) *out += ',';
    *out += *extra_key;
    *out += "=\"";
    AppendEscaped(out, *extra_value);
    *out += '"';
  }
  *out += '}';
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  static const std::string kLe = "le";
  static const std::string kInf = "+Inf";
  for (const FamilySnapshot& f : snapshot.families) {
    if (f.series.empty()) continue;
    if (!f.help.empty()) {
      out += "# HELP ";
      out += f.name;
      out += ' ';
      // HELP text escaping: backslash and LF only (no quotes involved).
      for (char c : f.help) {
        if (c == '\\') {
          out += "\\\\";
        } else if (c == '\n') {
          out += "\\n";
        } else {
          out += c;
        }
      }
      out += '\n';
    }
    out += "# TYPE ";
    out += f.name;
    out += ' ';
    out += TypeName(f.type);
    out += '\n';
    for (const SeriesSnapshot& s : f.series) {
      switch (f.type) {
        case MetricType::kCounter:
          out += f.name;
          AppendLabels(&out, s.labels);
          out += ' ';
          out += StrCat(s.counter_value);
          out += '\n';
          break;
        case MetricType::kGauge:
          out += f.name;
          AppendLabels(&out, s.labels);
          out += ' ';
          out += FormatDouble(s.gauge_value);
          out += '\n';
          break;
        case MetricType::kHistogram: {
          int64_t cumulative = 0;
          for (size_t b = 0; b < s.bucket_counts.size(); ++b) {
            cumulative += s.bucket_counts[b];
            const std::string le = b < f.bounds.size()
                                       ? StrCat(f.bounds[b])
                                       : kInf;
            out += f.name;
            out += "_bucket";
            AppendLabels(&out, s.labels, &kLe, &le);
            out += ' ';
            out += StrCat(cumulative);
            out += '\n';
          }
          out += f.name;
          out += "_sum";
          AppendLabels(&out, s.labels);
          out += ' ';
          out += StrCat(s.sum);
          out += '\n';
          out += f.name;
          out += "_count";
          AppendLabels(&out, s.labels);
          out += ' ';
          out += StrCat(cumulative);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

namespace {

/// Percentile estimate from fixed buckets: the upper bound of the bucket
/// that crosses the rank (+Inf reports the last finite bound).
int64_t BucketPercentile(const FamilySnapshot& f, const SeriesSnapshot& s,
                         double q) {
  if (s.count == 0) return 0;
  const int64_t rank = static_cast<int64_t>(q * static_cast<double>(s.count));
  int64_t seen = 0;
  for (size_t b = 0; b < s.bucket_counts.size(); ++b) {
    seen += s.bucket_counts[b];
    if (seen > rank) {
      return b < f.bounds.size() ? f.bounds[b] : f.bounds.back();
    }
  }
  return f.bounds.empty() ? 0 : f.bounds.back();
}

}  // namespace

std::string FormatMetricsSummary(const MetricsSnapshot& snapshot,
                                 std::string_view line_prefix) {
  std::string out;
  for (const FamilySnapshot& f : snapshot.families) {
    bool any_nonzero = false;
    for (const SeriesSnapshot& s : f.series) {
      if ((f.type == MetricType::kCounter && s.counter_value != 0) ||
          (f.type == MetricType::kGauge && s.gauge_value != 0.0) ||
          (f.type == MetricType::kHistogram && s.count != 0)) {
        any_nonzero = true;
        break;
      }
    }
    if (!any_nonzero) continue;
    for (const SeriesSnapshot& s : f.series) {
      out += line_prefix;
      out += f.name;
      AppendLabels(&out, s.labels);
      out += ' ';
      switch (f.type) {
        case MetricType::kCounter:
          out += StrCat(s.counter_value);
          break;
        case MetricType::kGauge:
          out += FormatDouble(s.gauge_value);
          break;
        case MetricType::kHistogram:
          out += StrCat("count=", s.count, " p50<=",
                        BucketPercentile(f, s, 0.50), " p99<=",
                        BucketPercentile(f, s, 0.99));
          break;
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace saber::obs
