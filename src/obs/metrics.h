#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file metrics.h
/// The unified metrics registry: one home for every operational number the
/// engine, ingestion stage, network front end, task-size controller and
/// fault registry used to keep in ad-hoc per-subsystem structs.
///
/// Instruments — counters, gauges, fixed-bucket histograms — are registered
/// by (name, labels) and live for the registry's lifetime; registration
/// returns a stable pointer, so the hot path never touches the registry
/// again. A counter increment compiles to a single relaxed atomic add on the
/// instrument's own cache line slot — there is no lock, no hash lookup and
/// no branch on the per-event path.
///
/// **Snapshot consistency model.** `Snapshot()` replaces the old pattern of
/// reading five stats structs at five different instants (the `--stats-secs`
/// double-counting hazard): collectors run first (they fold lazily-owned
/// values — queue depth, limiter waits, fault-point hits — into registry
/// instruments), then every family is read in one pass under the
/// registration mutex. Within a family, all series are read consecutively
/// with no allocation or formatting between the reads, and each underlying
/// atomic is loaded exactly once per snapshot — so two series of the same
/// family can disagree only by the handful of increments that land inside
/// that tight loop, never by the milliseconds a formatter used to take
/// between struct reads. Counters are monotone (relaxed loads are safe), and
/// a given series is monotone across successive snapshots. The mutex blocks
/// only registration and other snapshots, never increments.
///
/// Ownership comes in two flavours:
///  - *Registry-owned* instruments (GetCounter & friends): live for the
///    registry's lifetime, get-or-create by (name, labels).
///  - *Externally-owned* instruments (RegisterCounter & friends): the
///    subsystem keeps the Counter/Gauge/Histogram as a plain value member —
///    its hot path and its per-component accessors read the very storage the
///    exposition reads, no offset bookkeeping — and the registry holds a
///    view. The owner MUST call Unregister(owner) before the instrument
///    dies; a series whose (name, labels) is re-registered (a recycled query
///    slot, a reconnected ingress) is repointed at the new instrument, which
///    Prometheus reads as an ordinary counter reset.
///
/// The engine owns one registry (or borrows one via `EngineOptions::metrics`)
/// and every attached subsystem — ingress fronts, the network server, the
/// task-size controllers — registers on it, so a single `Snapshot()` covers
/// the whole process tree of one engine.

namespace saber::obs {

/// Sorted-insensitive label set; kept in registration order for exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter. Increment is one relaxed fetch_add.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Collector-only: overwrite with a value maintained elsewhere (e.g. a
  /// rate limiter's internal wait count folded in at snapshot time). The
  /// source must be monotone; hot paths use Increment.
  void StoreForCollector(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time value (queue depth, live φ, armed flags).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; one implicit +Inf bucket catches the rest. Record is two relaxed
/// adds (bucket + sum); the count is derived from the buckets at snapshot
/// time so it can never disagree with their total.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t value) {
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  int64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t count() const;

 private:
  const std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> sum_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One series as read by Snapshot().
struct SeriesSnapshot {
  Labels labels;
  int64_t counter_value = 0;               // kCounter
  double gauge_value = 0.0;                // kGauge
  std::vector<int64_t> bucket_counts;      // kHistogram, non-cumulative
  int64_t sum = 0;                         // kHistogram
  int64_t count = 0;                       // kHistogram
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<int64_t> bounds;  // histogram bucket upper bounds
  std::vector<SeriesSnapshot> series;
};

/// The DumpMetrics result: every family, name-sorted, series in
/// registration order. See the file comment for the consistency model.
struct MetricsSnapshot {
  std::vector<FamilySnapshot> families;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. The same (name, labels) always returns the same
  /// instrument pointer (stable for the registry's lifetime); re-registering
  /// a name with a different metric type (or different histogram bounds)
  /// aborts — metric names are a global contract, not per-caller state.
  /// Counter names end in `_total` by convention (the exposition linter
  /// enforces it).
  Counter* GetCounter(std::string_view name, Labels labels = {},
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view name, Labels labels = {},
                  std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::vector<int64_t> bounds,
                          Labels labels = {}, std::string_view help = "");

  /// Registers a view over an instrument owned by `owner` (a query state, an
  /// ingress shard, the network server). Same name↔type contract as the
  /// Get* family. Re-registering an existing (name, labels) repoints the
  /// series at the new instrument (slot-recycling ⇒ counter reset on the
  /// wire). `owner` must be non-null and must call Unregister(owner) before
  /// the instrument is destroyed.
  void RegisterCounter(std::string_view name, Labels labels, const Counter* c,
                       const void* owner, std::string_view help = "");
  void RegisterGauge(std::string_view name, Labels labels, const Gauge* g,
                     const void* owner, std::string_view help = "");
  void RegisterHistogram(std::string_view name, Labels labels,
                         const Histogram* h, const void* owner,
                         std::string_view help = "");

  /// Drops every external series and every collector registered with this
  /// owner tag. Registry-owned instruments are never dropped (their series
  /// stay monotone for the registry's lifetime).
  void Unregister(const void* owner);

  /// Registers a snapshot-time collector: runs (serialized, in registration
  /// order) at the start of every Snapshot, before the families are read.
  /// Collectors fold externally-maintained values into registry instruments
  /// (Gauge::Set / Counter::StoreForCollector); they may also register new
  /// instruments. Pass the same `owner` used for external instruments to
  /// have Unregister remove the collector too.
  ///
  /// Lock contract: collectors execute while the registry holds its
  /// collector lock. A collector must therefore never acquire a lock that
  /// any thread holds while calling into this registry (Register*,
  /// Unregister, AddCollector, Get*) — that is an ABBA deadlock against a
  /// concurrent Snapshot. Subsystems that register series under their own
  /// admission/teardown locks (the engine's query registry, an ingress
  /// front) must feed their collectors from lock-free views instead.
  void AddCollector(std::function<void()> fn, const void* owner = nullptr);

  /// The DumpMetrics API (see the consistency model in the file comment).
  MetricsSnapshot Snapshot() const;

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    // External view (exactly one of owned/external is set per series).
    const Counter* ext_counter = nullptr;
    const Gauge* ext_gauge = nullptr;
    const Histogram* ext_histogram = nullptr;
    const void* owner = nullptr;  // Unregister key for external series
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<int64_t> bounds;
    std::vector<Series> series;  // registration order; small, linear scans
  };
  struct CollectorEntry {
    std::function<void()> fn;
    const void* owner = nullptr;
  };

  Family* GetFamilyLocked(std::string_view name, MetricType type,
                          std::string_view help,
                          const std::vector<int64_t>* bounds);
  Series* GetSeriesLocked(Family* family, Labels&& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
  mutable std::mutex collectors_mu_;
  std::vector<CollectorEntry> collectors_;
};

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` per family, `_bucket{le=...}`/`_sum`/`_count`
/// expansion for histograms, label-value escaping per the spec.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// Human-readable one-line-per-series formatter shared by the saber_server
/// `--stats-secs` ticker / shutdown print and the saber_cli run summary —
/// a *view* over the same registry the exposition endpoint serves, not a
/// second bookkeeping path. Zero-valued series are elided unless the family
/// carries a non-zero sibling, so steady-state output stays short while
/// recovery counters (retries, reconnects, watchdog trips) become visible
/// the moment they fire. Histograms render as count/p50/p99 estimated from
/// the bucket bounds.
std::string FormatMetricsSummary(const MetricsSnapshot& snapshot,
                                 std::string_view line_prefix = "");

}  // namespace saber::obs
