#pragma once

#include <memory>
#include <vector>

#include "core/query.h"
#include "runtime/byte_buffer.h"

/// \file microbatch_engine.h
/// A discretised-stream ("D-Stream") engine in the style of Spark
/// Streaming [56], used as the comparison baseline of Figs. 1 and 9. Its
/// defining property — the one SABER's hybrid model removes — is that the
/// *physical* batch boundary is coupled to the *logical* window slide
/// (§2.3): the micro-batch interval equals the window slide, windows are
/// unions of whole batches, and each batch is processed as one
/// bulk-synchronous stage:
///
///   1. a fixed per-batch scheduling/launch overhead (driver -> executors),
///   2. data-parallel partial aggregation over batch partitions,
///   3. a barrier, then a merge of the last (size/slide) batch aggregates to
///      produce the window result.
///
/// As the slide shrinks, batches shrink with it, the fixed per-batch cost is
/// amortised over less data, and throughput collapses — Fig. 1.

namespace saber {

struct MicroBatchOptions {
  int num_workers = 4;
  /// Fixed per-micro-batch cost (task scheduling, stage launch). Spark-era
  /// drivers spent low milliseconds per batch; 2 ms is charitable.
  int64_t scheduling_overhead_nanos = 2'000'000;
  /// Number of partitions each batch is split into.
  int num_partitions = 8;
};

struct MicroBatchReport {
  int64_t tuples_processed = 0;
  int64_t bytes_processed = 0;
  int64_t batches = 0;
  int64_t windows_emitted = 0;
  double elapsed_seconds = 0;
  double tuples_per_second() const {
    return elapsed_seconds > 0 ? tuples_processed / elapsed_seconds : 0;
  }
  double bytes_per_second() const {
    return elapsed_seconds > 0 ? bytes_processed / elapsed_seconds : 0;
  }
};

/// Executes a (possibly grouped) windowed aggregation query over a
/// serialized stream, micro-batch by micro-batch. The window must be
/// time-based; the batch interval is clamped to the slide (the coupling
/// under test). Queries without aggregation are run as per-batch map stages.
class MicroBatchEngine {
 public:
  explicit MicroBatchEngine(MicroBatchOptions options = {});
  ~MicroBatchEngine();

  MicroBatchReport Run(const QueryDef& query, const std::vector<uint8_t>& stream);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace saber
