#pragma once

#include <memory>
#include <vector>

#include "core/query.h"

/// \file global_lock_engine.h
/// A multi-threaded CEP-style engine in the spirit of Esper [2], the Fig. 7
/// comparison baseline. Statements are evaluated per event under a statement
/// lock: producer threads race to acquire the lock, push one tuple through
/// the operator chain, update shared window state, and emit closed windows.
/// The paper attributes Esper's two-orders-of-magnitude deficit to exactly
/// this synchronisation overhead plus the absence of batching — both
/// reproduced here (per-tuple locking, per-tuple virtual expression
/// dispatch, no data parallelism within a statement).

namespace saber {

struct GlobalLockReport {
  int64_t tuples_processed = 0;
  int64_t bytes_processed = 0;
  int64_t rows_emitted = 0;
  double elapsed_seconds = 0;
  double tuples_per_second() const {
    return elapsed_seconds > 0 ? tuples_processed / elapsed_seconds : 0;
  }
  double bytes_per_second() const {
    return elapsed_seconds > 0 ? bytes_processed / elapsed_seconds : 0;
  }
};

/// Evaluates a stateless or aggregation query over a stream using
/// `num_threads` producer threads contending on the statement lock.
class GlobalLockEngine {
 public:
  explicit GlobalLockEngine(int num_threads = 8) : num_threads_(num_threads) {}

  GlobalLockReport Run(const QueryDef& query, const std::vector<uint8_t>& stream);

 private:
  int num_threads_;
};

}  // namespace saber
