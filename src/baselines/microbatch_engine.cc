#include "baselines/microbatch_engine.h"

#include <functional>
#include <thread>

#include "relational/hash_table.h"
#include "runtime/blocking_queue.h"
#include "runtime/clock.h"

namespace saber {

struct MicroBatchEngine::Impl {
  explicit Impl(MicroBatchOptions o) : options(o), work(0), done(0) {
    for (int i = 0; i < options.num_workers; ++i) {
      pool.emplace_back([this] { WorkerLoop(); });
    }
  }
  ~Impl() {
    work.Close();
    for (auto& t : pool) t.join();
  }

  struct Partition {
    const std::function<void(int)>* fn;
    int index;
  };

  void WorkerLoop() {
    for (;;) {
      auto p = work.Pop();
      if (!p.has_value()) return;
      (*p->fn)(p->index);
      done.Push(true);
    }
  }

  /// Bulk-synchronous stage: run fn(0..n) on the pool, barrier.
  void RunStage(int n, const std::function<void(int)>& fn) {
    for (int i = 0; i < n; ++i) work.Push(Partition{&fn, i});
    for (int i = 0; i < n; ++i) done.Pop();
  }

  MicroBatchOptions options;
  std::vector<std::thread> pool;
  BlockingQueue<Partition> work;
  BlockingQueue<bool> done;
};

MicroBatchEngine::MicroBatchEngine(MicroBatchOptions options)
    : impl_(std::make_unique<Impl>(options)) {}
MicroBatchEngine::~MicroBatchEngine() = default;

MicroBatchReport MicroBatchEngine::Run(const QueryDef& q,
                                       const std::vector<uint8_t>& stream) {
  // Aligned time-based windows only: the micro-batch boundaries are slide
  // multiples, which data-driven session windows do not have.
  SABER_CHECK(q.window[0].time_based() && !q.window[0].session());
  const Schema& schema = q.input_schema[0];
  const size_t tsz = schema.tuple_size();
  const size_t n = stream.size() / tsz;
  const int64_t slide = q.window[0].slide;
  const int64_t size = q.window[0].size;
  const int64_t batches_per_window = (size + slide - 1) / slide;
  const size_t na = std::max<size_t>(q.aggregates.size(), 1);
  const size_t key_size = q.grouped() ? AlignUp(q.group_key_size(), 8) : 8;

  MicroBatchReport report;
  Stopwatch wall;

  // Per-batch aggregate tables retained for window merges (ring of the last
  // size/slide batch results — the D-Stream "windowed reduce").
  std::vector<std::unique_ptr<GroupHashTable>> batch_aggs;

  size_t pos = 0;  // tuple index
  int64_t batch_id = 0;
  while (pos < n) {
    // Micro-batch = event-time interval [batch_id*slide, (batch_id+1)*slide).
    const int64_t hi_ts = (batch_id + 1) * slide;
    size_t end = pos;
    while (end < n) {
      int64_t ts;
      std::memcpy(&ts, stream.data() + end * tsz, sizeof(ts));
      if (ts >= hi_ts) break;
      ++end;
    }

    // Fixed driver overhead per micro-batch — the cost that coupling the
    // batch to the slide forces you to pay per *slide*, not per byte.
    WaitUntilNanos(NowNanos() + impl_->options.scheduling_overhead_nanos);

    // Stage 1: data-parallel partial aggregation over partitions.
    const int np = impl_->options.num_partitions;
    std::vector<std::unique_ptr<GroupHashTable>> partials(np);
    const size_t batch_n = end - pos;
    const size_t per = (batch_n + np - 1) / np;
    std::function<void(int)> stage = [&](int part) {
      const size_t lo = pos + part * per;
      const size_t hi = std::min(end, lo + per);
      if (lo >= hi) return;
      auto table = std::make_unique<GroupHashTable>(key_size, na, 256);
      uint8_t key[kMaxGroupKeyBytes] = {0};
      for (size_t i = lo; i < hi; ++i) {
        TupleRef t(stream.data() + i * tsz, &schema);
        if (q.where != nullptr && !q.where->EvalBool(t, nullptr)) continue;
        for (size_t k = 0; k < q.group_by.size(); ++k) {
          const int64_t kv = q.group_by[k]->EvalInt64(t, nullptr);
          std::memcpy(key + k * 8, &kv, sizeof(kv));
        }
        if (table->NeedsGrow()) table->Grow();
        AggState* aggs = table->Upsert(key, static_cast<int32_t>(i), t.timestamp());
        if (aggs == nullptr) {
          table->Grow();
          aggs = table->Upsert(key, static_cast<int32_t>(i), t.timestamp());
        }
        for (size_t a = 0; a < q.aggregates.size(); ++a) {
          const double v = q.aggregates[a].input != nullptr
                               ? q.aggregates[a].input->EvalDouble(t, nullptr)
                               : 0.0;
          AggAdd(&aggs[a], v);
        }
      }
      partials[part] = std::move(table);
    };
    impl_->RunStage(np, stage);

    // Barrier, then reduce partials into the batch aggregate.
    auto batch_table = std::make_unique<GroupHashTable>(key_size, na, 256);
    ByteBuffer serialized;
    for (auto& p : partials) {
      if (p == nullptr) continue;
      serialized.Clear();
      p->SerializeTo(&serialized);
      batch_table->MergeSerialized(serialized.data(), serialized.size());
    }
    batch_aggs.push_back(std::move(batch_table));
    if (static_cast<int64_t>(batch_aggs.size()) > batches_per_window) {
      batch_aggs.erase(batch_aggs.begin());
    }

    // Window result: re-merge the last size/slide batch aggregates (the
    // coupling means overlapping windows recompute shared batches).
    if (static_cast<int64_t>(batch_aggs.size()) == batches_per_window) {
      GroupHashTable window_table(key_size, na, 256);
      ByteBuffer tmp;
      for (auto& b : batch_aggs) {
        tmp.Clear();
        b->SerializeTo(&tmp);
        window_table.MergeSerialized(tmp.data(), tmp.size());
      }
      report.windows_emitted += static_cast<int64_t>(window_table.size());
    }

    report.tuples_processed += static_cast<int64_t>(batch_n);
    report.bytes_processed += static_cast<int64_t>(batch_n * tsz);
    ++report.batches;
    pos = end;
    ++batch_id;
    // Skip empty event-time intervals without paying scheduling cost
    // (idealised: a real driver would tick them too).
    if (end < n) {
      int64_t ts;
      std::memcpy(&ts, stream.data() + end * tsz, sizeof(ts));
      batch_id = std::max(batch_id, ts / slide);
    }
  }

  report.elapsed_seconds = wall.ElapsedSeconds();
  return report;
}

}  // namespace saber
