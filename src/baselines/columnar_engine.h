#pragma once

#include <cstdint>
#include <vector>

#include "core/query.h"

/// \file columnar_engine.h
/// A miniature in-memory column store in the style of MonetDB [33], used for
/// the §6.2 one-off θ-join comparison. It reproduces the three behaviours
/// the paper reports:
///
///  - partitioned parallel θ-join over two tables (comparable to SABER's
///    tumbling-window emulation of the join),
///  - `select *` pays a tuple-reconstruction step after the join — the
///    column-store tax the paper measured at ~40% of runtime, making
///    MonetDB ~2x slower than SABER for wide outputs,
///  - an equi-join runs as a hash join, ~2.7x faster than the θ path.

namespace saber {

/// Column-major table: column 0 is the int64 timestamp; remaining columns
/// are widened to double for simplicity of the comparison.
class ColumnTable {
 public:
  ColumnTable(const Schema& schema, const std::vector<uint8_t>& rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return cols_.size(); }
  const std::vector<double>& col(size_t i) const { return cols_[i]; }

 private:
  size_t num_rows_;
  std::vector<std::vector<double>> cols_;
};

struct ColumnarJoinReport {
  int64_t output_pairs = 0;
  double join_seconds = 0;           // partitioned join evaluation
  double reconstruction_seconds = 0; // stitching output tuples (select *)
  double total_seconds() const { return join_seconds + reconstruction_seconds; }
};

class ColumnarEngine {
 public:
  explicit ColumnarEngine(int num_threads = 8) : num_threads_(num_threads) {}

  /// Partitioned parallel θ-join on predicate left.col(lc) OP right.col(rc)
  /// (kLt/kEq/kGt...). If `reconstruct_all_columns`, materializes all output
  /// columns row-wise afterwards (the `select *` case).
  ColumnarJoinReport ThetaJoin(const ColumnTable& left, const ColumnTable& right,
                               size_t lc, size_t rc, CompareOp op,
                               bool reconstruct_all_columns);

  /// Hash equi-join on left.col(lc) == right.col(rc).
  ColumnarJoinReport HashJoin(const ColumnTable& left, const ColumnTable& right,
                              size_t lc, size_t rc,
                              bool reconstruct_all_columns);

 private:
  int num_threads_;
};

}  // namespace saber
