#include "baselines/global_lock_engine.h"

#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "relational/hash_table.h"
#include "window/window_math.h"
#include "runtime/clock.h"

namespace saber {

namespace {

/// Shared per-statement window state: the sliding window's tuple buffer and
/// per-group running aggregates, all guarded by the statement lock.
struct StatementState {
  std::mutex lock;
  // Sliding window content (timestamps + aggregate inputs + keys), kept as
  // a deque of decoded entries — the allocation-happy style the paper's
  // §5.1 warns about.
  struct Entry {
    int64_t ts;
    std::vector<int64_t> keys;
    std::vector<double> values;
  };
  std::deque<Entry> window;
  int64_t next_emit = 0;  // next window index to emit
  int64_t rows_emitted = 0;
};

}  // namespace

GlobalLockReport GlobalLockEngine::Run(const QueryDef& q,
                                       const std::vector<uint8_t>& stream) {
  const Schema& schema = q.input_schema[0];
  const size_t tsz = schema.tuple_size();
  const size_t n = stream.size() / tsz;
  const WindowDefinition& w = q.window[0];
  // Aggregations need aligned time-based windows here (the Fig. 7
  // application queries all are); count-based window state would need
  // global indices, and data-driven session windows have no grid to key
  // the per-window state map by.
  SABER_CHECK(q.is_stateless() || (w.time_based() && !w.session()));
  StatementState state;
  GlobalLockReport report;
  Stopwatch wall;

  // Per-event processing under the statement lock.
  auto process_tuple = [&](const uint8_t* bytes) {
    TupleRef t(bytes, &schema);
    std::lock_guard<std::mutex> guard(state.lock);
    if (q.where != nullptr && !q.where->EvalBool(t, nullptr)) {
      if (q.is_stateless()) return;
    }
    if (q.is_stateless()) {
      ++state.rows_emitted;  // projection output (discarded)
      return;
    }
    const int64_t ts = t.timestamp();
    StatementState::Entry e;
    e.ts = ts;
    bool passes = q.where == nullptr || q.where->EvalBool(t, nullptr);
    if (passes) {
      for (const auto& k : q.group_by) e.keys.push_back(k->EvalInt64(t, nullptr));
      for (const auto& a : q.aggregates) {
        e.values.push_back(a.input != nullptr ? a.input->EvalDouble(t, nullptr)
                                              : 0.0);
      }
      state.window.push_back(std::move(e));
    }
    // Emit every window that closed strictly before the current watermark,
    // recomputing the aggregate over the window content (no incremental
    // processing — per-statement evaluation like a naive CEP engine).
    const int64_t watermark = w.time_based() ? ts : static_cast<int64_t>(n);
    while (WindowEnd(w, state.next_emit) <= watermark) {
      const int64_t lo = WindowStart(w, state.next_emit);
      const int64_t hi = WindowEnd(w, state.next_emit);
      std::map<std::vector<int64_t>, std::vector<AggState>> groups;
      for (const auto& entry : state.window) {
        if (entry.ts < lo || entry.ts >= hi) continue;
        auto& aggs = groups[entry.keys];
        if (aggs.empty()) {
          aggs.resize(std::max<size_t>(q.aggregates.size(), 1));
          for (auto& s : aggs) AggInit(&s);
        }
        for (size_t a = 0; a < entry.values.size(); ++a) {
          AggAdd(&aggs[a], entry.values[a]);
        }
      }
      state.rows_emitted += static_cast<int64_t>(groups.size());
      ++state.next_emit;
      // Evict expired tuples.
      const int64_t keep_from = WindowStart(w, state.next_emit);
      while (!state.window.empty() && state.window.front().ts < keep_from) {
        state.window.pop_front();
      }
    }
  };

  // Producer threads contend on the statement lock, one event at a time.
  std::vector<std::thread> producers;
  std::atomic<size_t> cursor{0};
  const int nt = std::max(1, num_threads_);
  for (int i = 0; i < nt; ++i) {
    producers.emplace_back([&] {
      for (;;) {
        const size_t idx = cursor.fetch_add(1);
        if (idx >= n) return;
        process_tuple(stream.data() + idx * tsz);
      }
    });
  }
  for (auto& p : producers) p.join();

  report.tuples_processed = static_cast<int64_t>(n);
  report.bytes_processed = static_cast<int64_t>(n * tsz);
  report.rows_emitted = state.rows_emitted;
  report.elapsed_seconds = wall.ElapsedSeconds();
  return report;
}

}  // namespace saber
