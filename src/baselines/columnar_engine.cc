#include "baselines/columnar_engine.h"

#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "relational/tuple_ref.h"
#include "runtime/clock.h"

namespace saber {

ColumnTable::ColumnTable(const Schema& schema, const std::vector<uint8_t>& rows) {
  const size_t tsz = schema.tuple_size();
  num_rows_ = rows.size() / tsz;
  cols_.resize(schema.num_fields());
  for (auto& c : cols_) c.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    TupleRef t(rows.data() + i * tsz, &schema);
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      cols_[f].push_back(t.GetAsDouble(f));
    }
  }
}

namespace {

bool Apply(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kLt: return a < b;
    case CompareOp::kLe: return a <= b;
    case CompareOp::kEq: return a == b;
    case CompareOp::kNe: return a != b;
    case CompareOp::kGe: return a >= b;
    case CompareOp::kGt: return a > b;
  }
  return false;
}

/// Row-id pair lists produced per partition pair.
struct Matches {
  std::vector<uint32_t> left;
  std::vector<uint32_t> right;
};

double ReconstructOutput(const ColumnTable& l, const ColumnTable& r,
                         const std::vector<Matches>& parts) {
  // Stitch full output tuples (row-major) from the column pieces — the
  // column store's `select *` tax.
  Stopwatch sw;
  const size_t w = l.num_cols() + r.num_cols();
  std::vector<double> row(w);
  volatile double sink = 0;  // defeat dead-code elimination
  for (const Matches& m : parts) {
    for (size_t i = 0; i < m.left.size(); ++i) {
      size_t o = 0;
      for (size_t c = 0; c < l.num_cols(); ++c) row[o++] = l.col(c)[m.left[i]];
      for (size_t c = 0; c < r.num_cols(); ++c) row[o++] = r.col(c)[m.right[i]];
      sink = sink + row[0] + row[w - 1];
    }
  }
  (void)sink;
  return sw.ElapsedSeconds();
}

}  // namespace

ColumnarJoinReport ColumnarEngine::ThetaJoin(const ColumnTable& left,
                                             const ColumnTable& right, size_t lc,
                                             size_t rc, CompareOp op,
                                             bool reconstruct_all_columns) {
  ColumnarJoinReport report;
  Stopwatch sw;
  // Partition the left table; each thread joins its partitions against the
  // whole right column (§6.2: "we partition the two tables and join the
  // partitions pairwise").
  const int np = std::max(1, num_threads_);
  std::vector<Matches> parts(np);
  const std::vector<double>& lv = left.col(lc);
  const std::vector<double>& rv = right.col(rc);
  const size_t per = (left.num_rows() + np - 1) / np;

  std::vector<std::thread> threads;
  for (int p = 0; p < np; ++p) {
    threads.emplace_back([&, p] {
      const size_t lo = p * per;
      const size_t hi = std::min(left.num_rows(), lo + per);
      Matches& m = parts[p];
      for (size_t i = lo; i < hi; ++i) {
        const double a = lv[i];
        for (size_t j = 0; j < right.num_rows(); ++j) {
          if (Apply(op, a, rv[j])) {
            m.left.push_back(static_cast<uint32_t>(i));
            m.right.push_back(static_cast<uint32_t>(j));
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  report.join_seconds = sw.ElapsedSeconds();
  for (const auto& m : parts) report.output_pairs += static_cast<int64_t>(m.left.size());
  if (reconstruct_all_columns) {
    report.reconstruction_seconds = ReconstructOutput(left, right, parts);
  }
  return report;
}

ColumnarJoinReport ColumnarEngine::HashJoin(const ColumnTable& left,
                                            const ColumnTable& right, size_t lc,
                                            size_t rc,
                                            bool reconstruct_all_columns) {
  ColumnarJoinReport report;
  Stopwatch sw;
  // Build on the right column.
  std::unordered_multimap<int64_t, uint32_t> build;
  build.reserve(right.num_rows());
  const std::vector<double>& rv = right.col(rc);
  for (size_t j = 0; j < right.num_rows(); ++j) {
    build.emplace(static_cast<int64_t>(rv[j]), static_cast<uint32_t>(j));
  }
  // Parallel probe with the left column.
  const int np = std::max(1, num_threads_);
  std::vector<Matches> parts(np);
  const std::vector<double>& lv = left.col(lc);
  const size_t per = (left.num_rows() + np - 1) / np;
  std::vector<std::thread> threads;
  for (int p = 0; p < np; ++p) {
    threads.emplace_back([&, p] {
      const size_t lo = p * per;
      const size_t hi = std::min(left.num_rows(), lo + per);
      Matches& m = parts[p];
      for (size_t i = lo; i < hi; ++i) {
        auto [it, end] = build.equal_range(static_cast<int64_t>(lv[i]));
        for (; it != end; ++it) {
          m.left.push_back(static_cast<uint32_t>(i));
          m.right.push_back(it->second);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  report.join_seconds = sw.ElapsedSeconds();
  for (const auto& m : parts) report.output_pairs += static_cast<int64_t>(m.left.size());
  if (reconstruct_all_columns) {
    report.reconstruction_seconds = ReconstructOutput(left, right, parts);
  }
  return report;
}

}  // namespace saber
