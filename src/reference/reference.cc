#include "reference/reference.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>

#include "relational/aggregate.h"
#include "relational/tuple_ref.h"
#include "window/window_math.h"

namespace saber {

namespace {

struct Stream {
  const Schema* schema;
  const std::vector<uint8_t>* bytes;
  size_t n;
  TupleRef tuple(size_t i) const {
    return TupleRef(bytes->data() + i * schema->tuple_size(), schema);
  }
};

void EvalRowInto(const QueryDef& q, const std::vector<ExprPtr>& exprs,
                 const TupleRef& l, const TupleRef* r, ByteBuffer* out,
                 int64_t stamp_ts, bool stamp) {
  const Schema& os = q.output_schema;
  uint8_t* row = out->AppendUninitialized(os.tuple_size());
  TupleWriter wr(row, &os);
  for (size_t f = 0; f < exprs.size(); ++f) {
    if (f == 0 && stamp) {
      wr.SetInt64(0, stamp_ts);
      continue;
    }
    const Expression& e = *exprs[f];
    switch (os.field(f).type) {
      case DataType::kInt32:
        wr.SetInt32(f, static_cast<int32_t>(e.EvalInt64(l, r)));
        break;
      case DataType::kInt64:
        wr.SetInt64(f, e.EvalInt64(l, r));
        break;
      default:
        wr.SetNumeric(f, e.EvalDouble(l, r));
        break;
    }
  }
}

ByteBuffer EvalStateless(const QueryDef& q, const Stream& in) {
  ByteBuffer out;
  for (size_t i = 0; i < in.n; ++i) {
    TupleRef t = in.tuple(i);
    if (q.where != nullptr && !q.where->EvalBool(t, nullptr)) continue;
    EvalRowInto(q, q.select, t, nullptr, &out, 0, false);
  }
  return out;
}

/// Explicit memcmp comparator: identical ordering to
/// std::less<std::vector<uint8_t>>, but avoids the libstdc++
/// lexicographical_compare_three_way path that GCC 12 misdiagnoses under
/// -Wstringop-overread at -O2.
struct KeyLess {
  bool operator()(const std::vector<uint8_t>& a,
                  const std::vector<uint8_t>& b) const {
    const size_t n = std::min(a.size(), b.size());
    const int c = n == 0 ? 0 : std::memcmp(a.data(), b.data(), n);
    return c < 0 || (c == 0 && a.size() < b.size());
  }
};

/// Session windows: sessions are maximal gap-free runs of raw tuples; a
/// session emits once the stream watermark (the last timestamp) passes its
/// last tuple by more than gap. The final session never emits — no
/// watermark can ever pass it (the engine's assembly behaves identically).
ByteBuffer EvalSessionAggregation(const QueryDef& q, const Stream& in) {
  ByteBuffer out;
  if (in.n == 0) return out;
  const WindowDefinition& w = q.window[0];
  const size_t na = q.aggregates.size();
  const size_t nk = q.group_by.size();
  const int64_t gap = w.gap();
  const int64_t watermark = in.tuple(in.n - 1).timestamp();

  auto emit_having = [&](ByteBuffer* buf) {
    if (q.having == nullptr) return;
    TupleRef row(buf->data() + buf->size() - q.output_schema.tuple_size(),
                 &q.output_schema);
    if (!q.having->EvalBool(row, nullptr)) {
      buf->Resize(buf->size() - q.output_schema.tuple_size());
    }
  };

  size_t i = 0;
  while (i < in.n) {
    // Delimit the session: [i, j) with consecutive gaps <= gap.
    size_t j = i + 1;
    int64_t last_ts = in.tuple(i).timestamp();
    while (j < in.n && SessionExtends(last_ts, in.tuple(j).timestamp(), gap)) {
      last_ts = in.tuple(j).timestamp();
      ++j;
    }
    if (!SessionClosed(last_ts, watermark, gap)) break;  // still open

    if (nk == 0) {
      std::vector<AggState> acc(na);
      for (auto& s : acc) AggInit(&s);
      for (size_t k = i; k < j; ++k) {
        TupleRef t = in.tuple(k);
        if (q.where != nullptr && !q.where->EvalBool(t, nullptr)) continue;
        for (size_t a = 0; a < na; ++a) {
          const double v = q.aggregates[a].input != nullptr
                               ? q.aggregates[a].input->EvalDouble(t, nullptr)
                               : 0.0;
          AggAdd(&acc[a], v);
        }
      }
      // A session always has raw tuples by construction: emit even when
      // every tuple was filtered, stamped with the max raw timestamp.
      uint8_t* row = out.AppendUninitialized(q.output_schema.tuple_size());
      TupleWriter wr(row, &q.output_schema);
      wr.SetInt64(0, last_ts);
      for (size_t a = 0; a < na; ++a) {
        wr.SetDouble(1 + a, AggFinalize(q.aggregates[a].fn, acc[a]));
      }
      emit_having(&out);
    } else {
      struct Group {
        std::vector<AggState> acc;
      };
      std::vector<uint8_t> key(nk * 8);
      std::map<std::vector<uint8_t>, Group, KeyLess> groups;
      int64_t window_ts = std::numeric_limits<int64_t>::min();
      for (size_t k = i; k < j; ++k) {
        TupleRef t = in.tuple(k);
        if (q.where != nullptr && !q.where->EvalBool(t, nullptr)) continue;
        for (size_t kk = 0; kk < nk; ++kk) {
          const int64_t kv = q.group_by[kk]->EvalInt64(t, nullptr);
          std::memcpy(key.data() + kk * 8, &kv, sizeof(kv));
        }
        Group& grp = groups[key];
        if (grp.acc.empty()) {
          grp.acc.resize(na);
          for (auto& s : grp.acc) AggInit(&s);
        }
        window_ts = std::max(window_ts, t.timestamp());
        for (size_t a = 0; a < na; ++a) {
          const double v = q.aggregates[a].input != nullptr
                               ? q.aggregates[a].input->EvalDouble(t, nullptr)
                               : 0.0;
          AggAdd(&grp.acc[a], v);
        }
      }
      for (const auto& [kbytes, grp] : groups) {
        uint8_t* row = out.AppendUninitialized(q.output_schema.tuple_size());
        TupleWriter wr(row, &q.output_schema);
        wr.SetInt64(0, window_ts);
        for (size_t kk = 0; kk < nk; ++kk) {
          int64_t kv;
          std::memcpy(&kv, kbytes.data() + kk * 8, sizeof(kv));
          wr.SetInt64(1 + kk, kv);
        }
        for (size_t a = 0; a < na; ++a) {
          wr.SetDouble(1 + nk + a, AggFinalize(q.aggregates[a].fn, grp.acc[a]));
        }
        emit_having(&out);
      }
    }
    i = j;
  }
  return out;
}

ByteBuffer EvalAggregation(const QueryDef& q, const Stream& in) {
  if (q.window[0].session()) return EvalSessionAggregation(q, in);
  ByteBuffer out;
  if (in.n == 0) return out;
  const WindowDefinition& w = q.window[0];
  const size_t na = q.aggregates.size();
  const size_t nk = q.group_by.size();

  // Axis coordinates of every tuple.
  std::vector<int64_t> axis(in.n);
  for (size_t i = 0; i < in.n; ++i) {
    axis[i] = w.time_based() ? in.tuple(i).timestamp() : static_cast<int64_t>(i);
  }
  // For time-based windows the axis is only complete up to the last seen
  // timestamp, exclusive (equal timestamps could in principle still arrive):
  // the engine closes windows against this watermark, and so does the model.
  const int64_t watermark = w.time_based() ? in.tuple(in.n - 1).timestamp()
                                           : static_cast<int64_t>(in.n);

  const int64_t j_lo = std::max<int64_t>(0, FloorDiv(axis[0] - w.size, w.slide) + 1);
  const int64_t j_hi = FloorDiv(watermark - w.size, w.slide);  // end <= watermark

  auto emit_having = [&](ByteBuffer* buf) {
    if (q.having == nullptr) return;
    TupleRef row(buf->data() + buf->size() - q.output_schema.tuple_size(),
                 &q.output_schema);
    if (!q.having->EvalBool(row, nullptr)) {
      buf->Resize(buf->size() - q.output_schema.tuple_size());
    }
  };

  for (int64_t j = j_lo; j <= j_hi; ++j) {
    const int64_t lo = WindowStart(w, j), hi = WindowEnd(w, j);
    bool any_raw = false;
    int64_t max_ts = 0;
    if (nk == 0) {
      std::vector<AggState> acc(na);
      for (auto& s : acc) AggInit(&s);
      for (size_t i = 0; i < in.n; ++i) {
        if (axis[i] < lo || axis[i] >= hi) continue;
        TupleRef t = in.tuple(i);
        any_raw = true;
        max_ts = std::max(max_ts, t.timestamp());
        if (q.where != nullptr && !q.where->EvalBool(t, nullptr)) continue;
        for (size_t a = 0; a < na; ++a) {
          const double v = q.aggregates[a].input != nullptr
                               ? q.aggregates[a].input->EvalDouble(t, nullptr)
                               : 0.0;
          AggAdd(&acc[a], v);
        }
      }
      if (!any_raw) continue;
      uint8_t* row = out.AppendUninitialized(q.output_schema.tuple_size());
      TupleWriter wr(row, &q.output_schema);
      wr.SetInt64(0, max_ts);
      for (size_t a = 0; a < na; ++a) {
        wr.SetDouble(1 + a, AggFinalize(q.aggregates[a].fn, acc[a]));
      }
      emit_having(&out);
      continue;
    }
    // Grouped: key = packed int64s; rows ordered by key bytes (memcmp), the
    // engine's deterministic order. Every row of a window carries the
    // window's max timestamp over *filtered* tuples (monotone across
    // windows, so chained queries see an ordered stream).
    struct Group {
      std::vector<AggState> acc;
    };
    std::vector<uint8_t> key(nk * 8);
    std::map<std::vector<uint8_t>, Group, KeyLess> groups;
    int64_t window_ts = 0;
    for (size_t i = 0; i < in.n; ++i) {
      if (axis[i] < lo || axis[i] >= hi) continue;
      TupleRef t = in.tuple(i);
      if (q.where != nullptr && !q.where->EvalBool(t, nullptr)) continue;
      for (size_t k = 0; k < nk; ++k) {
        const int64_t kv = q.group_by[k]->EvalInt64(t, nullptr);
        std::memcpy(key.data() + k * 8, &kv, sizeof(kv));
      }
      Group& grp = groups[key];
      if (grp.acc.empty()) {
        grp.acc.resize(na);
        for (auto& s : grp.acc) AggInit(&s);
      }
      window_ts = std::max(window_ts, t.timestamp());
      for (size_t a = 0; a < na; ++a) {
        const double v = q.aggregates[a].input != nullptr
                             ? q.aggregates[a].input->EvalDouble(t, nullptr)
                             : 0.0;
        AggAdd(&grp.acc[a], v);
      }
    }
    for (const auto& [kbytes, grp] : groups) {
      uint8_t* row = out.AppendUninitialized(q.output_schema.tuple_size());
      TupleWriter wr(row, &q.output_schema);
      wr.SetInt64(0, window_ts);
      for (size_t k = 0; k < nk; ++k) {
        int64_t kv;
        std::memcpy(&kv, kbytes.data() + k * 8, sizeof(kv));
        wr.SetInt64(1 + k, kv);
      }
      for (size_t a = 0; a < na; ++a) {
        wr.SetDouble(1 + nk + a, AggFinalize(q.aggregates[a].fn, grp.acc[a]));
      }
      emit_having(&out);
    }
  }
  return out;
}

WindowIndexRange WindowsOf(const WindowDefinition& w, int64_t x) {
  WindowIndexRange r;
  r.lo = std::max<int64_t>(0, FloorDiv(x - w.size, w.slide) + 1);
  r.hi = FloorDiv(x, w.slide);
  return r;
}

/// UDF queries (§2.4): window j pairs window j of every input; it is emitted
/// once closed on every input's watermark, in window order, iff any input
/// contributed at least one tuple. Rows are produced by the user operator
/// function, which is expected to stamp them with the window's max tuple
/// timestamp (the engine passes the same value).
ByteBuffer EvalUdf(const QueryDef& q, const Stream* streams, int n) {
  ByteBuffer out;
  int64_t ready_hi = std::numeric_limits<int64_t>::max();
  int64_t j_lo = std::numeric_limits<int64_t>::max();
  std::vector<std::vector<int64_t>> axis(n);
  for (int i = 0; i < n; ++i) {
    const WindowDefinition& w = q.window[i];
    const Stream& s = streams[i];
    axis[i].resize(s.n);
    for (size_t k = 0; k < s.n; ++k) {
      axis[i][k] =
          w.time_based() ? s.tuple(k).timestamp() : static_cast<int64_t>(k);
    }
    const int64_t watermark =
        s.n == 0 ? 0
                 : (w.time_based() ? s.tuple(s.n - 1).timestamp()
                                   : static_cast<int64_t>(s.n));
    ready_hi = std::min(ready_hi, FloorDiv(watermark - w.size, w.slide));
    if (s.n > 0) {
      j_lo = std::min(j_lo,
                      std::max<int64_t>(0, FloorDiv(axis[i][0] - w.size, w.slide) + 1));
    }
  }
  if (j_lo == std::numeric_limits<int64_t>::max()) return out;

  ByteBuffer scratch[2];
  for (int64_t j = std::max<int64_t>(0, j_lo); j <= ready_hi; ++j) {
    WindowView views[2];
    int64_t window_ts = 0;
    bool any = false;
    for (int i = 0; i < n; ++i) {
      const WindowDefinition& w = q.window[i];
      const Stream& s = streams[i];
      const int64_t lo = WindowStart(w, j), hi = WindowEnd(w, j);
      scratch[i].Clear();
      for (size_t k = 0; k < s.n; ++k) {
        if (axis[i][k] < lo || axis[i][k] >= hi) continue;
        scratch[i].Append(s.bytes->data() + k * s.schema->tuple_size(),
                          s.schema->tuple_size());
        window_ts = std::max(window_ts, s.tuple(k).timestamp());
        any = true;
      }
      views[i] = WindowView{s.schema, scratch[i].data(),
                            scratch[i].size() / s.schema->tuple_size()};
    }
    if (!any) continue;
    q.udf->OnWindow(views, n, window_ts, &out);
  }
  return out;
}

ByteBuffer EvalJoin(const QueryDef& q, const Stream& L, const Stream& R) {
  ByteBuffer out;
  const WindowDefinition& wl = q.window[0];
  const WindowDefinition& wr = q.window[1];

  size_t il = 0, ir = 0;
  while (il < L.n || ir < R.n) {
    bool take_left;
    if (il >= L.n) {
      take_left = false;
    } else if (ir >= R.n) {
      take_left = true;
    } else {
      take_left = L.tuple(il).timestamp() <= R.tuple(ir).timestamp();
    }
    if (take_left) {
      TupleRef a = L.tuple(il);
      const int64_t xa = wl.time_based() ? a.timestamp() : static_cast<int64_t>(il);
      const WindowIndexRange ja = WindowsOf(wl, xa);
      for (size_t k = 0; k < ir; ++k) {  // all R tuples arrived so far
        TupleRef b = R.tuple(k);
        const int64_t xb = wr.time_based() ? b.timestamp() : static_cast<int64_t>(k);
        const WindowIndexRange jb = WindowsOf(wr, xb);
        if (std::max(ja.lo, jb.lo) > std::min(ja.hi, jb.hi)) continue;
        if (!q.join_predicate->EvalBool(a, &b)) continue;
        EvalRowInto(q, q.join_select, a, &b, &out,
                    std::max(a.timestamp(), b.timestamp()), true);
      }
      ++il;
    } else {
      TupleRef b = R.tuple(ir);
      const int64_t xb = wr.time_based() ? b.timestamp() : static_cast<int64_t>(ir);
      const WindowIndexRange jb = WindowsOf(wr, xb);
      for (size_t k = 0; k < il; ++k) {  // all L tuples arrived so far
        TupleRef a = L.tuple(k);
        const int64_t xa = wl.time_based() ? a.timestamp() : static_cast<int64_t>(k);
        const WindowIndexRange ja = WindowsOf(wl, xa);
        if (std::max(ja.lo, jb.lo) > std::min(ja.hi, jb.hi)) continue;
        if (!q.join_predicate->EvalBool(a, &b)) continue;
        EvalRowInto(q, q.join_select, a, &b, &out,
                    std::max(a.timestamp(), b.timestamp()), true);
      }
      ++ir;
    }
  }
  return out;
}

}  // namespace

ByteBuffer ReferenceEvaluate(const QueryDef& q, const std::vector<uint8_t>& s0,
                             const std::vector<uint8_t>& s1) {
  Stream a{&q.input_schema[0], &s0, s0.size() / q.input_schema[0].tuple_size()};
  if (q.is_udf()) {
    Stream streams[2] = {a, Stream{&q.input_schema[1], &s1,
                                   q.num_inputs == 2
                                       ? s1.size() / q.input_schema[1].tuple_size()
                                       : 0}};
    return EvalUdf(q, streams, q.num_inputs);
  }
  if (q.is_join()) {
    Stream b{&q.input_schema[1], &s1,
             s1.size() / q.input_schema[1].tuple_size()};
    return EvalJoin(q, a, b);
  }
  if (q.is_aggregation()) return EvalAggregation(q, a);
  return EvalStateless(q, a);
}

std::vector<uint8_t> ReferenceReorderWithLateness(
    const std::vector<uint8_t>& in, size_t tuple_size, int64_t lateness,
    std::vector<uint8_t>* rejects) {
  const size_t n = tuple_size == 0 ? 0 : in.size() / tuple_size;
  struct Survivor {
    int64_t ts;
    size_t index;  // arrival order, for stable ties
  };
  std::vector<Survivor> survivors;
  survivors.reserve(n);
  int64_t max_seen = 0;
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    int64_t ts;
    std::memcpy(&ts, in.data() + i * tuple_size, sizeof(ts));
    if (any && ts < max_seen - lateness) {
      if (rejects != nullptr) {
        rejects->insert(rejects->end(), in.begin() + i * tuple_size,
                        in.begin() + (i + 1) * tuple_size);
      }
      continue;
    }
    max_seen = any ? std::max(max_seen, ts) : ts;
    any = true;
    survivors.push_back(Survivor{ts, i});
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const Survivor& a, const Survivor& b) {
                     return a.ts < b.ts;
                   });
  std::vector<uint8_t> out;
  out.reserve(survivors.size() * tuple_size);
  for (const Survivor& s : survivors) {
    out.insert(out.end(), in.begin() + s.index * tuple_size,
               in.begin() + (s.index + 1) * tuple_size);
  }
  return out;
}

}  // namespace saber
