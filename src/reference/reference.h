#pragma once

#include <vector>

#include "core/query.h"
#include "runtime/byte_buffer.h"

/// \file reference.h
/// A single-threaded, brute-force evaluator of the streaming query semantics
/// of §2.4. It makes no attempt to be fast — every window rescans the whole
/// stream — which makes it obviously correct and therefore usable as the
/// golden model in property tests: the parallel engine (any scheduler, any
/// processor mix, any task size) must produce byte-identical output.
///
/// Semantics implemented (and required of the engine):
///  - stateless queries (IStream): one output row per passing input tuple,
///    in arrival order;
///  - aggregation (RStream): window results in window-index order; a window
///    is emitted iff it received at least one raw input tuple (ungrouped) or
///    at least one filtered tuple (grouped); only windows whose end lies
///    within the covered axis range are emitted; output timestamp is the
///    maximum input timestamp in the window (per group when grouped); group
///    rows are ordered by packed key bytes;
///  - session aggregation (kSession windows): sessions are maximal runs of
///    raw tuples whose consecutive timestamp gaps are <= gap; a session is
///    emitted once the stream watermark (last timestamp) passes its last
///    tuple by more than gap — the final session of a stream never emits;
///    row timestamp is the session's max raw timestamp (ungrouped; emitted
///    even when every tuple was filtered) or max filtered timestamp
///    (grouped; skipped when no tuple passes the filter);
///  - θ-join (RStream): pairs in arrival order (merge by timestamp, left
///    stream wins ties), each pair once, when the later element arrives;
///    output timestamp is max of the pair.

namespace saber {

/// Evaluates `q` over full input streams given as serialized tuple arrays.
/// Returns the serialized output stream.
ByteBuffer ReferenceEvaluate(const QueryDef& q, const std::vector<uint8_t>& s0,
                             const std::vector<uint8_t>& s1 = {});

/// Golden model of one ingress producer's bounded-disorder contract
/// (ingest/ingress_options.h): scanning `in` in arrival order, a tuple is
/// late iff its timestamp is below max_seen - lateness; late tuples are
/// appended to `rejects` (in arrival order) if given, survivors are
/// stable-sorted by timestamp (ties keep arrival order — the reorder
/// buffer's (ts, seq) heap order). The engine fed the disordered stream
/// through a producer with allowed_lateness = lateness (and a large enough
/// reorder buffer) must see exactly the returned byte stream.
std::vector<uint8_t> ReferenceReorderWithLateness(
    const std::vector<uint8_t>& in, size_t tuple_size, int64_t lateness,
    std::vector<uint8_t>* rejects = nullptr);

}  // namespace saber
