#pragma once

#include <vector>

#include "core/query.h"
#include "runtime/byte_buffer.h"

/// \file reference.h
/// A single-threaded, brute-force evaluator of the streaming query semantics
/// of §2.4. It makes no attempt to be fast — every window rescans the whole
/// stream — which makes it obviously correct and therefore usable as the
/// golden model in property tests: the parallel engine (any scheduler, any
/// processor mix, any task size) must produce byte-identical output.
///
/// Semantics implemented (and required of the engine):
///  - stateless queries (IStream): one output row per passing input tuple,
///    in arrival order;
///  - aggregation (RStream): window results in window-index order; a window
///    is emitted iff it received at least one raw input tuple (ungrouped) or
///    at least one filtered tuple (grouped); only windows whose end lies
///    within the covered axis range are emitted; output timestamp is the
///    maximum input timestamp in the window (per group when grouped); group
///    rows are ordered by packed key bytes;
///  - θ-join (RStream): pairs in arrival order (merge by timestamp, left
///    stream wins ties), each pair once, when the later element arrives;
///    output timestamp is max of the pair.

namespace saber {

/// Evaluates `q` over full input streams given as serialized tuple arrays.
/// Returns the serialized output stream.
ByteBuffer ReferenceEvaluate(const QueryDef& q, const std::vector<uint8_t>& s0,
                             const std::vector<uint8_t>& s1 = {});

}  // namespace saber
