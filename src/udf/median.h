#pragma once

#include <memory>

#include "core/query.h"
#include "core/window_udf.h"
#include "relational/expression.h"

/// \file median.h
/// Per-window median as a UDF. §3 singles the median out as a function whose
/// fragment/assembly decomposition is non-trivial ("for other functions,
/// such as median, more elaborate decompositions must be defined [50]");
/// the generic UDF path sidesteps the decomposition by collecting the whole
/// window — fragment collection stays data-parallel, and the selection
/// happens once per window in the assembly stage.

namespace saber {

/// Emits one row [timestamp, median double] per non-empty window: the median
/// of `value` over the window's tuples (mean of the two middle elements for
/// even counts).
class MedianUdf final : public WindowUdf {
 public:
  explicit MedianUdf(ExprPtr value) : value_(std::move(value)) {}

  std::string name() const override { return "median"; }

  Schema DeriveOutputSchema(const Schema* inputs, int n) const override;

  void OnWindow(const WindowView* views, int n, int64_t window_ts,
                ByteBuffer* out) const override;

 private:
  ExprPtr value_;
};

/// Convenience: a single-input median query over `window`.
QueryDef MakeMedianQuery(std::string name, Schema input,
                         WindowDefinition window, ExprPtr value);

}  // namespace saber
