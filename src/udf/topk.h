#pragma once

#include <memory>

#include "core/query.h"
#include "core/window_udf.h"
#include "relational/expression.h"
#include "runtime/strcat.h"

/// \file topk.h
/// Per-window top-K as a UDF: the K groups with the largest aggregate weight
/// inside each window. Like the median (§3), top-K has no simple
/// fragment/assembly decomposition — the K heaviest groups of a window are
/// not derivable from the K heaviest of its fragments — so it rides the
/// generic whole-window UDF path. The motivating workload is §2.1's click
/// stream analytics ("trending" queries).

namespace saber {

/// Emits K rows [timestamp, key, weight] per non-empty window: the K groups
/// with the largest summed weight, descending; ties break on the smaller
/// key. `weight` may be null for pure counting.
class TopKUdf final : public WindowUdf {
 public:
  TopKUdf(ExprPtr key, ExprPtr weight, int k)
      : key_(std::move(key)), weight_(std::move(weight)), k_(k) {
    SABER_CHECK(k_ > 0);
  }

  std::string name() const override { return StrCat("top", k_); }

  Schema DeriveOutputSchema(const Schema* inputs, int n) const override;

  void OnWindow(const WindowView* views, int n, int64_t window_ts,
                ByteBuffer* out) const override;

 private:
  ExprPtr key_;
  ExprPtr weight_;  // null: weight 1 per tuple
  int k_;
};

/// Convenience: a single-input top-K query over `window`.
QueryDef MakeTopKQuery(std::string name, Schema input, WindowDefinition window,
                       ExprPtr key, ExprPtr weight, int k);

}  // namespace saber
