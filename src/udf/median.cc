#include "udf/median.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace saber {

Schema MedianUdf::DeriveOutputSchema(const Schema* inputs, int n) const {
  SABER_CHECK(n == 1);
  (void)inputs;
  Schema out;
  out.AddField("timestamp", DataType::kInt64);
  out.AddField("median", DataType::kDouble);
  return out;
}

void MedianUdf::OnWindow(const WindowView* views, int n, int64_t window_ts,
                         ByteBuffer* out) const {
  SABER_CHECK(n == 1);
  const WindowView& w = views[0];
  if (w.empty()) return;
  std::vector<double> values(w.num_tuples);
  for (size_t i = 0; i < w.num_tuples; ++i) {
    values[i] = value_->EvalDouble(w.tuple(i), nullptr);
  }
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double median = values[mid];
  if (values.size() % 2 == 0) {
    // Even count: mean of the two middle elements. After nth_element the
    // lower middle is the max of the first half.
    const double lower = *std::max_element(values.begin(), values.begin() + mid);
    median = (lower + median) / 2.0;
  }
  uint8_t* row = out->AppendUninitialized(16);
  std::memcpy(row, &window_ts, 8);
  std::memcpy(row + 8, &median, 8);
}

QueryDef MakeMedianQuery(std::string name, Schema input,
                         WindowDefinition window, ExprPtr value) {
  return QueryBuilder(std::move(name), std::move(input))
      .Window(window)
      .Udf(std::make_shared<MedianUdf>(std::move(value)))
      .Build();
}

}  // namespace saber
