#include "udf/topk.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace saber {

Schema TopKUdf::DeriveOutputSchema(const Schema* inputs, int n) const {
  SABER_CHECK(n == 1);
  (void)inputs;
  Schema out;
  out.AddField("timestamp", DataType::kInt64);
  out.AddField("key", DataType::kInt64);
  out.AddField("weight", DataType::kDouble);
  return out;
}

void TopKUdf::OnWindow(const WindowView* views, int n, int64_t window_ts,
                       ByteBuffer* out) const {
  SABER_CHECK(n == 1);
  const WindowView& w = views[0];
  if (w.empty()) return;

  std::unordered_map<int64_t, double> weights;
  for (size_t i = 0; i < w.num_tuples; ++i) {
    TupleRef t = w.tuple(i);
    const int64_t key = key_->EvalInt64(t, nullptr);
    weights[key] += weight_ != nullptr ? weight_->EvalDouble(t, nullptr) : 1.0;
  }

  std::vector<std::pair<int64_t, double>> order(weights.begin(), weights.end());
  const size_t k = std::min(order.size(), static_cast<size_t>(k_));
  auto heavier = [](const std::pair<int64_t, double>& a,
                    const std::pair<int64_t, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break on the smaller key
  };
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                    order.end(), heavier);

  for (size_t i = 0; i < k; ++i) {
    uint8_t* row = out->AppendUninitialized(24);
    std::memcpy(row, &window_ts, 8);
    std::memcpy(row + 8, &order[i].first, 8);
    std::memcpy(row + 16, &order[i].second, 8);
  }
}

QueryDef MakeTopKQuery(std::string name, Schema input, WindowDefinition window,
                       ExprPtr key, ExprPtr weight, int k) {
  return QueryBuilder(std::move(name), std::move(input))
      .Window(window)
      .Udf(std::make_shared<TopKUdf>(std::move(key), std::move(weight), k))
      .Build();
}

}  // namespace saber
