#include "udf/partition_join.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "runtime/align.h"

namespace saber {

namespace {

/// One verbatim field copy from an input tuple into the output row. The
/// destination offsets replicate Schema::AddField's alignment rule, so the
/// emitted bytes match DeriveOutputSchema exactly.
struct FieldCopy {
  uint8_t side;
  uint16_t src_off;
  uint16_t dst_off;
  uint8_t width;
};

struct CopyPlan {
  std::vector<FieldCopy> fields;
  size_t row_size = 0;
};

CopyPlan BuildPlan(const Schema& l, const Schema& r) {
  CopyPlan plan;
  size_t dst = 16;  // [ts int64][key int64]
  const Schema* sides[2] = {&l, &r};
  for (int side = 0; side < 2; ++side) {
    const Schema& s = *sides[side];
    for (size_t f = 1; f < s.num_fields(); ++f) {
      const size_t sz = TypeSize(s.field(f).type);
      const size_t off = AlignUp(dst, sz);
      plan.fields.push_back(FieldCopy{static_cast<uint8_t>(side),
                                      static_cast<uint16_t>(s.field(f).offset),
                                      static_cast<uint16_t>(off),
                                      static_cast<uint8_t>(sz)});
      dst = off + sz;
    }
  }
  plan.row_size = dst;
  return plan;
}

}  // namespace

Schema PartitionJoinUdf::DeriveOutputSchema(const Schema* inputs,
                                            int n) const {
  SABER_CHECK(n == 2);
  Schema out;
  out.AddField("timestamp", DataType::kInt64);
  out.AddField("key", DataType::kInt64);
  for (int side = 0; side < 2; ++side) {
    const Schema& s = inputs[side];
    const char* prefix = side == 0 ? "l_" : "r_";
    for (size_t f = 1; f < s.num_fields(); ++f) {
      out.AddField(prefix + s.field(f).name, s.field(f).type);
    }
  }
  return out;
}

void PartitionJoinUdf::OnWindow(const WindowView* views, int n,
                                int64_t window_ts, ByteBuffer* out) const {
  SABER_CHECK(n == 2);
  const WindowView& L = views[0];
  const WindowView& R = views[1];
  if (L.empty() || R.empty()) return;

  // Partition the right window: key -> tuple indices in arrival order. Key
  // expressions see their side's tuple as both the primary and the paired
  // tuple, so stray Side::kRight references stay well-defined.
  std::unordered_map<int64_t, std::vector<uint32_t>> partitions;
  partitions.reserve(R.num_tuples);
  for (size_t k = 0; k < R.num_tuples; ++k) {
    TupleRef r = R.tuple(k);
    const int64_t key = right_key_->EvalInt64(r, &r);
    partitions[key].push_back(static_cast<uint32_t>(k));
  }

  const CopyPlan plan = BuildPlan(*L.schema, *R.schema);

  // Probe with the left window in arrival order; join corresponding
  // partitions. Output rows stamp the window's max timestamp (monotone
  // across windows, so chained queries see an ordered stream).
  for (size_t i = 0; i < L.num_tuples; ++i) {
    TupleRef l = L.tuple(i);
    const int64_t key = left_key_->EvalInt64(l, &l);
    auto it = partitions.find(key);
    if (it == partitions.end()) continue;
    for (uint32_t k : it->second) {
      TupleRef r = R.tuple(k);
      if (residual_ != nullptr && !residual_->EvalBool(l, &r)) continue;
      uint8_t* row = out->AppendUninitialized(plan.row_size);
      std::memset(row, 0, plan.row_size);
      std::memcpy(row, &window_ts, 8);
      std::memcpy(row + 8, &key, 8);
      const uint8_t* src[2] = {L.tuple_bytes(i), R.tuple_bytes(k)};
      for (const FieldCopy& fc : plan.fields) {
        std::memcpy(row + fc.dst_off, src[fc.side] + fc.src_off, fc.width);
      }
    }
  }
}

QueryDef MakePartitionJoinQuery(std::string name, Schema left, Schema right,
                                WindowDefinition window, ExprPtr left_key,
                                ExprPtr right_key, ExprPtr residual) {
  auto udf = std::make_shared<PartitionJoinUdf>(
      std::move(left_key), std::move(right_key), std::move(residual));
  return QueryBuilder(std::move(name), std::move(left), std::move(right))
      .Window(window)
      .Udf(std::move(udf))
      .Build();
}

}  // namespace saber
