#pragma once

#include <memory>

#include "core/query.h"
#include "core/window_udf.h"
#include "relational/expression.h"

/// \file partition_join.h
/// The n-ary partition join of §2.4 — the paper's canonical UDF example:
/// "an n-ary partition join ... takes as input an n-tuple of windows, one
/// per input stream, and first partitions all windows based on tuple values
/// before joining the corresponding partitions of the windows. Despite its
/// similarity, a partition join cannot be realised with a standard θ-join
/// operator."
///
/// This implementation is binary (n = 2, the engine's input arity): both
/// windows are hash-partitioned on an integral key expression, and the
/// corresponding partitions are joined pairwise — O(|L| + |R| + |result|)
/// per window versus the θ-join's O(|L| · |R|) scan. An optional residual
/// predicate filters the partition pairs.

namespace saber {

class PartitionJoinUdf final : public WindowUdf {
 public:
  /// `left_key` / `right_key`: integral partition key expressions, one per
  /// side. Each is evaluated with that side's tuple as the *primary* tuple,
  /// so both use plain (left-side) column references against their own
  /// schema. `residual`: optional extra predicate over the (left, right)
  /// tuple pair — right-side columns use Side::kRight there.
  PartitionJoinUdf(ExprPtr left_key, ExprPtr right_key,
                   ExprPtr residual = nullptr)
      : left_key_(std::move(left_key)),
        right_key_(std::move(right_key)),
        residual_(std::move(residual)) {}

  std::string name() const override { return "partition_join"; }

  /// Output: [timestamp, key, l_<fields...>, r_<fields...>] — every non-ts
  /// field of both sides, prefixed by its side. All rows of a window carry
  /// the window's max tuple timestamp so the result stream stays ordered.
  Schema DeriveOutputSchema(const Schema* inputs, int n) const override;

  void OnWindow(const WindowView* views, int n, int64_t window_ts,
                ByteBuffer* out) const override;

 private:
  ExprPtr left_key_;
  ExprPtr right_key_;
  ExprPtr residual_;
};

/// Convenience: builds a ready-to-run partition-join QueryDef over two
/// streams with a common window definition.
QueryDef MakePartitionJoinQuery(std::string name, Schema left, Schema right,
                                WindowDefinition window, ExprPtr left_key,
                                ExprPtr right_key, ExprPtr residual = nullptr);

}  // namespace saber
