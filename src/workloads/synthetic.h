#pragma once

#include <cstdint>
#include <vector>

#include "core/query.h"

/// \file synthetic.h
/// The synthetic workload of §6.1 (Table 1): 32-byte tuples — a 64-bit
/// timestamp plus six 32-bit attributes drawn from a uniform distribution,
/// the first being a float and the rest integers — and the parameterized
/// query families PROJ_m, SELECT_n, AGG_f, GROUP-BY_o and JOIN_r used
/// throughout the evaluation.

namespace saber::syn {

/// {timestamp int64, a1 float, a2..a6 int32} — 32 bytes.
Schema SyntheticSchema();

struct GeneratorOptions {
  uint32_t seed = 42;
  /// Attribute value range [0, attr_range).
  int attr_range = 100;
  /// Tuples per timestamp unit (timestamps advance every `tuples_per_ts`).
  int tuples_per_ts = 64;
  int64_t start_ts = 0;
};

/// Generates n serialized tuples.
std::vector<uint8_t> Generate(size_t n, const GeneratorOptions& opts = {});

/// Producer shard `shard` of Generate(n, opts): the timestamp-groups of the
/// full stream dealt round-robin across `num_shards` shards (see
/// workloads/sharding.h), so each ingestion producer can synthesize its own
/// shard and a watermark merge of all shards reproduces Generate(n, opts)
/// byte for byte.
std::vector<uint8_t> GenerateShard(size_t n, int shard, int num_shards,
                                   const GeneratorOptions& opts = {});

/// GenerateShard with bounded, seeded timestamp disorder injected
/// (workloads::ApplyBoundedDisorder): every tuple arrives at most `jitter`
/// timestamp units after a later-stamped tuple, so an ingestion producer
/// with allowed_lateness >= jitter reorders the shard back to
/// GenerateShard(n, shard, num_shards, opts) byte for byte. jitter == 0 is
/// exactly GenerateShard. The disorder seed is derived from opts.seed and
/// the shard index so shards are jittered independently but reproducibly.
std::vector<uint8_t> GenerateDisorderedShard(size_t n, int shard,
                                             int num_shards, int64_t jitter,
                                             const GeneratorOptions& opts = {});

/// PROJ_m: projects the timestamp plus m attributes, each passed through a
/// chain of `expr_chain` arithmetic operations (§6.6 uses chains of 100).
QueryDef MakeProjection(int m, int expr_chain = 1,
                        WindowDefinition w = WindowDefinition::Count(1, 1));

/// SELECT_n: n predicates in the form p1 v p2 v ... v pn over rotating
/// attributes; each predicate matches one attribute value, so selectivity
/// stays low and evaluation cost grows with n.
QueryDef MakeSelection(int n, int attr_range = 100,
                       WindowDefinition w = WindowDefinition::Count(1, 1));

/// The Fig. 16 selection: p1 ^ (p2 v ... v pn). When p1 matches (the
/// "failure event"), all other predicates are evaluated too, making
/// high-selectivity periods expensive.
QueryDef MakeGatedSelection(int n, ExprPtr gate,
                            WindowDefinition w = WindowDefinition::Count(1, 1));

/// AGG_f over attribute a1.
QueryDef MakeAggregation(AggregateFunction f, WindowDefinition w);

/// All five aggregate functions at once (Fig. 8's AGG*).
QueryDef MakeAggregationAll(WindowDefinition w);

/// GROUP-BY_o: cnt and sum grouped into o groups (key = a4 mod o).
QueryDef MakeGroupBy(int o, WindowDefinition w);

/// JOIN_r: r predicates — (r-1) always-true comparisons followed by an
/// equality on a5 mod `match_mod` (controls selectivity). Both inputs use
/// the synthetic schema.
QueryDef MakeJoin(int r, WindowDefinition w, int match_mod = 128);

}  // namespace saber::syn
