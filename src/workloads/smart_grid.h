#pragma once

#include <cstdint>
#include <vector>

#include "core/query.h"

/// \file smart_grid.h
/// The smart-grid anomaly detection workload (SG, §6.1), standing in for the
/// DEBS 2014 Grand Challenge trace [34] (DESIGN.md): a stream of smart-meter
/// load readings identified by (house, household, plug). Houses carry
/// distinct base-load offsets so that SG3's anomaly condition (local average
/// above the global average) selects a stable, non-trivial subset.
///
/// Queries (Appendix A.2):
///   SG1: select timestamp, avg(value) from SmartGridStr [range 3600 slide 1]
///   SG2: ... avg(value) group by plug, household, house   [range 3600 slide 1]
///   SG3: join of the SG1 and SG2 outputs on aligned [range 1 slide 1]
///        windows where localAvgLoad > globalAvgLoad, then count per house.

namespace saber::sg {

/// {timestamp, value float, property, plug, household, house} — 32 bytes.
Schema SmartGridSchema();

struct GridOptions {
  uint32_t seed = 11;
  int num_houses = 40;
  int households_per_house = 4;
  int plugs_per_household = 3;
  int readings_per_second = 10000;
  /// Per-house load offset amplitude: house h has base load
  /// 50 + house_skew * (h % 5) so some houses run persistently hot.
  double house_skew = 10.0;
};

std::vector<uint8_t> GenerateReadings(size_t n, const GridOptions& opts = {});

/// SG windows are 3600 s in the paper; the generator produces seconds-scale
/// traces, so benchmarks may pass a scaled-down size.
QueryDef MakeSG1(int64_t window_size = 3600, int64_t slide = 1);
QueryDef MakeSG2(int64_t window_size = 3600, int64_t slide = 1);

/// SG3 is an operator graph: join(SG1.out, SG2.out) followed by a grouped
/// count. Returns the two chained query definitions; wire them with
/// Engine::Connect (join output -> count input).
struct SG3Queries {
  QueryDef join;   // inputs: SG1 output (global), SG2 output (local)
  QueryDef count;  // input: join output; counts outliers per house
};
SG3Queries MakeSG3(const QueryDef& sg1, const QueryDef& sg2);

}  // namespace saber::sg
