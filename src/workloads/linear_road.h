#pragma once

#include <cstdint>
#include <vector>

#include "core/query.h"

/// \file linear_road.h
/// The Linear Road Benchmark workload (LRB, §6.1) [8]: position reports of
/// vehicles on a network of toll roads. The generator (DESIGN.md) models
/// vehicles advancing along highways with congestion waves, so that LRB3's
/// HAVING avgSpeed < 40 selects congested segments.
///
/// Queries (Appendix A.3):
///   LRB1: segment projection over an unbounded window.
///   LRB2: vehicles entering a new segment — the paper uses a partition-by-
///         vehicle rows-1 window joined with a 30 s window; we express it as
///         a self-join of the segment stream (30 s window against a 1 s
///         window on vehicle equality and segment inequality), which detects
///         the same segment-entry events (substitution noted in DESIGN.md).
///   LRB3: average speed per (highway, direction, segment) over [300, 1]
///         with HAVING avgSpeed < 40.
///   LRB4: vehicle counts per segment — nested aggregation, expressed as two
///         chained queries.

namespace saber::lrb {

/// {timestamp, vehicle, speed float, highway, lane, direction, position} —
/// 32 bytes.
Schema PositionSchema();

struct RoadOptions {
  uint32_t seed = 13;
  int num_vehicles = 5000;
  int num_highways = 4;
  int num_segments = 100;       // per highway (segment = position / 5280)
  int reports_per_second = 20000;
  /// Fraction of segments congested at any time (speeds drop below 40 mph).
  double congestion_fraction = 0.2;
};

std::vector<uint8_t> GenerateReports(size_t n, const RoadOptions& opts = {});

QueryDef MakeLRB1();

/// Self-join segment-entry detection; both inputs are the position stream.
QueryDef MakeLRB2();

QueryDef MakeLRB3(int64_t window_size = 300, int64_t slide = 1);

/// LRB4 nested aggregation: inner counts per (highway, direction, segment,
/// vehicle) over [30, 1]; outer counts vehicles per (highway, direction,
/// segment). Wire inner -> outer with Engine::Connect.
struct LRB4Queries {
  QueryDef inner;
  QueryDef outer;
};
LRB4Queries MakeLRB4();

}  // namespace saber::lrb
