#include "workloads/smart_grid.h"

#include <random>

#include "relational/tuple_ref.h"

namespace saber::sg {

Schema SmartGridSchema() {
  Schema s = Schema::MakeStream({{"value", DataType::kFloat},
                                 {"property", DataType::kInt32},
                                 {"plug", DataType::kInt32},
                                 {"household", DataType::kInt32},
                                 {"house", DataType::kInt32}});
  s.PadTo(32);
  return s;
}

std::vector<uint8_t> GenerateReadings(size_t n, const GridOptions& opts) {
  Schema s = SmartGridSchema();
  std::mt19937 rng(opts.seed);
  std::normal_distribution<double> noise(0.0, 5.0);
  std::vector<uint8_t> out(n * s.tuple_size());
  const int plugs_total = opts.num_houses * opts.households_per_house *
                          opts.plugs_per_household;
  for (size_t i = 0; i < n; ++i) {
    const int64_t ts = static_cast<int64_t>(i) / opts.readings_per_second;
    const int plug_index = static_cast<int>(i) % plugs_total;
    const int house = plug_index / (opts.households_per_house *
                                    opts.plugs_per_household);
    const int household =
        (plug_index / opts.plugs_per_household) % opts.households_per_house;
    const int plug = plug_index % opts.plugs_per_household;
    const double base = 50.0 + opts.house_skew * (house % 5);
    TupleWriter w(out.data() + i * s.tuple_size(), &s);
    w.SetInt64(0, ts);
    w.SetFloat(1, static_cast<float>(std::max(0.0, base + noise(rng))));
    w.SetInt32(2, 1);  // property: load measurement
    w.SetInt32(3, plug);
    w.SetInt32(4, household);
    w.SetInt32(5, house);
  }
  return out;
}

QueryDef MakeSG1(int64_t window_size, int64_t slide) {
  Schema s = SmartGridSchema();
  QueryBuilder b("SG1", s);
  b.Window(WindowDefinition::Time(window_size, slide));
  b.Aggregate(AggregateFunction::kAvg, Col(s, "value"), "globalAvgLoad");
  return b.Build();
}

QueryDef MakeSG2(int64_t window_size, int64_t slide) {
  Schema s = SmartGridSchema();
  QueryBuilder b("SG2", s);
  b.Window(WindowDefinition::Time(window_size, slide));
  b.GroupBy({Col(s, "plug"), Col(s, "household"), Col(s, "house")},
            {"plug", "household", "house"});
  b.Aggregate(AggregateFunction::kAvg, Col(s, "value"), "localAvgLoad");
  return b.Build();
}

SG3Queries MakeSG3(const QueryDef& sg1, const QueryDef& sg2) {
  const Schema& g = sg1.output_schema;  // {timestamp, globalAvgLoad}
  const Schema& l = sg2.output_schema;  // {timestamp, plug, household, house, localAvgLoad}

  QueryBuilder join("SG3-join", g, l);
  join.Window(WindowDefinition::Time(1, 1));
  join.JoinOn(Gt(Col(l, "localAvgLoad", Side::kRight),
                 Col(g, "globalAvgLoad", Side::kLeft)));
  join.JoinSelect(Col(g, "timestamp"), "timestamp");
  join.JoinSelect(Col(l, "house", Side::kRight), "house");
  QueryDef join_def = join.Build();

  QueryBuilder count("SG3-count", join_def.output_schema);
  count.Window(WindowDefinition::Time(1, 1));
  count.GroupBy({Col(join_def.output_schema, "house")}, {"house"});
  count.Aggregate(AggregateFunction::kCount, nullptr, "outliers");
  QueryDef count_def = count.Build();

  return SG3Queries{std::move(join_def), std::move(count_def)};
}

}  // namespace saber::sg
