#include "workloads/cluster_monitoring.h"

#include <random>

#include "relational/tuple_ref.h"

namespace saber::cm {

Schema TaskEventSchema() {
  Schema s = Schema::MakeStream({{"jobId", DataType::kInt64},
                                 {"taskId", DataType::kInt64},
                                 {"machineId", DataType::kInt64},
                                 {"eventType", DataType::kInt32},
                                 {"userId", DataType::kInt32},
                                 {"category", DataType::kInt32},
                                 {"priority", DataType::kInt32},
                                 {"cpu", DataType::kFloat},
                                 {"ram", DataType::kFloat},
                                 {"disk", DataType::kFloat},
                                 {"constraints", DataType::kInt32}});
  s.PadTo(64);
  return s;
}

std::vector<uint8_t> GenerateTrace(size_t n, const TraceOptions& opts) {
  Schema s = TaskEventSchema();
  std::mt19937 rng(opts.seed);
  std::uniform_int_distribution<int64_t> job(0, opts.num_jobs - 1);
  std::uniform_int_distribution<int64_t> machine(0, opts.num_machines - 1);
  std::uniform_int_distribution<int> category(0, opts.num_categories - 1);
  std::uniform_int_distribution<int> priority(0, 11);
  std::uniform_int_distribution<int> event(0, 5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  std::vector<uint8_t> out(n * s.tuple_size());
  for (size_t i = 0; i < n; ++i) {
    const int64_t ts = static_cast<int64_t>(i) / opts.events_per_second;
    double p_fail = opts.base_failure_probability;
    for (const SurgePeriod& sp : opts.surges) {
      if (ts >= sp.start_ts && ts < sp.end_ts) p_fail = sp.failure_probability;
    }
    const int64_t j = job(rng);
    int ev = event(rng);
    if (ev == kFail) ev = kSchedule;  // failures are governed by p_fail only
    TupleWriter w(out.data() + i * s.tuple_size(), &s);
    w.SetInt64(0, ts);
    w.SetInt64(1, j);
    w.SetInt64(2, static_cast<int64_t>(i));         // taskId
    w.SetInt64(3, machine(rng));
    w.SetInt32(4, unit(rng) < p_fail ? kFail : ev);
    w.SetInt32(5, static_cast<int32_t>(j % 97));    // userId
    w.SetInt32(6, category(rng));
    w.SetInt32(7, priority(rng));
    w.SetFloat(8, static_cast<float>(unit(rng)));   // cpu request
    w.SetFloat(9, static_cast<float>(unit(rng)));   // ram
    w.SetFloat(10, static_cast<float>(unit(rng)));  // disk
    w.SetInt32(11, 0);
  }
  return out;
}

QueryDef MakeCM1() {
  Schema s = TaskEventSchema();
  QueryBuilder b("CM1", s);
  b.Window(WindowDefinition::Time(60, 1));
  b.GroupBy({Col(s, "category")}, {"category"});
  b.Aggregate(AggregateFunction::kSum, Col(s, "cpu"), "totalCpu");
  return b.Build();
}

QueryDef MakeCM2() {
  // Appendix A.1: "where eventType == 1" — scheduled tasks.
  Schema s = TaskEventSchema();
  QueryBuilder b("CM2", s);
  b.Window(WindowDefinition::Time(60, 1));
  b.Where(Eq(Col(s, "eventType"), Lit(kSchedule)));
  b.GroupBy({Col(s, "jobId")}, {"jobId"});
  b.Aggregate(AggregateFunction::kAvg, Col(s, "cpu"), "avgCpu");
  return b.Build();
}

}  // namespace saber::cm
