#include "workloads/synthetic.h"

#include <random>
#include <string>

#include "relational/tuple_ref.h"
#include "runtime/strcat.h"
#include "workloads/sharding.h"

namespace saber::syn {

Schema SyntheticSchema() {
  return Schema::MakeStream({{"a1", DataType::kFloat},
                             {"a2", DataType::kInt32},
                             {"a3", DataType::kInt32},
                             {"a4", DataType::kInt32},
                             {"a5", DataType::kInt32},
                             {"a6", DataType::kInt32}});
}

std::vector<uint8_t> Generate(size_t n, const GeneratorOptions& opts) {
  Schema s = SyntheticSchema();
  std::mt19937 rng(opts.seed);
  std::uniform_int_distribution<int> attr(0, opts.attr_range - 1);
  std::vector<uint8_t> out(n * s.tuple_size());
  for (size_t i = 0; i < n; ++i) {
    TupleWriter w(out.data() + i * s.tuple_size(), &s);
    w.SetInt64(0, opts.start_ts +
                      static_cast<int64_t>(i) / opts.tuples_per_ts);
    w.SetFloat(1, static_cast<float>(attr(rng)));
    for (size_t f = 2; f <= 6; ++f) w.SetInt32(f, attr(rng));
  }
  return out;
}

std::vector<uint8_t> GenerateShard(size_t n, int shard, int num_shards,
                                   const GeneratorOptions& opts) {
  // Generate-then-extract keeps the shard contents exactly the
  // timestamp-group partition of the single-producer stream (same RNG
  // draws), which is what the merge-equivalence property needs. O(n) per
  // shard is fine at benchmark scale; a shard-local RNG would diverge.
  // Generated streams are sorted by construction, so .value() cannot fail.
  return workloads::ExtractTimestampShard(Generate(n, opts),
                                          SyntheticSchema().tuple_size(),
                                          shard, num_shards)
      .value();
}

std::vector<uint8_t> GenerateDisorderedShard(size_t n, int shard,
                                             int num_shards, int64_t jitter,
                                             const GeneratorOptions& opts) {
  return workloads::ApplyBoundedDisorder(
      GenerateShard(n, shard, num_shards, opts),
      SyntheticSchema().tuple_size(), jitter,
      static_cast<uint64_t>(opts.seed) * 1000003u +
          static_cast<uint64_t>(shard));
}

QueryDef MakeProjection(int m, int expr_chain, WindowDefinition w) {
  Schema s = SyntheticSchema();
  QueryBuilder b(StrCat("PROJ", m), s);
  b.Window(w);
  b.Select(Col(s, "timestamp"), "timestamp");
  for (int i = 0; i < m; ++i) {
    const std::string name = StrCat("a", i % 6 + 1);
    ExprPtr e = Col(s, name);
    for (int c = 0; c < expr_chain; ++c) {
      e = Add(Mul(e, Lit(3)), Lit(1));
    }
    b.Select(std::move(e), name + "_out");
  }
  return b.Build();
}

QueryDef MakeSelection(int n, int attr_range, WindowDefinition w) {
  Schema s = SyntheticSchema();
  QueryBuilder b(StrCat("SELECT", n), s);
  b.Window(w);
  std::vector<ExprPtr> preds;
  for (int i = 0; i < n; ++i) {
    const std::string name = StrCat("a", i % 5 + 2);  // int attrs
    preds.push_back(Eq(Col(s, name), Lit(i % attr_range)));
  }
  b.Where(n == 1 ? preds[0] : Or(std::move(preds)));
  return b.Build();
}

QueryDef MakeGatedSelection(int n, ExprPtr gate, WindowDefinition w) {
  Schema s = SyntheticSchema();
  QueryBuilder b(StrCat("SELECTgated", n), s);
  b.Window(w);
  std::vector<ExprPtr> rest;
  for (int i = 0; i < n - 1; ++i) {
    const std::string name = StrCat("a", i % 5 + 2);
    rest.push_back(Eq(Mod(Add(Col(s, name), Lit(i)), Lit(1 << 20)), Lit(-1)));
  }
  if (rest.empty()) {
    b.Where(std::move(gate));
  } else {
    b.Where(And({std::move(gate), Or(std::move(rest))}));
  }
  return b.Build();
}

QueryDef MakeAggregation(AggregateFunction f, WindowDefinition w) {
  Schema s = SyntheticSchema();
  QueryBuilder b(std::string("AGG") + AggregateName(f), s);
  b.Window(w);
  b.Aggregate(f, Col(s, "a1"), AggregateName(f));
  return b.Build();
}

QueryDef MakeAggregationAll(WindowDefinition w) {
  Schema s = SyntheticSchema();
  QueryBuilder b("AGG*", s);
  b.Window(w);
  b.Aggregate(AggregateFunction::kSum, Col(s, "a1"), "sum");
  b.Aggregate(AggregateFunction::kCount, nullptr, "cnt");
  b.Aggregate(AggregateFunction::kAvg, Col(s, "a1"), "avg");
  b.Aggregate(AggregateFunction::kMin, Col(s, "a1"), "min");
  b.Aggregate(AggregateFunction::kMax, Col(s, "a1"), "max");
  return b.Build();
}

QueryDef MakeGroupBy(int o, WindowDefinition w) {
  Schema s = SyntheticSchema();
  QueryBuilder b(StrCat("GROUP-BY", o), s);
  b.Window(w);
  b.GroupBy({Mod(Col(s, "a4"), Lit(o))}, {"grp"});
  b.Aggregate(AggregateFunction::kCount, nullptr, "cnt");
  b.Aggregate(AggregateFunction::kSum, Col(s, "a1"), "sum");
  return b.Build();
}

QueryDef MakeJoin(int r, WindowDefinition w, int match_mod) {
  Schema s = SyntheticSchema();
  QueryBuilder b(StrCat("JOIN", r), s, s);
  b.Window(w);
  std::vector<ExprPtr> preds;
  for (int i = 0; i < r - 1; ++i) {
    const std::string name = StrCat("a", i % 5 + 2);
    // Always true, but costs an evaluation per pair per predicate.
    preds.push_back(Ge(Add(Col(s, name), Col(s, name, Side::kRight)), Lit(0)));
  }
  preds.push_back(Eq(Mod(Col(s, "a5"), Lit(match_mod)),
                     Mod(Col(s, "a5", Side::kRight), Lit(match_mod))));
  b.JoinOn(preds.size() == 1 ? preds[0] : And(std::move(preds)));
  b.JoinSelect(Col(s, "timestamp"), "timestamp");
  b.JoinSelect(Col(s, "a5"), "l_a5");
  b.JoinSelect(Col(s, "a5", Side::kRight), "r_a5");
  return b.Build();
}

}  // namespace saber::syn
