#include "workloads/linear_road.h"

#include <cmath>
#include <random>

#include "relational/tuple_ref.h"

namespace saber::lrb {

Schema PositionSchema() {
  Schema s = Schema::MakeStream({{"vehicle", DataType::kInt32},
                                 {"speed", DataType::kFloat},
                                 {"highway", DataType::kInt32},
                                 {"lane", DataType::kInt32},
                                 {"direction", DataType::kInt32},
                                 {"position", DataType::kInt32}});
  s.PadTo(32);
  return s;
}

std::vector<uint8_t> GenerateReports(size_t n, const RoadOptions& opts) {
  Schema s = PositionSchema();
  std::mt19937 rng(opts.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  struct Vehicle {
    int highway;
    int direction;
    int lane;
    double position;  // feet
    double speed;     // mph
  };
  std::vector<Vehicle> fleet(opts.num_vehicles);
  for (auto& v : fleet) {
    v.highway = static_cast<int>(unit(rng) * opts.num_highways);
    v.direction = unit(rng) < 0.5 ? 0 : 1;
    v.lane = static_cast<int>(unit(rng) * 4);
    v.position = unit(rng) * opts.num_segments * 5280.0;
    v.speed = 40.0 + unit(rng) * 40.0;
  }

  std::vector<uint8_t> out(n * s.tuple_size());
  for (size_t i = 0; i < n; ++i) {
    const int64_t ts = static_cast<int64_t>(i) / opts.reports_per_second;
    Vehicle& v = fleet[i % fleet.size()];
    // Congestion wave: a sliding band of segments runs slow.
    const int segment = static_cast<int>(v.position / 5280.0);
    const int wave_lo =
        static_cast<int>(ts / 10 % opts.num_segments);
    const int wave_len =
        static_cast<int>(opts.num_segments * opts.congestion_fraction);
    const bool congested =
        (segment - wave_lo + opts.num_segments) % opts.num_segments < wave_len;
    const double target = congested ? 15.0 + unit(rng) * 20.0
                                    : 45.0 + unit(rng) * 35.0;
    v.speed = 0.8 * v.speed + 0.2 * target;
    // Advance: speed mph ~ 1.47 ft/s; each vehicle reports every
    // fleet.size()/reports_per_second seconds.
    const double dt =
        static_cast<double>(fleet.size()) / opts.reports_per_second;
    v.position += v.speed * 1.47 * dt;
    if (v.position >= opts.num_segments * 5280.0) v.position = 0;

    TupleWriter w(out.data() + i * s.tuple_size(), &s);
    w.SetInt64(0, ts);
    w.SetInt32(1, static_cast<int32_t>(i % fleet.size()));
    w.SetFloat(2, static_cast<float>(v.speed));
    w.SetInt32(3, v.highway);
    w.SetInt32(4, v.lane);
    w.SetInt32(5, v.direction);
    w.SetInt32(6, static_cast<int32_t>(v.position));
  }
  return out;
}

QueryDef MakeLRB1() {
  Schema s = PositionSchema();
  QueryBuilder b("LRB1", s);
  b.Window(WindowDefinition::Unbounded());
  b.Select(Col(s, "timestamp"), "timestamp");
  b.Select(Col(s, "vehicle"), "vehicle");
  b.Select(Col(s, "speed"), "speed");
  b.Select(Col(s, "highway"), "highway");
  b.Select(Col(s, "lane"), "lane");
  b.Select(Col(s, "direction"), "direction");
  b.Select(Div(Col(s, "position"), Lit(5280)), "segment");
  return b.Build();
}

QueryDef MakeLRB2() {
  Schema s = PositionSchema();
  QueryBuilder b("LRB2", s, s);
  b.Window(WindowDefinition::Time(30, 1));
  b.WindowRight(WindowDefinition::Time(1, 1));
  b.JoinOn(And({Eq(Col(s, "vehicle"), Col(s, "vehicle", Side::kRight)),
                Ne(Div(Col(s, "position"), Lit(5280)),
                   Div(Col(s, "position", Side::kRight), Lit(5280)))}));
  b.JoinSelect(Col(s, "timestamp", Side::kRight), "timestamp");
  b.JoinSelect(Col(s, "vehicle", Side::kRight), "vehicle");
  b.JoinSelect(Col(s, "speed", Side::kRight), "speed");
  b.JoinSelect(Col(s, "highway", Side::kRight), "highway");
  b.JoinSelect(Col(s, "lane", Side::kRight), "lane");
  b.JoinSelect(Col(s, "direction", Side::kRight), "direction");
  b.JoinSelect(Div(Col(s, "position", Side::kRight), Lit(5280)), "segment");
  return b.Build();
}

QueryDef MakeLRB3(int64_t window_size, int64_t slide) {
  Schema s = PositionSchema();
  QueryBuilder b("LRB3", s);
  b.Window(WindowDefinition::Time(window_size, slide));
  b.GroupBy({Col(s, "highway"), Col(s, "direction"),
             Div(Col(s, "position"), Lit(5280))},
            {"highway", "direction", "segment"});
  b.Aggregate(AggregateFunction::kAvg, Col(s, "speed"), "avgSpeed");
  QueryDef q = b.Build();
  q.having = Lt(Col(q.output_schema, "avgSpeed"), Lit(40.0));
  return q;
}

LRB4Queries MakeLRB4() {
  Schema s = PositionSchema();
  QueryBuilder inner("LRB4-inner", s);
  inner.Window(WindowDefinition::Time(30, 1));
  inner.GroupBy({Col(s, "highway"), Col(s, "direction"),
                 Div(Col(s, "position"), Lit(5280)), Col(s, "vehicle")},
                {"highway", "direction", "segment", "vehicle"});
  inner.Aggregate(AggregateFunction::kCount, nullptr, "cnt");
  QueryDef inner_def = inner.Build();

  const Schema& is = inner_def.output_schema;
  QueryBuilder outer("LRB4-outer", is);
  outer.Window(WindowDefinition::Time(1, 1));
  outer.GroupBy({Col(is, "highway"), Col(is, "direction"), Col(is, "segment")},
                {"highway", "direction", "segment"});
  outer.Aggregate(AggregateFunction::kCount, nullptr, "numVehicles");
  QueryDef outer_def = outer.Build();

  return LRB4Queries{std::move(inner_def), std::move(outer_def)};
}

}  // namespace saber::lrb
