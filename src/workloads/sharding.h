#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "runtime/status.h"

/// \file sharding.h
/// Producer-shard partitioning for the sharded ingestion stage
/// (ingest::ShardedIngress). The watermark merger emits tuples in
/// (timestamp, producer index, producer-local order); partitioning a stream
/// by *timestamp group* — every tuple sharing a timestamp goes to the same
/// shard, with the groups dealt round-robin across shards — therefore
/// reconstructs the original stream byte-identically: groups are totally
/// ordered by timestamp, so no merge decision ever falls back to the
/// producer-index tie-break. This is the partitioning the workload shard
/// generators, saber_cli --producers and the merger fuzz tests use.

namespace saber::workloads {

/// Returns shard `shard` of `data` (serialized tuples, field 0 = int64
/// timestamp, non-decreasing): the tuples of every timestamp-group g with
/// g % num_shards == shard, in stream order. The concatenation of all
/// shards' timestamp-groups in timestamp order equals `data`. Unsorted
/// input is a data error, not a programmer error — it yields
/// InvalidArgument (callers feeding untrusted streams surface it; callers
/// with generated streams use .value()).
inline Result<std::vector<uint8_t>> ExtractTimestampShard(
    const std::vector<uint8_t>& data, size_t tuple_size, int shard,
    int num_shards) {
  SABER_CHECK(num_shards > 0 && shard >= 0 && shard < num_shards);
  SABER_CHECK(tuple_size >= sizeof(int64_t) && data.size() % tuple_size == 0);
  std::vector<uint8_t> out;
  out.reserve(data.size() / static_cast<size_t>(num_shards) + tuple_size);
  int64_t group = -1;
  int64_t prev_ts = 0;
  for (size_t off = 0; off < data.size(); off += tuple_size) {
    int64_t ts;
    std::memcpy(&ts, data.data() + off, sizeof(ts));
    if (group < 0 || ts != prev_ts) {
      if (group >= 0 && ts < prev_ts) {
        return Status::InvalidArgument(
            "ExtractTimestampShard: timestamps must be non-decreasing (" +
            std::to_string(ts) + " after " + std::to_string(prev_ts) +
            " at tuple " + std::to_string(off / tuple_size) + ")");
      }
      ++group;
      prev_ts = ts;
    }
    if (group % num_shards == shard) {
      out.insert(out.end(), data.begin() + static_cast<ptrdiff_t>(off),
                 data.begin() + static_cast<ptrdiff_t>(off + tuple_size));
    }
  }
  return out;
}

/// Injects bounded, seeded timestamp disorder into a sorted stream: tuples
/// are stable-sorted by (ts + jitter_of_group) where jitter_of_group is a
/// per-timestamp-group uniform draw from [0, jitter]. Properties:
///  - every tuple's displacement is bounded: if tuple b precedes tuple a in
///    the output, then ts(a) >= ts(b) - jitter, so an ingress producer with
///    allowed_lateness >= jitter never sees a late tuple;
///  - tuples sharing a timestamp share a draw, so the original relative
///    order within a timestamp group survives the round trip and reordering
///    under lateness >= jitter reproduces `data` byte-identically;
///  - jitter == 0 returns `data` unchanged.
inline std::vector<uint8_t> ApplyBoundedDisorder(
    const std::vector<uint8_t>& data, size_t tuple_size, int64_t jitter,
    uint64_t seed) {
  SABER_CHECK(tuple_size >= sizeof(int64_t) && data.size() % tuple_size == 0);
  SABER_CHECK(jitter >= 0);
  if (jitter == 0 || data.empty()) return data;
  const size_t n = data.size() / tuple_size;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> draw(0, jitter);
  std::vector<int64_t> sort_key(n);
  int64_t prev_ts = 0;
  int64_t group_key = 0;
  bool first = true;
  for (size_t i = 0; i < n; ++i) {
    int64_t ts;
    std::memcpy(&ts, data.data() + i * tuple_size, sizeof(ts));
    if (first || ts != prev_ts) {
      SABER_CHECK(first || ts > prev_ts);  // input must be sorted
      group_key = ts + draw(rng);
      prev_ts = ts;
      first = false;
    }
    sort_key[i] = group_key;
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sort_key[a] < sort_key[b];
  });
  std::vector<uint8_t> out;
  out.reserve(data.size());
  for (size_t i : order) {
    out.insert(out.end(), data.begin() + static_cast<ptrdiff_t>(i * tuple_size),
               data.begin() + static_cast<ptrdiff_t>((i + 1) * tuple_size));
  }
  return out;
}

}  // namespace saber::workloads
