#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "runtime/status.h"

/// \file sharding.h
/// Producer-shard partitioning for the sharded ingestion stage
/// (ingest::ShardedIngress). The watermark merger emits tuples in
/// (timestamp, producer index, producer-local order); partitioning a stream
/// by *timestamp group* — every tuple sharing a timestamp goes to the same
/// shard, with the groups dealt round-robin across shards — therefore
/// reconstructs the original stream byte-identically: groups are totally
/// ordered by timestamp, so no merge decision ever falls back to the
/// producer-index tie-break. This is the partitioning the workload shard
/// generators, saber_cli --producers and the merger fuzz tests use.

namespace saber::workloads {

/// Returns shard `shard` of `data` (serialized tuples, field 0 = int64
/// timestamp, non-decreasing): the tuples of every timestamp-group g with
/// g % num_shards == shard, in stream order. The concatenation of all
/// shards' timestamp-groups in timestamp order equals `data`.
inline std::vector<uint8_t> ExtractTimestampShard(
    const std::vector<uint8_t>& data, size_t tuple_size, int shard,
    int num_shards) {
  SABER_CHECK(num_shards > 0 && shard >= 0 && shard < num_shards);
  SABER_CHECK(tuple_size >= sizeof(int64_t) && data.size() % tuple_size == 0);
  std::vector<uint8_t> out;
  out.reserve(data.size() / static_cast<size_t>(num_shards) + tuple_size);
  int64_t group = -1;
  int64_t prev_ts = 0;
  for (size_t off = 0; off < data.size(); off += tuple_size) {
    int64_t ts;
    std::memcpy(&ts, data.data() + off, sizeof(ts));
    if (group < 0 || ts != prev_ts) {
      SABER_CHECK(group < 0 || ts > prev_ts);  // input must be sorted
      ++group;
      prev_ts = ts;
    }
    if (group % num_shards == shard) {
      out.insert(out.end(), data.begin() + static_cast<ptrdiff_t>(off),
                 data.begin() + static_cast<ptrdiff_t>(off + tuple_size));
    }
  }
  return out;
}

}  // namespace saber::workloads
