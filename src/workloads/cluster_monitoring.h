#pragma once

#include <cstdint>
#include <vector>

#include "core/query.h"

/// \file cluster_monitoring.h
/// The compute-cluster monitoring workload (CM, §6.1). The paper replays the
/// Google cluster trace [53]; we generate a synthetic equivalent
/// (DESIGN.md): timestamped task events with job/task/machine identifiers,
/// an event type, scheduling class ("category"), priority and resource
/// requests. The property §6.6 depends on — bursts of task-failure events
/// that raise the selectivity of failure-filtering queries — is reproduced
/// with a configurable surge schedule.
///
/// Queries (Appendix A.1):
///   CM1: select timestamp, category, sum(cpu) from TaskEvents
///        [range 60 slide 1] group by category
///   CM2: select timestamp, jobId, avg(cpu) from TaskEvents
///        [range 60 slide 1] where eventType == 3 group by jobId

namespace saber::cm {

/// Google-trace event types (subset).
enum EventType : int32_t {
  kSubmit = 0,
  kSchedule = 1,
  kEvict = 2,
  kFail = 3,
  kFinish = 4,
  kKill = 5,
};

/// {timestamp, jobId, taskId, machineId, eventType, userId, category,
///  priority, cpu, ram, disk, constraints} — 64 bytes, mirroring the paper's
/// 12-attribute schema.
Schema TaskEventSchema();

struct SurgePeriod {
  int64_t start_ts;
  int64_t end_ts;
  double failure_probability;  // P(eventType == kFail) inside the period
};

struct TraceOptions {
  uint32_t seed = 7;
  int64_t num_jobs = 2000;
  int64_t num_machines = 11000;  // the trace's cluster size
  int num_categories = 4;        // scheduling classes 0..3
  int events_per_second = 20000;
  double base_failure_probability = 0.05;
  std::vector<SurgePeriod> surges;  // e.g. {{10, 15, 0.9}}
};

/// Generates `n` events spanning n / events_per_second seconds.
std::vector<uint8_t> GenerateTrace(size_t n, const TraceOptions& opts = {});

QueryDef MakeCM1();
QueryDef MakeCM2();

}  // namespace saber::cm
