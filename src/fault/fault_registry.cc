#include "fault/fault_registry.h"

#include <cstdio>
#include <cstdlib>

#include "runtime/strcat.h"

namespace saber::fault {

namespace {

/// splitmix64: tiny, seedable, and statistically fine for per-point fire
/// decisions. Each armed point owns one stream.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t& state) {
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& ps = points_[point];
  if (!ps.armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  ps.spec = spec;
  ps.armed = true;
  ps.rng_state = spec.seed;
  ps.hits = 0;
  ps.fires = 0;
}

Status FaultRegistry::ArmFromString(const std::string& directive) {
  const size_t eq = directive.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument(
        StrCat("fault directive '", directive, "': expected <point>=<spec>"));
  }
  const std::string point = directive.substr(0, eq);
  FaultSpec spec;
  bool have_trigger = false;
  size_t pos = eq + 1;
  while (pos < directive.size()) {
    size_t comma = directive.find(',', pos);
    if (comma == std::string::npos) comma = directive.size();
    const std::string part = directive.substr(pos, comma - pos);
    char* end = nullptr;
    if (part.rfind("p:", 0) == 0) {
      spec.probability = std::strtod(part.c_str() + 2, &end);
      if (end == part.c_str() + 2 || *end != '\0' || spec.probability < 0.0 ||
          spec.probability > 1.0) {
        return Status::InvalidArgument(
            StrCat("fault directive '", directive,
                   "': probability must be in [0, 1]"));
      }
      have_trigger = true;
    } else if (part.rfind("n:", 0) == 0) {
      spec.every_n = std::strtoll(part.c_str() + 2, &end, 10);
      if (end == part.c_str() + 2 || *end != '\0' || spec.every_n <= 0) {
        return Status::InvalidArgument(StrCat(
            "fault directive '", directive, "': every-n must be positive"));
      }
      have_trigger = true;
    } else if (part.rfind("seed:", 0) == 0) {
      spec.seed = std::strtoull(part.c_str() + 5, &end, 10);
      if (end == part.c_str() + 5 || *end != '\0') {
        return Status::InvalidArgument(
            StrCat("fault directive '", directive, "': bad seed"));
      }
    } else if (part == "once") {
      spec.one_shot = true;
    } else {
      return Status::InvalidArgument(StrCat("fault directive '", directive,
                                            "': unknown part '", part, "'"));
    }
    pos = comma + 1;
  }
  if (!have_trigger) {
    return Status::InvalidArgument(StrCat(
        "fault directive '", directive, "': needs a p:<prob> or n:<N> trigger"));
  }
  Arm(point, spec);
  return Status::OK();
}

int FaultRegistry::ArmFromEnv(const char* env_var) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || *value == '\0') return 0;
  int armed = 0;
  const std::string all(value);
  size_t pos = 0;
  while (pos < all.size()) {
    size_t semi = all.find(';', pos);
    if (semi == std::string::npos) semi = all.size();
    const std::string directive = all.substr(pos, semi - pos);
    if (!directive.empty()) {
      const Status s = ArmFromString(directive);
      if (s.ok()) {
        ++armed;
      } else {
        std::fprintf(stderr, "%s: %s\n", env_var, s.ToString().c_str());
      }
    }
    pos = semi + 1;
  }
  return armed;
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, ps] : points_) {
    if (ps.armed) {
      ps.armed = false;
      armed_points_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool FaultRegistry::InjectSlow(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return false;
  PointState& ps = it->second;
  ++ps.hits;
  bool fire = false;
  if (ps.spec.probability > 0.0) {
    fire = UnitUniform(ps.rng_state) < ps.spec.probability;
  } else if (ps.spec.every_n > 0) {
    fire = ps.hits % ps.spec.every_n == 0;
  }
  if (fire) {
    ++ps.fires;
    if (ps.spec.one_shot) {
      ps.armed = false;
      armed_points_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return fire;
}

int64_t FaultRegistry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FaultRegistry::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, ps] : points_) {
    if (ps.armed) out.push_back(name);
  }
  return out;
}

}  // namespace saber::fault
