#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/status.h"

/// \file fault_registry.h
/// Seeded, deterministic fault injection. Production code declares *named
/// fault points* by calling `SABER_FAULT_POINT("gpu.kernel_fault")` (or
/// FaultRegistry::Global().Inject(...)) at the place a failure would be
/// observed; tests, benchmarks and the CLI tools arm points with a
/// probability, an every-Nth trigger or a one-shot, and the guarded code
/// takes its failure path when Inject returns true.
///
/// Design constraints:
///  - *Zero cost when disabled*: an unarmed registry answers Inject with a
///    single relaxed atomic load (the global armed-point count) and no lock.
///  - *Deterministic*: each armed point owns a splitmix64 stream seeded from
///    FaultSpec::seed, so a seeded run fires the same hit numbers every
///    time regardless of thread interleaving at *other* points. (Hits at
///    one point race only with themselves under the registry lock.)
///  - *Composable wiring*: specs parse from `point=p:0.01`-style directives
///    (CLI flags, the SABER_FAULTS environment variable), so any binary can
///    inject faults without code changes.
///
/// Known fault points (see docs/architecture.md §14 for the full table):
///   gpu.submit_reject        device rejects the job at submission
///   gpu.kernel_fault         kernel dies mid-execution
///   gpu.completion_timeout   result transfer never completes
///   net.server.drop_data_conn  server force-drops a producer connection

namespace saber::fault {

/// How an armed fault point decides to fire. Exactly one trigger should be
/// set; `probability` wins when both are.
struct FaultSpec {
  /// Fire on each hit with this probability (0 disables). Seeded, so a
  /// given hit sequence fires identically across runs.
  double probability = 0.0;
  /// Fire on every Nth hit (hit numbers N, 2N, 3N, ...; 0 disables).
  int64_t every_n = 0;
  /// Disarm the point after its first fire.
  bool one_shot = false;
  /// Seed for the point's private RNG stream.
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

class FaultRegistry {
 public:
  /// The process-wide registry used by SABER_FAULT_POINT.
  static FaultRegistry& Global();

  /// Arms (or re-arms, resetting counters) a fault point.
  void Arm(const std::string& point, FaultSpec spec);

  /// Arms from a directive string:
  ///   "<point>=p:<probability>"   e.g. "gpu.kernel_fault=p:0.01"
  ///   "<point>=n:<every_n>"       e.g. "gpu.submit_reject=n:7"
  /// with optional ",once" and ",seed:<u64>" suffixes (any order).
  Status ArmFromString(const std::string& directive);

  /// Arms every ';'-separated directive in the environment variable
  /// (default SABER_FAULTS). Returns the number of points armed; malformed
  /// directives are reported on stderr and skipped.
  int ArmFromEnv(const char* env_var = "SABER_FAULTS");

  void Disarm(const std::string& point);
  void DisarmAll();

  /// The fault-point check. Returns true if `point` is armed and its
  /// trigger fires for this hit. One relaxed load when nothing is armed.
  bool Inject(const char* point) {
    if (armed_points_.load(std::memory_order_relaxed) == 0) return false;
    return InjectSlow(point);
  }

  /// Counters for assertions: how often the point was evaluated / fired.
  /// Both survive Disarm (they reset on the next Arm of the same point).
  int64_t hits(const std::string& point) const;
  int64_t fires(const std::string& point) const;

  std::vector<std::string> ArmedPoints() const;

 private:
  struct PointState {
    FaultSpec spec;
    bool armed = false;
    uint64_t rng_state = 0;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  bool InjectSlow(const char* point);

  /// Number of currently armed points; the Inject fast-path gate.
  std::atomic<int> armed_points_{0};
  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
};

/// Convenience macro for guarding a failure path:
///   if (SABER_FAULT_POINT("gpu.submit_reject")) { ...fail... }
#define SABER_FAULT_POINT(point) \
  (::saber::fault::FaultRegistry::Global().Inject(point))

}  // namespace saber::fault
