#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ingest/ingress_options.h"
#include "ingest/producer_handle.h"
#include "ingest/watermark_merger.h"
#include "obs/metrics.h"

/// \file sharded_ingress.h
/// Sharded multi-producer ingestion: the first pipeline stage *in front of*
/// the dispatcher. The engine assumes one logical producer per input stream
/// (§4.1) — every direct `QueryHandle::InsertInto` caller serializes on one
/// lock and one circular buffer. A `ShardedIngress` removes that wall for
/// N-client workloads:
///
///   client threads          ingress (this file)            engine
///   ──────────────  ─────────────────────────────────  ──────────────
///   ProducerHandle0 ─► staging ring 0 ─┐
///   ProducerHandle1 ─► staging ring 1 ─┼─ watermark ─► InsertInto
///        ...                     ...   │   merger       (amortized
///   ProducerHandleN ─► staging ring N ─┘  (1 thread)     batches)
///
/// Each producer appends into a private staging `CircularBuffer` (no shared
/// lock on the hot path); a single merger thread seals tuples at the low
/// watermark T = min(open producers' last timestamp) − 1, merges the sealed
/// prefixes in (timestamp, producer index) order — preserving the
/// non-decreasing-timestamp invariant the dispatcher relies on — and feeds
/// the downstream in `merge_batch_bytes`-bounded batches. Under the
/// bounded-disorder contract (IngressOptions::allowed_lateness) each
/// producer re-sorts its input inside a lateness-deep reorder buffer before
/// staging (see producer_handle.h), so the published last timestamps — and
/// with them the sealing watermark — trail the newest accepted timestamps
/// by the lateness: T = min(max seen) − allowed_lateness − 1. The merger
/// itself is untouched; every staged stream is still non-decreasing. Back-pressure
/// propagates through the PR 2 futex/epoch machinery at every hop: the
/// engine's input-buffer free channel blocks the merger inside InsertInto,
/// staging rings fill, and each producer parks on its own staging free
/// channel.
///
/// The merger is a pure producer from the engine's point of view: it never
/// executes tasks, so it can never hold a per-query assembly token while
/// blocked — a stalled merger stalls only ingestion, never the result
/// stage (see docs/architecture.md, "Ingestion stage", and the stress test
/// in tests/ingest/ingest_stress_test.cc).
///
/// Lifecycle: `ForQuery` (or the raw constructor) → client threads
/// `Append`/`Close` on their handles → `Drain()` (blocks until every shard
/// is closed and every staged tuple delivered) → `Engine::Drain()`. `Stop`
/// abandons staged data. Stop the *engine* before stopping an ingress whose
/// merger might be blocked downstream: Engine::Stop wakes the input-buffer
/// free channel, which is what unblocks the merger's InsertInto.

namespace saber {
class QueryHandle;
}  // namespace saber

namespace saber::ingest {

class ShardedIngress {
 public:
  using Downstream = WatermarkMerger::Downstream;

  /// Raw form: deliver merged batches to an arbitrary downstream function.
  /// `tuple_size` must match the serialized tuple layout (field 0 is the
  /// int64 timestamp). The downstream runs on the merger thread and may
  /// block (that is the back-pressure path).
  ShardedIngress(size_t tuple_size, const IngressOptions& options,
                 Downstream downstream);

  /// Convenience wiring: merged batches go to `q->InsertInto(input, ...)`.
  /// The ingress must not outlive the engine; destroy (or Stop) it first.
  static std::unique_ptr<ShardedIngress> ForQuery(QueryHandle* q, int input = 0,
                                                  const IngressOptions& options =
                                                      IngressOptions{});

  ~ShardedIngress();

  ShardedIngress(const ShardedIngress&) = delete;
  ShardedIngress& operator=(const ShardedIngress&) = delete;

  int num_producers() const { return static_cast<int>(producers_.size()); }
  ProducerHandle* producer(int i) { return producers_[static_cast<size_t>(i)].get(); }

  /// Closes every producer handle that is not yet closed. Only safe once no
  /// client thread will Append again (Append/Close are per-handle
  /// single-threaded); joins-then-drain callers use it as shorthand.
  void CloseAll();

  /// Engine-driven teardown (query removal): revokes every producer. Safe
  /// while client threads are mid-Append — their current call returns false
  /// at the next chunk boundary instead of aborting, and everything staged
  /// before revocation still merges and delivers. Follow with Drain() to
  /// wait for that delivery, then Stop().
  void Revoke();

  /// Live per-tenant re-metering: re-rates producer `producer`'s token
  /// bucket (thread-safe, takes effect within one limiter wait slice;
  /// <= 0 disables limiting). Initial rates come from
  /// IngressOptions::producer_rate_bytes_per_sec.
  void SetProducerRate(int producer, double bytes_per_second);

  /// Blocks until every producer is closed AND every staged tuple has been
  /// merged and delivered downstream. Does not close producers itself: a
  /// still-open shard legitimately keeps Drain waiting (call from the
  /// coordinating thread after the client threads have finished). Returns
  /// immediately if the ingress was stopped.
  void Drain();

  /// Abandons staged data and joins the merger thread. If the merger may be
  /// blocked inside a downstream `Engine::InsertInto`, stop the engine
  /// first (its Stop wakes the input-buffer free channel). Idempotent.
  void Stop();

  /// True once Drain's condition held: all shards closed, all data merged
  /// and delivered.
  bool drained() const { return drained_.load(std::memory_order_acquire); }
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  IngressStats stats() const;

  /// Watermark-watchdog counters (cheap; see IngressOptions::watchdog_nanos
  /// and IngressStats for semantics).
  int64_t watchdog_trips() const { return watchdog_trips_.value(); }
  int64_t watchdog_force_closes() const {
    return watchdog_force_closes_.value();
  }

 private:
  friend class ProducerHandle;

  /// Registers every shard, merger and watchdog counter on
  /// IngressOptions::metrics (called from the constructor when set; the
  /// destructor unregisters before any counter storage dies).
  void RegisterMetrics();

  /// Producers bump this futex epoch after publishing data, on Close, and
  /// when they hit staging back-pressure; the merger sleeps on it when a
  /// cycle seals nothing. The `merger_waiting_` flag suppresses the futex
  /// wake syscall on the append fast path while the merger is running.
  void BumpIngestEpoch();
  void MergerLoop();
  /// Liveness monitor on the sealing watermark (armed iff
  /// options_.watchdog_nanos > 0; see IngressOptions). Polls at half the
  /// interval; trips once per continuous stall; optionally revokes the
  /// pinning shard.
  void WatchdogLoop();

  const size_t tuple_size_;
  const IngressOptions options_;

  std::vector<std::unique_ptr<ProducerHandle>> producers_;
  std::unique_ptr<WatermarkMerger> merger_;

  /// 32-bit for the raw-futex fast path; wrap-around is harmless
  /// (inequality compare only).
  std::atomic<uint32_t> ingest_epoch_{0};
  std::atomic<bool> merger_waiting_{false};

  std::atomic<bool> stop_{false};
  std::atomic<bool> drained_{false};
  /// Drain's wakeup channel: bumped when drained_ or stop_ flips.
  std::atomic<uint32_t> done_epoch_{0};

  std::mutex join_mu_;
  std::thread merger_thread_;

  /// Watermark watchdog (see WatchdogLoop). The cv lets Stop wake the
  /// half-interval sleep immediately instead of waiting it out.
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_thread_;
  obs::Counter watchdog_trips_;
  obs::Counter watchdog_force_closes_;
};

}  // namespace saber::ingest
