#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "ingest/ingress_options.h"
#include "ingest/producer_handle.h"
#include "obs/metrics.h"

/// \file watermark_merger.h
/// The sealing + ordering core of the sharded ingestion stage: turns N
/// independent per-producer staging streams (each non-decreasing in
/// timestamp) into ONE non-decreasing stream, delivered downstream in
/// bounded, amortized batches.
///
/// Sealing rule (low watermark): let W = min over *open* producers of the
/// last timestamp each has published (finished producers — closed or
/// revoked, with no append in flight — never append again and so do not
/// constrain W; an open producer that has never appended pins the
/// watermark — nothing seals). Tuples with ts <= W - 1 are
/// *sealed*: no future append on any shard can carry a timestamp < W
/// (each shard is non-decreasing and already past W), so the sealed set is
/// complete and can be merged and released. This is the same cut the join
/// dispatcher uses (Engine::TryCreateJoinTask, T = min(last ingested
/// ts) - 1). One refinement on top: shards with index <= m — m being the
/// smallest-index open shard whose last_ts equals W — may also seal their
/// staged ts == W tuples (no smaller-index shard can ever produce another
/// ts == W tuple, and a shard's own later ts == W appends are FIFO-after),
/// which keeps a single-timestamp run larger than one staging ring from
/// wedging its producer. See RunCycle for the full argument.
///
/// Merge order: sealed tuples are emitted in (timestamp, producer index,
/// producer-local order). Because a timestamp t seals only once every
/// producer is past it, ALL tuples with timestamp t — across every shard —
/// seal in the same cycle, which makes the merged byte stream a pure
/// function of the shard contents, independent of append timing, merge
/// cycle boundaries, and scheduling. tests/ingest/sharded_ingress_test.cc
/// fuzzes exactly this: random shard counts, batch splits and stalls must
/// reproduce the single-producer stream byte for byte.

namespace saber::ingest {

/// Runs merge cycles over a fixed producer set. Not a thread: the owning
/// `ShardedIngress` drives RunCycle from its merger thread; all mutable
/// state here (read positions, scratch) is merger-thread-private, and the
/// counters are atomics readable from any thread.
class WatermarkMerger {
 public:
  using Downstream = std::function<void(const uint8_t*, size_t)>;

  WatermarkMerger(std::vector<ProducerHandle*> producers, size_t tuple_size,
                  size_t merge_batch_bytes, Downstream downstream);

  struct CycleResult {
    size_t merged_bytes = 0;
    /// Every producer finished (closed or revoked, no Append in flight) and
    /// every staged byte merged and delivered: nothing will ever arrive
    /// again.
    bool drained = false;
  };

  /// One sealing pass: compute the watermark, merge every sealed tuple in
  /// (ts, producer) order, deliver in merge_batch_bytes-bounded blocks, and
  /// free the consumed staging bytes. Never blocks upstream; may block
  /// *downstream* (the delivery callback typically lands in
  /// Engine::InsertInto, which blocks on input-buffer back-pressure).
  CycleResult RunCycle();

  int64_t merge_cycles() const { return cycles_.value(); }
  int64_t watermark_stalls() const { return stalls_.value(); }
  int64_t merge_runs() const { return runs_.value(); }
  int64_t merged_batches() const { return batches_.value(); }
  int64_t merged_bytes() const { return merged_bytes_.value(); }
  int64_t merged_tuples() const {
    return merged_bytes() / static_cast<int64_t>(tuple_size_);
  }

  /// Publishes the merge counters as external series on `registry` (labels
  /// should carry {ingress}); the owning ShardedIngress unregisters with
  /// `owner` before this merger dies.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const obs::Labels& labels, const void* owner) const;

 private:
  /// Timestamp of the staged tuple at absolute staging position `pos`.
  int64_t TsAt(const ProducerHandle& p, int64_t pos) const;
  /// First position in [from, end) whose timestamp exceeds `limit`
  /// (binary search — shard streams are non-decreasing).
  int64_t UpperBound(const ProducerHandle& p, int64_t from, int64_t end,
                     int64_t limit) const;
  /// Delivers the scratch block downstream and frees consumed staging bytes.
  void Flush();

  const std::vector<ProducerHandle*> producers_;
  const size_t tuple_size_;
  const size_t merge_batch_bytes_;
  const Downstream downstream_;

  /// Next unconsumed absolute position per producer (merger-private).
  std::vector<int64_t> read_pos_;
  /// Staging bytes already freed per producer (frees are batched per flush).
  std::vector<int64_t> freed_pos_;
  std::vector<uint8_t> scratch_;
  size_t scratch_used_ = 0;

  obs::Counter cycles_;
  obs::Counter stalls_;
  obs::Counter runs_;
  obs::Counter batches_;
  obs::Counter merged_bytes_;
};

}  // namespace saber::ingest
