#include "ingest/watermark_merger.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "runtime/status.h"

namespace saber::ingest {

namespace {
constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();
}

WatermarkMerger::WatermarkMerger(std::vector<ProducerHandle*> producers,
                                 size_t tuple_size, size_t merge_batch_bytes,
                                 Downstream downstream)
    : producers_(std::move(producers)),
      tuple_size_(tuple_size),
      // At least one tuple per block, whole tuples only.
      merge_batch_bytes_(std::max(
          tuple_size_, merge_batch_bytes / tuple_size_ * tuple_size_)),
      downstream_(std::move(downstream)),
      read_pos_(producers_.size(), 0),
      freed_pos_(producers_.size(), 0),
      scratch_(merge_batch_bytes_) {
  SABER_CHECK(!producers_.empty());
  SABER_CHECK(tuple_size_ >= sizeof(int64_t));
}

int64_t WatermarkMerger::TsAt(const ProducerHandle& p, int64_t pos) const {
  // Staging capacity is a multiple of the tuple size, so a tuple never
  // straddles the physical wrap point and the timestamp (field 0) is
  // contiguous; memcpy because 4-byte-aligned schemas exist.
  int64_t ts;
  std::memcpy(&ts, p.staging_.DataAt(pos), sizeof(ts));
  return ts;
}

int64_t WatermarkMerger::UpperBound(const ProducerHandle& p, int64_t from,
                                    int64_t end, int64_t limit) const {
  const int64_t tsz = static_cast<int64_t>(tuple_size_);
  int64_t lo = 0;  // tuples known <= limit (caller checked the head)
  int64_t hi = (end - from) / tsz;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (TsAt(p, from + mid * tsz) <= limit) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return from + lo * tsz;
}

void WatermarkMerger::Flush() {
  if (scratch_used_ == 0) return;
  // Free consumed staging bytes BEFORE the (possibly blocking) downstream
  // delivery: the data is already copied into scratch, and releasing it now
  // lets back-pressured producers refill their shards while the merger sits
  // in Engine::InsertInto waiting on the input buffer. This is what makes
  // downstream back-pressure reach all producers only once ~one
  // merge_batch_bytes of slack is exhausted, instead of serializing them
  // behind every delivery.
  for (size_t i = 0; i < producers_.size(); ++i) {
    if (read_pos_[i] > freed_pos_[i]) {
      producers_[i]->staging_.FreeUpTo(read_pos_[i]);
      freed_pos_[i] = read_pos_[i];
    }
  }
  downstream_(scratch_.data(), scratch_used_);
  batches_.Increment();
  merged_bytes_.Increment(static_cast<int64_t>(scratch_used_));
  scratch_used_ = 0;
}

WatermarkMerger::CycleResult WatermarkMerger::RunCycle() {
  const size_t n = producers_.size();
  const int64_t tsz = static_cast<int64_t>(tuple_size_);

  // --- 1. Low watermark over the open producers. -------------------------
  // Finished shards — closed, or revoked with no Append in flight — never
  // publish another staged byte, so they do not constrain the watermark
  // (their staged remainder still merges by timestamp below). A revoked
  // shard whose Append is still mid-chunk stays "open" here: its landing
  // chunk may carry timestamps at the shard's current last_ts, which must
  // not be overtaken. An open shard that has never appended pins the
  // watermark: its first tuple could still carry any timestamp.
  bool all_finished = true;
  bool unknown = false;
  int64_t min_last = kInt64Max;
  int m_index = -1;  // smallest index of an open shard with last_ts == W
  for (size_t i = 0; i < producers_.size(); ++i) {
    const ProducerHandle* p = producers_[i];
    if (p->finished()) continue;
    all_finished = false;
    if (!p->has_appended_.load(std::memory_order_acquire)) {
      unknown = true;
      continue;
    }
    const int64_t lt = p->last_ts_.load(std::memory_order_acquire);
    if (lt < min_last) {
      min_last = lt;
      m_index = static_cast<int>(i);
    }
  }
  // Per-shard sealing bound. Baseline: tuples with ts <= W - 1 are sealed
  // everywhere (W = min over open shards' last_ts). Safety: any tuple not
  // yet visible below was appended (or will be) after its shard published
  // last_ts >= W, and shard streams are non-decreasing, so its timestamp
  // is >= W — the sealed set is complete. Completeness of ties: t < W
  // means every open shard has published last_ts > t, and that publish
  // release-orders after the staging end-position covering every ts <= t
  // tuple of that shard, so the end() snapshots below see ALL tuples of
  // timestamp t at once.
  //
  // Refinement at ts == W: shards with index <= m (m = smallest-index open
  // shard whose last_ts == W) may additionally seal their staged ts == W
  // tuples. No shard with a smaller index can ever produce another ts == W
  // tuple (it is closed, or open with last_ts > W), and a shard's own
  // later ts == W appends order after its staged ones (FIFO) — so the
  // (ts, producer index, FIFO) merge order is unaffected. Without this, a
  // single-timestamp run larger than one staging ring would wedge its
  // producer forever: ts == last_ts bytes were unsealable, so the merger
  // never freed them and Append could neither finish nor reach Close
  // (regression: ShardedIngress.EqualTimestampRunLargerThanStaging).
  // Shards with index > m keep the conservative W - 1 bound: shard m may
  // still append ts == W tuples that must merge before theirs.
  // An open shard that never appended admits ANY timestamp, so nothing at
  // all is sealable while one exists.
  const bool nothing_sealable = unknown;
  int64_t seal_below_m = 0;  // bound for shards with index <= m_index
  int64_t seal_above_m = 0;  // bound for shards with index > m_index
  // W == INT64_MIN has no representable "strictly below W": shards above m
  // then seal nothing (shard m may still append more INT64_MIN tuples that
  // must merge before theirs).
  bool above_m_sealable = true;
  if (all_finished) {
    seal_below_m = seal_above_m = kInt64Max;  // final drain: seal everything
  } else if (!unknown) {
    seal_below_m = min_last;
    if (min_last == std::numeric_limits<int64_t>::min()) {
      above_m_sealable = false;
    } else {
      seal_above_m = min_last - 1;
    }
  }
  auto shard_sealable = [&](size_t producer_index) {
    return above_m_sealable || (m_index >= 0 &&
                                static_cast<int>(producer_index) <= m_index);
  };
  auto seal_bound = [&](size_t producer_index) {
    return m_index >= 0 && static_cast<int>(producer_index) <= m_index
               ? seal_below_m
               : seal_above_m;
  };

  // --- 2. Snapshot shard extents (after the watermark reads). ------------
  std::vector<int64_t> end(n);
  bool pending = false;
  for (size_t i = 0; i < n; ++i) {
    end[i] = producers_[i]->staging_.end();
    pending = pending || read_pos_[i] < end[i];
  }
  if (!pending) {
    return CycleResult{0, all_finished};
  }

  // --- 3. K-way merge of the sealed prefixes, run at a time. -------------
  // Heads are re-read each round; a round picks the producer with the
  // minimal *sealable* head timestamp (ties: lowest index) and extends its
  // run as far as the next competitor's head allows, so the copy is a bulk
  // span, not a per-tuple shuffle. N is small; the O(N) head scan per run
  // is noise against the span memcpy.
  size_t produced = 0;
  while (!nothing_sealable) {
    int best = -1;
    int64_t best_ts = 0;
    for (size_t i = 0; i < n; ++i) {
      if (read_pos_[i] >= end[i]) continue;
      if (!shard_sealable(i)) continue;
      const int64_t ts = TsAt(*producers_[i], read_pos_[i]);
      if (ts > seal_bound(i)) continue;
      if (best < 0 || ts < best_ts) {
        best = static_cast<int>(i);
        best_ts = ts;
      }
    }
    if (best < 0) break;

    // The run may cover timestamps up to `limit`: its own sealing bound,
    // and strictly below the closest competing head m — including m itself
    // only when every shard whose head equals m has a larger index (equal
    // timestamps order by producer index). Ineligible heads (beyond their
    // shard's sealing bound) still limit the run: their tuples merge in a
    // later cycle and must not be overtaken at equal timestamps by a
    // higher-indexed run now.
    int64_t m = kInt64Max;
    int m_min_index = -1;
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i) == best || read_pos_[i] >= end[i]) continue;
      const int64_t ts = TsAt(*producers_[i], read_pos_[i]);
      if (ts < m) {
        m = ts;
        m_min_index = static_cast<int>(i);
      }
    }
    int64_t limit;
    if (m == kInt64Max) {
      limit = seal_bound(static_cast<size_t>(best));
    } else if (best < m_min_index) {
      limit = std::min(seal_bound(static_cast<size_t>(best)), m);
    } else {
      limit = std::min(seal_bound(static_cast<size_t>(best)), m - 1);
    }

    const int64_t run_end =
        UpperBound(*producers_[best], read_pos_[best], end[best], limit);
    int64_t run_bytes = run_end - read_pos_[best];
    SABER_DCHECK(run_bytes > 0);
    runs_.Increment();
    while (run_bytes > 0) {
      size_t room = merge_batch_bytes_ - scratch_used_;
      if (room < tuple_size_) {
        Flush();
        room = merge_batch_bytes_;
      }
      const size_t span =
          std::min<size_t>(static_cast<size_t>(run_bytes), room / tsz * tsz);
      producers_[best]->staging_.CopyOut(read_pos_[best], span,
                                         scratch_.data() + scratch_used_);
      scratch_used_ += span;
      read_pos_[best] += static_cast<int64_t>(span);
      run_bytes -= static_cast<int64_t>(span);
      produced += span;
    }
  }
  Flush();

  if (produced > 0) {
    cycles_.Increment();
  } else {
    // Staged bytes exist but none sealed: a shard is holding the watermark
    // back (stalled producer, or one that never appended and never closed).
    stalls_.Increment();
  }

  bool drained = all_finished;
  for (size_t i = 0; i < n && drained; ++i) {
    drained = read_pos_[i] >= end[i];
  }
  return CycleResult{produced, drained};
}

void WatermarkMerger::RegisterMetrics(obs::MetricsRegistry* registry,
                                      const obs::Labels& labels,
                                      const void* owner) const {
  registry->RegisterCounter("saber_ingest_merge_cycles_total", labels,
                            &cycles_, owner,
                            "Merge cycles that sealed at least one tuple");
  registry->RegisterCounter(
      "saber_watermark_stalls_total", labels, &stalls_, owner,
      "Merge cycles with staged bytes but nothing sealable (a producer is "
      "holding the watermark back)");
  registry->RegisterCounter(
      "saber_ingest_merge_runs_total", labels, &runs_, owner,
      "Contiguous single-producer spans copied by the k-way merge");
  registry->RegisterCounter("saber_ingest_merged_batches_total", labels,
                            &batches_, owner, "Downstream deliveries");
  registry->RegisterCounter("saber_ingest_merged_bytes_total", labels,
                            &merged_bytes_, owner,
                            "Bytes merged and delivered downstream");
}

}  // namespace saber::ingest
