#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "runtime/circular_buffer.h"

/// \file producer_handle.h
/// One shard of a `ShardedIngress`: the handle a single client thread uses
/// to append serialized tuples. Each handle owns a private staging
/// `CircularBuffer`, so the append hot path takes no shared lock — the only
/// cross-thread traffic is the buffer's release/acquire position pair, the
/// producer's published last timestamp, and the ingress ingest-epoch bump
/// that wakes the merger. Back-pressure (staging buffer full because the
/// watermark merge or the engine downstream is behind) parks the producer
/// on the staging buffer's futex free channel, exactly like a direct
/// `Engine::InsertInto` producer parks on the input buffer's.

namespace saber::ingest {

class ShardedIngress;
class WatermarkMerger;

class ProducerHandle {
 public:
  ProducerHandle(const ProducerHandle&) = delete;
  ProducerHandle& operator=(const ProducerHandle&) = delete;

  /// Appends serialized tuples to this shard. Tuples must be whole (bytes a
  /// multiple of the tuple size) and timestamps non-decreasing *within this
  /// producer* — both are CHECKed with a clear message, because a violation
  /// would corrupt the merged stream's ordering invariant. Blocks while the
  /// staging buffer is full. Returns false iff the ingress was stopped (the
  /// data is then not fully appended); one thread per handle.
  bool Append(const void* tuples, size_t bytes);

  /// Declares this shard finished: the producer will never append again, so
  /// the watermark merge stops waiting on it (its staged remainder becomes
  /// sealable regardless of the other shards' progress). Must be called by
  /// the appending thread after its last Append; idempotent. Appending
  /// after Close is a programmer error (CHECK).
  void Close();

  int index() const { return index_; }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  int64_t tuples() const { return tuples_.load(std::memory_order_relaxed); }
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  int64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  int64_t backpressure_waits() const {
    return waits_.load(std::memory_order_relaxed);
  }

 private:
  friend class ShardedIngress;
  friend class WatermarkMerger;

  static constexpr int64_t kNoTimestamp = std::numeric_limits<int64_t>::min();

  ProducerHandle(ShardedIngress* owner, int index, size_t staging_bytes,
                 size_t tuple_size)
      : owner_(owner),
        index_(index),
        tuple_size_(tuple_size),
        staging_(staging_bytes, tuple_size) {}

  ShardedIngress* const owner_;
  const int index_;
  const size_t tuple_size_;

  /// Staging ring: this producer inserts, the merger reads and frees. The
  /// buffer's free-epoch futex doubles as the producer's back-pressure
  /// channel (WaitFreeEpoch) and its shutdown wakeup (WakeProducer).
  CircularBuffer staging_;

  /// Timestamp of the last tuple *published* to staging (store-release after
  /// the buffer's end-position release, so a merger that reads it
  /// acquire-ordered is guaranteed to see every tuple it accounts for).
  /// Meaningful only once has_appended_ is true.
  std::atomic<int64_t> last_ts_{kNoTimestamp};
  /// Separate flag rather than a sentinel last_ts value: INT64_MIN is a
  /// legal tuple timestamp, so "never appended" must not alias it. An open
  /// producer that has never appended pins the low watermark, because its
  /// first tuple could still carry any timestamp. Set (release) after the
  /// first last_ts_ publish; the merger's acquire read therefore sees a
  /// real last_ts_ whenever the flag is set.
  std::atomic<bool> has_appended_{false};
  std::atomic<bool> closed_{false};

  /// Producer-thread-private validation state (no lock: one thread per
  /// handle by contract).
  int64_t prev_append_ts_ = kNoTimestamp;

  std::atomic<int64_t> tuples_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> appends_{0};
  std::atomic<int64_t> waits_{0};
};

}  // namespace saber::ingest
