#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "runtime/circular_buffer.h"
#include "runtime/rate_limiter.h"

/// \file producer_handle.h
/// One shard of a `ShardedIngress`: the handle a single client thread uses
/// to append serialized tuples. Each handle owns a private staging
/// `CircularBuffer`, so the append hot path takes no shared lock — the only
/// cross-thread traffic is the buffer's release/acquire position pair, the
/// producer's published last timestamp, and the ingress ingest-epoch bump
/// that wakes the merger. Back-pressure (staging buffer full because the
/// watermark merge or the engine downstream is behind) parks the producer
/// on the staging buffer's futex free channel, exactly like a direct
/// `Engine::InsertInto` producer parks on the input buffer's.

namespace saber::ingest {

class ShardedIngress;
class WatermarkMerger;

class ProducerHandle {
 public:
  ProducerHandle(const ProducerHandle&) = delete;
  ProducerHandle& operator=(const ProducerHandle&) = delete;

  /// Appends serialized tuples to this shard. Tuples must be whole (bytes a
  /// multiple of the tuple size) and timestamps non-decreasing *within this
  /// producer* — both are CHECKed with a clear message, because a violation
  /// would corrupt the merged stream's ordering invariant. Blocks while the
  /// staging buffer is full, and while the per-tenant rate limiter withholds
  /// budget. Returns false iff the ingress was stopped or this shard revoked
  /// (the data is then not fully appended); one thread per handle.
  bool Append(const void* tuples, size_t bytes);

  /// Declares this shard finished: the producer will never append again, so
  /// the watermark merge stops waiting on it (its staged remainder becomes
  /// sealable regardless of the other shards' progress). Must be called by
  /// the appending thread after its last Append; idempotent. Appending
  /// after Close is a programmer error (CHECK).
  void Close();

  /// Engine-driven teardown (query removal): unlike Close — which only the
  /// appending thread may call — Revoke is safe from any thread while an
  /// Append is in flight. The next Append (or the in-flight one, at its next
  /// chunk boundary) returns false instead of aborting, a parked Append is
  /// woken, and the shard stops constraining the watermark once the
  /// in-flight call has left (see finished()). Idempotent.
  void Revoke();

  int index() const { return index_; }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  bool revoked() const { return revoked_.load(std::memory_order_acquire); }

  /// True once this shard is guaranteed to never publish another staged
  /// byte: closed or revoked, with no Append in flight. This — not
  /// closed() — is what the watermark computation and the drain condition
  /// consult: a revoked shard with an Append mid-chunk must keep pinning
  /// the watermark, or the chunk could land below an already-advanced W and
  /// break the merged stream's ordering invariant. seq_cst against the
  /// in_append_/revoked_ handshake in Append (see the .cc).
  bool finished() const {
    return (closed_.load() || revoked_.load()) && !in_append_.load();
  }

  /// Re-meters this shard's token bucket (thread-safe; takes effect within
  /// one limiter wait slice even mid-Acquire). <= 0 disables limiting.
  void SetRate(double bytes_per_second) { limiter_.SetRate(bytes_per_second); }
  double rate_bytes_per_sec() const { return limiter_.rate_bytes_per_sec(); }

  int64_t tuples() const { return tuples_.load(std::memory_order_relaxed); }
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  int64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  int64_t backpressure_waits() const {
    return waits_.load(std::memory_order_relaxed);
  }
  /// Sleeps forced by the rate limiter (throttle pressure, distinct from
  /// staging back-pressure).
  int64_t throttle_waits() const { return limiter_.throttle_waits(); }

 private:
  friend class ShardedIngress;
  friend class WatermarkMerger;

  static constexpr int64_t kNoTimestamp = std::numeric_limits<int64_t>::min();

  ProducerHandle(ShardedIngress* owner, int index, size_t staging_bytes,
                 size_t tuple_size, double rate_bytes_per_sec)
      : owner_(owner),
        index_(index),
        tuple_size_(tuple_size),
        staging_(staging_bytes, tuple_size),
        limiter_(rate_bytes_per_sec) {}

  ShardedIngress* const owner_;
  const int index_;
  const size_t tuple_size_;

  /// Staging ring: this producer inserts, the merger reads and frees. The
  /// buffer's free-epoch futex doubles as the producer's back-pressure
  /// channel (WaitFreeEpoch) and its shutdown wakeup (WakeProducer).
  CircularBuffer staging_;

  /// Timestamp of the last tuple *published* to staging (store-release after
  /// the buffer's end-position release, so a merger that reads it
  /// acquire-ordered is guaranteed to see every tuple it accounts for).
  /// Meaningful only once has_appended_ is true.
  std::atomic<int64_t> last_ts_{kNoTimestamp};
  /// Separate flag rather than a sentinel last_ts value: INT64_MIN is a
  /// legal tuple timestamp, so "never appended" must not alias it. An open
  /// producer that has never appended pins the low watermark, because its
  /// first tuple could still carry any timestamp. Set (release) after the
  /// first last_ts_ publish; the merger's acquire read therefore sees a
  /// real last_ts_ whenever the flag is set.
  std::atomic<bool> has_appended_{false};
  std::atomic<bool> closed_{false};
  /// Engine-driven revocation flag (Revoke). Unlike closed_, it can flip
  /// while an Append is in flight; in_append_ closes the resulting race
  /// with the watermark (see finished()).
  std::atomic<bool> revoked_{false};
  /// True while the appending thread is between Append entry and exit.
  std::atomic<bool> in_append_{false};

  /// Per-tenant token bucket (0 = unmetered). Acquire runs on the appending
  /// thread before the staging insert; SetRate may race from any thread.
  RateLimiter limiter_;

  /// Producer-thread-private validation state (no lock: one thread per
  /// handle by contract).
  int64_t prev_append_ts_ = kNoTimestamp;

  std::atomic<int64_t> tuples_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> appends_{0};
  std::atomic<int64_t> waits_{0};
};

}  // namespace saber::ingest
