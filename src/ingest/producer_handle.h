#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "ingest/ingress_options.h"
#include "obs/metrics.h"
#include "runtime/circular_buffer.h"
#include "runtime/rate_limiter.h"

/// \file producer_handle.h
/// One shard of a `ShardedIngress`: the handle a single client thread uses
/// to append serialized tuples. Each handle owns a private staging
/// `CircularBuffer`, so the append hot path takes no shared lock — the only
/// cross-thread traffic is the buffer's release/acquire position pair, the
/// producer's published last timestamp, and the ingress ingest-epoch bump
/// that wakes the merger. Back-pressure (staging buffer full because the
/// watermark merge or the engine downstream is behind) parks the producer
/// on the staging buffer's futex free channel, exactly like a direct
/// `Engine::InsertInto` producer parks on the input buffer's.
///
/// Bounded disorder (`IngressOptions::allowed_lateness > 0`, or a non-abort
/// `late_policy`): the handle interposes a producer-thread-private reorder
/// buffer between Append and the staging ring. A tuple whose timestamp is
/// below the shard's disorder horizon `max seen − allowed_lateness` is
/// *late* and follows the configured LatePolicy; every other tuple is held
/// and flushed to staging — in sorted, arrival-stable (timestamp, arrival)
/// order — once the horizon passes it. The staged stream is therefore
/// non-decreasing exactly as before, the watermark merger is untouched, and
/// the published `last_ts_` trails the newest accepted timestamp by up to
/// `allowed_lateness`, which is how the sealing watermark becomes
/// `min(max seen) − lateness − 1`. Overflow of the fixed-size buffer
/// force-flushes the earliest held timestamp early and raises the late
/// threshold to it (hard memory bound; effective lateness shrinks — see
/// IngressOptions::reorder_buffer_bytes).
///
/// Two holding structures, picked at construction by the lateness:
///  - calendar buckets (lateness < kMaxBucketLateness, the common case): a
///    power-of-two ring of per-tick FIFO slot lists indexed by
///    `ts & mask`, plus a tiny min-heap of the *distinct* ticks present.
///    Insert is O(1) (slab copy + bucket push); a flush walks ticks in
///    order off the tick heap, so its cost is per distinct tick, not per
///    tuple. Pending ticks always span < bucket count — Append flushes up
///    to the horizon before a colliding tick could be inserted — so two
///    live ticks never share a bucket.
///  - a per-tuple (ts, seq) min-heap fallback for extreme lateness values,
///    where a tick ring would be larger than the buffer it indexes.

namespace saber::ingest {

class ShardedIngress;
class WatermarkMerger;

class ProducerHandle {
 public:
  ProducerHandle(const ProducerHandle&) = delete;
  ProducerHandle& operator=(const ProducerHandle&) = delete;

  /// Appends serialized tuples to this shard. Tuples must be whole (bytes a
  /// multiple of the tuple size; CHECKed). Under the strict-order contract
  /// (allowed_lateness == 0 with LatePolicy::kAbort, the default) timestamps
  /// must additionally be non-decreasing *within this producer* — CHECKed
  /// with a clear message, because a violation would corrupt the merged
  /// stream's ordering invariant. Under the bounded-disorder contract (see
  /// the file comment) tuples may arrive up to `allowed_lateness` ticks
  /// below the shard's maximum seen timestamp; anything later follows the
  /// configured LatePolicy. Blocks while the staging buffer is full, and
  /// while the per-tenant rate limiter withholds budget. Returns false iff
  /// the ingress was stopped or this shard revoked (the data is then not
  /// fully appended); one thread per handle.
  bool Append(const void* tuples, size_t bytes);

  /// Declares this shard finished: the producer will never append again, so
  /// the watermark merge stops waiting on it (its staged remainder becomes
  /// sealable regardless of the other shards' progress). Flushes the
  /// reorder buffer — every held tuple stages, in order, before the shard
  /// closes — so a bounded-disorder shard loses nothing at end of stream
  /// (the flush may block on staging back-pressure like Append; it bails if
  /// the ingress was stopped or the shard revoked). Must be called by the
  /// appending thread after its last Append; idempotent. Appending after
  /// Close is a programmer error (CHECK).
  void Close();

  /// Engine-driven teardown (query removal): unlike Close — which only the
  /// appending thread may call — Revoke is safe from any thread while an
  /// Append is in flight. The next Append (or the in-flight one, at its next
  /// chunk boundary) returns false instead of aborting, a parked Append is
  /// woken, and the shard stops constraining the watermark once the
  /// in-flight call has left (see finished()). Idempotent.
  void Revoke();

  int index() const { return index_; }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  bool revoked() const { return revoked_.load(std::memory_order_acquire); }

  /// True once this shard is guaranteed to never publish another staged
  /// byte: closed or revoked, with no Append in flight. This — not
  /// closed() — is what the watermark computation and the drain condition
  /// consult: a revoked shard with an Append mid-chunk must keep pinning
  /// the watermark, or the chunk could land below an already-advanced W and
  /// break the merged stream's ordering invariant. seq_cst against the
  /// in_append_/revoked_ handshake in Append (see the .cc).
  bool finished() const {
    return (closed_.load() || revoked_.load()) && !in_append_.load();
  }

  /// Re-meters this shard's token bucket (thread-safe; takes effect within
  /// one limiter wait slice even mid-Acquire). <= 0 disables limiting.
  void SetRate(double bytes_per_second) { limiter_.SetRate(bytes_per_second); }
  double rate_bytes_per_sec() const { return limiter_.rate_bytes_per_sec(); }

  int64_t tuples() const { return tuples_.value(); }
  int64_t bytes() const { return bytes_.value(); }
  int64_t appends() const { return appends_.value(); }
  int64_t backpressure_waits() const { return waits_.value(); }
  /// Sleeps forced by the rate limiter (throttle pressure, distinct from
  /// staging back-pressure).
  int64_t throttle_waits() const { return limiter_.throttle_waits(); }
  /// Late tuples dropped under LatePolicy::kDropAndCount.
  int64_t late_dropped() const { return late_dropped_.value(); }
  /// Late tuples routed to the dead-letter sink under LatePolicy::kDeadLetter
  /// (counted even when no sink is configured).
  int64_t dead_lettered() const { return dead_lettered_.value(); }

  /// Publishes this shard's counters as external series on `registry`
  /// (labels should carry {ingress, producer}); the owning ShardedIngress
  /// unregisters with `owner` before the handles die.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const obs::Labels& labels, const void* owner) const;

 private:
  friend class ShardedIngress;
  friend class WatermarkMerger;

  static constexpr int64_t kNoTimestamp = std::numeric_limits<int64_t>::min();
  /// Lateness ceiling (in ticks) for the calendar-bucket reorder structure;
  /// at or above it the tick ring would cost more memory than the tuple
  /// slab it indexes, so the handle falls back to the per-tuple min-heap.
  static constexpr int64_t kMaxBucketLateness = int64_t{1} << 12;

  ProducerHandle(ShardedIngress* owner, int index, size_t tuple_size,
                 const IngressOptions& options)
      : owner_(owner),
        index_(index),
        tuple_size_(tuple_size),
        lateness_(std::max<int64_t>(0, options.allowed_lateness)),
        late_policy_(options.late_policy),
        dead_letter_(options.dead_letter_sink),
        staging_(options.staging_buffer_bytes, tuple_size),
        limiter_(options.producer_rate_bytes_per_sec) {
    if (disordered()) {
      reorder_capacity_ =
          std::max<size_t>(size_t{1}, options.reorder_buffer_bytes / tuple_size);
      reorder_slab_.resize(reorder_capacity_ * tuple_size);
      free_slots_.reserve(reorder_capacity_);
      for (size_t s = reorder_capacity_; s-- > 0;) {
        free_slots_.push_back(static_cast<uint32_t>(s));
      }
      use_buckets_ = lateness_ < kMaxBucketLateness;
      if (use_buckets_) {
        // Power-of-two ring covering the live tick span (< lateness + 1).
        uint64_t ring = 1;
        while (ring < static_cast<uint64_t>(lateness_) + 1) ring <<= 1;
        buckets_.resize(ring);
        bucket_mask_ = ring - 1;
        tick_heap_.reserve(std::min<uint64_t>(ring, 64));
      } else {
        heap_.reserve(reorder_capacity_);
      }
    }
  }

  /// True when Append routes through the reorder buffer instead of the
  /// historical strict-order path. A non-abort policy arms it even with
  /// zero lateness (the buffer then drains fully on every Append), so the
  /// late-tuple handling below is one code path.
  bool disordered() const {
    return lateness_ > 0 || late_policy_ != LatePolicy::kAbort;
  }

  /// One tuple held inside the lateness horizon (heap fallback only; the
  /// bucket path gets arrival stability for free from per-tick FIFOs).
  /// `seq` is the arrival ordinal, making the (ts, seq) min-heap order
  /// arrival-stable so a disorder-injected stream flushes byte-identically
  /// to its stable sort.
  struct Pending {
    int64_t ts;
    uint64_t seq;
    uint32_t slot;
  };

  /// Comparator for the (ts, seq) min-heap: true iff `a` flushes after `b`
  /// (std::push_heap builds a max-heap under it, so the front is the min).
  static bool HeapAfter(const Pending& a, const Pending& b) {
    return a.ts > b.ts || (a.ts == b.ts && a.seq > b.seq);
  }

  /// Stages `bytes` at `src` through the chunked staging loop (splitting
  /// blocks larger than the ring, publishing last_ts_/counters per chunk).
  /// Returns false iff stopped or revoked mid-way. Caller holds in_append_.
  bool StageBytes(const uint8_t* src, size_t bytes);
  /// Reorder-buffer Append path (see the file comment). Caller holds
  /// in_append_ and has validated the block shape.
  bool AppendDisordered(const uint8_t* src, size_t bytes);
  /// Pops every held tuple with ts <= horizon (in (ts, seq) order) into
  /// flush_scratch_ and stages it. INT64_MAX flushes everything (Close).
  bool FlushReorderBuffer(int64_t horizon);
  /// Bucket-path collector: drains every tick <= horizon (in tick order,
  /// arrival order within a tick) into flush_scratch_ without staging.
  void CollectBucketTicksTo(int64_t horizon);
  /// Bucket-path hard memory bound: force-flushes the entire earliest held
  /// tick into flush_scratch_ and raises late_floor_ to it, freeing at
  /// least one slot. Requires pending_count_ > 0.
  void EvictEarliestTick();
  /// Handles one late tuple per late_policy_. Returns false only for
  /// kAbort (which does not return at all — it aborts).
  void HandleLateTuple(const uint8_t* tuple);

  ShardedIngress* const owner_;
  const int index_;
  const size_t tuple_size_;
  /// Bounded-disorder contract (copied from IngressOptions; immutable).
  const int64_t lateness_;
  const LatePolicy late_policy_;
  const DeadLetterSink dead_letter_;

  /// Staging ring: this producer inserts, the merger reads and frees. The
  /// buffer's free-epoch futex doubles as the producer's back-pressure
  /// channel (WaitFreeEpoch) and its shutdown wakeup (WakeProducer).
  CircularBuffer staging_;

  /// Timestamp of the last tuple *published* to staging (store-release after
  /// the buffer's end-position release, so a merger that reads it
  /// acquire-ordered is guaranteed to see every tuple it accounts for).
  /// Meaningful only once has_appended_ is true.
  std::atomic<int64_t> last_ts_{kNoTimestamp};
  /// Separate flag rather than a sentinel last_ts value: INT64_MIN is a
  /// legal tuple timestamp, so "never appended" must not alias it. An open
  /// producer that has never appended pins the low watermark, because its
  /// first tuple could still carry any timestamp. Set (release) after the
  /// first last_ts_ publish; the merger's acquire read therefore sees a
  /// real last_ts_ whenever the flag is set.
  std::atomic<bool> has_appended_{false};
  std::atomic<bool> closed_{false};
  /// Engine-driven revocation flag (Revoke). Unlike closed_, it can flip
  /// while an Append is in flight; in_append_ closes the resulting race
  /// with the watermark (see finished()).
  std::atomic<bool> revoked_{false};
  /// True while the appending thread is between Append entry and exit.
  std::atomic<bool> in_append_{false};

  /// Per-tenant token bucket (0 = unmetered). Acquire runs on the appending
  /// thread before the staging insert; SetRate may race from any thread.
  RateLimiter limiter_;

  /// Producer-thread-private validation state (no lock: one thread per
  /// handle by contract).
  int64_t prev_append_ts_ = kNoTimestamp;

  /// --- Reorder buffer (producer-thread-private; armed iff disordered()).
  /// Slab of reorder_capacity_ tuple slots + a free list. Occupied slots
  /// are indexed either by the calendar ring (buckets_[ts & bucket_mask_]
  /// is the FIFO of slots holding tick ts; tick_heap_ is a min-heap of the
  /// distinct ticks present; pending_count_ counts held tuples) or, above
  /// kMaxBucketLateness, by heap_ — a min-heap over (ts, seq). max_seen_ts_
  /// drives the disorder horizon; late_floor_ is the overflow-raised late
  /// threshold (a tuple is late iff
  /// ts < max(max_seen_ts_ − lateness_, late_floor_)).
  size_t reorder_capacity_ = 0;
  std::vector<uint8_t> reorder_slab_;
  std::vector<uint32_t> free_slots_;
  bool use_buckets_ = false;
  std::vector<std::vector<uint32_t>> buckets_;
  uint64_t bucket_mask_ = 0;
  std::vector<int64_t> tick_heap_;
  size_t pending_count_ = 0;
  std::vector<Pending> heap_;
  std::vector<uint8_t> flush_scratch_;
  uint64_t reorder_seq_ = 0;
  int64_t max_seen_ts_ = kNoTimestamp;
  int64_t late_floor_ = kNoTimestamp;
  bool has_seen_ts_ = false;

  /// Monotone shard counters; doubled as metrics-registry series via
  /// RegisterMetrics, so stats() and a /metrics scrape read one storage.
  obs::Counter tuples_;
  obs::Counter bytes_;
  obs::Counter appends_;
  obs::Counter waits_;
  obs::Counter late_dropped_;
  obs::Counter dead_lettered_;
};

}  // namespace saber::ingest
