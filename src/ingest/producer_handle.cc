#include "ingest/producer_handle.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ingest/sharded_ingress.h"
#include "relational/tuple_ref.h"

namespace saber::ingest {

bool ProducerHandle::Append(const void* tuples, size_t bytes) {
  if (closed_.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "ProducerHandle::Append: producer %d appended after Close\n",
                 index_);
    std::abort();
  }
  if (bytes % tuple_size_ != 0) {
    std::fprintf(stderr,
                 "ProducerHandle::Append: producer %d appended %zu bytes, not "
                 "a multiple of the %zu-byte tuple size\n",
                 index_, bytes, tuple_size_);
    std::abort();
  }
  if (owner_->stopped()) return false;  // appended data would be abandoned
  if (revoked_.load()) return false;    // engine tore this shard down
  if (bytes == 0) return true;

  // Validate the shard-local timestamp order up front: the merged stream's
  // non-decreasing invariant (which dispatch, pane math and the join cut all
  // rely on) is exactly "every shard is non-decreasing", so a violation must
  // fail here, loudly, not surface as corrupt windows downstream.
  const int64_t bad =
      FirstTimestampRegression(tuples, bytes, tuple_size_, &prev_append_ts_);
  if (bad >= 0) {
    std::fprintf(stderr,
                 "ProducerHandle::Append: producer %d timestamps must be "
                 "non-decreasing (violated at tuple %lld of this append)\n",
                 index_, static_cast<long long>(bad));
    std::abort();
  }
  // Per-tenant metering, before the in-append window opens: a throttled
  // shard sleeps here without making the watermark treat it as mid-append.
  limiter_.Acquire(static_cast<int64_t>(bytes));

  // The in_append_/revoked_ handshake (all four accesses seq_cst): either
  // this thread observes revoked_ below and bails before staging anything,
  // or Revoke's caller — and through the epoch bump, the merger — observes
  // in_append_ == true and keeps treating the shard as unfinished until the
  // guard clears the flag. Both misses at once would let the merger advance
  // the watermark past a chunk still landing, which would merge it out of
  // order downstream.
  in_append_.store(true);
  struct InAppendGuard {
    ProducerHandle* p;
    ~InAppendGuard() {
      p->in_append_.store(false);
      // The merger may be parked waiting for this shard to finish.
      p->owner_->BumpIngestEpoch();
    }
  } guard{this};
  if (revoked_.load()) return false;
  const uint8_t* src = static_cast<const uint8_t*>(tuples);

  // A block larger than the staging ring can never fit in one piece; split
  // it so arbitrarily large appends simply block on staging back-pressure
  // (same recipe as Engine::InsertInto).
  const size_t max_chunk =
      std::max(tuple_size_,
               staging_.capacity() / 2 / tuple_size_ * tuple_size_);
  for (size_t off = 0; off < bytes;) {
    const size_t chunk = std::min(max_chunk, bytes - off);
    for (;;) {
      // Epoch before the attempt: a free landing after this read makes the
      // wait below return immediately (no lost wakeup).
      const uint32_t epoch = staging_.free_epoch();
      if (staging_.TryInsert(src + off, chunk)) break;
      if (owner_->stopped() || revoked_.load()) return false;
      // The merger frees staged bytes as it seals them; make sure it is
      // awake (it may be waiting for this shard to pass the watermark),
      // then sleep on the staging free channel.
      owner_->BumpIngestEpoch();
      waits_.fetch_add(1, std::memory_order_relaxed);
      staging_.WaitFreeEpoch(epoch);
    }
    off += chunk;
    int64_t chunk_last_ts;
    std::memcpy(&chunk_last_ts, src + off - tuple_size_, sizeof(chunk_last_ts));
    // Publish the watermark input *after* the buffer's end release: a merger
    // that acquires this last_ts is then guaranteed to also see every tuple
    // counted under it (the sealing proof in watermark_merger.cc needs it).
    last_ts_.store(chunk_last_ts, std::memory_order_release);
    has_appended_.store(true, std::memory_order_release);
    tuples_.fetch_add(static_cast<int64_t>(chunk / tuple_size_),
                      std::memory_order_relaxed);
    bytes_.fetch_add(static_cast<int64_t>(chunk), std::memory_order_relaxed);
    owner_->BumpIngestEpoch();
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ProducerHandle::Close() {
  if (closed_.exchange(true, std::memory_order_release)) return;
  // Wake the merger: this shard no longer pins the watermark, so previously
  // unsealable data (its own remainder, and other shards' tuples this one
  // was holding back) may now merge.
  owner_->BumpIngestEpoch();
}

void ProducerHandle::Revoke() {
  if (revoked_.exchange(true)) return;  // seq_cst, see the Append handshake
  // Unpark an Append sleeping on staging back-pressure (it re-checks
  // revoked_ before waiting again) and one throttled inside the limiter
  // (bounded wait slices; the rate is left as configured).
  staging_.WakeProducer();
  // Re-derive the watermark: if no Append is in flight this shard is now
  // finished and stops pinning W; if one is, its exit bumps the epoch again.
  owner_->BumpIngestEpoch();
}

}  // namespace saber::ingest
