#include "ingest/producer_handle.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "ingest/sharded_ingress.h"
#include "relational/tuple_ref.h"

namespace saber::ingest {

namespace {

/// `max_seen − lateness` without signed underflow (lateness >= 0): the
/// disorder horizon below which a tuple is late, clamped at INT64_MIN.
int64_t HorizonOf(int64_t max_seen, int64_t lateness) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  return (max_seen < kMin + lateness) ? kMin : max_seen - lateness;
}

}  // namespace

bool ProducerHandle::Append(const void* tuples, size_t bytes) {
  if (closed_.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "ProducerHandle::Append: producer %d appended after Close\n",
                 index_);
    std::abort();
  }
  if (bytes % tuple_size_ != 0) {
    std::fprintf(stderr,
                 "ProducerHandle::Append: producer %d appended %zu bytes, not "
                 "a multiple of the %zu-byte tuple size\n",
                 index_, bytes, tuple_size_);
    std::abort();
  }
  if (owner_->stopped()) return false;  // appended data would be abandoned
  if (revoked_.load()) return false;    // engine tore this shard down
  if (bytes == 0) return true;

  if (!disordered()) {
    // Strict-order contract (the default): validate the shard-local
    // timestamp order up front. The merged stream's non-decreasing
    // invariant (which dispatch, pane math and the join cut all rely on)
    // is exactly "every shard is non-decreasing", so a violation must fail
    // here, loudly, not surface as corrupt windows downstream.
    const int64_t bad =
        FirstTimestampRegression(tuples, bytes, tuple_size_, &prev_append_ts_);
    if (bad >= 0) {
      std::fprintf(stderr,
                   "ProducerHandle::Append: producer %d timestamps must be "
                   "non-decreasing (violated at tuple %lld of this append)\n",
                   index_, static_cast<long long>(bad));
      std::abort();
    }
  }
  // Per-tenant metering, before the in-append window opens: a throttled
  // shard sleeps here without making the watermark treat it as mid-append.
  limiter_.Acquire(static_cast<int64_t>(bytes));

  // The in_append_/revoked_ handshake (all four accesses seq_cst): either
  // this thread observes revoked_ below and bails before staging anything,
  // or Revoke's caller — and through the epoch bump, the merger — observes
  // in_append_ == true and keeps treating the shard as unfinished until the
  // guard clears the flag. Both misses at once would let the merger advance
  // the watermark past a chunk still landing, which would merge it out of
  // order downstream.
  in_append_.store(true);
  struct InAppendGuard {
    ProducerHandle* p;
    ~InAppendGuard() {
      p->in_append_.store(false);
      // The merger may be parked waiting for this shard to finish.
      p->owner_->BumpIngestEpoch();
    }
  } guard{this};
  if (revoked_.load()) return false;
  const uint8_t* src = static_cast<const uint8_t*>(tuples);
  const bool ok =
      disordered() ? AppendDisordered(src, bytes) : StageBytes(src, bytes);
  if (!ok) return false;
  appends_.Increment();
  return true;
}

bool ProducerHandle::StageBytes(const uint8_t* src, size_t bytes) {
  // A block larger than the staging ring can never fit in one piece; split
  // it so arbitrarily large appends simply block on staging back-pressure
  // (same recipe as Engine::InsertInto).
  const size_t max_chunk =
      std::max(tuple_size_,
               staging_.capacity() / 2 / tuple_size_ * tuple_size_);
  for (size_t off = 0; off < bytes;) {
    const size_t chunk = std::min(max_chunk, bytes - off);
    for (;;) {
      // Epoch before the attempt: a free landing after this read makes the
      // wait below return immediately (no lost wakeup).
      const uint32_t epoch = staging_.free_epoch();
      if (staging_.TryInsert(src + off, chunk)) break;
      if (owner_->stopped() || revoked_.load()) return false;
      // The merger frees staged bytes as it seals them; make sure it is
      // awake (it may be waiting for this shard to pass the watermark),
      // then sleep on the staging free channel.
      owner_->BumpIngestEpoch();
      waits_.Increment();
      staging_.WaitFreeEpoch(epoch);
    }
    off += chunk;
    int64_t chunk_last_ts;
    std::memcpy(&chunk_last_ts, src + off - tuple_size_, sizeof(chunk_last_ts));
    // Publish the watermark input *after* the buffer's end release: a merger
    // that acquires this last_ts is then guaranteed to also see every tuple
    // counted under it (the sealing proof in watermark_merger.cc needs it).
    last_ts_.store(chunk_last_ts, std::memory_order_release);
    has_appended_.store(true, std::memory_order_release);
    tuples_.Increment(static_cast<int64_t>(chunk / tuple_size_));
    bytes_.Increment(static_cast<int64_t>(chunk));
    owner_->BumpIngestEpoch();
  }
  return true;
}

bool ProducerHandle::AppendDisordered(const uint8_t* src, size_t bytes) {
  flush_scratch_.clear();
  for (size_t off = 0; off < bytes; off += tuple_size_) {
    const uint8_t* tuple = src + off;
    int64_t ts;
    std::memcpy(&ts, tuple, sizeof(ts));
    // Late iff below the disorder horizon (max seen − lateness) or below
    // the overflow-raised floor — either way the sorted prefix covering it
    // has already been (or may already have been) staged.
    if (has_seen_ts_ &&
        (ts < HorizonOf(max_seen_ts_, lateness_) || ts < late_floor_)) {
      HandleLateTuple(tuple);
      continue;
    }
    if (!has_seen_ts_ || ts > max_seen_ts_) {
      max_seen_ts_ = ts;
      has_seen_ts_ = true;
    }
    if (use_buckets_) {
      // Span guard: two live ticks must never share a bucket, so before a
      // tick a full ring ahead of the minimum is inserted, drain everything
      // the (freshly advanced) horizon has passed. Afterwards every held
      // tick is > max_seen − lateness >= ts − lateness > ts − ring size.
      // Unsigned subtraction so an extreme first-vs-second timestamp gap
      // cannot overflow; a tuple below the minimum wraps huge and merely
      // triggers a harmless early drain.
      if (pending_count_ > 0 &&
          static_cast<uint64_t>(ts) - static_cast<uint64_t>(tick_heap_.front()) >=
              buckets_.size()) {
        CollectBucketTicksTo(HorizonOf(max_seen_ts_, lateness_));
      }
      if (free_slots_.empty()) EvictEarliestTick();
      const uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      std::memcpy(reorder_slab_.data() + slot * tuple_size_, tuple,
                  tuple_size_);
      std::vector<uint32_t>& bucket =
          buckets_[static_cast<uint64_t>(ts) & bucket_mask_];
      if (bucket.empty()) {
        tick_heap_.push_back(ts);
        std::push_heap(tick_heap_.begin(), tick_heap_.end(),
                       std::greater<int64_t>());
      }
      bucket.push_back(slot);
      ++pending_count_;
      continue;
    }
    if (free_slots_.empty()) {
      // Hard memory bound: force-flush the earliest held tuple and raise
      // the late threshold to its timestamp. Everything still buffered and
      // every future accepted tuple is >= it (it was the (ts, seq) min and
      // the raised floor rejects later arrivals below it), so the scratch
      // block stays sorted and effective lateness shrinks instead of the
      // buffer growing.
      std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
      const Pending p = heap_.back();
      heap_.pop_back();
      const uint8_t* held = reorder_slab_.data() + p.slot * tuple_size_;
      flush_scratch_.insert(flush_scratch_.end(), held, held + tuple_size_);
      free_slots_.push_back(p.slot);
      late_floor_ = std::max(late_floor_, p.ts);
    }
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    std::memcpy(reorder_slab_.data() + slot * tuple_size_, tuple, tuple_size_);
    heap_.push_back(Pending{ts, reorder_seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
  }
  return FlushReorderBuffer(
      has_seen_ts_ ? HorizonOf(max_seen_ts_, lateness_)
                   : std::numeric_limits<int64_t>::min());
}

bool ProducerHandle::FlushReorderBuffer(int64_t horizon) {
  // Collect every held tuple the horizon has passed — sorted and
  // arrival-stable either way — appended after any force-flushed tuples
  // already in the scratch (which are <= everything still held).
  if (use_buckets_) {
    CollectBucketTicksTo(horizon);
  } else {
    while (!heap_.empty() && heap_.front().ts <= horizon) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
      const Pending p = heap_.back();
      heap_.pop_back();
      const uint8_t* held = reorder_slab_.data() + p.slot * tuple_size_;
      flush_scratch_.insert(flush_scratch_.end(), held, held + tuple_size_);
      free_slots_.push_back(p.slot);
    }
  }
  if (flush_scratch_.empty()) return true;
  const bool ok = StageBytes(flush_scratch_.data(), flush_scratch_.size());
  flush_scratch_.clear();  // on failure the ingress is stopping; data is
                           // abandoned exactly like staged-but-unsealed bytes
  return ok;
}

void ProducerHandle::CollectBucketTicksTo(int64_t horizon) {
  // Walk distinct ticks in order off the tick heap; within a tick the
  // bucket FIFO is arrival order, so the scratch gets the (ts, arrival)
  // stable order without any per-tuple comparisons.
  while (!tick_heap_.empty() && tick_heap_.front() <= horizon) {
    std::pop_heap(tick_heap_.begin(), tick_heap_.end(),
                  std::greater<int64_t>());
    const int64_t tick = tick_heap_.back();
    tick_heap_.pop_back();
    std::vector<uint32_t>& bucket =
        buckets_[static_cast<uint64_t>(tick) & bucket_mask_];
    for (const uint32_t slot : bucket) {
      const uint8_t* held = reorder_slab_.data() + slot * tuple_size_;
      flush_scratch_.insert(flush_scratch_.end(), held, held + tuple_size_);
      free_slots_.push_back(slot);
    }
    pending_count_ -= bucket.size();
    bucket.clear();  // keeps capacity: steady state allocates nothing
  }
}

void ProducerHandle::EvictEarliestTick() {
  // Hard memory bound, bucket flavor: force-flush the entire earliest held
  // tick and raise the late threshold to it. The tick is the minimum of
  // everything held, so the scratch block stays sorted; a later arrival at
  // the same tick is still accepted and stages behind it (equal timestamps
  // keep the stream non-decreasing), matching the heap path's semantics.
  std::pop_heap(tick_heap_.begin(), tick_heap_.end(), std::greater<int64_t>());
  const int64_t tick = tick_heap_.back();
  tick_heap_.pop_back();
  std::vector<uint32_t>& bucket =
      buckets_[static_cast<uint64_t>(tick) & bucket_mask_];
  for (const uint32_t slot : bucket) {
    const uint8_t* held = reorder_slab_.data() + slot * tuple_size_;
    flush_scratch_.insert(flush_scratch_.end(), held, held + tuple_size_);
    free_slots_.push_back(slot);
  }
  pending_count_ -= bucket.size();
  bucket.clear();
  late_floor_ = std::max(late_floor_, tick);
}

void ProducerHandle::HandleLateTuple(const uint8_t* tuple) {
  int64_t ts;
  std::memcpy(&ts, tuple, sizeof(ts));
  switch (late_policy_) {
    case LatePolicy::kAbort:
      std::fprintf(
          stderr,
          "ProducerHandle::Append: producer %d tuple timestamp %lld is below "
          "the late threshold %lld (max seen %lld, allowed_lateness %lld)\n",
          index_, static_cast<long long>(ts),
          static_cast<long long>(
              std::max(HorizonOf(max_seen_ts_, lateness_), late_floor_)),
          static_cast<long long>(max_seen_ts_),
          static_cast<long long>(lateness_));
      std::abort();
    case LatePolicy::kDropAndCount:
      late_dropped_.Increment();
      break;
    case LatePolicy::kDeadLetter:
      if (dead_letter_) dead_letter_(index_, tuple, tuple_size_);
      dead_lettered_.Increment();
      break;
  }
}

void ProducerHandle::Close() {
  if (closed_.load(std::memory_order_acquire)) return;
  if (disordered() && (pending_count_ > 0 || !heap_.empty()) &&
      !owner_->stopped() && !revoked_.load()) {
    // End-of-stream flush: everything still inside the lateness horizon
    // stages now, sorted, before the shard stops pinning the watermark.
    // The in_append_ guard mirrors Append's — without it a Revoke racing
    // this flush would let the merger advance the watermark past tuples
    // still landing in staging.
    in_append_.store(true);
    struct InAppendGuard {
      ProducerHandle* p;
      ~InAppendGuard() {
        p->in_append_.store(false);
        p->owner_->BumpIngestEpoch();
      }
    } guard{this};
    if (!revoked_.load()) FlushReorderBuffer(std::numeric_limits<int64_t>::max());
  }
  if (closed_.exchange(true, std::memory_order_release)) return;
  // Wake the merger: this shard no longer pins the watermark, so previously
  // unsealable data (its own remainder, and other shards' tuples this one
  // was holding back) may now merge.
  owner_->BumpIngestEpoch();
}

void ProducerHandle::Revoke() {
  if (revoked_.exchange(true)) return;  // seq_cst, see the Append handshake
  // Unpark an Append sleeping on staging back-pressure (it re-checks
  // revoked_ before waiting again) and one throttled inside the limiter
  // (bounded wait slices; the rate is left as configured). Reorder-buffered
  // tuples are simply abandoned, like staged-but-unsealed bytes.
  staging_.WakeProducer();
  // Re-derive the watermark: if no Append is in flight this shard is now
  // finished and stops pinning W; if one is, its exit bumps the epoch again.
  owner_->BumpIngestEpoch();
}

void ProducerHandle::RegisterMetrics(obs::MetricsRegistry* registry,
                                     const obs::Labels& labels,
                                     const void* owner) const {
  registry->RegisterCounter("saber_ingest_tuples_total", labels, &tuples_,
                            owner, "Tuples accepted by Append");
  registry->RegisterCounter("saber_ingest_bytes_total", labels, &bytes_,
                            owner, "Bytes accepted by Append");
  registry->RegisterCounter("saber_ingest_appends_total", labels, &appends_,
                            owner, "Successful Append calls");
  registry->RegisterCounter("saber_ingest_backpressure_waits_total", labels,
                            &waits_, owner,
                            "Producer sleeps on the staging free channel");
  registry->RegisterCounter(
      "saber_ingest_late_dropped_total", labels, &late_dropped_, owner,
      "Late tuples dropped under LatePolicy::kDropAndCount");
  registry->RegisterCounter(
      "saber_ingest_dead_lettered_total", labels, &dead_lettered_, owner,
      "Late tuples routed to the dead-letter sink");
}

}  // namespace saber::ingest
