#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace saber::obs {
class MetricsRegistry;
}  // namespace saber::obs

/// \file ingress_options.h
/// Configuration and statistics surface of the sharded ingestion stage
/// (src/ingest/). See sharded_ingress.h for the stage overview and
/// docs/architecture.md ("Ingestion stage") for the end-to-end walkthrough.

namespace saber::ingest {

/// What a producer does with a tuple that arrives *later than the allowed
/// lateness permits* — its timestamp is below the shard's disorder horizon
/// `max seen timestamp − allowed_lateness` (with `allowed_lateness == 0`
/// that is exactly a timestamp regression). See producer_handle.h for the
/// reorder-buffer mechanics and docs/architecture.md ("Event time &
/// disorder") for the end-to-end contract.
enum class LatePolicy : uint8_t {
  /// Abort the process with a clear message — the pre-disorder behavior and
  /// the default. With `allowed_lateness == 0` the message is byte-for-byte
  /// the historical "timestamps must be non-decreasing" abort.
  kAbort,
  /// Silently drop the tuple and count it (ProducerStats::late_dropped).
  kDropAndCount,
  /// Hand the tuple to `IngressOptions::dead_letter_sink` and count it
  /// (ProducerStats::dead_lettered). Falls back to kDropAndCount semantics
  /// when no sink is configured (the count still lands in dead_lettered).
  kDeadLetter,
};

/// Side sink for kDeadLetter tuples. Runs on the *producer's* thread, once
/// per late tuple, before Append returns; it must not call back into the
/// ingress. `tuple` points at `tuple_size` serialized bytes valid only for
/// the duration of the call.
using DeadLetterSink =
    std::function<void(int producer, const void* tuple, size_t tuple_size)>;

/// Knobs of one `ShardedIngress` (one sharded front end for one query input
/// stream). Units, defaults and interactions follow the EngineOptions
/// documentation style; the README carries the same table.
struct IngressOptions {
  /// Independent producer handles (shards). Each handle owns a private
  /// staging buffer and may be driven by its own client thread with no
  /// shared lock on the append path. Unit: producers. Default: 2.
  int num_producers = 2;

  /// Staging buffer capacity per producer. Unit: bytes (rounded up to a
  /// multiple of the tuple size). Default: 4 MiB. Bounds how far a fast
  /// producer can run ahead of the watermark merge before its `Append`
  /// blocks on the staging free channel; it also bounds the data abandoned
  /// by `Stop`. Must comfortably exceed the producer's append granularity.
  size_t staging_buffer_bytes = size_t{4} << 20;

  /// Merge delivery granularity: the merger accumulates merged tuples into
  /// a scratch block of at most this many bytes before handing it
  /// downstream (one `Engine::InsertInto` call per block), so per-call
  /// downstream overhead (dispatch locks, task-cut checks) is amortized
  /// over many producer appends. Unit: bytes (rounded down to a multiple of
  /// the tuple size, floored at one tuple). Default: 256 KiB. Larger blocks
  /// amortize better but add merge latency and retain staging bytes longer.
  size_t merge_batch_bytes = size_t{256} << 10;

  /// Initial per-producer rate limit (token bucket in front of each shard's
  /// staging insert). Unit: bytes/second; <= 0 leaves producers unmetered.
  /// Default: 0. Re-meter a live producer with
  /// `ShardedIngress::SetProducerRate` (thread-safe, takes effect within
  /// one limiter wait slice — see runtime/rate_limiter.h).
  double producer_rate_bytes_per_sec = 0.0;

  /// Bounded-disorder contract: how far below its shard's maximum seen
  /// timestamp a tuple may arrive and still be accepted. Unit: timestamp
  /// ticks. Default: 0 (strictly ordered input, the historical contract).
  /// A positive value arms a per-producer reorder buffer: accepted tuples
  /// are held and re-sorted until the shard's disorder horizon
  /// `max_seen − allowed_lateness` passes them, so the stream each shard
  /// *stages* stays non-decreasing and every PR 5 merge invariant holds
  /// unchanged. The effective sealing watermark becomes
  /// `min(max seen) − allowed_lateness − 1`: lateness directly adds
  /// result latency, it never reorders the merged output.
  int64_t allowed_lateness = 0;

  /// What to do with a tuple below the disorder horizon. Default: kAbort
  /// (the historical behavior). Applies with or without lateness: with
  /// `allowed_lateness == 0`, kDropAndCount/kDeadLetter turn the historical
  /// regression abort into a counted drop / side-channel delivery.
  LatePolicy late_policy = LatePolicy::kAbort;

  /// Receives kDeadLetter tuples (see DeadLetterSink). Default: none.
  DeadLetterSink dead_letter_sink;

  /// Reorder-buffer capacity per producer, bounding how many accepted
  /// tuples can be simultaneously in flight inside the lateness horizon.
  /// Unit: bytes (floored at one tuple). Default: 1 MiB. When the buffer
  /// is full the producer force-flushes its earliest held tuple early and
  /// raises the shard's late threshold to that tuple's timestamp — the
  /// memory bound is hard, and overflow *shrinks the effective lateness*
  /// instead of growing the buffer (late tuples under the raised threshold
  /// follow late_policy). Size it at least
  /// `tuples_per_tick × allowed_lateness × tuple_size` to make overflow
  /// impossible.
  size_t reorder_buffer_bytes = size_t{1} << 20;

  /// Watermark watchdog: a liveness monitor on the sealing watermark. When
  /// > 0, a dedicated thread polls the merge progress and *trips* —
  /// IngressStats::watchdog_trips plus a stderr diagnostic naming the
  /// pinning shard — once bytes sit staged but nothing has merged for this
  /// long (a producer is holding the watermark back: disconnected-but-open
  /// shard, never-appended shard, stuck client). Detection latency is at
  /// most 1.5× this interval (the thread polls at half of it). Unit:
  /// nanoseconds. Default: 0 (off).
  int64_t watchdog_nanos = 0;

  /// When the watchdog trips, also revoke the pinning shard so the
  /// watermark releases and the remaining shards merge (the revoked shard's
  /// reorder tail is abandoned — liveness bought with that shard's
  /// sub-lateness data). Default: off — observe only.
  bool watchdog_force_close = false;

  /// Prefix for the watchdog's stderr diagnostics (e.g. "query 3 input 0"
  /// when the server owns the ingress). Default: empty.
  std::string watchdog_label;

  /// Metrics registry this ingress registers its counters on
  /// (saber_ingest_* / saber_watermark_* / saber_watchdog_* series, labeled
  /// {ingress=metrics_label} and, per shard, {producer=i}). Null (default)
  /// keeps the counters private to stats(). The engine fills this in for
  /// engine-managed ingresses (Engine::AttachIngress); the registry must
  /// outlive the ingress, which unregisters on destruction.
  obs::MetricsRegistry* metrics = nullptr;
  /// Value of the `ingress` label; empty falls back to "ingress" (or, for
  /// engine-managed ingresses, to "<query>/in<input>").
  std::string metrics_label;
};

/// Per-producer counters (monotone; readable from any thread while the
/// ingress is live).
struct ProducerStats {
  int64_t tuples = 0;             ///< tuples accepted by Append
  int64_t bytes = 0;              ///< bytes accepted by Append
  int64_t appends = 0;            ///< successful Append calls
  int64_t backpressure_waits = 0; ///< sleeps on the staging free channel
  int64_t throttle_waits = 0;     ///< sleeps forced by the rate limiter
  /// Tuples below the disorder horizon dropped under kDropAndCount.
  int64_t late_dropped = 0;
  /// Tuples below the disorder horizon routed to the dead-letter sink
  /// under kDeadLetter (counted even when no sink is configured).
  int64_t dead_lettered = 0;
  /// Current rate-limit setting (bytes/s; <= 0 = unmetered).
  double rate_limit_bytes_per_sec = 0.0;
};

/// Snapshot of one ingress: per-producer counters plus merger counters.
struct IngressStats {
  std::vector<ProducerStats> producers;

  /// Merge cycles that sealed at least one tuple.
  int64_t merge_cycles = 0;
  /// Cycles that found staged bytes but could not seal any (the low
  /// watermark — min over open producers' last timestamps — had not
  /// advanced past the staged data). A persistently climbing stall count
  /// with pending bytes means one producer is holding the watermark back.
  int64_t watermark_stalls = 0;
  /// Contiguous single-producer spans copied by the k-way merge.
  int64_t merge_runs = 0;
  /// Downstream deliveries (`merge_batch_bytes`-bounded blocks).
  int64_t merged_batches = 0;
  int64_t merged_bytes = 0;
  int64_t merged_tuples = 0;

  /// Watermark-watchdog detections: staged bytes pending but no merge
  /// progress for a full watchdog interval (edge-triggered — one trip per
  /// continuous stall, re-armed when the merge moves again).
  int64_t watchdog_trips = 0;
  /// Shards the watchdog revoked under IngressOptions::watchdog_force_close.
  int64_t watchdog_force_closes = 0;
};

}  // namespace saber::ingest
