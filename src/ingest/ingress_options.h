#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file ingress_options.h
/// Configuration and statistics surface of the sharded ingestion stage
/// (src/ingest/). See sharded_ingress.h for the stage overview and
/// docs/architecture.md ("Ingestion stage") for the end-to-end walkthrough.

namespace saber::ingest {

/// Knobs of one `ShardedIngress` (one sharded front end for one query input
/// stream). Units, defaults and interactions follow the EngineOptions
/// documentation style; the README carries the same table.
struct IngressOptions {
  /// Independent producer handles (shards). Each handle owns a private
  /// staging buffer and may be driven by its own client thread with no
  /// shared lock on the append path. Unit: producers. Default: 2.
  int num_producers = 2;

  /// Staging buffer capacity per producer. Unit: bytes (rounded up to a
  /// multiple of the tuple size). Default: 4 MiB. Bounds how far a fast
  /// producer can run ahead of the watermark merge before its `Append`
  /// blocks on the staging free channel; it also bounds the data abandoned
  /// by `Stop`. Must comfortably exceed the producer's append granularity.
  size_t staging_buffer_bytes = size_t{4} << 20;

  /// Merge delivery granularity: the merger accumulates merged tuples into
  /// a scratch block of at most this many bytes before handing it
  /// downstream (one `Engine::InsertInto` call per block), so per-call
  /// downstream overhead (dispatch locks, task-cut checks) is amortized
  /// over many producer appends. Unit: bytes (rounded down to a multiple of
  /// the tuple size, floored at one tuple). Default: 256 KiB. Larger blocks
  /// amortize better but add merge latency and retain staging bytes longer.
  size_t merge_batch_bytes = size_t{256} << 10;

  /// Initial per-producer rate limit (token bucket in front of each shard's
  /// staging insert). Unit: bytes/second; <= 0 leaves producers unmetered.
  /// Default: 0. Re-meter a live producer with
  /// `ShardedIngress::SetProducerRate` (thread-safe, takes effect within
  /// one limiter wait slice — see runtime/rate_limiter.h).
  double producer_rate_bytes_per_sec = 0.0;
};

/// Per-producer counters (monotone; readable from any thread while the
/// ingress is live).
struct ProducerStats {
  int64_t tuples = 0;             ///< tuples accepted by Append
  int64_t bytes = 0;              ///< bytes accepted by Append
  int64_t appends = 0;            ///< successful Append calls
  int64_t backpressure_waits = 0; ///< sleeps on the staging free channel
  int64_t throttle_waits = 0;     ///< sleeps forced by the rate limiter
  /// Current rate-limit setting (bytes/s; <= 0 = unmetered).
  double rate_limit_bytes_per_sec = 0.0;
};

/// Snapshot of one ingress: per-producer counters plus merger counters.
struct IngressStats {
  std::vector<ProducerStats> producers;

  /// Merge cycles that sealed at least one tuple.
  int64_t merge_cycles = 0;
  /// Cycles that found staged bytes but could not seal any (the low
  /// watermark — min over open producers' last timestamps — had not
  /// advanced past the staged data). A persistently climbing stall count
  /// with pending bytes means one producer is holding the watermark back.
  int64_t watermark_stalls = 0;
  /// Contiguous single-producer spans copied by the k-way merge.
  int64_t merge_runs = 0;
  /// Downstream deliveries (`merge_batch_bytes`-bounded blocks).
  int64_t merged_batches = 0;
  int64_t merged_bytes = 0;
  int64_t merged_tuples = 0;
};

}  // namespace saber::ingest
