#include "ingest/sharded_ingress.h"

#include <chrono>
#include <cstdio>

#include "core/engine.h"
#include "runtime/clock.h"
#include "runtime/status.h"

namespace saber::ingest {

ShardedIngress::ShardedIngress(size_t tuple_size, const IngressOptions& options,
                               Downstream downstream)
    : tuple_size_(tuple_size), options_(options) {
  SABER_CHECK(tuple_size_ >= sizeof(int64_t));
  SABER_CHECK(options_.num_producers > 0);
  std::vector<ProducerHandle*> raw;
  raw.reserve(static_cast<size_t>(options_.num_producers));
  for (int i = 0; i < options_.num_producers; ++i) {
    producers_.emplace_back(new ProducerHandle(this, i, tuple_size_, options_));
    raw.push_back(producers_.back().get());
  }
  merger_ = std::make_unique<WatermarkMerger>(
      std::move(raw), tuple_size_, options_.merge_batch_bytes,
      std::move(downstream));
  if (options_.metrics != nullptr) RegisterMetrics();
  merger_thread_ = std::thread([this] { MergerLoop(); });
  if (options_.watchdog_nanos > 0) {
    watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  }
}

void ShardedIngress::RegisterMetrics() {
  obs::MetricsRegistry* registry = options_.metrics;
  const std::string& ingress_label =
      options_.metrics_label.empty() ? std::string("ingress")
                                     : options_.metrics_label;
  const obs::Labels base = {{"ingress", ingress_label}};
  merger_->RegisterMetrics(registry, base, this);
  registry->RegisterCounter(
      "saber_watchdog_trips_total", base, &watchdog_trips_, this,
      "Watermark-watchdog detections (staged bytes, no merge progress)");
  registry->RegisterCounter(
      "saber_watchdog_force_closes_total", base, &watchdog_force_closes_,
      this, "Shards revoked by the watchdog (watchdog_force_close)");
  for (const auto& p : producers_) {
    obs::Labels labels = base;
    labels.emplace_back("producer", std::to_string(p->index()));
    p->RegisterMetrics(registry, labels, this);
  }
  // Throttle waits are owned by each shard's rate limiter; fold them in at
  // snapshot time (the collector contract in obs/metrics.h).
  registry->AddCollector(
      [this, registry, base] {
        for (const auto& p : producers_) {
          obs::Labels labels = base;
          labels.emplace_back("producer", std::to_string(p->index()));
          registry
              ->GetCounter("saber_ingest_throttle_waits_total", labels,
                           "Producer sleeps forced by the rate limiter")
              ->StoreForCollector(p->throttle_waits());
        }
      },
      this);
}

std::unique_ptr<ShardedIngress> ShardedIngress::ForQuery(
    QueryHandle* q, int input, const IngressOptions& options) {
  const size_t tsz = q->def().input_schema[input].tuple_size();
  return std::make_unique<ShardedIngress>(
      tsz, options, [q, input](const uint8_t* data, size_t bytes) {
        q->InsertInto(input, data, bytes);
      });
}

ShardedIngress::~ShardedIngress() {
  Stop();
  // Detach the external series and the throttle collector before the
  // producer handles and merger (their storage) are destroyed.
  if (options_.metrics != nullptr) options_.metrics->Unregister(this);
}

void ShardedIngress::CloseAll() {
  for (auto& p : producers_) p->Close();
}

void ShardedIngress::Revoke() {
  // Unlike CloseAll this is safe while client threads are mid-Append: each
  // shard's in_append_ handshake keeps the watermark honest until the
  // in-flight call bails out. After every shard is finished, Drain() waits
  // only for the staged remainder to merge and deliver.
  for (auto& p : producers_) p->Revoke();
}

void ShardedIngress::SetProducerRate(int producer, double bytes_per_second) {
  producers_[static_cast<size_t>(producer)]->SetRate(bytes_per_second);
}

void ShardedIngress::Drain() {
  for (;;) {
    const uint32_t seen = done_epoch_.load(std::memory_order_acquire);
    if (drained_.load(std::memory_order_acquire) ||
        stop_.load(std::memory_order_acquire)) {
      return;
    }
    done_epoch_.wait(seen, std::memory_order_acquire);
  }
}

void ShardedIngress::Stop() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    // Wake everyone: producers parked on staging back-pressure re-check
    // stopped(), the merger re-checks stop_ after its current cycle.
    for (auto& p : producers_) p->staging_.WakeProducer();
    BumpIngestEpoch();
    ingest_epoch_.notify_all();
    watchdog_cv_.notify_all();
  }
  {
    // Serializes concurrent Stop callers (e.g. an explicit Stop racing the
    // destructor's) around the one legal join.
    std::lock_guard<std::mutex> lock(join_mu_);
    if (merger_thread_.joinable()) merger_thread_.join();
    if (watchdog_thread_.joinable()) watchdog_thread_.join();
  }
  done_epoch_.fetch_add(1, std::memory_order_release);
  done_epoch_.notify_all();
}

IngressStats ShardedIngress::stats() const {
  IngressStats s;
  s.producers.reserve(producers_.size());
  for (const auto& p : producers_) {
    ProducerStats ps;
    ps.tuples = p->tuples();
    ps.bytes = p->bytes();
    ps.appends = p->appends();
    ps.backpressure_waits = p->backpressure_waits();
    ps.throttle_waits = p->throttle_waits();
    ps.late_dropped = p->late_dropped();
    ps.dead_lettered = p->dead_lettered();
    ps.rate_limit_bytes_per_sec = p->rate_bytes_per_sec();
    s.producers.push_back(ps);
  }
  s.merge_cycles = merger_->merge_cycles();
  s.watermark_stalls = merger_->watermark_stalls();
  s.merge_runs = merger_->merge_runs();
  s.merged_batches = merger_->merged_batches();
  s.merged_bytes = merger_->merged_bytes();
  s.merged_tuples = merger_->merged_tuples();
  s.watchdog_trips = watchdog_trips_.value();
  s.watchdog_force_closes =
      watchdog_force_closes_.value();
  return s;
}

void ShardedIngress::BumpIngestEpoch() {
  ingest_epoch_.fetch_add(1, std::memory_order_seq_cst);
  // Fast path: skip the futex wake syscall while the merger is busy
  // merging. Correctness does not hinge on this flag — atomic::wait is
  // futex-backed and re-checks the epoch *value* before sleeping, so a bump
  // that lands before the merger's wait makes the wait return immediately
  // even with the notify suppressed. The flag only has to make "merger
  // already asleep ⟹ producer sees waiting==true" hold, which the seq_cst
  // bump/store pair guarantees (store-buffering litmus): if this load reads
  // false, the merger's waiting store — and therefore its sleep — comes
  // later, and its pre-sleep value check observes our bump.
  if (merger_waiting_.load(std::memory_order_seq_cst)) {
    ingest_epoch_.notify_all();
  }
}

void ShardedIngress::MergerLoop() {
  for (;;) {
    // Epoch before the cycle: appends landing mid-cycle bump it, so the
    // wait below returns immediately instead of losing the wakeup.
    const uint32_t seen = ingest_epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    const WatermarkMerger::CycleResult r = merger_->RunCycle();
    if (r.drained) {
      // All shards finished and empty: nothing can ever arrive again (Close
      // and Revoke are terminal), so the merger retires. Stop() still joins
      // us.
      drained_.store(true, std::memory_order_release);
      done_epoch_.fetch_add(1, std::memory_order_release);
      done_epoch_.notify_all();
      return;
    }
    if (r.merged_bytes > 0) continue;  // progress: immediately re-check
    merger_waiting_.store(true, std::memory_order_seq_cst);
    ingest_epoch_.wait(seen, std::memory_order_acquire);
    merger_waiting_.store(false, std::memory_order_seq_cst);
  }
}

void ShardedIngress::WatchdogLoop() {
  const int64_t interval = options_.watchdog_nanos;
  int64_t last_merged = merger_->merged_bytes();
  int64_t last_progress = NowNanos();
  bool tripped = false;
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!stop_.load(std::memory_order_acquire) &&
         !drained_.load(std::memory_order_acquire)) {
    watchdog_cv_.wait_for(lock, std::chrono::nanoseconds(interval / 2));
    if (stop_.load(std::memory_order_acquire) ||
        drained_.load(std::memory_order_acquire)) {
      break;
    }
    const int64_t now = NowNanos();
    const int64_t merged = merger_->merged_bytes();
    if (merged != last_merged) {  // the merge moved: re-arm
      last_merged = merged;
      last_progress = now;
      tripped = false;
      continue;
    }
    int64_t staged = 0;
    for (auto& p : producers_) staged += p->bytes();
    if (staged <= merged) {  // nothing pending: idle, not stalled
      last_progress = now;
      tripped = false;
      continue;
    }
    if (tripped || now - last_progress < interval) continue;

    // Pinned: bytes staged, no merge progress for a full interval. Name the
    // shard holding the watermark back — the unfinished producer with the
    // lowest published timestamp; a shard that never appended pins hardest
    // (its first tuple could still carry any timestamp).
    tripped = true;
    watchdog_trips_.Increment();
    ProducerHandle* pin = nullptr;
    bool pin_virgin = false;
    int64_t pin_ts = 0;
    for (auto& p : producers_) {
      if (p->finished()) continue;
      const bool virgin = !p->has_appended_.load(std::memory_order_acquire);
      const int64_t ts =
          virgin ? 0 : p->last_ts_.load(std::memory_order_acquire);
      if (pin == nullptr || (virgin && !pin_virgin) ||
          (virgin == pin_virgin && ts < pin_ts)) {
        pin = p.get();
        pin_virgin = virgin;
        pin_ts = ts;
      }
    }
    const char* label =
        options_.watchdog_label.empty() ? "ingress" : options_.watchdog_label.c_str();
    if (pin != nullptr) {
      std::fprintf(
          stderr,
          "[saber] watermark watchdog: %s stalled for %.1f ms with %lld "
          "byte(s) staged; shard %d pins the watermark (%s)%s\n",
          label, static_cast<double>(now - last_progress) / 1e6,
          static_cast<long long>(staged - merged), pin->index(),
          pin_virgin ? "never appended"
                     : "lowest published timestamp",
          options_.watchdog_force_close ? "; force-closing" : "");
      if (options_.watchdog_force_close) {
        pin->Revoke();
        watchdog_force_closes_.Increment();
      }
    } else {
      // Every shard is finished yet bytes sit unmerged — the merger itself
      // is stuck (most plausibly blocked in a downstream InsertInto).
      std::fprintf(
          stderr,
          "[saber] watermark watchdog: %s stalled for %.1f ms with %lld "
          "byte(s) staged and no open shard; downstream back-pressure\n",
          label, static_cast<double>(now - last_progress) / 1e6,
          static_cast<long long>(staged - merged));
    }
  }
}

}  // namespace saber::ingest
