#include "ingest/sharded_ingress.h"

#include "core/engine.h"
#include "runtime/status.h"

namespace saber::ingest {

ShardedIngress::ShardedIngress(size_t tuple_size, const IngressOptions& options,
                               Downstream downstream)
    : tuple_size_(tuple_size), options_(options) {
  SABER_CHECK(tuple_size_ >= sizeof(int64_t));
  SABER_CHECK(options_.num_producers > 0);
  std::vector<ProducerHandle*> raw;
  raw.reserve(static_cast<size_t>(options_.num_producers));
  for (int i = 0; i < options_.num_producers; ++i) {
    producers_.emplace_back(new ProducerHandle(this, i, tuple_size_, options_));
    raw.push_back(producers_.back().get());
  }
  merger_ = std::make_unique<WatermarkMerger>(
      std::move(raw), tuple_size_, options_.merge_batch_bytes,
      std::move(downstream));
  merger_thread_ = std::thread([this] { MergerLoop(); });
}

std::unique_ptr<ShardedIngress> ShardedIngress::ForQuery(
    QueryHandle* q, int input, const IngressOptions& options) {
  const size_t tsz = q->def().input_schema[input].tuple_size();
  return std::make_unique<ShardedIngress>(
      tsz, options, [q, input](const uint8_t* data, size_t bytes) {
        q->InsertInto(input, data, bytes);
      });
}

ShardedIngress::~ShardedIngress() { Stop(); }

void ShardedIngress::CloseAll() {
  for (auto& p : producers_) p->Close();
}

void ShardedIngress::Revoke() {
  // Unlike CloseAll this is safe while client threads are mid-Append: each
  // shard's in_append_ handshake keeps the watermark honest until the
  // in-flight call bails out. After every shard is finished, Drain() waits
  // only for the staged remainder to merge and deliver.
  for (auto& p : producers_) p->Revoke();
}

void ShardedIngress::SetProducerRate(int producer, double bytes_per_second) {
  producers_[static_cast<size_t>(producer)]->SetRate(bytes_per_second);
}

void ShardedIngress::Drain() {
  for (;;) {
    const uint32_t seen = done_epoch_.load(std::memory_order_acquire);
    if (drained_.load(std::memory_order_acquire) ||
        stop_.load(std::memory_order_acquire)) {
      return;
    }
    done_epoch_.wait(seen, std::memory_order_acquire);
  }
}

void ShardedIngress::Stop() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    // Wake everyone: producers parked on staging back-pressure re-check
    // stopped(), the merger re-checks stop_ after its current cycle.
    for (auto& p : producers_) p->staging_.WakeProducer();
    BumpIngestEpoch();
    ingest_epoch_.notify_all();
  }
  {
    // Serializes concurrent Stop callers (e.g. an explicit Stop racing the
    // destructor's) around the one legal join.
    std::lock_guard<std::mutex> lock(join_mu_);
    if (merger_thread_.joinable()) merger_thread_.join();
  }
  done_epoch_.fetch_add(1, std::memory_order_release);
  done_epoch_.notify_all();
}

IngressStats ShardedIngress::stats() const {
  IngressStats s;
  s.producers.reserve(producers_.size());
  for (const auto& p : producers_) {
    ProducerStats ps;
    ps.tuples = p->tuples();
    ps.bytes = p->bytes();
    ps.appends = p->appends();
    ps.backpressure_waits = p->backpressure_waits();
    ps.throttle_waits = p->throttle_waits();
    ps.late_dropped = p->late_dropped();
    ps.dead_lettered = p->dead_lettered();
    ps.rate_limit_bytes_per_sec = p->rate_bytes_per_sec();
    s.producers.push_back(ps);
  }
  s.merge_cycles = merger_->merge_cycles();
  s.watermark_stalls = merger_->watermark_stalls();
  s.merge_runs = merger_->merge_runs();
  s.merged_batches = merger_->merged_batches();
  s.merged_bytes = merger_->merged_bytes();
  s.merged_tuples = merger_->merged_tuples();
  return s;
}

void ShardedIngress::BumpIngestEpoch() {
  ingest_epoch_.fetch_add(1, std::memory_order_seq_cst);
  // Fast path: skip the futex wake syscall while the merger is busy
  // merging. Correctness does not hinge on this flag — atomic::wait is
  // futex-backed and re-checks the epoch *value* before sleeping, so a bump
  // that lands before the merger's wait makes the wait return immediately
  // even with the notify suppressed. The flag only has to make "merger
  // already asleep ⟹ producer sees waiting==true" hold, which the seq_cst
  // bump/store pair guarantees (store-buffering litmus): if this load reads
  // false, the merger's waiting store — and therefore its sleep — comes
  // later, and its pre-sleep value check observes our bump.
  if (merger_waiting_.load(std::memory_order_seq_cst)) {
    ingest_epoch_.notify_all();
  }
}

void ShardedIngress::MergerLoop() {
  for (;;) {
    // Epoch before the cycle: appends landing mid-cycle bump it, so the
    // wait below returns immediately instead of losing the wakeup.
    const uint32_t seen = ingest_epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    const WatermarkMerger::CycleResult r = merger_->RunCycle();
    if (r.drained) {
      // All shards finished and empty: nothing can ever arrive again (Close
      // and Revoke are terminal), so the merger retires. Stop() still joins
      // us.
      drained_.store(true, std::memory_order_release);
      done_epoch_.fetch_add(1, std::memory_order_release);
      done_epoch_.notify_all();
      return;
    }
    if (r.merged_bytes > 0) continue;  // progress: immediately re-check
    merger_waiting_.store(true, std::memory_order_seq_cst);
    ingest_epoch_.wait(seen, std::memory_order_acquire);
    merger_waiting_.store(false, std::memory_order_seq_cst);
  }
}

}  // namespace saber::ingest
