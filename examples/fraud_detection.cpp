/// Credit-card fraud detection (§2.1): "credit card fraud detection systems
/// must process up to 40,000 transactions per second and detect fraudulent
/// activity within 25 ms" [26]. This example runs a card-velocity check — a
/// grouped sliding-window aggregation with a HAVING filter — under a paced
/// 40 k tx/s feed and reports the end-to-end latency distribution against
/// the paper's 25 ms bound.
///
///   select timestamp, card, count(*) as tx_cnt, sum(amount) as total
///   from Transactions [range 5 slide 1]       -- 5 s window, 1 s slide
///   group by card
///   having tx_cnt > 25                        -- velocity rule
///
/// Build & run:  ./build/examples/fraud_detection

#include <cstdio>
#include <random>
#include <vector>

#include "core/engine.h"
#include "runtime/rate_limiter.h"

using namespace saber;

namespace {

Schema TransactionSchema() {
  return Schema::MakeStream({{"card", DataType::kInt64},
                             {"merchant", DataType::kInt32},
                             {"amount", DataType::kFloat},
                             {"country", DataType::kInt32}});
}

/// ~40k transactions per second of application time; a small set of "hot"
/// cards transacts at high velocity (the fraud pattern to catch).
std::vector<uint8_t> GenerateTransactions(size_t n, uint32_t seed) {
  Schema s = TransactionSchema();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> card(0, 19'999);
  std::uniform_int_distribution<int64_t> hot_card(0, 19);
  std::uniform_int_distribution<int> hot(0, 999);
  std::uniform_int_distribution<int> merchant(0, 4999);
  std::uniform_real_distribution<float> amount(1.0f, 500.0f);
  std::uniform_int_distribution<int> country(0, 40);
  std::vector<uint8_t> out(n * s.tuple_size());
  for (size_t i = 0; i < n; ++i) {
    TupleWriter w(out.data() + i * s.tuple_size(), &s);
    w.SetInt64(0, static_cast<int64_t>(i / 40'000));  // 40k tx per second
    const bool is_hot = hot(rng) < 5;  // 0.5% of traffic on 20 hot cards
    w.SetInt64(1, is_hot ? hot_card(rng) : card(rng) + 100);
    w.SetInt32(2, merchant(rng));
    w.SetFloat(3, amount(rng));
    w.SetInt32(4, country(rng));
  }
  return out;
}

}  // namespace

int main() {
  Schema s = TransactionSchema();
  QueryDef query =
      QueryBuilder("velocity_check", s)
          .Window(WindowDefinition::Time(5, 1))
          .GroupBy({Col(s, "card")}, {"card"})
          .Aggregate(AggregateFunction::kCount, nullptr, "tx_cnt")
          .Aggregate(AggregateFunction::kSum, Col(s, "amount"), "total")
          .Build();
  query.having = Gt(Col(query.output_schema, "tx_cnt"), Lit(25.0));
  std::printf("output schema: %s\n", query.output_schema.ToString().c_str());

  EngineOptions options;
  options.num_cpu_workers = 4;
  options.use_gpu = true;
  // Small tasks keep latency low (§6.4's throughput/latency trade-off).
  options.task_size = 32 * 1024;
  Engine engine(options);
  QueryHandle* q = engine.AddQuery(query);

  int64_t alerts = 0;
  const Schema& out = q->output_schema();
  q->SetSink([&](const uint8_t* rows, size_t bytes) {
    for (size_t off = 0; off < bytes; off += out.tuple_size()) {
      TupleRef row(rows + off, &out);
      if (alerts < 5) {
        std::printf("  ALERT t=%-4lld card=%-4lld tx=%.0f total=%.2f\n",
                    static_cast<long long>(row.timestamp()),
                    static_cast<long long>(row.GetInt64(1)),
                    row.GetDouble(2), row.GetDouble(3));
      }
      ++alerts;
    }
  });

  engine.Start();
  // Pace the feed at 40k tx/s of wall-clock time (~1.4 MB/s) so the
  // measured latency reflects a live system, not a backlogged drain.
  auto data = GenerateTransactions(600'000, 3);  // ~15 s of traffic
  const size_t tsz = s.tuple_size();
  RateLimiter limiter(40'000.0 * tsz);  // 40k tx/s of wall-clock time
  const size_t chunk = 4'000 * tsz;     // 100 ms of traffic per chunk
  for (size_t off = 0; off < data.size(); off += chunk) {
    const size_t m = std::min(chunk, data.size() - off);
    limiter.Acquire(m);
    q->Insert(data.data() + off, m);
  }
  engine.Drain();

  std::printf("...\n");
  std::printf("transactions : %lld\n", static_cast<long long>(q->tuples_in()));
  std::printf("alerts       : %lld\n", static_cast<long long>(alerts));
  const int64_t p50 = q->latency().PercentileNanos(50) / 1'000'000;
  const int64_t p90 = q->latency().PercentileNanos(90) / 1'000'000;
  const int64_t p95 = q->latency().PercentileNanos(95) / 1'000'000;
  const int64_t p99 = q->latency().PercentileNanos(99) / 1'000'000;
  std::printf("latency p50  : %lld ms\n", static_cast<long long>(p50));
  std::printf("latency p90  : %lld ms\n", static_cast<long long>(p90));
  std::printf("latency p95  : %lld ms\n", static_cast<long long>(p95));
  std::printf("latency p99  : %lld ms  (paper bound: 25 ms [26])\n",
              static_cast<long long>(p99));
  return p99 <= 25 ? 0 : 1;
}
