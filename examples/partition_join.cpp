/// Partition-join UDF example (§2.4): match buy and sell orders per symbol
/// inside 1-second tumbling windows. The n-ary partition join first
/// partitions both windows by symbol and then joins the matching partitions
/// — a shape that a standard θ-join cannot express efficiently (and, with
/// per-partition logic, not at all).
///
///   -- conceptually:
///   select window_ts, symbol, buy.price, sell.price
///   from Buys  [range 1 slide 1] as buy,
///        Sells [range 1 slide 1] as sell
///   partition by symbol
///   where buy.price >= sell.price     -- residual: crossing orders only
///
/// Build & run:  ./build/examples/partition_join

#include <cstdio>
#include <random>
#include <vector>

#include "core/engine.h"
#include "udf/partition_join.h"

using namespace saber;

namespace {

Schema OrderSchema() {
  // timestamp, symbol id, price (cents), quantity.
  return Schema::MakeStream({{"symbol", DataType::kInt32},
                             {"price", DataType::kInt32},
                             {"qty", DataType::kInt32}});
}

std::vector<uint8_t> GenerateOrders(size_t n, uint32_t seed, int price_base) {
  Schema s = OrderSchema();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> symbol(0, 199);
  std::uniform_int_distribution<int> jitter(-50, 50);
  std::uniform_int_distribution<int> qty(1, 500);
  std::vector<uint8_t> out(n * s.tuple_size());
  for (size_t i = 0; i < n; ++i) {
    TupleWriter w(out.data() + i * s.tuple_size(), &s);
    w.SetInt64(0, static_cast<int64_t>(i / 1000));  // ~1000 orders per second
    w.SetInt32(1, symbol(rng));
    w.SetInt32(2, price_base + jitter(rng));
    w.SetInt32(3, qty(rng));
  }
  return out;
}

}  // namespace

int main() {
  Schema orders = OrderSchema();

  // Partition key: the symbol. Residual: only crossing orders match.
  QueryDef query = MakePartitionJoinQuery(
      "order_matching", orders, orders,
      WindowDefinition::Time(1, 1),  // 1 s tumbling windows
      Col(orders, "symbol"), Col(orders, "symbol"),
      Ge(Col(orders, "price"), Col(orders, "price", Side::kRight)));
  std::printf("output schema: %s\n", query.output_schema.ToString().c_str());

  EngineOptions options;
  options.num_cpu_workers = 4;
  options.use_gpu = true;
  Engine engine(options);
  QueryHandle* q = engine.AddQuery(query);

  int64_t matches = 0;
  const Schema& out = q->output_schema();
  const int sym = out.FieldIndex("key");
  const int buy_price = out.FieldIndex("l_price");
  const int sell_price = out.FieldIndex("r_price");
  q->SetSink([&](const uint8_t* rows, size_t bytes) {
    for (size_t off = 0; off < bytes; off += out.tuple_size()) {
      TupleRef row(rows + off, &out);
      if (matches < 5) {
        std::printf("  match: t=%-4lld symbol=%-4lld buy=%d sell=%d\n",
                    static_cast<long long>(row.timestamp()),
                    static_cast<long long>(row.GetInt64(sym)),
                    row.GetInt32(buy_price), row.GetInt32(sell_price));
      }
      ++matches;
    }
  });

  engine.Start();
  // Buys priced slightly above sells so roughly half of same-symbol pairs
  // cross.
  auto buys = GenerateOrders(1'000'000, 1, 10'000);
  auto sells = GenerateOrders(1'000'000, 2, 10'000);
  const size_t tsz = orders.tuple_size();
  const size_t chunk = 8192 * tsz;
  for (size_t off = 0; off < buys.size(); off += chunk) {
    const size_t m = std::min(chunk, buys.size() - off);
    q->InsertInto(0, buys.data() + off, m);
    q->InsertInto(1, sells.data() + off, m);
  }
  engine.Drain();

  std::printf("...\n");
  std::printf("orders in    : %lld x2\n",
              static_cast<long long>(q->tuples_in() / 2));
  std::printf("matches out  : %lld\n", static_cast<long long>(matches));
  std::printf("CPU tasks    : %lld\n",
              static_cast<long long>(q->tasks_on(Processor::kCpu)));
  std::printf("GPGPU tasks  : %lld\n",
              static_cast<long long>(q->tasks_on(Processor::kGpu)));
  return 0;
}
