/// Smart-grid anomaly detection (§6.1, Appendix A.2): the full SG operator
/// graph — SG1 (global average load) and SG2 (per-plug average load) feed
/// SG3, a stream join that flags plugs whose local average exceeds the
/// global average, counted per house. Demonstrates query chaining
/// (Engine::Connect) across four queries.

#include <cstdio>
#include <map>

#include "core/engine.h"
#include "runtime/clock.h"
#include "workloads/smart_grid.h"

using namespace saber;

int main() {
  sg::GridOptions grid;
  grid.num_houses = 20;
  grid.readings_per_second = 100'000;
  const size_t num_readings = 2'000'000;  // 20 seconds of readings
  std::printf("generating %zu smart-meter readings from %d houses...\n",
              num_readings, grid.num_houses);
  auto readings = sg::GenerateReadings(num_readings, grid);

  // Scaled-down windows (the paper uses 3600 s over multi-hour traces).
  QueryDef sg1 = sg::MakeSG1(/*window=*/5, /*slide=*/1);
  QueryDef sg2 = sg::MakeSG2(5, 1);
  sg::SG3Queries sg3 = sg::MakeSG3(sg1, sg2);

  EngineOptions options;
  options.num_cpu_workers = 6;
  options.use_gpu = true;
  options.task_size = 256 * 1024;

  Engine engine(options);
  QueryHandle* h1 = engine.AddQuery(sg1);
  QueryHandle* h2 = engine.AddQuery(sg2);
  QueryHandle* hj = engine.AddQuery(sg3.join);
  QueryHandle* hc = engine.AddQuery(sg3.count);
  engine.Connect(h1, hj, /*input=*/0);  // global averages -> join left
  engine.Connect(h2, hj, /*input=*/1);  // local averages  -> join right
  engine.Connect(hj, hc, /*input=*/0);  // outlier pairs   -> count

  std::map<int64_t, double> outliers_by_house;
  const Schema& out = hc->output_schema();
  hc->SetSink([&](const uint8_t* rows, size_t bytes) {
    for (size_t off = 0; off < bytes; off += out.tuple_size()) {
      TupleRef row(rows + off, &out);
      outliers_by_house[row.GetInt64(1)] += row.GetDouble(2);
    }
  });

  engine.Start();
  Stopwatch wall;
  const size_t chunk = 8192 * 32;
  for (size_t off = 0; off < readings.size(); off += chunk) {
    const size_t n = std::min(chunk, readings.size() - off);
    h1->Insert(readings.data() + off, n);
    h2->Insert(readings.data() + off, n);
  }
  engine.Drain();
  const double secs = wall.ElapsedSeconds();

  const double gb = 2.0 * readings.size() / (1 << 30);
  std::printf("\nprocessed %.2f GB through 4 chained queries in %.2fs "
              "(%.2f GB/s)\n", gb, secs, gb / secs);
  std::printf("outlier-plug observations per house (top 5):\n");
  std::multimap<double, int64_t, std::greater<>> ranked;
  for (auto& [house, cnt] : outliers_by_house) ranked.emplace(cnt, house);
  int shown = 0;
  for (auto& [cnt, house] : ranked) {
    std::printf("  house %2lld : %8.0f\n", static_cast<long long>(house), cnt);
    if (++shown == 5) break;
  }
  std::printf("(houses with house%%5==4 run hottest by construction)\n");
  return 0;
}
