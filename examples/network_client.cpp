/// Network client: drive the SABER TCP front end with the client library.
///
/// Self-contained — starts an engine and a net::SaberServer on a loopback
/// ephemeral port in-process, then talks to it exactly the way a remote
/// peer would:
///
///   1. control plane: submit streaming SQL, get the admitted query's
///      wire id and schemas back (net::ControlClient);
///   2. data plane: feed serialized tuples from two producer connections,
///      each owning one timestamp shard (net::ProducerClient);
///   3. subscribe and print the first result rows as they stream back.
///
/// Against a standalone server (./build/tools/saber_server), the same
/// client code applies verbatim — only host:port changes. See also
/// `saber_cli --connect host:port "<sql>"`.
///
/// Build & run:  ./build/examples/network_client

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "workloads/sharding.h"
#include "workloads/synthetic.h"

using namespace saber;

int main() {
  // --- Server side (normally a separate process: tools/saber_server). ---
  EngineOptions eopts;
  eopts.num_cpu_workers = 2;
  eopts.use_gpu = true;
  Engine engine(eopts);
  engine.Start();

  sql::Catalog catalog{{"Syn", syn::SyntheticSchema()}};
  net::ServerOptions sopts;  // port 0: ephemeral
  net::SaberServer server(&engine, catalog, sopts);
  if (!server.Start().ok()) return 1;
  const int port = server.port();
  std::printf("server listening on 127.0.0.1:%d\n", port);

  // --- Control plane: submit the query. ---
  auto control = net::ControlClient::Connect("127.0.0.1", port);
  if (!control.ok()) return 1;
  auto info = control.value().Submit(
      "select timestamp, avg(a1) as load from Syn [rows 256 slide 64] "
      "where a2 > 20");
  if (!info.ok()) {
    std::fprintf(stderr, "submit: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("admitted query %u: %s\n", info.value().query_id,
              info.value().output_schema.c_str());
  const uint32_t id = info.value().query_id;
  const uint32_t tsz = info.value().input_tuple_size[0];

  // --- Subscribe on a second connection; batches arrive asynchronously. ---
  auto sub = net::ControlClient::Connect("127.0.0.1", port);
  if (!sub.ok() || !sub.value().Subscribe(id).ok()) return 1;
  std::thread reader([&] {
    std::vector<uint8_t> batch;
    int64_t rows = 0;
    const size_t osz = info.value().output_tuple_size;
    for (;;) {
      auto more = sub.value().NextBatch(&batch);
      if (!more.ok() || !more.value()) break;
      for (size_t off = 0; off < batch.size(); off += osz, ++rows) {
        if (rows < 5) {
          int64_t ts;
          double load;
          std::memcpy(&ts, batch.data() + off, sizeof(ts));
          std::memcpy(&load, batch.data() + off + 8, sizeof(load));
          std::printf("  window result: ts=%-6lld load=%.2f\n",
                      static_cast<long long>(ts), load);
        }
      }
    }
    std::printf("subscription ended after %lld rows\n",
                static_cast<long long>(rows));
  });

  // --- Data plane: two producer connections, one timestamp shard each. ---
  const auto stream = syn::Generate(1 << 18);
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      net::DataHello hello;
      hello.query_id = id;
      hello.producer = static_cast<uint16_t>(p);
      hello.num_producers = 2;
      hello.tuple_size = tsz;
      auto client = net::ProducerClient::Connect("127.0.0.1", port, hello);
      if (!client.ok()) return;
      auto shard = workloads::ExtractTimestampShard(stream, tsz, p, 2);
      if (!shard.ok()) return;
      (void)client.value().Send(shard.value().data(), shard.value().size());
      (void)client.value().End();  // closes the shard; watermark releases
    });
  }
  for (auto& t : producers) t.join();

  // --- Drain, remove (ends the subscription), shut down. ---
  (void)control.value().Drain(id);
  (void)control.value().Remove(id);
  reader.join();
  server.Stop();  // always before the engine
  engine.Stop();
  std::printf("done\n");
  return 0;
}
