/// Cluster monitoring (§6.1, Appendix A.1): run CM1 and CM2 concurrently
/// over a synthetic Google-cluster-style event trace, including a failure
/// surge, and report per-query throughput, output and the CPU/GPGPU split
/// chosen by the HLS scheduler.

#include <cstdio>

#include "core/engine.h"
#include "runtime/clock.h"
#include "workloads/cluster_monitoring.h"

using namespace saber;

int main() {
  cm::TraceOptions trace_opts;
  trace_opts.events_per_second = 50'000;
  trace_opts.surges = {{20, 30, 0.8}};  // failure storm in seconds 20..30
  const size_t num_events = 3'000'000;  // 60 seconds of trace
  std::printf("generating %zu cluster events (with failure surge)...\n",
              num_events);
  auto trace = cm::GenerateTrace(num_events, trace_opts);

  EngineOptions options;
  options.num_cpu_workers = 6;
  options.use_gpu = true;
  options.task_size = 512 * 1024;

  Engine engine(options);
  QueryHandle* cm1 = engine.AddQuery(cm::MakeCM1());
  QueryHandle* cm2 = engine.AddQuery(cm::MakeCM2());

  // CM1 output: total requested CPU per scheduling category, sliding 60s/1s.
  const Schema& out1 = cm1->output_schema();
  int64_t last_printed_ts = -1;
  cm1->SetSink([&](const uint8_t* rows, size_t bytes) {
    for (size_t off = 0; off < bytes; off += out1.tuple_size()) {
      TupleRef row(rows + off, &out1);
      if (row.timestamp() > last_printed_ts && row.GetInt64(1) == 0) {
        last_printed_ts = row.timestamp();
        if (last_printed_ts % 20 == 0) {
          std::printf("  CM1 @%3llds: category 0 totalCpu=%8.1f\n",
                      static_cast<long long>(last_printed_ts),
                      row.GetDouble(2));
        }
      }
    }
  });

  engine.Start();
  Stopwatch wall;
  const size_t chunk = 4096 * 64;
  for (size_t off = 0; off < trace.size(); off += chunk) {
    const size_t n = std::min(chunk, trace.size() - off);
    cm1->Insert(trace.data() + off, n);
    cm2->Insert(trace.data() + off, n);
  }
  engine.Drain();
  const double secs = wall.ElapsedSeconds();

  auto report = [&](const char* name, QueryHandle* q) {
    const double gb = static_cast<double>(q->bytes_in()) / (1 << 30);
    const int64_t cpu = q->bytes_on(Processor::kCpu);
    const int64_t gpu = q->bytes_on(Processor::kGpu);
    std::printf(
        "%-4s: %6.2f GB in %.2fs = %6.2f GB/s | rows out %-9lld | "
        "GPGPU share %4.1f%% | latency %s\n",
        name, gb, secs, gb / secs, static_cast<long long>(q->rows_out()),
        100.0 * gpu / std::max<int64_t>(cpu + gpu, 1),
        q->latency().Summary().c_str());
  };
  std::printf("\n");
  report("CM1", cm1);
  report("CM2", cm2);
  return 0;
}
