/// Streaming SQL front end: the Appendix A queries written as CQL-style SQL
/// text, parsed against a stream catalog, and executed on the hybrid engine.

#include <cstdio>

#include "core/engine.h"
#include "sql/parser.h"
#include "workloads/cluster_monitoring.h"
#include "workloads/linear_road.h"

using namespace saber;

int main() {
  sql::Catalog catalog = {{"TaskEvents", cm::TaskEventSchema()},
                          {"PosSpeedStr", lrb::PositionSchema()}};

  const char* kCm1 =
      "select timestamp, category, sum(cpu) as totalCpu "
      "from TaskEvents [range 60 slide 1] "
      "group by category";
  const char* kLrb3 =
      "select timestamp, highway, direction, position / 5280 as segment, "
      "       avg(speed) as avgSpeed "
      "from PosSpeedStr [range 30 slide 1] "
      "group by highway, direction, position / 5280 "
      "having avgSpeed < 40.0";

  auto cm1 = sql::Parse(kCm1, catalog, "CM1");
  auto lrb3 = sql::Parse(kLrb3, catalog, "LRB3");
  SABER_CHECK(cm1.ok());
  SABER_CHECK(lrb3.ok());
  std::printf("parsed CM1  -> output %s\n",
              cm1.value().output_schema.ToString().c_str());
  std::printf("parsed LRB3 -> output %s\n",
              lrb3.value().output_schema.ToString().c_str());

  EngineOptions options;
  options.num_cpu_workers = 4;
  Engine engine(options);
  QueryHandle* h1 = engine.AddQuery(cm1.value());
  QueryHandle* h3 = engine.AddQuery(lrb3.value());

  int64_t congested_rows = 0;
  h3->SetSink([&](const uint8_t*, size_t bytes) {
    congested_rows +=
        static_cast<int64_t>(bytes / h3->output_schema().tuple_size());
  });

  engine.Start();
  cm::TraceOptions t;
  t.events_per_second = 20'000;
  auto trace = cm::GenerateTrace(2'000'000, t);  // 100 s of cluster events
  lrb::RoadOptions r;
  r.reports_per_second = 20'000;
  auto reports = lrb::GenerateReports(2'000'000, r);  // 100 s of road events
  h1->Insert(trace.data(), trace.size());
  h3->Insert(reports.data(), reports.size());
  engine.Drain();

  std::printf("CM1 window rows : %lld\n",
              static_cast<long long>(h1->rows_out()));
  std::printf("LRB3 congested  : %lld rows (HAVING avgSpeed < 40)\n",
              static_cast<long long>(congested_rows));
  return 0;
}
