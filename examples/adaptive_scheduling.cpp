/// Adaptive scheduling demo (§6.6, Fig. 16): a SELECT-style query whose cost
/// depends on data selectivity runs over a cluster trace with failure
/// surges. The HLS scheduler observes per-processor task throughput (100 ms
/// matrix refresh) and shifts work between the CPU and the GPGPU as the
/// surge raises and lowers the query's per-tuple cost.

#include <cstdio>
#include <thread>

#include "core/engine.h"
#include "runtime/clock.h"
#include "workloads/cluster_monitoring.h"
#include "workloads/synthetic.h"

using namespace saber;

int main() {
  // Trace: failure surges every 10 seconds.
  cm::TraceOptions trace_opts;
  trace_opts.events_per_second = 200'000;
  trace_opts.base_failure_probability = 0.01;
  trace_opts.surges = {{5, 10, 0.9}, {15, 20, 0.9}, {25, 30, 0.9}};
  const size_t num_events = 6'000'000;  // 30 seconds
  auto trace = cm::GenerateTrace(num_events, trace_opts);

  // Fig. 16's query shape: p1 AND (p2 OR ... OR p500) — when the gate p1
  // (a failure event) matches, all remaining predicates are evaluated.
  Schema s = cm::TaskEventSchema();
  std::vector<ExprPtr> rest;
  for (int i = 0; i < 499; ++i) {
    rest.push_back(Eq(Mod(Add(Col(s, "priority"), Lit(i)), Lit(1 << 20)),
                      Lit(-1)));
  }
  QueryDef query = QueryBuilder("SELECT500", s)
                       .Where(And({Eq(Col(s, "eventType"), Lit(cm::kFail)),
                                   Or(std::move(rest))}))
                       .Build();

  EngineOptions options;
  options.num_cpu_workers = 4;
  options.use_gpu = true;
  options.task_size = 256 * 1024;
  options.matrix_update_nanos = 100'000'000;  // 100 ms, as in §6.6
  options.switch_threshold = 16;

  Engine engine(options);
  QueryHandle* q = engine.AddQuery(query);
  engine.Start();

  // Sampler thread: once per second, report throughput and the GPGPU share.
  std::atomic<bool> done{false};
  std::thread sampler([&] {
    int64_t prev_bytes = 0, prev_cpu = 0, prev_gpu = 0;
    int second = 0;
    std::printf("%4s %12s %10s %10s\n", "t(s)", "GB/s", "GPU-share",
                "C(q,*) cpu:gpu");
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
      const int64_t bytes = q->bytes_on(Processor::kCpu) +
                            q->bytes_on(Processor::kGpu);
      const int64_t cpu = q->tasks_on(Processor::kCpu);
      const int64_t gpu = q->tasks_on(Processor::kGpu);
      const double gbps = static_cast<double>(bytes - prev_bytes) / (1 << 30);
      const int64_t dcpu = cpu - prev_cpu, dgpu = gpu - prev_gpu;
      std::printf("%4d %12.2f %9.1f%% %7.0f:%-7.0f\n", ++second, gbps,
                  100.0 * dgpu / std::max<int64_t>(dcpu + dgpu, 1),
                  engine.matrix().Rate(0, Processor::kCpu),
                  engine.matrix().Rate(0, Processor::kGpu));
      prev_bytes = bytes;
      prev_cpu = cpu;
      prev_gpu = gpu;
    }
  });

  const size_t chunk = 4096 * 64;
  for (size_t off = 0; off < trace.size(); off += chunk) {
    q->Insert(trace.data() + off, std::min(chunk, trace.size() - off));
  }
  engine.Drain();
  done.store(true);
  sampler.join();

  std::printf("\nfinal split: CPU %lld tasks, GPGPU %lld tasks\n",
              static_cast<long long>(q->tasks_on(Processor::kCpu)),
              static_cast<long long>(q->tasks_on(Processor::kGpu)));
  std::printf("rows out: %lld (failure events pass the gate)\n",
              static_cast<long long>(q->rows_out()));
  return 0;
}
