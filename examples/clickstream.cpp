/// Click-stream analytics (§2.1): "already in 2011, Facebook reported that a
/// query for click stream analytics had to be evaluated over input streams
/// of 9 GB/s, with a latency of a few seconds" [49]. This example runs two
/// queries of that shape concurrently on one engine — a trending-pages
/// counter and a session-quality filter — and reports aggregate throughput,
/// demonstrating multi-query execution over the shared worker pool and task
/// queue (§4: one system-wide queue, per-query circular buffers).
///
///   -- Q1: trending pages, refreshed every second
///   select timestamp, page, count(*) as clicks
///   from Clicks [range 60 slide 1]
///   group by page
///
///   -- Q2: engaged clicks (dwell above threshold) for downstream enrichment
///   select * from Clicks [range unbounded] where dwell > 180.0
///
/// Build & run:  ./build/examples/clickstream

#include <cstdio>
#include <random>
#include <vector>

#include "core/engine.h"
#include "sql/parser.h"

using namespace saber;

namespace {

Schema ClickSchema() {
  return Schema::MakeStream({{"user", DataType::kInt64},
                             {"page", DataType::kInt32},
                             {"dwell", DataType::kFloat},
                             {"referrer", DataType::kInt32}});
}

std::vector<uint8_t> GenerateClicks(size_t n, uint32_t seed) {
  Schema s = ClickSchema();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> user(0, 999'999);
  // Zipf-ish page popularity: a few pages dominate.
  std::uniform_int_distribution<int> pick(0, 99);
  std::uniform_int_distribution<int> head_page(0, 9);
  std::uniform_int_distribution<int> tail_page(10, 9'999);
  std::uniform_real_distribution<float> dwell(0.0f, 400.0f);
  std::vector<uint8_t> out(n * s.tuple_size());
  for (size_t i = 0; i < n; ++i) {
    TupleWriter w(out.data() + i * s.tuple_size(), &s);
    w.SetInt64(0, static_cast<int64_t>(i / 50'000));  // 50k clicks/s
    w.SetInt64(1, user(rng));
    w.SetInt32(2, pick(rng) < 70 ? head_page(rng) : tail_page(rng));
    w.SetFloat(3, dwell(rng));
    w.SetInt32(4, tail_page(rng));
  }
  return out;
}

}  // namespace

int main() {
  Schema s = ClickSchema();
  sql::Catalog catalog{{"Clicks", s}};

  auto trending = sql::Parse(
      "select timestamp, page, count(*) as clicks "
      "from Clicks [range 60 slide 1] group by page",
      catalog, "trending");
  auto engaged = sql::Parse(
      "select * from Clicks [range unbounded] where dwell > 180.0", catalog,
      "engaged");
  SABER_CHECK(trending.ok() && engaged.ok());

  EngineOptions options;
  options.num_cpu_workers = 6;
  options.use_gpu = true;
  Engine engine(options);
  QueryHandle* q1 = engine.AddQuery(std::move(trending).value());
  QueryHandle* q2 = engine.AddQuery(std::move(engaged).value());

  // Track the hottest page per emitted window from Q1's ordered output.
  const Schema& out1 = q1->output_schema();
  int64_t last_window_ts = -1, hot_page = -1, printed = 0;
  double hot_clicks = 0;
  q1->SetSink([&](const uint8_t* rows, size_t bytes) {
    for (size_t off = 0; off < bytes; off += out1.tuple_size()) {
      TupleRef row(rows + off, &out1);
      if (row.timestamp() != last_window_ts) {
        if (last_window_ts >= 0 && printed++ < 5) {
          std::printf("  t=%-4lld trending page=%lld clicks=%.0f\n",
                      static_cast<long long>(last_window_ts),
                      static_cast<long long>(hot_page), hot_clicks);
        }
        last_window_ts = row.timestamp();
        hot_clicks = 0;
      }
      if (row.GetDouble(2) > hot_clicks) {
        hot_clicks = row.GetDouble(2);
        hot_page = row.GetInt64(1);
      }
    }
  });
  int64_t engaged_rows = 0;
  q2->SetSink([&](const uint8_t*, size_t bytes) {
    engaged_rows +=
        static_cast<int64_t>(bytes / q2->output_schema().tuple_size());
  });

  engine.Start();
  auto data = GenerateClicks(4'000'000, 9);
  Stopwatch wall;
  const size_t chunk = 16384 * s.tuple_size();
  for (size_t off = 0; off < data.size(); off += chunk) {
    const size_t m = std::min(chunk, data.size() - off);
    // Both queries consume the same click stream (per-query buffers, §4.1).
    q1->Insert(data.data() + off, m);
    q2->Insert(data.data() + off, m);
  }
  engine.Drain();
  const double secs = wall.ElapsedSeconds();

  std::printf("...\n");
  std::printf("clicks in     : %lld x2 queries\n",
              static_cast<long long>(q1->tuples_in()));
  std::printf("engaged rows  : %lld\n", static_cast<long long>(engaged_rows));
  std::printf("agg throughput: %.2f Mtuples/s across both queries\n",
              (q1->tuples_in() + q2->tuples_in()) / secs / 1e6);
  std::printf("GPGPU share   : Q1 %.0f%%  Q2 %.0f%%\n",
              100.0 * q1->bytes_on(Processor::kGpu) /
                  std::max<int64_t>(1, q1->bytes_in()),
              100.0 * q2->bytes_on(Processor::kGpu) /
                  std::max<int64_t>(1, q2->bytes_in()));
  return 0;
}
