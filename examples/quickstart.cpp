/// Quickstart: build a windowed streaming SQL query, run it on the hybrid
/// CPU+GPGPU engine, and read the ordered output stream.
///
///   select timestamp, avg(a1) as load
///   from SyntheticStream [range 256 slide 64]   -- count-based window
///   where a2 > 20
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "workloads/synthetic.h"

using namespace saber;

int main() {
  // 1. Describe the input stream: 32-byte tuples, timestamp + 6 attributes.
  Schema schema = syn::SyntheticSchema();
  std::printf("input schema : %s\n", schema.ToString().c_str());

  // 2. Build the query with the fluent builder.
  QueryDef query = QueryBuilder("quickstart", schema)
                       .Window(WindowDefinition::Count(256, 64))
                       .Where(Gt(Col(schema, "a2"), Lit(20)))
                       .Aggregate(AggregateFunction::kAvg, Col(schema, "a1"),
                                  "load")
                       .Build();
  std::printf("output schema: %s\n", query.output_schema.ToString().c_str());

  // 3. Configure the engine: 4 CPU workers plus the simulated GPGPU.
  EngineOptions options;
  options.num_cpu_workers = 4;
  options.use_gpu = true;
  options.task_size = 64 * 1024;  // query task size (a physical knob, §3)

  Engine engine(options);
  QueryHandle* q = engine.AddQuery(query);

  // 4. Attach an ordered output sink.
  int64_t printed = 0;
  const Schema& out = q->output_schema();
  q->SetSink([&](const uint8_t* rows, size_t bytes) {
    for (size_t off = 0; off < bytes; off += out.tuple_size()) {
      TupleRef row(rows + off, &out);
      if (printed < 5) {
        std::printf("  window result: ts=%-6lld load=%.2f\n",
                    static_cast<long long>(row.timestamp()), row.GetDouble(1));
      }
      ++printed;
    }
  });

  // 5. Start, feed one million tuples, drain.
  engine.Start();
  auto data = syn::Generate(1'000'000);
  q->Insert(data.data(), data.size());
  engine.Drain();

  std::printf("...\n");
  std::printf("windows emitted : %lld\n", static_cast<long long>(printed));
  std::printf("tasks on CPU    : %lld\n",
              static_cast<long long>(q->tasks_on(Processor::kCpu)));
  std::printf("tasks on GPGPU  : %lld\n",
              static_cast<long long>(q->tasks_on(Processor::kGpu)));
  std::printf("task latency    : %s\n", q->latency().Summary().c_str());
  return 0;
}
