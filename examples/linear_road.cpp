/// Linear Road Benchmark (§6.1, Appendix A.3): runs LRB1 (segment
/// projection), LRB3 (congested-segment detection with GROUP-BY + HAVING)
/// and the nested LRB4 (vehicle counts per segment) over synthetic highway
/// position reports with moving congestion waves.

#include <cstdio>
#include <set>

#include "core/engine.h"
#include "runtime/clock.h"
#include "workloads/linear_road.h"

using namespace saber;

int main() {
  lrb::RoadOptions road;
  road.num_vehicles = 2000;
  road.reports_per_second = 100'000;
  const size_t num_reports = 3'000'000;  // 30 seconds of reports
  std::printf("generating %zu position reports (%d vehicles, %d highways)...\n",
              num_reports, road.num_vehicles, road.num_highways);
  auto reports = lrb::GenerateReports(num_reports, road);

  QueryDef lrb1 = lrb::MakeLRB1();
  QueryDef lrb3 = lrb::MakeLRB3(/*window=*/10, /*slide=*/2);
  lrb::LRB4Queries lrb4 = lrb::MakeLRB4();

  EngineOptions options;
  options.num_cpu_workers = 6;
  options.use_gpu = true;
  options.task_size = 512 * 1024;

  Engine engine(options);
  QueryHandle* h1 = engine.AddQuery(lrb1);
  QueryHandle* h3 = engine.AddQuery(lrb3);
  QueryHandle* h4i = engine.AddQuery(lrb4.inner);
  QueryHandle* h4o = engine.AddQuery(lrb4.outer);
  engine.Connect(h4i, h4o);

  std::set<std::tuple<int64_t, int64_t, int64_t>> congested;
  const Schema& out3 = h3->output_schema();
  h3->SetSink([&](const uint8_t* rows, size_t bytes) {
    for (size_t off = 0; off < bytes; off += out3.tuple_size()) {
      TupleRef row(rows + off, &out3);
      congested.insert({row.GetInt64(1), row.GetInt64(2), row.GetInt64(3)});
    }
  });
  int64_t max_vehicles_in_segment = 0;
  const Schema& out4 = h4o->output_schema();
  h4o->SetSink([&](const uint8_t* rows, size_t bytes) {
    for (size_t off = 0; off < bytes; off += out4.tuple_size()) {
      TupleRef row(rows + off, &out4);
      max_vehicles_in_segment = std::max(
          max_vehicles_in_segment, static_cast<int64_t>(row.GetDouble(4)));
    }
  });

  engine.Start();
  Stopwatch wall;
  const size_t chunk = 8192 * 32;
  for (size_t off = 0; off < reports.size(); off += chunk) {
    const size_t n = std::min(chunk, reports.size() - off);
    h1->Insert(reports.data() + off, n);
    h3->Insert(reports.data() + off, n);
    h4i->Insert(reports.data() + off, n);
  }
  engine.Drain();
  const double secs = wall.ElapsedSeconds();

  const double gb = 3.0 * reports.size() / (1 << 30);
  std::printf("\nprocessed %.2f GB across LRB1/LRB3/LRB4 in %.2fs (%.2f GB/s)\n",
              gb, secs, gb / secs);
  std::printf("LRB1 projected rows        : %lld\n",
              static_cast<long long>(h1->rows_out()));
  std::printf("LRB3 congested (hw,dir,seg): %zu distinct\n", congested.size());
  std::printf("LRB4 peak vehicles/segment : %lld\n",
              static_cast<long long>(max_vehicles_in_segment));
  std::printf("LRB1 GPGPU share           : %.1f%%\n",
              100.0 * h1->bytes_on(Processor::kGpu) /
                  std::max<int64_t>(h1->bytes_in(), 1));
  return 0;
}
