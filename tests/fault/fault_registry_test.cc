#include "fault/fault_registry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

/// \file fault_registry_test.cc
/// The seeded fault-injection registry: directive parsing, trigger
/// semantics (probability, every-N, one-shot), determinism under a fixed
/// seed, the zero-cost disarmed fast path, and env-var arming. The
/// registry under test is the process-global instance (the one
/// SABER_FAULT_POINT reaches), so every test disarms on entry and exit.

namespace saber::fault {
namespace {

class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }

  FaultRegistry& reg() { return FaultRegistry::Global(); }
};

TEST_F(FaultRegistryTest, DisarmedNeverFiresAndCountsNothing) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(reg().Inject("test.unarmed"));
  }
  EXPECT_EQ(reg().hits("test.unarmed"), 0);
  EXPECT_EQ(reg().fires("test.unarmed"), 0);
  EXPECT_TRUE(reg().ArmedPoints().empty());
}

TEST_F(FaultRegistryTest, EveryNFiresOnExactMultiples) {
  FaultSpec spec;
  spec.every_n = 7;
  reg().Arm("test.every", spec);
  std::vector<int> fired_at;
  for (int i = 1; i <= 21; ++i) {
    if (reg().Inject("test.every")) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{7, 14, 21}));
  EXPECT_EQ(reg().hits("test.every"), 21);
  EXPECT_EQ(reg().fires("test.every"), 3);
}

TEST_F(FaultRegistryTest, OneShotDisarmsAfterFirstFire) {
  FaultSpec spec;
  spec.every_n = 3;
  spec.one_shot = true;
  reg().Arm("test.once", spec);
  int fires = 0;
  for (int i = 0; i < 30; ++i) {
    if (reg().Inject("test.once")) ++fires;
  }
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(reg().fires("test.once"), 1);
  // The point disarmed itself; the armed list no longer carries it.
  EXPECT_TRUE(reg().ArmedPoints().empty());
}

TEST_F(FaultRegistryTest, ProbabilityIsDeterministicUnderSeed) {
  auto run = [&](uint64_t seed) {
    FaultSpec spec;
    spec.probability = 0.25;
    spec.seed = seed;
    reg().Arm("test.prob", spec);
    std::vector<int> fired_at;
    for (int i = 0; i < 400; ++i) {
      if (reg().Inject("test.prob")) fired_at.push_back(i);
    }
    return fired_at;
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a, b) << "same seed must fire the same hit numbers";
  // Roughly a quarter of the hits fire (loose bound: 4 sigma).
  EXPECT_GT(a.size(), 60u);
  EXPECT_LT(a.size(), 140u);
  const auto c = run(43);
  EXPECT_NE(a, c) << "a different seed should fire a different sequence";
}

TEST_F(FaultRegistryTest, ProbabilityOneFiresAlways) {
  FaultSpec spec;
  spec.probability = 1.0;
  reg().Arm("test.always", spec);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(reg().Inject("test.always"));
  }
  EXPECT_EQ(reg().fires("test.always"), 100);
}

TEST_F(FaultRegistryTest, RearmResetsCounters) {
  FaultSpec spec;
  spec.every_n = 2;
  reg().Arm("test.rearm", spec);
  (void)reg().Inject("test.rearm");
  (void)reg().Inject("test.rearm");
  EXPECT_EQ(reg().hits("test.rearm"), 2);
  EXPECT_EQ(reg().fires("test.rearm"), 1);
  reg().Arm("test.rearm", spec);  // re-arm resets
  EXPECT_EQ(reg().hits("test.rearm"), 0);
  EXPECT_EQ(reg().fires("test.rearm"), 0);
}

TEST_F(FaultRegistryTest, CountersSurviveDisarm) {
  FaultSpec spec;
  spec.every_n = 1;
  reg().Arm("test.counters", spec);
  (void)reg().Inject("test.counters");
  reg().Disarm("test.counters");
  EXPECT_EQ(reg().hits("test.counters"), 1);
  EXPECT_EQ(reg().fires("test.counters"), 1);
  EXPECT_FALSE(reg().Inject("test.counters"));
  EXPECT_EQ(reg().hits("test.counters"), 1) << "disarmed hits don't count";
}

TEST_F(FaultRegistryTest, ArmFromStringParsesProbability) {
  ASSERT_TRUE(reg().ArmFromString("gpu.kernel_fault=p:0.5").ok());
  const auto armed = reg().ArmedPoints();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0], "gpu.kernel_fault");
}

TEST_F(FaultRegistryTest, ArmFromStringParsesEveryNOnceSeed) {
  ASSERT_TRUE(
      reg().ArmFromString("net.server.drop_data_conn=n:7,once,seed:123").ok());
  int fires = 0;
  for (int i = 0; i < 100; ++i) {
    if (reg().Inject("net.server.drop_data_conn")) ++fires;
  }
  EXPECT_EQ(fires, 1) << "once: fires at hit 7, then disarms";
}

TEST_F(FaultRegistryTest, ArmFromStringRejectsMalformedDirectives) {
  EXPECT_FALSE(reg().ArmFromString("").ok());
  EXPECT_FALSE(reg().ArmFromString("no_equals").ok());
  EXPECT_FALSE(reg().ArmFromString("point=").ok());
  EXPECT_FALSE(reg().ArmFromString("point=x:1").ok());
  EXPECT_FALSE(reg().ArmFromString("point=p:not_a_number").ok());
  EXPECT_FALSE(reg().ArmFromString("point=p:2.0").ok()) << "p out of [0,1]";
  EXPECT_FALSE(reg().ArmFromString("point=n:0").ok()) << "n must be >= 1";
  EXPECT_FALSE(reg().ArmFromString("point=n:3,bogus").ok());
  EXPECT_TRUE(reg().ArmedPoints().empty())
      << "rejected directives must not half-arm";
}

TEST_F(FaultRegistryTest, ArmFromEnvArmsSemicolonSeparatedList) {
  ::setenv("SABER_FAULTS_TEST",
           "test.env_a=p:1.0;test.env_b=n:2,seed:9", /*overwrite=*/1);
  EXPECT_EQ(reg().ArmFromEnv("SABER_FAULTS_TEST"), 2);
  EXPECT_EQ(reg().ArmedPoints().size(), 2u);
  EXPECT_TRUE(reg().Inject("test.env_a"));
  ::unsetenv("SABER_FAULTS_TEST");
}

TEST_F(FaultRegistryTest, ArmFromEnvMissingVariableArmsNothing) {
  ::unsetenv("SABER_FAULTS_TEST_MISSING");
  EXPECT_EQ(reg().ArmFromEnv("SABER_FAULTS_TEST_MISSING"), 0);
  EXPECT_TRUE(reg().ArmedPoints().empty());
}

TEST_F(FaultRegistryTest, ConcurrentInjectCountsEveryHit) {
  FaultSpec spec;
  spec.every_n = 10;
  reg().Arm("test.mt", spec);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<int64_t> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (reg().Inject("test.mt")) fires.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg().hits("test.mt"), kThreads * kPerThread);
  EXPECT_EQ(fires.load(), kThreads * kPerThread / 10);
  EXPECT_EQ(reg().fires("test.mt"), fires.load());
}

}  // namespace
}  // namespace saber::fault
