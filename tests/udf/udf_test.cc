#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/engine.h"
#include "reference/reference.h"
#include "test_util.h"
#include "udf/median.h"
#include "udf/partition_join.h"
#include "udf/topk.h"
#include "workloads/synthetic.h"

namespace saber {
namespace {

using testing::BuffersEqual;
using testing::MakeStream;
using testing::RandomStream;

EngineOptions FastOptions(int cpu, bool gpu) {
  EngineOptions o;
  o.num_cpu_workers = cpu;
  o.use_gpu = gpu;
  o.device.pace_transfers = false;
  o.task_size = 4096;
  return o;
}

// ---------------------------------------------------------------------------
// Direct WindowUdf unit tests (no engine).
// ---------------------------------------------------------------------------

Schema TwoColSchema() {
  return Schema::MakeStream({{"key", DataType::kInt64},
                             {"val", DataType::kDouble}});
}

WindowView ViewOf(const Schema& s, const std::vector<uint8_t>& bytes) {
  return WindowView{&s, bytes.data(), bytes.size() / s.tuple_size()};
}

TEST(MedianUdf, OddCount) {
  Schema s = TwoColSchema();
  MedianUdf udf(Col(s, "val"));
  auto stream = MakeStream(s, {{1, 0, 5.0}, {2, 0, 1.0}, {3, 0, 9.0}});
  WindowView v = ViewOf(s, stream);
  ByteBuffer out;
  udf.OnWindow(&v, 1, 3, &out);
  ASSERT_EQ(out.size(), 16u);
  double med;
  std::memcpy(&med, out.data() + 8, 8);
  EXPECT_EQ(med, 5.0);
}

TEST(MedianUdf, EvenCountAveragesMiddlePair) {
  Schema s = TwoColSchema();
  MedianUdf udf(Col(s, "val"));
  auto stream =
      MakeStream(s, {{1, 0, 4.0}, {2, 0, 1.0}, {3, 0, 8.0}, {4, 0, 2.0}});
  WindowView v = ViewOf(s, stream);
  ByteBuffer out;
  udf.OnWindow(&v, 1, 4, &out);
  double med;
  std::memcpy(&med, out.data() + 8, 8);
  EXPECT_EQ(med, 3.0);  // (2 + 4) / 2
}

TEST(MedianUdf, EmptyWindowEmitsNothing) {
  Schema s = TwoColSchema();
  MedianUdf udf(Col(s, "val"));
  WindowView v{&s, nullptr, 0};
  ByteBuffer out;
  udf.OnWindow(&v, 1, 0, &out);
  EXPECT_EQ(out.size(), 0u);
}

TEST(PartitionJoinUdf, JoinsMatchingPartitionsOnly) {
  Schema s = TwoColSchema();
  PartitionJoinUdf udf(Col(s, "key"), Col(s, "key"));
  auto l = MakeStream(s, {{1, 7, 1.0}, {2, 8, 2.0}, {3, 7, 3.0}});
  auto r = MakeStream(s, {{1, 7, 10.0}, {2, 9, 20.0}, {3, 7, 30.0}});
  WindowView v[2] = {ViewOf(s, l), ViewOf(s, r)};
  ByteBuffer out;
  udf.OnWindow(v, 2, 3, &out);
  Schema in2[2] = {s, s};
  const Schema os = udf.DeriveOutputSchema(in2, 2);
  ASSERT_EQ(out.size() / os.tuple_size(), 4u);  // 2 left x 2 right with key 7
  // All rows carry key 7 and the window timestamp.
  for (size_t off = 0; off < out.size(); off += os.tuple_size()) {
    TupleRef row(out.data() + off, &os);
    EXPECT_EQ(row.timestamp(), 3);
    EXPECT_EQ(row.GetInt64(os.FieldIndex("key")), 7);
  }
  // Probe order: left-major, right arrival order within a partition.
  TupleRef first(out.data(), &os);
  EXPECT_EQ(first.GetDouble(os.FieldIndex("l_val")), 1.0);
  EXPECT_EQ(first.GetDouble(os.FieldIndex("r_val")), 10.0);
  TupleRef second(out.data() + os.tuple_size(), &os);
  EXPECT_EQ(second.GetDouble(os.FieldIndex("r_val")), 30.0);
}

TEST(PartitionJoinUdf, ResidualPredicateFilters) {
  Schema s = TwoColSchema();
  PartitionJoinUdf udf(Col(s, "key"), Col(s, "key"),
                       Gt(Col(s, "val", Side::kRight), Col(s, "val")));
  auto l = MakeStream(s, {{1, 5, 2.0}});
  auto r = MakeStream(s, {{1, 5, 1.0}, {2, 5, 3.0}});
  WindowView v[2] = {ViewOf(s, l), ViewOf(s, r)};
  ByteBuffer out;
  udf.OnWindow(v, 2, 2, &out);
  Schema in2[2] = {s, s};
  const Schema os = udf.DeriveOutputSchema(in2, 2);
  ASSERT_EQ(out.size() / os.tuple_size(), 1u);  // only r_val=3 > l_val=2
  TupleRef row(out.data(), &os);
  EXPECT_EQ(row.GetDouble(os.FieldIndex("r_val")), 3.0);
}

TEST(PartitionJoinUdf, OneSideEmptyEmitsNothing) {
  Schema s = TwoColSchema();
  PartitionJoinUdf udf(Col(s, "key"), Col(s, "key"));
  auto l = MakeStream(s, {{1, 5, 2.0}});
  WindowView v[2] = {ViewOf(s, l), WindowView{&s, nullptr, 0}};
  ByteBuffer out;
  udf.OnWindow(v, 2, 1, &out);
  EXPECT_EQ(out.size(), 0u);
}

TEST(TopKUdf, OrdersByWeightThenKey) {
  Schema s = TwoColSchema();
  TopKUdf udf(Col(s, "key"), Col(s, "val"), 2);
  // key 3: weight 10; key 1: weight 7; key 2: weight 7 (tie with 1).
  auto stream = MakeStream(s, {{1, 3, 10.0}, {2, 1, 4.0}, {3, 2, 7.0},
                               {4, 1, 3.0}});
  WindowView v = ViewOf(s, stream);
  ByteBuffer out;
  udf.OnWindow(&v, 1, 4, &out);
  Schema in1[1] = {s};
  const Schema os = udf.DeriveOutputSchema(in1, 1);
  ASSERT_EQ(out.size() / os.tuple_size(), 2u);
  TupleRef first(out.data(), &os);
  EXPECT_EQ(first.GetInt64(1), 3);
  EXPECT_EQ(first.GetDouble(2), 10.0);
  TupleRef second(out.data() + os.tuple_size(), &os);
  EXPECT_EQ(second.GetInt64(1), 1);  // tie at 7.0: smaller key wins
  EXPECT_EQ(second.GetDouble(2), 7.0);
}

TEST(TopKUdf, FewerGroupsThanK) {
  Schema s = TwoColSchema();
  TopKUdf udf(Col(s, "key"), nullptr, 10);  // count weighting
  auto stream = MakeStream(s, {{1, 5, 0.0}, {2, 5, 0.0}, {3, 9, 0.0}});
  WindowView v = ViewOf(s, stream);
  ByteBuffer out;
  udf.OnWindow(&v, 1, 3, &out);
  Schema in1[1] = {s};
  const Schema os = udf.DeriveOutputSchema(in1, 1);
  ASSERT_EQ(out.size() / os.tuple_size(), 2u);  // only two groups exist
  TupleRef first(out.data(), &os);
  EXPECT_EQ(first.GetInt64(1), 5);
  EXPECT_EQ(first.GetDouble(2), 2.0);
}

// ---------------------------------------------------------------------------
// Builder validation: UDFs are mutually exclusive with relational clauses
// and need bounded windows (query.h Validate).
// ---------------------------------------------------------------------------

TEST(UdfBuilderDeath, RejectsInvalidCombinations) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Schema s = TwoColSchema();
  auto median = std::make_shared<MedianUdf>(Col(s, "val"));
  ASSERT_DEATH(
      {
        QueryBuilder b("bad_where", s);
        b.Window(WindowDefinition::Count(8, 8));
        b.Where(Gt(Col(s, "val"), Lit(0.0)));
        b.Udf(median);
        b.Build();
      },
      "SABER_CHECK");
  ASSERT_DEATH(
      {
        QueryBuilder b("bad_agg", s);
        b.Window(WindowDefinition::Count(8, 8));
        b.Aggregate(AggregateFunction::kSum, Col(s, "val"), "x");
        b.Udf(median);
        b.Build();
      },
      "SABER_CHECK");
  ASSERT_DEATH(
      {
        QueryBuilder b("bad_unbounded", s);
        b.Window(WindowDefinition::Unbounded());
        b.Udf(median);
        b.Build();
      },
      "SABER_CHECK");
}

// ---------------------------------------------------------------------------
// Engine integration: UDF queries through the full pipeline vs reference.
// ---------------------------------------------------------------------------

ByteBuffer RunUdfQuery(const EngineOptions& o, QueryDef def,
                       const std::vector<uint8_t>& s0,
                       const std::vector<uint8_t>& s1, size_t chunk_tuples) {
  Engine engine(o);
  QueryHandle* q = engine.AddQuery(std::move(def));
  ByteBuffer out;
  q->SetSink([&](const uint8_t* d, size_t n) { out.Append(d, n); });
  engine.Start();
  const size_t t0 = q->def().input_schema[0].tuple_size();
  if (q->def().num_inputs == 2) {
    // Interleave chunks so both watermarks advance together.
    const size_t t1 = q->def().input_schema[1].tuple_size();
    const size_t c0 = chunk_tuples * t0, c1 = chunk_tuples * t1;
    size_t off0 = 0, off1 = 0;
    while (off0 < s0.size() || off1 < s1.size()) {
      if (off0 < s0.size()) {
        const size_t m = std::min(c0, s0.size() - off0);
        q->InsertInto(0, s0.data() + off0, m);
        off0 += m;
      }
      if (off1 < s1.size()) {
        const size_t m = std::min(c1, s1.size() - off1);
        q->InsertInto(1, s1.data() + off1, m);
        off1 += m;
      }
    }
  } else {
    const size_t chunk = chunk_tuples * t0;
    for (size_t off = 0; off < s0.size(); off += chunk) {
      q->Insert(s0.data() + off, std::min(chunk, s0.size() - off));
    }
  }
  engine.Drain();
  return out;
}

TEST(UdfEngine, MedianMatchesReference) {
  Schema s = syn::SyntheticSchema();
  QueryDef q = MakeMedianQuery("med", s, WindowDefinition::Count(256, 64),
                               Col(s, "a1"));
  auto data = syn::Generate(20000);
  ByteBuffer want = ReferenceEvaluate(q, data);
  EXPECT_GT(want.size(), 0u);
  ByteBuffer got = RunUdfQuery(FastOptions(3, true), q, data, {}, 777);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

TEST(UdfEngine, MedianTimeWindowMatchesReference) {
  Schema s = syn::SyntheticSchema();
  QueryDef q = MakeMedianQuery("med_t", s, WindowDefinition::Time(60, 10),
                               Col(s, "a1"));
  auto data = syn::Generate(15000);
  ByteBuffer want = ReferenceEvaluate(q, data);
  EXPECT_GT(want.size(), 0u);
  ByteBuffer got = RunUdfQuery(FastOptions(4, true), q, data, {}, 311);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

QueryDef SynPartitionJoin(WindowDefinition w, int key_mod) {
  Schema s = syn::SyntheticSchema();
  // Key = a4 % key_mod keeps partitions populated. Both keys are evaluated
  // against their own side's tuple, so both use plain column references.
  auto lk = Mod(Col(s, "a4"), Lit(static_cast<int64_t>(key_mod)));
  auto rk = Mod(Col(s, "a4"), Lit(static_cast<int64_t>(key_mod)));
  return MakePartitionJoinQuery("pjoin", s, s, w, std::move(lk), std::move(rk));
}

TEST(UdfEngine, PartitionJoinMatchesReference) {
  QueryDef q = SynPartitionJoin(WindowDefinition::Time(16, 16), 8);
  syn::GeneratorOptions go;
  go.seed = 5;
  auto s0 = syn::Generate(6000, go);
  go.seed = 6;
  auto s1 = syn::Generate(6000, go);
  ByteBuffer want = ReferenceEvaluate(q, s0, s1);
  EXPECT_GT(want.size(), 0u);
  ByteBuffer got = RunUdfQuery(FastOptions(3, true), q, s0, s1, 500);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

TEST(UdfEngine, PartitionJoinSlidingWindowMatchesReference) {
  QueryDef q = SynPartitionJoin(WindowDefinition::Time(32, 8), 4);
  syn::GeneratorOptions go;
  go.seed = 15;
  auto s0 = syn::Generate(4000, go);
  go.seed = 16;
  auto s1 = syn::Generate(4000, go);
  ByteBuffer want = ReferenceEvaluate(q, s0, s1);
  EXPECT_GT(want.size(), 0u);
  ByteBuffer got = RunUdfQuery(FastOptions(4, true), q, s0, s1, 250);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

TEST(UdfEngine, OutputIdenticalAcrossProcessorMixes) {
  QueryDef q = SynPartitionJoin(WindowDefinition::Time(16, 4), 8);
  syn::GeneratorOptions go;
  go.seed = 21;
  auto s0 = syn::Generate(5000, go);
  go.seed = 22;
  auto s1 = syn::Generate(5000, go);
  ByteBuffer base = RunUdfQuery(FastOptions(1, false), q, s0, s1, 400);
  EXPECT_GT(base.size(), 0u);
  struct Mix {
    int cpu;
    bool gpu;
  };
  for (Mix m : {Mix{0, true}, Mix{4, true}, Mix{2, false}}) {
    ByteBuffer other = RunUdfQuery(FastOptions(m.cpu, m.gpu), q, s0, s1, 400);
    EXPECT_TRUE(BuffersEqual(other, base, q.output_schema.tuple_size()))
        << m.cpu << " cpu workers, gpu=" << m.gpu;
  }
}

TEST(UdfEngine, OutputIdenticalAcrossTaskSizes) {
  Schema s = syn::SyntheticSchema();
  QueryDef q = MakeMedianQuery("med", s, WindowDefinition::Count(512, 128),
                               Col(s, "a1"));
  auto data = syn::Generate(25000);
  ByteBuffer want = ReferenceEvaluate(q, data);
  for (size_t task_size : {size_t{1024}, size_t{8192}, size_t{131072}}) {
    EngineOptions o = FastOptions(3, true);
    o.task_size = task_size;
    ByteBuffer got = RunUdfQuery(o, q, data, {}, 321);
    EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()))
        << "task size " << task_size;
  }
}

TEST(UdfEngine, WindowsSpanManyTasks) {
  // Window of 4096 tuples with 512-tuple tasks: every window spans ~8 tasks,
  // exercising multi-step pane accumulation in the assembly.
  Schema s = syn::SyntheticSchema();
  QueryDef q = MakeMedianQuery("med_span", s,
                               WindowDefinition::Count(4096, 1024), Col(s, "a1"));
  auto data = syn::Generate(20000);
  EngineOptions o = FastOptions(3, true);
  o.task_size = 512 * s.tuple_size();
  ByteBuffer want = ReferenceEvaluate(q, data);
  ByteBuffer got = RunUdfQuery(o, q, data, {}, 100);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

TEST(UdfEngine, TopKMatchesReference) {
  Schema s = syn::SyntheticSchema();
  QueryDef q = MakeTopKQuery("trending", s, WindowDefinition::Time(30, 10),
                             Col(s, "a4"), Col(s, "a1"), 5);
  auto data = syn::Generate(20000);
  ByteBuffer want = ReferenceEvaluate(q, data);
  EXPECT_GT(want.size(), 0u);
  ByteBuffer got = RunUdfQuery(FastOptions(3, true), q, data, {}, 613);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

TEST(UdfEngine, UdfOutputChainsIntoAggregation) {
  // Partition-join matches feed a GROUP-BY count per key — the SG3 shape
  // with a UDF stage. Valid only because UDF output timestamps are monotone.
  QueryDef join = SynPartitionJoin(WindowDefinition::Time(8, 8), 4);
  QueryDef agg = QueryBuilder("per_key", join.output_schema)
                     .Window(WindowDefinition::Time(32, 32))
                     .GroupBy({Col(join.output_schema, "key")}, {"key"})
                     .Aggregate(AggregateFunction::kCount, nullptr, "cnt")
                     .Build();
  syn::GeneratorOptions go;
  go.seed = 41;
  auto s0 = syn::Generate(4000, go);
  go.seed = 42;
  auto s1 = syn::Generate(4000, go);

  Engine engine(FastOptions(3, true));
  QueryHandle* hj = engine.AddQuery(join);
  QueryHandle* ha = engine.AddQuery(agg);
  engine.Connect(hj, ha);
  ByteBuffer got;
  ha->SetSink([&](const uint8_t* d, size_t n) { got.Append(d, n); });
  engine.Start();
  const size_t tsz = join.input_schema[0].tuple_size();
  const size_t chunk = 250 * tsz;
  for (size_t off = 0; off < s0.size(); off += chunk) {
    const size_t m = std::min(chunk, s0.size() - off);
    hj->InsertInto(0, s0.data() + off, m);
    hj->InsertInto(1, s1.data() + off, m);
  }
  engine.Drain();

  // Reference: two-stage evaluation over the full streams.
  ByteBuffer stage1 = ReferenceEvaluate(join, s0, s1);
  std::vector<uint8_t> inter(stage1.data(), stage1.data() + stage1.size());
  ByteBuffer want = ReferenceEvaluate(agg, inter);
  EXPECT_GT(want.size(), 0u);
  EXPECT_TRUE(BuffersEqual(got, want, agg.output_schema.tuple_size()));
}

TEST(UdfEngine, LaggingInputGatesEmission) {
  // With one stream lagging, windows must not emit until the lagging
  // watermark passes; after Drain the output matches the reference.
  QueryDef q = SynPartitionJoin(WindowDefinition::Time(8, 8), 4);
  syn::GeneratorOptions go;
  go.seed = 31;
  auto s0 = syn::Generate(3000, go);
  go.seed = 32;
  auto s1 = syn::Generate(3000, go);

  Engine engine(FastOptions(2, true));
  QueryHandle* h = engine.AddQuery(q);
  ByteBuffer out;
  int64_t rows_before_catchup = -1;
  h->SetSink([&](const uint8_t* d, size_t n) { out.Append(d, n); });
  engine.Start();
  // Feed all of stream 0, none of stream 1.
  h->InsertInto(0, s0.data(), s0.size());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rows_before_catchup = h->rows_out();
  // Now feed stream 1 and drain.
  h->InsertInto(1, s1.data(), s1.size());
  engine.Drain();
  EXPECT_EQ(rows_before_catchup, 0);  // nothing can emit while s1 is silent
  ByteBuffer want = ReferenceEvaluate(q, s0, s1);
  EXPECT_TRUE(BuffersEqual(out, want, q.output_schema.tuple_size()));
}

}  // namespace
}  // namespace saber
