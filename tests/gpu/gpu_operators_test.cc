#include "gpu/gpu_operators.h"

#include <gtest/gtest.h>

#include "cpu/cpu_operators.h"
#include "reference/reference.h"
#include "test_util.h"
#include "udf/median.h"
#include "udf/partition_join.h"

namespace saber {
namespace {

using testing::BuffersEqual;
using testing::RandomStream;
using testing::RunJoin;
using testing::RunSingleInput;

Schema SynSchema() {
  return Schema::MakeStream({{"v", DataType::kFloat},
                             {"k", DataType::kInt32},
                             {"k2", DataType::kInt32}});
}

class GpuOperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimDeviceOptions o;
    o.pace_transfers = false;  // correctness tests need no timing model
    o.num_executors = 4;
    device_ = std::make_unique<SimDevice>(o);
  }
  std::unique_ptr<SimDevice> device_;
};

TEST_F(GpuOperatorTest, SelectionMatchesReference) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("gsel", s)
                   .Where(And({Gt(Col(s, "k"), Lit(2)), Lt(Col(s, "k2"), Lit(8))}))
                   .Build();
  auto op = MakeGpuOperator(&q, device_.get());
  auto stream = RandomStream(s, 5000, 31);
  ByteBuffer want = ReferenceEvaluate(q, stream);
  ByteBuffer got = RunSingleInput(*op, q, stream, 700);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
  EXPECT_GT(got.size(), 0u);
}

TEST_F(GpuOperatorTest, ProjectionMatchesCpuByteForByte) {
  Schema s = SynSchema();
  auto make_query = [&] {
    return QueryBuilder("gproj", s)
        .Select(Col(s, "timestamp"), "timestamp")
        .Select(Add(Mul(Col(s, "v"), Lit(3.0)), Col(s, "k")), "expr")
        .Select(Col(s, "k2"), "k2")
        .Build();
  };
  QueryDef q = make_query();
  auto gpu = MakeGpuOperator(&q, device_.get());
  auto cpu = MakeCpuOperator(&q);
  auto stream = RandomStream(s, 3000, 32);
  ByteBuffer g = RunSingleInput(*gpu, q, stream, 1024);
  ByteBuffer c = RunSingleInput(*cpu, q, stream, 1024);
  EXPECT_TRUE(BuffersEqual(g, c, q.output_schema.tuple_size()));
}

TEST_F(GpuOperatorTest, IdentityProjectionForwardsBytes) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("gid", s).Build();
  auto op = MakeGpuOperator(&q, device_.get());
  auto stream = RandomStream(s, 2000, 33);
  ByteBuffer got = RunSingleInput(*op, q, stream, 512);
  ASSERT_EQ(got.size(), stream.size());
  EXPECT_EQ(std::memcmp(got.data(), stream.data(), stream.size()), 0);
}

TEST_F(GpuOperatorTest, UngroupedAggregationMatchesReference) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("gagg", s)
                   .Window(WindowDefinition::Count(64, 16))
                   .Aggregate(AggregateFunction::kSum, Col(s, "v"), "sv")
                   .Aggregate(AggregateFunction::kMax, Col(s, "v"), "mx")
                   .Build();
  auto op = MakeGpuOperator(&q, device_.get());
  auto stream = RandomStream(s, 4000, 34);
  ByteBuffer want = ReferenceEvaluate(q, stream);
  ByteBuffer got = RunSingleInput(*op, q, stream, 333);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

TEST_F(GpuOperatorTest, TimeWindowAggregationMatchesReference) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("gaggt", s)
                   .Window(WindowDefinition::Time(20, 5))
                   .Where(Gt(Col(s, "k"), Lit(1)))
                   .Aggregate(AggregateFunction::kAvg, Col(s, "v"), "av")
                   .Build();
  auto op = MakeGpuOperator(&q, device_.get());
  auto stream = RandomStream(s, 3000, 35, /*max_ts_gap=*/3);
  ByteBuffer want = ReferenceEvaluate(q, stream);
  ByteBuffer got = RunSingleInput(*op, q, stream, 211);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

TEST_F(GpuOperatorTest, GroupByMatchesReferenceAndCpu) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("ggrp", s)
                   .Window(WindowDefinition::Time(12, 4))
                   .GroupBy({Col(s, "k"), Col(s, "k2")})
                   .Aggregate(AggregateFunction::kSum, Col(s, "v"), "sv")
                   .Aggregate(AggregateFunction::kCount, nullptr, "n")
                   .Build();
  auto gpu = MakeGpuOperator(&q, device_.get());
  auto cpu = MakeCpuOperator(&q);
  auto stream = RandomStream(s, 3000, 36, 2, 5);
  ByteBuffer want = ReferenceEvaluate(q, stream);
  ByteBuffer g = RunSingleInput(*gpu, q, stream, 577);
  ByteBuffer c = RunSingleInput(*cpu, q, stream, 577);
  EXPECT_TRUE(BuffersEqual(g, want, q.output_schema.tuple_size()));
  EXPECT_TRUE(BuffersEqual(g, c, q.output_schema.tuple_size()));
}

TEST_F(GpuOperatorTest, GroupByWithHaving) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("ghav", s)
                   .Window(WindowDefinition::Count(32, 32))
                   .GroupBy({Col(s, "k")})
                   .Aggregate(AggregateFunction::kCount, nullptr, "n")
                   .Build();
  q.having = Gt(Col(q.output_schema, "n"), Lit(3.0));
  auto op = MakeGpuOperator(&q, device_.get());
  auto stream = RandomStream(s, 2000, 37, 2, 4);
  ByteBuffer want = ReferenceEvaluate(q, stream);
  ByteBuffer got = RunSingleInput(*op, q, stream, 400);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

TEST_F(GpuOperatorTest, JoinMatchesReference) {
  Schema l = Schema::MakeStream({{"key", DataType::kInt32}, {"lv", DataType::kFloat}});
  Schema r = Schema::MakeStream({{"key", DataType::kInt32}, {"rv", DataType::kFloat}});
  QueryBuilder b("gjoin", l, r);
  b.Window(WindowDefinition::Time(6, 3));
  b.JoinOn(Eq(Col(l, "key"), Col(r, "key", Side::kRight)));
  b.JoinSelect(Col(l, "timestamp"), "timestamp");
  b.JoinSelect(Col(l, "key"), "key");
  b.JoinSelect(Col(l, "lv"), "lv");
  b.JoinSelect(Col(r, "rv", Side::kRight), "rv");
  QueryDef q = b.Build();
  auto op = MakeGpuOperator(&q, device_.get());
  auto s0 = RandomStream(l, 300, 38, 2, 4);
  auto s1 = RandomStream(r, 300, 39, 2, 4);
  ByteBuffer want = ReferenceEvaluate(q, s0, s1);
  ByteBuffer got = RunJoin(*op, q, s0, s1, 7);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
  EXPECT_GT(got.size(), 0u);
}

TEST_F(GpuOperatorTest, JoinIdenticalToCpuJoin) {
  Schema l = Schema::MakeStream({{"key", DataType::kInt32}, {"lv", DataType::kFloat}});
  Schema r = Schema::MakeStream({{"key", DataType::kInt32}, {"rv", DataType::kFloat}});
  QueryBuilder b("gjoin2", l, r);
  b.Window(WindowDefinition::Count(16, 8));
  b.JoinOn(And({Eq(Col(l, "key"), Col(r, "key", Side::kRight)),
                Lt(Col(l, "lv"), Col(r, "rv", Side::kRight))}));
  QueryDef q = b.Build();
  auto gpu = MakeGpuOperator(&q, device_.get());
  auto cpu = MakeCpuOperator(&q);
  auto s0 = RandomStream(l, 400, 40, 1, 4);
  auto s1 = RandomStream(r, 400, 41, 1, 4);
  ByteBuffer g = RunJoin(*gpu, q, s0, s1, 9);
  ByteBuffer c = RunJoin(*cpu, q, s0, s1, 9);
  EXPECT_TRUE(BuffersEqual(g, c, q.output_schema.tuple_size()));
}

// Property sweep mirroring the CPU one: the GPGPU back end must agree with
// the reference under every window/batch combination.
struct GpuAggCase {
  bool time_based;
  int64_t size, slide;
  size_t batch;
  bool grouped;
};

class GpuAggregationPropertyTest : public ::testing::TestWithParam<GpuAggCase> {
 protected:
  void SetUp() override {
    SimDeviceOptions o;
    o.pace_transfers = false;
    device_ = std::make_unique<SimDevice>(o);
  }
  std::unique_ptr<SimDevice> device_;
};

TEST_P(GpuAggregationPropertyTest, MatchesReference) {
  const GpuAggCase& c = GetParam();
  Schema s = SynSchema();
  QueryBuilder b("gprop", s);
  b.Window(c.time_based ? WindowDefinition::Time(c.size, c.slide)
                        : WindowDefinition::Count(c.size, c.slide));
  if (c.grouped) b.GroupBy({Col(s, "k")});
  b.Aggregate(AggregateFunction::kSum, Col(s, "v"));
  b.Aggregate(AggregateFunction::kCount, nullptr);
  QueryDef q = b.Build();
  auto op = MakeGpuOperator(&q, device_.get());
  auto stream = RandomStream(s, 600, static_cast<uint32_t>(c.size * 7 + c.slide));
  ByteBuffer want = ReferenceEvaluate(q, stream);
  ByteBuffer got = RunSingleInput(*op, q, stream, c.batch);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpuAggregationPropertyTest,
    ::testing::Values(GpuAggCase{false, 1, 1, 7, false},
                      GpuAggCase{false, 8, 2, 64, false},
                      GpuAggCase{false, 16, 16, 100, true},
                      GpuAggCase{false, 32, 8, 600, true},
                      GpuAggCase{true, 5, 1, 50, false},
                      GpuAggCase{true, 10, 10, 13, true},
                      GpuAggCase{true, 24, 6, 250, false},
                      GpuAggCase{true, 3, 1, 9, true}));

// ---------------------------------------------------------------------------
// UDF collection kernel: the simulated device's pane-collection output must
// be byte-identical to the CPU fragment collector, for single- and two-input
// UDF queries, across window types.
// ---------------------------------------------------------------------------

TEST_F(GpuOperatorTest, UdfCollectionMatchesCpuSingleInput) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("gudf", s)
                   .Window(WindowDefinition::Time(24, 6))
                   .Udf(std::make_shared<MedianUdf>(Col(s, "v")))
                   .Build();
  auto gpu = MakeGpuOperator(&q, device_.get());
  auto cpu = MakeCpuOperator(&q);
  auto stream = RandomStream(s, 4000, 91);
  ByteBuffer g = RunSingleInput(*gpu, q, stream, 333);
  ByteBuffer c = RunSingleInput(*cpu, q, stream, 333);
  EXPECT_TRUE(BuffersEqual(g, c, q.output_schema.tuple_size()));
  EXPECT_GT(g.size(), 0u);
}

TEST_F(GpuOperatorTest, UdfCollectionMatchesCpuTwoInput) {
  Schema s = SynSchema();
  QueryDef q = MakePartitionJoinQuery("gpj", s, s, WindowDefinition::Time(8, 8),
                                      Col(s, "k"), Col(s, "k"));
  auto gpu = MakeGpuOperator(&q, device_.get());
  auto cpu = MakeCpuOperator(&q);
  auto l = RandomStream(s, 2500, 92);
  auto r = RandomStream(s, 2500, 93);
  ByteBuffer g = RunJoin(*gpu, q, l, r, 16);
  ByteBuffer c = RunJoin(*cpu, q, l, r, 16);
  EXPECT_TRUE(BuffersEqual(g, c, q.output_schema.tuple_size()));
  EXPECT_GT(g.size(), 0u);
}

TEST_F(GpuOperatorTest, UdfCollectionCountBasedWindows) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("gudf_cnt", s)
                   .Window(WindowDefinition::Count(128, 32))
                   .Udf(std::make_shared<MedianUdf>(Col(s, "v")))
                   .Build();
  auto gpu = MakeGpuOperator(&q, device_.get());
  auto stream = RandomStream(s, 3000, 94);
  ByteBuffer want = ReferenceEvaluate(q, stream);
  ByteBuffer got = RunSingleInput(*gpu, q, stream, 500);
  EXPECT_TRUE(BuffersEqual(got, want, q.output_schema.tuple_size()));
  EXPECT_GT(got.size(), 0u);
}

TEST_F(GpuOperatorTest, DeviceStatsAccumulateAcrossUdfJobs) {
  Schema s = SynSchema();
  QueryDef q = QueryBuilder("gudf_stats", s)
                   .Window(WindowDefinition::Count(64, 64))
                   .Udf(std::make_shared<MedianUdf>(Col(s, "v")))
                   .Build();
  auto gpu = MakeGpuOperator(&q, device_.get());
  auto stream = RandomStream(s, 2000, 95);
  RunSingleInput(*gpu, q, stream, 250);  // 8 batches
  EXPECT_EQ(device_->stats().jobs.load(), 8);
  EXPECT_EQ(device_->stats().bytes_in.load(),
            static_cast<int64_t>(stream.size()));
  // Collection ships every input byte back as pane payload (plus headers).
  EXPECT_GT(device_->stats().bytes_out.load(),
            static_cast<int64_t>(stream.size()));
}

}  // namespace
}  // namespace saber
