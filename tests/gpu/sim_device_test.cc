#include "gpu/sim_device.h"

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <numeric>
#include <thread>

namespace saber {
namespace {

SimDeviceOptions FastOptions() {
  SimDeviceOptions o;
  o.pace_transfers = false;
  o.num_executors = 4;
  return o;
}

TEST(SimDevice, ParallelForCoversAllIndicesExactlyOnce) {
  SimDevice dev(FastOptions());
  // ParallelFor must be driven from the execute stage; run it via a job.
  std::vector<std::atomic<int>> hits(1000);
  GpuJob* job = dev.AcquireJob();
  std::latch done(1);
  job->kernel = [&](SimDevice& d, GpuJob&) {
    d.ParallelFor(hits.size(), [&](size_t i, size_t) {
      hits[i].fetch_add(1);
    });
  };
  job->result = nullptr;
  job->num_spans = 0;
  job->on_complete = [&](GpuJob* j) {
    dev.ReleaseJob(j);
    done.count_down();
  };
  // Bypass result delivery: give the copyout stage a dummy result.
  TaskResult r;
  job->result = &r;
  dev.Submit(job);
  done.wait();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SimDevice, JobsCompleteInSubmissionOrder) {
  SimDevice dev(FastOptions());
  constexpr int kJobs = 32;
  std::vector<int> order;
  std::mutex mu;
  std::latch done(kJobs);
  std::vector<TaskResult> results(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    GpuJob* job = dev.AcquireJob();
    job->task_id = i;
    job->num_spans = 0;
    job->result = &results[i];
    job->kernel = [](SimDevice&, GpuJob&) {};
    job->on_complete = [&, i](GpuJob* j) {
      {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      }
      dev.ReleaseJob(j);
      done.count_down();
    };
    dev.Submit(job);
  }
  done.wait();
  ASSERT_EQ(order.size(), static_cast<size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(order[i], i);  // per-stage FIFO
}

TEST(SimDevice, CopyinLinearizesWrappedSpans) {
  SimDevice dev(FastOptions());
  std::vector<uint8_t> a = {1, 2, 3, 4};
  std::vector<uint8_t> b = {5, 6};
  GpuJob* job = dev.AcquireJob();
  job->num_spans = 1;
  job->host_input[0] = SpanPair{a.data(), a.size(), b.data(), b.size()};
  job->input_bytes[0] = 6;
  TaskResult r;
  job->result = &r;
  std::latch done(1);
  std::vector<uint8_t> seen;
  job->kernel = [&](SimDevice&, GpuJob& j) {
    seen.assign(j.device_in.data(), j.device_in.data() + j.device_in.size());
  };
  job->on_complete = [&](GpuJob* j) {
    dev.ReleaseJob(j);
    done.count_down();
  };
  dev.Submit(job);
  done.wait();
  EXPECT_EQ(seen, (std::vector<uint8_t>{1, 2, 3, 4, 5, 6}));
}

TEST(SimDevice, TransferPacingEnforcesPcieModel) {
  SimDeviceOptions o;
  o.pace_transfers = true;
  o.pcie_bandwidth = 1.0 * 1024 * 1024 * 1024;  // 1 GB/s for a visible delay
  o.dma_latency_nanos = 0;
  o.launch_overhead_nanos = 0;
  SimDevice dev(o);
  const size_t bytes = 4 << 20;  // 4 MB => ~4 ms at 1 GB/s
  std::vector<uint8_t> data(bytes, 7);
  GpuJob* job = dev.AcquireJob();
  job->num_spans = 1;
  job->host_input[0] = SpanPair{data.data(), data.size(), nullptr, 0};
  job->input_bytes[0] = bytes;
  TaskResult r;
  job->result = &r;
  std::latch done(1);
  job->kernel = [](SimDevice&, GpuJob&) {};
  job->on_complete = [&](GpuJob* j) {
    dev.ReleaseJob(j);
    done.count_down();
  };
  const int64_t t0 = NowNanos();
  dev.Submit(job);
  done.wait();
  const int64_t elapsed = NowNanos() - t0;
  EXPECT_GE(elapsed, dev.TransferNanos(bytes));  // at least the movein cost
}

TEST(SimDevice, PipelineOverlapsStages) {
  // With per-stage pacing, k jobs through a pipelined device should take
  // roughly max_stage * k, not sum_of_stages * k (Fig. 6). Absolute timings
  // depend on scheduler jitter and timer granularity, so calibrate against a
  // serial run (pipeline_depth = 1) on the same machine and assert the ratio.
  // Overlap requires the paced stage threads (movein, execute) plus the copy
  // threads to actually run in parallel; with fewer hardware threads the
  // spin-paced stages serialize and the ratio assertion below is meaningless.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "pipeline-overlap timing needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  SimDeviceOptions o;
  o.pace_transfers = true;
  o.pcie_bandwidth = 2.0 * 1024 * 1024 * 1024;
  o.dma_latency_nanos = 0;
  o.launch_overhead_nanos = 500 * 1000;  // 0.5 ms kernel
  const size_t bytes = 1 << 20;          // 1 MB => 0.5 ms per direction
  std::vector<uint8_t> data(bytes, 1);
  constexpr int kJobs = 16;

  auto run = [&](size_t depth) {
    SimDeviceOptions opts = o;
    opts.pipeline_depth = depth;
    SimDevice dev(opts);
    std::latch done(kJobs);
    std::vector<TaskResult> results(kJobs);
    const int64_t t0 = NowNanos();
    for (int i = 0; i < kJobs; ++i) {
      GpuJob* job = dev.AcquireJob();  // blocks at pipeline_depth in flight
      job->num_spans = 1;
      job->host_input[0] = SpanPair{data.data(), data.size(), nullptr, 0};
      job->input_bytes[0] = bytes;
      job->result = &results[i];
      job->kernel = [](SimDevice&, GpuJob&) {};
      job->on_complete = [&](GpuJob* j) {
        dev.ReleaseJob(j);
        done.count_down();
      };
      dev.Submit(job);
    }
    done.wait();
    return (NowNanos() - t0) / 1e6;
  };

  const double serial_ms = run(1);     // movein+execute+moveout per job
  const double pipelined_ms = run(4);  // ~max-stage per job after ramp-up
  // Ideal ratio is ~1/3 (three paced stages of equal cost); require a clear
  // win while leaving generous slack for machine noise.
  EXPECT_LT(pipelined_ms, 0.75 * serial_ms)
      << "serial=" << serial_ms << "ms pipelined=" << pipelined_ms << "ms";
  // Pacing must still be enforced: no faster than the single-stage floor.
  EXPECT_GE(pipelined_ms, kJobs * 0.45);
}

TEST(SimDevice, StatsAreRecorded) {
  SimDevice dev(FastOptions());
  std::vector<uint8_t> data(1024, 3);
  GpuJob* job = dev.AcquireJob();
  job->num_spans = 1;
  job->host_input[0] = SpanPair{data.data(), data.size(), nullptr, 0};
  job->input_bytes[0] = data.size();
  TaskResult r;
  job->result = &r;
  std::latch done(1);
  job->kernel = [](SimDevice&, GpuJob& j) {
    j.device_out.Resize(100);
    j.complete_bytes = 100;
  };
  job->on_complete = [&](GpuJob* j) {
    dev.ReleaseJob(j);
    done.count_down();
  };
  dev.Submit(job);
  done.wait();
  EXPECT_EQ(dev.stats().jobs.load(), 1);
  EXPECT_EQ(dev.stats().bytes_in.load(), 1024);
  EXPECT_EQ(dev.stats().bytes_out.load(), 100);
  EXPECT_EQ(r.complete.size(), 100u);
}

}  // namespace
}  // namespace saber
