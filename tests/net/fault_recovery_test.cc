#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "fault/fault_registry.h"
#include "net/client.h"
#include "net/server.h"
#include "sql/parser.h"
#include "workloads/sharding.h"
#include "workloads/synthetic.h"

/// \file fault_recovery_test.cc
/// Producer reconnect/resume and the recovery contracts of the network
/// front end under injected connection loss:
///  - a server-side drop mid-stream is repaired by the client's resume
///    token and the query output stays byte-identical to the
///    uninterrupted run (no lost, duplicated or reordered tuples);
///  - a disconnect whose grace window expires degrades to the historical
///    clean close — Drain completes and a later rebind gets a prompt
///    kError, never a hang;
///  - stale or unknown resume tokens are rejected;
///  - the front end can be stopped and a fresh server started on the
///    same live engine (restart with a subscriber attached).

namespace saber {
namespace {

sql::Catalog MakeCatalog() {
  return sql::Catalog{{"Syn", syn::SyntheticSchema()}};
}

size_t TupleSize() { return syn::SyntheticSchema().tuple_size(); }

EngineOptions TestEngineOptions() {
  EngineOptions eo;
  eo.num_cpu_workers = 2;
  eo.use_gpu = false;
  eo.task_size = 16 << 10;
  return eo;
}

/// Ground truth: the statement run in-process, one producer, no network.
std::vector<uint8_t> RunLocal(const std::string& sql,
                              const std::vector<uint8_t>& stream) {
  auto def = sql::Parse(sql, MakeCatalog());
  EXPECT_TRUE(def.ok()) << def.status().ToString();
  Engine engine(TestEngineOptions());
  auto q = engine.TryAddQuery(std::move(def).value());
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  std::vector<uint8_t> out;
  EXPECT_TRUE(q.value()
                  ->SetSink([&](const uint8_t* data, size_t len) {
                    out.insert(out.end(), data, data + len);
                  })
                  .ok());
  engine.Start();
  q.value()->Insert(stream.data(), stream.size());
  engine.Drain();
  EXPECT_TRUE(engine.RemoveQuery(q.value()).ok());
  engine.Stop();
  return out;
}

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }
};

TEST_F(FaultRecoveryTest, ServerDropMidStreamResumesByteIdentical) {
  // The server severs one data connection mid-stream (injected at the
  // reader loop); the client's ReconnectPolicy redials, presents its
  // resume token and replays past the acked sequence. The output must be
  // byte-identical to the fault-free in-process run.
  const size_t tsz = TupleSize();
  const std::string sql =
      "select timestamp, sum(a1) as total, count(*) as n "
      "from Syn [rows 256 slide 64] group by a3";
  const auto stream = syn::Generate(48 << 10);
  const std::vector<uint8_t> expect = RunLocal(sql, stream);

  // Exactly one deterministic drop, once the stream is well underway.
  fault::FaultSpec drop;
  drop.every_n = 30;
  drop.one_shot = true;
  fault::FaultRegistry::Global().Arm("net.server.drop_data_conn", drop);

  Engine engine(TestEngineOptions());
  engine.Start();
  net::ServerOptions sopts;
  sopts.reconnect_grace_ms = 5'000;
  net::SaberServer server(&engine, MakeCatalog(), sopts);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  auto control = net::ControlClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(control.ok());
  auto info = control.value().Submit(sql);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  const uint32_t id = info.value().query_id;

  std::vector<uint8_t> out;
  auto sub = net::ControlClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(sub.value().Subscribe(id).ok());
  std::thread reader([&] {
    std::vector<uint8_t> batch;
    for (;;) {
      auto more = sub.value().NextBatch(&batch);
      if (!more.ok() || !more.value()) break;
      out.insert(out.end(), batch.begin(), batch.end());
    }
  });

  constexpr int kClients = 2;
  std::atomic<int64_t> total_reconnects{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < kClients; ++i) {
    producers.emplace_back([&, i] {
      auto shard =
          workloads::ExtractTimestampShard(stream, tsz, i, kClients);
      ASSERT_TRUE(shard.ok());
      const std::vector<uint8_t> bytes = std::move(shard).value();
      net::DataHello hello;
      hello.query_id = id;
      hello.producer = static_cast<uint16_t>(i);
      hello.num_producers = kClients;
      hello.tuple_size = static_cast<uint32_t>(tsz);
      net::ReconnectPolicy rp;
      rp.connect_timeout_ms = 2'000;
      rp.max_attempts = 10;
      rp.initial_backoff_ms = 5;
      rp.max_backoff_ms = 100;
      auto p = net::ProducerClient::Connect("127.0.0.1", port, hello, rp);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      EXPECT_NE(p.value().resume_token(), 0u)
          << "the server must issue a resume token in the kHelloOk";
      // Small sends -> many frames, so the every-30-frames drop lands
      // squarely mid-stream.
      const size_t chunk = 512 * tsz;
      for (size_t off = 0; off < bytes.size(); off += chunk) {
        ASSERT_TRUE(p.value()
                        .Send(bytes.data() + off,
                              std::min(chunk, bytes.size() - off))
                        .ok())
            << p.value().LastServerError().ToString();
      }
      ASSERT_TRUE(p.value().End().ok());
      total_reconnects.fetch_add(p.value().reconnects());
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(total_reconnects.load(), 1)
      << "the injected drop must have forced exactly one resume";
  const net::ServerStats st = server.stats();
  EXPECT_GE(st.shards_parked, 1);
  EXPECT_GE(st.producer_reconnects, 1);
  EXPECT_EQ(st.grace_expiries, 0);

  EXPECT_TRUE(control.value().Drain(id).ok());
  EXPECT_TRUE(control.value().Remove(id).ok());
  reader.join();
  server.Stop();
  engine.Stop();

  ASSERT_EQ(expect.size(), out.size());
  EXPECT_EQ(std::memcmp(expect.data(), out.data(), expect.size()), 0)
      << "resumed stream diverges from the uninterrupted run";
}

TEST_F(FaultRecoveryTest, GraceExpiryDegradesToCleanClose) {
  // A producer vanishes and never comes back: its shard parks, the grace
  // window expires, and the park degrades to the historical clean close —
  // the watermark releases, Drain completes, and a later rebind of the
  // finished shard gets a prompt kError instead of hanging.
  const size_t tsz = TupleSize();
  const auto stream = syn::Generate(16 << 10);
  Engine engine(TestEngineOptions());
  engine.Start();
  net::ServerOptions sopts;
  sopts.reconnect_grace_ms = 150;
  net::SaberServer server(&engine, MakeCatalog(), sopts);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  auto control = net::ControlClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(control.ok());
  auto info = control.value().Submit(
      "select timestamp, sum(a1) as s from Syn [rows 256 slide 64]");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  const uint32_t id = info.value().query_id;

  net::DataHello hello;
  hello.query_id = id;
  hello.num_producers = 2;
  hello.tuple_size = static_cast<uint32_t>(tsz);

  // Producer 1: half the shard, then gone for good.
  auto shard1 = workloads::ExtractTimestampShard(stream, tsz, 1, 2);
  ASSERT_TRUE(shard1.ok());
  net::DataHello h1 = hello;
  h1.producer = 1;
  auto p1 = net::ProducerClient::Connect("127.0.0.1", port, h1);
  ASSERT_TRUE(p1.ok());
  const size_t half = shard1.value().size() / tsz / 2 * tsz;
  ASSERT_TRUE(p1.value().Send(shard1.value().data(), half).ok());
  p1.value().Close();  // abrupt: parks the shard

  // Producer 0 finishes normally.
  auto shard0 = workloads::ExtractTimestampShard(stream, tsz, 0, 2);
  ASSERT_TRUE(shard0.ok());
  auto p0 = net::ProducerClient::Connect("127.0.0.1", port, hello);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(
      p0.value().Send(shard0.value().data(), shard0.value().size()).ok());
  ASSERT_TRUE(p0.value().End().ok());

  // Drain blocks while the shard is parked (watermark held), then the
  // sweep expires the grace window and the close releases everything.
  EXPECT_TRUE(control.value().Drain(id).ok());
  const net::ServerStats st = server.stats();
  EXPECT_GE(st.shards_parked, 1);
  EXPECT_GE(st.grace_expiries, 1);
  EXPECT_EQ(st.producer_reconnects, 0);

  // The shard is finished: rebinding it must fail fast with a clean error.
  auto again = net::ProducerClient::Connect("127.0.0.1", port, h1);
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().ToString().find("already finished"),
            std::string::npos)
      << again.status().ToString();

  EXPECT_TRUE(control.value().Remove(id).ok());
  server.Stop();
  engine.Stop();
}

TEST_F(FaultRecoveryTest, StaleResumeTokenIsRejected) {
  const size_t tsz = TupleSize();
  Engine engine(TestEngineOptions());
  engine.Start();
  net::ServerOptions sopts;
  sopts.reconnect_grace_ms = 1'000;
  net::SaberServer server(&engine, MakeCatalog(), sopts);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  auto control = net::ControlClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(control.ok());
  auto info = control.value().Submit(
      "select timestamp, count(*) as n from Syn [rows 128]");
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  // A resume token for a shard that was never parked: rejected, and the
  // rejection must not burn the slot — a clean fresh bind still works.
  net::DataHello hello;
  hello.query_id = info.value().query_id;
  hello.tuple_size = static_cast<uint32_t>(tsz);
  hello.resume_token = 0xDEADBEEFDEADBEEFull;
  auto stale = net::ProducerClient::Connect("127.0.0.1", port, hello);
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().ToString().find("not parked"), std::string::npos)
      << stale.status().ToString();

  hello.resume_token = 0;
  auto fresh = net::ProducerClient::Connect("127.0.0.1", port, hello);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  const auto stream = syn::Generate(4096);
  ASSERT_TRUE(fresh.value().Send(stream.data(), stream.size()).ok());
  ASSERT_TRUE(fresh.value().End().ok());

  EXPECT_TRUE(control.value().Drain(info.value().query_id).ok());
  EXPECT_TRUE(control.value().Remove(info.value().query_id).ok());
  server.Stop();
  engine.Stop();
}

TEST_F(FaultRecoveryTest, ReconnectAfterGraceExpiryFailsCleanly) {
  // The drop lands mid-stream, but the client's backoff outlives the
  // server's grace window: by the time it redials, the shard has been
  // expired and closed. The resume must be rejected with a terminal
  // kError — surfaced by Send as a Status, never a hang or a retry storm.
  const size_t tsz = TupleSize();
  const auto stream = syn::Generate(32 << 10);

  fault::FaultSpec drop;
  drop.every_n = 10;
  drop.one_shot = true;
  fault::FaultRegistry::Global().Arm("net.server.drop_data_conn", drop);

  Engine engine(TestEngineOptions());
  engine.Start();
  net::ServerOptions sopts;
  sopts.reconnect_grace_ms = 100;  // expires well before the first redial
  net::SaberServer server(&engine, MakeCatalog(), sopts);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  auto control = net::ControlClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(control.ok());
  auto info = control.value().Submit(
      "select timestamp, sum(a1) as s from Syn [rows 256 slide 64]");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  const uint32_t id = info.value().query_id;

  net::DataHello hello;
  hello.query_id = id;
  hello.tuple_size = static_cast<uint32_t>(tsz);
  net::ReconnectPolicy rp;
  rp.connect_timeout_ms = 2'000;
  rp.max_attempts = 2;
  rp.initial_backoff_ms = 700;  // grace (100 ms) + sweep tick fit inside
  rp.max_backoff_ms = 700;
  auto p = net::ProducerClient::Connect("127.0.0.1", port, hello, rp);
  ASSERT_TRUE(p.ok());

  // The kernel may absorb every Send after the drop (the server's shutdown
  // does not stop the ACKs), so the loss can surface at any Send or only at
  // End — both must come back as the server's terminal rejection.
  const size_t chunk = 512 * tsz;
  Status failure = Status::OK();
  for (size_t off = 0; off < stream.size(); off += chunk) {
    failure = p.value().Send(stream.data() + off,
                             std::min(chunk, stream.size() - off));
    if (!failure.ok()) break;
  }
  if (failure.ok()) failure = p.value().End();
  ASSERT_FALSE(failure.ok())
      << "the drop fired and the grace window expired; the resume must fail";
  EXPECT_NE(failure.ToString().find("finished"), std::string::npos)
      << "expected the server's closed-shard rejection, got: "
      << failure.ToString();
  EXPECT_EQ(p.value().reconnects(), 0);

  // The expired shard closed cleanly: the query is drainable/removable.
  EXPECT_TRUE(control.value().Drain(id).ok());
  EXPECT_GE(server.stats().grace_expiries, 1);
  EXPECT_TRUE(control.value().Remove(id).ok());
  server.Stop();
  engine.Stop();
}

TEST_F(FaultRecoveryTest, ServerRestartOnLiveEngineWithSubscriber) {
  // The front end stops (subscriber attached, producer mid-stream) and a
  // fresh server starts on the same still-running engine. The subscriber
  // must unblock promptly, and the new server must serve a full
  // byte-correct run.
  const size_t tsz = TupleSize();
  const std::string sql =
      "select timestamp, sum(a1) as total from Syn [rows 256 slide 64]";
  const auto stream = syn::Generate(24 << 10);
  const std::vector<uint8_t> expect = RunLocal(sql, stream);

  Engine engine(TestEngineOptions());
  engine.Start();

  {
    net::SaberServer first(&engine, MakeCatalog(), net::ServerOptions{});
    ASSERT_TRUE(first.Start().ok());
    auto control = net::ControlClient::Connect("127.0.0.1", first.port());
    ASSERT_TRUE(control.ok());
    auto info = control.value().Submit(sql);
    ASSERT_TRUE(info.ok()) << info.status().ToString();

    auto sub = net::ControlClient::Connect("127.0.0.1", first.port());
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(sub.value().Subscribe(info.value().query_id).ok());
    std::atomic<bool> reader_done{false};
    std::thread reader([&] {
      std::vector<uint8_t> batch;
      for (;;) {
        auto more = sub.value().NextBatch(&batch);
        if (!more.ok() || !more.value()) break;
      }
      reader_done.store(true);
    });

    net::DataHello hello;
    hello.query_id = info.value().query_id;
    hello.tuple_size = static_cast<uint32_t>(tsz);
    auto p = net::ProducerClient::Connect("127.0.0.1", first.port(), hello);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(p.value().Send(stream.data(), 4096 * tsz).ok());

    first.Stop();  // mid-stream, subscriber attached
    reader.join();
    EXPECT_TRUE(reader_done.load());
    // The abandoned producer fails (promptly, once the RST round-trips —
    // the first post-stop send may still land in the kernel) instead of
    // hanging.
    Status s = Status::OK();
    for (int i = 0; i < 1000 && s.ok(); ++i) {
      s = p.value().Send(stream.data(), 512 * tsz);
    }
    EXPECT_FALSE(s.ok());
  }

  // Same engine, new front end: a complete run must still be byte-exact.
  net::SaberServer second(&engine, MakeCatalog(), net::ServerOptions{});
  ASSERT_TRUE(second.Start().ok());
  const int port = second.port();
  auto control = net::ControlClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(control.ok());
  auto info = control.value().Submit(sql);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  const uint32_t id = info.value().query_id;

  std::vector<uint8_t> out;
  auto sub = net::ControlClient::Connect("127.0.0.1", port);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(sub.value().Subscribe(id).ok());
  std::thread reader([&] {
    std::vector<uint8_t> batch;
    for (;;) {
      auto more = sub.value().NextBatch(&batch);
      if (!more.ok() || !more.value()) break;
      out.insert(out.end(), batch.begin(), batch.end());
    }
  });

  net::DataHello hello;
  hello.query_id = id;
  hello.tuple_size = static_cast<uint32_t>(tsz);
  auto p = net::ProducerClient::Connect("127.0.0.1", port, hello);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p.value().Send(stream.data(), stream.size()).ok());
  ASSERT_TRUE(p.value().End().ok());
  EXPECT_TRUE(control.value().Drain(id).ok());
  EXPECT_TRUE(control.value().Remove(id).ok());
  reader.join();
  second.Stop();
  engine.Stop();

  ASSERT_EQ(expect.size(), out.size());
  EXPECT_EQ(std::memcmp(expect.data(), out.data(), expect.size()), 0)
      << "restarted front end perturbed the query output";
}

}  // namespace
}  // namespace saber
