#include "net/protocol.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "workloads/synthetic.h"

/// \file protocol_test.cc
/// The hostile-input battery of the network front end. Unit tests pin the
/// frame/payload codecs; the live tests throw every malformed shape the
/// wire can produce — truncated length prefixes, oversized lengths,
/// tuple-size mismatches, mid-frame disconnects, random bytes, slow-loris
/// partial writes, stop races — at a real server and require an error
/// response plus connection teardown, never a crash, hang or leak. The
/// suite runs under the ASan and TSan CI presets; the corpus seeds under
/// tests/net/corpus/ are replayed verbatim by CorpusReplayNeverCrashes.

namespace saber {
namespace {

using net::DataHello;
using net::FrameHeader;
using net::FrameType;
using net::kFrameHeaderBytes;
using net::kMaxFramePayload;
using net::kProtocolVersion;

// --------------------------------------------------------------------------
// Codec units.
// --------------------------------------------------------------------------

TEST(ProtocolCodec, FrameHeaderRoundTrip) {
  FrameHeader h;
  h.payload_len = 123456;
  h.type = FrameType::kTuples;
  uint8_t buf[kFrameHeaderBytes];
  net::EncodeFrameHeader(h, buf);
  auto back = net::DecodeFrameHeader(buf, kMaxFramePayload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().payload_len, 123456u);
  EXPECT_EQ(back.value().type, FrameType::kTuples);
}

TEST(ProtocolCodec, FrameHeaderRejectsUnknownType) {
  uint8_t buf[kFrameHeaderBytes] = {0, 0, 0, 0, 99};
  auto r = net::DecodeFrameHeader(buf, kMaxFramePayload);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolCodec, FrameHeaderRejectsOversizedPayload) {
  FrameHeader h;
  h.payload_len = kMaxFramePayload + 1;
  h.type = FrameType::kTuples;
  uint8_t buf[kFrameHeaderBytes];
  net::EncodeFrameHeader(h, buf);
  auto r = net::DecodeFrameHeader(buf, kMaxFramePayload);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("payload"), std::string::npos);

  // A server-configured smaller bound applies too.
  h.payload_len = 1024;
  net::EncodeFrameHeader(h, buf);
  EXPECT_FALSE(net::DecodeFrameHeader(buf, 1023).ok());
  EXPECT_TRUE(net::DecodeFrameHeader(buf, 1024).ok());
}

TEST(ProtocolCodec, DataHelloRoundTrip) {
  DataHello h;
  h.query_id = 7;
  h.input = 1;
  h.producer = 3;
  h.num_producers = 8;
  h.tuple_size = 32;
  h.allowed_lateness = 512;
  h.late_policy = 1;
  h.rate_bytes_per_sec = 1.5e6;
  const auto bytes = net::EncodeDataHello(h);
  auto back = net::DecodeDataHello(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().version, kProtocolVersion);
  EXPECT_EQ(back.value().query_id, 7u);
  EXPECT_EQ(back.value().input, 1);
  EXPECT_EQ(back.value().producer, 3);
  EXPECT_EQ(back.value().num_producers, 8);
  EXPECT_EQ(back.value().tuple_size, 32u);
  EXPECT_EQ(back.value().allowed_lateness, 512);
  EXPECT_EQ(back.value().late_policy, 1);
  EXPECT_DOUBLE_EQ(back.value().rate_bytes_per_sec, 1.5e6);
}

TEST(ProtocolCodec, DataHelloRejectsMalformedPayloads) {
  const auto good = net::EncodeDataHello(DataHello{});
  // Every truncation of a valid hello must be rejected, not read past —
  // except the one legal prefix: a hello without the trailing resume
  // token, the pre-resume wire format old producers still send (absence
  // means a fresh bind).
  const size_t legacy_len = good.size() - sizeof(uint64_t);
  for (size_t len = 0; len < good.size(); ++len) {
    if (len == legacy_len) {
      EXPECT_TRUE(net::DecodeDataHello(good.data(), len).ok()) << len;
      continue;
    }
    EXPECT_FALSE(net::DecodeDataHello(good.data(), len).ok()) << len;
  }
  // Trailing bytes are a framing bug, not padding.
  auto extra = good;
  extra.push_back(0);
  EXPECT_FALSE(net::DecodeDataHello(extra.data(), extra.size()).ok());
  // Unknown late-policy values are rejected at decode time.
  DataHello bad;
  bad.late_policy = 17;
  const auto bytes = net::EncodeDataHello(bad);
  EXPECT_FALSE(net::DecodeDataHello(bytes.data(), bytes.size()).ok());
}

TEST(ProtocolCodec, QueryInfoRoundTrip) {
  net::QueryInfo info;
  info.query_id = 42;
  info.num_inputs = 2;
  info.input_tuple_size[0] = 32;
  info.input_tuple_size[1] = 24;
  info.output_tuple_size = 16;
  info.name = "net-q42";
  info.output_schema = "{long timestamp, double load} [16B]";
  const auto bytes = net::EncodeQueryInfo(info);
  auto back = net::DecodeQueryInfo(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().query_id, 42u);
  EXPECT_EQ(back.value().num_inputs, 2);
  EXPECT_EQ(back.value().input_tuple_size[1], 24u);
  EXPECT_EQ(back.value().name, "net-q42");
  EXPECT_EQ(back.value().output_schema, info.output_schema);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(net::DecodeQueryInfo(bytes.data(), len).ok()) << len;
  }
}

TEST(ProtocolCodec, ErrorRoundTrip) {
  const Status in = Status::NotFound("no query 9");
  const auto bytes = net::EncodeError(in);
  const Status out = net::DecodeError(bytes.data(), bytes.size());
  EXPECT_EQ(out.code(), StatusCode::kNotFound);
  EXPECT_EQ(out.message(), "no query 9");
  // A truncated or corrupt error payload still decodes to *some* error.
  EXPECT_FALSE(net::DecodeError(bytes.data(), 0).ok());
}

TEST(ProtocolCodec, WireReaderIsBoundsChecked) {
  const uint8_t bytes[4] = {1, 2, 3, 4};
  net::WireReader r(bytes, sizeof(bytes));
  uint32_t u32;
  ASSERT_TRUE(r.ReadU32(&u32));
  int64_t i64;
  EXPECT_FALSE(r.ReadI64(&i64));  // exhausted
  uint8_t u8;
  EXPECT_FALSE(r.ReadU8(&u8));
  std::string s;
  net::WireReader r2(bytes, sizeof(bytes));  // length 0x04030201 > remaining
  EXPECT_FALSE(r2.ReadString(&s));
}

// --------------------------------------------------------------------------
// Live-server battery.
// --------------------------------------------------------------------------

constexpr const char* kQuerySql =
    "select timestamp, sum(a1) as s from Syn [rows 256 slide 64]";

class ProtocolBattery : public ::testing::Test {
 protected:
  void StartServer(net::ServerOptions opts = {}) {
    EngineOptions eo;
    eo.num_cpu_workers = 2;
    eo.use_gpu = false;
    eo.task_size = 32 << 10;
    engine_ = std::make_unique<Engine>(eo);
    engine_->Start();
    sql::Catalog catalog{{"Syn", syn::SyntheticSchema()}};
    server_ = std::make_unique<net::SaberServer>(engine_.get(), catalog, opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();  // server first, then the engine
    if (engine_) engine_->Stop();
  }

  /// Raw client socket (no protocol library): the attacker's view.
  net::Socket Raw() {
    auto s = net::Dial("127.0.0.1", server_->port());
    EXPECT_TRUE(s.ok());
    return std::move(s).value();
  }

  /// Sends raw bytes, then expects a kError frame followed by EOF.
  void ExpectErrorAndTeardown(const void* bytes, size_t len,
                              const std::string& expect_substr = "") {
    net::Socket s = Raw();
    ASSERT_TRUE(net::WriteFull(s.fd(), bytes, len).ok());
    std::vector<uint8_t> payload;
    (void)net::SetRecvTimeout(s.fd(), 5000);
    auto h = net::RecvFrame(s.fd(), kMaxFramePayload, &payload);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ASSERT_EQ(h.value().type, FrameType::kError);
    const Status err = net::DecodeError(payload.data(), payload.size());
    EXPECT_FALSE(err.ok());
    if (!expect_substr.empty()) {
      EXPECT_NE(err.message().find(expect_substr), std::string::npos)
          << err.message();
    }
    // Teardown: the next read is EOF, not more frames.
    uint8_t b;
    EXPECT_FALSE(net::ReadFull(s.fd(), &b, 1).ok());
  }

  /// The server must still serve real clients: submit + remove a query.
  void ExpectHealthy() {
    auto c = net::ControlClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    auto info = c.value().Submit(kQuerySql);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_TRUE(c.value().Remove(info.value().query_id).ok());
  }

  uint32_t SubmitQuery(const std::string& sql = kQuerySql) {
    auto c = net::ControlClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(c.ok());
    control_ = std::move(c).value();
    auto info = control_.Submit(sql);
    EXPECT_TRUE(info.ok()) << info.status().ToString();
    return info.value().query_id;
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<net::SaberServer> server_;
  net::ControlClient control_;
};

TEST_F(ProtocolBattery, FirstFrameMustBeHello) {
  StartServer();
  std::vector<uint8_t> frame(kFrameHeaderBytes);
  FrameHeader h;
  h.payload_len = 0;
  h.type = FrameType::kSubmit;
  net::EncodeFrameHeader(h, frame.data());
  ExpectErrorAndTeardown(frame.data(), frame.size(), "expected a hello");
  EXPECT_GE(server_->stats().protocol_errors, 1);
  ExpectHealthy();
}

TEST_F(ProtocolBattery, BadHelloVersionRejected) {
  StartServer();
  std::vector<uint8_t> frame(kFrameHeaderBytes + 4);
  FrameHeader h;
  h.payload_len = 4;
  h.type = FrameType::kHelloControl;
  net::EncodeFrameHeader(h, frame.data());
  const uint32_t version = 999;
  std::memcpy(frame.data() + kFrameHeaderBytes, &version, 4);
  ExpectErrorAndTeardown(frame.data(), frame.size(), "protocol version");
}

TEST_F(ProtocolBattery, OversizedLengthPrefixTearsDown) {
  StartServer();
  // 0xffffffff length with a known type: must be rejected before any
  // allocation of that size, with a kError naming the violation.
  uint8_t frame[kFrameHeaderBytes] = {0xff, 0xff, 0xff, 0xff,
                                      static_cast<uint8_t>(FrameType::kTuples)};
  ExpectErrorAndTeardown(frame, sizeof(frame));
  ExpectHealthy();
}

TEST_F(ProtocolBattery, UnknownFrameTypeTearsDown) {
  StartServer();
  uint8_t frame[kFrameHeaderBytes] = {0, 0, 0, 0, 214};
  ExpectErrorAndTeardown(frame, sizeof(frame));
  ExpectHealthy();
}

TEST_F(ProtocolBattery, TruncatedHeaderDisconnectIsHarmless) {
  StartServer();
  for (int i = 0; i < 8; ++i) {
    net::Socket s = Raw();
    const uint8_t partial[3] = {0x10, 0x00, 0x00};
    ASSERT_TRUE(net::WriteFull(s.fd(), partial, i % 4).ok());
    s.Close();  // mid-header disconnect
  }
  ExpectHealthy();
}

TEST_F(ProtocolBattery, TupleSizeMismatchRejectedAtHello) {
  StartServer();
  const uint32_t id = SubmitQuery();
  DataHello hello;
  hello.query_id = id;
  hello.tuple_size = 24;  // Syn tuples are 32 bytes
  auto p = net::ProducerClient::Connect("127.0.0.1", server_->port(), hello);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("tuple size mismatch"),
            std::string::npos)
      << p.status().ToString();
  EXPECT_TRUE(control_.Remove(id).ok());
}

TEST_F(ProtocolBattery, HelloValidationRejectsBadBindings) {
  StartServer();
  const uint32_t id = SubmitQuery();
  const auto tsz =
      static_cast<uint32_t>(syn::SyntheticSchema().tuple_size());

  DataHello unknown_query;
  unknown_query.query_id = id + 999;
  unknown_query.tuple_size = tsz;
  EXPECT_FALSE(
      net::ProducerClient::Connect("127.0.0.1", server_->port(), unknown_query)
          .ok());

  DataHello bad_input;
  bad_input.query_id = id;
  bad_input.input = 1;  // single-input query
  bad_input.tuple_size = tsz;
  EXPECT_FALSE(
      net::ProducerClient::Connect("127.0.0.1", server_->port(), bad_input)
          .ok());

  DataHello bad_slot;
  bad_slot.query_id = id;
  bad_slot.producer = 2;
  bad_slot.num_producers = 2;
  bad_slot.tuple_size = tsz;
  EXPECT_FALSE(
      net::ProducerClient::Connect("127.0.0.1", server_->port(), bad_slot)
          .ok());

  // Binding the same shard twice: first wins, second is AlreadyExists.
  DataHello ok_hello;
  ok_hello.query_id = id;
  ok_hello.tuple_size = tsz;
  auto first = net::ProducerClient::Connect("127.0.0.1", server_->port(),
                                            ok_hello);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = net::ProducerClient::Connect("127.0.0.1", server_->port(),
                                             ok_hello);
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("already bound"),
            std::string::npos);
  EXPECT_TRUE(first.value().End().ok());
  EXPECT_TRUE(control_.Remove(id).ok());
}

TEST_F(ProtocolBattery, MisalignedTuplePayloadTearsDownAndReleases) {
  StartServer();
  const uint32_t id = SubmitQuery();
  // The client library refuses to emit a partial tuple, so hand-roll the
  // hello and a kTuples frame whose payload is not a whole tuple count.
  DataHello hello;
  hello.query_id = id;
  hello.tuple_size = static_cast<uint32_t>(syn::SyntheticSchema().tuple_size());
  net::Socket raw = Raw();
  ASSERT_TRUE(
      net::SendFrame(raw.fd(), FrameType::kHelloData, net::EncodeDataHello(hello))
          .ok());
  std::vector<uint8_t> payload;
  auto hok = net::RecvFrame(raw.fd(), kMaxFramePayload, &payload);
  ASSERT_TRUE(hok.ok()) << hok.status().ToString();
  ASSERT_EQ(hok.value().type, FrameType::kHelloOk);

  std::vector<uint8_t> frame(kFrameHeaderBytes + 3);
  FrameHeader h;
  h.payload_len = 3;
  h.type = FrameType::kTuples;
  net::EncodeFrameHeader(h, frame.data());
  ASSERT_TRUE(net::WriteFull(raw.fd(), frame.data(), frame.size()).ok());
  (void)net::SetRecvTimeout(raw.fd(), 5000);
  auto err = net::RecvFrame(raw.fd(), kMaxFramePayload, &payload);
  ASSERT_TRUE(err.ok()) << err.status().ToString();
  ASSERT_EQ(err.value().type, FrameType::kError);
  const Status st = net::DecodeError(payload.data(), payload.size());
  EXPECT_NE(st.message().find("not a multiple"), std::string::npos)
      << st.ToString();
  // The violated shard closed cleanly: the query still drains and removes.
  EXPECT_TRUE(control_.Drain(id).ok());
  EXPECT_TRUE(control_.Remove(id).ok());
}

TEST_F(ProtocolBattery, LateTupleUnderAbortSemanticsIsErrorNotCrash) {
  StartServer();
  const uint32_t id = SubmitQuery();
  const Schema& schema = syn::SyntheticSchema();
  const size_t tsz = schema.tuple_size();
  DataHello hello;
  hello.query_id = id;
  hello.tuple_size = static_cast<uint32_t>(tsz);
  hello.allowed_lateness = 4;
  hello.late_policy = 0;  // kAbort semantics: server must kError, not die
  auto p = net::ProducerClient::Connect("127.0.0.1", server_->port(), hello);
  ASSERT_TRUE(p.ok());
  // ts = 100 then ts = 10: far beyond the lateness horizon.
  std::vector<uint8_t> tuples(2 * tsz, 0);
  int64_t ts = 100;
  std::memcpy(tuples.data(), &ts, sizeof(ts));
  ts = 10;
  std::memcpy(tuples.data() + tsz, &ts, sizeof(ts));
  Status sent = p.value().Send(tuples.data(), tuples.size());
  if (sent.ok()) sent = p.value().End();  // rejection may land on the close
  ASSERT_FALSE(sent.ok());
  // The kError either comes back as End()'s status or waits on the socket.
  std::string msg = sent.message();
  if (msg.find("late tuple") == std::string::npos) {
    msg = p.value().LastServerError().message();
  }
  EXPECT_NE(msg.find("late tuple"), std::string::npos) << sent.ToString();
  EXPECT_TRUE(control_.Remove(id).ok());
  ExpectHealthy();
}

TEST_F(ProtocolBattery, MidFrameDisconnectReleasesWatermark) {
  StartServer();
  const uint32_t id = SubmitQuery();
  const size_t tsz = syn::SyntheticSchema().tuple_size();
  // Producer 1 of 2 vanishes mid-frame; the other finishes. Drain must
  // complete — the disconnect maps to Close() and the watermark releases.
  DataHello hello;
  hello.query_id = id;
  hello.num_producers = 2;
  hello.tuple_size = static_cast<uint32_t>(tsz);
  auto p0 = net::ProducerClient::Connect("127.0.0.1", server_->port(), hello);
  ASSERT_TRUE(p0.ok());

  net::Socket raw = Raw();
  DataHello h1 = hello;
  h1.producer = 1;
  ASSERT_TRUE(
      net::SendFrame(raw.fd(), FrameType::kHelloData, net::EncodeDataHello(h1))
          .ok());
  std::vector<uint8_t> payload;
  auto hok = net::RecvFrame(raw.fd(), kMaxFramePayload, &payload);
  ASSERT_TRUE(hok.ok());
  ASSERT_EQ(hok.value().type, FrameType::kHelloOk);

  const auto stream = syn::Generate(4096);
  ASSERT_TRUE(p0.value().Send(stream.data(), stream.size() / tsz / 2 * tsz)
                  .ok());
  // Claim a 1024-byte payload, deliver half of it, disappear.
  FrameHeader h;
  h.payload_len = 1024;
  h.type = FrameType::kTuples;
  uint8_t header[kFrameHeaderBytes];
  net::EncodeFrameHeader(h, header);
  ASSERT_TRUE(net::WriteFull(raw.fd(), header, sizeof(header)).ok());
  ASSERT_TRUE(net::WriteFull(raw.fd(), stream.data(), 512).ok());
  raw.Close();

  ASSERT_TRUE(p0.value().End().ok());
  EXPECT_TRUE(control_.Drain(id).ok());  // hangs forever if the shard leaks
  EXPECT_TRUE(control_.Remove(id).ok());
}

TEST_F(ProtocolBattery, SlowLorisConnectionsAreSwept) {
  net::ServerOptions opts;
  opts.idle_timeout_ms = 200;
  StartServer(opts);
  // A mid-handshake crawler: two header bytes, then silence.
  net::Socket s = Raw();
  const uint8_t crumbs[2] = {0x01, 0x00};
  ASSERT_TRUE(net::WriteFull(s.fd(), crumbs, sizeof(crumbs)).ok());
  (void)net::SetRecvTimeout(s.fd(), 5000);
  uint8_t b;
  // The sweep closes us without a byte ever arriving.
  EXPECT_FALSE(net::ReadFull(s.fd(), &b, 1).ok());
  EXPECT_GE(server_->stats().timeouts, 1);
  ExpectHealthy();
}

TEST_F(ProtocolBattery, SlowLorisDataPlaneTimesOut) {
  net::ServerOptions opts;
  opts.idle_timeout_ms = 200;
  StartServer(opts);
  const uint32_t id = SubmitQuery();
  DataHello hello;
  hello.query_id = id;
  hello.tuple_size = static_cast<uint32_t>(syn::SyntheticSchema().tuple_size());
  auto p = net::ProducerClient::Connect("127.0.0.1", server_->port(), hello);
  ASSERT_TRUE(p.ok());
  // Say nothing: the reader's receive timeout closes the shard, the
  // watermark releases, and Drain/Remove complete.
  EXPECT_TRUE(control_.Drain(id).ok());
  EXPECT_TRUE(control_.Remove(id).ok());
  EXPECT_GE(server_->stats().timeouts, 1);
}

TEST_F(ProtocolBattery, RandomBytesNeverCrashTheServer) {
  StartServer();
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(1, 512);
  for (int round = 0; round < 40; ++round) {
    net::Socket s = Raw();
    std::vector<uint8_t> blob(static_cast<size_t>(len(rng)));
    for (auto& v : blob) v = static_cast<uint8_t>(byte(rng));
    // Half the rounds open with a valid control hello so the fuzz also
    // exercises the post-handshake dispatch.
    if (round % 2 == 0) {
      net::WireWriter w;
      w.U32(kProtocolVersion);
      ASSERT_TRUE(net::SendFrame(s.fd(), FrameType::kHelloControl, w.buf().data(),
                                 w.buf().size())
                      .ok());
      std::vector<uint8_t> payload;
      auto h = net::RecvFrame(s.fd(), kMaxFramePayload, &payload);
      ASSERT_TRUE(h.ok());
    }
    (void)net::WriteFull(s.fd(), blob.data(), blob.size());
    s.Close();
  }
  ExpectHealthy();
  EXPECT_GE(server_->stats().protocol_errors, 0);
}

TEST_F(ProtocolBattery, CorpusReplayNeverCrashes) {
  StartServer();
  const std::filesystem::path dir = SABER_NET_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".bin") continue;
    std::ifstream f(entry.path(), std::ios::binary);
    ASSERT_TRUE(f.good()) << entry.path();
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    net::Socket s = Raw();
    (void)net::WriteFull(s.fd(), bytes.data(), bytes.size());
    // Read whatever the server answers (error or nothing), then drop.
    (void)net::SetRecvTimeout(s.fd(), 250);
    std::vector<uint8_t> payload;
    (void)net::RecvFrame(s.fd(), kMaxFramePayload, &payload);
    s.Close();
    ++replayed;
  }
  EXPECT_GE(replayed, 6u) << "corpus seeds missing from " << dir;
  ExpectHealthy();
}

TEST_F(ProtocolBattery, ServerStopRacesClientsMidFrame) {
  // The satellite stress: Stop while N clients are mid-stream must wake
  // every reader and parked append, join everything, and leave the engine
  // healthy. Several rounds to give the race room.
  for (int round = 0; round < 3; ++round) {
    StartServer();
    const uint32_t id = SubmitQuery();
    constexpr int kClients = 4;
    const size_t tsz = syn::SyntheticSchema().tuple_size();
    std::atomic<bool> stop_feeding{false};
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        DataHello hello;
        hello.query_id = id;
        hello.producer = static_cast<uint16_t>(i);
        hello.num_producers = kClients;
        hello.tuple_size = static_cast<uint32_t>(tsz);
        auto p =
            net::ProducerClient::Connect("127.0.0.1", server_->port(), hello);
        if (!p.ok()) return;
        const auto shard = syn::GenerateShard(400000, i, kClients);
        const size_t chunk = 4096 * tsz;
        for (size_t off = 0; off < shard.size() && !stop_feeding.load();
             off += chunk) {
          if (!p.value()
                   .Send(shard.data() + off,
                         std::min(chunk, shard.size() - off))
                   .ok()) {
            return;  // server went away mid-frame: expected
          }
        }
        (void)p.value().End();
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30 + 40 * round));
    server_->Stop();  // races everything above
    stop_feeding.store(true);
    for (auto& t : clients) t.join();
    server_.reset();
    engine_->Stop();
    engine_.reset();
  }
}

}  // namespace
}  // namespace saber
